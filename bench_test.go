// Package repro's root benchmarks regenerate every experiment table
// (E1–E13, see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark both
// times the experiment and reports its headline quantity as a custom
// metric, so `go test -bench=.` reproduces the paper's qualitative
// claims in one run. Experiments are fetched from the registry — a
// newly registered experiment is picked up by BenchmarkAll without
// touching this file.
package repro_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faithful"
	"repro/internal/scenario"
)

// mustTable fetches an experiment from the registry and generates its
// table, optionally mutating the registered default Params.
func mustTable(b *testing.B, id string, mutate func(*experiments.Params)) *experiments.Table {
	b.Helper()
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	if exp.Slow && testing.Short() {
		b.Skipf("%s is a deviation search; skipped under -short", id)
	}
	p := exp.Params
	if mutate != nil {
		mutate(&p)
	}
	t, err := exp.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func cellInt(b *testing.B, t *experiments.Table, row, col int) int64 {
	b.Helper()
	v, err := strconv.ParseInt(t.Rows[row][col], 10, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func cellFloat(b *testing.B, t *experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkAll regenerates every registered experiment through the
// parallel runner — the wall-clock of a full table refresh, the
// headline quantity the runner subsystem exists to shrink.
func BenchmarkAll(b *testing.B) {
	if testing.Short() {
		b.Skip("full registry run is the slow lane")
	}
	tables := 0
	for i := 0; i < b.N; i++ {
		out, err := experiments.All()
		if err != nil {
			b.Fatal(err)
		}
		tables = len(out)
	}
	b.ReportMetric(float64(tables), "tables")
}

// BenchmarkSuite compiles every scenario of a named suite and drives
// one honest faithful-protocol run per scenario — the fixed cost a
// suite sweep pays before any deviation search. The ladder spans the
// built-in suites that finish in seconds (the 54-scenario "internet"
// sweep is a manual job, not a bench lane). Published as
// BENCH_scenario.json with a committed baseline.
func BenchmarkSuite(b *testing.B) {
	for _, name := range []string{"smoke", "grid", "workloads"} {
		s, ok := scenario.LookupSuite(name)
		if !ok {
			b.Fatalf("suite %s not registered", name)
		}
		b.Run(name, func(b *testing.B) {
			var msgs float64
			var scenarios int
			for i := 0; i < b.N; i++ {
				specs := s.Specs(1)
				scenarios = len(specs)
				msgs = 0
				for _, sp := range specs {
					c, err := sp.Compile()
					if err != nil {
						b.Fatal(err)
					}
					res, err := faithful.Run(c.FaithfulConfig())
					if err != nil {
						b.Fatal(err)
					}
					if !res.Completed {
						b.Fatalf("honest run not green-lit on %s", sp.Describe())
					}
					msgs += float64(res.Construction.Sent)
				}
			}
			b.ReportMetric(float64(scenarios), "scenarios")
			b.ReportMetric(msgs, "construction-msgs")
		})
	}
}

// BenchmarkSuiteCheck runs the full two-sided deviation search on one
// small scenario per Internet-like family — the per-scenario unit of
// work a faithcheck -suite sweep scales by. Guarded like the other
// deviation searches: skipped under -short.
func BenchmarkSuiteCheck(b *testing.B) {
	if testing.Short() {
		b.Skip("deviation searches are the slow lane")
	}
	specs := []scenario.Spec{
		{Family: scenario.PrefAttach, N: 6, Seed: 1},
		{Family: scenario.TwoTier, N: 6, Workload: scenario.WorkloadHotspot, Seed: 1},
		{Family: scenario.Waxman, N: 6, CostModel: scenario.CostHeavyTailed, Seed: 1},
	}
	for _, sp := range specs {
		sp := sp
		b.Run(string(sp.Family), func(b *testing.B) {
			var checked, plainViolations int
			for i := 0; i < b.N; i++ {
				c, err := sp.Compile()
				if err != nil {
					b.Fatal(err)
				}
				plainSys, faithSys := c.Systems()
				plainRep, err := core.CheckFaithfulnessCfg(plainSys, core.CheckConfig{Workers: -1})
				if err != nil {
					b.Fatal(err)
				}
				faithRep, err := core.CheckFaithfulnessCfg(faithSys, core.CheckConfig{Workers: -1})
				if err != nil {
					b.Fatal(err)
				}
				// Theorem 1 must hold on every scenario; the plain
				// protocol's manipulability varies with workload and
				// seed (tiny hotspot scenarios can leave no profitable
				// deviation), so it is reported, not asserted.
				if !faithRep.Faithful() {
					b.Fatalf("%s: faithful spec violated: %v", sp.Describe(), faithRep.Violations)
				}
				plainViolations = len(plainRep.Violations)
				checked = plainRep.Checked + faithRep.Checked
			}
			b.ReportMetric(float64(checked), "plays")
			b.ReportMetric(float64(plainViolations), "plain-violations")
		})
	}
}

// BenchmarkLoss is the lossy-links perf ladder: the honest rungs time
// a faithful-protocol run under increasing drop rates (the retry
// envelope's cost is extra events and delay, reported as the retry and
// drop counts), and the check rung times the full two-sided deviation
// search — enlarged catalogue included — on one lossy scenario.
// Published as BENCH_loss.json with a committed baseline.
func BenchmarkLoss(b *testing.B) {
	rungs := []scenario.Loss{
		{},                     // reliable control
		{Rate: 0.05},           // light i.i.d. loss
		{Rate: 0.15, Burst: 3}, // moderate bursty loss
		{Rate: 0.25, Burst: 4}, // the tolerable-threshold rung
	}
	for _, loss := range rungs {
		loss := loss
		b.Run(fmt.Sprintf("honest/rate=%g,burst=%g", loss.Rate, loss.Burst), func(b *testing.B) {
			sp := scenario.Spec{Family: scenario.Random, N: 8, Seed: 1, Loss: loss}
			c, err := sp.Compile()
			if err != nil {
				b.Fatal(err)
			}
			var dropped, retried float64
			for i := 0; i < b.N; i++ {
				res, err := faithful.Run(c.FaithfulConfig())
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed || res.Construction.Lost != 0 {
					b.Fatalf("honest lossy run not green-lit on %s: completed=%v lost=%d",
						sp.Describe(), res.Completed, res.Construction.Lost)
				}
				dropped = float64(res.Construction.Dropped)
				retried = float64(res.Construction.Retried)
			}
			b.ReportMetric(dropped, "drops")
			b.ReportMetric(retried, "retries")
		})
	}
	b.Run("check/rate=0.1,burst=3", func(b *testing.B) {
		if testing.Short() {
			b.Skip("deviation searches are the slow lane")
		}
		sp := scenario.Spec{Family: scenario.Random, N: 6, Seed: 1, Loss: scenario.Loss{Rate: 0.1, Burst: 3}}
		var checked int
		for i := 0; i < b.N; i++ {
			c, err := sp.Compile()
			if err != nil {
				b.Fatal(err)
			}
			plainSys, faithSys := c.Systems()
			plainRep, err := core.CheckFaithfulnessCfg(plainSys, core.CheckConfig{Workers: -1})
			if err != nil {
				b.Fatal(err)
			}
			faithRep, err := core.CheckFaithfulnessCfg(faithSys, core.CheckConfig{Workers: -1})
			if err != nil {
				b.Fatal(err)
			}
			if !faithRep.Faithful() {
				b.Fatalf("%s: faithful spec violated: %v", sp.Describe(), faithRep.Violations)
			}
			checked = plainRep.Checked + faithRep.Checked
		}
		b.ReportMetric(float64(checked), "plays")
	})
}

// BenchmarkE1Figure1 regenerates Figure 1's lowest-cost paths.
func BenchmarkE1Figure1(b *testing.B) {
	var xzCost int64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E1", nil)
		xzCost = cellInt(b, t, 0, 1)
	}
	b.ReportMetric(float64(xzCost), "cost(X→Z)")
}

// BenchmarkE2Example1 regenerates Example 1's manipulation sweep.
func BenchmarkE2Example1(b *testing.B) {
	var naiveGain, vcgGain int64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E2", nil)
		truthNaive, truthVCG := cellInt(b, t, 0, 1), cellInt(b, t, 0, 2)
		bestNaive, bestVCG := truthNaive, truthVCG
		for r := range t.Rows {
			if v := cellInt(b, t, r, 1); v > bestNaive {
				bestNaive = v
			}
			if v := cellInt(b, t, r, 2); v > bestVCG {
				bestVCG = v
			}
		}
		naiveGain, vcgGain = bestNaive-truthNaive, bestVCG-truthVCG
	}
	b.ReportMetric(float64(naiveGain), "naive-lie-gain")
	b.ReportMetric(float64(vcgGain), "vcg-lie-gain")
}

// BenchmarkE3Detection regenerates the manipulation-detection matrix.
func BenchmarkE3Detection(b *testing.B) {
	caught := 0.0
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E3", nil)
		caught = float64(len(t.Rows))
	}
	b.ReportMetric(caught, "deviations-all-caught")
}

// BenchmarkE4Overhead regenerates the checker-overhead sweep.
func BenchmarkE4Overhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E4", nil)
		ratio = cellFloat(b, t, len(t.Rows)-1, 4)
	}
	b.ReportMetric(ratio, "msg-overhead@n24")
}

// BenchmarkE5BFTBaseline regenerates the BFT comparison.
func BenchmarkE5BFTBaseline(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E5", nil)
		ratio = cellFloat(b, t, len(t.Rows)-1, 6)
	}
	b.ReportMetric(ratio, "bft/faithful-msgs")
}

// BenchmarkE6Faithfulness runs the deviation search (Theorem 1).
func BenchmarkE6Faithfulness(b *testing.B) {
	var plainViolations, faithfulViolations int64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E6", func(p *experiments.Params) { p.Trials = 1 })
		plainViolations = cellInt(b, t, 0, 3)
		faithfulViolations = cellInt(b, t, 0, 5)
	}
	b.ReportMetric(float64(plainViolations), "plain-violations")
	b.ReportMetric(float64(faithfulViolations), "faithful-violations")
}

// BenchmarkE7PhaseDecomposition regenerates the combinatorial table.
func BenchmarkE7PhaseDecomposition(b *testing.B) {
	var reduction int64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E7", nil)
		reduction = cellInt(b, t, len(t.Rows)-1, 4)
	}
	b.ReportMetric(float64(reduction), "reduction@8pts")
}

// BenchmarkE8Election regenerates the leader-election comparison.
func BenchmarkE8Election(b *testing.B) {
	var naive, faithful float64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E8", nil)
		naive = cellFloat(b, t, 0, 3)
		faithful = cellFloat(b, t, 1, 3)
	}
	b.ReportMetric(naive, "naive-correct-rate")
	b.ReportMetric(faithful, "faithful-correct-rate")
}

// BenchmarkE9Convergence regenerates the convergence sweep.
func BenchmarkE9Convergence(b *testing.B) {
	var perNode float64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E9", nil)
		perNode = cellFloat(b, t, len(t.Rows)-1, 5)
	}
	b.ReportMetric(perNode, "msgs-per-node@n30")
}

// BenchmarkE10Execution regenerates the payment-enforcement table.
func BenchmarkE10Execution(b *testing.B) {
	var worstNet int64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E10", nil)
		worstNet = 0
		for r := 1; r < len(t.Rows); r++ {
			if v := cellInt(b, t, r, 3); v < worstNet {
				worstNet = v
			}
		}
	}
	b.ReportMetric(float64(worstNet), "worst-fraud-net")
}

// BenchmarkE11CheckerAblation regenerates the checker-assignment
// ablation.
func BenchmarkE11CheckerAblation(b *testing.B) {
	rows := 0.0
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E11", nil)
		rows = float64(len(t.Rows))
	}
	b.ReportMetric(rows, "assignments")
}

// BenchmarkE12Failstop regenerates the failure-model interplay table.
func BenchmarkE12Failstop(b *testing.B) {
	blocked := 0.0
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E12", nil)
		blocked = 0
		for _, row := range t.Rows {
			if row[1] == "false" {
				blocked++
			}
		}
	}
	b.ReportMetric(blocked, "crashes-blocking-progress")
}

// BenchmarkE13DamageContainment regenerates the victim-damage table.
func BenchmarkE13DamageContainment(b *testing.B) {
	var worstPlain int64
	for i := 0; i < b.N; i++ {
		t := mustTable(b, "E13", nil)
		worstPlain = 0
		for r := range t.Rows {
			if v := cellInt(b, t, r, 1); v > worstPlain {
				worstPlain = v
			}
		}
	}
	b.ReportMetric(float64(worstPlain), "worst-victim-loss-plain")
}
