package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// TestPlainNonManipulableScenario pins the ROADMAP observation that
// the *plain* protocol is not manipulable on every scenario: twotier
// n=6 under hotspot demand with seed 1 admits no profitable deviation
// from the full catalogue, even without checkers or a bank. The
// hotspot workload starves the deviations of profit — the hub is the
// only destination most nodes price, the cluster structure leaves
// little VCG surplus to steal, and misrouting mostly strands the
// deviator's own packets. Suite output tags such scenarios
// "[plain non-manipulable]" (see cmd/faithcheck).
//
// This is a pinned *finding*, not a tautology: if a catalogue change
// makes this scenario manipulable, the ROADMAP study (and the tag
// semantics) must be revisited, not the test silently updated.
func TestPlainNonManipulableScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation search")
	}
	sp := scenario.Spec{Family: scenario.TwoTier, N: 6, Workload: scenario.WorkloadHotspot, Seed: 1}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	plainSys, faithSys := c.Systems()
	plain, err := core.CheckFaithfulness(plainSys, core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Faithful() {
		t.Errorf("plain FPSS on %s became manipulable: %v", sp.Describe(), plain.Violations)
	}
	if plain.Checked == 0 {
		t.Error("no plays checked — catalogue empty?")
	}
	// The extended specification is of course also clean here.
	faith, err := core.CheckFaithfulness(faithSys, core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !faith.Faithful() {
		t.Errorf("extended spec violated on %s: %v", sp.Describe(), faith.Violations)
	}
}
