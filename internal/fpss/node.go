package fpss

import (
	"repro/internal/graph"
	"repro/internal/sim"
)

// Message payloads exchanged by the distributed protocol.

// CostAnnounce floods a node's declared transit cost (first
// construction phase, building DATA1). Declaring one's own cost is an
// information-revelation action; relaying others' announcements is a
// message-passing action (§4.1).
type CostAnnounce struct {
	Origin graph.NodeID
	Cost   graph.Cost
}

// Size implements sim.Sizer.
func (CostAnnounce) Size() int { return 2 }

// StartPhase2 is the checkpoint signal ("green-light") that begins the
// second construction phase.
type StartPhase2 struct{}

// Size implements sim.Sizer.
func (StartPhase2) Size() int { return 1 }

// Update carries a node's full routing and pricing tables to a
// neighbor (second construction phase). Updating tables is a
// computation action; (in the faithful extension) forwarding copies to
// checkers is a message-passing action.
type Update struct {
	From    graph.NodeID
	Routing RoutingTable
	Pricing PricingTable
}

// Size implements sim.Sizer: entries, as an abstract byte measure.
func (u Update) Size() int {
	s := 1 + len(u.Routing)
	for _, row := range u.Pricing {
		s += len(row)
	}
	return s
}

// Clone deep-copies the update.
func (u Update) Clone() Update {
	return Update{From: u.From, Routing: u.Routing.Clone(), Pricing: u.Pricing.Clone()}
}

// Strategy is a node's deviation surface: nil fields mean the faithful
// (suggested) behavior. The rational package populates fields to build
// the deviation catalogue of §4.3; the faithful package's checkers
// exist to make every such deviation unprofitable.
type Strategy struct {
	// DeclareCost maps the true transit cost to the declared one
	// (information revelation; Example 1 / E2).
	DeclareCost func(truth graph.Cost) graph.Cost
	// RelayCost intercepts a CostAnnounce about to be relayed to a
	// neighbor; returning ok=false drops it (message passing).
	RelayCost func(to graph.NodeID, a CostAnnounce) (CostAnnounce, bool)
	// PostRouting rewrites the freshly computed routing table before
	// it is stored and advertised (computation; manipulation 2).
	PostRouting func(faithful RoutingTable) RoutingTable
	// PostPricing rewrites the freshly computed pricing table
	// (computation; manipulation 4).
	PostPricing func(faithful PricingTable) PricingTable
	// SendUpdate intercepts an outgoing Update to a neighbor;
	// returning ok=false drops it (message passing; manipulations 1,3).
	SendUpdate func(to graph.NodeID, u Update) (Update, bool)
	// RecvUpdate intercepts an incoming Update before it is applied;
	// returning ok=false discards it — the receiver pretends the
	// network lost it (message passing; ack withholding under a lossy
	// failure model).
	RecvUpdate func(u Update) (Update, bool)
}

func (s *Strategy) declareCost(truth graph.Cost) graph.Cost {
	if s == nil || s.DeclareCost == nil {
		return truth
	}
	return s.DeclareCost(truth)
}

func (s *Strategy) relayCost(to graph.NodeID, a CostAnnounce) (CostAnnounce, bool) {
	if s == nil || s.RelayCost == nil {
		return a, true
	}
	return s.RelayCost(to, a)
}

func (s *Strategy) postRouting(t RoutingTable) RoutingTable {
	if s == nil || s.PostRouting == nil {
		return t
	}
	return s.PostRouting(t)
}

func (s *Strategy) postPricing(t PricingTable) PricingTable {
	if s == nil || s.PostPricing == nil {
		return t
	}
	return s.PostPricing(t)
}

func (s *Strategy) sendUpdate(to graph.NodeID, u Update) (Update, bool) {
	if s == nil || s.SendUpdate == nil {
		return u, true
	}
	return s.SendUpdate(to, u)
}

func (s *Strategy) recvUpdate(u Update) (Update, bool) {
	if s == nil || s.RecvUpdate == nil {
		return u, true
	}
	return s.RecvUpdate(u)
}

// Node is one FPSS participant attached to the simulator. It executes
// the two construction phases; execution-phase accounting is done
// offline from the converged tables (see Execute).
type Node struct {
	id        graph.NodeID
	trueCost  graph.Cost
	neighbors []graph.NodeID
	strategy  *Strategy

	costs   CostTable // DATA1
	routing RoutingTable
	pricing PricingTable
	views   map[graph.NodeID]NeighborView
	scratch ComputeScratch

	phase2  bool
	adverts int
}

// advertBudget bounds how many times a node re-advertises its tables.
// Honest convergence needs at most O(n²) changes (each destination's
// route strictly improves under the composite order, bounded by hop
// count); the budget is far above that. Its purpose is to guarantee
// quiescence even when a deviating strategy induces oscillation —
// real BGP bounds re-advertisement the same way (MRAI timers) — so the
// bank's quiescence checkpoint always fires and catches the deviation.
func (n *Node) advertBudget() int {
	known := len(n.costs)
	if known < len(n.neighbors)+1 {
		known = len(n.neighbors) + 1
	}
	return 8*known*known + 32
}

var _ sim.Handler = (*Node)(nil)

// NewNode builds a protocol node. neighbors is the node's local
// (semi-private) connectivity knowledge; strategy may be nil for the
// suggested specification.
func NewNode(id graph.NodeID, trueCost graph.Cost, neighbors []graph.NodeID, strategy *Strategy) *Node {
	ns := make([]graph.NodeID, len(neighbors))
	copy(ns, neighbors)
	return &Node{
		id:        id,
		trueCost:  trueCost,
		neighbors: ns,
		strategy:  strategy,
		costs:     make(CostTable),
		views:     make(map[graph.NodeID]NeighborView),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() graph.NodeID { return n.id }

// Neighbors returns a copy of the node's neighbor list.
func (n *Node) Neighbors() []graph.NodeID {
	out := make([]graph.NodeID, len(n.neighbors))
	copy(out, n.neighbors)
	return out
}

// Costs returns the node's DATA1 (declared transit costs seen so far).
func (n *Node) Costs() CostTable { return n.costs.Clone() }

// Routing returns the node's DATA2.
func (n *Node) Routing() RoutingTable { return n.routing.Clone() }

// Pricing returns the node's DATA3*.
func (n *Node) Pricing() PricingTable { return n.pricing.Clone() }

// RoutingView returns the node's DATA2 without cloning. Only valid
// once the network is quiescent, and read-only: the deviation-search
// hot path assembles execution-phase inputs from converged tables,
// where a defensive clone per node per run is pure garbage.
func (n *Node) RoutingView() RoutingTable { return n.routing }

// PricingView returns the node's DATA3* without cloning (see
// RoutingView for the contract).
func (n *Node) PricingView() PricingTable { return n.pricing }

// DeclaredCost returns the cost this node announces (possibly a lie).
func (n *Node) DeclaredCost() graph.Cost { return n.strategy.declareCost(n.trueCost) }

// Init floods the node's own declared cost (first construction phase).
func (n *Node) Init(ctx sim.Context) {
	declared := n.strategy.declareCost(n.trueCost)
	n.costs[n.id] = declared
	announce := CostAnnounce{Origin: n.id, Cost: declared}
	for _, v := range n.neighbors {
		ctx.Send(sim.Addr(v), announce)
	}
}

// Recv dispatches protocol messages.
func (n *Node) Recv(ctx sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case CostAnnounce:
		n.onCostAnnounce(ctx, m)
	case StartPhase2:
		n.onStartPhase2(ctx)
	case Update:
		n.onUpdate(ctx, m)
	}
}

func (n *Node) onCostAnnounce(ctx sim.Context, a CostAnnounce) {
	if _, known := n.costs[a.Origin]; known {
		return // flood dedup
	}
	n.costs[a.Origin] = a.Cost
	for _, v := range n.neighbors {
		if sim.Addr(v) == ctx.Self() { // impossible; defensive
			continue
		}
		relayed, ok := n.strategy.relayCost(v, a)
		if !ok {
			continue
		}
		ctx.Send(sim.Addr(v), relayed)
	}
}

func (n *Node) onStartPhase2(ctx sim.Context) {
	if n.phase2 {
		return
	}
	n.phase2 = true
	n.recompute(ctx, true)
}

func (n *Node) onUpdate(ctx sim.Context, u Update) {
	var ok bool
	if u, ok = n.strategy.recvUpdate(u); !ok {
		return
	}
	if !n.phase2 {
		// Late-start robustness: an update implies phase 2 has begun.
		n.phase2 = true
	}
	n.views[u.From] = NeighborView{Routing: u.Routing, Pricing: u.Pricing}
	n.recompute(ctx, false)
}

// recompute re-runs the suggested computation (with any strategy
// post-hooks) and advertises to neighbors when something changed.
func (n *Node) recompute(ctx sim.Context, force bool) {
	s := &n.scratch
	newRouting := n.strategy.postRouting(ComputeRoutingScratch(s, n.id, n.neighbors, n.costs, n.views))
	newPricing := n.strategy.postPricing(ComputePricingScratch(s, n.id, n.neighbors, n.costs, newRouting, n.views))
	changed := !newRouting.Equal(n.routing) || !newPricing.Equal(n.pricing)
	if changed {
		// The replaced tables may be aliased (advertised Updates,
		// neighbor views) and are left to the GC.
		n.routing = newRouting
		n.pricing = newPricing
	} else if n.strategy == nil || (n.strategy.PostRouting == nil && n.strategy.PostPricing == nil) {
		// Convergence-tail fast path: the fresh tables equal the stored
		// ones and nothing else has seen them — recycle their storage.
		// (Post hooks could have retained the computed tables, so only
		// the hook-free node recycles.)
		s.RecycleRouting(newRouting)
		s.RecyclePricing(newPricing)
	}
	if !changed && !force {
		return
	}
	if n.adverts >= n.advertBudget() {
		return // oscillation damping; see advertBudget
	}
	n.adverts++
	base := Update{From: n.id, Routing: n.routing, Pricing: n.pricing}
	if n.strategy == nil || n.strategy.SendUpdate == nil {
		// Honest path: recompute always replaces (never mutates) the
		// tables, so every neighbor can share one advertisement —
		// deep-cloning per neighbor was most of the protocol's garbage.
		for _, v := range n.neighbors {
			ctx.Send(sim.Addr(v), base)
		}
		return
	}
	for _, v := range n.neighbors {
		// Deviant path: the hook may mutate its copy per neighbor.
		u, ok := n.strategy.sendUpdate(v, base.Clone())
		if !ok {
			continue
		}
		ctx.Send(sim.Addr(v), u)
	}
}
