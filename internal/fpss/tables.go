// Package fpss implements the FPSS lowest-cost interdomain-routing
// mechanism (Feigenbaum, Papadimitriou, Sami, Shenker, PODC 2002) that
// the paper's case study (§4) extends: VCG pricing of transit nodes,
// the per-node data structures DATA1–DATA4, a centralized reference
// solver, and the distributed iterative computation over the sim
// substrate.
//
// The paper's faithful extension (checkers, bank, identity tags) lives
// in package faithful; here is the *original* FPSS, which assumes
// obedient computation and message passing — exactly the assumption
// the paper drops. Deviation hooks (Strategy) let the rational package
// exercise that gap.
package fpss

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"slices"

	"repro/internal/graph"
)

// RouteEntry is one row of DATA2: the lowest-cost path from the owner
// to Dest, with its aggregate transit cost.
type RouteEntry struct {
	Dest graph.NodeID
	Cost graph.Cost
	Path graph.Path // full path, owner first, Dest last
}

// clone returns a deep copy.
func (e RouteEntry) clone() RouteEntry {
	e.Path = e.Path.Clone()
	return e
}

// RoutingTable is DATA2: dest → route.
type RoutingTable map[graph.NodeID]RouteEntry

// Clone returns a deep copy.
func (t RoutingTable) Clone() RoutingTable {
	out := make(RoutingTable, len(t))
	for k, v := range t {
		out[k] = v.clone()
	}
	return out
}

// Equal reports whether two routing tables are identical.
func (t RoutingTable) Equal(o RoutingTable) bool {
	if len(t) != len(o) {
		return false
	}
	for k, v := range t {
		w, ok := o[k]
		if !ok || v.Cost != w.Cost || !v.Path.Equal(w.Path) {
			return false
		}
	}
	return true
}

// PriceEntry is one cell of DATA3*: the per-packet payment the owner
// must make to Transit for traffic to Dest, the witness path that
// justifies it (the owner's best route avoiding Transit), and the
// paper's identity tags — the neighbor(s) whose update triggered the
// current value (union on ties), used by [CHECK2]/[BANK2] to expose
// spoofed pricing updates.
type PriceEntry struct {
	Transit graph.NodeID
	Price   graph.Cost
	Avoid   graph.Path     // witness: owner→dest path avoiding Transit
	Tags    []graph.NodeID // sorted trigger set
}

func (e PriceEntry) clone() PriceEntry {
	e.Avoid = e.Avoid.Clone()
	tags := make([]graph.NodeID, len(e.Tags))
	copy(tags, e.Tags)
	e.Tags = tags
	return e
}

// equal compares price, witness and tags.
func (e PriceEntry) equal(o PriceEntry) bool {
	if e.Transit != o.Transit || e.Price != o.Price || !e.Avoid.Equal(o.Avoid) {
		return false
	}
	if len(e.Tags) != len(o.Tags) {
		return false
	}
	for i := range e.Tags {
		if e.Tags[i] != o.Tags[i] {
			return false
		}
	}
	return true
}

// PricingTable is DATA3*: dest → transit → entry.
type PricingTable map[graph.NodeID]map[graph.NodeID]PriceEntry

// Clone returns a deep copy.
func (t PricingTable) Clone() PricingTable {
	out := make(PricingTable, len(t))
	for d, row := range t {
		r := make(map[graph.NodeID]PriceEntry, len(row))
		for k, e := range row {
			r[k] = e.clone()
		}
		out[d] = r
	}
	return out
}

// Equal reports whether two pricing tables are identical, tags
// included (tag divergence is what [BANK2] detects).
func (t PricingTable) Equal(o PricingTable) bool {
	if len(t) != len(o) {
		return false
	}
	for d, row := range t {
		orow, ok := o[d]
		if !ok || len(row) != len(orow) {
			return false
		}
		for k, e := range row {
			oe, ok := orow[k]
			if !ok || !e.equal(oe) {
				return false
			}
		}
	}
	return true
}

// CostTable is DATA1: declared per-packet transit cost per node.
type CostTable map[graph.NodeID]graph.Cost

// Clone returns a copy.
func (t CostTable) Clone() CostTable {
	out := make(CostTable, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// PaymentList is DATA4: total owed per transit node by one origin.
type PaymentList map[graph.NodeID]int64

// Clone returns a copy.
func (p PaymentList) Clone() PaymentList {
	out := make(PaymentList, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Total sums all owed payments.
func (p PaymentList) Total() int64 {
	var t int64
	for _, v := range p {
		t += v
	}
	return t
}

// Hash helpers: the bank compares table hashes ("a hash of the entire
// table is sufficient", §4.3 [BANK1]/[BANK2]). Serialization is
// canonical (sorted keys) so equal tables hash equal.

// Hash is a SHA-256 digest of a canonical table serialization.
type Hash [sha256.Size]byte

type sha256Writer struct{ inner hash.Hash }

func newSHA() *sha256Writer { return &sha256Writer{inner: sha256.New()} }

func (w *sha256Writer) writeInt64(v int64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	_, _ = w.inner.Write(b[:])
}

func (w *sha256Writer) sum() Hash {
	var out Hash
	copy(out[:], w.inner.Sum(nil))
	return out
}

func writeID(h *sha256Writer, id graph.NodeID) { h.writeInt64(int64(id)) }
func writeCost(h *sha256Writer, c graph.Cost)  { h.writeInt64(int64(c)) }
func writePath(h *sha256Writer, p graph.Path) {
	h.writeInt64(int64(len(p)))
	for _, n := range p {
		writeID(h, n)
	}
}

// HashCosts returns the canonical hash of a DATA1 cost table; the
// bank compares these across all nodes at the end of the first
// construction phase ("terminates with common transit cost tables
// [DATA1] across all nodes", §4.3).
func (t CostTable) HashCosts() Hash {
	w := newSHA()
	ids := make([]graph.NodeID, 0, len(t))
	for id := range t {
		ids = append(ids, id)
	}
	sortIDs(ids)
	for _, id := range ids {
		writeID(w, id)
		writeCost(w, t[id])
	}
	return w.sum()
}

// HashRouting returns the canonical hash of a routing table.
func (t RoutingTable) HashRouting() Hash {
	w := newSHA()
	for _, d := range sortedKeys(t) {
		e := t[d]
		writeID(w, d)
		writeCost(w, e.Cost)
		writePath(w, e.Path)
	}
	return w.sum()
}

// HashPricing returns the canonical hash of a pricing table, tags
// included (so [BANK2] sees tag inconsistencies as deviations).
func (t PricingTable) HashPricing() Hash {
	w := newSHA()
	dests := make([]graph.NodeID, 0, len(t))
	for d := range t {
		dests = append(dests, d)
	}
	sortIDs(dests)
	for _, d := range dests {
		writeID(w, d)
		row := t[d]
		ks := make([]graph.NodeID, 0, len(row))
		for k := range row {
			ks = append(ks, k)
		}
		sortIDs(ks)
		for _, k := range ks {
			e := row[k]
			writeID(w, k)
			writeCost(w, e.Price)
			writePath(w, e.Avoid)
			w.writeInt64(int64(len(e.Tags)))
			for _, tag := range e.Tags {
				writeID(w, tag)
			}
		}
	}
	return w.sum()
}

func sortedKeys(t RoutingTable) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []graph.NodeID) {
	slices.Sort(ids)
}
