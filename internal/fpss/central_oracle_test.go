package fpss

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
)

// computeCentralOracle is the pre-optimization ComputeCentral, kept
// verbatim as a differential oracle: sequential, one WithoutNode clone
// plus a full path-materializing AllPairs per node, map-based avoid
// sets, sort.Slice tag sorts. TestDifferentialComputeCentral proves
// the batched parallel core produces byte-identical tables.
func computeCentralOracle(g *graph.Graph) (*Solution, error) {
	if !g.IsBiconnected() {
		return nil, ErrNotBiconnected
	}
	n := g.N()
	sol := &Solution{
		Costs:   make(CostTable, n),
		Routing: make(map[graph.NodeID]RoutingTable, n),
		Pricing: make(map[graph.NodeID]PricingTable, n),
	}
	for i := 0; i < n; i++ {
		sol.Costs[graph.NodeID(i)] = g.Cost(graph.NodeID(i))
	}
	dist, paths, err := g.AllPairs()
	if err != nil {
		return nil, fmt.Errorf("all pairs: %w", err)
	}

	avoidDist := make(map[graph.NodeID][][]graph.Cost, n)
	avoidPath := make(map[graph.NodeID][][]graph.Path, n)
	for k := 0; k < n; k++ {
		kid := graph.NodeID(k)
		gk, err := g.WithoutNode(kid)
		if err != nil {
			return nil, err
		}
		d, p, err := gk.AllPairs()
		if err != nil {
			return nil, fmt.Errorf("all pairs without %d: %w", k, err)
		}
		avoidDist[kid] = d
		avoidPath[kid] = p
	}

	for i := 0; i < n; i++ {
		src := graph.NodeID(i)
		rt := make(RoutingTable, n-1)
		pt := make(PricingTable)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dst := graph.NodeID(j)
			p := paths[i][j]
			if p == nil {
				return nil, fmt.Errorf("fpss: no path %d→%d despite biconnectivity", i, j)
			}
			rt[dst] = RouteEntry{Dest: dst, Cost: dist[i][j], Path: p.Clone()}
			transits := p.TransitNodes()
			if len(transits) == 0 {
				continue
			}
			row := make(map[graph.NodeID]PriceEntry, len(transits))
			for _, k := range transits {
				witness := avoidPath[k][i][j]
				if witness == nil {
					return nil, fmt.Errorf("fpss: no avoid-%d path %d→%d", k, i, j)
				}
				b := avoidDist[k][i][j]
				row[k] = PriceEntry{
					Transit: k,
					Price:   g.Cost(k) + b - dist[i][j],
					Avoid:   witness.Clone(),
					Tags:    oracleTags(g, src, dst, k, b, avoidDist[k]),
				}
			}
			pt[dst] = row
		}
		sol.Routing[src] = rt
		sol.Pricing[src] = pt
	}
	return sol, nil
}

// oracleTags is the pre-optimization centralTags (Neighbors copy,
// append, sort.Slice).
func oracleTags(g *graph.Graph, src, dst, k graph.NodeID, b graph.Cost, distNoK [][]graph.Cost) []graph.NodeID {
	var tags []graph.NodeID
	for _, v := range g.Neighbors(src) {
		if v == k {
			continue
		}
		var contribution graph.Cost
		if v == dst {
			contribution = 0
		} else {
			dvj := distNoK[v][dst]
			if dvj >= graph.Infinity {
				continue
			}
			contribution = g.Cost(v) + dvj
		}
		if contribution == b {
			tags = append(tags, v)
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

func solutionsIdentical(t *testing.T, seed int, want, got *Solution) {
	t.Helper()
	if len(want.Costs) != len(got.Costs) {
		t.Fatalf("seed %d: cost table size %d != %d", seed, len(got.Costs), len(want.Costs))
	}
	if want.Costs.HashCosts() != got.Costs.HashCosts() {
		t.Fatalf("seed %d: cost table hash mismatch", seed)
	}
	for id, rt := range want.Routing {
		ort := got.Routing[id]
		if !rt.Equal(ort) {
			t.Fatalf("seed %d: routing table of %d differs", seed, id)
		}
		if rt.HashRouting() != ort.HashRouting() {
			t.Fatalf("seed %d: routing hash of %d differs", seed, id)
		}
	}
	for id, pt := range want.Pricing {
		opt := got.Pricing[id]
		if !pt.Equal(opt) {
			t.Fatalf("seed %d: pricing table of %d differs (tags/witnesses included)", seed, id)
		}
		if pt.HashPricing() != opt.HashPricing() {
			t.Fatalf("seed %d: pricing hash of %d differs", seed, id)
		}
	}
	if len(want.Routing) != len(got.Routing) || len(want.Pricing) != len(got.Pricing) {
		t.Fatalf("seed %d: table counts differ", seed)
	}
}

// TestDifferentialComputeCentral checks the batched, parallel pricing
// core against the sequential pre-optimization oracle on 200+ random
// seeded graphs: routes, costs, witness paths, identity tags, and the
// canonical table hashes the bank compares must all be byte-identical.
func TestDifferentialComputeCentral(t *testing.T) {
	const cases = 200
	for seed := 0; seed < cases; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 4 + rng.Intn(9) // 4..12
		var (
			g   *graph.Graph
			err error
		)
		switch seed % 3 {
		case 0:
			// Low max cost forces frequent route ties.
			g, err = graph.RandomBiconnected(n, n, 3, rng)
		case 1:
			g, err = graph.RingWithChords(n, n/2, 8, rng)
		default:
			g, err = graph.RandomBiconnected(n, 2*n, 20, rng)
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := computeCentralOracle(g)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		got, err := ComputeCentral(g)
		if err != nil {
			t.Fatalf("seed %d: new: %v", seed, err)
		}
		solutionsIdentical(t, seed, want, got)
	}
	// The paper's own Figure-1 topology, for good measure.
	g := graph.Figure1()
	want, err := computeCentralOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	solutionsIdentical(t, -1, want, got)
}

// TestComputeCentralParallelDeterministic pins the worker pool wide
// open and checks the fan-out still produces byte-identical tables —
// on a single-core host the NumCPU default would otherwise never take
// the parallel branch.
func TestComputeCentralParallelDeterministic(t *testing.T) {
	defer func() { centralWorkers = 0 }()
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(100 + seed)))
		g, err := graph.RandomBiconnected(6+seed%8, 10, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		centralWorkers = 1
		want, err := ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		centralWorkers = 8
		got, err := ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		solutionsIdentical(t, seed, want, got)
	}
}

// TestVCGOracleMatchesVCGPayment checks the cached-distance-view
// oracle against the from-scratch definition for every (src, dst, k).
func TestVCGOracleMatchesVCGPayment(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g, err := graph.RandomBiconnected(8+seed, 8, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		oracle := NewVCGOracle(g)
		n := g.N()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				for k := 0; k < n; k++ {
					want, err := VCGPayment(g, graph.NodeID(src), graph.NodeID(dst), graph.NodeID(k))
					if err != nil {
						t.Fatal(err)
					}
					got, err := oracle.Payment(graph.NodeID(src), graph.NodeID(dst), graph.NodeID(k))
					if err != nil {
						t.Fatal(err)
					}
					if want != got {
						t.Fatalf("seed %d (%d→%d via %d): VCGPayment %d != oracle %d",
							seed, src, dst, k, want, got)
					}
				}
			}
		}
	}
}
