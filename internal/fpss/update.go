package fpss

import (
	"repro/internal/graph"
)

// NeighborView is what a node has most recently heard from one
// neighbor: the neighbor's full routing and pricing tables. (FPSS
// sends incremental updates; full-table exchange converges to the
// same fixpoint and keeps the checker mirrors simple.)
type NeighborView struct {
	Routing RoutingTable
	Pricing PricingTable
}

// Clone returns a deep copy.
func (v NeighborView) Clone() NeighborView {
	return NeighborView{Routing: v.Routing.Clone(), Pricing: v.Pricing.Clone()}
}

// ComputeRouting recomputes DATA2 for `self` from DATA1 (declared
// costs) and the latest neighbor views, by one Bellman relaxation over
// all destinations:
//
//	d(self→j) = min over neighbors v:  v == j ? 0 : ĉ_v + d(v→j)
//
// with the composite (cost, hops, lex) tie-break. Repeated application
// as views refresh converges to the centralized solution: values start
// at infinity and only decrease (static network, non-negative costs).
//
// The function is pure — checker nodes re-run it on mirrored inputs to
// verify a principal's computation ([CHECK1]).
func ComputeRouting(self graph.NodeID, neighbors []graph.NodeID, costs CostTable, views map[graph.NodeID]NeighborView) RoutingTable {
	dests := make(map[graph.NodeID]bool)
	for _, v := range neighbors {
		dests[v] = true
		for d := range views[v].Routing {
			if d != self {
				dests[d] = true
			}
		}
	}
	out := make(RoutingTable, len(dests))
	for j := range dests {
		var best *RouteEntry
		for _, v := range neighbors {
			var cand RouteEntry
			if v == j {
				cand = RouteEntry{Dest: j, Cost: 0, Path: graph.Path{self, j}}
			} else {
				e, ok := views[v].Routing[j]
				if !ok {
					continue
				}
				vc, ok := costs[v]
				if !ok {
					continue // v's declared cost not yet known (phase 1 incomplete)
				}
				path := make(graph.Path, 0, len(e.Path)+1)
				path = append(path, self)
				path = append(path, e.Path...)
				cand = RouteEntry{Dest: j, Cost: vc + e.Cost, Path: path}
			}
			if best == nil || graph.Better(cand.Cost, cand.Path, best.Cost, best.Path) {
				c := cand
				best = &c
			}
		}
		if best != nil {
			out[j] = *best
		}
	}
	return out
}

// ComputePricing recomputes DATA3* for `self`: for every destination j
// in the routing table and every transit node k on LCP(self→j), the
// avoid-k value
//
//	B^k(self→j) = min over neighbors v ≠ k of
//	    0                          if v == j
//	    ĉ_v + B^k(v→j)             if k ∈ LCP(v→j)   (from v's pricing entry)
//	    ĉ_v + d(v→j)               otherwise          (v's own LCP already avoids k)
//
// and the FPSS VCG price p^k = ĉ_k + B^k − d(self→j). The witness path
// is carried for determinism and checker verification; Tags is the
// union of the neighbors attaining the minimal cost — the identity-tag
// field of DATA3* ("the node that triggered the most recent pricing
// table update", union on ties) that [BANK2] compares.
//
// Pure, for the same reason as ComputeRouting ([CHECK2]).
func ComputePricing(self graph.NodeID, neighbors []graph.NodeID, costs CostTable, routing RoutingTable, views map[graph.NodeID]NeighborView) PricingTable {
	out := make(PricingTable)
	for j, route := range routing {
		transits := route.Path.TransitNodes()
		if len(transits) == 0 {
			continue
		}
		row := make(map[graph.NodeID]PriceEntry, len(transits))
		for _, k := range transits {
			kc, ok := costs[k]
			if !ok {
				continue
			}
			var (
				bestCost graph.Cost = graph.Infinity
				bestPath graph.Path
			)
			for _, v := range neighbors {
				if v == k {
					continue
				}
				var (
					contribution graph.Cost
					witness      graph.Path
					ok           bool
				)
				switch {
				case v == j:
					contribution, witness, ok = 0, graph.Path{self, j}, true
				default:
					contribution, witness, ok = neighborAvoidValue(self, v, j, k, costs, views)
				}
				if !ok {
					continue
				}
				if bestPath == nil || graph.Better(contribution, witness, bestCost, bestPath) {
					bestCost, bestPath = contribution, witness
				}
			}
			if bestPath == nil {
				continue // no avoid-k information yet; a later update fills it
			}
			row[k] = PriceEntry{
				Transit: k,
				Price:   kc + bestCost - route.Cost,
				Avoid:   bestPath,
				Tags:    tagSet(self, j, k, bestCost, neighbors, costs, views),
			}
		}
		if len(row) > 0 {
			out[j] = row
		}
	}
	return out
}

// neighborAvoidValue returns v's best avoid-k continuation toward j as
// seen by self: the contribution cost, the witness path (self
// prepended) and whether the value is available yet.
func neighborAvoidValue(self, v, j, k graph.NodeID, costs CostTable, views map[graph.NodeID]NeighborView) (graph.Cost, graph.Path, bool) {
	view, ok := views[v]
	if !ok {
		return 0, nil, false
	}
	vc, ok := costs[v]
	if !ok {
		return 0, nil, false
	}
	e, ok := view.Routing[j]
	if !ok {
		return 0, nil, false
	}
	if !e.Path.Contains(k) {
		// v's own LCP avoids k: d(v→j) is an avoid-k value.
		path := make(graph.Path, 0, len(e.Path)+1)
		path = append(path, self)
		path = append(path, e.Path...)
		return vc + e.Cost, path, true
	}
	pe, ok := view.Pricing[j][k]
	if !ok {
		return 0, nil, false
	}
	// Recover B^k(v→j) from v's price: p = ĉ_k + B − d  ⇒  B = p − ĉ_k + d.
	kc, ok := costs[k]
	if !ok {
		return 0, nil, false
	}
	b := pe.Price - kc + e.Cost
	path := make(graph.Path, 0, len(pe.Avoid)+1)
	path = append(path, self)
	path = append(path, pe.Avoid...)
	return vc + b, path, true
}

// tagSet returns the sorted union of neighbors whose contribution cost
// equals the chosen minimum b.
func tagSet(self, j, k graph.NodeID, b graph.Cost, neighbors []graph.NodeID, costs CostTable, views map[graph.NodeID]NeighborView) []graph.NodeID {
	var tags []graph.NodeID
	for _, v := range neighbors {
		if v == k {
			continue
		}
		var contribution graph.Cost
		if v == j {
			contribution = 0
		} else {
			c, _, ok := neighborAvoidValue(self, v, j, k, costs, views)
			if !ok {
				continue
			}
			contribution = c
		}
		if contribution == b {
			tags = append(tags, v)
		}
	}
	sortIDs(tags)
	return tags
}
