package fpss

import (
	"repro/internal/graph"
)

// NeighborView is what a node has most recently heard from one
// neighbor: the neighbor's full routing and pricing tables. (FPSS
// sends incremental updates; full-table exchange converges to the
// same fixpoint and keeps the checker mirrors simple.)
type NeighborView struct {
	Routing RoutingTable
	Pricing PricingTable
}

// Clone returns a deep copy.
func (v NeighborView) Clone() NeighborView {
	return NeighborView{Routing: v.Routing.Clone(), Pricing: v.Pricing.Clone()}
}

// ComputeRouting recomputes DATA2 for `self` from DATA1 (declared
// costs) and the latest neighbor views, by one Bellman relaxation over
// all destinations:
//
//	d(self→j) = min over neighbors v:  v == j ? 0 : ĉ_v + d(v→j)
//
// with the composite (cost, hops, lex) tie-break. Repeated application
// as views refresh converges to the centralized solution: values start
// at infinity and only decrease (static network, non-negative costs).
//
// The function is pure — checker nodes re-run it on mirrored inputs to
// verify a principal's computation ([CHECK1]).
func ComputeRouting(self graph.NodeID, neighbors []graph.NodeID, costs CostTable, views map[graph.NodeID]NeighborView) RoutingTable {
	return ComputeRoutingScratch(nil, self, neighbors, costs, views)
}

// ComputeRoutingScratch is ComputeRouting drawing its table, entry
// paths, and working set from s. The result is value-identical to
// ComputeRouting; with a nil scratch it is ComputeRouting. See
// ComputeScratch for the ownership rules.
func ComputeRoutingScratch(s *ComputeScratch, self graph.NodeID, neighbors []graph.NodeID, costs CostTable, views map[graph.NodeID]NeighborView) RoutingTable {
	dests := s.destSet()
	for _, v := range neighbors {
		dests[v] = true
		for d := range views[v].Routing {
			if d != self {
				dests[d] = true
			}
		}
	}
	out := s.routingTable(len(dests))
	for j := range dests {
		var (
			bestCost graph.Cost
			bestBase graph.Path
			found    bool
		)
		direct := [1]graph.NodeID{j}
		for _, v := range neighbors {
			var (
				candCost graph.Cost
				candBase graph.Path
			)
			if v == j {
				candCost, candBase = 0, direct[:]
			} else {
				e, ok := views[v].Routing[j]
				if !ok {
					continue
				}
				vc, ok := costs[v]
				if !ok {
					continue // v's declared cost not yet known (phase 1 incomplete)
				}
				candCost, candBase = vc+e.Cost, e.Path
			}
			if !found || betterBase(candCost, candBase, bestCost, bestBase) {
				bestCost, bestBase, found = candCost, candBase, true
			}
		}
		if found {
			out[j] = RouteEntry{Dest: j, Cost: bestCost, Path: s.prepend(self, bestBase)}
		}
	}
	return out
}

// betterBase reports whether candidate (c1, base1) beats (c2, base2)
// under the composite route order, where each full path is the shared
// prefix `self` plus the base path. Because both candidates carry the
// same one-node prefix, comparing (cost, len(base), base-lex) is
// exactly graph.Better on the materialized paths — which lets the
// relaxation loops compare every candidate without allocating and
// materialize only the winner (see prepend).
func betterBase(c1 graph.Cost, base1 graph.Path, c2 graph.Cost, base2 graph.Path) bool {
	if c1 != c2 {
		return c1 < c2
	}
	if len(base1) != len(base2) {
		return len(base1) < len(base2)
	}
	return base1.Less(base2)
}

// ComputePricing recomputes DATA3* for `self`: for every destination j
// in the routing table and every transit node k on LCP(self→j), the
// avoid-k value
//
//	B^k(self→j) = min over neighbors v ≠ k of
//	    0                          if v == j
//	    ĉ_v + B^k(v→j)             if k ∈ LCP(v→j)   (from v's pricing entry)
//	    ĉ_v + d(v→j)               otherwise          (v's own LCP already avoids k)
//
// and the FPSS VCG price p^k = ĉ_k + B^k − d(self→j). The witness path
// is carried for determinism and checker verification; Tags is the
// union of the neighbors attaining the minimal cost — the identity-tag
// field of DATA3* ("the node that triggered the most recent pricing
// table update", union on ties) that [BANK2] compares.
//
// Pure, for the same reason as ComputeRouting ([CHECK2]).
func ComputePricing(self graph.NodeID, neighbors []graph.NodeID, costs CostTable, routing RoutingTable, views map[graph.NodeID]NeighborView) PricingTable {
	return ComputePricingScratch(nil, self, neighbors, costs, routing, views)
}

// ComputePricingScratch is ComputePricing drawing its tables, rows,
// witness paths, and tag sets from s. The result is value-identical to
// ComputePricing; with a nil scratch it is ComputePricing. See
// ComputeScratch for the ownership rules.
func ComputePricingScratch(s *ComputeScratch, self graph.NodeID, neighbors []graph.NodeID, costs CostTable, routing RoutingTable, views map[graph.NodeID]NeighborView) PricingTable {
	out := s.pricingTable()
	// contribs records each neighbor's avoid-k contribution for the
	// current (j, k) so the identity-tag pass reuses the relaxation
	// loop's values instead of recomputing them.
	contribs := s.contribList(len(neighbors))
	defer func() { s.keepContribs(contribs) }()
	for j, route := range routing {
		transits := route.Path.TransitNodes()
		if len(transits) == 0 {
			continue
		}
		row := s.row(len(transits))
		for _, k := range transits {
			kc, ok := costs[k]
			if !ok {
				continue
			}
			var (
				bestCost graph.Cost
				bestBase graph.Path
				found    bool
			)
			direct := [1]graph.NodeID{j}
			contribs = contribs[:0]
			for _, v := range neighbors {
				if v == k {
					continue
				}
				var (
					contribution graph.Cost
					base         graph.Path
					ok           bool
				)
				switch {
				case v == j:
					contribution, base, ok = 0, direct[:], true
				default:
					contribution, base, ok = neighborAvoidValue(v, j, k, costs, views)
				}
				if !ok {
					continue
				}
				contribs = append(contribs, contrib{v: v, cost: contribution})
				if !found || betterBase(contribution, base, bestCost, bestBase) {
					bestCost, bestBase, found = contribution, base, true
				}
			}
			if !found {
				continue // no avoid-k information yet; a later update fills it
			}
			row[k] = PriceEntry{
				Transit: k,
				Price:   kc + bestCost - route.Cost,
				Avoid:   s.prepend(self, bestBase),
				Tags:    tagSet(s, bestCost, contribs),
			}
		}
		if len(row) > 0 {
			out[j] = row
		} else if s != nil {
			// No priceable transit yet: hand the empty row straight back.
			s.rows = append(s.rows, row)
		}
	}
	return out
}

// neighborAvoidValue returns v's best avoid-k continuation toward j:
// the contribution cost, the *base* witness path (a read-only view of
// v's tables, without the self prefix — see betterBase/prepend) and
// whether the value is available yet.
func neighborAvoidValue(v, j, k graph.NodeID, costs CostTable, views map[graph.NodeID]NeighborView) (graph.Cost, graph.Path, bool) {
	view, ok := views[v]
	if !ok {
		return 0, nil, false
	}
	vc, ok := costs[v]
	if !ok {
		return 0, nil, false
	}
	e, ok := view.Routing[j]
	if !ok {
		return 0, nil, false
	}
	if !e.Path.Contains(k) {
		// v's own LCP avoids k: d(v→j) is an avoid-k value.
		return vc + e.Cost, e.Path, true
	}
	pe, ok := view.Pricing[j][k]
	if !ok {
		return 0, nil, false
	}
	// Recover B^k(v→j) from v's price: p = ĉ_k + B − d  ⇒  B = p − ĉ_k + d.
	kc, ok := costs[k]
	if !ok {
		return 0, nil, false
	}
	b := pe.Price - kc + e.Cost
	return vc + b, pe.Avoid, true
}

// contrib is one neighbor's avoid-k contribution cost for the current
// (destination, transit) pair.
type contrib struct {
	v    graph.NodeID
	cost graph.Cost
}

// tagSet returns the sorted union of neighbors whose contribution cost
// equals the chosen minimum b, straight from the relaxation loop's
// recorded contributions. The set is carved from the scratch arena
// when one is supplied.
func tagSet(s *ComputeScratch, b graph.Cost, contribs []contrib) []graph.NodeID {
	n := 0
	for _, c := range contribs {
		if c.cost == b {
			n++
		}
	}
	tags := s.allocIDs(n)
	for _, c := range contribs {
		if c.cost == b {
			tags = append(tags, c.v)
		}
	}
	sortIDs(tags)
	return tags
}
