package fpss

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Traffic is the demand matrix: (src, dst) → packets.
type Traffic map[[2]graph.NodeID]int64

// Flows returns the demands in deterministic order.
func (t Traffic) Flows() [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	slices.SortFunc(out, func(a, b [2]graph.NodeID) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return out
}

// PricingScheme selects how sources compensate transit nodes.
type PricingScheme int

const (
	// SchemeVCG pays the FPSS VCG price from the source's DATA3*
	// (strategyproof; the mechanism under study).
	SchemeVCG PricingScheme = iota + 1
	// SchemeDeclaredCost pays each transit node its declared cost —
	// the naive baseline FPSS §1 warns about ("under many pricing
	// schemes, a node could be better off lying about its costs");
	// Example 1 / experiment E2 quantifies the manipulation it admits.
	SchemeDeclaredCost
)

// ExecConfig parameterizes execution-phase accounting.
type ExecConfig struct {
	// TrueCosts are the real per-packet transit costs (utilities are
	// evaluated at true types).
	TrueCosts CostTable
	// DeclaredCosts are the DATA1 declared costs (used by
	// SchemeDeclaredCost and for reference).
	DeclaredCosts CostTable
	// Traffic is the demand matrix.
	Traffic Traffic
	// Flows optionally fixes the flow enumeration order (the output
	// of Traffic.Flows()). Deviation searches precompute it once per
	// scenario — re-sorting the demand matrix on every run is pure
	// rework. When nil, Execute derives it from Traffic. Shared
	// read-only; Execute never mutates it.
	Flows [][2]graph.NodeID
	// DeliveryValue is the source's per-packet value for delivery.
	DeliveryValue int64
	// UndeliveredPenalty is the source's per-packet loss when a packet
	// cannot be routed (missing or looping tables).
	UndeliveredPenalty int64
	// Scheme selects the pricing rule (default SchemeVCG).
	Scheme PricingScheme
	// ReportPayment lets a node misreport its DATA4 payment list to
	// the accounting mechanism (execution-phase deviation; the
	// original FPSS trusts the report). nil entries are truthful.
	ReportPayment map[graph.NodeID]func(truth PaymentList) PaymentList
	// MessageCost charges each node per protocol message it sent
	// (set >0 to make pure message-dropping strictly profitable, the
	// incentive strong-CC must defeat).
	MessageCost int64
	// MessagesSent is the per-node protocol message count (from sim
	// counters), charged at MessageCost.
	MessagesSent map[graph.NodeID]int64
}

// ExecResult is the outcome of the execution phase under the original
// (trusting) FPSS accounting.
type ExecResult struct {
	// Utilities is each node's quasilinear utility: delivery value
	// − payments made − true transit costs + payments received
	// − message costs.
	Utilities map[graph.NodeID]int64
	// Obligations is each source's truthful DATA4 (what it owes).
	Obligations map[graph.NodeID]PaymentList
	// Reported is each source's reported DATA4 (possibly a lie).
	Reported map[graph.NodeID]PaymentList
	// Delivered / Undelivered count packets.
	Delivered, Undelivered int64
	// Routes records the realized hop-by-hop path per flow (nil when
	// undeliverable).
	Routes map[[2]graph.NodeID]graph.Path
}

// Execute performs execution-phase accounting over converged (possibly
// manipulated) tables. Packets are forwarded hop-by-hop using each
// hop's own routing table, so inconsistent tables can strand packets —
// the efficiency damage Example 1 describes.
func Execute(routing map[graph.NodeID]RoutingTable, pricing map[graph.NodeID]PricingTable, cfg ExecConfig) (*ExecResult, error) {
	if cfg.TrueCosts == nil {
		return nil, errors.New("fpss: ExecConfig.TrueCosts required")
	}
	scheme := cfg.Scheme
	if scheme == 0 {
		scheme = SchemeVCG
	}
	res := &ExecResult{
		Utilities:   make(map[graph.NodeID]int64, len(routing)),
		Obligations: make(map[graph.NodeID]PaymentList),
		Reported:    make(map[graph.NodeID]PaymentList),
		Routes:      make(map[[2]graph.NodeID]graph.Path),
	}
	for id := range cfg.TrueCosts {
		res.Utilities[id] = 0
	}

	flows := cfg.Flows
	if flows == nil {
		flows = cfg.Traffic.Flows()
	}
	for _, flow := range flows {
		src, dst := flow[0], flow[1]
		packets := cfg.Traffic[flow]
		if packets <= 0 || src == dst {
			continue
		}
		route, ok := forward(routing, src, dst)
		res.Routes[flow] = route
		if !ok {
			res.Undelivered += packets
			res.Utilities[src] -= cfg.UndeliveredPenalty * packets
			continue
		}
		res.Delivered += packets
		res.Utilities[src] += cfg.DeliveryValue * packets
		// Real transit costs accrue on the realized route.
		for _, k := range route.TransitNodes() {
			res.Utilities[k] -= int64(cfg.TrueCosts[k]) * packets
		}
		// The source's obligation comes from its own tables (its
		// believed LCP), as in FPSS DATA4.
		obligation := obligationFor(routing[src], pricing[src], dst, packets, scheme, cfg.DeclaredCosts)
		if res.Obligations[src] == nil {
			res.Obligations[src] = make(PaymentList)
		}
		for k, amt := range obligation {
			res.Obligations[src][k] += amt
		}
	}

	// Reporting and settlement: the original FPSS accounting trusts
	// each source's reported DATA4.
	for id := range res.Utilities {
		truth := res.Obligations[id]
		if truth == nil {
			truth = make(PaymentList)
		}
		reported := truth.Clone()
		if hook := cfg.ReportPayment[id]; hook != nil {
			reported = hook(truth.Clone())
		}
		res.Reported[id] = reported
		res.Utilities[id] -= reported.Total()
		for k, amt := range reported {
			res.Utilities[k] += amt
		}
	}

	// Message costs.
	if cfg.MessageCost > 0 {
		for id, count := range cfg.MessagesSent {
			if _, ok := res.Utilities[id]; ok {
				res.Utilities[id] -= cfg.MessageCost * count
			}
		}
	}
	return res, nil
}

// forward routes hop-by-hop using each hop's routing table; returns
// the realized path and whether dst was reached within a TTL.
func forward(routing map[graph.NodeID]RoutingTable, src, dst graph.NodeID) (graph.Path, bool) {
	path := graph.Path{src}
	cur := src
	ttl := len(routing) + 2
	for hops := 0; hops < ttl; hops++ {
		if cur == dst {
			return path, true
		}
		e, ok := routing[cur][dst]
		if !ok || len(e.Path) < 2 || e.Path[0] != cur {
			return path, false
		}
		next := e.Path[1]
		cur = next
		path = append(path, next)
	}
	return path, false
}

// obligationFor computes a source's truthful payment list for one flow
// from its own (believed) tables.
func obligationFor(rt RoutingTable, pt PricingTable, dst graph.NodeID, packets int64, scheme PricingScheme, declared CostTable) PaymentList {
	out := make(PaymentList)
	e, ok := rt[dst]
	if !ok {
		return out
	}
	switch scheme {
	case SchemeDeclaredCost:
		for _, k := range e.Path.TransitNodes() {
			out[k] += int64(declared[k]) * packets
		}
	default: // SchemeVCG
		for k, pe := range pt[dst] {
			out[k] += int64(pe.Price) * packets
		}
	}
	return out
}

// AllToAllTraffic builds a uniform demand matrix: every ordered pair
// exchanges `packets` packets.
func AllToAllTraffic(n int, packets int64) Traffic {
	t := make(Traffic, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				t[[2]graph.NodeID{graph.NodeID(i), graph.NodeID(j)}] = packets
			}
		}
	}
	return t
}

// PerNodeMessages converts sim per-address counters into per-node
// counts, ignoring non-node addresses (e.g. the bank).
func PerNodeMessages(perOut map[sim.Addr]int64) map[graph.NodeID]int64 {
	out := make(map[graph.NodeID]int64, len(perOut))
	for a, c := range perOut {
		if a == BankAddr {
			continue
		}
		out[graph.NodeID(a)] = c
	}
	return out
}

// String implements fmt.Stringer for schemes.
func (s PricingScheme) String() string {
	switch s {
	case SchemeVCG:
		return "vcg"
	case SchemeDeclaredCost:
		return "declared-cost"
	default:
		return fmt.Sprintf("PricingScheme(%d)", int(s))
	}
}
