package fpss

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// BankAddr is the simulator address reserved for the bank / external
// coordinator (it is not a graph node).
const BankAddr sim.Addr = 1 << 20

// Config describes one protocol run.
type Config struct {
	// Graph carries the true topology and true transit costs.
	Graph *graph.Graph
	// Strategies maps nodes to deviations; missing entries (or nil)
	// follow the suggested specification.
	Strategies map[graph.NodeID]*Strategy
	// MaxSteps bounds each phase's event deliveries (default 1<<20).
	MaxSteps int64
	// Loss installs a seeded per-link drop model with a bounded retry
	// envelope (see sim.LossModel). The zero value is a reliable
	// network. Permanent losses surface in the phase counters' Lost
	// field; callers that need loss-vs-deviation attribution check it.
	Loss sim.LossModel
	// Net optionally supplies a caller-owned simulator network — e.g.
	// a worker's play-context arena — handed over clean and reset
	// (not released) after the run, so concurrent deviation searches
	// stop contending on the global network pool. nil acquires from
	// that pool as before.
	Net *sim.Network
}

// Result is the outcome of running both construction phases.
type Result struct {
	Nodes  map[graph.NodeID]*Node
	Phase1 sim.Counters
	Phase2 sim.Counters
}

// TotalMessages returns the protocol message count across phases.
func (r *Result) TotalMessages() int64 { return r.Phase2.Sent } // Phase2 counters are cumulative

// Run executes the original FPSS distributed protocol: phase 1 (cost
// flood → DATA1) to quiescence, then phase 2 (routing and pricing
// iteration → DATA2/DATA3*) to quiescence. The returned counters are
// cumulative snapshots taken at each phase boundary.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("fpss: nil graph")
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	// A pooled network: deviation searches call Run once per
	// (node, deviation) play, and recycling the handler tables and
	// event-queue storage keeps that loop off the allocator.
	net := cfg.Net
	if net == nil {
		net = sim.AcquireNetwork()
		defer net.Release()
	} else {
		defer net.Reset()
	}
	if cfg.Loss.Enabled() {
		net.SetLoss(cfg.Loss)
	}
	nodes := make(map[graph.NodeID]*Node, cfg.Graph.N())
	for i := 0; i < cfg.Graph.N(); i++ {
		id := graph.NodeID(i)
		// AdjView shares the graph's CSR row; NewNode copies it.
		node := NewNode(id, cfg.Graph.Cost(id), cfg.Graph.AdjView(id), cfg.Strategies[id])
		nodes[id] = node
		if err := net.Attach(sim.Addr(id), node); err != nil {
			return nil, fmt.Errorf("attach %d: %w", id, err)
		}
	}
	phase1, err := net.Run(maxSteps)
	if err != nil {
		return nil, fmt.Errorf("phase 1: %w", err)
	}
	for i := 0; i < cfg.Graph.N(); i++ {
		net.Inject(BankAddr, sim.Addr(i), StartPhase2{})
	}
	phase2, err := net.Resume(maxSteps)
	if err != nil {
		return nil, fmt.Errorf("phase 2: %w", err)
	}
	return &Result{Nodes: nodes, Phase1: phase1, Phase2: phase2}, nil
}
