package fpss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestComputeRoutingNoViews(t *testing.T) {
	// With no neighbor views, only direct-neighbor routes exist.
	rt := ComputeRouting(0, []graph.NodeID{1, 2}, CostTable{0: 1, 1: 2, 2: 3}, nil)
	if len(rt) != 2 {
		t.Fatalf("routes = %d, want 2", len(rt))
	}
	for _, v := range []graph.NodeID{1, 2} {
		e, ok := rt[v]
		if !ok || e.Cost != 0 || !e.Path.Equal(graph.Path{0, v}) {
			t.Errorf("route to %d = %+v", v, e)
		}
	}
}

func TestComputeRoutingUsesNeighborInfo(t *testing.T) {
	// 0—1—9: node 0 learns the 9 route through 1's view.
	views := map[graph.NodeID]NeighborView{
		1: {Routing: RoutingTable{
			9: {Dest: 9, Cost: 0, Path: graph.Path{1, 9}},
		}},
	}
	rt := ComputeRouting(0, []graph.NodeID{1}, CostTable{0: 1, 1: 5, 9: 2}, views)
	e, ok := rt[9]
	if !ok {
		t.Fatal("no route to 9")
	}
	if e.Cost != 5 {
		t.Errorf("cost = %d, want 5 (transit through 1)", e.Cost)
	}
	if !e.Path.Equal(graph.Path{0, 1, 9}) {
		t.Errorf("path = %v", e.Path)
	}
}

func TestComputeRoutingSkipsUnknownCosts(t *testing.T) {
	// Neighbor cost missing from DATA1 ⇒ its advertised routes are
	// unusable until phase 1 completes.
	views := map[graph.NodeID]NeighborView{
		1: {Routing: RoutingTable{9: {Dest: 9, Cost: 0, Path: graph.Path{1, 9}}}},
	}
	rt := ComputeRouting(0, []graph.NodeID{1}, CostTable{0: 1}, views)
	if _, ok := rt[9]; ok {
		t.Error("route built without knowing transit cost")
	}
	// The direct route to 1 itself needs no cost knowledge.
	if _, ok := rt[1]; !ok {
		t.Error("direct route missing")
	}
}

func TestComputeRoutingPrefersCheaperThenShorterThenLex(t *testing.T) {
	// Two neighbors both reach 9; neighbor 1 has transit cost 1,
	// neighbor 2 transit cost 3.
	views := map[graph.NodeID]NeighborView{
		1: {Routing: RoutingTable{9: {Dest: 9, Cost: 0, Path: graph.Path{1, 9}}}},
		2: {Routing: RoutingTable{9: {Dest: 9, Cost: 0, Path: graph.Path{2, 9}}}},
	}
	rt := ComputeRouting(0, []graph.NodeID{1, 2}, CostTable{0: 1, 1: 1, 2: 3}, views)
	if rt[9].Cost != 1 || !rt[9].Path.Equal(graph.Path{0, 1, 9}) {
		t.Errorf("route = %+v, want via 1", rt[9])
	}
	// Equal transit costs: shorter path wins.
	views[2] = NeighborView{Routing: RoutingTable{9: {Dest: 9, Cost: 0, Path: graph.Path{2, 5, 9}}}}
	rt = ComputeRouting(0, []graph.NodeID{1, 2}, CostTable{0: 1, 1: 2, 2: 2, 5: 0}, views)
	if !rt[9].Path.Equal(graph.Path{0, 1, 9}) {
		t.Errorf("hop tie-break failed: %v", rt[9].Path)
	}
}

func TestComputePricingDirectNeighborContribution(t *testing.T) {
	// Triangle 0-1-9 plus edge 0-9: for dest 9 via transit 1, the
	// direct 0-9 edge is the avoid path (contribution 0).
	views := map[graph.NodeID]NeighborView{
		1: {Routing: RoutingTable{9: {Dest: 9, Cost: 0, Path: graph.Path{1, 9}}}},
		9: {Routing: RoutingTable{}},
	}
	costs := CostTable{0: 1, 1: 4, 9: 2}
	routing := RoutingTable{
		// Force a route through 1 to make 1 a transit node (as if the
		// direct edge were costly — synthetic input to the pure fn).
		9: {Dest: 9, Cost: 4, Path: graph.Path{0, 1, 9}},
	}
	pt := ComputePricing(0, []graph.NodeID{1, 9}, costs, routing, views)
	e, ok := pt[9][1]
	if !ok {
		t.Fatal("no price entry for transit 1")
	}
	// B = 0 (direct edge 0-9), price = ĉ_1 + 0 − d(0,9) = 4 + 0 − 4 = 0.
	if e.Price != 0 {
		t.Errorf("price = %d, want 0", e.Price)
	}
	if !e.Avoid.Equal(graph.Path{0, 9}) {
		t.Errorf("witness = %v, want direct edge", e.Avoid)
	}
	if len(e.Tags) != 1 || e.Tags[0] != 9 {
		t.Errorf("tags = %v, want [9]", e.Tags)
	}
}

func TestComputePricingWaitsForAvoidInfo(t *testing.T) {
	// Only neighbor is 1 and 1's LCP to 9 goes through... itself (1 is
	// the transit under scrutiny), and 1 has no pricing entry yet: no
	// price entry can be built.
	views := map[graph.NodeID]NeighborView{
		1: {Routing: RoutingTable{9: {Dest: 9, Cost: 0, Path: graph.Path{1, 9}}}},
	}
	costs := CostTable{0: 1, 1: 4, 9: 2}
	routing := RoutingTable{9: {Dest: 9, Cost: 4, Path: graph.Path{0, 1, 9}}}
	pt := ComputePricing(0, []graph.NodeID{1}, costs, routing, views)
	if _, ok := pt[9]; ok {
		t.Error("price entry built without avoid-k information")
	}
}

func TestComputePricingRecoverBFromNeighborPrice(t *testing.T) {
	// Chain 0—1—2—9 with a detour at 1: 1 advertises an avoid-2 price
	// for dest 9; 0 recovers B and adds its own hop.
	costs := CostTable{0: 1, 1: 2, 2: 3, 9: 1}
	views := map[graph.NodeID]NeighborView{
		1: {
			Routing: RoutingTable{9: {Dest: 9, Cost: 3, Path: graph.Path{1, 2, 9}}},
			Pricing: PricingTable{9: {2: PriceEntry{
				Transit: 2,
				Price:   3 + 10 - 3, // ĉ_2 + B_1 − d_1 with B_1 = 10
				Avoid:   graph.Path{1, 7, 9},
				Tags:    []graph.NodeID{7},
			}}},
		},
	}
	routing := RoutingTable{9: {Dest: 9, Cost: 5, Path: graph.Path{0, 1, 2, 9}}}
	pt := ComputePricing(0, []graph.NodeID{1}, costs, routing, views)
	e, ok := pt[9][2]
	if !ok {
		t.Fatal("no entry for transit 2")
	}
	// B_0 = ĉ_1 + B_1 = 2 + 10 = 12; price = ĉ_2 + B_0 − d_0 = 3+12−5 = 10.
	if e.Price != 10 {
		t.Errorf("price = %d, want 10", e.Price)
	}
	if !e.Avoid.Equal(graph.Path{0, 1, 7, 9}) {
		t.Errorf("witness = %v", e.Avoid)
	}
}

// Property: on random biconnected graphs, a single global fixpoint
// iteration of the pure update functions (synchronous sweeps) matches
// the centralized solution — independent of the event-driven path.
func TestPropertySynchronousFixpointMatchesCentral(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(rng.Int31n(4))
		g, err := graph.RandomBiconnected(n, int(rng.Int31n(int32(n))), 9, rng)
		if err != nil {
			return false
		}
		sol, err := ComputeCentral(g)
		if err != nil {
			return false
		}
		costs := make(CostTable, n)
		neighbors := make(map[graph.NodeID][]graph.NodeID, n)
		for i := 0; i < n; i++ {
			id := graph.NodeID(i)
			costs[id] = g.Cost(id)
			neighbors[id] = g.Neighbors(id)
		}
		routing := make(map[graph.NodeID]RoutingTable, n)
		pricing := make(map[graph.NodeID]PricingTable, n)
		// Synchronous rounds until stable.
		for round := 0; round < 4*n; round++ {
			changed := false
			for i := 0; i < n; i++ {
				id := graph.NodeID(i)
				views := make(map[graph.NodeID]NeighborView)
				for _, v := range neighbors[id] {
					views[v] = NeighborView{Routing: routing[v], Pricing: pricing[v]}
				}
				nr := ComputeRouting(id, neighbors[id], costs, views)
				np := ComputePricing(id, neighbors[id], costs, nr, views)
				if !nr.Equal(routing[id]) || !np.Equal(pricing[id]) {
					changed = true
				}
				routing[id] = nr
				pricing[id] = np
			}
			if !changed {
				break
			}
		}
		for i := 0; i < n; i++ {
			id := graph.NodeID(i)
			if !routing[id].Equal(sol.Routing[id]) || !pricing[id].Equal(sol.Pricing[id]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: distributed VCG prices are individually rational (price ≥
// declared transit cost) at every node for every entry.
func TestPropertyDistributedPricesIR(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(rng.Int31n(4))
		g, err := graph.RandomBiconnected(n, int(rng.Int31n(int32(n))), 9, rng)
		if err != nil {
			return false
		}
		res, err := Run(Config{Graph: g})
		if err != nil {
			return false
		}
		for _, node := range res.Nodes {
			for _, row := range node.Pricing() {
				for k, e := range row {
					if e.Price < g.Cost(k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: every pricing entry's witness path is a real path in the
// graph that avoids the transit node and starts/ends correctly.
func TestPropertyWitnessPathsValid(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(rng.Int31n(4))
		g, err := graph.RandomBiconnected(n, int(rng.Int31n(int32(n))), 9, rng)
		if err != nil {
			return false
		}
		res, err := Run(Config{Graph: g})
		if err != nil {
			return false
		}
		for id, node := range res.Nodes {
			for dst, row := range node.Pricing() {
				for k, e := range row {
					if e.Avoid.Contains(k) {
						return false
					}
					if e.Avoid[0] != id || e.Avoid[len(e.Avoid)-1] != dst {
						return false
					}
					if _, err := g.PathCost(e.Avoid); err != nil {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistributedConvergence(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, err := graph.RingWithChords(16, 8, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Graph: g}); err != nil {
			b.Fatal(err)
		}
	}
}
