package fpss

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// evolveGraph mutates g the way a churn boundary does — leaves with a
// dense monotone renumbering, tail joiners, carried edges, repair
// edges, cost redraws — returning the new graph and the remap.
func evolveGraph(t *testing.T, rng *rand.Rand, g *graph.Graph, maxCost int64) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	n := g.N()
	nLeave := rng.Intn(n/4 + 1)
	if n-nLeave < 4 {
		nLeave = n - 4
	}
	leave := make(map[graph.NodeID]bool)
	for len(leave) < nLeave {
		leave[graph.NodeID(rng.Intn(n))] = true
	}
	oldToNew := make([]graph.NodeID, n)
	var surv []graph.NodeID
	for v := 0; v < n; v++ {
		if leave[graph.NodeID(v)] {
			oldToNew[v] = -1
			continue
		}
		oldToNew[v] = graph.NodeID(len(surv))
		surv = append(surv, graph.NodeID(v))
	}
	nNew := len(surv) + rng.Intn(3)
	ng := graph.New(nNew)
	for w, ov := range surv {
		if err := ng.SetCost(graph.NodeID(w), g.Cost(ov)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Edges() {
		a, b := oldToNew[e[0]], oldToNew[e[1]]
		if a >= 0 && b >= 0 {
			if err := ng.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := len(surv); j < nNew; j++ {
		if err := ng.SetCost(graph.NodeID(j), graph.Cost(rng.Int63n(maxCost+1))); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			if err := ng.AddEdge(graph.NodeID(j), graph.NodeID(rng.Intn(j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := graph.RepairBiconnected(ng); err != nil {
		t.Fatalf("RepairBiconnected: %v", err)
	}
	for w := 0; w < len(surv); w++ {
		if rng.Float64() < 0.25 {
			if err := ng.SetCost(graph.NodeID(w), graph.Cost(rng.Int63n(maxCost+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ng, oldToNew
}

// TestCentralEvolveMatchesScratch chains several churn-like evolutions
// and requires every evolved Solution to deep-equal a from-scratch
// ComputeCentral of the same graph — routing paths, prices, witness
// avoid paths and identity tags included.
func TestCentralEvolveMatchesScratch(t *testing.T) {
	for _, maxCost := range []int64{1, 4, 60} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed*313 + maxCost))
			g, err := graph.RandomBiconnected(10, 6, graph.Cost(maxCost), rng)
			if err != nil {
				t.Fatal(err)
			}
			c, err := ComputeCentralState(g)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				label := fmt.Sprintf("c=%d s=%d step=%d", maxCost, seed, step)
				ng, oldToNew := evolveGraph(t, rng, g, maxCost)
				d, err := graph.NewDelta(g, ng, oldToNew)
				if err != nil {
					t.Fatalf("%s: NewDelta: %v", label, err)
				}
				c, err = c.Evolve(ng, d)
				if err != nil {
					t.Fatalf("%s: Evolve: %v", label, err)
				}
				want, err := ComputeCentral(ng)
				if err != nil {
					t.Fatalf("%s: ComputeCentral: %v", label, err)
				}
				if !reflect.DeepEqual(c.Sol, want) {
					t.Fatalf("%s: evolved solution differs from scratch", label)
				}
				g = ng
			}
		}
	}
}

// TestCentralEvolveNilDelta pins the degradation path: a nil delta (or
// nil receiver) recomputes from scratch rather than failing.
func TestCentralEvolveNilDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.RandomBiconnected(8, 4, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	var nilC *Central
	c, err := nilC.Evolve(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Sol, want) {
		t.Fatal("nil-delta evolve differs from scratch")
	}
}
