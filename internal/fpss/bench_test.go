package fpss

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchSizes is the size ladder reported in BENCH_graph.json; keep in
// sync with the graph package's AllPairs ladder so the two artifacts
// line up.
var benchSizes = []int{16, 32, 64, 128}

func benchCentralGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	g, err := graph.RandomBiconnected(n, n, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkComputeCentral(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchCentralGraph(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ComputeCentral(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
