package fpss

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mech"
)

// smallBiconnected returns a 4-node diamond (cycle) whose costs come
// from the report profile — the smallest interesting instance for an
// exhaustive strategyproofness certification.
func smallBiconnected(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New(4)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRoutingMechanismStrategyproof(t *testing.T) {
	// Proposition 2, requirement (1): the corresponding centralized
	// mechanism is strategyproof. Exhaustive over cost space {0,1,2,3}
	// on a 4-cycle with all-to-all traffic: 256 profiles × 4 nodes × 3
	// misreports.
	g := smallBiconnected(t)
	m := &RoutingMechanism{
		Topology:      g,
		Traffic:       AllToAllTraffic(4, 1),
		DeliveryValue: 100,
	}
	violations, err := mech.CheckStrategyproof[*Solution](m, m.Utility(), 4, []mech.Type{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("FPSS centralized mechanism not strategyproof: %v (total %d)", violations[0], len(violations))
	}
}

func TestRoutingMechanismNaivePaymentsNotStrategyproof(t *testing.T) {
	// Control: replace VCG transfers with pay-declared-cost and the
	// same checker finds violations (Example 1 in mech clothing).
	g := smallBiconnected(t)
	inner := &RoutingMechanism{Topology: g, Traffic: AllToAllTraffic(4, 1), DeliveryValue: 100}
	naive := &naivePaymentMechanism{inner: inner}
	violations, err := mech.CheckStrategyproof[*Solution](naive, inner.Utility(), 4, []mech.Type{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("naive payment scheme should be manipulable")
	}
}

// naivePaymentMechanism pays each transit node its declared cost.
type naivePaymentMechanism struct {
	inner *RoutingMechanism
}

func (n *naivePaymentMechanism) Outcome(reports mech.Profile) (*Solution, error) {
	return n.inner.Outcome(reports)
}

func (n *naivePaymentMechanism) Transfers(reports mech.Profile, sol *Solution) ([]int64, error) {
	out := make([]int64, len(reports))
	for _, flow := range n.inner.Traffic.Flows() {
		src, dst := flow[0], flow[1]
		packets := n.inner.Traffic[flow]
		e, ok := sol.Routing[src][dst]
		if !ok {
			continue
		}
		for _, k := range e.Path.TransitNodes() {
			out[k] += reports[k] * packets
			out[src] -= reports[k] * packets
		}
	}
	return out, nil
}

func TestRoutingMechanismValidation(t *testing.T) {
	m := &RoutingMechanism{}
	if _, err := m.Outcome(mech.Profile{1}); err == nil {
		t.Error("nil topology should error")
	}
	m.Topology = smallBiconnected(t)
	if _, err := m.Outcome(mech.Profile{1}); err == nil {
		t.Error("wrong profile length should error")
	}
	if _, err := m.Outcome(mech.Profile{-1, 1, 1, 1}); err == nil {
		t.Error("negative cost should error")
	}
}

func TestRoutingMechanismTransfersBalance(t *testing.T) {
	g := smallBiconnected(t)
	m := &RoutingMechanism{Topology: g, Traffic: AllToAllTraffic(4, 2), DeliveryValue: 50}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		profile := make(mech.Profile, 4)
		for i := range profile {
			profile[i] = rng.Int63n(6)
		}
		sol, err := m.Outcome(profile)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := m.Transfers(profile, sol)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range tr {
			sum += v
		}
		if sum != 0 {
			t.Fatalf("transfers do not balance: %v", tr)
		}
	}
}
