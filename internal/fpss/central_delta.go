package fpss

import (
	"fmt"

	"repro/internal/graph"
)

// Central is ComputeCentral's solution together with the parent-pointer
// trees behind it, retained so the next epoch's solution can be
// *repaired* from this one instead of rebuilt. The churn layer chains
// one Central per epoch: epoch e evolves from epoch e−1 through the
// membership/cost delta, and every play of epoch e shares the resulting
// immutable Solution.
//
// A Central keeps n base trees plus one n-tree sweep per transit node —
// O(n²·transit) int64/int32 labels. Chains hold every epoch alive (each
// epoch is the next one's repair source), so very long timelines at
// very large n should fall back to the scratch path if memory matters
// more than boundary latency.
type Central struct {
	// Sol is the centralized routing/pricing solution — identical to
	// what ComputeCentral returns for the same graph.
	Sol *Solution

	g     *graph.Graph
	base  []*graph.Tree   // base[src]: full route tree from src
	avoid [][]*graph.Tree // avoid[k][src]: tree in G−k; nil when k not transit
}

// ComputeCentralState is ComputeCentral, additionally retaining the
// route trees so the result can seed Evolve.
func ComputeCentralState(g *graph.Graph) (*Central, error) {
	return computeCentral(g, nil, nil)
}

// Evolve computes the central solution for g — the post-delta graph —
// by repairing this state's trees through d. The result is
// byte-identical to ComputeCentral(g): transit detection, pricing and
// identity tags run on repaired trees that SSSPDelta guarantees match
// scratch ones label-for-label. A nil delta degrades to a full scratch
// computation.
func (c *Central) Evolve(g *graph.Graph, d *graph.Delta) (*Central, error) {
	if c == nil || d == nil {
		return computeCentral(g, nil, nil)
	}
	if d.NOld() != len(c.base) {
		return nil, fmt.Errorf("fpss: delta old n %d != central n %d", d.NOld(), len(c.base))
	}
	return computeCentral(g, c, d)
}
