package fpss

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func figure1IDs(t *testing.T, g *graph.Graph) (a, b, c, d, x, z graph.NodeID) {
	t.Helper()
	get := func(s string) graph.NodeID {
		id, ok := g.ByName(s)
		if !ok {
			t.Fatalf("missing node %s", s)
		}
		return id
	}
	return get("A"), get("B"), get("C"), get("D"), get("X"), get("Z")
}

func TestComputeCentralRejectsNonBiconnected(t *testing.T) {
	g := graph.New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	if _, err := ComputeCentral(g); !errors.Is(err, ErrNotBiconnected) {
		t.Errorf("err = %v, want ErrNotBiconnected", err)
	}
}

func TestCentralFigure1Routing(t *testing.T) {
	g := graph.Figure1()
	sol, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, c, d, x, z := figure1IDs(t, g)
	e := sol.Routing[x][z]
	if e.Cost != 2 {
		t.Errorf("cost(X→Z) = %d, want 2", e.Cost)
	}
	want := graph.Path{x, d, c, z}
	if !e.Path.Equal(want) {
		t.Errorf("LCP(X→Z) = %v, want X-D-C-Z", e.Path)
	}
}

func TestCentralFigure1VCGPrices(t *testing.T) {
	g := graph.Figure1()
	sol, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	_, _, c, d, x, z := figure1IDs(t, g)

	// p^C_{XZ} = c_C + cost(X→Z avoiding C) − cost(X→Z) = 1 + 5 − 2 = 4.
	if got := sol.Pricing[x][z][c].Price; got != 4 {
		t.Errorf("p^C(X→Z) = %d, want 4", got)
	}
	// p^D_{XZ} = 1 + cost(X→Z avoiding D) − 2 = 1 + (via A: 5) − 2 = 4.
	if got := sol.Pricing[x][z][d].Price; got != 4 {
		t.Errorf("p^D(X→Z) = %d, want 4", got)
	}
	// p^C_{DZ} = 1 + cost(D→Z avoiding C) − 1. Avoiding C: D-B-Z = 1000
	// vs D-X-A-Z = 6+5 = 11 → 11. So price = 11.
	if got := sol.Pricing[d][z][c].Price; got != 11 {
		t.Errorf("p^C(D→Z) = %d, want 11", got)
	}
}

func TestVCGPaymentOracleAgreesWithSolution(t *testing.T) {
	g := graph.Figure1()
	sol, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	for src, pt := range sol.Pricing {
		for dst, row := range pt {
			for k, e := range row {
				want, err := VCGPayment(g, src, dst, k)
				if err != nil {
					t.Fatal(err)
				}
				if e.Price != want {
					t.Errorf("price(%d→%d via %d) = %d, oracle %d", src, dst, k, e.Price, want)
				}
			}
		}
	}
}

func TestVCGPaymentNonTransit(t *testing.T) {
	g := graph.Figure1()
	_, b, _, d, x, z := figure1IDs(t, g)
	// B is not on LCP(X→Z); payment is zero.
	p, err := VCGPayment(g, x, z, b)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("payment to non-transit = %d, want 0", p)
	}
	// Endpoints earn nothing either.
	p, err = VCGPayment(g, d, z, z)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("payment to endpoint = %d, want 0", p)
	}
}

func TestPropertyVCGPricesAtLeastDeclaredCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(5)
		g, err := graph.RandomBiconnected(n, rng.Intn(n), 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		for src, pt := range sol.Pricing {
			for dst, row := range pt {
				for k, e := range row {
					if e.Price < g.Cost(k) {
						t.Fatalf("price(%d→%d via %d) = %d below declared cost %d (violates individual rationality)",
							src, dst, k, e.Price, g.Cost(k))
					}
				}
			}
		}
	}
}

func runProtocol(t *testing.T, g *graph.Graph, strategies map[graph.NodeID]*Strategy) *Result {
	t.Helper()
	res, err := Run(Config{Graph: g, Strategies: strategies})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDistributedMatchesCentralFigure1(t *testing.T) {
	g := graph.Figure1()
	sol, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	res := runProtocol(t, g, nil)
	for id, node := range res.Nodes {
		if !node.Routing().Equal(sol.Routing[id]) {
			t.Errorf("node %d routing differs from central", id)
		}
		if !node.Pricing().Equal(sol.Pricing[id]) {
			t.Errorf("node %d pricing differs from central\n got: %+v\nwant: %+v", id, node.Pricing(), sol.Pricing[id])
		}
	}
}

func TestDistributedMatchesCentralRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(6)
		g, err := graph.RandomBiconnected(n, rng.Intn(2*n), 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		res := runProtocol(t, g, nil)
		for id, node := range res.Nodes {
			if !node.Routing().Equal(sol.Routing[id]) {
				t.Fatalf("trial %d: node %d routing differs from central", trial, id)
			}
			if !node.Pricing().Equal(sol.Pricing[id]) {
				t.Fatalf("trial %d: node %d pricing differs from central", trial, id)
			}
		}
	}
}

func TestDistributedDATA1Converges(t *testing.T) {
	g := graph.Figure1()
	res := runProtocol(t, g, nil)
	for id, node := range res.Nodes {
		costs := node.Costs()
		if len(costs) != g.N() {
			t.Fatalf("node %d DATA1 has %d entries, want %d", id, len(costs), g.N())
		}
		for i := 0; i < g.N(); i++ {
			if costs[graph.NodeID(i)] != g.Cost(graph.NodeID(i)) {
				t.Errorf("node %d sees cost[%d] = %d, want %d", id, i, costs[graph.NodeID(i)], g.Cost(graph.NodeID(i)))
			}
		}
	}
}

func TestDeclaredCostLiePropagates(t *testing.T) {
	g := graph.Figure1()
	_, _, c, _, x, z := figure1IDs(t, g)
	strategies := map[graph.NodeID]*Strategy{
		c: {DeclareCost: func(graph.Cost) graph.Cost { return 5 }},
	}
	res := runProtocol(t, g, strategies)
	// Example 1: with ĉ_C = 5, X's LCP to Z flips to X-A-Z.
	e := res.Nodes[x].Routing()[z]
	a, _ := g.ByName("A")
	want := graph.Path{x, a, z}
	if !e.Path.Equal(want) {
		t.Errorf("LCP(X→Z) under lie = %v, want X-A-Z", e.Path)
	}
	if e.Cost != 5 {
		t.Errorf("cost under lie = %d, want 5", e.Cost)
	}
}

func TestExecuteFaithfulFigure1(t *testing.T) {
	g := graph.Figure1()
	res := runProtocol(t, g, nil)
	routing := make(map[graph.NodeID]RoutingTable)
	pricing := make(map[graph.NodeID]PricingTable)
	declared := make(CostTable)
	trueCosts := make(CostTable)
	for id, node := range res.Nodes {
		routing[id] = node.Routing()
		pricing[id] = node.Pricing()
		declared[id] = node.DeclaredCost()
		trueCosts[id] = g.Cost(id)
	}
	_, _, c, d, x, z := figure1IDs(t, g)
	exec, err := Execute(routing, pricing, ExecConfig{
		TrueCosts:          trueCosts,
		DeclaredCosts:      declared,
		Traffic:            Traffic{{x, z}: 10},
		DeliveryValue:      100,
		UndeliveredPenalty: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Delivered != 10 || exec.Undelivered != 0 {
		t.Fatalf("delivered/undelivered = %d/%d", exec.Delivered, exec.Undelivered)
	}
	// Route follows the LCP X-D-C-Z.
	if !exec.Routes[[2]graph.NodeID{x, z}].Equal(graph.Path{x, d, c, z}) {
		t.Errorf("route = %v", exec.Routes[[2]graph.NodeID{x, z}])
	}
	// X pays p^C + p^D = 4+4 per packet → utility 100·10 − 80 = 920.
	if got := exec.Utilities[x]; got != 920 {
		t.Errorf("u(X) = %d, want 920", got)
	}
	// C nets (4−1)·10 = 30; D the same.
	if got := exec.Utilities[c]; got != 30 {
		t.Errorf("u(C) = %d, want 30", got)
	}
	if got := exec.Utilities[d]; got != 30 {
		t.Errorf("u(D) = %d, want 30", got)
	}
	// Z neither pays nor transits.
	if got := exec.Utilities[z]; got != 0 {
		t.Errorf("u(Z) = %d, want 0", got)
	}
}

func TestExecutePaymentUnderreportProfitsInPlainFPSS(t *testing.T) {
	g := graph.Figure1()
	res := runProtocol(t, g, nil)
	routing := make(map[graph.NodeID]RoutingTable)
	pricing := make(map[graph.NodeID]PricingTable)
	trueCosts := make(CostTable)
	for id, node := range res.Nodes {
		routing[id] = node.Routing()
		pricing[id] = node.Pricing()
		trueCosts[id] = g.Cost(id)
	}
	_, _, _, _, x, z := figure1IDs(t, g)
	base := ExecConfig{
		TrueCosts:          trueCosts,
		Traffic:            Traffic{{x, z}: 10},
		DeliveryValue:      100,
		UndeliveredPenalty: 100,
	}
	honest, err := Execute(routing, pricing, base)
	if err != nil {
		t.Fatal(err)
	}
	lying := base
	lying.ReportPayment = map[graph.NodeID]func(PaymentList) PaymentList{
		x: func(PaymentList) PaymentList { return PaymentList{} }, // report nothing owed
	}
	liar, err := Execute(routing, pricing, lying)
	if err != nil {
		t.Fatal(err)
	}
	if liar.Utilities[x] <= honest.Utilities[x] {
		t.Errorf("underreporting should profit in plain FPSS: honest %d, liar %d",
			honest.Utilities[x], liar.Utilities[x])
	}
}

func TestExecuteUndeliveredOnBrokenTables(t *testing.T) {
	g := graph.Figure1()
	res := runProtocol(t, g, nil)
	routing := make(map[graph.NodeID]RoutingTable)
	pricing := make(map[graph.NodeID]PricingTable)
	trueCosts := make(CostTable)
	for id, node := range res.Nodes {
		routing[id] = node.Routing()
		pricing[id] = node.Pricing()
		trueCosts[id] = g.Cost(id)
	}
	_, _, _, d, x, z := figure1IDs(t, g)
	// Break D's next hop toward Z to create a black hole.
	delete(routing[d], z)
	exec, err := Execute(routing, pricing, ExecConfig{
		TrueCosts:          trueCosts,
		Traffic:            Traffic{{x, z}: 5},
		DeliveryValue:      100,
		UndeliveredPenalty: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Undelivered != 5 {
		t.Errorf("undelivered = %d, want 5", exec.Undelivered)
	}
	if exec.Utilities[x] != -300-exec.Reported[x].Total() {
		t.Errorf("u(X) = %d, want −300 − payments %d", exec.Utilities[x], exec.Reported[x].Total())
	}
}

func TestExecuteLoopDetection(t *testing.T) {
	// Two nodes pointing at each other for an unreachable dest.
	routing := map[graph.NodeID]RoutingTable{
		0: {2: RouteEntry{Dest: 2, Cost: 0, Path: graph.Path{0, 1, 2}}},
		1: {2: RouteEntry{Dest: 2, Cost: 0, Path: graph.Path{1, 0, 2}}},
	}
	exec, err := Execute(routing, map[graph.NodeID]PricingTable{}, ExecConfig{
		TrueCosts:          CostTable{0: 1, 1: 1, 2: 1},
		Traffic:            Traffic{{0, 2}: 3},
		DeliveryValue:      10,
		UndeliveredPenalty: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Delivered != 0 || exec.Undelivered != 3 {
		t.Errorf("loop should strand packets: %d/%d", exec.Delivered, exec.Undelivered)
	}
}

func TestHashesDetectAnyTableChange(t *testing.T) {
	g := graph.Figure1()
	sol, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	rt := sol.Routing[0]
	h0 := rt.HashRouting()
	mut := rt.Clone()
	for d := range mut {
		e := mut[d]
		e.Cost++
		mut[d] = e
		break
	}
	if mut.HashRouting() == h0 {
		t.Error("routing hash unchanged after cost mutation")
	}
	pt := sol.Pricing[4] // X has transit entries
	hp := pt.HashPricing()
	mutP := pt.Clone()
	for d, row := range mutP {
		for k := range row {
			e := row[k]
			e.Tags = append(e.Tags, 99) // tag tampering must be visible
			mutP[d][k] = e
			break
		}
		break
	}
	if mutP.HashPricing() == hp {
		t.Error("pricing hash unchanged after tag mutation")
	}
	if pt.HashPricing() != hp {
		t.Error("hash not deterministic")
	}
}

func TestTableCloneAndEqual(t *testing.T) {
	g := graph.Figure1()
	sol, err := ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	rt := sol.Routing[0]
	cl := rt.Clone()
	if !cl.Equal(rt) {
		t.Error("clone not equal")
	}
	for d := range cl {
		e := cl[d]
		e.Path[0] = 99
		break
	}
	if !rt.Equal(sol.Routing[0]) {
		t.Error("clone aliased path data")
	}
	pt := sol.Pricing[4]
	pc := pt.Clone()
	if !pc.Equal(pt) {
		t.Error("pricing clone not equal")
	}
	// PaymentList helpers.
	pl := PaymentList{1: 5, 2: 7}
	if pl.Total() != 12 {
		t.Errorf("Total = %d", pl.Total())
	}
	plc := pl.Clone()
	plc[1] = 99
	if pl[1] != 5 {
		t.Error("PaymentList clone aliased")
	}
}

func TestUpdateSizeCountsEntries(t *testing.T) {
	u := Update{
		From:    0,
		Routing: RoutingTable{1: {}, 2: {}},
		Pricing: PricingTable{1: {3: {}}, 2: {3: {}, 4: {}}},
	}
	if got := u.Size(); got != 1+2+3 {
		t.Errorf("Size = %d, want 6", got)
	}
}

func TestAllToAllTraffic(t *testing.T) {
	tr := AllToAllTraffic(3, 2)
	if len(tr) != 6 {
		t.Errorf("flows = %d, want 6", len(tr))
	}
	for _, f := range tr.Flows() {
		if tr[f] != 2 {
			t.Errorf("flow %v packets = %d", f, tr[f])
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil graph should error")
	}
}
