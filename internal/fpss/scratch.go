package fpss

import (
	"repro/internal/graph"
)

// ComputeScratch is the reusable storage behind the table-recompute
// hot path. A distributed run recomputes DATA2/DATA3* on every
// received update, and the convergence tail discards almost every
// result as "unchanged" — profiling a deviation search shows ~90% of
// all allocated objects are the per-entry witness paths and tag sets
// of those discarded tables. The scratch attacks that three ways:
//
//   - witness paths and tag sets are carved out of a chunked NodeID
//     arena (one allocation per ~4096 IDs instead of one per entry);
//     handed-out slices are never reused, so surviving tables stay
//     valid after the chunk is dropped to the GC;
//   - tables and pricing rows discarded by an unchanged-recompute (or
//     replaced in a checker mirror) are cleared and recycled instead
//     of reallocated;
//   - the small per-call helpers (destination set, contribution list)
//     are kept warm across calls.
//
// A scratch is single-owner state: one per protocol node (fpss.Node
// and faithful.Node embed one), never shared across goroutines. The
// nil *ComputeScratch is valid everywhere and falls back to plain
// allocation — ComputeRouting/ComputePricing remain pure functions.
type ComputeScratch struct {
	ids      []graph.NodeID
	dests    map[graph.NodeID]bool
	contribs []contrib
	routing  []RoutingTable
	pricing  []PricingTable
	rows     []map[graph.NodeID]PriceEntry
}

// idChunk is the arena chunk size; big enough that chunk turnover is
// noise, small enough that a retained path pins little dead memory.
const idChunk = 4096

// allocIDs reserves a zero-length slice with capacity n in the arena.
// The returned slice is exclusively the caller's: later reservations
// start past it (full-slice expression), and chunks are abandoned to
// the GC — never rewound — so entries that survive into advertised
// tables remain immutable.
func (s *ComputeScratch) allocIDs(n int) []graph.NodeID {
	if s == nil {
		return make([]graph.NodeID, 0, n)
	}
	if cap(s.ids)-len(s.ids) < n {
		c := idChunk
		if n > c {
			c = n
		}
		s.ids = make([]graph.NodeID, 0, c)
	}
	off := len(s.ids)
	s.ids = s.ids[:off+n]
	return s.ids[off : off : off+n]
}

// prepend materializes self + base as a path carved from the arena.
func (s *ComputeScratch) prepend(self graph.NodeID, base graph.Path) graph.Path {
	p := s.allocIDs(len(base) + 1)
	p = append(p, self)
	return append(p, base...)
}

// destSet returns the cleared reusable destination set.
func (s *ComputeScratch) destSet() map[graph.NodeID]bool {
	if s == nil {
		return make(map[graph.NodeID]bool)
	}
	if s.dests == nil {
		s.dests = make(map[graph.NodeID]bool)
	} else {
		clear(s.dests)
	}
	return s.dests
}

// routingTable returns a cleared recycled table, or a fresh one.
func (s *ComputeScratch) routingTable(hint int) RoutingTable {
	if s != nil {
		if k := len(s.routing); k > 0 {
			t := s.routing[k-1]
			s.routing[k-1] = nil
			s.routing = s.routing[:k-1]
			return t
		}
	}
	return make(RoutingTable, hint)
}

// pricingTable returns a cleared recycled table, or a fresh one.
func (s *ComputeScratch) pricingTable() PricingTable {
	if s != nil {
		if k := len(s.pricing); k > 0 {
			t := s.pricing[k-1]
			s.pricing[k-1] = nil
			s.pricing = s.pricing[:k-1]
			return t
		}
	}
	return make(PricingTable)
}

// row returns a cleared recycled pricing row, or a fresh one.
func (s *ComputeScratch) row(hint int) map[graph.NodeID]PriceEntry {
	if s != nil {
		if k := len(s.rows); k > 0 {
			r := s.rows[k-1]
			s.rows[k-1] = nil
			s.rows = s.rows[:k-1]
			return r
		}
	}
	return make(map[graph.NodeID]PriceEntry, hint)
}

// RecycleRouting clears t and keeps its storage for a later
// ComputeRoutingScratch. Callers must only recycle tables nothing else
// can reference — a freshly computed table discarded by an unchanged
// recompute, or a checker mirror's replaced previous table. Entry
// paths are arena-backed and are NOT reclaimed (they may be aliased);
// only the map buckets are reused.
func (s *ComputeScratch) RecycleRouting(t RoutingTable) {
	if s == nil || t == nil {
		return
	}
	clear(t)
	s.routing = append(s.routing, t)
}

// RecyclePricing clears t (rows included) and keeps the storage; the
// same ownership rules as RecycleRouting apply.
func (s *ComputeScratch) RecyclePricing(t PricingTable) {
	if s == nil || t == nil {
		return
	}
	for d, row := range t {
		clear(row)
		s.rows = append(s.rows, row)
		delete(t, d)
	}
	s.pricing = append(s.pricing, t)
}

// contribList returns the cleared reusable contribution list.
func (s *ComputeScratch) contribList(hint int) []contrib {
	if s == nil {
		return make([]contrib, 0, hint)
	}
	return s.contribs[:0]
}

// keepContribs stores the (possibly regrown) list for the next call.
func (s *ComputeScratch) keepContribs(c []contrib) {
	if s != nil {
		s.contribs = c[:0]
	}
}
