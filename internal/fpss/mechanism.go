package fpss

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/mech"
)

// RoutingMechanism adapts the centralized FPSS mechanism to the mech
// framework: types are per-node transit costs, the outcome is the full
// LCP/pricing solution under declared costs, and transfers are the
// aggregate VCG payments for a fixed traffic matrix.
//
// Proposition 2 reduces distributed faithfulness to (1) centralized
// strategyproofness plus (2) strong-CC and (3) strong-AC.
// mech.CheckStrategyproof over this adapter certifies (1) exhaustively
// on small instances — the formal complement to the protocol-level
// deviation search in package rational.
type RoutingMechanism struct {
	// Topology fixes the graph structure; declared costs come from the
	// report profile.
	Topology *graph.Graph
	// Traffic is the (common-knowledge) demand matrix.
	Traffic Traffic
	// DeliveryValue is each source's per-packet delivery value.
	DeliveryValue int64
}

var _ mech.Mechanism[*Solution] = (*RoutingMechanism)(nil)

// Outcome implements mech.Mechanism: solve routing and pricing under
// the declared cost profile.
func (r *RoutingMechanism) Outcome(reports mech.Profile) (*Solution, error) {
	if r.Topology == nil {
		return nil, errors.New("fpss: RoutingMechanism without topology")
	}
	if len(reports) != r.Topology.N() {
		return nil, fmt.Errorf("fpss: %d reports for %d nodes", len(reports), r.Topology.N())
	}
	costs := make([]graph.Cost, len(reports))
	for i, c := range reports {
		if c < 0 {
			return nil, graph.ErrNegativeCost
		}
		costs[i] = graph.Cost(c)
	}
	g, err := r.Topology.WithCosts(costs)
	if err != nil {
		return nil, err
	}
	return ComputeCentral(g)
}

// Transfers implements mech.Mechanism: each transit node receives its
// VCG payments; each source pays them. (Payments flow between nodes,
// so transfers sum to zero.)
func (r *RoutingMechanism) Transfers(reports mech.Profile, sol *Solution) ([]int64, error) {
	out := make([]int64, len(reports))
	for _, flow := range r.Traffic.Flows() {
		src, dst := flow[0], flow[1]
		packets := r.Traffic[flow]
		for k, e := range sol.Pricing[src][dst] {
			out[k] += int64(e.Price) * packets
			out[src] -= int64(e.Price) * packets
		}
	}
	return out, nil
}

// Utility returns the mech.Utility for the routing mechanism: sources
// value delivery; transit nodes pay their *true* per-packet cost for
// carried traffic. Quasilinear with the VCG transfers, truthful
// declaration is dominant.
func (r *RoutingMechanism) Utility() mech.Utility[*Solution] {
	return func(i int, sol *Solution, trueType mech.Type) int64 {
		var u int64
		id := graph.NodeID(i)
		for _, flow := range r.Traffic.Flows() {
			src, dst := flow[0], flow[1]
			packets := r.Traffic[flow]
			if src == id {
				u += r.DeliveryValue * packets
			}
			if e, ok := sol.Routing[src][dst]; ok && e.Path.Contains(id) && id != src && id != dst {
				u -= trueType * packets
			}
		}
		return u
	}
}
