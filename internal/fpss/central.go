package fpss

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrNotBiconnected is returned when the topology violates the FPSS
// assumption that keeps VCG payments well defined.
var ErrNotBiconnected = errors.New("fpss: graph is not biconnected")

// Solution is the centralized reference: for every node, its routing
// and pricing tables computed with full topology knowledge. The
// distributed protocol converges to exactly this — including witness
// paths and identity tags — because both use the same composite
// (cost, hops, lexicographic) route order.
type Solution struct {
	Costs   CostTable
	Routing map[graph.NodeID]RoutingTable
	Pricing map[graph.NodeID]PricingTable
}

// ComputeCentral solves routing (DATA2) and VCG pricing (DATA3*) for
// every node from a global view of the declared-cost graph.
//
// For traffic i→j and transit node k on LCP(i,j):
//
//	p^k_ij = ĉ_k + cost(LCP_{-k}(i,j)) − cost(LCP(i,j))
//
// where LCP_{-k} avoids k (finite by biconnectivity). This is the FPSS
// VCG rule; truthful cost declaration is a dominant strategy under it.
// Identity tags are the set of the owner's neighbors v whose best
// avoid-k continuation attains the minimum — the "union of the nodes
// that suggested the same pricing entry" (§4.3 DATA3*).
func ComputeCentral(g *graph.Graph) (*Solution, error) {
	if !g.IsBiconnected() {
		return nil, ErrNotBiconnected
	}
	n := g.N()
	sol := &Solution{
		Costs:   make(CostTable, n),
		Routing: make(map[graph.NodeID]RoutingTable, n),
		Pricing: make(map[graph.NodeID]PricingTable, n),
	}
	for i := 0; i < n; i++ {
		sol.Costs[graph.NodeID(i)] = g.Cost(graph.NodeID(i))
	}
	dist, paths, err := g.AllPairs()
	if err != nil {
		return nil, fmt.Errorf("all pairs: %w", err)
	}

	// avoidDist[k][v][j] / avoidPath[k][v][j]: lowest-cost v→j routes
	// in G−k (node k isolated), used for marginal values and tags.
	avoidDist := make(map[graph.NodeID][][]graph.Cost, n)
	avoidPath := make(map[graph.NodeID][][]graph.Path, n)
	for k := 0; k < n; k++ {
		kid := graph.NodeID(k)
		gk, err := g.WithoutNode(kid)
		if err != nil {
			return nil, err
		}
		d, p, err := gk.AllPairs()
		if err != nil {
			return nil, fmt.Errorf("all pairs without %d: %w", k, err)
		}
		avoidDist[kid] = d
		avoidPath[kid] = p
	}

	for i := 0; i < n; i++ {
		src := graph.NodeID(i)
		rt := make(RoutingTable, n-1)
		pt := make(PricingTable)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dst := graph.NodeID(j)
			p := paths[i][j]
			if p == nil {
				return nil, fmt.Errorf("fpss: no path %d→%d despite biconnectivity", i, j)
			}
			rt[dst] = RouteEntry{Dest: dst, Cost: dist[i][j], Path: p.Clone()}
			transits := p.TransitNodes()
			if len(transits) == 0 {
				continue
			}
			row := make(map[graph.NodeID]PriceEntry, len(transits))
			for _, k := range transits {
				witness := avoidPath[k][i][j]
				if witness == nil {
					return nil, fmt.Errorf("fpss: no avoid-%d path %d→%d", k, i, j)
				}
				b := avoidDist[k][i][j]
				row[k] = PriceEntry{
					Transit: k,
					Price:   g.Cost(k) + b - dist[i][j],
					Avoid:   witness.Clone(),
					Tags:    centralTags(g, src, dst, k, b, avoidDist[k]),
				}
			}
			pt[dst] = row
		}
		sol.Routing[src] = rt
		sol.Pricing[src] = pt
	}
	return sol, nil
}

// centralTags returns the sorted set of src's neighbors v ≠ k whose
// avoid-k continuation cost equals the minimum b:
// contribution(v) = 0 if v == dst, else ĉ_v + dist_{G−k}(v, dst).
func centralTags(g *graph.Graph, src, dst, k graph.NodeID, b graph.Cost, distNoK [][]graph.Cost) []graph.NodeID {
	var tags []graph.NodeID
	for _, v := range g.Neighbors(src) {
		if v == k {
			continue
		}
		var contribution graph.Cost
		if v == dst {
			contribution = 0
		} else {
			dvj := distNoK[v][dst]
			if dvj >= graph.Infinity {
				continue
			}
			contribution = g.Cost(v) + dvj
		}
		if contribution == b {
			tags = append(tags, v)
		}
	}
	sortIDs(tags)
	return tags
}

// VCGPayment returns the centralized per-packet VCG payment owed by
// src to transit k for traffic to dst, straight from the definition.
// It is the oracle used by tests.
func VCGPayment(g *graph.Graph, src, dst, k graph.NodeID) (graph.Cost, error) {
	p, d, err := g.ShortestPath(src, dst)
	if err != nil {
		return 0, err
	}
	if !p.Contains(k) || k == src || k == dst {
		return 0, nil // not a transit node on the LCP: no payment
	}
	_, avoidCost, err := g.ShortestPathAvoiding(src, dst, k)
	if err != nil {
		return 0, err
	}
	return g.Cost(k) + avoidCost - d, nil
}
