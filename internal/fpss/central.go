package fpss

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// ErrNotBiconnected is returned when the topology violates the FPSS
// assumption that keeps VCG payments well defined.
var ErrNotBiconnected = errors.New("fpss: graph is not biconnected")

// Solution is the centralized reference: for every node, its routing
// and pricing tables computed with full topology knowledge. The
// distributed protocol converges to exactly this — including witness
// paths and identity tags — because both use the same composite
// (cost, hops, lexicographic) route order.
type Solution struct {
	Costs   CostTable
	Routing map[graph.NodeID]RoutingTable
	Pricing map[graph.NodeID]PricingTable
}

// ComputeCentral solves routing (DATA2) and VCG pricing (DATA3*) for
// every node from a global view of the declared-cost graph.
//
// For traffic i→j and transit node k on LCP(i,j):
//
//	p^k_ij = ĉ_k + cost(LCP_{-k}(i,j)) − cost(LCP(i,j))
//
// where LCP_{-k} avoids k (finite by biconnectivity). This is the FPSS
// VCG rule; truthful cost declaration is a dominant strategy under it.
// Identity tags are the set of the owner's neighbors v whose best
// avoid-k continuation attains the minimum — the "union of the nodes
// that suggested the same pricing entry" (§4.3 DATA3*).
//
// The computation is batched and parallel: one parent-pointer SSSP
// tree per source for the base routes, then one avoid-k sweep per
// node k that actually appears as a transit node on some LCP (nodes
// that are never transit need no marginal economy), all fanned out
// over a worker pool with per-worker scratch. Results are
// deterministic — byte-identical to the sequential reference —
// because every job writes only its own slot.
func ComputeCentral(g *graph.Graph) (*Solution, error) {
	c, err := computeCentral(g, nil, nil)
	if err != nil {
		return nil, err
	}
	return c.Sol, nil
}

// computeCentral is the shared core behind ComputeCentral (prev and d
// nil) and Central.Evolve. The delta form runs the exact same
// transit-detection and assembly code over trees that were repaired
// instead of rebuilt — SSSPDelta's byte-identity guarantee is what
// keeps the two forms indistinguishable in the output.
func computeCentral(g *graph.Graph, prev *Central, d *graph.Delta) (*Central, error) {
	if !g.IsBiconnected() {
		return nil, ErrNotBiconnected
	}
	n := g.N()
	sol := &Solution{
		Costs:   make(CostTable, n),
		Routing: make(map[graph.NodeID]RoutingTable, n),
		Pricing: make(map[graph.NodeID]PricingTable, n),
	}
	for i := 0; i < n; i++ {
		sol.Costs[graph.NodeID(i)] = g.Cost(graph.NodeID(i))
	}

	// Base trees: one full SSSP per source, in parallel. With a delta,
	// each surviving source repairs its previous tree instead (joiners
	// and nil deltas fall through to a scratch run inside SSSPDelta).
	base := make([]*graph.Tree, n)
	err := parallelFor(n, func(w *centralWorker, i int) error {
		var old *graph.Tree
		if prev != nil {
			if o := d.NewToOld(graph.NodeID(i)); o >= 0 {
				old = prev.base[o]
			}
		}
		t := &graph.Tree{}
		if err := g.SSSPDelta(t, w.scratch, graph.NodeID(i), nil, old, d); err != nil {
			return fmt.Errorf("all pairs from %d: %w", i, err)
		}
		base[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Transit set: a node k needs an avoid-k economy only if it is an
	// intermediate node on some LCP. Every intermediate node is the
	// immediate parent of the next node on that LCP — which, by prefix
	// optimality, is itself a tree destination — so marking each
	// destination's parent covers the whole set in O(n²) total.
	isTransit := make([]bool, n)
	transitCount := 0
	for i := 0; i < n; i++ {
		t := base[i]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if !t.Reached(graph.NodeID(j)) {
				return nil, fmt.Errorf("fpss: no path %d→%d despite biconnectivity", i, j)
			}
			if p := t.Parent[j]; p != -1 && graph.NodeID(p) != t.Src && !isTransit[p] {
				isTransit[p] = true
				transitCount++
			}
		}
	}

	// Avoid-k trees for transit nodes only: avoidTrees[k][v] is the
	// lowest-cost route tree from v in G−k. One parallel job per k so
	// per-job work (n−1 sweeps) amortizes scheduling; tag computation
	// needs rows for every source v ≠ k, so the sweep is full.
	avoidTrees := make([][]*graph.Tree, n)
	if transitCount > 0 {
		jobs := make([]int, 0, transitCount)
		for k := 0; k < n; k++ {
			if isTransit[k] {
				jobs = append(jobs, k)
			}
		}
		err = parallelFor(len(jobs), func(w *centralWorker, ji int) error {
			k := jobs[ji]
			kid := graph.NodeID(k)
			w.avoid.Clear()
			w.avoid.Add(kid)
			// Carry the previous epoch's avoid-k sweep when k survived and
			// was transit then too (prev.avoid rows exist only for former
			// transit nodes).
			var prevK []*graph.Tree
			if prev != nil {
				if ko := d.NewToOld(kid); ko >= 0 {
					prevK = prev.avoid[ko]
				}
			}
			trees := make([]*graph.Tree, n)
			for v := 0; v < n; v++ {
				if v == k {
					continue
				}
				var old *graph.Tree
				if prevK != nil {
					if o := d.NewToOld(graph.NodeID(v)); o >= 0 {
						old = prevK[o]
					}
				}
				t := &graph.Tree{}
				if err := g.SSSPDelta(t, w.scratch, graph.NodeID(v), w.avoid, old, d); err != nil {
					return fmt.Errorf("all pairs without %d: %w", k, err)
				}
				trees[v] = t
			}
			avoidTrees[k] = trees
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Assemble per-source routing and pricing tables, one parallel job
	// per source (each writes only its own slot).
	routing := make([]RoutingTable, n)
	pricing := make([]PricingTable, n)
	err = parallelFor(n, func(w *centralWorker, i int) error {
		src := graph.NodeID(i)
		t := base[i]
		// One CSR-view fetch (and csrMu acquisition) per source job,
		// not per price entry.
		neighbors := g.AdjView(src)
		rt := make(RoutingTable, n-1)
		pt := make(PricingTable)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dst := graph.NodeID(j)
			p := t.PathTo(dst)
			rt[dst] = RouteEntry{Dest: dst, Cost: t.Dist[j], Path: p}
			transits := p.TransitNodes()
			if len(transits) == 0 {
				continue
			}
			row := make(map[graph.NodeID]PriceEntry, len(transits))
			for _, k := range transits {
				noK := avoidTrees[k][i]
				if noK == nil || !noK.Reached(dst) {
					return fmt.Errorf("fpss: no avoid-%d path %d→%d", k, i, j)
				}
				b := noK.Dist[dst]
				row[k] = PriceEntry{
					Transit: k,
					Price:   g.Cost(k) + b - t.Dist[j],
					Avoid:   noK.PathTo(dst),
					Tags:    centralTags(g, neighbors, dst, k, b, avoidTrees[k]),
				}
			}
			pt[dst] = row
		}
		routing[i] = rt
		pricing[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		sol.Routing[graph.NodeID(i)] = routing[i]
		sol.Pricing[graph.NodeID(i)] = pricing[i]
	}
	return &Central{Sol: sol, g: g, base: base, avoid: avoidTrees}, nil
}

// centralWorker is one worker's private state in a parallelFor fan-out.
type centralWorker struct {
	scratch *graph.Scratch
	avoid   *graph.NodeSet
}

// centralWorkers overrides the pricing-core pool size when positive;
// zero means runtime.NumCPU(). Tests pin it to exercise the parallel
// path regardless of the host's core count.
var centralWorkers int

// parallelFor runs fn(worker, i) for every i in [0, n) over a worker
// pool (the experiments/runner.go idiom). Each worker owns a scratch,
// every job writes only index-i state, and the earliest failing
// index's error is reported — so results and errors are independent of
// scheduling.
func parallelFor(n int, fn func(w *centralWorker, i int) error) error {
	if n == 0 {
		return nil
	}
	workers := centralWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		w := &centralWorker{scratch: graph.NewScratch(0), avoid: graph.NewNodeSet(0)}
		for i := 0; i < n; i++ {
			errs[i] = fn(w, i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				state := &centralWorker{scratch: graph.NewScratch(0), avoid: graph.NewNodeSet(0)}
				for i := range jobs {
					errs[i] = fn(state, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// centralTags returns the sorted set of the owner's neighbors v ≠ k
// whose avoid-k continuation cost equals the minimum b:
// contribution(v) = 0 if v == dst, else ĉ_v + dist_{G−k}(v, dst).
// neighbors is the owner's ascending adjacency view.
func centralTags(g *graph.Graph, neighbors []graph.NodeID, dst, k graph.NodeID, b graph.Cost, treesNoK []*graph.Tree) []graph.NodeID {
	tags := make([]graph.NodeID, 0, len(neighbors))
	for _, v := range neighbors {
		if v == k {
			continue
		}
		var contribution graph.Cost
		if v == dst {
			contribution = 0
		} else {
			dvj := treesNoK[v].Dist[dst]
			if dvj >= graph.Infinity {
				continue
			}
			contribution = g.Cost(v) + dvj
		}
		if contribution == b {
			tags = append(tags, v)
		}
	}
	// AdjView is ascending, so tags are already sorted.
	return tags
}

// VCGPayment returns the centralized per-packet VCG payment owed by
// src to transit k for traffic to dst, straight from the definition.
// It is the oracle used by tests. Both underlying searches exit early
// once dst settles; for repeated queries over one graph, use VCGOracle
// to reuse the distance views instead of re-running SSSP per call.
func VCGPayment(g *graph.Graph, src, dst, k graph.NodeID) (graph.Cost, error) {
	p, d, err := g.ShortestPath(src, dst)
	if err != nil {
		return 0, err
	}
	if !p.Contains(k) || k == src || k == dst {
		return 0, nil // not a transit node on the LCP: no payment
	}
	_, avoidCost, err := g.ShortestPathAvoiding(src, dst, k)
	if err != nil {
		return 0, err
	}
	return g.Cost(k) + avoidCost - d, nil
}

// VCGOracle answers repeated VCG payment queries against one fixed
// graph from precomputed distance views: the base route tree per
// source and the avoid-k tree per (source, k) pair, both built lazily
// on first use and reused afterwards. Not safe for concurrent use.
type VCGOracle struct {
	g       *graph.Graph
	scratch *graph.Scratch
	avoid   *graph.NodeSet
	base    map[graph.NodeID]*graph.Tree
	avoided map[[2]graph.NodeID]*graph.Tree // (src, k) → tree in G−k
}

// NewVCGOracle returns an empty oracle over g. The graph's topology
// and costs must not change for the oracle's lifetime.
func NewVCGOracle(g *graph.Graph) *VCGOracle {
	return &VCGOracle{
		g:       g,
		scratch: graph.NewScratch(g.N()),
		avoid:   graph.NewNodeSet(g.N()),
		base:    make(map[graph.NodeID]*graph.Tree),
		avoided: make(map[[2]graph.NodeID]*graph.Tree),
	}
}

// baseTree returns (building if needed) the full route tree from src.
func (o *VCGOracle) baseTree(src graph.NodeID) (*graph.Tree, error) {
	if t, ok := o.base[src]; ok {
		return t, nil
	}
	t := &graph.Tree{}
	if err := o.g.SSSP(t, o.scratch, src, nil); err != nil {
		return nil, err
	}
	o.base[src] = t
	return t, nil
}

// avoidTree returns (building if needed) the route tree from src in G−k.
func (o *VCGOracle) avoidTree(src, k graph.NodeID) (*graph.Tree, error) {
	key := [2]graph.NodeID{src, k}
	if t, ok := o.avoided[key]; ok {
		return t, nil
	}
	o.avoid.Clear()
	o.avoid.Add(k)
	t := &graph.Tree{}
	if err := o.g.SSSP(t, o.scratch, src, o.avoid); err != nil {
		return nil, err
	}
	o.avoided[key] = t
	return t, nil
}

// Payment returns the per-packet VCG payment owed by src to transit k
// for traffic to dst — the same value as VCGPayment, from cached
// distance views.
func (o *VCGOracle) Payment(src, dst, k graph.NodeID) (graph.Cost, error) {
	if k == src || k == dst {
		return 0, nil
	}
	t, err := o.baseTree(src)
	if err != nil {
		return 0, err
	}
	if !t.Reached(dst) {
		return 0, graph.ErrNoPath
	}
	onLCP := false
	for p := t.Parent[dst]; p != -1 && graph.NodeID(p) != src; p = t.Parent[p] {
		if graph.NodeID(p) == k {
			onLCP = true
			break
		}
	}
	if !onLCP {
		return 0, nil
	}
	noK, err := o.avoidTree(src, k)
	if err != nil {
		return 0, err
	}
	if !noK.Reached(dst) {
		return 0, graph.ErrNoPath
	}
	return o.g.Cost(k) + noK.Dist[dst] - t.Dist[dst], nil
}
