package graph

// The pre-optimization Dijkstra, kept verbatim as a differential
// oracle: it materializes a full path per heap label and compares
// whole paths inside the heap, which makes its route order trivially
// auditable against Better. TestDifferentialSSSPOracle proves the
// parent-pointer core in sssp.go reproduces it byte for byte.

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// oracleLabel is a Dijkstra priority-queue entry of the reference
// implementation.
type oracleLabel struct {
	node NodeID
	dist Cost
	path Path
}

type oracleHeap []oracleLabel

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	return Better(h[i].dist, h[i].path, h[j].dist, h[j].path)
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(oracleLabel)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// oracleShortestPaths is the original path-materializing
// ShortestPaths, unchanged except for its name.
func (g *Graph) oracleShortestPaths(src NodeID, avoid map[NodeID]bool) ([]Cost, []Path, error) {
	if err := g.check(src); err != nil {
		return nil, nil, err
	}
	if avoid[src] {
		return nil, nil, errors.New("graph: source is in avoid set")
	}
	n := g.N()
	dist := make([]Cost, n)
	best := make([]Path, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
	}
	h := &oracleHeap{{node: src, dist: 0, path: Path{src}}}
	for h.Len() > 0 {
		cur := heap.Pop(h).(oracleLabel)
		u := cur.node
		if done[u] {
			continue
		}
		done[u] = true
		dist[u] = cur.dist
		best[u] = cur.path
		// Extending beyond u makes u a transit node (unless u is src).
		var transit Cost
		if u != src {
			transit = g.costs[u]
		}
		for _, v := range g.Neighbors(u) {
			if done[v] || avoid[v] {
				continue
			}
			nd := cur.dist + transit
			np := append(cur.path.Clone(), v)
			if best[v] == nil || Better(nd, np, dist[v], best[v]) {
				dist[v] = nd
				best[v] = np
				heap.Push(h, oracleLabel{node: v, dist: nd, path: np})
			}
		}
	}
	for i := range best {
		if !done[i] {
			best[i] = nil
			dist[i] = Infinity
		}
	}
	return dist, best, nil
}

// diffGraph builds the seeded graph for differential case i, cycling
// through the generators and a range of sizes and densities so ties
// (equal-cost, equal-hop alternatives) are common.
func diffGraph(t *testing.T, seed int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	n := 4 + rng.Intn(13) // 4..16
	var (
		g   *Graph
		err error
	)
	switch seed % 3 {
	case 0:
		// Low max cost forces frequent cost ties.
		g, err = RandomBiconnected(n, n, 3, rng)
	case 1:
		g, err = RingWithChords(n, n/2, 8, rng)
	default:
		g, err = RandomBiconnected(n, 2*n, 20, rng)
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return g
}

// TestDifferentialSSSPOracle checks the parent-pointer core against
// the reference Dijkstra on 200+ random seeded graphs: every source,
// every destination, full sweeps and single-avoid sweeps, distances
// and routes byte-identical.
func TestDifferentialSSSPOracle(t *testing.T) {
	const cases = 220
	for seed := 0; seed < cases; seed++ {
		g := diffGraph(t, seed)
		n := g.N()
		for src := 0; src < n; src++ {
			wantD, wantP, err := g.oracleShortestPaths(NodeID(src), nil)
			if err != nil {
				t.Fatalf("seed %d: oracle: %v", seed, err)
			}
			gotD, gotP, err := g.ShortestPaths(NodeID(src), nil)
			if err != nil {
				t.Fatalf("seed %d: new: %v", seed, err)
			}
			for j := 0; j < n; j++ {
				if wantD[j] != gotD[j] || !wantP[j].Equal(gotP[j]) {
					t.Fatalf("seed %d src %d dst %d: oracle (%d, %v) != new (%d, %v)",
						seed, src, j, wantD[j], wantP[j], gotD[j], gotP[j])
				}
			}
		}
		// Avoid-k sweeps from a couple of sources per graph.
		for src := 0; src < n && src < 3; src++ {
			for k := 0; k < n; k++ {
				if k == src {
					continue
				}
				avoid := map[NodeID]bool{NodeID(k): true}
				wantD, wantP, err := g.oracleShortestPaths(NodeID(src), avoid)
				if err != nil {
					t.Fatalf("seed %d: oracle avoid %d: %v", seed, k, err)
				}
				gotD, gotP, err := g.ShortestPaths(NodeID(src), avoid)
				if err != nil {
					t.Fatalf("seed %d: new avoid %d: %v", seed, k, err)
				}
				for j := 0; j < n; j++ {
					if wantD[j] != gotD[j] || !wantP[j].Equal(gotP[j]) {
						t.Fatalf("seed %d src %d avoid %d dst %d: oracle (%d, %v) != new (%d, %v)",
							seed, src, k, j, wantD[j], wantP[j], gotD[j], gotP[j])
					}
				}
			}
		}
	}
}

// TestSSSPToMatchesFullSweep checks the early-exit single-target path
// against the full sweep (and hence, transitively, the oracle).
func TestSSSPToMatchesFullSweep(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		g := diffGraph(t, seed)
		n := g.N()
		for src := 0; src < n; src++ {
			wantD, wantP, err := g.ShortestPaths(NodeID(src), nil)
			if err != nil {
				t.Fatal(err)
			}
			for dst := 0; dst < n; dst++ {
				p, c, err := g.ShortestPath(NodeID(src), NodeID(dst))
				if err != nil {
					t.Fatalf("seed %d %d→%d: %v", seed, src, dst, err)
				}
				if c != wantD[dst] || !p.Equal(wantP[dst]) {
					t.Fatalf("seed %d %d→%d: early-exit (%d, %v) != sweep (%d, %v)",
						seed, src, dst, c, p, wantD[dst], wantP[dst])
				}
			}
		}
	}
}

func TestTreePathReconstruction(t *testing.T) {
	g := Figure1()
	tr := &Tree{}
	sc := NewScratch(g.N())
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")
	if err := g.SSSP(tr, sc, x, nil); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(Path{x, 3, 2, z}) // X-D-C-Z, the paper's quoted LCP
	if got := fmt.Sprint(tr.PathTo(z)); got != want {
		t.Fatalf("PathTo(Z) = %s, want %s", got, want)
	}
	if tr.Dist[z] != 2 {
		t.Fatalf("Dist[Z] = %d, want 2", tr.Dist[z])
	}
	if tr.Hops[z] != 3 {
		t.Fatalf("Hops[Z] = %d, want 3", tr.Hops[z])
	}
	// AppendPathTo reuses the buffer without reallocating when capacity
	// suffices.
	buf := make(Path, 0, 8)
	out := tr.AppendPathTo(buf, z)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendPathTo reallocated despite sufficient capacity")
	}
}

// TestShortestPathsIgnoresOutOfRangeAvoid pins the map-form contract:
// avoid entries that name no node are ignored, as the original
// map-lookup implementation did.
func TestShortestPathsIgnoresOutOfRangeAvoid(t *testing.T) {
	g := Figure1()
	avoid := map[NodeID]bool{NodeID(-1): true, NodeID(99): true}
	wantD, wantP, err := g.ShortestPaths(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotD, gotP, err := g.ShortestPaths(0, avoid)
	if err != nil {
		t.Fatal(err)
	}
	for j := range wantD {
		if wantD[j] != gotD[j] || !wantP[j].Equal(gotP[j]) {
			t.Fatalf("dst %d: bogus avoid entries changed the result", j)
		}
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(10)
	if s.Has(3) {
		t.Fatal("empty set has 3")
	}
	s.Add(3)
	s.Add(70) // forces growth
	if !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Fatal("membership wrong after Add")
	}
	s.Remove(3)
	if s.Has(3) || !s.Has(70) {
		t.Fatal("membership wrong after Remove")
	}
	s.Clear()
	if s.Has(70) {
		t.Fatal("membership wrong after Clear")
	}
	var nilSet *NodeSet
	if nilSet.Has(0) {
		t.Fatal("nil set claims membership")
	}
}
