package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n, extra int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g, err := RandomBiconnected(n, extra, 50, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkShortestPaths32(b *testing.B) {
	g := benchGraph(b, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.ShortestPaths(0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSSP is the allocation-free core on its own: reused Tree
// and Scratch, no path materialization. The steady state is 0
// allocs/op.
func BenchmarkSSSP32(b *testing.B) {
	g := benchGraph(b, 32, 32)
	t := &Tree{}
	s := NewScratch(g.N())
	g.ensureCSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.SSSP(t, s, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllPairs is the size ladder reported in BENCH_graph.json;
// keep in sync with the fpss ComputeCentral ladder so the two
// artifacts line up.
func BenchmarkAllPairs(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(b, n, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := g.AllPairs(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkArticulationPoints64(b *testing.B) {
	g := benchGraph(b, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ArticulationPoints()
	}
}

func BenchmarkRandomBiconnected32(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomBiconnected(32, 16, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}
