package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n, extra int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g, err := RandomBiconnected(n, extra, 50, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkShortestPaths32(b *testing.B) {
	g := benchGraph(b, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.ShortestPaths(0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllPairs32(b *testing.B) {
	g := benchGraph(b, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.AllPairs(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArticulationPoints64(b *testing.B) {
	g := benchGraph(b, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ArticulationPoints()
	}
}

func BenchmarkRandomBiconnected32(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RandomBiconnected(32, 16, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}
