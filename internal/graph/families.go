package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// This file holds the Internet-like topology families behind the
// scenario layer. Each generator takes a CostFn — a pluggable per-node
// transit-cost distribution — and a caller-owned rng, draws structure
// first and costs second (in ascending node-ID order), and returns a
// biconnected graph: families whose raw structure can violate the FPSS
// biconnectivity assumption are passed through RepairBiconnected. For
// a fixed rng seed every generator is fully deterministic.

// CostFn draws one per-node transit cost. Generators call it once per
// node, in node-ID order, after all structural randomness, so a cost
// distribution never perturbs the topology drawn for a given seed.
type CostFn func(rng *rand.Rand) Cost

// UniformCost draws uniformly from [1, max] — the distribution the
// classic generators (Ring, RandomBiconnected) bake in.
func UniformCost(max Cost) CostFn {
	if max < 1 {
		max = 1
	}
	return func(rng *rand.Rand) Cost { return 1 + Cost(rng.Int63n(int64(max))) }
}

// HeavyTailedCost draws from a discretized Pareto distribution with
// the given minimum and tail index alpha (smaller alpha ⇒ heavier
// tail), capped at 1000·min so VCG payments stay within int64 on any
// workload. It models the skewed transit-cost spread of real ASes: a
// few very expensive carriers among many cheap ones.
func HeavyTailedCost(min Cost, alpha float64) CostFn {
	if min < 1 {
		min = 1
	}
	if alpha <= 0 {
		alpha = 1.5
	}
	cap := int64(min) * 1000
	return func(rng *rand.Rand) Cost {
		u := 1 - rng.Float64() // (0, 1]: keeps the tail finite
		c := int64(float64(min) / math.Pow(u, 1/alpha))
		if c < int64(min) {
			c = int64(min)
		}
		if c > cap {
			c = cap
		}
		return Cost(c)
	}
}

// BimodalCost mixes an honest/cheap population (uniform on
// [1, cheapMax]) with an expensive one (uniform on
// [expensiveMin, 2·expensiveMin)), choosing expensive with probability
// pExpensive. It is the sharpest stress for VCG pricing: lowest-cost
// paths thread the cheap mode while marginal (avoid-k) paths are
// forced through the expensive one.
func BimodalCost(cheapMax, expensiveMin Cost, pExpensive float64) CostFn {
	if cheapMax < 1 {
		cheapMax = 1
	}
	if expensiveMin < 1 {
		expensiveMin = 1
	}
	return func(rng *rand.Rand) Cost {
		if rng.Float64() < pExpensive {
			return expensiveMin + Cost(rng.Int63n(int64(expensiveMin)))
		}
		return 1 + Cost(rng.Int63n(int64(cheapMax)))
	}
}

// assignCosts draws one cost per node in ascending ID order; nil falls
// back to the classic uniform [1,10].
func assignCosts(g *Graph, cost CostFn, rng *rand.Rand) {
	if cost == nil {
		cost = UniformCost(10)
	}
	for i := 0; i < g.N(); i++ {
		_ = g.SetCost(NodeID(i), cost(rng))
	}
}

// components returns the connected components, each listed in BFS
// discovery order starting from its minimum node ID, with `skip`
// (pass -1 for none) treated as removed from the graph.
func (g *Graph) components(skip NodeID) [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	if skip >= 0 && int(skip) < n {
		seen[skip] = true
	}
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		comp := []NodeID{NodeID(s)}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, v := range g.AdjView(comp[i]) {
				if !seen[v] {
					seen[v] = true
					comp = append(comp, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// RepairBiconnected adds the minimum-ID bridging edges needed to make
// the graph biconnected: first it chains disconnected components
// together, then it repeatedly splices the two lowest components of
// g−a for the first remaining articulation point a. The repair is
// deterministic (no randomness) and a no-op on graphs that are already
// biconnected, so generators can apply it unconditionally.
func RepairBiconnected(g *Graph) error {
	if g.N() < 3 {
		return fmt.Errorf("graph: biconnectivity needs n >= 3, got %d", g.N())
	}
	for {
		comps := g.components(-1)
		if len(comps) <= 1 {
			break
		}
		_ = g.AddEdge(comps[0][0], comps[1][0])
	}
	for {
		arts := g.ArticulationPoints()
		if len(arts) == 0 {
			return nil
		}
		comps := g.components(arts[0])
		// Two nodes in different components of g−a are never already
		// adjacent, so each splice adds a genuinely new edge and the
		// loop terminates within the edge budget.
		_ = g.AddEdge(comps[0][0], comps[1][0])
	}
}

// PreferentialAttachment builds a Barabási–Albert-style scale-free
// graph: a seed clique on m+1 nodes, then each new node attaches to m
// distinct existing nodes chosen proportionally to degree. m = 1
// yields a tree and sparse draws can leave cut vertices, so the result
// is passed through RepairBiconnected. Degree distributions come out
// heavy-tailed, like AS-level Internet maps.
func PreferentialAttachment(n, m int, cost CostFn, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: preferential attachment needs n >= 3, got %d", n)
	}
	if m < 1 || m >= n {
		return nil, fmt.Errorf("graph: attachment degree must satisfy 1 <= m < n, got m=%d n=%d", m, n)
	}
	g := New(n)
	// targets holds each node once per incident edge endpoint, so a
	// uniform draw from it is a degree-proportional draw.
	targets := make([]NodeID, 0, 2*(m*(m+1)/2+(n-m-1)*m))
	core := m + 1
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			_ = g.AddEdge(NodeID(i), NodeID(j))
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	chosen := make([]NodeID, 0, m)
	for v := core; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			_ = g.AddEdge(NodeID(v), t)
			targets = append(targets, NodeID(v), t)
		}
	}
	if err := RepairBiconnected(g); err != nil {
		return nil, err
	}
	assignCosts(g, cost, rng)
	return g, nil
}

// Waxman builds the classic geometric random graph: nodes placed
// uniformly in the unit square, each pair connected with probability
// alpha·exp(−d/(beta·L)) where d is Euclidean distance and L = √2 the
// maximal distance. Larger alpha raises edge density overall; larger
// beta raises the share of long-haul links. Sparse draws disconnect,
// so the result is passed through RepairBiconnected.
func Waxman(n int, alpha, beta float64, cost CostFn, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: waxman needs n >= 3, got %d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("graph: waxman needs 0 < alpha <= 1 and beta > 0, got alpha=%g beta=%g", alpha, beta)
	}
	g := New(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	scale := beta * math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			if rng.Float64() < alpha*math.Exp(-d/scale) {
				_ = g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	if err := RepairBiconnected(g); err != nil {
		return nil, err
	}
	assignCosts(g, cost, rng)
	return g, nil
}

// Torus builds the rows×cols wrap-around grid: node (r,c) connects to
// (r,c±1 mod cols) and (r±1 mod rows, c). Both dimensions must be at
// least 3 (smaller wraps collapse into duplicate edges). A torus is
// 4-regular and biconnected by construction — the high-diameter,
// constant-degree counterpoint to the scale-free families.
func Torus(rows, cols int, cost CostFn, rng *rand.Rand) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			_ = g.AddEdge(id(r, c), id(r, (c+1)%cols))
			_ = g.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	assignCosts(g, cost, rng)
	return g, nil
}

// TwoTier builds a clustered "AS" topology: `clusters` cluster heads
// joined in a core ring, each head fronting a cycle of `size` member
// nodes (IDs c·size … c·size+size−1, head first), plus one uplink from
// a random non-head member of every cluster to the head of a random
// other cluster — so no head is a single point of articulation. The
// result is passed through RepairBiconnected for the small sizes where
// the uplinks alone don't suffice.
func TwoTier(clusters, size int, cost CostFn, rng *rand.Rand) (*Graph, error) {
	if clusters < 3 {
		return nil, fmt.Errorf("graph: two-tier needs >= 3 clusters, got %d", clusters)
	}
	if size < 2 {
		return nil, fmt.Errorf("graph: two-tier needs cluster size >= 2, got %d", size)
	}
	g := New(clusters * size)
	head := func(c int) NodeID { return NodeID(c * size) }
	for c := 0; c < clusters; c++ {
		_ = g.AddEdge(head(c), head((c+1)%clusters))
		// Cluster cycle through the head; size 2 degenerates to a
		// single head–member edge.
		for i := 0; i < size-1; i++ {
			_ = g.AddEdge(NodeID(c*size+i), NodeID(c*size+i+1))
		}
		if size > 2 {
			_ = g.AddEdge(NodeID(c*size+size-1), head(c))
		}
	}
	for c := 0; c < clusters; c++ {
		member := NodeID(c*size + 1 + rng.Intn(size-1))
		other := (c + 1 + rng.Intn(clusters-1)) % clusters
		_ = g.AddEdge(member, head(other))
	}
	if err := RepairBiconnected(g); err != nil {
		return nil, err
	}
	assignCosts(g, cost, rng)
	return g, nil
}
