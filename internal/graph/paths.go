package graph

import (
	"errors"
	"math"
)

// Infinity is the cost reported for unreachable destinations.
const Infinity = Cost(math.MaxInt64 / 4)

// ErrNoPath is returned when no path exists between the endpoints.
var ErrNoPath = errors.New("graph: no path")

// ErrAvoidEndpoint is returned when the avoided node is an endpoint of
// the query.
var ErrAvoidEndpoint = errors.New("graph: avoid node is an endpoint")

// Path is a node sequence from source to destination, inclusive.
type Path []NodeID

// TransitNodes returns the intermediate nodes of the path.
func (p Path) TransitNodes() []NodeID {
	if len(p) <= 2 {
		return nil
	}
	out := make([]NodeID, len(p)-2)
	copy(out, p[1:len(p)-1])
	return out
}

// Contains reports whether the path visits node id (including endpoints).
func (p Path) Contains(id NodeID) bool {
	for _, v := range p {
		if v == id {
			return true
		}
	}
	return false
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Less orders paths lexicographically; used as a deterministic,
// globally consistent tie-break so every node in a distributed
// computation agrees on one lowest-cost path per pair.
func (p Path) Less(q Path) bool {
	for i := 0; i < len(p) && i < len(q); i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// Better reports whether route (c1, p1) is preferred over (c2, p2)
// under the composite (cost, hop count, lexicographic) order. The hop
// tie-break excludes zero-cost cycles, so asynchronous Bellman–Ford
// relaxation (the distributed FPSS computation) and centralized
// Dijkstra converge to the same unique route for every pair.
func Better(c1 Cost, p1 Path, c2 Cost, p2 Path) bool {
	if c1 != c2 {
		return c1 < c2
	}
	if len(p1) != len(p2) {
		return len(p1) < len(p2)
	}
	return p1.Less(p2)
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// PathCost returns the transit cost of the path under the graph's cost
// vector: the sum of intermediate node costs. It validates adjacency.
func (g *Graph) PathCost(p Path) (Cost, error) {
	if len(p) == 0 {
		return 0, ErrNoPath
	}
	if err := g.check(p...); err != nil {
		return 0, err
	}
	var total Cost
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return 0, ErrNoPath
		}
		if i > 0 {
			total += g.costs[p[i]]
		}
	}
	return total, nil
}

// ShortestPaths computes lowest-cost paths from src to every node,
// skipping nodes in avoid (which must not include src). Ties are broken
// by the composite (cost, hops, lexicographic) order so results are
// globally unique. Unreachable nodes get cost Infinity and a nil path.
//
// This is the materializing convenience wrapper over SSSP; hot paths
// that issue many queries should drive SSSP/SSSPTo directly with a
// reused Tree and Scratch.
func (g *Graph) ShortestPaths(src NodeID, avoid map[NodeID]bool) ([]Cost, []Path, error) {
	st := ssspPool.Get().(*ssspState)
	defer ssspPool.Put(st)
	if err := g.SSSP(&st.t, &st.s, src, st.s.avoidSet(g.N(), avoid)); err != nil {
		return nil, nil, err
	}
	n := g.N()
	dist := make([]Cost, n)
	copy(dist, st.t.Dist)
	paths := make([]Path, n)
	for i := range paths {
		paths[i] = st.t.PathTo(NodeID(i))
	}
	return dist, paths, nil
}

// ShortestPath returns the unique (tie-broken) lowest-cost path and its
// cost from src to dst. The search exits as soon as dst is settled
// instead of computing all n destinations.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, Cost, error) {
	if err := g.check(src, dst); err != nil {
		return nil, 0, err
	}
	st := ssspPool.Get().(*ssspState)
	defer ssspPool.Put(st)
	if err := g.SSSPTo(&st.t, &st.s, src, dst, nil); err != nil {
		return nil, 0, err
	}
	if !st.t.Reached(dst) {
		return nil, Infinity, ErrNoPath
	}
	return st.t.PathTo(dst), st.t.Dist[dst], nil
}

// ShortestPathAvoiding returns the lowest-cost src→dst path that does
// not transit node k. Used for VCG payments: the marginal value of k.
// Like ShortestPath it settles only as much of the graph as needed to
// reach dst.
func (g *Graph) ShortestPathAvoiding(src, dst, k NodeID) (Path, Cost, error) {
	if err := g.check(src, dst, k); err != nil {
		return nil, 0, err
	}
	if k == src || k == dst {
		return nil, 0, ErrAvoidEndpoint
	}
	st := ssspPool.Get().(*ssspState)
	defer ssspPool.Put(st)
	st.s.avoid.grow(g.N())
	st.s.avoid.Clear()
	st.s.avoid.Add(k)
	if err := g.SSSPTo(&st.t, &st.s, src, dst, &st.s.avoid); err != nil {
		return nil, 0, err
	}
	if !st.t.Reached(dst) {
		return nil, Infinity, ErrNoPath
	}
	return st.t.PathTo(dst), st.t.Dist[dst], nil
}

// AllPairs computes the lowest-cost path matrix. paths[i][j] is nil on
// the diagonal and for unreachable pairs.
func (g *Graph) AllPairs() (dist [][]Cost, paths [][]Path, err error) {
	st := ssspPool.Get().(*ssspState)
	defer ssspPool.Put(st)
	n := g.N()
	dist = make([][]Cost, n)
	paths = make([][]Path, n)
	for i := 0; i < n; i++ {
		if err := g.SSSP(&st.t, &st.s, NodeID(i), nil); err != nil {
			return nil, nil, err
		}
		d := make([]Cost, n)
		copy(d, st.t.Dist)
		p := make([]Path, n)
		for j := range p {
			if j != i {
				p[j] = st.t.PathTo(NodeID(j))
			}
		}
		dist[i] = d
		paths[i] = p
	}
	return dist, paths, nil
}

// Diameter returns the maximum hop count over all lowest-cost paths,
// or 0 for graphs with fewer than two nodes. Unreachable pairs do not
// count toward the diameter.
func (g *Graph) Diameter() (int, error) {
	st := ssspPool.Get().(*ssspState)
	defer ssspPool.Put(st)
	maxHops := 0
	for i := 0; i < g.N(); i++ {
		if err := g.SSSP(&st.t, &st.s, NodeID(i), nil); err != nil {
			return 0, err
		}
		for j := range st.t.Hops {
			if j == i || !st.t.Reached(NodeID(j)) {
				continue
			}
			if h := int(st.t.Hops[j]); h > maxHops {
				maxHops = h
			}
		}
	}
	return maxHops, nil
}
