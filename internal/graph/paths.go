package graph

import (
	"container/heap"
	"errors"
	"math"
)

// Infinity is the cost reported for unreachable destinations.
const Infinity = Cost(math.MaxInt64 / 4)

// ErrNoPath is returned when no path exists between the endpoints.
var ErrNoPath = errors.New("graph: no path")

// Path is a node sequence from source to destination, inclusive.
type Path []NodeID

// TransitNodes returns the intermediate nodes of the path.
func (p Path) TransitNodes() []NodeID {
	if len(p) <= 2 {
		return nil
	}
	out := make([]NodeID, len(p)-2)
	copy(out, p[1:len(p)-1])
	return out
}

// Contains reports whether the path visits node id (including endpoints).
func (p Path) Contains(id NodeID) bool {
	for _, v := range p {
		if v == id {
			return true
		}
	}
	return false
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Less orders paths lexicographically; used as a deterministic,
// globally consistent tie-break so every node in a distributed
// computation agrees on one lowest-cost path per pair.
func (p Path) Less(q Path) bool {
	for i := 0; i < len(p) && i < len(q); i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// Better reports whether route (c1, p1) is preferred over (c2, p2)
// under the composite (cost, hop count, lexicographic) order. The hop
// tie-break excludes zero-cost cycles, so asynchronous Bellman–Ford
// relaxation (the distributed FPSS computation) and centralized
// Dijkstra converge to the same unique route for every pair.
func Better(c1 Cost, p1 Path, c2 Cost, p2 Path) bool {
	if c1 != c2 {
		return c1 < c2
	}
	if len(p1) != len(p2) {
		return len(p1) < len(p2)
	}
	return p1.Less(p2)
}

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// PathCost returns the transit cost of the path under the graph's cost
// vector: the sum of intermediate node costs. It validates adjacency.
func (g *Graph) PathCost(p Path) (Cost, error) {
	if len(p) == 0 {
		return 0, ErrNoPath
	}
	if err := g.check(p...); err != nil {
		return 0, err
	}
	var total Cost
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return 0, ErrNoPath
		}
		if i > 0 {
			total += g.costs[p[i]]
		}
	}
	return total, nil
}

// label is a Dijkstra priority-queue entry.
type label struct {
	node NodeID
	dist Cost
	path Path
}

type labelHeap []label

func (h labelHeap) Len() int { return len(h) }
func (h labelHeap) Less(i, j int) bool {
	return Better(h[i].dist, h[i].path, h[j].dist, h[j].path)
}
func (h labelHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *labelHeap) Push(x any)   { *h = append(*h, x.(label)) }
func (h *labelHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// ShortestPaths computes lowest-cost paths from src to every node,
// skipping nodes in avoid (which must not include src). Ties are broken
// by lexicographically smallest path so results are globally unique.
// Unreachable nodes get cost Infinity and a nil path.
func (g *Graph) ShortestPaths(src NodeID, avoid map[NodeID]bool) ([]Cost, []Path, error) {
	if err := g.check(src); err != nil {
		return nil, nil, err
	}
	if avoid[src] {
		return nil, nil, errors.New("graph: source is in avoid set")
	}
	n := g.N()
	dist := make([]Cost, n)
	best := make([]Path, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
	}
	h := &labelHeap{{node: src, dist: 0, path: Path{src}}}
	for h.Len() > 0 {
		cur := heap.Pop(h).(label)
		u := cur.node
		if done[u] {
			continue
		}
		done[u] = true
		dist[u] = cur.dist
		best[u] = cur.path
		// Extending beyond u makes u a transit node (unless u is src).
		var transit Cost
		if u != src {
			transit = g.costs[u]
		}
		for _, v := range g.Neighbors(u) {
			if done[v] || avoid[v] {
				continue
			}
			nd := cur.dist + transit
			np := append(cur.path.Clone(), v)
			if best[v] == nil || Better(nd, np, dist[v], best[v]) {
				// Lazy deletion: push an improved label; stale ones are
				// skipped via done[]. For tie-breaking we must also push
				// equal-cost lexicographically smaller labels, tracking
				// the tentative best path to bound heap growth.
				dist[v] = nd
				best[v] = np
				heap.Push(h, label{node: v, dist: nd, path: np})
			}
		}
	}
	for i := range best {
		if !done[i] {
			best[i] = nil
			dist[i] = Infinity
		}
	}
	return dist, best, nil
}

// ShortestPath returns the unique (tie-broken) lowest-cost path and its
// cost from src to dst.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, Cost, error) {
	if err := g.check(src, dst); err != nil {
		return nil, 0, err
	}
	dist, paths, err := g.ShortestPaths(src, nil)
	if err != nil {
		return nil, 0, err
	}
	if paths[dst] == nil {
		return nil, Infinity, ErrNoPath
	}
	return paths[dst], dist[dst], nil
}

// ShortestPathAvoiding returns the lowest-cost src→dst path that does
// not transit node k. Used for VCG payments: the marginal value of k.
func (g *Graph) ShortestPathAvoiding(src, dst, k NodeID) (Path, Cost, error) {
	if err := g.check(src, dst, k); err != nil {
		return nil, 0, err
	}
	if k == src || k == dst {
		return nil, 0, errors.New("graph: avoid node is an endpoint")
	}
	dist, paths, err := g.ShortestPaths(src, map[NodeID]bool{k: true})
	if err != nil {
		return nil, 0, err
	}
	if paths[dst] == nil {
		return nil, Infinity, ErrNoPath
	}
	return paths[dst], dist[dst], nil
}

// AllPairs computes the lowest-cost path matrix. paths[i][j] is nil on
// the diagonal and for unreachable pairs.
func (g *Graph) AllPairs() (dist [][]Cost, paths [][]Path, err error) {
	n := g.N()
	dist = make([][]Cost, n)
	paths = make([][]Path, n)
	for i := 0; i < n; i++ {
		d, p, e := g.ShortestPaths(NodeID(i), nil)
		if e != nil {
			return nil, nil, e
		}
		dist[i] = d
		paths[i] = p
		paths[i][i] = nil
	}
	return dist, paths, nil
}

// Diameter returns the maximum hop count over all lowest-cost paths,
// or 0 for graphs with fewer than two nodes.
func (g *Graph) Diameter() int {
	_, paths, err := g.AllPairs()
	if err != nil {
		return 0
	}
	maxHops := 0
	for i := range paths {
		for j := range paths[i] {
			if i == j || paths[i][j] == nil {
				continue
			}
			if h := len(paths[i][j]) - 1; h > maxHops {
				maxHops = h
			}
		}
	}
	return maxHops
}
