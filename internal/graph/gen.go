package graph

import (
	"fmt"
	"math/rand"
)

// Figure1 builds the exact 6-node example network of the paper's
// Figure 1 ("LCPs from Z"), with named nodes A, B, C, D, X, Z and
// per-packet transit costs A=5, B=1000, C=1, D=1, X=6, Z=100.
//
// The quoted facts hold on it: the X→Z lowest-cost path is X-D-C-Z
// with cost 2, the Z→D cost is 1 (via C), and B→D costs 0 (adjacent).
func Figure1() *Graph {
	g := New(6)
	names := []string{"A", "B", "C", "D", "X", "Z"}
	costs := []Cost{5, 1000, 1, 1, 6, 100}
	for i := range names {
		_ = g.SetName(NodeID(i), names[i])
		_ = g.SetCost(NodeID(i), costs[i])
	}
	edges := [][2]string{
		{"A", "X"}, {"A", "Z"},
		{"B", "D"}, {"B", "Z"},
		{"C", "D"}, {"C", "Z"},
		{"D", "X"},
	}
	for _, e := range edges {
		u, _ := g.ByName(e[0])
		v, _ := g.ByName(e[1])
		_ = g.AddEdge(u, v)
	}
	return g
}

// Clique returns the complete graph on the given transit costs.
func Clique(costs []Cost) (*Graph, error) {
	g := New(len(costs))
	for i, c := range costs {
		if err := g.SetCost(NodeID(i), c); err != nil {
			return nil, err
		}
	}
	for i := 0; i < len(costs); i++ {
		for j := i + 1; j < len(costs); j++ {
			if err := g.AddEdge(NodeID(i), NodeID(j)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Ring returns a cycle on n nodes with costs drawn uniformly from
// [1, maxCost] using rng. A cycle is the minimal biconnected graph.
func Ring(n int, maxCost Cost, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		_ = g.SetCost(NodeID(i), 1+Cost(rng.Int63n(int64(maxCost))))
		_ = g.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return g, nil
}

// RingWithChords returns a cycle on n nodes plus `chords` extra random
// edges. The result is biconnected by construction (a cycle already
// is) and mimics sparse AS-like topologies with shortcuts.
func RingWithChords(n, chords int, maxCost Cost, rng *rand.Rand) (*Graph, error) {
	g, err := Ring(n, maxCost, rng)
	if err != nil {
		return nil, err
	}
	for added := 0; added < chords; {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			// Dense small rings may have no room for more chords.
			if g.M() == n*(n-1)/2 {
				break
			}
			continue
		}
		_ = g.AddEdge(u, v)
		added++
	}
	return g, nil
}

// RandomBiconnected returns a random biconnected graph on n nodes with
// approximately extraEdges edges beyond the initial spanning cycle.
// It starts from a random Hamiltonian cycle (guaranteeing
// biconnectivity) over a random node permutation, then adds random
// chords, so topology is not biased toward ID order.
func RandomBiconnected(n, extraEdges int, maxCost Cost, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: biconnected needs n >= 3, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		_ = g.SetCost(NodeID(i), 1+Cost(rng.Int63n(int64(maxCost))))
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		_ = g.AddEdge(NodeID(perm[i]), NodeID(perm[(i+1)%n]))
	}
	maxM := n * (n - 1) / 2
	for added := 0; added < extraEdges && g.M() < maxM; {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		_ = g.AddEdge(u, v)
		added++
	}
	return g, nil
}

// RandomCosts returns n costs drawn uniformly from [1, maxCost].
func RandomCosts(n int, maxCost Cost, rng *rand.Rand) []Cost {
	out := make([]Cost, n)
	for i := range out {
		out[i] = 1 + Cost(rng.Int63n(int64(maxCost)))
	}
	return out
}
