// Package graph provides the network substrate used throughout the
// reproduction: undirected graphs whose nodes carry per-packet transit
// costs, as in the FPSS lowest-cost interdomain-routing model
// (Feigenbaum, Papadimitriou, Sami, Shenker, PODC 2002) that
// Shneidman & Parkes (PODC 2004) extend.
//
// The cost of a path is the sum of the transit costs of its
// intermediate nodes; endpoints transit for free. Biconnectivity is the
// standing assumption of FPSS (it makes VCG payments well defined), so
// the package includes an articulation-point check and generators that
// only emit biconnected graphs.
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// NodeID identifies a node in a Graph. IDs are dense, starting at 0.
type NodeID int

// Cost is a per-packet transit cost. Costs are non-negative.
type Cost int64

var (
	// ErrNodeOutOfRange is returned when an operation references a node
	// the graph does not contain.
	ErrNodeOutOfRange = errors.New("graph: node out of range")
	// ErrSelfLoop is returned when an edge would connect a node to itself.
	ErrSelfLoop = errors.New("graph: self loop")
	// ErrNegativeCost is returned when a transit cost is negative.
	ErrNegativeCost = errors.New("graph: negative transit cost")
)

// Graph is an undirected graph with per-node transit costs.
// The zero value is an empty graph; use New to preallocate nodes.
type Graph struct {
	costs []Cost
	adj   []map[NodeID]struct{}
	names []string

	// Flat CSR adjacency, built lazily on the first path query and
	// invalidated by topology mutations. Once built it is immutable, so
	// concurrent read-only queries (parallel all-pairs sweeps) share it.
	csrMu  sync.Mutex
	csrOff []int32
	csrAdj []NodeID
}

// New returns a graph with n nodes, zero transit costs and no edges.
func New(n int) *Graph {
	g := &Graph{
		costs: make([]Cost, n),
		adj:   make([]map[NodeID]struct{}, n),
		names: make([]string, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[NodeID]struct{})
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.costs) }

// M returns the number of undirected edges.
func (g *Graph) M() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// AddNode appends a node with the given transit cost and returns its ID.
func (g *Graph) AddNode(c Cost) (NodeID, error) {
	if c < 0 {
		return 0, ErrNegativeCost
	}
	g.costs = append(g.costs, c)
	g.adj = append(g.adj, make(map[NodeID]struct{}))
	g.names = append(g.names, "")
	g.invalidateCSR()
	return NodeID(len(g.costs) - 1), nil
}

// invalidateCSR drops the flat adjacency after a topology mutation; the
// next query rebuilds it.
func (g *Graph) invalidateCSR() {
	g.csrMu.Lock()
	g.csrOff, g.csrAdj = nil, nil
	g.csrMu.Unlock()
}

// ensureCSR returns the flat adjacency (offsets into a single sorted
// neighbor array), building it if a mutation invalidated it. The
// returned slices are immutable until the next mutation, so concurrent
// queries may hold them without locking.
func (g *Graph) ensureCSR() (off []int32, adj []NodeID) {
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if g.csrOff != nil {
		return g.csrOff, g.csrAdj
	}
	n := len(g.adj)
	off = make([]int32, n+1)
	total := 0
	for i, a := range g.adj {
		total += len(a)
		off[i+1] = int32(total)
	}
	adj = make([]NodeID, total)
	for i, a := range g.adj {
		row := adj[off[i]:off[i]]
		for v := range a {
			row = append(row, v)
		}
		slices.Sort(row)
	}
	g.csrOff, g.csrAdj = off, adj
	return off, adj
}

// AdjView returns id's neighbors in ascending order as a view into the
// shared CSR layout. The slice must be treated as read-only; it stays
// valid until the next topology mutation. Use Neighbors for an owned
// copy.
func (g *Graph) AdjView(id NodeID) []NodeID {
	if g.check(id) != nil {
		return nil
	}
	off, adj := g.ensureCSR()
	return adj[off[id]:off[id+1]]
}

func (g *Graph) check(ids ...NodeID) error {
	for _, id := range ids {
		if id < 0 || int(id) >= len(g.costs) {
			return fmt.Errorf("%w: %d (n=%d)", ErrNodeOutOfRange, id, len(g.costs))
		}
	}
	return nil
}

// AddEdge connects u and v. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v NodeID) error {
	if err := g.check(u, v); err != nil {
		return err
	}
	if u == v {
		return ErrSelfLoop
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.invalidateCSR()
	return nil
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if g.check(u, v) != nil {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Cost returns the transit cost of node id.
func (g *Graph) Cost(id NodeID) Cost {
	if g.check(id) != nil {
		return 0
	}
	return g.costs[id]
}

// SetCost updates the transit cost of node id.
func (g *Graph) SetCost(id NodeID, c Cost) error {
	if err := g.check(id); err != nil {
		return err
	}
	if c < 0 {
		return ErrNegativeCost
	}
	g.costs[id] = c
	return nil
}

// Costs returns a copy of the transit-cost vector indexed by NodeID.
func (g *Graph) Costs() []Cost {
	out := make([]Cost, len(g.costs))
	copy(out, g.costs)
	return out
}

// SetName attaches a human-readable name to a node (used by the
// Figure-1 topology: A, B, C, D, X, Z).
func (g *Graph) SetName(id NodeID, name string) error {
	if err := g.check(id); err != nil {
		return err
	}
	g.names[id] = name
	return nil
}

// Name returns the node's name, or its numeric ID if unnamed.
func (g *Graph) Name(id NodeID) string {
	if g.check(id) != nil {
		return fmt.Sprintf("#%d", id)
	}
	if g.names[id] == "" {
		return fmt.Sprintf("#%d", id)
	}
	return g.names[id]
}

// ByName returns the ID of the node with the given name.
func (g *Graph) ByName(name string) (NodeID, bool) {
	for i, n := range g.names {
		if n == name {
			return NodeID(i), true
		}
	}
	return 0, false
}

// Neighbors returns the sorted neighbor list of id as an owned copy.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if g.check(id) != nil {
		return nil
	}
	return slices.Clone(g.AdjView(id))
}

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id NodeID) int {
	if g.check(id) != nil {
		return 0
	}
	return len(g.adj[id])
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	copy(c.costs, g.costs)
	copy(c.names, g.names)
	for u, nbrs := range g.adj {
		for v := range nbrs {
			c.adj[u][v] = struct{}{}
		}
	}
	return c
}

// WithoutNode returns a copy of the graph in which node k keeps its
// ID but loses every incident edge (isolating it). Used to compute
// VCG marginal values: lowest-cost paths that avoid k.
func (g *Graph) WithoutNode(k NodeID) (*Graph, error) {
	if err := g.check(k); err != nil {
		return nil, err
	}
	c := g.Clone()
	for v := range c.adj[k] {
		delete(c.adj[v], k)
	}
	c.adj[k] = make(map[NodeID]struct{})
	c.invalidateCSR()
	return c, nil
}

// WithCosts returns a copy of the graph whose transit-cost vector is
// replaced by costs. Used to evaluate declared (possibly untruthful)
// cost profiles against a fixed topology.
func (g *Graph) WithCosts(costs []Cost) (*Graph, error) {
	if len(costs) != g.N() {
		return nil, fmt.Errorf("graph: cost vector length %d != n %d", len(costs), g.N())
	}
	for _, c := range costs {
		if c < 0 {
			return nil, ErrNegativeCost
		}
	}
	c := g.Clone()
	copy(c.costs, costs)
	return c, nil
}

// Edges returns all undirected edges with u < v, sorted.
func (g *Graph) Edges() [][2]NodeID {
	var out [][2]NodeID
	for u := range g.adj {
		for v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, [2]NodeID{NodeID(u), v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
