package graph

import (
	"errors"
	"math"
	"sync"
)

// This file is the allocation-free single-source core behind every
// path query in the package. Instead of materializing an O(n) path
// slice per heap label (and cloning it on every relaxation), the core
// labels each node with (dist, hops, parent) and reconstructs paths on
// demand from the parent pointers. The composite (cost, hops,
// lexicographic) route order of Better is preserved exactly:
//
//   - (cost, hops) strictly increases along any edge (costs are
//     non-negative and hops always grow by one), so a node popped with
//     the minimum (dist, hops) key is settled — no later relaxation
//     can match its key, let alone beat it.
//   - Any relaxation that ties a node's (dist, hops) must come from a
//     parent with a strictly smaller key, i.e. one settled earlier.
//     So by the time a node pops, all equal-key candidates have been
//     seen and the lexicographically smallest parent chain has won.
//   - Prefix optimality holds for the composite order (a better prefix
//     would splice into a better or cycle-free shorter full path), so
//     parent pointers suffice: the unique best path to v extends the
//     unique best path to its parent.
//
// Lexicographic ties between two parent candidates with equal (dist,
// hops) are resolved by reconstructing both equal-length root chains
// into scratch buffers and comparing from the source end — O(hops),
// and only on genuine double ties.

// ErrSourceAvoided is returned when the SSSP source is in the avoid set.
var ErrSourceAvoided = errors.New("graph: source is in avoid set")

const (
	noParent = int32(-1)
	noTarget = NodeID(-1)
	// unreachedHops marks nodes with no settled label yet; any real hop
	// count compares below it.
	unreachedHops = int32(math.MaxInt32)
)

// NodeSet is a bitset over node IDs — the allocation-free avoid set
// for SSSP queries. A nil *NodeSet is an empty set.
type NodeSet struct {
	words []uint64
}

// NewNodeSet returns an empty set sized for node IDs below n.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, (n+63)/64)}
}

// grow ensures capacity for IDs below n, preserving members.
func (s *NodeSet) grow(n int) {
	if w := (n + 63) / 64; w > len(s.words) {
		s.words = append(s.words, make([]uint64, w-len(s.words))...)
	}
}

// Add inserts id, growing the set if needed.
func (s *NodeSet) Add(id NodeID) {
	s.grow(int(id) + 1)
	s.words[id>>6] |= 1 << (uint(id) & 63)
}

// Remove deletes id.
func (s *NodeSet) Remove(id NodeID) {
	if int(id>>6) < len(s.words) {
		s.words[id>>6] &^= 1 << (uint(id) & 63)
	}
}

// Has reports membership. Safe on a nil set.
func (s *NodeSet) Has(id NodeID) bool {
	if s == nil {
		return false
	}
	w := int(id >> 6)
	return w < len(s.words) && s.words[w]&(1<<(uint(id)&63)) != 0
}

// Clear empties the set, keeping capacity.
func (s *NodeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Tree is a single-source lowest-cost route tree under the composite
// (cost, hops, lexicographic) order: flat distance, hop-count and
// parent-pointer arrays indexed by NodeID. Paths are reconstructed on
// demand, so a full SSSP run allocates nothing beyond these arrays
// (and nothing at all when the Tree is reused).
type Tree struct {
	Src NodeID
	// Dist is Infinity for unreached nodes.
	Dist []Cost
	// Hops is the edge count of the best path; unreached nodes hold a
	// sentinel above any real value. Use Reached.
	Hops []int32
	// Parent is the predecessor on the unique best path, -1 for Src and
	// unreached nodes.
	Parent []int32
}

// reset sizes the tree for n nodes and clears every label.
func (t *Tree) reset(n int, src NodeID) {
	if cap(t.Dist) < n {
		t.Dist = make([]Cost, n)
		t.Hops = make([]int32, n)
		t.Parent = make([]int32, n)
	}
	t.Dist = t.Dist[:n]
	t.Hops = t.Hops[:n]
	t.Parent = t.Parent[:n]
	for i := 0; i < n; i++ {
		t.Dist[i] = Infinity
		t.Hops[i] = unreachedHops
		t.Parent[i] = noParent
	}
	t.Src = src
}

// Reached reports whether dst has a settled route from Src. After an
// early-exit SSSPTo run only the target's label is guaranteed final.
func (t *Tree) Reached(dst NodeID) bool {
	return int(dst) < len(t.Dist) && t.Dist[dst] < Infinity
}

// PathTo reconstructs the unique best Src→dst path, or nil when dst is
// unreached. The returned path is freshly allocated at exact size.
func (t *Tree) PathTo(dst NodeID) Path {
	if !t.Reached(dst) {
		return nil
	}
	return t.AppendPathTo(make(Path, 0, int(t.Hops[dst])+1), dst)
}

// AppendPathTo appends the Src→dst node sequence to p and returns the
// extended slice (p unchanged when dst is unreached).
func (t *Tree) AppendPathTo(p Path, dst NodeID) Path {
	if !t.Reached(dst) {
		return p
	}
	start := len(p)
	for v := int32(dst); v != noParent; v = t.Parent[v] {
		p = append(p, NodeID(v))
	}
	// The parent walk yields dst→Src; flip the appended segment.
	for i, j := start, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// heapNode is one priority-queue entry: the tentative (dist, hops) key
// of node at push time. Stale entries are skipped via Scratch.done.
type heapNode struct {
	dist Cost
	hops int32
	node int32
}

// less orders heap entries by (dist, hops, node): the first two fields
// are the route order (lexicographic ties never reach the heap — they
// update parents in place), and the node ID makes pop order fully
// deterministic.
func (a heapNode) less(b heapNode) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.node < b.node
}

// Scratch is the reusable working set of one SSSP run: the binary
// heap, settled flags and lexicographic tie-break buffers. A Scratch
// grows on demand and serves any number of sequential runs; use one
// per goroutine (it is not safe for concurrent use).
type Scratch struct {
	heap   []heapNode
	done   []bool
	pa, pb []NodeID // equal-length root chains during lex tie-breaks
	avoid  NodeSet  // staging area for map- and single-node avoid sets

	// Delta-repair working set (see delta.go); unused by plain runs.
	taint   []uint8 // old-tree chain cleanliness memo, old numbering
	tstack  []int32 // parent-chain walk stack for the taint memo
	carPar  []int32 // carried parent per new node, -2 when not carried
	changed []bool  // popped node's chain differs from the carried one
}

// NewScratch returns a Scratch pre-sized for n nodes.
func NewScratch(n int) *Scratch {
	return &Scratch{
		heap: make([]heapNode, 0, n),
		done: make([]bool, n),
		pa:   make([]NodeID, 0, n),
		pb:   make([]NodeID, 0, n),
	}
}

func (s *Scratch) reset(n int) {
	if cap(s.done) < n {
		s.done = make([]bool, n)
	}
	s.done = s.done[:n]
	for i := range s.done {
		s.done[i] = false
	}
	s.heap = s.heap[:0]
}

func (s *Scratch) push(e heapNode) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.heap[i].less(s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *Scratch) pop() heapNode {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	s.heap = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h[l].less(h[min]) {
			min = l
		}
		if r < last && h[r].less(h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// lexBefore reports whether the settled root chain of u is
// lexicographically before that of w. Both chains have equal length
// (callers only ask on (dist, hops) double ties) and live in the tree,
// so the comparison reconstructs them into the scratch buffers and
// scans from the source end.
func (s *Scratch) lexBefore(t *Tree, u, w NodeID) bool {
	if u == w {
		return false
	}
	pa := s.pa[:0]
	for v := int32(u); v != noParent; v = t.Parent[v] {
		pa = append(pa, NodeID(v))
	}
	pb := s.pb[:0]
	for v := int32(w); v != noParent; v = t.Parent[v] {
		pb = append(pb, NodeID(v))
	}
	s.pa, s.pb = pa, pb
	for i := len(pa) - 1; i >= 0; i-- {
		if pa[i] != pb[i] {
			return pa[i] < pb[i]
		}
	}
	return false
}

// SSSP computes the full lowest-cost route tree from src into t,
// skipping nodes in avoid (nil means none; src must not be a member).
// The result is byte-identical to the path-materializing reference:
// the same unique (cost, hops, lex)-optimal route for every pair.
func (g *Graph) SSSP(t *Tree, s *Scratch, src NodeID, avoid *NodeSet) error {
	return g.sssp(t, s, src, avoid, noTarget)
}

// SSSPTo is SSSP with an early exit: the run stops as soon as dst is
// settled (its label is final at that point), leaving the rest of the
// tree partial. Only t's labels for dst — and the parent chain behind
// them — are meaningful afterwards.
func (g *Graph) SSSPTo(t *Tree, s *Scratch, src, dst NodeID, avoid *NodeSet) error {
	if err := g.check(dst); err != nil {
		return err
	}
	return g.sssp(t, s, src, avoid, dst)
}

func (g *Graph) sssp(t *Tree, s *Scratch, src NodeID, avoid *NodeSet, until NodeID) error {
	if err := g.check(src); err != nil {
		return err
	}
	if avoid.Has(src) {
		return ErrSourceAvoided
	}
	off, adj := g.ensureCSR()
	n := len(g.costs)
	t.reset(n, src)
	s.reset(n)
	t.Dist[src] = 0
	t.Hops[src] = 0
	s.push(heapNode{dist: 0, hops: 0, node: int32(src)})
	for len(s.heap) > 0 {
		top := s.pop()
		u := NodeID(top.node)
		if s.done[u] {
			continue // stale entry superseded by a better label
		}
		s.done[u] = true
		if u == until {
			return nil
		}
		// Extending beyond u makes u a transit node (unless u is src).
		var transit Cost
		if u != src {
			transit = g.costs[u]
		}
		nd := t.Dist[u] + transit
		nh := t.Hops[u] + 1
		for _, v := range adj[off[u]:off[u+1]] {
			if s.done[v] || avoid.Has(v) {
				continue
			}
			switch {
			case nd < t.Dist[v] || (nd == t.Dist[v] && nh < t.Hops[v]):
				t.Dist[v] = nd
				t.Hops[v] = nh
				t.Parent[v] = int32(u)
				s.push(heapNode{dist: nd, hops: nh, node: int32(v)})
			case nd == t.Dist[v] && nh == t.Hops[v] &&
				s.lexBefore(t, u, NodeID(t.Parent[v])):
				// Same (dist, hops) key, lexicographically smaller
				// chain: steal the parent in place. The entry already
				// queued under this key reads the final parent when it
				// pops, so no extra push is needed.
				t.Parent[v] = int32(u)
			}
		}
	}
	return nil
}

// ssspState bundles a Tree and Scratch for the pooled convenience
// wrappers in paths.go.
type ssspState struct {
	t Tree
	s Scratch
}

var ssspPool = sync.Pool{New: func() any { return new(ssspState) }}

// avoidSet stages a map-form avoid set into the scratch bitset,
// returning nil for an empty set. Out-of-range IDs are dropped — they
// can never match a node, which is how the map form treated them.
func (s *Scratch) avoidSet(n int, avoid map[NodeID]bool) *NodeSet {
	if len(avoid) == 0 {
		return nil
	}
	s.avoid.grow(n)
	s.avoid.Clear()
	for id, in := range avoid {
		if in && id >= 0 && int(id) < n {
			s.avoid.Add(id)
		}
	}
	return &s.avoid
}
