package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path3() *Graph {
	g := New(3) // 0-1-2: node 1 is an articulation point
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	return g
}

func TestIsConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"empty", New(0), true},
		{"single", New(1), true},
		{"two isolated", New(2), false},
		{"path", path3(), true},
		{"figure1", Figure1(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsConnected(); got != tt.want {
				t.Errorf("IsConnected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestArticulationPoints(t *testing.T) {
	g := path3()
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 1 {
		t.Errorf("articulation points = %v, want [1]", aps)
	}

	// Two triangles sharing node 2: node 2 is a cut vertex.
	h := New(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}} {
		_ = h.AddEdge(e[0], e[1])
	}
	aps = h.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 2 {
		t.Errorf("bowtie articulation points = %v, want [2]", aps)
	}

	if got := Figure1().ArticulationPoints(); len(got) != 0 {
		t.Errorf("Figure 1 has articulation points %v, want none", got)
	}
}

func TestIsBiconnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"too small", New(2), false},
		{"path", path3(), false},
		{"figure1", Figure1(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.IsBiconnected(); got != tt.want {
				t.Errorf("IsBiconnected = %v, want %v", got, tt.want)
			}
		})
	}
	tri, err := Clique([]Cost{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !tri.IsBiconnected() {
		t.Error("triangle should be biconnected")
	}
}

// bruteForceIsBiconnected removes each node in turn and checks the
// remainder stays connected — the definition, independent of Tarjan.
func bruteForceIsBiconnected(g *Graph) bool {
	n := g.N()
	if n < 3 {
		return false
	}
	if !g.IsConnected() {
		return false
	}
	for skip := 0; skip < n; skip++ {
		seen := make([]bool, n)
		start := -1
		for i := 0; i < n; i++ {
			if i != skip {
				start = i
				break
			}
		}
		stack := []NodeID{NodeID(start)}
		seen[start] = true
		count := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if int(v) == skip || seen[v] {
					continue
				}
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
		if count != n-1 {
			return false
		}
	}
	return true
}

func TestTarjanAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(7)
		g := New(n)
		// Random edge set, possibly disconnected / with cut vertices.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					_ = g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		if got, want := g.IsBiconnected(), bruteForceIsBiconnected(g); got != want {
			t.Fatalf("trial %d: IsBiconnected = %v, brute force = %v\nedges=%v", trial, got, want, g.Edges())
		}
	}
}

func TestGeneratorsAreBiconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		ring, err := Ring(n, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ring.IsBiconnected() {
			t.Fatalf("Ring(%d) not biconnected", n)
		}
		rc, err := RingWithChords(n, rng.Intn(n), 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !rc.IsBiconnected() {
			t.Fatalf("RingWithChords(%d) not biconnected", n)
		}
		rb, err := RandomBiconnected(n, rng.Intn(2*n), 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !rb.IsBiconnected() {
			t.Fatalf("RandomBiconnected(%d) not biconnected", n)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Ring(2, 5, rng); err == nil {
		t.Error("Ring(2) should error")
	}
	if _, err := RandomBiconnected(2, 0, 5, rng); err == nil {
		t.Error("RandomBiconnected(2) should error")
	}
}

func TestRandomCostsInRange(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cs := RandomCosts(30, 9, r)
		for _, c := range cs {
			if c < 1 || c > 9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCliqueStructure(t *testing.T) {
	g, err := Clique([]Cost{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 {
		t.Errorf("K4 edges = %d, want 6", g.M())
	}
	if _, err := Clique([]Cost{1, -2}); err == nil {
		t.Error("Clique with negative cost should error")
	}
}
