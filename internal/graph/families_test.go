package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// families enumerates every new generator under one harness so the
// property tests (biconnected, deterministic per seed, sane costs)
// cover each family × cost distribution without per-family copies.
var families = []struct {
	name  string
	build func(cost CostFn, rng *rand.Rand) (*Graph, error)
}{
	{"prefattach-m1", func(c CostFn, r *rand.Rand) (*Graph, error) { return PreferentialAttachment(24, 1, c, r) }},
	{"prefattach-m3", func(c CostFn, r *rand.Rand) (*Graph, error) { return PreferentialAttachment(24, 3, c, r) }},
	{"waxman-sparse", func(c CostFn, r *rand.Rand) (*Graph, error) { return Waxman(24, 0.25, 0.15, c, r) }},
	{"waxman-dense", func(c CostFn, r *rand.Rand) (*Graph, error) { return Waxman(24, 0.9, 0.6, c, r) }},
	{"torus", func(c CostFn, r *rand.Rand) (*Graph, error) { return Torus(4, 6, c, r) }},
	{"twotier", func(c CostFn, r *rand.Rand) (*Graph, error) { return TwoTier(4, 6, c, r) }},
	{"twotier-min", func(c CostFn, r *rand.Rand) (*Graph, error) { return TwoTier(3, 2, c, r) }},
}

var costModels = []struct {
	name string
	fn   CostFn
}{
	{"uniform", UniformCost(10)},
	{"heavy", HeavyTailedCost(2, 1.3)},
	{"bimodal", BimodalCost(3, 200, 0.25)},
	{"default-nil", nil},
}

func TestFamiliesBiconnectedAndCosted(t *testing.T) {
	for _, fam := range families {
		for _, cm := range costModels {
			t.Run(fam.name+"/"+cm.name, func(t *testing.T) {
				for seed := int64(1); seed <= 5; seed++ {
					g, err := fam.build(cm.fn, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if !g.IsBiconnected() {
						t.Fatalf("seed %d: graph not biconnected (n=%d m=%d, articulation %v)",
							seed, g.N(), g.M(), g.ArticulationPoints())
					}
					for i := 0; i < g.N(); i++ {
						if g.Cost(NodeID(i)) < 1 {
							t.Fatalf("seed %d: node %d has cost %d < 1", seed, i, g.Cost(NodeID(i)))
						}
					}
				}
			})
		}
	}
}

// TestFamiliesDeterministicPerSeed rebuilds every family twice from
// the same seed and demands identical structure and costs — the
// property that makes scenario.Spec a pure function of its fields.
func TestFamiliesDeterministicPerSeed(t *testing.T) {
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				a, err := fam.build(HeavyTailedCost(2, 1.5), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				b, err := fam.build(HeavyTailedCost(2, 1.5), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Edges(), b.Edges()) {
					t.Fatalf("seed %d: edge sets differ between two builds", seed)
				}
				if !reflect.DeepEqual(a.Costs(), b.Costs()) {
					t.Fatalf("seed %d: cost vectors differ between two builds", seed)
				}
			}
		})
	}
}

func TestFamiliesRejectInvalidSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"prefattach-n2", func() (*Graph, error) { return PreferentialAttachment(2, 1, nil, rng) }},
		{"prefattach-m0", func() (*Graph, error) { return PreferentialAttachment(8, 0, nil, rng) }},
		{"prefattach-m-ge-n", func() (*Graph, error) { return PreferentialAttachment(8, 8, nil, rng) }},
		{"waxman-n2", func() (*Graph, error) { return Waxman(2, 0.5, 0.5, nil, rng) }},
		{"waxman-alpha0", func() (*Graph, error) { return Waxman(8, 0, 0.5, nil, rng) }},
		{"waxman-beta0", func() (*Graph, error) { return Waxman(8, 0.5, 0, nil, rng) }},
		{"torus-2x5", func() (*Graph, error) { return Torus(2, 5, nil, rng) }},
		{"torus-5x2", func() (*Graph, error) { return Torus(5, 2, nil, rng) }},
		{"twotier-2clusters", func() (*Graph, error) { return TwoTier(2, 4, nil, rng) }},
		{"twotier-size1", func() (*Graph, error) { return TwoTier(4, 1, nil, rng) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if g, err := c.build(); err == nil {
				t.Fatalf("expected an error, got a graph with n=%d", g.N())
			}
		})
	}
}

func TestRepairBiconnected(t *testing.T) {
	// A path graph: every interior node is an articulation point.
	g := New(6)
	for i := 0; i < 5; i++ {
		_ = g.AddEdge(NodeID(i), NodeID(i+1))
	}
	if err := RepairBiconnected(g); err != nil {
		t.Fatal(err)
	}
	if !g.IsBiconnected() {
		t.Fatal("path graph not repaired to biconnected")
	}
	// Disconnected islands get chained first.
	g = New(7)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(4, 5)
	if err := RepairBiconnected(g); err != nil {
		t.Fatal(err)
	}
	if !g.IsBiconnected() {
		t.Fatal("islands not repaired to biconnected")
	}
	// Already-biconnected graphs are left untouched.
	ring, err := Ring(5, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	before := ring.M()
	if err := RepairBiconnected(ring); err != nil {
		t.Fatal(err)
	}
	if ring.M() != before {
		t.Fatalf("repair added %d edges to an already-biconnected ring", ring.M()-before)
	}
	if err := RepairBiconnected(New(2)); err == nil {
		t.Fatal("n=2 should be rejected")
	}
}
