package graph

import "fmt"

// This file makes SSSP incremental across graph evolutions. A Delta
// captures how one graph turned into the next — which nodes left,
// which joined, whose transit costs were redrawn, which edges appeared
// — under a monotone renumbering of the survivors. SSSPDelta then
// repairs a previous tree instead of rebuilding it: labels whose
// optimal chains provably avoid the changed region are carried over
// verbatim, and a restricted Dijkstra runs only from the frontier of
// the affected region.
//
// The contract is strict: the repaired tree is byte-identical to what
// g.SSSP would produce from scratch under the composite (cost, hops,
// lex) order. That works because the optimal tree is a *canonical*
// object fully determined by the graph — the repair only has to reach
// the same canonical labels, not imitate scratch execution order. Three
// mechanisms deliver it:
//
//   - Taint: walking the old tree's parent chains, a label is carried
//     only when every node on its chain survived with its cost intact
//     and every chain edge still exists. A node's own cost change does
//     not taint its own label (endpoints transit free), only its
//     children's.
//   - Seeds: the repair heap starts from carried labels that can emit
//     new relaxations — cost-changed survivors, survivor endpoints of
//     added edges, and every clean node adjacent to a non-carried
//     (tainted or joined) node.
//   - Pop-time parent re-selection: every popped node rescans its
//     neighbors for candidates c with Dist[c]+transit(c) == Dist[u] and
//     Hops[c]+1 == Hops[u] and takes the lexicographically smallest
//     chain. All such candidates have strictly smaller (dist, hops)
//     keys, hence are final when u pops, so the re-selection sees
//     exactly the candidate set scratch SSSP saw. Equal-key ties are
//     re-pushed whenever the relaxing node's chain changed, its cost
//     changed, or the edge is new — propagating chain changes down
//     carried subtrees.
//
// Carried labels never need improving relaxations from unseeded clean
// nodes: any such extension already existed unchanged in the old graph,
// so the old (hence carried) label already accounts for it.

// Delta describes the evolution from an old graph to a new one under a
// node remap. Build one with NewDelta; a nil *Delta means "no usable
// delta" and makes SSSPDelta fall back to a scratch run.
type Delta struct {
	oldToNew []NodeID // -1 for nodes that left
	newToOld []NodeID // -1 for nodes that joined
	// costChanged marks survivors (new numbering) whose transit cost
	// differs between the graphs.
	costChanged NodeSet
	// seed marks survivors (new numbering) whose carried label can emit
	// relaxations scratch SSSP would have emitted and the old tree never
	// saw: cost-changed survivors and survivor endpoints of added
	// survivor–survivor edges.
	seed NodeSet
	// extDirtyOld marks old nodes whose path *extension* changed:
	// removed nodes and cost-changed survivors (old numbering). Children
	// of such nodes in an old tree cannot be carried.
	extDirtyOld []bool
	// addedEdges holds survivor–survivor edges present only in the new
	// graph, packed u<<32|v with u < v in new numbering. Consulted only
	// on equal-key ties.
	addedEdges map[uint64]struct{}
}

func packEdge(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// NOld returns the node count of the pre-delta graph.
func (d *Delta) NOld() int { return len(d.oldToNew) }

// NNew returns the node count of the post-delta graph.
func (d *Delta) NNew() int { return len(d.newToOld) }

// NewToOld maps a new-graph node to its old-graph ID, or -1 for a
// joiner.
func (d *Delta) NewToOld(w NodeID) NodeID {
	if w < 0 || int(w) >= len(d.newToOld) {
		return -1
	}
	return d.newToOld[w]
}

// OldToNew maps an old-graph node to its new-graph ID, or -1 for a
// leaver.
func (d *Delta) OldToNew(v NodeID) NodeID {
	if v < 0 || int(v) >= len(d.oldToNew) {
		return -1
	}
	return d.oldToNew[v]
}

// NewDelta builds the evolution descriptor from oldG to newG.
// oldToNew[v] names the new ID of old node v, or -1 if v left; new IDs
// not covered are joiners. The surviving map must be injective and
// strictly increasing — an order-preserving remap is what keeps carried
// lexicographic tie decisions valid, since node-ID comparisons on
// clean chains must mean the same thing in both numberings. (The churn
// layer satisfies this for free: members sort ascending by identity
// and joiners always receive fresh identities above every existing
// one.)
func NewDelta(oldG, newG *Graph, oldToNew []NodeID) (*Delta, error) {
	nOld, nNew := oldG.N(), newG.N()
	if len(oldToNew) != nOld {
		return nil, fmt.Errorf("graph: delta remap length %d != old n %d", len(oldToNew), nOld)
	}
	d := &Delta{
		oldToNew:    append([]NodeID(nil), oldToNew...),
		newToOld:    make([]NodeID, nNew),
		extDirtyOld: make([]bool, nOld),
	}
	for w := range d.newToOld {
		d.newToOld[w] = -1
	}
	prev := NodeID(-1)
	for v, w := range oldToNew {
		if w < 0 {
			d.extDirtyOld[v] = true // leaver: extensions through v are gone
			continue
		}
		if int(w) >= nNew {
			return nil, fmt.Errorf("graph: delta remap %d -> %d out of range (new n=%d)", v, w, nNew)
		}
		if w <= prev {
			return nil, fmt.Errorf("graph: delta remap not strictly increasing at old node %d", v)
		}
		prev = w
		if d.newToOld[w] >= 0 {
			return nil, fmt.Errorf("graph: delta remap not injective at new node %d", w)
		}
		d.newToOld[w] = NodeID(v)
		if oldG.Cost(NodeID(v)) != newG.Cost(w) {
			d.extDirtyOld[v] = true
			d.costChanged.Add(w)
			d.seed.Add(w)
		}
	}
	// Survivor–survivor edges present only in the new graph seed both
	// endpoints and join the tie lookup. Edges with a joiner endpoint
	// need neither: the joiner is rebuilt, so the frontier rule already
	// seeds its surviving neighbors and re-selection covers its ties.
	newOff, newAdj := newG.ensureCSR()
	for u := 0; u < nNew; u++ {
		ou := d.newToOld[u]
		if ou < 0 {
			continue
		}
		for _, v := range newAdj[newOff[u]:newOff[u+1]] {
			if v <= NodeID(u) {
				continue
			}
			ov := d.newToOld[v]
			if ov < 0 || oldG.HasEdge(ou, ov) {
				continue
			}
			d.seed.Add(NodeID(u))
			d.seed.Add(v)
			if d.addedEdges == nil {
				d.addedEdges = make(map[uint64]struct{})
			}
			d.addedEdges[packEdge(NodeID(u), v)] = struct{}{}
		}
	}
	return d, nil
}

// edgeAdded reports whether u–v (new numbering) exists only in the new
// graph. Only survivor–survivor additions are recorded — see NewDelta.
func (d *Delta) edgeAdded(u, v NodeID) bool {
	if len(d.addedEdges) == 0 {
		return false
	}
	_, ok := d.addedEdges[packEdge(u, v)]
	return ok
}

// Taint states for the old-tree memo walk.
const (
	taintUnknown = uint8(0)
	taintClean   = uint8(1)
	taintDirty   = uint8(2)
)

// SSSPDelta computes into t the same tree g.SSSP(t, s, src, avoid)
// would — byte-identical labels — by repairing old, the tree of the
// same (source, avoid) query on the pre-delta graph (with source and
// avoid taken through the remap). t must not alias old. When src is a
// joiner, or old's source does not map to src, the repair silently
// falls back to a full scratch run; a shape mismatch between old and
// the delta is an error.
func (g *Graph) SSSPDelta(t *Tree, s *Scratch, src NodeID, avoid *NodeSet, old *Tree, d *Delta) error {
	if d == nil || old == nil {
		return g.SSSP(t, s, src, avoid)
	}
	if t == old {
		return fmt.Errorf("graph: SSSPDelta target aliases the old tree")
	}
	if err := g.check(src); err != nil {
		return err
	}
	if avoid.Has(src) {
		return ErrSourceAvoided
	}
	n := len(g.costs)
	nOld := d.NOld()
	if d.NNew() != n {
		return fmt.Errorf("graph: delta new n %d != graph n %d", d.NNew(), n)
	}
	if len(old.Dist) != nOld {
		return fmt.Errorf("graph: old tree n %d != delta old n %d", len(old.Dist), nOld)
	}
	oldSrc := d.newToOld[src]
	if oldSrc < 0 || old.Src != oldSrc {
		return g.SSSP(t, s, src, avoid) // joiner source or foreign tree
	}

	off, adj := g.ensureCSR()
	t.reset(n, src)
	s.reset(n)
	s.sizeDelta(n, nOld)

	// Phase 1 — taint the old tree: a label is carried only when its
	// whole parent chain survived untouched. Memoized iterative walk,
	// O(nOld) amortized.
	taint := s.taint
	for v := 0; v < nOld; v++ {
		if taint[v] != taintUnknown {
			continue
		}
		cur := int32(v)
		stack := s.tstack[:0]
		for taint[cur] == taintUnknown {
			if d.oldToNew[cur] < 0 || old.Dist[cur] >= Infinity {
				taint[cur] = taintDirty
				break
			}
			if NodeID(cur) == old.Src {
				taint[cur] = taintClean
				break
			}
			p := old.Parent[cur]
			if p == noParent {
				taint[cur] = taintDirty // reachable yet parentless: not carryable
				break
			}
			stack = append(stack, cur)
			cur = p
		}
		for i := len(stack) - 1; i >= 0; i-- {
			c := stack[i]
			p := old.Parent[c]
			switch {
			case taint[p] == taintDirty:
				taint[c] = taintDirty
			case d.extDirtyOld[p] && NodeID(p) != old.Src:
				// Parent's extension changed (cost redraw). The source is
				// exempt: endpoints transit free.
				taint[c] = taintDirty
			case !g.HasEdge(d.oldToNew[p], d.oldToNew[c]):
				taint[c] = taintDirty // chain edge no longer exists
			default:
				taint[c] = taintClean
			}
		}
		s.tstack = stack[:0]
	}

	// Phase 2 — carry clean labels into the new numbering. carPar
	// remembers what was carried so changed-chain detection at pop time
	// is a single comparison; -2 marks "not carried".
	const notCarried = int32(-2)
	for w := 0; w < n; w++ {
		s.changed[w] = false
		o := d.newToOld[w]
		if o < 0 || taint[o] != taintClean {
			s.carPar[w] = notCarried
			continue
		}
		t.Dist[w] = old.Dist[o]
		t.Hops[w] = old.Hops[o]
		if op := old.Parent[o]; op != noParent {
			t.Parent[w] = int32(d.oldToNew[op])
		}
		s.carPar[w] = t.Parent[w]
	}

	// Phase 3 — seed the heap: carried nodes that can emit relaxations
	// the old tree never saw (cost changes, added edges) plus the clean
	// frontier bordering the rebuilt region. The avoided node never
	// relaxes anything, so it neither seeds nor counts as frontier.
	for w := 0; w < n; w++ {
		if s.carPar[w] == notCarried || avoid.Has(NodeID(w)) {
			continue
		}
		push := d.seed.Has(NodeID(w))
		if !push {
			for _, x := range adj[off[w]:off[w+1]] {
				if s.carPar[x] == notCarried && !avoid.Has(x) {
					push = true
					break
				}
			}
		}
		if push {
			s.push(heapNode{dist: t.Dist[w], hops: t.Hops[w], node: int32(w)})
		}
	}

	// Phase 4 — restricted Dijkstra over the affected region. Carried
	// labels act as warm upper bounds; every popped node re-selects its
	// parent among the (final) equal-key candidates, which reproduces
	// scratch's lexicographic tie-breaking exactly.
	for len(s.heap) > 0 {
		top := s.pop()
		u := NodeID(top.node)
		if s.done[u] {
			continue // stale entry superseded by a better label
		}
		s.done[u] = true
		if u != src {
			s.reselectParent(g, t, u, src, avoid, off, adj)
		}
		// A node's chain changed when it was rebuilt, its parent differs
		// from the carried one, or its (possibly re-chosen) parent's own
		// chain changed.
		ch := s.carPar[u] == notCarried
		if !ch {
			if p := t.Parent[u]; p != s.carPar[u] {
				ch = true
			} else if p != noParent && s.changed[p] {
				ch = true
			}
		}
		s.changed[u] = ch
		tieCh := ch || d.costChanged.Has(u)
		var transit Cost
		if u != src {
			transit = g.costs[u]
		}
		nd := t.Dist[u] + transit
		nh := t.Hops[u] + 1
		for _, v := range adj[off[u]:off[u+1]] {
			if s.done[v] || avoid.Has(v) {
				continue
			}
			switch {
			case nd < t.Dist[v] || (nd == t.Dist[v] && nh < t.Hops[v]):
				t.Dist[v] = nd
				t.Hops[v] = nh
				t.Parent[v] = int32(u)
				s.push(heapNode{dist: nd, hops: nh, node: int32(v)})
			case nd == t.Dist[v] && nh == t.Hops[v] &&
				(tieCh || d.edgeAdded(u, v)):
				// The tie candidate set or u's chain differs from what the
				// old tree decided on; push v at its (final) key so it
				// re-selects at pop. Equal-key pushes always pop after u
				// and before anything that reads v's parent, so no in-place
				// steal is needed here.
				s.push(heapNode{dist: nd, hops: nh, node: int32(v)})
			}
		}
	}
	return nil
}

// reselectParent recomputes u's parent as the lexicographically
// smallest chain among all neighbors whose final label extends exactly
// to u's key. Every such candidate has a strictly smaller (dist, hops)
// key than u, so — heap pops being key-monotone — its label is final
// here, and the candidate set equals the one scratch SSSP resolved
// ties over.
func (s *Scratch) reselectParent(g *Graph, t *Tree, u, src NodeID, avoid *NodeSet, off []int32, adj []NodeID) {
	du, hu := t.Dist[u], t.Hops[u]
	best := NodeID(-1)
	for _, c := range adj[off[u]:off[u+1]] {
		if avoid.Has(c) || t.Dist[c] >= Infinity {
			continue
		}
		var ct Cost
		if c != src {
			ct = g.costs[c]
		}
		if t.Dist[c]+ct != du || t.Hops[c]+1 != hu {
			continue
		}
		if best < 0 || s.lexBefore(t, c, best) {
			best = c
		}
	}
	if best >= 0 {
		t.Parent[u] = int32(best)
	}
}

// sizeDelta grows and clears the repair-only scratch arrays: taint is
// indexed by old IDs, carPar/changed by new IDs.
func (s *Scratch) sizeDelta(n, nOld int) {
	if cap(s.taint) < nOld {
		s.taint = make([]uint8, nOld)
	}
	s.taint = s.taint[:nOld]
	for i := range s.taint {
		s.taint[i] = taintUnknown
	}
	if cap(s.carPar) < n {
		s.carPar = make([]int32, n)
		s.changed = make([]bool, n)
	}
	s.carPar = s.carPar[:n]
	s.changed = s.changed[:n]
	if s.tstack == nil {
		s.tstack = make([]int32, 0, nOld)
	}
}
