package graph

import (
	"errors"
	"testing"
)

func TestNewAndAddNode(t *testing.T) {
	g := New(2)
	if g.N() != 2 {
		t.Fatalf("N() = %d, want 2", g.N())
	}
	id, err := g.AddNode(7)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if id != 2 {
		t.Errorf("AddNode id = %d, want 2", id)
	}
	if g.Cost(id) != 7 {
		t.Errorf("Cost(%d) = %d, want 7", id, g.Cost(id))
	}
	if _, err := g.AddNode(-1); !errors.Is(err, ErrNegativeCost) {
		t.Errorf("AddNode(-1) err = %v, want ErrNegativeCost", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		wantErr error
	}{
		{"ok", 0, 1, nil},
		{"self loop", 1, 1, ErrSelfLoop},
		{"out of range high", 0, 5, ErrNodeOutOfRange},
		{"out of range negative", -1, 0, ErrNodeOutOfRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.u, tt.v)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("AddEdge(%d,%d) = %v, want %v", tt.u, tt.v, err, tt.wantErr)
			}
		})
	}
}

func TestEdgeIdempotentAndSymmetric(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true, want false")
	}
}

func TestSetCost(t *testing.T) {
	g := New(1)
	if err := g.SetCost(0, 42); err != nil {
		t.Fatal(err)
	}
	if g.Cost(0) != 42 {
		t.Errorf("Cost = %d, want 42", g.Cost(0))
	}
	if err := g.SetCost(0, -3); !errors.Is(err, ErrNegativeCost) {
		t.Errorf("SetCost(-3) = %v, want ErrNegativeCost", err)
	}
	if err := g.SetCost(9, 1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("SetCost out of range = %v, want ErrNodeOutOfRange", err)
	}
}

func TestNamesAndLookup(t *testing.T) {
	g := New(2)
	if err := g.SetName(0, "alpha"); err != nil {
		t.Fatal(err)
	}
	if got := g.Name(0); got != "alpha" {
		t.Errorf("Name(0) = %q, want alpha", got)
	}
	if got := g.Name(1); got != "#1" {
		t.Errorf("Name(1) = %q, want #1", got)
	}
	id, ok := g.ByName("alpha")
	if !ok || id != 0 {
		t.Errorf("ByName(alpha) = %d,%v", id, ok)
	}
	if _, ok := g.ByName("nope"); ok {
		t.Error("ByName(nope) found")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(4)
	for _, v := range []NodeID{3, 1, 2} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Neighbors(0)
	want := []NodeID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d, want 3", g.Degree(0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	_ = g.SetCost(0, 5)
	_ = g.SetName(0, "x")
	c := g.Clone()
	_ = c.AddEdge(1, 2)
	_ = c.SetCost(0, 9)
	if g.HasEdge(1, 2) {
		t.Error("clone edge leaked into original")
	}
	if g.Cost(0) != 5 {
		t.Error("clone cost leaked into original")
	}
	if c.Name(0) != "x" {
		t.Error("clone lost name")
	}
}

func TestWithCosts(t *testing.T) {
	g := New(2)
	_ = g.AddEdge(0, 1)
	h, err := g.WithCosts([]Cost{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if h.Cost(0) != 3 || h.Cost(1) != 4 {
		t.Error("WithCosts did not apply")
	}
	if g.Cost(0) != 0 {
		t.Error("WithCosts mutated original")
	}
	if _, err := g.WithCosts([]Cost{1}); err == nil {
		t.Error("WithCosts accepted wrong length")
	}
	if _, err := g.WithCosts([]Cost{-1, 2}); !errors.Is(err, ErrNegativeCost) {
		t.Errorf("WithCosts negative = %v, want ErrNegativeCost", err)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(0, 3)
	_ = g.AddEdge(0, 1)
	got := g.Edges()
	want := [][2]NodeID{{0, 1}, {0, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", got, want)
		}
	}
}

func TestCostsCopy(t *testing.T) {
	g := New(2)
	_ = g.SetCost(0, 1)
	cs := g.Costs()
	cs[0] = 99
	if g.Cost(0) != 1 {
		t.Error("Costs() returned aliased slice")
	}
}
