package graph

// IsConnected reports whether the graph is connected (vacuously true
// for graphs with fewer than two nodes).
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// ArticulationPoints returns the cut vertices of the graph (Tarjan's
// algorithm, iterative to avoid recursion limits on large graphs).
func (g *Graph) ArticulationPoints() []NodeID {
	n := g.N()
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]NodeID, n)
	isArt := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0

	type frame struct {
		u    NodeID
		nbrs []NodeID
		idx  int
	}

	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		rootChildren := 0
		disc[start] = timer
		low[start] = timer
		timer++
		stack := []frame{{u: NodeID(start), nbrs: g.Neighbors(NodeID(start))}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(f.nbrs) {
				v := f.nbrs[f.idx]
				f.idx++
				switch {
				case disc[v] == -1:
					parent[v] = f.u
					if f.u == NodeID(start) {
						rootChildren++
					}
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{u: v, nbrs: g.Neighbors(v)})
				case v != parent[f.u]:
					if disc[v] < low[f.u] {
						low[f.u] = disc[v]
					}
				}
				continue
			}
			// Post-order: propagate low to parent.
			stack = stack[:len(stack)-1]
			if p := parent[f.u]; p != -1 {
				if low[f.u] < low[p] {
					low[p] = low[f.u]
				}
				if p != NodeID(start) && low[f.u] >= disc[p] {
					isArt[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isArt[start] = true
		}
	}

	var out []NodeID
	for i, a := range isArt {
		if a {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// IsBiconnected reports whether the graph is connected, has at least
// three nodes, and has no articulation points — the standing FPSS
// assumption that keeps VCG payments finite.
func (g *Graph) IsBiconnected() bool {
	if g.N() < 3 {
		return false
	}
	return g.IsConnected() && len(g.ArticulationPoints()) == 0
}
