package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// The delta repair's whole contract is byte-identity with scratch SSSP
// under the (cost, hops, lex) order. These tests drive randomized
// churn-like evolutions — leaves, tail joins, carried edges, repair
// edges, cost redraws — and compare every repaired tree label-for-label
// against a from-scratch run, including avoid-k variants and chained
// (epoch e from e-1 from e-2 ...) repairs. Tiny cost ranges (0, 1)
// force heavy lexicographic tie-breaking, the hardest part to carry.

type evolution struct {
	oldG, newG *Graph
	oldToNew   []NodeID
}

// randomEvolution mutates a random biconnected graph the way a churn
// boundary does: drop up to n/4 nodes (keeping >= 4), renumber
// survivors densely in order, append joiners with two attachment edges
// each, re-biconnect, sprinkle extra survivor edges, redraw some costs.
func randomEvolution(t *testing.T, rng *rand.Rand, n int, maxCost Cost) evolution {
	t.Helper()
	genCost := maxCost
	if genCost < 1 {
		genCost = 1 // the generator rejects a zero range; flatten below
	}
	oldG, err := RandomBiconnected(n, n/2, genCost, rng)
	if err != nil {
		t.Fatalf("RandomBiconnected: %v", err)
	}
	if maxCost == 0 {
		for v := 0; v < n; v++ {
			if err := oldG.SetCost(NodeID(v), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	nLeave := rng.Intn(n/4 + 1)
	if n-nLeave < 4 {
		nLeave = n - 4
	}
	leave := make(map[NodeID]bool)
	for len(leave) < nLeave {
		leave[NodeID(rng.Intn(n))] = true
	}
	oldToNew := make([]NodeID, n)
	var surv []NodeID
	for v := 0; v < n; v++ {
		if leave[NodeID(v)] {
			oldToNew[v] = -1
			continue
		}
		oldToNew[v] = NodeID(len(surv))
		surv = append(surv, NodeID(v))
	}
	nNew := len(surv) + rng.Intn(3)
	newG := New(nNew)
	for w, ov := range surv {
		if err := newG.SetCost(NodeID(w), oldG.Cost(ov)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range oldG.Edges() {
		a, b := oldToNew[e[0]], oldToNew[e[1]]
		if a >= 0 && b >= 0 {
			if err := newG.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := len(surv); j < nNew; j++ {
		if err := newG.SetCost(NodeID(j), Cost(rng.Int63n(int64(maxCost)+1))); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			if err := newG.AddEdge(NodeID(j), NodeID(rng.Intn(j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := RepairBiconnected(newG); err != nil {
		t.Fatalf("RepairBiconnected: %v", err)
	}
	for k := rng.Intn(3); k > 0; k-- {
		u, v := NodeID(rng.Intn(nNew)), NodeID(rng.Intn(nNew))
		if u != v {
			if err := newG.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := 0; w < len(surv); w++ {
		if rng.Float64() < 0.25 {
			if err := newG.SetCost(NodeID(w), Cost(rng.Int63n(int64(maxCost)+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return evolution{oldG: oldG, newG: newG, oldToNew: oldToNew}
}

func requireTreesEqual(t *testing.T, label string, got, want *Tree) {
	t.Helper()
	if got.Src != want.Src || len(got.Dist) != len(want.Dist) {
		t.Fatalf("%s: shape mismatch: src %d/%d n %d/%d",
			label, got.Src, want.Src, len(got.Dist), len(want.Dist))
	}
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Hops[v] != want.Hops[v] ||
			got.Parent[v] != want.Parent[v] {
			t.Fatalf("%s: node %d: got (%d,%d,%d) want (%d,%d,%d)",
				label, v,
				got.Dist[v], got.Hops[v], got.Parent[v],
				want.Dist[v], want.Hops[v], want.Parent[v])
		}
	}
}

// checkEvolution repairs every (source, avoid) tree across ev and
// compares against scratch. Returns the repaired base trees (indexed by
// new source) so chained tests can feed them to the next step.
func checkEvolution(t *testing.T, label string, ev evolution, oldBase []*Tree) []*Tree {
	t.Helper()
	d, err := NewDelta(ev.oldG, ev.newG, ev.oldToNew)
	if err != nil {
		t.Fatalf("%s: NewDelta: %v", label, err)
	}
	n, nOld := ev.newG.N(), ev.oldG.N()
	oldScr, scr, scrWant := NewScratch(nOld), NewScratch(n), NewScratch(n)
	if oldBase == nil {
		oldBase = make([]*Tree, nOld)
		for v := 0; v < nOld; v++ {
			oldBase[v] = &Tree{}
			if err := ev.oldG.SSSP(oldBase[v], oldScr, NodeID(v), nil); err != nil {
				t.Fatalf("%s: old SSSP(%d): %v", label, v, err)
			}
		}
	}
	base := make([]*Tree, n)
	want := &Tree{}
	for src := 0; src < n; src++ {
		var old *Tree
		if o := d.NewToOld(NodeID(src)); o >= 0 {
			old = oldBase[o]
		}
		base[src] = &Tree{}
		if err := ev.newG.SSSPDelta(base[src], scr, NodeID(src), nil, old, d); err != nil {
			t.Fatalf("%s: SSSPDelta(%d): %v", label, src, err)
		}
		if err := ev.newG.SSSP(want, scrWant, NodeID(src), nil); err != nil {
			t.Fatalf("%s: SSSP(%d): %v", label, src, err)
		}
		requireTreesEqual(t, fmt.Sprintf("%s src=%d", label, src), base[src], want)
	}
	// Avoid-k variants: repair an old avoid-k tree for surviving (src, k)
	// pairs against a scratch avoid run.
	avoid := NewNodeSet(n)
	oldAvoid := NewNodeSet(nOld)
	oldT, got := &Tree{}, &Tree{}
	for k := 0; k < n; k += 1 + n/5 {
		ok := d.NewToOld(NodeID(k))
		if ok < 0 {
			continue
		}
		avoid.Clear()
		avoid.Add(NodeID(k))
		oldAvoid.Clear()
		oldAvoid.Add(ok)
		for src := 0; src < n; src += 2 {
			if src == k {
				continue
			}
			var old *Tree
			if o := d.NewToOld(NodeID(src)); o >= 0 {
				if err := ev.oldG.SSSP(oldT, oldScr, o, oldAvoid); err != nil {
					t.Fatalf("%s: old avoid SSSP: %v", label, err)
				}
				old = oldT
			}
			if err := ev.newG.SSSPDelta(got, scr, NodeID(src), avoid, old, d); err != nil {
				t.Fatalf("%s: avoid SSSPDelta(%d,%d): %v", label, src, k, err)
			}
			if err := ev.newG.SSSP(want, scrWant, NodeID(src), avoid); err != nil {
				t.Fatalf("%s: avoid SSSP(%d,%d): %v", label, src, k, err)
			}
			requireTreesEqual(t, fmt.Sprintf("%s src=%d avoid=%d", label, src, k), got, want)
		}
	}
	return base
}

func TestSSSPDeltaRandomEvolutions(t *testing.T) {
	for _, n := range []int{6, 10, 16} {
		for _, maxCost := range []Cost{0, 1, 3, 50} {
			for seed := int64(0); seed < 8; seed++ {
				label := fmt.Sprintf("n=%d c=%d s=%d", n, maxCost, seed)
				rng := rand.New(rand.NewSource(seed*977 + int64(n)*31 + int64(maxCost)))
				ev := randomEvolution(t, rng, n, maxCost)
				checkEvolution(t, label, ev, nil)
			}
		}
	}
}

// TestSSSPDeltaChained repairs repaired trees: epoch e's base trees are
// built by SSSPDelta from epoch e-1's repaired trees, mirroring how the
// churn layer chains central states, and every step is checked against
// scratch.
func TestSSSPDeltaChained(t *testing.T) {
	for _, maxCost := range []Cost{1, 20} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*1543 + int64(maxCost)))
			ev := randomEvolution(t, rng, 12, maxCost)
			base := checkEvolution(t, fmt.Sprintf("chain0 c=%d s=%d", maxCost, seed), ev, nil)
			cur := ev.newG
			for step := 1; step <= 3; step++ {
				next := evolveExisting(t, rng, cur, maxCost)
				label := fmt.Sprintf("chain%d c=%d s=%d", step, maxCost, seed)
				base = checkEvolution(t, label, next, base)
				cur = next.newG
			}
		}
	}
}

// evolveExisting is randomEvolution applied to a given graph instead of
// a freshly generated one.
func evolveExisting(t *testing.T, rng *rand.Rand, g *Graph, maxCost Cost) evolution {
	t.Helper()
	n := g.N()
	nLeave := rng.Intn(n/4 + 1)
	if n-nLeave < 4 {
		nLeave = n - 4
	}
	leave := make(map[NodeID]bool)
	for len(leave) < nLeave {
		leave[NodeID(rng.Intn(n))] = true
	}
	oldToNew := make([]NodeID, n)
	var surv []NodeID
	for v := 0; v < n; v++ {
		if leave[NodeID(v)] {
			oldToNew[v] = -1
			continue
		}
		oldToNew[v] = NodeID(len(surv))
		surv = append(surv, NodeID(v))
	}
	nNew := len(surv) + rng.Intn(3)
	newG := New(nNew)
	for w, ov := range surv {
		if err := newG.SetCost(NodeID(w), g.Cost(ov)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Edges() {
		a, b := oldToNew[e[0]], oldToNew[e[1]]
		if a >= 0 && b >= 0 {
			if err := newG.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	for j := len(surv); j < nNew; j++ {
		if err := newG.SetCost(NodeID(j), Cost(rng.Int63n(int64(maxCost)+1))); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 2; k++ {
			if err := newG.AddEdge(NodeID(j), NodeID(rng.Intn(j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := RepairBiconnected(newG); err != nil {
		t.Fatalf("RepairBiconnected: %v", err)
	}
	for w := 0; w < len(surv); w++ {
		if rng.Float64() < 0.25 {
			if err := newG.SetCost(NodeID(w), Cost(rng.Int63n(int64(maxCost)+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return evolution{oldG: g, newG: newG, oldToNew: oldToNew}
}

// TestSSSPDeltaIdentity pins the no-change fast path: an identity delta
// must reproduce the tree by pure carry (and still match scratch).
func TestSSSPDeltaIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RandomBiconnected(12, 6, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	oldToNew := make([]NodeID, g.N())
	for v := range oldToNew {
		oldToNew[v] = NodeID(v)
	}
	d, err := NewDelta(g, g, oldToNew)
	if err != nil {
		t.Fatal(err)
	}
	scr := NewScratch(g.N())
	old, got, want := &Tree{}, &Tree{}, &Tree{}
	for src := 0; src < g.N(); src++ {
		if err := g.SSSP(old, scr, NodeID(src), nil); err != nil {
			t.Fatal(err)
		}
		if err := g.SSSPDelta(got, scr, NodeID(src), nil, old, d); err != nil {
			t.Fatal(err)
		}
		if err := g.SSSP(want, scr, NodeID(src), nil); err != nil {
			t.Fatal(err)
		}
		requireTreesEqual(t, fmt.Sprintf("identity src=%d", src), got, want)
	}
}

func TestNewDeltaValidation(t *testing.T) {
	g4, g5 := New(4), New(5)
	if _, err := NewDelta(g4, g5, []NodeID{0, 1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewDelta(g4, g5, []NodeID{0, 2, 1, 3}); err == nil {
		t.Fatal("non-monotone remap accepted")
	}
	if _, err := NewDelta(g4, g5, []NodeID{0, 1, 1, 2}); err == nil {
		t.Fatal("non-injective remap accepted")
	}
	if _, err := NewDelta(g4, g5, []NodeID{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range remap accepted")
	}
	if _, err := NewDelta(g4, g5, []NodeID{-1, 0, -1, 3}); err != nil {
		t.Fatal("valid sparse remap rejected")
	}
}

// TestSSSPDeltaFallbacks pins the documented degradation paths: nil
// delta or old tree, joiner source, and a foreign old tree all fall
// back to scratch; aliasing t with old is an error.
func TestSSSPDeltaFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ev := randomEvolution(t, rng, 10, 5)
	d, err := NewDelta(ev.oldG, ev.newG, ev.oldToNew)
	if err != nil {
		t.Fatal(err)
	}
	n := ev.newG.N()
	scr := NewScratch(n)
	got, want := &Tree{}, &Tree{}
	if err := ev.newG.SSSPDelta(got, scr, 0, nil, nil, d); err != nil {
		t.Fatal(err)
	}
	if err := ev.newG.SSSP(want, scr, 0, nil); err != nil {
		t.Fatal(err)
	}
	requireTreesEqual(t, "nil old tree", got, want)

	// A tree whose source does not map to src must be ignored, not used.
	oldT := &Tree{}
	oldScr := NewScratch(ev.oldG.N())
	if err := ev.oldG.SSSP(oldT, oldScr, 0, nil); err != nil {
		t.Fatal(err)
	}
	for src := 1; src < n; src++ {
		if d.NewToOld(NodeID(src)) == 0 {
			continue
		}
		if err := ev.newG.SSSPDelta(got, scr, NodeID(src), nil, oldT, d); err != nil {
			t.Fatal(err)
		}
		if err := ev.newG.SSSP(want, scr, NodeID(src), nil); err != nil {
			t.Fatal(err)
		}
		requireTreesEqual(t, fmt.Sprintf("foreign tree src=%d", src), got, want)
		break
	}
	if err := ev.newG.SSSPDelta(oldT, scr, 0, nil, oldT, d); err == nil {
		t.Fatal("aliased target accepted")
	}
}
