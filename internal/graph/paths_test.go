package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates all simple paths src→dst (skipping avoid) and
// returns the lowest transit cost with lexicographic tie-break. It is
// the independent reference implementation for Dijkstra.
func bruteForce(g *Graph, src, dst NodeID, avoid map[NodeID]bool) (Path, Cost) {
	var bestPath Path
	bestCost := Infinity
	visited := make(map[NodeID]bool)
	var walk func(u NodeID, path Path, cost Cost)
	walk = func(u NodeID, path Path, cost Cost) {
		if u == dst {
			if bestPath == nil || Better(cost, path, bestCost, bestPath) {
				bestCost = cost
				bestPath = path.Clone()
			}
			return
		}
		for _, v := range g.Neighbors(u) {
			if visited[v] || avoid[v] {
				continue
			}
			extra := Cost(0)
			if v != dst {
				extra = g.Cost(v) // v will be a transit node if we continue past it
			}
			visited[v] = true
			walk(v, append(path, v), cost+extra)
			visited[v] = false
		}
	}
	visited[src] = true
	walk(src, Path{src}, 0)
	return bestPath, bestCost
}

func TestPathCost(t *testing.T) {
	g := Figure1()
	x, _ := g.ByName("X")
	d, _ := g.ByName("D")
	c, _ := g.ByName("C")
	z, _ := g.ByName("Z")
	got, err := g.PathCost(Path{x, d, c, z})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("PathCost(X-D-C-Z) = %d, want 2", got)
	}
	if _, err := g.PathCost(Path{x, z}); !errors.Is(err, ErrNoPath) {
		t.Errorf("PathCost(non-edge) = %v, want ErrNoPath", err)
	}
	if _, err := g.PathCost(nil); !errors.Is(err, ErrNoPath) {
		t.Errorf("PathCost(nil) = %v, want ErrNoPath", err)
	}
}

func TestFigure1QuotedFacts(t *testing.T) {
	g := Figure1()
	byName := func(s string) NodeID {
		id, ok := g.ByName(s)
		if !ok {
			t.Fatalf("node %s missing", s)
		}
		return id
	}
	x, z, d, b := byName("X"), byName("Z"), byName("D"), byName("B")

	p, cost, err := g.ShortestPath(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("cost(X→Z) = %d, want 2 (paper §4.1)", cost)
	}
	want := Path{x, d, byName("C"), z}
	if !p.Equal(want) {
		t.Errorf("LCP(X→Z) = %v, want X-D-C-Z", p)
	}

	_, cost, err = g.ShortestPath(z, d)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1 {
		t.Errorf("cost(Z→D) = %d, want 1 (paper §4.1)", cost)
	}

	_, cost, err = g.ShortestPath(b, d)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("cost(B→D) = %d, want 0 (paper §4.1)", cost)
	}
}

func TestFigure1IsBiconnected(t *testing.T) {
	if !Figure1().IsBiconnected() {
		t.Error("Figure 1 graph must be biconnected (FPSS assumption)")
	}
}

func TestShortestPathAvoiding(t *testing.T) {
	g := Figure1()
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")
	c, _ := g.ByName("C")
	a, _ := g.ByName("A")
	p, cost, err := g.ShortestPathAvoiding(x, z, c)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 {
		t.Errorf("cost(X→Z avoiding C) = %d, want 5 (via A)", cost)
	}
	if !p.Contains(a) {
		t.Errorf("path avoiding C should go via A, got %v", p)
	}
	if p.Contains(c) {
		t.Errorf("path contains avoided node: %v", p)
	}
	if _, _, err := g.ShortestPathAvoiding(x, z, x); err == nil {
		t.Error("avoiding an endpoint should error")
	}
}

func TestDijkstraAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		g, err := RandomBiconnected(n, rng.Intn(2*n), 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			dist, paths, err := g.ShortestPaths(NodeID(src), nil)
			if err != nil {
				t.Fatal(err)
			}
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				wantPath, wantCost := bruteForce(g, NodeID(src), NodeID(dst), nil)
				if dist[dst] != wantCost {
					t.Fatalf("trial %d: dist(%d,%d) = %d, brute force %d", trial, src, dst, dist[dst], wantCost)
				}
				if !paths[dst].Equal(wantPath) {
					t.Fatalf("trial %d: path(%d,%d) = %v, brute force %v (tie-break mismatch)",
						trial, src, dst, paths[dst], wantPath)
				}
			}
		}
	}
}

func TestDijkstraAvoidingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		g, err := RandomBiconnected(n, rng.Intn(n), 15, rng)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				for k := 0; k < n; k++ {
					if src == dst || k == src || k == dst {
						continue
					}
					_, gotCost, err := g.ShortestPathAvoiding(NodeID(src), NodeID(dst), NodeID(k))
					wantPath, wantCost := bruteForce(g, NodeID(src), NodeID(dst), map[NodeID]bool{NodeID(k): true})
					if wantPath == nil {
						if !errors.Is(err, ErrNoPath) {
							t.Fatalf("expected ErrNoPath, got %v", err)
						}
						continue
					}
					if err != nil {
						t.Fatal(err)
					}
					if gotCost != wantCost {
						t.Fatalf("avoid dist(%d,%d;-%d) = %d, want %d", src, dst, k, gotCost, wantCost)
					}
				}
			}
		}
	}
}

func TestUnreachable(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	if _, _, err := g.ShortestPath(0, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("ShortestPath to isolated node = %v, want ErrNoPath", err)
	}
	dist, paths, err := g.ShortestPaths(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != Infinity || paths[2] != nil {
		t.Error("unreachable node should have Infinity cost and nil path")
	}
}

func TestAllPairsMatchesSingleSource(t *testing.T) {
	g := Figure1()
	dist, paths, err := g.AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for i := 0; i < n; i++ {
		d, p, err := g.ShortestPaths(NodeID(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if i == j {
				if paths[i][j] != nil {
					t.Error("diagonal path should be nil")
				}
				continue
			}
			if dist[i][j] != d[j] || !paths[i][j].Equal(p[j]) {
				t.Errorf("AllPairs(%d,%d) disagrees with single-source", i, j)
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ring, err := Ring(6, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := ring.Diameter(); err != nil || d < 2 || d > 5 {
		t.Errorf("ring-6 diameter = %d (%v), want within [2,5]", d, err)
	}
	cl, err := Clique([]Cost{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := cl.Diameter(); err != nil || d != 1 {
		t.Errorf("clique diameter = %d (%v), want 1", d, err)
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{1, 2, 3, 4}
	tr := p.TransitNodes()
	if len(tr) != 2 || tr[0] != 2 || tr[1] != 3 {
		t.Errorf("TransitNodes = %v, want [2 3]", tr)
	}
	if (Path{1}).TransitNodes() != nil {
		t.Error("short path should have no transit nodes")
	}
	if !p.Contains(3) || p.Contains(9) {
		t.Error("Contains wrong")
	}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Error("Clone aliased")
	}
	if !(Path{1, 2}).Less(Path{1, 3}) || (Path{2}).Less(Path{1, 5}) {
		t.Error("Less ordering wrong")
	}
	if !(Path{1}).Less(Path{1, 2}) {
		t.Error("prefix should be Less")
	}
}

func TestBetterCompositeOrder(t *testing.T) {
	tests := []struct {
		name   string
		c1, c2 Cost
		p1, p2 Path
		want   bool
	}{
		{"lower cost wins", 1, 2, Path{0, 5, 9}, Path{0, 9}, true},
		{"higher cost loses", 3, 2, Path{0, 9}, Path{0, 5, 9}, false},
		{"tie: fewer hops wins", 2, 2, Path{0, 9}, Path{0, 1, 9}, true},
		{"tie: more hops loses", 2, 2, Path{0, 1, 9}, Path{0, 9}, false},
		{"full tie: lex wins", 2, 2, Path{0, 1, 9}, Path{0, 2, 9}, true},
		{"identical: not better", 2, 2, Path{0, 1, 9}, Path{0, 1, 9}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Better(tt.c1, tt.p1, tt.c2, tt.p2); got != tt.want {
				t.Errorf("Better = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWithoutNode(t *testing.T) {
	g := Figure1()
	c, _ := g.ByName("C")
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")
	h, err := g.WithoutNode(c)
	if err != nil {
		t.Fatal(err)
	}
	if h.Degree(c) != 0 {
		t.Error("removed node should be isolated")
	}
	for _, v := range h.Neighbors(z) {
		if v == c {
			t.Error("neighbor still references removed node")
		}
	}
	// Original untouched.
	if g.Degree(c) == 0 {
		t.Error("WithoutNode mutated original")
	}
	// Distances in G−C match ShortestPathAvoiding in G.
	_, wantCost, err := g.ShortestPathAvoiding(x, z, c)
	if err != nil {
		t.Fatal(err)
	}
	_, gotCost, err := h.ShortestPath(x, z)
	if err != nil {
		t.Fatal(err)
	}
	if gotCost != wantCost {
		t.Errorf("G−C dist = %d, avoid dist = %d", gotCost, wantCost)
	}
	if _, err := g.WithoutNode(99); err == nil {
		t.Error("out of range should error")
	}
}

// Property: for random biconnected graphs, the lexicographic tie-break
// yields identical LCPs computed from either endpoint direction when
// path cost is symmetric... (costs are on nodes, so cost(i→j) equals
// cost(j→i); the tie-broken *path* may differ in orientation, but the
// cost must match).
func TestPropertySymmetricCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + int(seed%5+5)%5
		g, err := RandomBiconnected(n, n/2, 12, r)
		if err != nil {
			return false
		}
		dist, _, err := g.AllPairs()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dist[i][j] != dist[j][i] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: adding an edge never increases any pairwise distance.
func TestPropertyEdgeMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5
		g, err := RandomBiconnected(n, 0, 10, r)
		if err != nil {
			return false
		}
		before, _, err := g.AllPairs()
		if err != nil {
			return false
		}
		// Add one random absent edge if there is room.
		added := false
		for try := 0; try < 50 && !added; try++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				_ = g.AddEdge(u, v)
				added = true
			}
		}
		after, _, err := g.AllPairs()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if after[i][j] > before[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
