package election

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spec"
)

// electionCatalogue enumerates the unilateral deviations a rational
// node can attempt in the election protocol.
func electionCatalogue() []core.Deviation {
	return []core.Deviation{
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "underreport",
				DevClasses: []spec.ActionKind{spec.InfoRevelation},
			},
			build: func(graph.NodeID) *Strategy {
				return &Strategy{Declare: func(truth int64) int64 {
					if truth <= 1 {
						return 1
					}
					return truth / 4
				}}
			},
		},
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "overreport",
				DevClasses: []spec.ActionKind{spec.InfoRevelation},
			},
			build: func(graph.NodeID) *Strategy {
				return &Strategy{Declare: func(truth int64) int64 { return truth * 4 }}
			},
		},
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "report-zero",
				DevClasses: []spec.ActionKind{spec.InfoRevelation},
			},
			build: func(graph.NodeID) *Strategy {
				return &Strategy{Declare: func(int64) int64 { return 0 }}
			},
		},
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "report-huge",
				DevClasses: []spec.ActionKind{spec.InfoRevelation},
			},
			build: func(graph.NodeID) *Strategy {
				return &Strategy{Declare: func(int64) int64 { return 1 << 30 }}
			},
		},
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "drop-relays",
				DevClasses: []spec.ActionKind{spec.MessagePassing},
			},
			build: func(graph.NodeID) *Strategy {
				return &Strategy{Relay: func(graph.NodeID, Report) (Report, bool) {
					return Report{}, false
				}}
			},
		},
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "tamper-relays",
				DevClasses: []spec.ActionKind{spec.MessagePassing},
			},
			build: func(self graph.NodeID) *Strategy {
				return &Strategy{Relay: func(_ graph.NodeID, r Report) (Report, bool) {
					if r.Origin != self {
						r.Value += 1000
					}
					return r, true
				}}
			},
		},
		&deviation{
			BasicDeviation: core.BasicDeviation{
				DevName:    "joint-underreport-tamper",
				DevClasses: []spec.ActionKind{spec.InfoRevelation, spec.MessagePassing},
			},
			build: func(self graph.NodeID) *Strategy {
				return &Strategy{
					Declare: func(truth int64) int64 { return truth / 4 },
					Relay: func(_ graph.NodeID, r Report) (Report, bool) {
						if r.Origin != self {
							r.Value *= 2
						}
						return r, true
					},
				}
			},
		},
	}
}
