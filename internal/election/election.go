// Package election implements the paper's motivating example (§3): a
// leader election that should select the most computationally powerful
// node to run a CPU-intensive task. The naive specification asks nodes
// to report their power truthfully and elects the maximum — but
// serving is costly, so a rational node underreports to dodge the job
// and the protocol "fails to elect the most powerful node."
//
// The faithful variant applies the paper's recipe: the choice rule is
// re-cast as a Vickrey procurement (serving cost is private; the
// cheapest server — equivalently the most powerful node — wins and is
// paid the second-lowest declared cost), reports are flooded over the
// biconnected network so every node holds the full report set, and a
// checkpointing bank compares report-set hashes before certifying the
// outcome, neutralizing message-passing and computation deviations.
package election

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Variant selects the specification under test.
type Variant int

const (
	// Naive is the §3 strawman: truthful max-power election, no
	// payments, no checking.
	Naive Variant = iota + 1
	// Faithful is the incentive-engineered variant.
	Faithful
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Naive:
		return "naive"
	case Faithful:
		return "faithful"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config describes one election scenario.
type Config struct {
	// Topology is the (biconnected) communication graph; transit costs
	// are ignored here, only connectivity matters.
	Topology *graph.Graph
	// Powers are the true computational powers θ_i ≥ 1.
	Powers []int64
	// Variant selects naive or faithful rules.
	Variant Variant
	// ServiceValue is each node's value per unit of the leader's true
	// power (everyone benefits from a powerful leader).
	ServiceValue int64
	// CostScale sets the serving cost: cost_i = CostScale / θ_i.
	CostScale int64
	// NonProgressPenalty applies when the bank refuses to certify.
	NonProgressPenalty int64
	// MaxSteps bounds the flood (default 1<<18).
	MaxSteps int64
}

// ServingCost returns node i's true cost of serving as leader.
func (c Config) ServingCost(i int) int64 {
	if c.Powers[i] <= 0 {
		return c.CostScale
	}
	return c.CostScale / c.Powers[i]
}

// Report is the flooded information-revelation message. Under the
// naive variant nodes report power; under the faithful variant they
// report serving cost. One scalar field serves both.
type Report struct {
	Origin graph.NodeID
	Value  int64
}

// Size implements sim.Sizer.
func (Report) Size() int { return 2 }

// Strategy is a node's deviation surface in the election protocol.
type Strategy struct {
	// Declare maps the truthful report value to the declared one.
	Declare func(truth int64) int64
	// Relay intercepts flooded reports about others; ok=false drops.
	Relay func(to graph.NodeID, r Report) (Report, bool)
}

func (s *Strategy) declare(truth int64) int64 {
	if s == nil || s.Declare == nil {
		return truth
	}
	return s.Declare(truth)
}

func (s *Strategy) relay(to graph.NodeID, r Report) (Report, bool) {
	if s == nil || s.Relay == nil {
		return r, true
	}
	return s.Relay(to, r)
}

// node floods its report and collects everyone else's.
type node struct {
	id        graph.NodeID
	truth     int64
	neighbors []graph.NodeID
	strategy  *Strategy
	reports   map[graph.NodeID]int64
}

var _ sim.Handler = (*node)(nil)

func (n *node) Init(ctx sim.Context) {
	declared := n.strategy.declare(n.truth)
	n.reports[n.id] = declared
	r := Report{Origin: n.id, Value: declared}
	for _, v := range n.neighbors {
		ctx.Send(sim.Addr(v), r)
	}
}

func (n *node) Recv(ctx sim.Context, msg sim.Message) {
	r, ok := msg.Payload.(Report)
	if !ok {
		return
	}
	if _, known := n.reports[r.Origin]; known {
		return
	}
	n.reports[r.Origin] = r.Value
	for _, v := range n.neighbors {
		relayed, ok := n.strategy.relay(v, r)
		if !ok {
			continue
		}
		ctx.Send(sim.Addr(v), relayed)
	}
}

// reportSetEqual compares two collected report sets.
func reportSetEqual(a, b map[graph.NodeID]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Result is the outcome of one election run.
type Result struct {
	// Leader is the elected node (valid only when Completed).
	Leader graph.NodeID
	// Payment is the faithful variant's Vickrey payment to the leader.
	Payment int64
	// Utilities per node, at true types.
	Utilities map[graph.NodeID]int64
	// Completed is false when the bank found divergent report sets.
	Completed bool
}

// Run executes the election: flood reports to quiescence, bank-style
// comparison of every node's collected report set (any divergence ⇒
// restart ⇒ non-progress), then the variant's choice and payment rule
// applied to the certified set.
func Run(cfg Config, strategies map[graph.NodeID]*Strategy) (*Result, error) {
	if cfg.Topology == nil {
		return nil, errors.New("election: nil topology")
	}
	n := cfg.Topology.N()
	if len(cfg.Powers) != n {
		return nil, fmt.Errorf("election: %d powers for %d nodes", len(cfg.Powers), n)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 18
	}
	net := sim.NewNetwork()
	nodes := make([]*node, n)
	for i := 0; i < n; i++ {
		truth := cfg.Powers[i]
		if cfg.Variant == Faithful {
			truth = cfg.ServingCost(i)
		}
		nodes[i] = &node{
			id:        graph.NodeID(i),
			truth:     truth,
			neighbors: cfg.Topology.Neighbors(graph.NodeID(i)),
			strategy:  strategies[graph.NodeID(i)],
			reports:   make(map[graph.NodeID]int64, n),
		}
		if err := net.Attach(sim.Addr(i), nodes[i]); err != nil {
			return nil, err
		}
	}
	if _, err := net.Run(maxSteps); err != nil {
		return nil, fmt.Errorf("flood: %w", err)
	}

	res := &Result{Utilities: make(map[graph.NodeID]int64, n)}
	// Bank checkpoint: all report sets must agree and be complete.
	for i := 1; i < n; i++ {
		if !reportSetEqual(nodes[0].reports, nodes[i].reports) {
			for j := 0; j < n; j++ {
				res.Utilities[graph.NodeID(j)] = -cfg.NonProgressPenalty
			}
			return res, nil
		}
	}
	if len(nodes[0].reports) != n {
		for j := 0; j < n; j++ {
			res.Utilities[graph.NodeID(j)] = -cfg.NonProgressPenalty
		}
		return res, nil
	}
	certified := nodes[0].reports
	res.Completed = true

	switch cfg.Variant {
	case Faithful:
		res.Leader, res.Payment = vickreyProcurement(certified)
	default:
		res.Leader = maxPowerWinner(certified)
	}
	leaderPower := cfg.Powers[res.Leader]
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		u := cfg.ServiceValue * leaderPower
		if id == res.Leader {
			u -= cfg.ServingCost(i)
			u += res.Payment
		}
		res.Utilities[id] = u
	}
	return res, nil
}

// maxPowerWinner is the naive rule: highest declared power, lowest ID
// on ties.
func maxPowerWinner(reports map[graph.NodeID]int64) graph.NodeID {
	ids := sortedIDs(reports)
	best := ids[0]
	for _, id := range ids[1:] {
		if reports[id] > reports[best] {
			best = id
		}
	}
	return best
}

// vickreyProcurement is the faithful rule: lowest declared serving
// cost wins (lowest ID on ties) and is paid the second-lowest declared
// cost — a strategyproof reverse auction.
func vickreyProcurement(reports map[graph.NodeID]int64) (graph.NodeID, int64) {
	ids := sortedIDs(reports)
	winner := ids[0]
	for _, id := range ids[1:] {
		if reports[id] < reports[winner] {
			winner = id
		}
	}
	second := int64(-1)
	for _, id := range ids {
		if id == winner {
			continue
		}
		if second < 0 || reports[id] < second {
			second = reports[id]
		}
	}
	if second < 0 {
		second = reports[winner]
	}
	return winner, second
}

func sortedIDs(m map[graph.NodeID]int64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// System adapts an election scenario to core.System for the deviation
// search (experiment E8).
type System struct {
	Cfg Config
}

var _ core.System = (*System)(nil)

// Nodes implements core.System.
func (s *System) Nodes() []core.NodeID {
	out := make([]core.NodeID, s.Cfg.Topology.N())
	for i := range out {
		out[i] = core.NodeID(i)
	}
	return out
}

// deviation adapts Strategy builders to core.Deviation.
type deviation struct {
	core.BasicDeviation
	build func(node graph.NodeID) *Strategy
}

// Deviations implements core.System.
func (s *System) Deviations(core.NodeID) []core.Deviation {
	return electionCatalogue()
}

// Run implements core.System.
func (s *System) Run(deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	var strategies map[graph.NodeID]*Strategy
	if dev != nil && deviator >= 0 {
		d, ok := dev.(*deviation)
		if !ok {
			return core.Outcome{}, fmt.Errorf("election: foreign deviation %q", dev.Name())
		}
		strategies = map[graph.NodeID]*Strategy{graph.NodeID(deviator): d.build(graph.NodeID(deviator))}
	}
	res, err := Run(s.Cfg, strategies)
	if err != nil {
		return core.Outcome{}, err
	}
	out := core.Outcome{Utilities: make(map[core.NodeID]int64, len(res.Utilities)), Completed: res.Completed}
	for id, u := range res.Utilities {
		out.Utilities[core.NodeID(id)] = u
	}
	return out, nil
}
