package election

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func BenchmarkFaithfulElection12(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.RandomBiconnected(12, 6, 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	powers := make([]int64, 12)
	for i := range powers {
		powers[i] = 1 + rng.Int63n(40)
	}
	cfg := Config{
		Topology:           g,
		Powers:             powers,
		Variant:            Faithful,
		ServiceValue:       1,
		CostScale:          1 << 20,
		NonProgressPenalty: 1_000_000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("not completed")
		}
	}
}
