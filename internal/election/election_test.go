package election

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func topo(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.RandomBiconnected(n, n/2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cfg(t *testing.T, variant Variant, powers []int64, seed int64) Config {
	t.Helper()
	return Config{
		Topology:           topo(t, len(powers), seed),
		Powers:             powers,
		Variant:            variant,
		ServiceValue:       1,
		CostScale:          1200,
		NonProgressPenalty: 100_000,
	}
}

func TestHonestNaiveElectsMostPowerful(t *testing.T) {
	c := cfg(t, Naive, []int64{3, 9, 5, 2}, 1)
	res, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("honest run did not complete")
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1 (power 9)", res.Leader)
	}
	if res.Payment != 0 {
		t.Errorf("naive variant pays %d, want 0", res.Payment)
	}
}

func TestHonestFaithfulElectsMostPowerful(t *testing.T) {
	c := cfg(t, Faithful, []int64{3, 9, 5, 2}, 2)
	res, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1 (cheapest server)", res.Leader)
	}
	// Vickrey payment: second-lowest cost = cost of power-5 node = 240.
	if res.Payment != 240 {
		t.Errorf("payment = %d, want 240", res.Payment)
	}
	// Leader profits: payment ≥ own cost (1200/9 = 133).
	if res.Payment < c.ServingCost(1) {
		t.Error("leader paid below cost")
	}
}

func TestNaiveDodgingProfits(t *testing.T) {
	c := cfg(t, Naive, []int64{3, 9, 5, 2}, 3)
	honest, err := Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	dodge, err := Run(c, map[graph.NodeID]*Strategy{
		1: {Declare: func(int64) int64 { return 0 }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dodge.Leader == 1 {
		t.Fatal("dodger still elected")
	}
	if dodge.Utilities[1] <= honest.Utilities[1] {
		t.Errorf("dodging should strictly profit in naive spec: honest %d, dodge %d",
			honest.Utilities[1], dodge.Utilities[1])
	}
}

func TestNaiveSystemViolatesIC(t *testing.T) {
	sys := &System{Cfg: cfg(t, Naive, []int64{3, 9, 5, 2}, 4)}
	rep, err := core.CheckFaithfulness(sys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IC() {
		t.Error("naive election should violate IC (the §3 story)")
	}
}

func TestFaithfulSystemIsFaithful(t *testing.T) {
	profiles := [][]int64{
		{3, 9, 5, 2},
		{7, 7, 7, 7},
		{1, 2, 3, 4, 5},
		{40, 13, 2, 28},
	}
	for pi, powers := range profiles {
		sys := &System{Cfg: cfg(t, Faithful, powers, int64(10+pi))}
		rep, err := core.CheckFaithfulness(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Faithful() {
			t.Errorf("profile %v: violations %v", powers, rep.Violations)
		}
	}
}

func TestTamperedRelayCausesNonProgressOrNoEffect(t *testing.T) {
	c := cfg(t, Faithful, []int64{3, 9, 5, 2}, 5)
	res, err := Run(c, map[graph.NodeID]*Strategy{
		0: {Relay: func(_ graph.NodeID, r Report) (Report, bool) {
			if r.Origin != 0 {
				r.Value += 777
			}
			return r, true
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		// Tampered copies all arrived late: outcome must be untainted.
		if res.Leader != 1 {
			t.Errorf("tamper corrupted a completed run: leader %d", res.Leader)
		}
	} else {
		for id, u := range res.Utilities {
			if u != -c.NonProgressPenalty {
				t.Errorf("node %d utility %d, want non-progress penalty", id, u)
			}
		}
	}
}

func TestDroppedRelaysToleratedByBiconnectivity(t *testing.T) {
	// Dropping relays alone cannot block the flood in a biconnected
	// graph: every report still reaches everyone via another path.
	c := cfg(t, Faithful, []int64{3, 9, 5, 2, 6, 8}, 6)
	res, err := Run(c, map[graph.NodeID]*Strategy{
		2: {Relay: func(graph.NodeID, Report) (Report, bool) { return Report{}, false }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("drop-only deviation should not block a biconnected flood")
	}
	if res.Leader != 1 {
		t.Errorf("leader = %d, want 1", res.Leader)
	}
}

func TestVickreyTieBreak(t *testing.T) {
	reports := map[graph.NodeID]int64{0: 5, 1: 5, 2: 9}
	w, p := vickreyProcurement(reports)
	if w != 0 {
		t.Errorf("winner = %d, want 0 (lowest ID on ties)", w)
	}
	if p != 5 {
		t.Errorf("payment = %d, want 5", p)
	}
}

func TestVickreySingleNode(t *testing.T) {
	w, p := vickreyProcurement(map[graph.NodeID]int64{3: 7})
	if w != 3 || p != 7 {
		t.Errorf("single-node = %d/%d, want 3/7", w, p)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("nil topology should error")
	}
	c := cfg(t, Naive, []int64{1, 2, 3, 4}, 7)
	c.Powers = []int64{1}
	if _, err := Run(c, nil); err == nil {
		t.Error("power length mismatch should error")
	}
}

func TestServingCostGuards(t *testing.T) {
	c := Config{Powers: []int64{0, 4}, CostScale: 100}
	if c.ServingCost(0) != 100 {
		t.Errorf("zero power cost = %d, want CostScale", c.ServingCost(0))
	}
	if c.ServingCost(1) != 25 {
		t.Errorf("cost = %d, want 25", c.ServingCost(1))
	}
}

func TestVariantString(t *testing.T) {
	if Naive.String() != "naive" || Faithful.String() != "faithful" {
		t.Error("Variant.String wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should stringify")
	}
}
