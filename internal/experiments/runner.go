package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner executes a set of experiments over a worker pool. Every
// generator derives all randomness from its Params.Seed, so the tables
// a Runner produces are byte-identical to a sequential run regardless
// of worker count or completion order: results are returned in input
// order and seeds never depend on scheduling.
type Runner struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
}

// Run generates every experiment's table with its registered Params.
// Tables come back in input order. If generators fail, Run reports the
// error of the earliest failing experiment (again independent of
// scheduling), wrapped with its ID.
func (r Runner) Run(exps []Experiment) ([]*Table, error) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	tables := make([]*Table, len(exps))
	errs := make([]error, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			tables[i], errs[i] = e.Run()
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					tables[i], errs[i] = exps[i].Run()
				}
			}()
		}
		for i := range exps {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
	}
	return tables, nil
}

// RunIDs resolves a regular expression against the registry and runs
// the matching experiments. An empty pattern runs everything.
func (r Runner) RunIDs(pattern string) ([]*Table, error) {
	exps, err := Match(pattern)
	if err != nil {
		return nil, err
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("no experiment matches %q", pattern)
	}
	return r.Run(exps)
}

// All runs every registered experiment with default parameters across
// the default worker pool, in canonical order.
func All() ([]*Table, error) {
	return Runner{}.Run(Experiments())
}
