package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// Runner executes a set of experiments over a worker pool. Every
// generator derives all randomness from its Params.Seed, so the tables
// a Runner produces are byte-identical to a sequential run regardless
// of worker count or completion order: results are returned in input
// order and seeds never depend on scheduling.
type Runner struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
}

// Run generates every experiment's table with its registered Params.
// Tables come back in input order. If generators fail, Run reports the
// error of the earliest failing experiment (again independent of
// scheduling), wrapped with its ID.
func (r Runner) Run(exps []Experiment) ([]*Table, error) {
	return parallelMap(len(exps), r.Workers, func(i int) (*Table, error) {
		t, err := exps[i].Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		return t, nil
	})
}

// parallelMap runs fn(i) for every i in [0, n) over a worker pool
// (workers <= 0 means runtime.NumCPU()) and returns the results in
// index order. Every job writes only its own slot and the earliest
// failing index's error is reported, so output is independent of
// scheduling. It is the one worker-pool implementation behind both
// Runner.Run and the deviation-sweep experiments (E3/E11/E13), which
// fan their (node, deviation) plays through it.
func parallelMap[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					out[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunIDs resolves a regular expression against the registry and runs
// the matching experiments. An empty pattern runs everything.
func (r Runner) RunIDs(pattern string) ([]*Table, error) {
	exps, err := Match(pattern)
	if err != nil {
		return nil, err
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("no experiment matches %q", pattern)
	}
	return r.Run(exps)
}

// All runs every registered experiment with default parameters across
// the default worker pool, in canonical order.
func All() ([]*Table, error) {
	return Runner{}.Run(Experiments())
}
