package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenTables is the differential guard for the scenario-layer
// refactor: every experiment table, generated with its registered
// default Params, must stay byte-identical to the output captured
// before experiment setup was routed through internal/scenario. The
// golden files hold exactly what `benchtab -e <id>` printed at capture
// time (Render output plus the trailing newline Fprintln adds).
//
// If an experiment's output changes *intentionally*, regenerate its
// golden with `go run ./cmd/benchtab -e <id> > internal/experiments/testdata/<ID>.golden`
// and say why in the commit message.
func TestGoldenTables(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.Slow && testing.Short() {
				t.Skipf("%s is a deviation search; skipped under -short", e.ID)
			}
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", e.ID+".golden"))
			if err != nil {
				t.Fatalf("missing golden for %s: %v (capture it with benchtab)", e.ID, err)
			}
			tbl, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got := Render(tbl) + "\n"; got != string(want) {
				t.Errorf("%s table drifted from pre-refactor golden\ngot:\n%s\nwant:\n%s", e.ID, got, want)
			}
		})
	}
}
