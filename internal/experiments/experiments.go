// Package experiments regenerates every "table and figure" of the
// paper. Shneidman & Parkes (PODC 2004) is a theory paper — its two
// figures are a worked example network (Figure 1) and a checker
// diagram (Figure 2) — so the experiment set reproduces the paper's
// worked examples and quantified claims. Each generator returns a
// Table consumed by bench_test.go, cmd/benchtab and EXPERIMENTS.md.
//
// Generators live in a registry rather than a hardcoded dispatch: a
// new experiment calls Register (usually from an init function) with
// an ID, default Params and a Gen func, and every consumer — the
// parallel Runner, cmd/benchtab's -run/-e filters, the root
// benchmarks — picks it up from there. Do not extend All(); it simply
// runs whatever is registered.
package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/bft"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/scenario"
	"repro/internal/spec"
)

// Table is one regenerated experiment result.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Headers    []string
	Rows       [][]string
	Notes      string
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func init() {
	Register(Experiment{ID: "E1", Title: "Figure 1 LCPs and quoted costs", Gen: E1Figure1})
	Register(Experiment{ID: "E2", Title: "Example 1 manipulation sweep", Gen: E2Example1})
	Register(Experiment{ID: "E3", Title: "Manipulation detection matrix", Slow: true, Gen: E3Detection})
	Register(Experiment{ID: "E4", Title: "Checker-scheme overhead sweep",
		Params: Params{Sizes: []int{6, 12, 18, 24}, Seed: 11}, Gen: E4Overhead})
	Register(Experiment{ID: "E5", Title: "BFT replication baseline",
		Params: Params{Sizes: []int{4, 7, 10, 13}, Seed: 12}, Gen: E5BFTBaseline})
	Register(Experiment{ID: "E6", Title: "Deviation search (Theorem 1)", Slow: true,
		Params: Params{Trials: 3, Seed: 13}, Gen: E6Faithfulness})
	Register(Experiment{ID: "E7", Title: "Phase decomposition savings", Gen: E7PhaseDecomposition})
	Register(Experiment{ID: "E8", Title: "Leader election naive vs faithful",
		Params: Params{Trials: 40, Seed: 14}, Gen: E8Election})
	Register(Experiment{ID: "E9", Title: "Construction convergence sweep",
		Params: Params{Sizes: []int{6, 12, 18, 24, 30}, Seed: 15}, Gen: E9Convergence})
	Register(Experiment{ID: "E10", Title: "Execution-phase enforcement", Gen: E10Execution})
}

// E1Figure1 regenerates Figure 1 and the §4.1 quoted path costs.
func E1Figure1(p Params) (*Table, error) {
	sc, err := figure1Scenario(p, 0)
	if err != nil {
		return nil, err
	}
	g := sc.Graph
	sol, err := fpss.ComputeCentral(g)
	if err != nil {
		return nil, err
	}
	res, err := fpss.Run(fpss.Config{Graph: g})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E1",
		Title:      "Figure 1: LCPs and quoted costs on the example network",
		PaperClaim: "cost(X→Z)=2 via X-D-C-Z; cost(Z→D)=1; cost(B→D)=0; LCPs from Z as drawn",
		Headers:    []string{"pair", "central cost", "central path", "distributed agrees"},
	}
	pairs := [][2]string{{"X", "Z"}, {"Z", "D"}, {"B", "D"}, {"Z", "A"}, {"Z", "B"}, {"Z", "C"}, {"Z", "X"}}
	for _, p := range pairs {
		src, _ := g.ByName(p[0])
		dst, _ := g.ByName(p[1])
		e := sol.Routing[src][dst]
		names := ""
		for i, id := range e.Path {
			if i > 0 {
				names += "-"
			}
			names += g.Name(id)
		}
		agrees := res.Nodes[src].Routing()[dst].Path.Equal(e.Path)
		t.Rows = append(t.Rows, []string{
			p[0] + "→" + p[1], itoa(int64(e.Cost)), names, fmt.Sprintf("%v", agrees),
		})
	}
	return t, nil
}

// E2Example1 regenerates Example 1: node C's declared cost swept over
// 1..10, utility under naive declared-cost pricing (manipulable)
// versus FPSS VCG pricing (strategyproof).
func E2Example1(p Params) (*Table, error) {
	sc, err := figure1Scenario(p, 0)
	if err != nil {
		return nil, err
	}
	g := sc.Graph
	c, _ := g.ByName("C")
	t := &Table{
		ID:         "E2",
		Title:      "Example 1: C's utility vs declared cost (true cost 1)",
		PaperClaim: "under naive pricing C benefits by declaring 5; under VCG truth is dominant",
		Headers:    []string{"declared ĉ_C", "u(C) naive", "u(C) VCG", "X→Z LCP via C"},
	}
	for declared := graph.Cost(1); declared <= 10; declared++ {
		d := declared
		strategies := map[graph.NodeID]*fpss.Strategy{
			c: {DeclareCost: func(graph.Cost) graph.Cost { return d }},
		}
		res, err := fpss.Run(fpss.Config{Graph: g, Strategies: strategies})
		if err != nil {
			return nil, err
		}
		routing := make(map[graph.NodeID]fpss.RoutingTable)
		pricing := make(map[graph.NodeID]fpss.PricingTable)
		declaredCosts := make(fpss.CostTable)
		for id, node := range res.Nodes {
			routing[id] = node.Routing()
			pricing[id] = node.Pricing()
			declaredCosts[id] = node.DeclaredCost()
		}
		var util [2]int64
		for i, scheme := range []fpss.PricingScheme{fpss.SchemeDeclaredCost, fpss.SchemeVCG} {
			ec := sc.ExecConfig()
			ec.DeclaredCosts = declaredCosts
			ec.Scheme = scheme
			exec, err := fpss.Execute(routing, pricing, ec)
			if err != nil {
				return nil, err
			}
			util[i] = exec.Utilities[c]
		}
		x, _ := g.ByName("X")
		z, _ := g.ByName("Z")
		viaC := routing[x][z].Path.Contains(c)
		t.Rows = append(t.Rows, []string{
			itoa(int64(declared)), itoa(util[0]), itoa(util[1]), fmt.Sprintf("%v", viaC),
		})
	}
	return t, nil
}

// E3Detection regenerates §4.3: every manipulation class injected at
// every node; the extended specification must detect (or neutralize)
// each one, with zero false positives on honest runs.
func E3Detection(p Params) (*Table, error) {
	sc, err := figure1Scenario(p, 0)
	if err != nil {
		return nil, err
	}
	sys := sc.FaithfulSystem()
	base, err := sys.Run(-1, nil)
	if err != nil {
		return nil, err
	}
	if !base.Completed || len(base.Detected) != 0 {
		return nil, fmt.Errorf("honest baseline flagged: %+v", base.Detected)
	}
	t := &Table{
		ID:         "E3",
		Title:      "Manipulations 1–4: detection and neutralization by the checker scheme",
		PaperClaim: "every drop/change/spoof/miscompute deviation is caught; no false positives",
		Headers:    []string{"deviation", "classes", "runs", "caught or neutralized", "profitable anywhere"},
	}
	// Fan the (deviation, node) plays over the worker pool — the same
	// grid core.CheckFaithfulness parallelizes — and fold the
	// detection stats back in catalogue order.
	devs := sys.Deviations(0)
	nodes := sys.Nodes()
	type playStat struct{ caught, profitable bool }
	stats, err := parallelMap(len(devs)*len(nodes), 0, func(i int) (playStat, error) {
		dev, node := devs[i/len(nodes)], nodes[i%len(nodes)]
		out, err := sys.Run(node, dev)
		if err != nil {
			return playStat{}, err
		}
		// A deviation is caught (detected / blocked) or neutralized
		// (outcome identical to honest for the deviator).
		return playStat{
			caught:     !out.Completed || len(out.Detected) > 0 || out.Utilities[node] <= base.Utilities[node],
			profitable: out.Utilities[node] > base.Utilities[node],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for d, devIface := range devs {
		runs, caught, profitable := len(nodes), 0, 0
		for ni := range nodes {
			s := stats[d*len(nodes)+ni]
			if s.caught {
				caught++
			}
			if s.profitable {
				profitable++
			}
		}
		t.Rows = append(t.Rows, []string{
			devIface.Name(), fmt.Sprintf("%v", devIface.Classes()), itoa(int64(runs)),
			fmt.Sprintf("%d/%d", caught, runs), fmt.Sprintf("%d/%d", profitable, runs),
		})
	}
	return t, nil
}

// E4Overhead measures the checker scheme's message and byte overhead
// versus plain FPSS across network sizes.
func E4Overhead(p Params) (*Table, error) {
	t := &Table{
		ID:         "E4",
		Title:      "Checker-scheme overhead vs plain FPSS (construction phases)",
		PaperClaim: "overhead is a per-neighbor forwarding factor (≈ average degree), not replication of the whole system",
		Headers:    []string{"n", "avg degree", "plain msgs", "faithful msgs", "msg ratio", "plain bytes", "faithful bytes", "byte ratio"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range p.Sizes {
		sc, err := scenario.Spec{Family: scenario.RingChords, N: n, ExtraEdges: scenario.Chords(n / 2)}.BuildWith(rng)
		if err != nil {
			return nil, err
		}
		g := sc.Graph
		plain, err := fpss.Run(fpss.Config{Graph: g})
		if err != nil {
			return nil, err
		}
		fr, err := faithful.Run(faithful.Config{
			Graph:         g,
			Traffic:       fpss.Traffic{},
			DeliveryValue: 1,
		})
		if err != nil {
			return nil, err
		}
		if !fr.Completed {
			return nil, fmt.Errorf("faithful honest run failed at n=%d", n)
		}
		avgDeg := float64(2*g.M()) / float64(n)
		pm, fm := plain.Phase2.Sent, fr.Construction.Sent
		pb, fb := plain.Phase2.Bytes, fr.Construction.Bytes
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), fmt.Sprintf("%.1f", avgDeg),
			itoa(pm), itoa(fm), fmt.Sprintf("%.2f", float64(fm)/float64(pm)),
			itoa(pb), itoa(fb), fmt.Sprintf("%.2f", float64(fb)/float64(pb)),
		})
	}
	return t, nil
}

// E5BFTBaseline contrasts the faithful checker scheme against a
// PBFT-style replicated computation carrying the same number of
// state-update operations.
func E5BFTBaseline(p Params) (*Table, error) {
	t := &Table{
		ID:         "E5",
		Title:      "BFT replication baseline vs catch-and-punish (messages)",
		PaperClaim: "BFT needs 3f+1 replicas and quadratic agreement traffic; catch-and-punish overhead stays a degree factor",
		Headers:    []string{"network n", "faithful msgs", "updates R", "bft f", "bft replicas", "bft msgs", "bft/faithful"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range p.Sizes {
		sc, err := scenario.Spec{Family: scenario.RingChords, N: n, ExtraEdges: scenario.Chords(n / 3)}.BuildWith(rng)
		if err != nil {
			return nil, err
		}
		g := sc.Graph
		fr, err := faithful.Run(faithful.Config{Graph: g, Traffic: fpss.Traffic{}, DeliveryValue: 1})
		if err != nil {
			return nil, err
		}
		// Count the distinct table-update operations the protocol
		// performed (advertisements), and replay that many ops through
		// BFT sized to the same network (n = 3f+1 → f = (n-1)/3).
		f := (n - 1) / 3
		updates := 0
		for range fr.Nodes {
			updates++ // one final table per node is the minimum op count
		}
		r := int(fr.Construction.Sent / int64(n)) // per-node protocol messages as op proxy
		if r < updates {
			r = updates
		}
		ops := make([][]byte, r)
		for i := range ops {
			ops[i] = []byte(fmt.Sprintf("update-%d", i))
		}
		br, err := bft.Run(f, nil, ops, 1<<21)
		if err != nil {
			return nil, err
		}
		if !br.Completed {
			return nil, fmt.Errorf("bft run incomplete at n=%d", n)
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(fr.Construction.Sent), itoa(int64(r)),
			itoa(int64(f)), itoa(int64(3*f + 1)), itoa(br.Counters.Sent),
			fmt.Sprintf("%.2f", float64(br.Counters.Sent)/float64(fr.Construction.Sent)),
		})
	}
	return t, nil
}

// E6Faithfulness runs the ex post Nash deviation search (Theorem 1):
// plain FPSS must admit profitable deviations, the extended
// specification none, across sampled type profiles.
func E6Faithfulness(p Params) (*Table, error) {
	t := &Table{
		ID:         "E6",
		Title:      "Deviation search: plain FPSS vs extended specification",
		PaperClaim: "extended FPSS is a faithful implementation (Theorem 1); original FPSS is manipulable",
		Headers:    []string{"trial", "n", "checked", "plain violations", "plain IC/CC/AC", "faithful violations", "faithful IC/CC/AC"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for trial := 0; trial < p.Trials; trial++ {
		var sc *scenario.Compiled
		var err error
		if trial == 0 {
			sc, err = figure1Scenario(p, 0)
		} else {
			// Sizes and chord counts are drawn from the shared trial
			// stream, exactly as the pre-scenario code did, so the
			// sampled profiles stay byte-identical per seed.
			n := 4 + rng.Intn(3)
			chords := scenario.Chords(rng.Intn(4))
			sc, err = scenario.Spec{
				Family: scenario.Random, N: n, ExtraEdges: chords, MaxCost: 8, Scheme: p.Scheme,
			}.BuildWith(rng)
		}
		if err != nil {
			return nil, err
		}
		plainSys, faithSys := sc.Systems()
		// The rational systems tolerate concurrent Run calls, so the
		// deviation search fans over the NumCPU pool; the report is
		// byte-identical to the sequential oracle for any worker count.
		plainRep, err := core.CheckFaithfulnessCfg(plainSys, core.CheckConfig{Workers: -1})
		if err != nil {
			return nil, err
		}
		faithRep, err := core.CheckFaithfulnessCfg(faithSys, core.CheckConfig{Workers: -1})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(trial)), itoa(int64(sc.Graph.N())), itoa(int64(faithRep.Checked)),
			itoa(int64(len(plainRep.Violations))), flags(plainRep),
			itoa(int64(len(faithRep.Violations))), flags(faithRep),
		})
	}
	return t, nil
}

// figure1Scenario compiles the paper's Figure-1 scenario, honoring a
// Params-level pricing-scheme override and an optional checker limit.
// Every Figure-1 experiment gets its graph and deviation-search
// parameters from here — scenario construction lives in
// internal/scenario, not in individual generators.
func figure1Scenario(p Params, checkerLimit int) (*scenario.Compiled, error) {
	return scenario.Spec{
		Family:       scenario.Figure1,
		Scheme:       p.Scheme,
		CheckerLimit: checkerLimit,
	}.Compile()
}

func flags(r core.Report) string {
	b := func(v bool) string {
		if v {
			return "✓"
		}
		return "✗"
	}
	return b(r.IC()) + b(r.CC()) + b(r.AC())
}

// E7PhaseDecomposition quantifies §3.9's "exponential reduction" in
// joint manipulations to check.
func E7PhaseDecomposition(Params) (*Table, error) {
	t := &Table{
		ID:         "E7",
		Title:      "Phase decomposition: joint deviation combinations to verify",
		PaperClaim: "checkpointed phases turn a product of per-phase spaces into a sum (exponential reduction)",
		Headers:    []string{"deviation points/phase", "phases", "monolithic combos", "phased combos", "reduction factor"},
	}
	for _, points := range []int{2, 4, 6, 8} {
		phases := []spec.Phase{
			{Name: "construction-1", DeviationPoints: points, Alternatives: 3},
			{Name: "construction-2", DeviationPoints: points, Alternatives: 3},
			{Name: "execution", DeviationPoints: points, Alternatives: 3},
		}
		mono, phased := spec.DecompositionSavings(phases)
		ratio := "inf"
		if phased.Sign() > 0 {
			q := mono.Int64() / phased.Int64()
			ratio = itoa(q)
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(points)), "3", mono.String(), phased.String(), ratio,
		})
	}
	return t, nil
}

// E8Election regenerates the §3 leader-election story: probability of
// electing the most powerful node, naive (with rational dodgers) vs
// faithful (Vickrey procurement).
func E8Election(p Params) (*Table, error) {
	t := &Table{
		ID:         "E8",
		Title:      "Leader election: correct-leader rate, naive vs faithful",
		PaperClaim: "the naive protocol fails to elect the most powerful node; the faithful variant always does",
		Headers:    []string{"spec", "trials", "correct leader", "rate"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	correctNaive, correctFaithful := 0, 0
	for trial := 0; trial < p.Trials; trial++ {
		n := 4 + rng.Intn(4)
		sc, err := scenario.Spec{
			Family: scenario.Random, N: n, ExtraEdges: scenario.Chords(rng.Intn(n)), MaxCost: 5,
		}.BuildWith(rng)
		if err != nil {
			return nil, err
		}
		topoG := sc.Graph
		powers := make([]int64, n)
		best := 0
		for i := range powers {
			powers[i] = 1 + rng.Int63n(40)
			if powers[i] > powers[best] {
				best = i
			}
		}
		base := election.Config{
			Topology: topoG,
			Powers:   powers,
			// CostScale large enough that cost = scale/θ is injective
			// over θ ∈ [1,40]: successive powers differ by ≥ scale/θ²
			// ≫ 1, so Vickrey ties happen only for genuinely equal
			// powers.
			ServiceValue:       1,
			CostScale:          1 << 20,
			NonProgressPenalty: 10_000_000,
		}
		// Naive with rational nodes: every node dodges by reporting
		// minimal power (the §3 failure mode).
		naiveCfg := base
		naiveCfg.Variant = election.Naive
		dodgers := make(map[graph.NodeID]*election.Strategy, n)
		for i := 0; i < n; i++ {
			dodgers[graph.NodeID(i)] = &election.Strategy{Declare: func(int64) int64 { return 1 }}
		}
		nr, err := election.Run(naiveCfg, dodgers)
		if err != nil {
			return nil, err
		}
		if nr.Completed && int(nr.Leader) == best {
			correctNaive++
		}
		// Faithful: truthful is equilibrium; run it truthfully.
		faithCfg := base
		faithCfg.Variant = election.Faithful
		fr, err := election.Run(faithCfg, nil)
		if err != nil {
			return nil, err
		}
		if fr.Completed && int(fr.Leader) == best {
			correctFaithful++
		}
	}
	t.Rows = append(t.Rows, []string{"naive + rational nodes", itoa(int64(p.Trials)), itoa(int64(correctNaive)),
		fmt.Sprintf("%.2f", float64(correctNaive)/float64(p.Trials))})
	t.Rows = append(t.Rows, []string{"faithful (Vickrey)", itoa(int64(p.Trials)), itoa(int64(correctFaithful)),
		fmt.Sprintf("%.2f", float64(correctFaithful)/float64(p.Trials))})
	return t, nil
}

// E9Convergence measures construction-phase convergence versus
// network size, the Griffin–Wilfong-style iterative computation.
func E9Convergence(p Params) (*Table, error) {
	t := &Table{
		ID:         "E9",
		Title:      "Distributed construction convergence vs network size",
		PaperClaim: "the iterative computation converges on static networks; work scales with n·edges, latency with diameter",
		Headers:    []string{"n", "edges", "diameter", "phase1 msgs", "phase2 msgs", "msgs per node", "steps"},
	}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, n := range p.Sizes {
		sc, err := scenario.Spec{Family: scenario.RingChords, N: n, ExtraEdges: scenario.Chords(n / 2)}.BuildWith(rng)
		if err != nil {
			return nil, err
		}
		g := sc.Graph
		res, err := fpss.Run(fpss.Config{Graph: g})
		if err != nil {
			return nil, err
		}
		diameter, err := g.Diameter()
		if err != nil {
			return nil, err
		}
		phase2Msgs := res.Phase2.Sent - res.Phase1.Sent
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(int64(g.M())), itoa(int64(diameter)),
			itoa(res.Phase1.Sent), itoa(phase2Msgs),
			fmt.Sprintf("%.1f", float64(res.Phase2.Sent)/float64(n)),
			itoa(res.Phase2.Steps),
		})
	}
	return t, nil
}

// E10Execution regenerates the execution-phase enforcement result
// (Remark 5): payment misreports are settled and penalized ε-above,
// making fraud strictly unprofitable.
func E10Execution(Params) (*Table, error) {
	sc, err := scenario.Spec{Family: scenario.Figure1, Packets: 2}.Compile()
	if err != nil {
		return nil, err
	}
	g := sc.Graph
	x, _ := g.ByName("X")
	base := sc.FaithfulConfig()
	honest, err := faithful.Run(base)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E10",
		Title:      "Execution-phase enforcement: X's utility under payment reporting strategies",
		PaperClaim: "the bank's ε-above penalty makes any payment misreport strictly unprofitable",
		Headers:    []string{"report strategy", "u(X)", "penalty", "net vs honest"},
	}
	t.Rows = append(t.Rows, []string{"truthful", itoa(honest.Utilities[x]), "0", "0"})
	strategies := []struct {
		name string
		hook func(fpss.PaymentList) fpss.PaymentList
	}{
		{"report nothing", func(fpss.PaymentList) fpss.PaymentList { return fpss.PaymentList{} }},
		{"halve everything", func(p fpss.PaymentList) fpss.PaymentList {
			out := make(fpss.PaymentList, len(p))
			for k, v := range p {
				out[k] = v / 2
			}
			return out
		}},
		{"skip one transit", func(p fpss.PaymentList) fpss.PaymentList {
			out := p.Clone()
			delete(out, minPayee(out))
			return out
		}},
		{"overpay by 10", func(p fpss.PaymentList) fpss.PaymentList {
			out := p.Clone()
			if len(out) > 0 {
				out[minPayee(out)] += 10
			}
			return out
		}},
	}
	for _, s := range strategies {
		cfg := base
		cfg.Strategies = map[graph.NodeID]*faithful.Strategy{x: {ReportPayment: s.hook}}
		res, err := faithful.Run(cfg)
		if err != nil {
			return nil, err
		}
		var penalty int64
		for _, f := range res.PaymentFindings {
			if f.Node == x {
				penalty = f.Penalty
			}
		}
		t.Rows = append(t.Rows, []string{
			s.name, itoa(res.Utilities[x]), itoa(penalty), itoa(res.Utilities[x] - honest.Utilities[x]),
		})
	}
	return t, nil
}

// minPayee picks the lowest-ID payee — a deterministic stand-in for
// "some transit node" so tables are byte-stable across runs (map
// iteration order is not).
func minPayee(p fpss.PaymentList) graph.NodeID {
	first := true
	var min graph.NodeID
	for k := range p {
		if first || k < min {
			min, first = k, false
		}
	}
	return min
}

// Render prints a table as aligned text.
func Render(t *Table) string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := fmt.Sprintf("%s — %s\nPaper: %s\n", t.ID, t.Title, t.PaperClaim)
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Headers)
	for _, row := range t.Rows {
		out += line(row)
	}
	if t.Notes != "" {
		out += "Note: " + t.Notes + "\n"
	}
	return out
}
