package experiments

import (
	"reflect"
	"testing"

	"repro/internal/faithful"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// TestE12FailstopMatchesInlineStrategy is the differential oracle for
// the declarative Config.Failstop path E12 now uses: for every node it
// must produce exactly the outcome the old inline
// SilentFromPhase2-strategy construction did — same green-light, same
// detections, same utilities. (Same pattern PR 2 used to pin the
// Dijkstra rewrite to the reference implementation.)
func TestE12FailstopMatchesInlineStrategy(t *testing.T) {
	sc, err := scenario.Spec{Family: scenario.Figure1}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sc.Graph.N(); i++ {
		id := graph.NodeID(i)

		declarative := sc.FaithfulConfig()
		declarative.UndeliveredPenalty = 0
		declarative.Failstop = []graph.NodeID{id}
		got, err := faithful.Run(declarative)
		if err != nil {
			t.Fatal(err)
		}

		inline := sc.FaithfulConfig()
		inline.UndeliveredPenalty = 0
		inline.Strategies = map[graph.NodeID]*faithful.Strategy{id: {SilentFromPhase2: true}}
		want, err := faithful.Run(inline)
		if err != nil {
			t.Fatal(err)
		}

		if got.Completed != want.Completed {
			t.Errorf("node %s: Completed %v vs inline %v", sc.Graph.Name(id), got.Completed, want.Completed)
		}
		if !reflect.DeepEqual(got.Detections, want.Detections) {
			t.Errorf("node %s: Detections %v vs inline %v", sc.Graph.Name(id), got.Detections, want.Detections)
		}
		if !reflect.DeepEqual(got.Utilities, want.Utilities) {
			t.Errorf("node %s: Utilities %v vs inline %v", sc.Graph.Name(id), got.Utilities, want.Utilities)
		}
	}
}

// TestFailstopMergesOverStrategy pins the merge semantics: a node that
// is both failstopped and assigned a strategy keeps the strategy's
// other hooks while going silent.
func TestFailstopMergesOverStrategy(t *testing.T) {
	sc, err := scenario.Spec{Family: scenario.Figure1}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	id := graph.NodeID(0)
	cfg := sc.FaithfulConfig()
	cfg.UndeliveredPenalty = 0
	supplied := &faithful.Strategy{}
	cfg.Strategies = map[graph.NodeID]*faithful.Strategy{id: supplied}
	cfg.Failstop = []graph.NodeID{id}
	res, err := faithful.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("failstopped node green-lit")
	}
	if supplied.SilentFromPhase2 {
		t.Error("Failstop merge mutated the caller's Strategy value")
	}
}
