package experiments

import (
	"fmt"

	"repro/internal/faithful"
	"repro/internal/graph"
	"repro/internal/scenario"
)

func init() {
	Register(Experiment{ID: "E11", Title: "Checker-assignment ablation", Slow: true, Gen: E11CheckerAblation})
	Register(Experiment{ID: "E12", Title: "Failstop interplay (§5)", Gen: E12Failstop})
	Register(Experiment{ID: "E13", Title: "Victim damage containment", Slow: true, Gen: E13DamageContainment})
}

// E11CheckerAblation ablates the checker assignment: §4.2 insists
// "every neighbor of a node is assigned as a checker for that node."
// Restricting the assignment to k < degree neighbors opens escapes —
// a principal can cheat toward the unchecked side.
func E11CheckerAblation(p Params) (*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "Ablation: checker assignment size vs deviation containment",
		PaperClaim: "the full every-neighbor assignment is load-bearing; the paper calls it 'very important'",
		Headers:    []string{"checkers per principal", "plays", "caught or neutralized", "profitable"},
	}
	for _, limit := range []int{0, 2, 1} {
		sc, err := figure1Scenario(p, limit)
		if err != nil {
			return nil, err
		}
		sys := sc.FaithfulSystem()
		base, err := sys.Run(-1, nil)
		if err != nil {
			return nil, err
		}
		// Fan the (deviation, node) plays over the worker pool; the
		// fold below only counts, so index order is irrelevant — but
		// parallelMap returns slots in catalogue order anyway.
		devs := sys.Deviations(0)
		nodes := sys.Nodes()
		type playStat struct{ caught, profitable bool }
		stats, err := parallelMap(len(devs)*len(nodes), 0, func(i int) (playStat, error) {
			out, err := sys.Run(nodes[i%len(nodes)], devs[i/len(nodes)])
			if err != nil {
				return playStat{}, err
			}
			node := nodes[i%len(nodes)]
			return playStat{
				caught:     !out.Completed || len(out.Detected) > 0 || out.Utilities[node] <= base.Utilities[node],
				profitable: out.Utilities[node] > base.Utilities[node],
			}, nil
		})
		if err != nil {
			return nil, err
		}
		plays, caught, profitable := len(stats), 0, 0
		for _, s := range stats {
			if s.caught {
				caught++
			}
			if s.profitable {
				profitable++
			}
		}
		label := "all neighbors"
		if limit > 0 {
			label = fmt.Sprintf("at most %d", limit)
		}
		t.Rows = append(t.Rows, []string{
			label, itoa(int64(plays)),
			fmt.Sprintf("%d/%d", caught, plays), fmt.Sprintf("%d/%d", profitable, plays),
		})
	}
	t.Notes = "with the full assignment nothing profits; truncated assignments may leave deviations uncaught or profitable"
	return t, nil
}

// E12Failstop reproduces the §5 discussion: the rational-manipulation
// remedy punishes *crash* failures too — a failstop node looks like a
// deviator, the bank withholds the green light, and everyone (not just
// the crashed node) pays the non-progress penalty. Handling mixed
// failure models is the paper's stated open problem.
func E12Failstop(Params) (*Table, error) {
	sc, err := scenario.Spec{Family: scenario.Figure1}.Compile()
	if err != nil {
		return nil, err
	}
	g := sc.Graph
	t := &Table{
		ID:         "E12",
		Title:      "Failure-model interplay: failstop node under the faithful protocol",
		PaperClaim: "other failures (general omission, failstop) may cause the system to falsely detect and punish manipulation (§5)",
		Headers:    []string{"crashed node", "green-lit", "detections", "honest nodes punished"},
	}
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		cfg := sc.FaithfulConfig()
		// E12 charges crashes only through non-progress, never per
		// stranded packet — keep the pre-scenario accounting.
		cfg.UndeliveredPenalty = 0
		cfg.Failstop = []graph.NodeID{id}
		res, err := faithful.Run(cfg)
		if err != nil {
			return nil, err
		}
		punished := 0
		for other, u := range res.Utilities {
			if other != id && u < 0 {
				punished++
			}
		}
		t.Rows = append(t.Rows, []string{
			g.Name(id), fmt.Sprintf("%v", res.Completed),
			itoa(int64(len(res.Detections))), fmt.Sprintf("%d/%d", punished, g.N()-1),
		})
	}
	t.Notes = "a crash is indistinguishable from rational withholding: progress stops and honest nodes suffer — the open problem §5 poses"
	return t, nil
}

// E13DamageContainment examines the §5 antisocial angle: how much a
// deviator can hurt *others* (not help itself) under each protocol. In
// plain FPSS corrupted tables silently damage victims' efficiency; in
// the faithful protocol self-interested deviations are contained, but
// a node willing to eat the non-progress penalty can grief everyone —
// faithfulness targets rational nodes, not malicious ones.
func E13DamageContainment(p Params) (*Table, error) {
	sc, err := figure1Scenario(p, 0)
	if err != nil {
		return nil, err
	}
	g := sc.Graph
	plainSys, faithSys := sc.Systems()
	plainBase, err := plainSys.Run(-1, nil)
	if err != nil {
		return nil, err
	}
	faithBase, err := faithSys.Run(-1, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "E13",
		Title:      "Victim damage per deviation: plain vs faithful (completed runs)",
		PaperClaim: "rational-manipulation defenses bound self-interested harm; anti-social/malicious behavior is outside the model (§5)",
		Headers:    []string{"deviation", "worst victim loss (plain)", "worst victim loss (faithful, completed)", "faithful blocked runs"},
	}
	// Each job plays one deviation at one node against *both*
	// protocols; the per-deviation fold (max over victims, blocked
	// count) is order-independent, so the fan-out stays deterministic.
	devs := plainSys.Deviations(0)
	nodes := plainSys.Nodes()
	type damage struct {
		plainLoss, faithLoss int64
		blocked              bool
	}
	results, err := parallelMap(len(devs)*len(nodes), 0, func(i int) (damage, error) {
		dev, node := devs[i/len(nodes)], nodes[i%len(nodes)]
		var d damage
		pOut, err := plainSys.Run(node, dev)
		if err != nil {
			return d, err
		}
		for victim, u := range pOut.Utilities {
			if victim == node {
				continue
			}
			if loss := plainBase.Utilities[victim] - u; loss > d.plainLoss {
				d.plainLoss = loss
			}
		}
		fOut, err := faithSys.Run(node, dev)
		if err != nil {
			return d, err
		}
		if !fOut.Completed {
			d.blocked = true
			return d, nil
		}
		for victim, u := range fOut.Utilities {
			if victim == node {
				continue
			}
			if loss := faithBase.Utilities[victim] - u; loss > d.faithLoss {
				d.faithLoss = loss
			}
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	for di, dev := range devs {
		worstPlain, worstFaith := int64(0), int64(0)
		blocked := 0
		for ni := range nodes {
			d := results[di*len(nodes)+ni]
			if d.plainLoss > worstPlain {
				worstPlain = d.plainLoss
			}
			if d.blocked {
				blocked++
				continue
			}
			if d.faithLoss > worstFaith {
				worstFaith = d.faithLoss
			}
		}
		t.Rows = append(t.Rows, []string{
			dev.Name(), itoa(worstPlain), itoa(worstFaith), fmt.Sprintf("%d/%d", blocked, g.N()),
		})
	}
	t.Notes = "blocked runs end in non-progress: self-interested nodes never choose them, but a malicious node could — the paper's explicit scope limit"
	return t, nil
}
