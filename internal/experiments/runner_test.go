package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func TestRegistryHasAllThirteen(t *testing.T) {
	exps := Experiments()
	if len(exps) != 13 {
		t.Fatalf("registered experiments = %d, want 13", len(exps))
	}
	for i, e := range exps {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Errorf("canonical order broken at %d: got %s, want %s", i, e.ID, want)
		}
		if e.Gen == nil {
			t.Errorf("%s has no generator", e.ID)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, id := range []string{"E4", "e4", "E12", "e12"} {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) should fail")
	}
}

func TestMatchFiltersByRegexp(t *testing.T) {
	cases := []struct {
		pattern string
		want    []string
	}{
		{"", []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}},
		{"E1", []string{"E1"}}, // whole-ID anchoring: E10–E13 excluded
		{"e1[0-3]", []string{"E10", "E11", "E12", "E13"}},
		{"E2|E7", []string{"E2", "E7"}},
		{"E99", nil},
	}
	for _, c := range cases {
		got, err := Match(c.pattern)
		if err != nil {
			t.Fatalf("Match(%q): %v", c.pattern, err)
		}
		ids := make([]string, 0, len(got))
		for _, e := range got {
			ids = append(ids, e.ID)
		}
		if !reflect.DeepEqual(ids, c.want) && !(len(ids) == 0 && len(c.want) == 0) {
			t.Errorf("Match(%q) = %v, want %v", c.pattern, ids, c.want)
		}
	}
	if _, err := Match("e[("); err == nil {
		t.Error("invalid regexp should error")
	}
}

// fastSubset is the set of non-Slow experiments with sweeps shrunk so
// the whole slice regenerates in ~100ms — cheap enough for the
// repeated determinism checks below. The full-default byte-identical
// comparison lives in cmd/benchtab's slow-lane test.
func fastSubset(t *testing.T) []Experiment {
	t.Helper()
	var out []Experiment
	for _, e := range Experiments() {
		if e.Slow {
			continue
		}
		if len(e.Params.Sizes) > 2 {
			e.Params.Sizes = e.Params.Sizes[:2]
		}
		if e.Params.Trials > 5 {
			e.Params.Trials = 5
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		t.Fatal("no fast experiments registered")
	}
	return out
}

func TestRunnerParallelMatchesSequential(t *testing.T) {
	exps := fastSubset(t)
	seq, err := Runner{Workers: 1}.Run(exps)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runner{Workers: 8}.Run(exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("table counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("%s: parallel table differs from sequential\nseq: %+v\npar: %+v",
				exps[i].ID, seq[i], par[i])
		}
	}
}

func TestRunnerPreservesInputOrder(t *testing.T) {
	exps := fastSubset(t)
	// Reverse the subset: output order must follow input order, not
	// canonical registry order or completion order.
	rev := make([]Experiment, len(exps))
	for i, e := range exps {
		rev[len(exps)-1-i] = e
	}
	tables, err := Runner{Workers: 4}.Run(rev)
	if err != nil {
		t.Fatal(err)
	}
	for i, tbl := range tables {
		if tbl.ID != rev[i].ID {
			t.Errorf("slot %d: got table %s, want %s", i, tbl.ID, rev[i].ID)
		}
	}
}

func TestRunnerErrorPropagation(t *testing.T) {
	boom := errors.New("generator exploded")
	ok := Experiment{ID: "OK", Gen: func(Params) (*Table, error) {
		return &Table{ID: "OK"}, nil
	}}
	bad := func(id string) Experiment {
		return Experiment{ID: id, Gen: func(Params) (*Table, error) { return nil, boom }}
	}
	for _, workers := range []int{1, 4} {
		// The earliest failing experiment wins, independent of
		// scheduling, and the error is wrapped with its ID.
		_, err := Runner{Workers: workers}.Run([]Experiment{ok, bad("BAD1"), ok, bad("BAD2")})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error chain lost the cause: %v", workers, err)
		}
		if got := err.Error(); got != "BAD1: generator exploded" {
			t.Errorf("workers=%d: error = %q, want BAD1's", workers, got)
		}
	}
}

func TestRunnerWorkerCountsAllAgree(t *testing.T) {
	exps := fastSubset(t)
	base, err := Runner{Workers: 1}.Run(exps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 16} {
		got, err := Runner{Workers: workers}.Run(exps)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: tables differ from sequential", workers)
		}
	}
}

func TestGenerateFillsDefaultsForZeroFields(t *testing.T) {
	exp, ok := Lookup("E8")
	if !ok {
		t.Fatal("E8 not registered")
	}
	// Zero Trials must fall back to the registered default (40), not
	// run an empty sweep that divides by zero.
	tbl, err := exp.Generate(Params{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rows[0][1]; got != "40" {
		t.Errorf("trials cell = %q, want registered default 40", got)
	}
	for _, row := range tbl.Rows {
		if row[3] == "NaN" {
			t.Errorf("zero-trials division leaked: %v", row)
		}
	}
}

func TestRegistryDefaultsImmutable(t *testing.T) {
	exp, _ := Lookup("E4")
	if len(exp.Params.Sizes) == 0 {
		t.Fatal("E4 has no default sizes")
	}
	exp.Params.Sizes[0] = 9999 // must write to a copy, not the registry
	again, _ := Lookup("E4")
	if again.Params.Sizes[0] == 9999 {
		t.Error("mutating a looked-up Params corrupted the registry defaults")
	}
}

func TestRunIDs(t *testing.T) {
	tables, err := Runner{Workers: 2}.RunIDs("E7|E12")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "E7" || tables[1].ID != "E12" {
		t.Errorf("RunIDs tables: %+v", tables)
	}
	if _, err := (Runner{}).RunIDs("E99"); err == nil {
		t.Error("no-match pattern should error")
	}
}
