package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// genTable fetches an experiment from the registry and generates its
// table, optionally mutating the default Params first — tests never
// call generator functions by name.
func genTable(t *testing.T, id string, mutate func(*Params)) *Table {
	t.Helper()
	exp, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	p := exp.Params
	if mutate != nil {
		mutate(&p)
	}
	tbl, err := exp.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestE1MatchesPaperQuotes(t *testing.T) {
	tbl := genTable(t, "E1", nil)
	want := map[string][2]string{
		"X→Z": {"2", "X-D-C-Z"},
		"Z→D": {"1", ""},
		"B→D": {"0", ""},
	}
	for _, row := range tbl.Rows {
		if w, ok := want[row[0]]; ok {
			if row[1] != w[0] {
				t.Errorf("%s cost = %s, want %s", row[0], row[1], w[0])
			}
			if w[1] != "" && row[2] != w[1] {
				t.Errorf("%s path = %s, want %s", row[0], row[2], w[1])
			}
		}
		if row[3] != "true" {
			t.Errorf("%s: distributed disagrees with central", row[0])
		}
	}
}

func TestE2NaiveManipulableVCGNot(t *testing.T) {
	tbl := genTable(t, "E2", nil)
	var naiveTruth, vcgTruth int64
	var naiveBest, vcgBest int64
	naiveBest, vcgBest = -1<<62, -1<<62
	for _, row := range tbl.Rows {
		declared, _ := strconv.ParseInt(row[0], 10, 64)
		naive, _ := strconv.ParseInt(row[1], 10, 64)
		vcg, _ := strconv.ParseInt(row[2], 10, 64)
		if declared == 1 { // truth
			naiveTruth, vcgTruth = naive, vcg
		}
		if naive > naiveBest {
			naiveBest = naive
		}
		if vcg > vcgBest {
			vcgBest = vcg
		}
	}
	if naiveBest <= naiveTruth {
		t.Errorf("naive pricing should admit a profitable lie: truth %d, best %d", naiveTruth, naiveBest)
	}
	if vcgBest > vcgTruth {
		t.Errorf("VCG must keep truth optimal: truth %d, best %d", vcgTruth, vcgBest)
	}
}

func TestE3AllCaughtNoneProfitable(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation x node sweep is the slow lane")
	}
	tbl := genTable(t, "E3", nil)
	if len(tbl.Rows) == 0 {
		t.Fatal("no deviations tested")
	}
	for _, row := range tbl.Rows {
		parts := strings.Split(row[3], "/")
		if parts[0] != parts[1] {
			t.Errorf("deviation %s not fully caught/neutralized: %s", row[0], row[3])
		}
		gains := strings.Split(row[4], "/")
		if gains[0] != "0" {
			t.Errorf("deviation %s profitable somewhere: %s", row[0], row[4])
		}
	}
}

func TestE4OverheadBounded(t *testing.T) {
	tbl := genTable(t, "E4", func(p *Params) { p.Sizes = []int{6, 10}; p.Seed = 1 })
	for _, row := range tbl.Rows {
		ratio, _ := strconv.ParseFloat(row[4], 64)
		if ratio < 1.0 {
			t.Errorf("n=%s: faithful cannot use fewer messages than plain (ratio %s)", row[0], row[4])
		}
		deg, _ := strconv.ParseFloat(row[1], 64)
		if ratio > 4*deg {
			t.Errorf("n=%s: overhead ratio %s far exceeds degree bound %f", row[0], row[4], deg)
		}
	}
}

func TestE5BFTCostlier(t *testing.T) {
	tbl := genTable(t, "E5", func(p *Params) { p.Seed = 2 })
	for _, row := range tbl.Rows {
		ratio, _ := strconv.ParseFloat(row[6], 64)
		if ratio <= 1.0 {
			t.Errorf("n=%s: BFT should cost more messages than catch-and-punish (ratio %s)", row[0], row[6])
		}
	}
}

func TestE6FaithfulCleanPlainDirty(t *testing.T) {
	if testing.Short() {
		t.Skip("full faithfulness search is the slow lane")
	}
	tbl := genTable(t, "E6", func(p *Params) { p.Trials = 2; p.Seed = 3 })
	for _, row := range tbl.Rows {
		if row[3] == "0" {
			t.Errorf("trial %s: plain FPSS had no violations", row[0])
		}
		if row[5] != "0" {
			t.Errorf("trial %s: faithful spec violated %s times", row[0], row[5])
		}
		if row[6] != "✓✓✓" {
			t.Errorf("trial %s: faithful IC/CC/AC = %s", row[0], row[6])
		}
	}
}

func TestE7ReductionGrows(t *testing.T) {
	tbl := genTable(t, "E7", nil)
	var prev int64
	for _, row := range tbl.Rows {
		r, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			t.Fatalf("ratio %q: %v", row[4], err)
		}
		if r <= prev {
			t.Errorf("reduction factor should grow with deviation points: %v", row)
		}
		prev = r
	}
}

func TestE8FaithfulAlwaysCorrect(t *testing.T) {
	tbl := genTable(t, "E8", func(p *Params) { p.Trials = 25; p.Seed = 4 })
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	naiveRate, _ := strconv.ParseFloat(tbl.Rows[0][3], 64)
	faithRate, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	if faithRate != 1.0 {
		t.Errorf("faithful correct rate = %f, want 1.0", faithRate)
	}
	if naiveRate >= faithRate {
		t.Errorf("naive rate %f should be below faithful %f", naiveRate, faithRate)
	}
}

func TestE9MessagesGrow(t *testing.T) {
	tbl := genTable(t, "E9", func(p *Params) { p.Sizes = []int{6, 12, 18}; p.Seed = 5 })
	var prev int64
	for _, row := range tbl.Rows {
		msgs, _ := strconv.ParseInt(row[4], 10, 64)
		if msgs <= prev {
			t.Errorf("phase-2 messages should grow with n: %v", row)
		}
		prev = msgs
	}
}

func TestE10FraudStrictlyUnprofitable(t *testing.T) {
	tbl := genTable(t, "E10", nil)
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows[1:] { // skip truthful
		net, _ := strconv.ParseInt(row[3], 10, 64)
		if net >= 0 {
			t.Errorf("strategy %q nets %d, want strictly negative", row[0], net)
		}
	}
}

func TestRender(t *testing.T) {
	s := Render(genTable(t, "E7", nil))
	if !strings.Contains(s, "E7") || !strings.Contains(s, "monolithic") {
		t.Errorf("render missing content:\n%s", s)
	}
}
