package experiments

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fpss"
)

// Params parameterizes a registered experiment. When passed to
// Experiment.Generate, the zero value of any field means "use the
// experiment's registered default" — the defaults reproduce the paper
// tables exactly, and the registration is their single source of
// truth. Sweeping these fields opens scenario variants (bigger
// topologies, more sampled profiles, alternate pricing) without new
// top-level generators.
type Params struct {
	// Sizes are the topology sizes for sweep experiments (E4, E5, E9).
	Sizes []int
	// Trials is the sampled-profile count for randomized experiments
	// (E6, E8).
	Trials int
	// Seed is the base RNG seed. Every generator derives all of its
	// randomness from this value, so a Params value fully determines
	// the output table — the property the parallel runner relies on.
	Seed int64
	// Scheme overrides the pricing rule where one applies (E6, E11,
	// E13). Zero keeps the experiment's default (VCG).
	Scheme fpss.PricingScheme
}

// Experiment is one registered table generator.
type Experiment struct {
	// ID is the stable experiment name ("E1".."E13").
	ID string
	// Title is a one-line description for listings.
	Title string
	// Params are the defaults that reproduce the paper table.
	Params Params
	// Slow marks experiments dominated by deviation searches; callers
	// running under -short skip them.
	Slow bool
	// Gen produces the table for a given parameterization.
	Gen func(Params) (*Table, error)
}

// withDefaults fills zero fields from d.
func (p Params) withDefaults(d Params) Params {
	if len(p.Sizes) == 0 {
		p.Sizes = d.Sizes
	}
	if p.Trials == 0 {
		p.Trials = d.Trials
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.Scheme == 0 {
		p.Scheme = d.Scheme
	}
	return p
}

// clone deep-copies the slice field so a returned Params can be
// mutated freely without writing through to the registry.
func (p Params) clone() Params {
	p.Sizes = append([]int(nil), p.Sizes...)
	return p
}

// Generate runs the generator with p, filling any zero field from the
// experiment's registered defaults — the one place the
// zero-means-default contract is implemented. Prefer this over
// calling Gen directly.
func (e Experiment) Generate(p Params) (*Table, error) {
	return e.Gen(p.withDefaults(e.Params).clone())
}

// Run generates the experiment's table with its default parameters.
func (e Experiment) Run() (*Table, error) { return e.Generate(Params{}) }

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
)

// Register adds an experiment to the package registry. New experiments
// register here instead of being threaded through a hardcoded All()
// dispatch; ID collisions and missing generators are programmer errors
// and panic at init time.
func Register(e Experiment) {
	if e.ID == "" || e.Gen == nil {
		panic("experiments: Register needs an ID and a Gen func")
	}
	key := strings.ToLower(e.ID)
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %s", e.ID))
	}
	registry[key] = e
}

// Lookup finds an experiment by ID (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[strings.ToLower(id)]
	e.Params = e.Params.clone()
	return e, ok
}

// Experiments returns every registered experiment in canonical order
// (numeric suffix ascending, then lexical).
func Experiments() []Experiment {
	regMu.RLock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		e.Params = e.Params.clone()
		out = append(out, e)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		ni, iok := idNum(out[i].ID)
		nj, jok := idNum(out[j].ID)
		if iok && jok && ni != nj {
			return ni < nj
		}
		if iok != jok {
			return iok
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// idNum extracts the trailing number of an "E<n>"-style ID.
func idNum(id string) (int, bool) {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i == len(id) {
		return 0, false
	}
	n, err := strconv.Atoi(id[i:])
	return n, err == nil
}

// Match returns the experiments whose ID matches the regular
// expression (case-insensitive, anchored to the whole ID), in
// canonical order. An empty pattern matches everything.
func Match(pattern string) ([]Experiment, error) {
	all := Experiments()
	if pattern == "" {
		return all, nil
	}
	re, err := regexp.Compile("(?i)^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("experiment pattern %q: %w", pattern, err)
	}
	out := make([]Experiment, 0, len(all))
	for _, e := range all {
		if re.MatchString(e.ID) {
			out = append(out, e)
		}
	}
	return out, nil
}
