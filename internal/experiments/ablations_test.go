package experiments

import (
	"strings"
	"testing"
)

func TestE11FullAssignmentContainsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("three full deviation sweeps are the slow lane")
	}
	tbl := genTable(t, "E11", nil)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	full := tbl.Rows[0]
	if full[0] != "all neighbors" {
		t.Fatalf("first row should be the full assignment: %v", full)
	}
	parts := strings.Split(full[2], "/")
	if parts[0] != parts[1] {
		t.Errorf("full assignment not fully containing: %s", full[2])
	}
	if !strings.HasPrefix(full[3], "0/") {
		t.Errorf("full assignment admits profit: %s", full[3])
	}
	// Truncated assignments must not contain MORE than the full one.
	for _, row := range tbl.Rows[1:] {
		p := strings.Split(row[2], "/")
		if p[0] > p[1] {
			t.Errorf("malformed row %v", row)
		}
	}
}

func TestE12CrashBlocksProgressEverywhere(t *testing.T) {
	tbl := genTable(t, "E12", nil)
	for _, row := range tbl.Rows {
		if row[1] != "false" {
			t.Errorf("crashed node %s: run green-lit despite failstop", row[0])
		}
		parts := strings.Split(row[3], "/")
		if parts[0] != parts[1] {
			t.Errorf("crashed node %s: honest nodes not all punished (%s) — the §5 interplay should bite", row[0], row[3])
		}
	}
}

func TestE13PlainAdmitsVictimDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("plain+faithful deviation sweeps are the slow lane")
	}
	tbl := genTable(t, "E13", nil)
	anyPlainDamage := false
	for _, row := range tbl.Rows {
		if row[1] != "0" {
			anyPlainDamage = true
		}
	}
	if !anyPlainDamage {
		t.Error("expected at least one deviation to damage victims in plain FPSS")
	}
	// In completed faithful runs, victim damage must never exceed the
	// plain protocol's worst case for the same deviation... and for
	// fully-neutralized deviations it must be zero.
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[3], "0/") && row[2] != "0" && row[1] == "0" {
			t.Errorf("deviation %s harms victims only under the faithful spec: %v", row[0], row)
		}
	}
}
