package scenario

import (
	"reflect"
	"testing"
)

func TestSuiteRegistry(t *testing.T) {
	all := Suites()
	if len(all) < 4 {
		t.Fatalf("expected the built-in suites, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("suites not sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
	if _, ok := LookupSuite("SMOKE"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := LookupSuite("no-such-suite"); ok {
		t.Fatal("unknown suite resolved")
	}
}

func TestSuiteSpecsDeterministic(t *testing.T) {
	s, ok := LookupSuite("smoke")
	if !ok {
		t.Fatal("smoke suite missing")
	}
	a := s.Specs(7)
	b := s.Specs(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Specs not deterministic for a fixed seed")
	}
	if len(a) != len(s.Families)*len(s.Sizes)*len(s.Workloads)*len(s.CostModels) {
		t.Fatalf("cross product size %d, want %d", len(a),
			len(s.Families)*len(s.Sizes)*len(s.Workloads)*len(s.CostModels))
	}
	c := s.Specs(8)
	same := 0
	for i := range a {
		if a[i].Seed == c[i].Seed {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("per-spec seeds ignore the base seed")
	}
}

// TestSuiteSeedsIdentityKeyed: a scenario's derived seed depends on
// its identity and the base seed, not on its position — so the same
// (family, n, workload, cost model) in two different suites plays the
// same graph.
func TestSuiteSeedsIdentityKeyed(t *testing.T) {
	a := Suite{Name: "a", Families: []Family{Random, PrefAttach}, Sizes: []int{8},
		Workloads: []Workload{WorkloadAllPairs}, CostModels: []CostModel{CostUniform}}
	b := Suite{Name: "b", Families: []Family{PrefAttach}, Sizes: []int{8},
		Workloads: []Workload{WorkloadAllPairs}, CostModels: []CostModel{CostUniform}}
	sa := a.Specs(5)
	sb := b.Specs(5)
	// prefattach n=8 is sa[1] and sb[0].
	if sa[1].Seed != sb[0].Seed {
		t.Fatalf("identity-keyed seeds differ: %d vs %d", sa[1].Seed, sb[0].Seed)
	}
	if sa[0].Seed == sa[1].Seed {
		t.Fatal("distinct scenarios share a seed")
	}
}

// TestSuiteSpecsDedupCollapsedAxes: Figure1 ignores the size and
// cost-model axes, so a suite crossing it with several sizes/models
// must emit it once, not once per collapsed combination.
func TestSuiteSpecsDedupCollapsedAxes(t *testing.T) {
	s := Suite{Name: "fig", Families: []Family{Figure1, Random}, Sizes: []int{6, 8},
		Workloads: []Workload{WorkloadAllPairs}, CostModels: []CostModel{CostUniform, CostBimodal}}
	specs := s.Specs(1)
	// Figure1 collapses 2 sizes × 2 cost models into 1 spec; Random
	// keeps all 4 combinations.
	if len(specs) != 1+4 {
		t.Fatalf("got %d specs, want 5: %v", len(specs), specs)
	}
	fig := 0
	for _, sp := range specs {
		if sp.Family == Figure1 {
			fig++
		}
	}
	if fig != 1 {
		t.Fatalf("figure1 emitted %d times, want once", fig)
	}
}

// TestBuiltinSuitesCompile compiles every spec of every registered
// suite — the guard that suite axes only ever cross into valid
// combinations (e.g. torus sizes factor).
func TestBuiltinSuitesCompile(t *testing.T) {
	for _, s := range Suites() {
		for _, sp := range s.Specs(1) {
			c, err := sp.Compile()
			if err != nil {
				t.Errorf("suite %s: %s: %v", s.Name, sp.Describe(), err)
				continue
			}
			if !c.Graph.IsBiconnected() {
				t.Errorf("suite %s: %s: graph not biconnected", s.Name, sp.Describe())
			}
		}
	}
}
