package scenario

import (
	"strings"
	"testing"

	"repro/internal/settle"
	"repro/internal/sim"
)

// TestDescribeShards pins the shard rendering (it feeds seed keying,
// so the label format is part of the reproducibility contract).
func TestDescribeShards(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 2, Shards: Shards{K: 2}}
	if got, want := sp.Describe(), "random n=6 shards=2 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	sp.Shards.Crash = settle.PlanParticipant
	if got, want := sp.Describe(), "random n=6 shards=2 crash=participant seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	sp.Shards.SeedSalt = 0xbeef
	if got, want := sp.Describe(), "random n=6 shards=2 crash=participant shardsalt=0xbeef seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	// The failure axes compose in one label: loss before shards.
	sp = Spec{Family: Random, N: 6, Seed: 2, Loss: Loss{Rate: 0.1}, Shards: Shards{K: 4}}
	if got, want := sp.Describe(), "random n=6 loss=0.1 shards=4 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	// The zero-value axis keeps the exact pre-shard label — every
	// existing suite's derived seeds depend on it.
	sp = Spec{Family: Random, N: 6, Seed: 2}
	if got, want := sp.Describe(), "random n=6 seed=2"; got != want {
		t.Errorf("zero-value Describe = %q, want %q", got, want)
	}
}

// TestShardsZeroValueByteCompatible: a Spec without the axis must
// materialize exactly as pre-shard builds did — disabled Params.Settle
// and an unchanged derived seed.
func TestShardsZeroValueByteCompatible(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 4}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Params.Settle.Enabled() || c.Params.Settle != (settle.Options{}) {
		t.Errorf("zero-value axis produced live settlement options: %+v", c.Params.Settle)
	}
	// deriveSeed is keyed on Describe; the pinned value matches
	// TestLossZeroValueByteCompatible's.
	if got, want := deriveSeed(1, sp), int64(453723182315541180); sp.Workload == WorkloadAllPairs && got != want {
		t.Errorf("zero-value seed derivation changed: %d want %d", got, want)
	}
}

// TestSettleOptionsDerivation: the settlement seed mixes Spec seed,
// package salt and the user's SeedSalt; epoch re-salting changes the
// routing/crash stream but epoch 0 equals the static options.
func TestSettleOptionsDerivation(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 4, Shards: Shards{K: 2, Crash: settle.PlanCoordinator}}
	o := sp.SettleOptions()
	if !o.Enabled() || o.Shards != 2 || o.Plan != settle.PlanCoordinator {
		t.Fatalf("SettleOptions = %+v", o)
	}
	if o.Seed != sim.Mix64(uint64(4)^shardSeedSalt) {
		t.Errorf("settlement seed %#x not derived from spec seed + salt", o.Seed)
	}
	// SeedSalt perturbs the settlement without touching the spec seed.
	salted := sp
	salted.Shards.SeedSalt = 99
	if salted.SettleOptions().Seed == o.Seed {
		t.Error("SeedSalt did not change the settlement seed")
	}
	// Same Spec ⇒ same options, always (the determinism contract).
	if sp.SettleOptions() != o {
		t.Error("SettleOptions not a pure function of the Spec")
	}
	// Epoch salting: epoch 0 static, later epochs fresh but stable.
	if sp.SettleOptionsForEpoch(0) != o {
		t.Error("epoch 0 must replay the static settlement")
	}
	e1, e2 := sp.SettleOptionsForEpoch(1), sp.SettleOptionsForEpoch(2)
	if e1.Seed == o.Seed || e2.Seed == o.Seed || e1.Seed == e2.Seed {
		t.Errorf("epoch settlements must all differ: static=%#x e1=%#x e2=%#x", o.Seed, e1.Seed, e2.Seed)
	}
	if e1.Shards != o.Shards || e1.Plan != o.Plan {
		t.Errorf("epoch re-salt changed more than the seed: %+v", e1)
	}
	if sp.SettleOptionsForEpoch(1) != e1 {
		t.Error("epoch settlement not deterministic")
	}
	// A disabled axis yields the zero options at every epoch.
	off := Spec{Family: Random, N: 6, Seed: 4}
	if off.SettleOptionsForEpoch(3) != (settle.Options{}) {
		t.Error("disabled axis produced live epoch options")
	}
}

// TestShardsMaterialized: Compile/Materialize thread the options into
// Params, and invalid axis combinations fail the build with a
// scenario-labeled error.
func TestShardsMaterialized(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 4, Shards: Shards{K: 3, Crash: settle.PlanRecovery}}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Params.Settle != sp.SettleOptions() {
		t.Errorf("Params.Settle = %+v, want %+v", c.Params.Settle, sp.SettleOptions())
	}

	for _, tc := range []struct {
		name   string
		shards Shards
		want   string
	}{
		{"negative K", Shards{K: -1}, "K must be >= 0"},
		{"unknown plan", Shards{K: 2, Crash: "meteor"}, "unknown crash plan"},
		{"crash without shards", Shards{Crash: settle.PlanParticipant}, "needs K > 0"},
	} {
		bad := Spec{Family: Random, N: 6, Seed: 4, Shards: tc.shards}
		if _, err := bad.Compile(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compile err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestSettleSuiteSpecs: the shard axis flows from the suite into every
// spec, distinguishes identities from the singleton-bank counterparts,
// and the built-in settle suite compiles.
func TestSettleSuiteSpecs(t *testing.T) {
	s, ok := LookupSuite("settle")
	if !ok {
		t.Fatal("settle suite not registered")
	}
	specs := s.Specs(1)
	if len(specs) == 0 {
		t.Fatal("settle suite empty")
	}
	for _, sp := range specs {
		if sp.Shards != s.Shards {
			t.Fatalf("%s: shards %+v, want %+v", sp.Describe(), sp.Shards, s.Shards)
		}
		if _, err := sp.Compile(); err != nil {
			t.Fatalf("%s: %v", sp.Describe(), err)
		}
		singleton := sp
		singleton.Shards = Shards{}
		if sp.Describe() == singleton.Describe() {
			t.Fatalf("%s: sharded and singleton specs share an identity", sp.Describe())
		}
		if sp.Seed == deriveSeed(1, singleton) {
			t.Fatalf("%s: sharded and singleton specs derive the same seed", sp.Describe())
		}
	}
}
