package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Suite is a named cross-product of scenario axes: every combination
// of Families × Sizes × Workloads × CostModels becomes one Spec.
// Suites are seed-parameterized — Specs(seed) derives a distinct,
// stable per-scenario seed from the base seed and the scenario's
// identity, so a suite sweep is reproducible from one number and a
// scenario keeps its seed even when the suite definition is reordered
// or extended.
type Suite struct {
	// Name identifies the suite (faithcheck -suite <name>).
	Name string
	// Description is a one-liner for listings.
	Description string
	// Families / Sizes / Workloads / CostModels are the cross-product
	// axes. Every combination must be valid (e.g. sizes must factor
	// for Torus/TwoTier members); Specs surfaces the first invalid
	// combination as an error from Compile.
	Families   []Family
	Sizes      []int
	Workloads  []Workload
	CostModels []CostModel
	// Packets / CheckerLimit are applied uniformly to every Spec.
	Packets      int64
	CheckerLimit int
	// Churn applies epoch dynamics uniformly to every Spec (zero value
	// = static). Dynamic suites are swept through the churn engine by
	// faithcheck instead of the single-epoch checker.
	Churn Churn
	// Loss applies the lossy-links failure axis uniformly to every
	// Spec (zero value = reliable network).
	Loss Loss
	// Shards applies the sharded-settlement failure axis uniformly to
	// every Spec (zero value = singleton bank).
	Shards Shards
	// ProfileSizes are the honest-profiling rungs above the suite's
	// deviation-search ceiling: sizes at which faithcheck builds and
	// executes only the truthful profile (central construction + both
	// protocol variants' honest snapshots) instead of sweeping the
	// deviation grid. They raise the suite's size ceiling to where the
	// full search is not yet affordable — n=100+ for internet — while
	// still exercising (and timing) every construction path at that
	// scale. Empty means the suite has no profiling tier.
	ProfileSizes []int
}

// Specs expands the cross product in deterministic order: family
// outermost, then size, workload, cost model. Combinations that
// collapse to the same scenario (Figure1 ignores the size and
// cost-model axes) are emitted once, not once per collapsed axis
// value.
func (s Suite) Specs(seed int64) []Spec {
	specs := make([]Spec, 0, len(s.Families)*len(s.Sizes)*len(s.Workloads)*len(s.CostModels))
	seen := make(map[string]bool)
	for _, fam := range s.Families {
		for _, n := range s.Sizes {
			for _, w := range s.Workloads {
				for _, cm := range s.CostModels {
					sp := Spec{
						Family:       fam,
						N:            n,
						Workload:     w,
						CostModel:    cm,
						Packets:      s.Packets,
						CheckerLimit: s.CheckerLimit,
						Churn:        s.Churn,
						Loss:         s.Loss,
						Shards:       s.Shards,
					}
					if fam == Figure1 {
						// Figure1 is fixed-size with fixed costs; the
						// size and cost-model axes don't apply.
						sp.N, sp.CostModel = 0, CostDefault
					}
					sp.Seed = deriveSeed(seed, sp)
					if seen[sp.Describe()] {
						continue
					}
					seen[sp.Describe()] = true
					specs = append(specs, sp)
				}
			}
		}
	}
	return specs
}

// ProfileSpecs expands the honest-profiling tier: every family at
// every ProfileSizes rung, under the suite's first workload and cost
// model (the profile times construction, not the demand-matrix axis).
// Seeds derive exactly like Specs', so a profile scenario is
// reproducible from the same base seed.
func (s Suite) ProfileSpecs(seed int64) []Spec {
	if len(s.ProfileSizes) == 0 {
		return nil
	}
	var w Workload
	if len(s.Workloads) > 0 {
		w = s.Workloads[0]
	}
	var cm CostModel
	if len(s.CostModels) > 0 {
		cm = s.CostModels[0]
	}
	specs := make([]Spec, 0, len(s.Families)*len(s.ProfileSizes))
	for _, fam := range s.Families {
		if fam == Figure1 {
			continue // fixed-size; no profiling rung to raise
		}
		for _, n := range s.ProfileSizes {
			sp := Spec{
				Family:       fam,
				N:            n,
				Workload:     w,
				CostModel:    cm,
				Packets:      s.Packets,
				CheckerLimit: s.CheckerLimit,
			}
			sp.Seed = deriveSeed(seed, sp)
			specs = append(specs, sp)
		}
	}
	return specs
}

// deriveSeed mixes the base seed with the scenario's identity (its
// Describe label minus the seed part) through FNV-1a + splitmix64.
// Identity-keyed derivation means "prefattach n=24 hotspot heavy" gets
// the same seed under base seed 1 in every suite that contains it.
func deriveSeed(base int64, sp Spec) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sp.Describe()))
	mixed := Mix64(uint64(base) ^ h.Sum64())
	// Keep seeds positive and nonzero: rand.NewSource accepts any
	// int64, but positive reads better in labels and never collides
	// with the "unset" zero.
	return int64(mixed%((1<<62)-1)) + 1
}

// Mix64 delegates to sim.Mix64 — the one splitmix64 finalizer every
// seed-derivation path shares (suite keying, the churn engine's
// schedule stream, the per-link drop schedules), so the paths can
// never silently diverge. The canonical definition lives in sim, the
// leaf package every seed consumer can import.
func Mix64(x uint64) uint64 { return sim.Mix64(x) }

var (
	suiteMu sync.RWMutex
	suites  = map[string]Suite{}
)

// RegisterSuite adds a named suite; duplicate names and empty axes are
// programmer errors and panic at init time (mirrors the experiments
// registry).
func RegisterSuite(s Suite) {
	if s.Name == "" || len(s.Families) == 0 || len(s.Sizes) == 0 ||
		len(s.Workloads) == 0 || len(s.CostModels) == 0 {
		panic("scenario: RegisterSuite needs a name and non-empty axes")
	}
	key := strings.ToLower(s.Name)
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if _, dup := suites[key]; dup {
		panic(fmt.Sprintf("scenario: duplicate suite %s", s.Name))
	}
	suites[key] = s
}

// LookupSuite finds a suite by name (case-insensitive).
func LookupSuite(name string) (Suite, bool) {
	suiteMu.RLock()
	defer suiteMu.RUnlock()
	s, ok := suites[strings.ToLower(name)]
	return s, ok
}

// SuiteNames lists the registered suite names sorted — for
// unknown-suite error messages and listings.
func SuiteNames() []string {
	all := Suites()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// Suites lists every registered suite sorted by name.
func Suites() []Suite {
	suiteMu.RLock()
	out := make([]Suite, 0, len(suites))
	for _, s := range suites {
		out = append(out, s)
	}
	suiteMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func init() {
	// smoke: the CI lane — small sizes, one cost model, finishes in
	// tens of seconds with the parallel checker.
	RegisterSuite(Suite{
		Name:        "smoke",
		Description: "CI smoke: 3 families × n∈{6,8} × 2 workloads, uniform costs",
		Families:    []Family{Random, PrefAttach, TwoTier},
		Sizes:       []int{6, 8},
		Workloads:   []Workload{WorkloadAllPairs, WorkloadHotspot},
		CostModels:  []CostModel{CostUniform},
	})
	// internet: the headline sweep — every Internet-like family under
	// every cost model and the asymmetric workloads. The deviation
	// search sweeps n∈{12,24}; above that the honest-profiling rungs
	// (n∈{48,100}) build and time the truthful profile only — the
	// delta-driven epoch engine made construction cheap enough that the
	// ceiling is now the search grid, not the build.
	RegisterSuite(Suite{
		Name:         "internet",
		Description:  "Internet-like families × all cost models × asymmetric workloads",
		Families:     []Family{PrefAttach, Waxman, TwoTier},
		Sizes:        []int{12, 24},
		Workloads:    []Workload{WorkloadAllPairs, WorkloadHotspot, WorkloadSparse},
		CostModels:   []CostModel{CostUniform, CostHeavyTailed, CostBimodal},
		ProfileSizes: []int{48, 100},
	})
	// grid: the constant-degree, high-diameter counterpoint. Sizes
	// stay ≤ 12: an all-pairs torus deviation search is ~10 s at n=9
	// and ~85 s at n=12 on one core, and n=16 would push a sweep past
	// the hour — larger grids wait on further search parallelization
	// (see ROADMAP open items).
	RegisterSuite(Suite{
		Name:        "grid",
		Description: "Torus grids under gossip and all-pairs demand",
		Families:    []Family{Torus},
		Sizes:       []int{9, 12},
		Workloads:   []Workload{WorkloadAllPairs, WorkloadGossip},
		CostModels:  []CostModel{CostUniform, CostBimodal},
	})
	// churn: the dynamics sweep — every scenario spans three epochs
	// with a join, a leave and occasional cost re-draws at each
	// boundary, and faithcheck replays the deviation grid per epoch
	// through the churn engine. n stays at 6: each scenario costs
	// roughly epochs× the static search (an all-pairs n=8 play is
	// ~60 ms, so a size-8 axis would push the blocking lane past ten
	// minutes on a 1-core runner — larger sizes ride the nightly lane
	// alongside the internet suite).
	RegisterSuite(Suite{
		Name:        "churn",
		Description: "Epoch dynamics: joins/leaves/cost re-draws across 3 epochs",
		Families:    []Family{Random, PrefAttach, TwoTier},
		Sizes:       []int{6},
		Workloads:   []Workload{WorkloadAllPairs, WorkloadHotspot},
		CostModels:  []CostModel{CostUniform},
		Churn:       Churn{Epochs: 3, Joins: 1, Leaves: 1, RedrawFraction: 0.25},
	})
	// loss: the failure-model sweep — every scenario plays under a 10%
	// bursty per-link drop rate, well under faithful.MaxTolerableLoss,
	// so honest runs must stay clean while the loss-exploiting
	// deviation family joins the search grid. Sizes stay at 6: the
	// retry envelope multiplies message latency, and the blocking lane
	// shares the churn lane's one-core budget.
	RegisterSuite(Suite{
		Name:        "loss",
		Description: "Lossy links: 10% bursty drops, retry envelope, loss-exploiting deviations",
		Families:    []Family{Random, PrefAttach, TwoTier},
		Sizes:       []int{6},
		Workloads:   []Workload{WorkloadAllPairs},
		CostModels:  []CostModel{CostUniform},
		Loss:        Loss{Rate: 0.1, Burst: 3},
	})
	// settle: the sharded-settlement sweep — every scenario clears its
	// execution phase through a 2-shard crash-tolerant 2PC with a
	// participant crash-restart injected per settlement, and the
	// shard-window deviation family joins the search grid. Sizes stay
	// at 6 for the same one-core-lane budget as churn and loss.
	RegisterSuite(Suite{
		Name:        "settle",
		Description: "Sharded settlement: 2 shards, participant crash-restarts, shard-window deviations",
		Families:    []Family{Random, TwoTier},
		Sizes:       []int{6},
		Workloads:   []Workload{WorkloadAllPairs},
		CostModels:  []CostModel{CostUniform},
		Shards:      Shards{K: 2, Crash: "participant"},
	})
	// workloads: one topology, every workload × cost model — isolates
	// the demand-matrix axis.
	RegisterSuite(Suite{
		Name:        "workloads",
		Description: "Fixed random topology, every workload × cost model",
		Families:    []Family{Random},
		Sizes:       []int{8},
		Workloads:   []Workload{WorkloadAllPairs, WorkloadHotspot, WorkloadSparse, WorkloadGossip},
		CostModels:  []CostModel{CostUniform, CostHeavyTailed, CostBimodal},
	})
}
