package scenario

import (
	"testing"

	"repro/internal/sim"
)

// TestDescribeLoss pins the loss rendering (it feeds seed keying, so
// the label format is part of the reproducibility contract).
func TestDescribeLoss(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 2, Loss: Loss{Rate: 0.1}}
	if got, want := sp.Describe(), "random n=6 loss=0.1 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	sp.Loss.Burst = 3
	if got, want := sp.Describe(), "random n=6 loss=0.1 burst=3 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	sp.Loss.SeedSalt = 0xbeef
	if got, want := sp.Describe(), "random n=6 loss=0.1 burst=3 losssalt=0xbeef seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	// A lossy spec composes with churn in one label.
	sp = Spec{Family: Random, N: 6, Seed: 2, Churn: Churn{Epochs: 3, Joins: 1}, Loss: Loss{Rate: 0.2}}
	if got, want := sp.Describe(), "random n=6 epochs=3 join=1 leave=0 loss=0.2 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	// The zero-value axis keeps the exact pre-loss label — every
	// existing suite's derived seeds depend on it.
	sp = Spec{Family: Random, N: 6, Seed: 2}
	if got, want := sp.Describe(), "random n=6 seed=2"; got != want {
		t.Errorf("zero-value Describe = %q, want %q", got, want)
	}
}

// TestLossZeroValueByteCompatible: a Spec without the axis must
// materialize exactly as pre-loss builds did — disabled Params.Loss,
// unchanged identity, unchanged derived seed.
func TestLossZeroValueByteCompatible(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 4}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Params.Loss.Enabled() || c.Params.Loss != (sim.LossModel{}) {
		t.Errorf("zero-value axis produced a live model: %+v", c.Params.Loss)
	}
	cfg := c.FaithfulConfig()
	if cfg.Loss.Enabled() {
		t.Errorf("zero-value axis leaked into FaithfulConfig: %+v", cfg.Loss)
	}
	// deriveSeed is keyed on Describe; the pinned values in
	// TestDeriveSeedPinned cover the rest.
	if got, want := deriveSeed(1, sp), int64(453723182315541180); sp.Workload == WorkloadAllPairs && got != want {
		t.Errorf("zero-value seed derivation changed: %d want %d", got, want)
	}
}

// TestLossModelDerivation: the schedule seed mixes Spec seed, package
// salt and the user's SeedSalt; epoch re-salting changes the schedule
// but epoch 0 equals the static model.
func TestLossModelDerivation(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 4, Loss: Loss{Rate: 0.1, Burst: 2}}
	m := sp.LossModel()
	if !m.Enabled() || m.Rate != 0.1 || m.Burst != 2 {
		t.Fatalf("LossModel = %+v", m)
	}
	if m.Seed != sim.Mix64(uint64(4)^lossSeedSalt) {
		t.Errorf("schedule seed %#x not derived from spec seed + salt", m.Seed)
	}
	// SeedSalt perturbs the schedule without touching the spec seed.
	salted := sp
	salted.Loss.SeedSalt = 99
	if salted.LossModel().Seed == m.Seed {
		t.Error("SeedSalt did not change the schedule seed")
	}
	// Same Spec ⇒ same model, always (the determinism contract).
	if sp.LossModel() != m {
		t.Error("LossModel not a pure function of the Spec")
	}
	// Epoch salting: epoch 0 static, later epochs fresh but stable.
	if sp.LossModelForEpoch(0) != m {
		t.Error("epoch 0 must replay the static schedule")
	}
	e1, e2 := sp.LossModelForEpoch(1), sp.LossModelForEpoch(2)
	if e1.Seed == m.Seed || e2.Seed == m.Seed || e1.Seed == e2.Seed {
		t.Errorf("epoch schedules must all differ: static=%#x e1=%#x e2=%#x", m.Seed, e1.Seed, e2.Seed)
	}
	if sp.LossModelForEpoch(1) != e1 {
		t.Error("epoch schedule not deterministic")
	}
	// A disabled axis yields the zero model at every epoch.
	off := Spec{Family: Random, N: 6, Seed: 4}
	if off.LossModelForEpoch(3) != (sim.LossModel{}) {
		t.Error("disabled axis produced a live epoch model")
	}
}

// TestLossMaterialized: Compile/Materialize thread the model into
// Params and FaithfulConfig.
func TestLossMaterialized(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 4, Loss: Loss{Rate: 0.15, Burst: 3}}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Params.Loss != sp.LossModel() {
		t.Errorf("Params.Loss = %+v, want %+v", c.Params.Loss, sp.LossModel())
	}
	if got := c.FaithfulConfig().Loss; got != sp.LossModel() {
		t.Errorf("FaithfulConfig.Loss = %+v, want %+v", got, sp.LossModel())
	}
}

// TestLossSuiteSpecs: the loss axis flows from the suite into every
// spec, distinguishes identities from the reliable counterparts, and
// the built-in loss suite compiles.
func TestLossSuiteSpecs(t *testing.T) {
	s, ok := LookupSuite("loss")
	if !ok {
		t.Fatal("loss suite not registered")
	}
	specs := s.Specs(1)
	if len(specs) == 0 {
		t.Fatal("loss suite empty")
	}
	for _, sp := range specs {
		if sp.Loss != s.Loss {
			t.Fatalf("%s: loss %+v, want %+v", sp.Describe(), sp.Loss, s.Loss)
		}
		if sp.Loss.Rate > 0.25 {
			t.Fatalf("%s: suite rate %g above the tolerable threshold", sp.Describe(), sp.Loss.Rate)
		}
		if _, err := sp.Compile(); err != nil {
			t.Fatalf("%s: %v", sp.Describe(), err)
		}
		reliable := sp
		reliable.Loss = Loss{}
		if sp.Describe() == reliable.Describe() {
			t.Fatalf("%s: lossy and reliable specs share an identity", sp.Describe())
		}
		if sp.Seed == deriveSeed(1, reliable) {
			t.Fatalf("%s: lossy and reliable specs derive the same seed", sp.Describe())
		}
	}
}

// TestMix64DelegatesToSim: the single-definition invariant — every
// seed-derivation path shares sim.Mix64.
func TestMix64DelegatesToSim(t *testing.T) {
	for _, x := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		if Mix64(x) != sim.Mix64(x) {
			t.Fatalf("Mix64(%#x) diverged from sim.Mix64", x)
		}
	}
}
