// Package scenario is the single place where experiment setups are
// constructed. A Spec declares a scenario — topology family × size ×
// cost model × flow workload × checker limit × pricing scheme × seed —
// and compiles deterministically into everything a run needs: the
// graph.Graph, the rational.Params, the plain/faithful core.System
// pair, a faithful.Config for honest protocol runs, and an
// fpss.ExecConfig template for execution-phase accounting. Experiments,
// benchmarks and the faithcheck/benchtab commands all route their
// setup through here instead of hand-rolling graphs and parameters.
//
// Determinism contract: a Spec is a pure function of its fields. Two
// compilations of the same Spec (in any process, on any build) yield
// identical graphs, traffic matrices and parameters, because every
// random draw comes from rand.NewSource(Seed) in a fixed order —
// structure first, then costs, then workload.
package scenario

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/rational"
	"repro/internal/settle"
	"repro/internal/sim"
)

// Family names a topology generator.
type Family string

// Topology families. The classic four predate the scenario layer; the
// Internet-like families (PrefAttach, Waxman, Torus, TwoTier) were
// added with it.
const (
	// Figure1 is the paper's fixed 6-node worked example (fixed costs;
	// N, CostModel and MaxCost must be left at their zero values).
	Figure1 Family = "figure1"
	// Clique is the complete graph on N nodes.
	Clique Family = "clique"
	// Ring is a single cycle on N nodes.
	Ring Family = "ring"
	// RingChords is a cycle plus ExtraEdges random chords.
	RingChords Family = "ring-chords"
	// Random is a random Hamiltonian cycle plus ExtraEdges chords
	// (graph.RandomBiconnected).
	Random Family = "random"
	// PrefAttach is a Barabási–Albert-style scale-free graph with
	// attachment degree Degree, biconnected-repaired.
	PrefAttach Family = "prefattach"
	// Waxman is the geometric random graph (nodes in the unit square,
	// distance-decaying edge probability), biconnected-repaired.
	Waxman Family = "waxman"
	// Torus is the rows×cols wrap-around grid; N must factor as
	// rows·cols with both ≥ 3.
	Torus Family = "torus"
	// TwoTier is the clustered "AS" topology: a core ring of cluster
	// heads, member cycles per cluster, random uplinks; N must factor
	// as clusters·size with clusters ≥ 3 and size ≥ 2.
	TwoTier Family = "twotier"
)

// Families lists every topology family, stable order.
func Families() []Family {
	return []Family{Figure1, Clique, Ring, RingChords, Random, PrefAttach, Waxman, Torus, TwoTier}
}

// CostModel names a per-node transit-cost distribution.
type CostModel string

// Cost models. All scale with Spec.MaxCost.
const (
	// CostDefault is the family's native distribution — uniform on
	// [1, MaxCost] for every generated family, the paper's fixed costs
	// for Figure1. It is the byte-compatibility mode: legacy families
	// delegate entirely to their classic constructors.
	CostDefault CostModel = ""
	// CostUniform draws uniformly from [1, MaxCost].
	CostUniform CostModel = "uniform"
	// CostHeavyTailed draws a discretized Pareto (min MaxCost/5, tail
	// index 1.3): a few very expensive carriers among many cheap ones.
	CostHeavyTailed CostModel = "heavy-tailed"
	// CostBimodal mixes honest/cheap nodes (uniform [1, MaxCost/3])
	// with a 20% expensive population around 20·MaxCost — the sharpest
	// VCG-pricing stress.
	CostBimodal CostModel = "bimodal"
)

// CostModels lists every named cost model, stable order.
func CostModels() []CostModel {
	return []CostModel{CostUniform, CostHeavyTailed, CostBimodal}
}

// Workload names an execution-phase demand matrix.
type Workload string

// Workloads.
const (
	// WorkloadDefault is all-pairs — the classic "everyone exchanges
	// one packet with everyone" demand of rational.DefaultParams.
	WorkloadDefault Workload = ""
	// WorkloadAllPairs sends Packets between every ordered pair.
	WorkloadAllPairs Workload = "all-pairs"
	// WorkloadHotspot routes everything through one seed-chosen hub:
	// every node sends to the hub and the hub replies to every node.
	WorkloadHotspot Workload = "hotspot"
	// WorkloadSparse samples ~2·N distinct random ordered pairs.
	WorkloadSparse Workload = "sparse"
	// WorkloadGossip has every node send to Degree (default 3) random
	// distinct peers.
	WorkloadGossip Workload = "gossip"
)

// Workloads lists every named workload, stable order.
func Workloads() []Workload {
	return []Workload{WorkloadAllPairs, WorkloadHotspot, WorkloadSparse, WorkloadGossip}
}

// Churn configures the epoch-based dynamics engine (internal/churn):
// how many construction+execution rounds a scenario plays and how the
// membership evolves between them. The zero value means static —
// exactly one epoch — so every pre-churn Spec compiles byte-identically
// to before. Compile itself never reads Churn; the churn engine builds
// epoch 0 through Compile and evolves later epochs from its own
// seed-derived schedule stream.
type Churn struct {
	// Epochs is the number of epochs (construction phase + execution
	// phase rounds). 0 or 1 means static.
	Epochs int
	// Joins / Leaves are the node arrivals/departures drawn at each
	// epoch boundary. Leaves are capped so the population never falls
	// below MinN.
	Joins, Leaves int
	// RedrawFraction is the probability that a surviving node's
	// transit cost re-draws from the Spec's cost model at a boundary
	// (type dynamics on top of membership dynamics).
	RedrawFraction float64
	// MinN floors the population (default 4) so biconnectivity repair
	// always has material to work with.
	MinN int
}

// Dynamic reports whether the configuration actually spans epochs.
func (c Churn) Dynamic() bool { return c.Epochs > 1 }

// Loss configures the lossy-links failure axis (sim.LossModel): seeded
// per-link drops with the protocol layers' bounded retry envelope. The
// zero value means a reliable network, so every pre-loss Spec compiles
// byte-identically to before. Like Churn, the axis renders into
// Describe — the scenario's identity — whenever it is active.
type Loss struct {
	// Rate is the per-attempt drop probability in [0, 1). Honest runs
	// stay effectively reliable up to faithful.MaxTolerableLoss.
	Rate float64
	// Burst is the mean loss-burst length (Gilbert–Elliott); <= 1
	// means independent drops. The stationary rate stays Rate.
	Burst float64
	// SeedSalt perturbs the drop-schedule seed without changing the
	// scenario's topology/workload draws — sweeping it replays the same
	// scenario under fresh loss schedules.
	SeedSalt uint64
}

// Enabled reports whether the axis actually drops anything.
func (l Loss) Enabled() bool { return l.Rate > 0 }

// lossSeedSalt decorrelates the drop-schedule stream from the Spec's
// structural stream ("loss!" in ASCII), exactly as the churn engine
// salts its schedule stream.
const lossSeedSalt = 0x6c6f737321

// Shards configures the sharded-settlement failure axis
// (internal/settle): the trusted bank splits into K shards and every
// execution phase clears through the crash-tolerant two-phase commit,
// optionally under a named crash-fault plan. The zero value keeps the
// classic singleton bank, so every pre-shard Spec compiles
// byte-identically to before. An enabled axis also unlocks the
// shard-window deviation family in the search catalogue.
type Shards struct {
	// K is the shard count; 0 disables the axis.
	K int
	// Crash names the crash-fault plan injected into every settlement
	// run: "" (no faults), "coordinator", "participant" or "recovery"
	// (settle.Plans).
	Crash string
	// SeedSalt perturbs the routing/crash-schedule seed without
	// changing the scenario's topology/workload draws — sweeping it
	// replays the same scenario under fresh shard routing and crash
	// timings.
	SeedSalt uint64
}

// Enabled reports whether the settlement is actually sharded.
func (sh Shards) Enabled() bool { return sh.K > 0 }

// validate rejects axis combinations that would silently do nothing.
func (sh Shards) validate() error {
	if sh.K < 0 {
		return fmt.Errorf("shards: K must be >= 0, got %d", sh.K)
	}
	if !settle.ValidPlan(sh.Crash) {
		known := make([]string, 0, len(settle.Plans))
		for _, p := range settle.Plans {
			if p != settle.PlanNone {
				known = append(known, p)
			}
		}
		return fmt.Errorf("shards: unknown crash plan %q (known: %v)", sh.Crash, known)
	}
	if sh.Crash != settle.PlanNone && !sh.Enabled() {
		return fmt.Errorf("shards: crash plan %q needs K > 0", sh.Crash)
	}
	return nil
}

// shardSeedSalt decorrelates the shard routing/crash stream from the
// Spec's structural stream ("shard" in ASCII), mirroring lossSeedSalt.
const shardSeedSalt = 0x7368617264

// Spec declares a scenario. The zero value of most fields means "the
// classic default", so the zero Spec (plus a Family) reproduces the
// setups the experiments used before the scenario layer existed.
type Spec struct {
	// Family selects the topology generator (required).
	Family Family
	// N is the node count. Required for every family except Figure1
	// (fixed at 6). Torus and TwoTier additionally require N to factor
	// (see the family docs).
	N int
	// ExtraEdges is the chord count for Random/RingChords; 0 means the
	// family default N/2 and NoExtraEdges means exactly zero chords
	// (see Chords).
	ExtraEdges int
	// Degree is the attachment degree for PrefAttach (default 2) and
	// the per-node fan-out for WorkloadGossip (default 3).
	Degree int
	// MaxCost scales the cost model (default 10).
	MaxCost graph.Cost
	// CostModel selects the transit-cost distribution.
	CostModel CostModel
	// Workload selects the demand matrix.
	Workload Workload
	// Packets is the per-flow packet count (default 1).
	Packets int64
	// CheckerLimit caps checkers per principal in the faithful
	// protocol (0 = every neighbor, the paper's assignment).
	CheckerLimit int
	// Scheme selects the plain-FPSS pricing rule (0 = VCG).
	Scheme fpss.PricingScheme
	// Churn selects the epoch dynamics (zero value = static). Compile
	// ignores it; internal/churn consumes it.
	Churn Churn
	// Loss selects the lossy-links failure axis (zero value = reliable
	// network). Materialize renders it into Params.Loss; the churn
	// engine re-salts the schedule per epoch (LossModelForEpoch).
	Loss Loss
	// Shards selects the sharded-settlement failure axis (zero value =
	// singleton bank). Materialize renders it into Params.Settle; the
	// churn engine re-salts the seed per epoch (SettleOptionsForEpoch).
	Shards Shards
	// Seed drives every random draw of Compile.
	Seed int64
}

// Compiled is a Spec materialized: the one artifact every consumer
// shares. Graph and Params are read-only after compilation.
type Compiled struct {
	Spec   Spec
	Graph  *graph.Graph
	Params rational.Params
}

// Compile materializes the Spec from its own seed. See the package
// comment for the determinism contract.
func (s Spec) Compile() (*Compiled, error) {
	return s.BuildWith(rand.New(rand.NewSource(s.Seed)))
}

// BuildWith materializes the Spec drawing from a caller-owned rng
// stream instead of Seed. Experiments that thread one rng through a
// sweep (trial after trial, size after size) use this form: with
// CostModel/Workload at their defaults the rng consumption is exactly
// what the classic constructors performed, so pre-scenario tables stay
// byte-identical.
func (s Spec) BuildWith(rng *rand.Rand) (*Compiled, error) {
	if err := s.Shards.validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.describeTopology(), err)
	}
	g, err := s.buildGraph(rng)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.describeTopology(), err)
	}
	traffic, err := s.buildTraffic(g.N(), rng)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.describeTopology(), err)
	}
	return s.Materialize(g, traffic), nil
}

// CostFunc exposes the Spec's transit-cost distribution — the churn
// engine draws joiner costs and boundary re-draws from the same model
// the static compilation used.
func (s Spec) CostFunc() (graph.CostFn, error) { return s.costFn() }

// TrafficFor builds the Spec's workload demand matrix for an arbitrary
// population size, drawing from the supplied rng. The churn engine
// calls this once per epoch: membership changes re-shape the matrix
// (a departed hotspot hub must be re-drawn among the new members), so
// the workload is a per-epoch artifact, not a compile-time one.
func (s Spec) TrafficFor(n int, rng *rand.Rand) (fpss.Traffic, error) {
	return s.buildTraffic(n, rng)
}

// Materialize wraps an externally built graph and demand matrix in a
// Compiled carrying this Spec's economic parameters, exactly as
// BuildWith would have. The churn engine materializes each evolved
// epoch through here so per-epoch systems share one parameter path
// with static scenarios.
func (s Spec) Materialize(g *graph.Graph, traffic fpss.Traffic) *Compiled {
	params := rational.DefaultParams(g)
	params.Traffic = traffic
	params.CheckerLimit = s.CheckerLimit
	if s.Scheme != 0 {
		params.Scheme = s.Scheme
	}
	params.Loss = s.LossModel()
	params.Settle = s.SettleOptions()
	return &Compiled{Spec: s, Graph: g, Params: params}
}

// LossModel renders the Spec's loss axis into the simulator model. The
// schedule seed mixes the Spec seed with the loss salt (and the user's
// SeedSalt), so two specs differing only in Seed see different drop
// schedules while the same Spec always replays the same one. A
// disabled axis yields the zero model.
func (s Spec) LossModel() sim.LossModel {
	if !s.Loss.Enabled() {
		return sim.LossModel{}
	}
	return sim.LossModel{
		Rate:  s.Loss.Rate,
		Burst: s.Loss.Burst,
		Seed:  sim.Mix64(uint64(s.Seed) ^ lossSeedSalt ^ s.Loss.SeedSalt),
	}
}

// LossModelForEpoch re-salts the drop schedule for a churn epoch, so
// boundary re-runs don't replay epoch 0's exact drops. Epoch 0 is the
// static model itself — a static scenario and a churn scenario's first
// epoch see identical schedules.
func (s Spec) LossModelForEpoch(epoch int) sim.LossModel {
	m := s.LossModel()
	if epoch > 0 && m.Enabled() {
		m.Seed = sim.Mix64(m.Seed ^ uint64(epoch))
	}
	return m
}

// SettleOptions renders the Spec's shard axis into the settlement
// engine's options. The seed mixes the Spec seed with the shard salt
// (and the user's SeedSalt), so two specs differing only in Seed
// route accounts and time crashes differently while the same Spec
// always replays the same settlement. A disabled axis yields the zero
// options — the singleton bank.
func (s Spec) SettleOptions() settle.Options {
	if !s.Shards.Enabled() {
		return settle.Options{}
	}
	return settle.Options{
		Shards: s.Shards.K,
		Plan:   s.Shards.Crash,
		Seed:   sim.Mix64(uint64(s.Seed) ^ shardSeedSalt ^ s.Shards.SeedSalt),
	}
}

// SettleOptionsForEpoch re-salts the settlement seed for a churn
// epoch: fresh home-shard routing and crash timings per epoch, exactly
// as LossModelForEpoch re-draws the drop schedule. Epoch 0 keeps the
// static derivation.
func (s Spec) SettleOptionsForEpoch(epoch int) settle.Options {
	o := s.SettleOptions()
	if epoch > 0 && o.Enabled() {
		o.Seed = sim.Mix64(o.Seed ^ uint64(epoch))
	}
	return o
}

// NoExtraEdges is the Spec.ExtraEdges sentinel for "exactly zero
// chords" — the zero value selects the family default N/2 instead.
const NoExtraEdges = -1

// Chords converts a literal chord count into a Spec.ExtraEdges value,
// mapping 0 onto NoExtraEdges. Sweeps that draw chord counts from an
// rng (which may legitimately draw 0) thread them through here.
func Chords(k int) int {
	if k == 0 {
		return NoExtraEdges
	}
	return k
}

// maxCost returns the cost scale, defaulted.
func (s Spec) maxCost() graph.Cost {
	if s.MaxCost > 0 {
		return s.MaxCost
	}
	return 10
}

// costFn maps the CostModel onto a graph.CostFn; nil means "let the
// family's constructor draw its native uniform costs".
func (s Spec) costFn() (graph.CostFn, error) {
	max := s.maxCost()
	switch s.CostModel {
	case CostDefault, CostUniform:
		return graph.UniformCost(max), nil
	case CostHeavyTailed:
		min := max / 5
		if min < 1 {
			min = 1
		}
		return graph.HeavyTailedCost(min, 1.3), nil
	case CostBimodal:
		cheap := max / 3
		if cheap < 1 {
			cheap = 1
		}
		return graph.BimodalCost(cheap, 20*max, 0.2), nil
	default:
		return nil, fmt.Errorf("unknown cost model %q", s.CostModel)
	}
}

// buildGraph draws the topology and costs. Legacy families with the
// default cost model delegate wholesale to their classic constructors
// (identical rng stream = byte-identical graphs); non-default cost
// models re-draw the cost vector afterwards.
func (s Spec) buildGraph(rng *rand.Rand) (*graph.Graph, error) {
	extra := s.ExtraEdges
	switch {
	case extra < 0:
		extra = 0
	case extra == 0:
		extra = s.N / 2
	}
	switch s.Family {
	case Figure1:
		if s.N != 0 && s.N != 6 {
			return nil, fmt.Errorf("figure1 is fixed at n=6, got n=%d", s.N)
		}
		if s.CostModel != CostDefault {
			return nil, fmt.Errorf("figure1 has fixed paper costs; cost model %q not applicable", s.CostModel)
		}
		return graph.Figure1(), nil
	case Clique:
		if s.N < 3 {
			return nil, fmt.Errorf("clique needs n >= 3, got %d", s.N)
		}
		cost, err := s.costFn()
		if err != nil {
			return nil, err
		}
		costs := make([]graph.Cost, s.N)
		for i := range costs {
			costs[i] = cost(rng)
		}
		return graph.Clique(costs)
	case Ring:
		return s.recost(rng, func() (*graph.Graph, error) { return graph.Ring(s.N, s.maxCost(), rng) })
	case RingChords:
		return s.recost(rng, func() (*graph.Graph, error) {
			return graph.RingWithChords(s.N, extra, s.maxCost(), rng)
		})
	case Random:
		return s.recost(rng, func() (*graph.Graph, error) {
			return graph.RandomBiconnected(s.N, extra, s.maxCost(), rng)
		})
	case PrefAttach:
		cost, err := s.costFn()
		if err != nil {
			return nil, err
		}
		m := s.Degree
		if m == 0 {
			m = 2
		}
		return graph.PreferentialAttachment(s.N, m, cost, rng)
	case Waxman:
		cost, err := s.costFn()
		if err != nil {
			return nil, err
		}
		// Fixed shape parameters: moderately dense with a bias toward
		// short links, the classic Waxman (0.6, 0.25) regime.
		return graph.Waxman(s.N, 0.6, 0.25, cost, rng)
	case Torus:
		cost, err := s.costFn()
		if err != nil {
			return nil, err
		}
		rows, cols, err := torusDims(s.N)
		if err != nil {
			return nil, err
		}
		return graph.Torus(rows, cols, cost, rng)
	case TwoTier:
		cost, err := s.costFn()
		if err != nil {
			return nil, err
		}
		clusters, size, err := twoTierDims(s.N)
		if err != nil {
			return nil, err
		}
		return graph.TwoTier(clusters, size, cost, rng)
	case "":
		return nil, fmt.Errorf("no topology family set")
	default:
		return nil, fmt.Errorf("unknown topology family %q (known: %v)", s.Family, Families())
	}
}

// recost runs a classic constructor (which draws its own uniform
// costs) and, for non-default cost models only, overwrites the cost
// vector with fresh model draws. The default path leaves the rng
// stream exactly as the pre-scenario code consumed it.
func (s Spec) recost(rng *rand.Rand, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	g, err := build()
	if err != nil {
		return nil, err
	}
	if s.CostModel == CostDefault {
		return g, nil
	}
	cost, err := s.costFn()
	if err != nil {
		return nil, err
	}
	for i := 0; i < g.N(); i++ {
		if err := g.SetCost(graph.NodeID(i), cost(rng)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// torusDims factors n into rows×cols with both ≥ 3, preferring the
// squarest split.
func torusDims(n int) (rows, cols int, err error) {
	for r := intSqrt(n); r >= 3; r-- {
		if n%r == 0 && n/r >= 3 {
			return r, n / r, nil
		}
	}
	return 0, 0, fmt.Errorf("torus needs n = rows·cols with rows, cols >= 3; n=%d does not factor", n)
}

// twoTierDims factors n into clusters×size with clusters ≥ 3 and
// size ≥ 2, preferring the smallest viable cluster count (few big
// clusters look most AS-like).
func twoTierDims(n int) (clusters, size int, err error) {
	for c := 3; c*2 <= n; c++ {
		if n%c == 0 {
			return c, n / c, nil
		}
	}
	return 0, 0, fmt.Errorf("two-tier needs n = clusters·size with clusters >= 3, size >= 2; n=%d does not factor", n)
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// buildTraffic draws the workload demand matrix. All-pairs consumes no
// randomness (byte-compatibility with rational.DefaultParams); the
// randomized workloads draw from rng after the topology.
func (s Spec) buildTraffic(n int, rng *rand.Rand) (fpss.Traffic, error) {
	packets := s.Packets
	if packets <= 0 {
		packets = 1
	}
	switch s.Workload {
	case WorkloadDefault, WorkloadAllPairs:
		return fpss.AllToAllTraffic(n, packets), nil
	case WorkloadHotspot:
		hub := graph.NodeID(rng.Intn(n))
		t := make(fpss.Traffic, 2*(n-1))
		for i := 0; i < n; i++ {
			id := graph.NodeID(i)
			if id == hub {
				continue
			}
			t[[2]graph.NodeID{id, hub}] = packets
			t[[2]graph.NodeID{hub, id}] = packets
		}
		return t, nil
	case WorkloadSparse:
		want := 2 * n
		if max := n * (n - 1); want > max {
			want = max
		}
		t := make(fpss.Traffic, want)
		for len(t) < want {
			src := graph.NodeID(rng.Intn(n))
			dst := graph.NodeID(rng.Intn(n))
			if src == dst {
				continue
			}
			t[[2]graph.NodeID{src, dst}] = packets
		}
		return t, nil
	case WorkloadGossip:
		fanout := s.Degree
		if fanout == 0 {
			fanout = 3
		}
		if fanout > n-1 {
			fanout = n - 1
		}
		t := make(fpss.Traffic, n*fanout)
		for i := 0; i < n; i++ {
			src := graph.NodeID(i)
			sent := 0
			for sent < fanout {
				dst := graph.NodeID(rng.Intn(n))
				if dst == src {
					continue
				}
				key := [2]graph.NodeID{src, dst}
				if _, dup := t[key]; dup {
					continue
				}
				t[key] = packets
				sent++
			}
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (known: %v)", s.Workload, Workloads())
	}
}

// Systems returns the plain and faithful core.System pair playing this
// scenario — the two sides every faithfulness comparison needs.
func (c *Compiled) Systems() (*rational.PlainSystem, *rational.FaithfulSystem) {
	return rational.Systems(c.Graph, c.Params)
}

// PlainSystem returns the original-FPSS side alone.
func (c *Compiled) PlainSystem() *rational.PlainSystem {
	p, _ := rational.Systems(c.Graph, c.Params)
	return p
}

// FaithfulSystem returns the extended-specification side alone.
func (c *Compiled) FaithfulSystem() *rational.FaithfulSystem {
	_, f := rational.Systems(c.Graph, c.Params)
	return f
}

// FaithfulConfig returns an honest-run faithful.Config for the
// scenario: same graph, traffic and economic parameters the
// FaithfulSystem plays deviations against.
func (c *Compiled) FaithfulConfig() faithful.Config {
	return faithful.Config{
		Graph:              c.Graph,
		Traffic:            c.Params.Traffic,
		DeliveryValue:      c.Params.DeliveryValue,
		UndeliveredPenalty: c.Params.UndeliveredPenalty,
		NonProgressPenalty: c.Params.NonProgressPenalty,
		Epsilon:            c.Params.Epsilon,
		CheckerLimit:       c.Params.CheckerLimit,
		Loss:               c.Params.Loss,
	}
}

// ExecConfig returns an execution-phase accounting template: true
// costs, traffic and utility parameters filled in, tables left to the
// caller.
func (c *Compiled) ExecConfig() fpss.ExecConfig {
	n := c.Graph.N()
	trueCosts := make(fpss.CostTable, n)
	for i := 0; i < n; i++ {
		trueCosts[graph.NodeID(i)] = c.Graph.Cost(graph.NodeID(i))
	}
	return fpss.ExecConfig{
		TrueCosts:          trueCosts,
		Traffic:            c.Params.Traffic,
		DeliveryValue:      c.Params.DeliveryValue,
		UndeliveredPenalty: c.Params.UndeliveredPenalty,
		Scheme:             c.Params.Scheme,
	}
}

// describeTopology is the topology half of Describe (used in errors,
// where workload/seed may not have been reached yet).
func (s Spec) describeTopology() string {
	fam := string(s.Family)
	if fam == "" {
		fam = "<none>"
	}
	if s.Family == Figure1 {
		return "figure1"
	}
	return fmt.Sprintf("%s n=%d", fam, s.N)
}

// Describe renders the Spec as a stable one-line label, e.g.
// "prefattach n=24 costs=heavy-tailed workload=hotspot seed=7".
func (s Spec) Describe() string {
	parts := []string{s.describeTopology()}
	if s.CostModel != CostDefault {
		parts = append(parts, "costs="+string(s.CostModel))
	}
	if s.Workload != WorkloadDefault {
		parts = append(parts, "workload="+string(s.Workload))
	}
	if s.CheckerLimit > 0 {
		parts = append(parts, fmt.Sprintf("checkers=%d", s.CheckerLimit))
	}
	if s.Scheme == fpss.SchemeDeclaredCost {
		parts = append(parts, "scheme=declared-cost")
	}
	if s.Churn.Dynamic() {
		// Every Churn field that changes the timeline must render here:
		// Describe is the scenario's identity for suite seed derivation
		// and dedup, so an omitted field would let behaviorally distinct
		// specs collide. %g keeps the full RedrawFraction precision.
		churn := fmt.Sprintf("epochs=%d join=%d leave=%d", s.Churn.Epochs, s.Churn.Joins, s.Churn.Leaves)
		if s.Churn.RedrawFraction > 0 {
			churn += fmt.Sprintf(" redraw=%g", s.Churn.RedrawFraction)
		}
		if s.Churn.MinN > 0 {
			churn += fmt.Sprintf(" min=%d", s.Churn.MinN)
		}
		parts = append(parts, churn)
	}
	if s.Loss.Enabled() {
		// Same identity rule as Churn: every loss field that changes the
		// drop schedule renders, so distinct lossy specs never collide.
		loss := fmt.Sprintf("loss=%g", s.Loss.Rate)
		if s.Loss.Burst > 1 {
			loss += fmt.Sprintf(" burst=%g", s.Loss.Burst)
		}
		if s.Loss.SeedSalt != 0 {
			loss += fmt.Sprintf(" losssalt=%#x", s.Loss.SeedSalt)
		}
		parts = append(parts, loss)
	}
	if s.Shards.Enabled() {
		// Same identity rule again: every shard field that changes the
		// settlement renders, so distinct sharded specs never collide.
		sh := fmt.Sprintf("shards=%d", s.Shards.K)
		if s.Shards.Crash != settle.PlanNone {
			sh += " crash=" + s.Shards.Crash
		}
		if s.Shards.SeedSalt != 0 {
			sh += fmt.Sprintf(" shardsalt=%#x", s.Shards.SeedSalt)
		}
		parts = append(parts, sh)
	}
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	return strings.Join(parts, " ")
}

// ParseFamily resolves a user-supplied family name (faithcheck flags).
func ParseFamily(name string) (Family, error) {
	f := Family(strings.ToLower(strings.TrimSpace(name)))
	for _, known := range Families() {
		if f == known {
			return f, nil
		}
	}
	return "", fmt.Errorf("unknown topology %q (known: %v)", name, Families())
}

// ParseWorkload resolves a user-supplied workload name.
func ParseWorkload(name string) (Workload, error) {
	w := Workload(strings.ToLower(strings.TrimSpace(name)))
	if w == WorkloadDefault {
		return WorkloadAllPairs, nil
	}
	for _, known := range Workloads() {
		if w == known {
			return w, nil
		}
	}
	return "", fmt.Errorf("unknown workload %q (known: %v)", name, Workloads())
}

// ParseCostModel resolves a user-supplied cost-model name.
func ParseCostModel(name string) (CostModel, error) {
	m := CostModel(strings.ToLower(strings.TrimSpace(name)))
	if m == CostDefault {
		return CostDefault, nil
	}
	for _, known := range CostModels() {
		if m == known {
			return m, nil
		}
	}
	return "", fmt.Errorf("unknown cost model %q (known: %v)", name, CostModels())
}
