package scenario

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDeriveSeedPinned is the regression guard around the FNV-1a +
// splitmix64 suite keying: the derived per-scenario seeds are part of
// the reproducibility contract (every committed sweep output depends
// on them), so any change to the keying shows up here as an exact
// mismatch, not as silently different sweeps.
func TestDeriveSeedPinned(t *testing.T) {
	cases := []struct {
		base int64
		sp   Spec
		want int64
	}{
		{1, Spec{Family: Random, N: 8, Workload: WorkloadAllPairs, CostModel: CostUniform}, 453723182315541180},
		{1, Spec{Family: PrefAttach, N: 24, Workload: WorkloadHotspot, CostModel: CostHeavyTailed}, 77934866617195956},
		{1, Spec{Family: Figure1}, 4590127154507915066},
		{5, Spec{Family: Random, N: 8, Workload: WorkloadAllPairs, CostModel: CostUniform}, 2623412173047557260},
		{5, Spec{Family: PrefAttach, N: 24, Workload: WorkloadHotspot, CostModel: CostHeavyTailed}, 993171768912770208},
		{5, Spec{Family: Figure1}, 3646928281342549540},
	}
	for _, tc := range cases {
		if got := deriveSeed(tc.base, tc.sp); got != tc.want {
			t.Errorf("deriveSeed(%d, %q) = %d, want %d (keying changed?)", tc.base, tc.sp.Describe(), got, tc.want)
		}
	}
}

// TestSharedSpecSeedsAcrossSuites: suite membership must not leak into
// the seeds. Two suites sharing a spec derive it the same seed under
// the same base (identity keying), and the *other* specs of each suite
// still get seeds independent of one another — no positional coupling.
func TestSharedSpecSeedsAcrossSuites(t *testing.T) {
	a := Suite{Name: "a", Families: []Family{Random, PrefAttach, Waxman}, Sizes: []int{8},
		Workloads: []Workload{WorkloadAllPairs}, CostModels: []CostModel{CostUniform}}
	b := Suite{Name: "b", Families: []Family{Waxman}, Sizes: []int{8},
		Workloads: []Workload{WorkloadHotspot, WorkloadAllPairs}, CostModels: []CostModel{CostUniform}}
	sa, sb := a.Specs(9), b.Specs(9)
	seed := func(specs []Spec, fam Family, w Workload) int64 {
		for _, sp := range specs {
			if sp.Family == fam && sp.Workload == w {
				return sp.Seed
			}
		}
		t.Fatalf("spec %s/%s missing", fam, w)
		return 0
	}
	// The shared scenario: same identity, same base ⇒ same seed, even
	// though it sits at different positions in the two suites.
	if x, y := seed(sa, Waxman, WorkloadAllPairs), seed(sb, Waxman, WorkloadAllPairs); x != y {
		t.Errorf("shared spec derives different seeds across suites: %d vs %d", x, y)
	}
	// Distinct identities never collide within or across the suites.
	seen := make(map[int64]string)
	for _, sp := range append(append([]Spec{}, sa...), sb...) {
		key := sp.Describe()
		if prev, dup := seen[sp.Seed]; dup && prev != key {
			t.Errorf("seed %d shared by %q and %q", sp.Seed, prev, key)
		}
		seen[sp.Seed] = key
	}
}

// TestChurnSuiteSpecs: the churn axis flows from the suite into every
// spec, shows up in the identity label (so churn scenarios never
// collide with their static counterparts), and the built-in churn
// suite's epoch-0 scenarios compile.
func TestChurnSuiteSpecs(t *testing.T) {
	s, ok := LookupSuite("churn")
	if !ok {
		t.Fatal("churn suite not registered")
	}
	specs := s.Specs(1)
	if len(specs) == 0 {
		t.Fatal("churn suite empty")
	}
	for _, sp := range specs {
		if !sp.Churn.Dynamic() {
			t.Fatalf("%s: churn axis not applied", sp.Describe())
		}
		if sp.Churn != s.Churn {
			t.Fatalf("%s: churn %+v, want %+v", sp.Describe(), sp.Churn, s.Churn)
		}
	}
	// The identity label distinguishes dynamic from static.
	static := specs[0]
	static.Churn = Churn{}
	if specs[0].Describe() == static.Describe() {
		t.Error("churn spec and static spec share an identity label")
	}
	if specs[0].Seed == deriveSeed(1, static) {
		t.Error("churn spec and static spec derive the same seed")
	}
}

// TestDescribeChurn pins the churn rendering (it feeds seed keying).
func TestDescribeChurn(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Seed: 2, Churn: Churn{Epochs: 3, Joins: 1, Leaves: 2}}
	if got, want := sp.Describe(), "random n=6 epochs=3 join=1 leave=2 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	sp.Churn.RedrawFraction = 0.25
	if got, want := sp.Describe(), "random n=6 epochs=3 join=1 leave=2 redraw=0.25 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	// Every timeline-shaping field renders at full precision — distinct
	// dynamics must never share an identity (they key suite seeds).
	sp.Churn.RedrawFraction = 0.251
	sp.Churn.MinN = 5
	if got, want := sp.Describe(), "random n=6 epochs=3 join=1 leave=2 redraw=0.251 min=5 seed=2"; got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
	// Static specs keep the exact pre-churn label — the derived seeds
	// of every existing suite depend on it.
	sp.Churn = Churn{Epochs: 1}
	if got, want := sp.Describe(), "random n=6 seed=2"; got != want {
		t.Errorf("static Describe = %q, want %q", got, want)
	}
}

// TestMaterializeMatchesBuildWith: the churn engine's per-epoch
// materialization is the same parameter path Compile uses.
func TestMaterializeMatchesBuildWith(t *testing.T) {
	sp := Spec{Family: Random, N: 6, CheckerLimit: 2, Seed: 4}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m := sp.Materialize(c.Graph, c.Params.Traffic)
	if !reflect.DeepEqual(m.Params, c.Params) {
		t.Errorf("Materialize params %+v != Compile params %+v", m.Params, c.Params)
	}
	if m.Graph != c.Graph {
		t.Error("Materialize must wrap the supplied graph")
	}
}

// TestTrafficForAndCostFunc: the exported churn-facing helpers follow
// the same distributions the compiler uses.
func TestTrafficForAndCostFunc(t *testing.T) {
	sp := Spec{Family: Random, N: 6, Workload: WorkloadGossip, Seed: 7}
	tr, err := sp.TrafficFor(10, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 10*3 {
		t.Errorf("gossip traffic for n=10 has %d flows, want 30", len(tr))
	}
	sp.CostModel = CostBimodal
	fn, err := sp.CostFunc()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if c := fn(rng); c < 1 {
			t.Fatalf("cost draw %d below 1", c)
		}
	}
	sp.CostModel = "martian"
	if _, err := sp.CostFunc(); err == nil {
		t.Error("unknown cost model accepted")
	}
	sp.CostModel = CostDefault
	sp.Workload = "flood"
	if _, err := sp.TrafficFor(5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown workload accepted")
	}
}
