package scenario

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
)

// validSpecs is a representative spread across every axis: all nine
// families, all three named cost models, all four workloads.
func validSpecs() []Spec {
	return []Spec{
		{Family: Figure1, Seed: 1},
		{Family: Clique, N: 5, CostModel: CostHeavyTailed, Seed: 2},
		{Family: Ring, N: 7, Workload: WorkloadHotspot, Seed: 3},
		{Family: RingChords, N: 9, ExtraEdges: 3, CostModel: CostBimodal, Seed: 4},
		{Family: Random, N: 8, Workload: WorkloadSparse, CostModel: CostUniform, Seed: 5},
		{Family: PrefAttach, N: 16, Degree: 2, Workload: WorkloadGossip, CostModel: CostHeavyTailed, Seed: 6},
		{Family: Waxman, N: 14, Workload: WorkloadHotspot, CostModel: CostBimodal, Seed: 7},
		{Family: Torus, N: 12, Workload: WorkloadGossip, Seed: 8},
		{Family: TwoTier, N: 12, Workload: WorkloadSparse, CostModel: CostHeavyTailed, Seed: 9},
	}
}

func TestCompileEveryFamilyWorkloadCostModel(t *testing.T) {
	for _, sp := range validSpecs() {
		t.Run(sp.Describe(), func(t *testing.T) {
			c, err := sp.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if !c.Graph.IsBiconnected() {
				t.Fatalf("compiled graph not biconnected (n=%d)", c.Graph.N())
			}
			if len(c.Params.Traffic) == 0 {
				t.Fatal("compiled scenario has no traffic")
			}
			for flow := range c.Params.Traffic {
				if flow[0] == flow[1] {
					t.Fatalf("self-flow %v in workload %q", flow, sp.Workload)
				}
			}
			if c.Params.DeliveryValue <= 0 || c.Params.NonProgressPenalty <= 0 {
				t.Fatalf("economic defaults missing: %+v", c.Params)
			}
		})
	}
}

// TestCompileDeterministic compiles each spec twice and demands
// identical graphs, costs, traffic and parameters — the property that
// lets a one-line Spec stand in for a scenario in reports and repros.
func TestCompileDeterministic(t *testing.T) {
	for _, sp := range validSpecs() {
		a, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sp.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Graph.Edges(), b.Graph.Edges()) {
			t.Errorf("%s: edges differ across compilations", sp.Describe())
		}
		if !reflect.DeepEqual(a.Graph.Costs(), b.Graph.Costs()) {
			t.Errorf("%s: costs differ across compilations", sp.Describe())
		}
		if !reflect.DeepEqual(a.Params.Traffic, b.Params.Traffic) {
			t.Errorf("%s: traffic differs across compilations", sp.Describe())
		}
	}
}

func TestCompileRejectsInvalidSpecs(t *testing.T) {
	bad := []Spec{
		{},                       // no family
		{Family: "mobius", N: 8}, // unknown family
		{Family: Random, N: 2},   // too small
		{Family: Clique, N: 2},   // too small
		{Family: Torus, N: 7},    // prime: no rows×cols factoring
		{Family: TwoTier, N: 5},  // no clusters·size factoring
		{Family: Figure1, N: 9},  // figure1 is fixed-size
		{Family: Figure1, CostModel: CostBimodal},   // figure1 costs are fixed
		{Family: Random, N: 8, Workload: "flood"},   // unknown workload
		{Family: Random, N: 8, CostModel: "normal"}, // unknown cost model
	}
	for _, sp := range bad {
		if c, err := sp.Compile(); err == nil {
			t.Errorf("spec %+v compiled (n=%d); want error", sp, c.Graph.N())
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	const n = 8
	cases := []struct {
		w     Workload
		flows int
	}{
		{WorkloadAllPairs, n * (n - 1)},
		{WorkloadHotspot, 2 * (n - 1)},
		{WorkloadSparse, 2 * n},
		{WorkloadGossip, 3 * n},
	}
	for _, tc := range cases {
		c, err := Spec{Family: Ring, N: n, Workload: tc.w, Seed: 11}.Compile()
		if err != nil {
			t.Fatalf("%s: %v", tc.w, err)
		}
		if len(c.Params.Traffic) != tc.flows {
			t.Errorf("%s: %d flows, want %d", tc.w, len(c.Params.Traffic), tc.flows)
		}
	}
}

// TestCompiledArtifacts checks the compiled views agree with each
// other: Systems share the scenario's graph and params, FaithfulConfig
// drives an honest run to completion, and ExecConfig carries the true
// costs.
func TestCompiledArtifacts(t *testing.T) {
	c, err := Spec{Family: TwoTier, N: 9, Workload: WorkloadHotspot, Seed: 3}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	plain, faith := c.Systems()
	if plain.Graph != c.Graph || faith.Graph != c.Graph {
		t.Fatal("systems do not share the compiled graph")
	}
	if len(plain.Nodes()) != c.Graph.N() || len(faith.Nodes()) != c.Graph.N() {
		t.Fatal("systems node count mismatch")
	}
	res, err := faithful.Run(c.FaithfulConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.Detections) != 0 {
		t.Fatalf("honest faithful run flagged: completed=%v detections=%v", res.Completed, res.Detections)
	}
	ec := c.ExecConfig()
	if len(ec.TrueCosts) != c.Graph.N() {
		t.Fatalf("ExecConfig true costs cover %d nodes, want %d", len(ec.TrueCosts), c.Graph.N())
	}
	for i := 0; i < c.Graph.N(); i++ {
		id := graph.NodeID(i)
		if ec.TrueCosts[id] != c.Graph.Cost(id) {
			t.Fatalf("node %d: ExecConfig cost %d != graph cost %d", i, ec.TrueCosts[id], c.Graph.Cost(id))
		}
	}
	if ec.Scheme != fpss.SchemeVCG {
		t.Fatalf("default scheme = %v, want VCG", ec.Scheme)
	}
}

// TestFaithfulnessOnCompiledScenario runs the full deviation search on
// one small non-classic scenario: the extended specification must stay
// violation-free off the beaten path too.
func TestFaithfulnessOnCompiledScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	c, err := Spec{Family: TwoTier, N: 6, Workload: WorkloadHotspot, CostModel: CostUniform, Seed: 2}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.CheckFaithfulness(c.FaithfulSystem(), core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Faithful() {
		t.Fatalf("faithful system violated on %s: %v", c.Spec.Describe(), rep.Violations)
	}
}
