package churn

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// lossyDynamicSpec composes both failure axes: three epochs of churn
// over links dropping 10% of attempts in bursts.
func lossyDynamicSpec() scenario.Spec {
	sp := dynamicSpec()
	sp.Loss = scenario.Loss{Rate: 0.1, Burst: 3}
	return sp
}

// TestLossComposesWithChurn: every epoch of a lossy timeline carries a
// live drop model, epoch 0 replays the static schedule, and later
// epochs are re-salted — fresh drop schedules per epoch, exactly like
// traffic and membership, while rate and burst stay the axis's.
func TestLossComposesWithChurn(t *testing.T) {
	sp := lossyDynamicSpec()
	tl := mustBuild(t, sp)
	seen := map[uint64]int{}
	for i, e := range tl.Epochs {
		m := e.Compiled.Params.Loss
		if !m.Enabled() {
			t.Fatalf("epoch %d lost the drop model", i)
		}
		if m.Rate != sp.Loss.Rate || m.Burst != sp.Loss.Burst {
			t.Fatalf("epoch %d model %+v deviates from the axis %+v", i, m, sp.Loss)
		}
		if m != sp.LossModelForEpoch(i) {
			t.Fatalf("epoch %d model not the spec's epoch derivation", i)
		}
		if prev, dup := seen[m.Seed]; dup {
			t.Fatalf("epochs %d and %d share a drop schedule seed", prev, i)
		}
		seen[m.Seed] = i
	}
	if tl.Epochs[0].Compiled.Params.Loss != sp.LossModel() {
		t.Fatal("epoch 0 must replay the static drop schedule")
	}
	// The composed timeline is still a pure function of the Spec.
	again := mustBuild(t, sp)
	for i := range tl.Epochs {
		if tl.Epochs[i].Compiled.Params.Loss != again.Epochs[i].Compiled.Params.Loss {
			t.Fatalf("epoch %d drop model not deterministic", i)
		}
	}
	// A reliable timeline of the same spec carries no model anywhere.
	reliable := mustBuild(t, dynamicSpec())
	for i, e := range reliable.Epochs {
		if e.Compiled.Params.Loss.Enabled() {
			t.Fatalf("reliable epoch %d grew a drop model", i)
		}
	}
}

// TestLossyChurnVerdicts: the composed failure axes end to end — the
// per-epoch deviation search over a lossy timeline keeps the extended
// spec clean and stays byte-identical across worker counts.
func TestLossyChurnVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("per-epoch deviation search")
	}
	tl := mustBuild(t, lossyDynamicSpec())
	seq, err := core.CheckFaithfulnessCfg(NewSystem(tl, Faithful), core.CheckConfig{Workers: 1, PerEpoch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Faithful() {
		t.Fatalf("faithful spec violated under lossy churn: %v", seq.Violations)
	}
	par, err := core.CheckFaithfulnessCfg(NewSystem(mustBuild(t, lossyDynamicSpec()), Faithful),
		core.CheckConfig{Workers: 4, PerEpoch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("lossy churn report differs across worker counts\nseq: %+v\npar: %+v", seq, par)
	}
}
