package churn

import (
	"reflect"
	"testing"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/scenario"
)

func dynamicSpec() scenario.Spec {
	return scenario.Spec{Family: scenario.Random, N: 6, Seed: 1,
		Churn: scenario.Churn{Epochs: 3, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
}

func mustBuild(t *testing.T, sp scenario.Spec) *Timeline {
	t.Helper()
	tl, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// graphEqual compares topology and costs.
func graphEqual(a, b *graph.Graph) bool {
	return a.N() == b.N() &&
		reflect.DeepEqual(a.Edges(), b.Edges()) &&
		reflect.DeepEqual(a.Costs(), b.Costs())
}

// TestBuildDeterministic: the timeline is a pure function of the Spec.
func TestBuildDeterministic(t *testing.T) {
	a := mustBuild(t, dynamicSpec())
	b := mustBuild(t, dynamicSpec())
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if !reflect.DeepEqual(a.Epochs[i].Members, b.Epochs[i].Members) {
			t.Fatalf("epoch %d membership differs", i)
		}
		if !graphEqual(a.Epochs[i].Compiled.Graph, b.Epochs[i].Compiled.Graph) {
			t.Fatalf("epoch %d graph differs", i)
		}
		if !reflect.DeepEqual(a.Epochs[i].Compiled.Params.Traffic, b.Epochs[i].Compiled.Params.Traffic) {
			t.Fatalf("epoch %d traffic differs", i)
		}
	}
	// A different seed must give a different schedule (with these
	// rates, some membership or edge set diverges by the last epoch).
	sp := dynamicSpec()
	sp.Seed = 2
	c := mustBuild(t, sp)
	same := true
	for i := range a.Epochs {
		if !reflect.DeepEqual(a.Epochs[i].Members, c.Epochs[i].Members) ||
			!graphEqual(a.Epochs[i].Compiled.Graph, c.Epochs[i].Compiled.Graph) {
			same = false
		}
	}
	if same {
		t.Fatal("timelines for different seeds are identical")
	}
}

// TestEpochOneEqualsStatic: a one-epoch timeline is byte-identical to
// the static compilation — the churn engine is a strict superset of
// the static pipeline, not a parallel one.
func TestEpochOneEqualsStatic(t *testing.T) {
	sp := scenario.Spec{Family: scenario.TwoTier, N: 6, Workload: scenario.WorkloadHotspot, Seed: 1}
	static, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sp.Churn = scenario.Churn{Epochs: 1}
	tl := mustBuild(t, sp)
	if len(tl.Epochs) != 1 {
		t.Fatalf("expected 1 epoch, got %d", len(tl.Epochs))
	}
	if !graphEqual(tl.Epochs[0].Compiled.Graph, static.Graph) {
		t.Fatal("epoch-0 graph differs from static compilation")
	}
	if !reflect.DeepEqual(tl.Epochs[0].Compiled.Params, static.Params) {
		t.Fatal("epoch-0 params differ from static compilation")
	}
}

// TestEpochOneCheckEqualsStatic: running the churn system on a
// one-epoch timeline reproduces the static CheckFaithfulness report
// play for play (modulo the boundary deviations, which cannot exist
// without a boundary — the catalogue must collapse to the static one).
func TestEpochOneCheckEqualsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation search")
	}
	sp := scenario.Spec{Family: scenario.Random, N: 5, Seed: 3}
	c, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	plainSys, faithSys := c.Systems()
	sp.Churn = scenario.Churn{Epochs: 1}
	tl := mustBuild(t, sp)

	for _, tc := range []struct {
		variant Variant
		static  core.System
	}{{Plain, plainSys}, {Faithful, faithSys}} {
		want, err := core.CheckFaithfulness(tc.static)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.CheckFaithfulness(NewSystem(tl, tc.variant))
		if err != nil {
			t.Fatal(err)
		}
		if got.Checked != want.Checked {
			t.Errorf("%v: checked %d plays, static checked %d", tc.variant, got.Checked, want.Checked)
		}
		if len(got.Violations) != len(want.Violations) {
			t.Fatalf("%v: %d violations vs static %d", tc.variant, len(got.Violations), len(want.Violations))
		}
		for i := range got.Violations {
			g, w := got.Violations[i], want.Violations[i]
			if g.Node != w.Node || g.Deviation != w.Deviation || g.Baseline != w.Baseline || g.Deviant != w.Deviant {
				t.Errorf("%v: violation %d differs: %v vs %v", tc.variant, i, g, w)
			}
		}
	}
}

// TestTimelineValidity: every epoch's graph is biconnected (the FPSS
// standing assumption survives churn via RepairBiconnected), the
// population respects the floor, and boundary bookkeeping matches the
// membership deltas.
func TestTimelineValidity(t *testing.T) {
	sp := scenario.Spec{Family: scenario.PrefAttach, N: 8, Seed: 5,
		Churn: scenario.Churn{Epochs: 5, Joins: 2, Leaves: 3, RedrawFraction: 0.5}}
	tl := mustBuild(t, sp)
	if len(tl.Epochs) != 5 {
		t.Fatalf("expected 5 epochs, got %d", len(tl.Epochs))
	}
	for i, e := range tl.Epochs {
		if !e.Compiled.Graph.IsBiconnected() {
			t.Errorf("epoch %d graph not biconnected", i)
		}
		if e.N() < 4 {
			t.Errorf("epoch %d population %d below floor", i, e.N())
		}
		if i == 0 {
			continue
		}
		prev := tl.Epochs[i-1]
		for _, id := range e.Joined {
			if _, was := prev.Local(id); was {
				t.Errorf("epoch %d: joiner %d already a member", i, id)
			}
			if _, is := e.Local(id); !is {
				t.Errorf("epoch %d: joiner %d not a member", i, id)
			}
		}
		for _, id := range e.Left {
			if _, was := prev.Local(id); !was {
				t.Errorf("epoch %d: leaver %d was not a member", i, id)
			}
			if _, is := e.Local(id); is {
				t.Errorf("epoch %d: leaver %d still a member", i, id)
			}
		}
		if want := prev.N() - len(e.Left) + len(e.Joined); e.N() != want {
			t.Errorf("epoch %d population %d, want %d", i, e.N(), want)
		}
	}
	// Identities are never reused.
	seenJoin := make(map[Identity]int)
	for _, e := range tl.Epochs {
		for _, id := range e.Joined {
			if first, dup := seenJoin[id]; dup {
				t.Errorf("identity %d joined twice (epochs %d and %d)", id, first, e.Index)
			}
			seenJoin[id] = e.Index
		}
	}
}

// TestBoundaryDeviationCatalogue: the three churn deviations appear
// exactly where the schedule makes them meaningful.
func TestBoundaryDeviationCatalogue(t *testing.T) {
	tl := mustBuild(t, dynamicSpec())
	sys := NewSystem(tl, Plain)
	names := func(id Identity) map[string][]int {
		out := make(map[string][]int)
		for _, d := range sys.Deviations(core.NodeID(id)) {
			out[d.Name()] = sys.EpochsOf(core.NodeID(id), d)
		}
		return out
	}
	var leaver, stayer Identity = -1, -1
	for _, id := range tl.Identities() {
		if _, leaves := tl.DepartureOf(id); leaves {
			if leaver < 0 {
				leaver = id
			}
		} else if len(tl.MemberEpochs(id)) == len(tl.Epochs) {
			stayer = id
		}
	}
	if leaver < 0 || stayer < 0 {
		t.Fatalf("schedule has no leaver/stayer pair (leaver=%d stayer=%d)", leaver, stayer)
	}
	ln := names(leaver)
	boundary, _ := tl.DepartureOf(leaver)
	if got, ok := ln["leave-without-settling"]; !ok {
		t.Error("leaver has no leave-without-settling deviation")
	} else if !reflect.DeepEqual(got, []int{boundary - 1}) {
		t.Errorf("leave-without-settling active in %v, want [%d]", got, boundary-1)
	}
	sn := names(stayer)
	if _, ok := sn["leave-without-settling"]; ok {
		t.Error("stayer offered leave-without-settling")
	}
	if _, ok := sn["rejoin-fresh-identity"]; ok {
		t.Error("stayer offered rejoin-fresh-identity")
	}
	if got, ok := sn["stale-catalogue-adverts"]; !ok {
		t.Error("stayer has no stale-catalogue-adverts deviation")
	} else if got[0] == 0 {
		t.Errorf("stale catalogue cannot be active in epoch 0: %v", got)
	}
	// Static deviations ride along for every member epoch.
	if got := sn["misreport-cost-inflate"]; len(got) != len(tl.Epochs) {
		t.Errorf("static deviation active in %v, want every epoch", got)
	}
}

// TestLedgerCarryForward: the honest timeline's ledger settles exactly
// the departed identities, and the book's total equals the summed
// baseline utilities.
func TestLedgerCarryForward(t *testing.T) {
	tl := mustBuild(t, dynamicSpec())
	sys := NewSystem(tl, Plain)
	l, err := sys.Ledger()
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.Run(-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var fromLedger, fromBaseline int64
	for _, id := range tl.Identities() {
		if l.Balance(bank.Account(id)) != base.Utilities[core.NodeID(id)] {
			t.Errorf("identity %d: ledger %d, baseline %d", id, l.Balance(bank.Account(id)), base.Utilities[core.NodeID(id)])
		}
		fromLedger += l.Balance(bank.Account(id))
		fromBaseline += base.Utilities[core.NodeID(id)]
		_, leaves := tl.DepartureOf(id)
		if got := l.Settled(bank.Account(id)); got != leaves {
			t.Errorf("identity %d: settled=%v, leaves=%v", id, got, leaves)
		}
	}
	if fromLedger != fromBaseline {
		t.Errorf("ledger total %d != baseline total %d", fromLedger, fromBaseline)
	}
	if len(l.Accounts()) != len(tl.Identities()) {
		t.Errorf("%d accounts, want %d", len(l.Accounts()), len(tl.Identities()))
	}
}

// TestChurnVerdicts is the headline: across a dynamic timeline the
// plain protocol admits profitable deviations (including the boundary
// exploits) while the extended specification stays clean on every
// epoch.
func TestChurnVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation search")
	}
	tl := mustBuild(t, dynamicSpec())
	plain, err := core.CheckFaithfulness(NewSystem(tl, Plain), core.PerEpoch(), core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Violations) == 0 {
		t.Error("plain FPSS admitted no profitable deviation under churn")
	}
	byName := make(map[string]bool)
	epochsSeen := make(map[int]bool)
	for _, v := range plain.Violations {
		byName[v.Deviation] = true
		epochsSeen[v.Epoch] = true
		if v.Epoch < 1 || v.Epoch > len(tl.Epochs) {
			t.Errorf("violation epoch %d out of range: %v", v.Epoch, v)
		}
	}
	for _, want := range []string{"leave-without-settling", "rejoin-fresh-identity"} {
		if !byName[want] {
			t.Errorf("expected a profitable %q against plain FPSS", want)
		}
	}
	faith, err := core.CheckFaithfulness(NewSystem(tl, Faithful), core.PerEpoch(), core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !faith.Faithful() {
		t.Errorf("extended specification violated under churn: %v", faith.Violations)
	}
	if faith.Checked <= plain.Checked {
		t.Errorf("faithful grid (%d plays) should exceed plain grid (%d): checker deviations add plays", faith.Checked, plain.Checked)
	}
}

// TestDifferentialWorkersAndOracle: the multi-epoch parallel check is
// byte-identical to the sequential oracle for any worker count, with
// and without PerEpoch — the churn analogue of the engine's standing
// determinism invariant. Run under -race in CI, this also certifies
// the timeline caches as data-race-free.
func TestDifferentialWorkersAndOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation search")
	}
	sp := scenario.Spec{Family: scenario.Random, N: 5, Seed: 2,
		Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1}}
	tl := mustBuild(t, sp)
	for _, variant := range []Variant{Plain, Faithful} {
		for _, perEpoch := range []bool{false, true} {
			baseOpts := []core.CheckOption{}
			if perEpoch {
				baseOpts = append(baseOpts, core.PerEpoch())
			}
			oracle, err := core.CheckFaithfulness(NewSystem(tl, variant), baseOpts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 7} {
				got, err := core.CheckFaithfulness(NewSystem(tl, variant),
					append(append([]core.CheckOption{}, baseOpts...), core.Workers(workers))...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, oracle) {
					t.Errorf("%v perEpoch=%v workers=%d diverges from sequential oracle", variant, perEpoch, workers)
				}
			}
		}
	}
}

// TestPerEpochSubsumesWholeRun: every whole-run violation has a
// per-epoch witness — if a deviation profits when active in all its
// epochs, pinning it to its best epoch profits too (utilities are
// separable across epochs for the per-epoch catalogue).
func TestPerEpochSubsumesWholeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation search")
	}
	tl := mustBuild(t, dynamicSpec())
	sys := NewSystem(tl, Plain)
	whole, err := core.CheckFaithfulness(sys, core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	per, err := core.CheckFaithfulness(sys, core.PerEpoch(), core.Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	witness := make(map[[2]string]bool)
	for _, v := range per.Violations {
		witness[[2]string{string(rune(v.Node)), v.Deviation}] = true
	}
	for _, v := range whole.Violations {
		if !witness[[2]string{string(rune(v.Node)), v.Deviation}] {
			t.Errorf("whole-run violation %v has no per-epoch witness", v)
		}
	}
}

// TestForeignDeviationRejected: a deviation from another System is an
// error, not a silent no-op.
func TestForeignDeviationRejected(t *testing.T) {
	tl := mustBuild(t, dynamicSpec())
	sys := NewSystem(tl, Plain)
	if _, err := sys.Run(0, core.BasicDeviation{DevName: "alien"}); err == nil {
		t.Fatal("foreign deviation accepted")
	}
	if _, err := sys.RunEpoch(0, sys.Deviations(0)[0], 99); err == nil {
		t.Fatal("out-of-range epoch accepted")
	}
}
