package churn

import (
	"fmt"

	"repro/internal/core"
)

// This file implements core.StatefulEpochedSystem for the timeline
// system: the truthful state is the per-epoch snapshot vector built by
// init() (each epoch's converged tables and honest outcome), plays
// route every deviant epoch through the underlying rational system's
// stateful overlay, and timeline-level utility maps come from the
// worker's play context.

// arenaKey keys the churn arena in a core.PlayContext (distinct from
// the rational package's key, so both coexist on one context).
type arenaKey struct{}

type playArena struct {
	util map[core.NodeID]int64
}

// timelineUtilities returns the identity-keyed utility map for one
// timeline play — the context's reusable map, or a fresh one for
// legacy Run/RunEpoch calls.
func timelineUtilities(ctx *core.PlayContext, hint int) map[core.NodeID]int64 {
	if ctx == nil {
		return make(map[core.NodeID]int64, hint)
	}
	ar := ctx.Value(arenaKey{}, func() any { return &playArena{} }).(*playArena)
	if ar.util == nil {
		ar.util = make(map[core.NodeID]int64, hint)
	} else {
		clear(ar.util)
	}
	return ar.util
}

// timelineState is the timeline's truthful snapshot: the honest
// whole-run outcome (per-epoch honest outcomes summed per identity).
// The per-epoch snapshots themselves live on the System — they are
// shared, read-only state, like the scenario caches.
type timelineState struct {
	base core.Outcome
}

// Baseline implements core.TruthfulState.
func (st *timelineState) Baseline() core.Outcome { return st.base }

// Snapshot implements core.StatefulSystem: one honest aggregation of
// the timeline, retained. The per-epoch truthful snapshots are built
// by init(), so this costs one summation beyond what any run pays.
func (s *System) Snapshot() (core.TruthfulState, error) {
	if err := s.init(); err != nil {
		return nil, err
	}
	s.snapOnce.Do(func() {
		base, err := s.run(nil, -1, nil, -1)
		if err != nil {
			s.snapErr = err
			return
		}
		s.snap = &timelineState{base: base}
	})
	if s.snapErr != nil {
		return nil, s.snapErr
	}
	return s.snap, nil
}

// Play implements core.StatefulSystem. The returned Outcome's map
// belongs to the context's arena (valid until the next Play on it).
func (s *System) Play(ctx *core.PlayContext, st core.TruthfulState, deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	if deviator < 0 || dev == nil {
		if ts, ok := st.(*timelineState); ok {
			return ts.base, nil
		}
	}
	return s.run(ctx, deviator, dev, -1)
}

// PlayEpoch implements core.StatefulEpochedSystem.
func (s *System) PlayEpoch(ctx *core.PlayContext, st core.TruthfulState, deviator core.NodeID, dev core.Deviation, epoch int) (core.Outcome, error) {
	if epoch < 0 || epoch >= len(s.tl.Epochs) {
		return core.Outcome{}, fmt.Errorf("churn: epoch %d out of range [0,%d)", epoch, len(s.tl.Epochs))
	}
	return s.run(ctx, deviator, dev, epoch)
}

// ProfitUpperBound implements core.Bounder. Under the extended
// specification an execution-only deviation (every boundary exit scam,
// plus the catalogue's payment misreports) cannot beat the honest
// timeline: within each epoch the bank settles the misreport back to
// the true obligation and fines ε above it, so the deviator's epoch
// utility never exceeds its honest value; whitewashing epochs credit
// got − honest ≤ 0 on top. Whole-timeline and pinned plays are both
// covered, so the epoch argument is ignored. Plain FPSS trusts DATA4
// — exit scams genuinely profit — so no bound is claimed there, and
// none for deviations that touch construction (e.g. stale catalogues).
func (s *System) ProfitUpperBound(deviator core.NodeID, dev core.Deviation, _ int) (int64, bool) {
	if s.variant != Faithful {
		return 0, false
	}
	d, ok := dev.(*deviation)
	if !ok || !d.execOnly {
		return 0, false
	}
	st, err := s.Snapshot()
	if err != nil {
		return 0, false
	}
	base, ok := st.Baseline().Utilities[deviator]
	if !ok {
		return 0, false
	}
	return base, true
}
