package churn

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// runOnlyEpoched hides the churn System's stateful and bounder faces:
// the engine then drives it through the legacy Run/RunEpoch path — the
// kept oracle the snapshot/arena machinery must match exactly.
type runOnlyEpoched struct{ sys core.EpochedSystem }

func (r runOnlyEpoched) Nodes() []core.NodeID                      { return r.sys.Nodes() }
func (r runOnlyEpoched) Deviations(n core.NodeID) []core.Deviation { return r.sys.Deviations(n) }
func (r runOnlyEpoched) Run(d core.NodeID, dev core.Deviation) (core.Outcome, error) {
	return r.sys.Run(d, dev)
}
func (r runOnlyEpoched) NumEpochs() int { return r.sys.NumEpochs() }
func (r runOnlyEpoched) RunEpoch(d core.NodeID, dev core.Deviation, e int) (core.Outcome, error) {
	return r.sys.RunEpoch(d, dev, e)
}
func (r runOnlyEpoched) EpochsOf(d core.NodeID, dev core.Deviation) []int {
	return r.sys.EpochsOf(d, dev)
}

// TestStatefulChurnMatchesRunOracle runs the full churn grid — both
// variants, whole-run and per-epoch, several worker counts — through
// the stateful engine (per-epoch truthful snapshots, exec-only
// overlays for the boundary exit scams, arena-backed epoch plays) and
// demands byte-identical reports against the legacy Run oracle. The
// faithful side repeats with base-utility pruning and a full pruned
// replay, which must fire on the exec-only boundary deviations.
func TestStatefulChurnMatchesRunOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation search")
	}
	sp := scenario.Spec{Family: scenario.Random, N: 5, Seed: 4,
		Churn: scenario.Churn{Epochs: 3, Joins: 1, Leaves: 1, RedrawFraction: 0.5}}
	tl := mustBuild(t, sp)
	for _, variant := range []Variant{Plain, Faithful} {
		for _, perEpoch := range []bool{false, true} {
			oracle, err := core.CheckFaithfulnessCfg(runOnlyEpoched{NewSystem(tl, variant)},
				core.CheckConfig{PerEpoch: perEpoch})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 6} {
				got, err := core.CheckFaithfulnessCfg(NewSystem(tl, variant),
					core.CheckConfig{PerEpoch: perEpoch, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(oracle, got) {
					t.Errorf("%v perEpoch=%v workers=%d: stateful report diverges\noracle: %+v\ngot:    %+v",
						variant, perEpoch, workers, oracle, got)
				}
			}
			pruned, err := core.CheckFaithfulnessCfg(NewSystem(tl, variant), core.CheckConfig{
				PerEpoch:     perEpoch,
				Workers:      3,
				PruneBound:   core.SelfBound,
				VerifyPruned: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(oracle.Violations, pruned.Violations) {
				t.Errorf("%v perEpoch=%v: pruned violations diverge\noracle: %+v\ngot:    %+v",
					variant, perEpoch, oracle.Violations, pruned.Violations)
			}
			if pruned.Total() != oracle.Checked {
				t.Errorf("%v perEpoch=%v: pruned grid %d+%d != oracle grid %d",
					variant, perEpoch, pruned.Checked, pruned.Pruned, oracle.Checked)
			}
			switch variant {
			case Plain:
				// Exit scams profit under plain FPSS — the engine must
				// not claim a bound there.
				if pruned.Pruned != 0 {
					t.Errorf("plain churn pruned %d plays; the plain variant has no sound bound", pruned.Pruned)
				}
			case Faithful:
				if pruned.Pruned == 0 {
					t.Errorf("faithful churn pruned nothing; exec-only boundary deviations should be bounded")
				}
			}
		}
	}
}
