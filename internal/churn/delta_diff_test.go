package churn

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/scenario"
)

// The differential property suite for the delta-driven epoch engine:
// every timeline here is built twice — once on the incremental path
// (epoch e repaired from e-1 via graph.Delta) and once with
// DisableDelta pinning the scratch protocol-simulation oracle — and
// the two must agree byte-for-byte on the honest construction tables
// of every epoch. The scratch path is permanent: it is the oracle
// these tests (and any future repair optimisation) are judged against.
//
// The grid deliberately spans every topology family, several churn
// mixes (join-heavy, leave-heavy, redraw-heavy, long) and the loss and
// shards failure axes. Loss-enabled specs exercise the gating side of
// the contract — the incremental path must stand down and defer to the
// simulation — while shards-enabled specs confirm the settlement axis
// is orthogonal to how the tables were derived.

// diffSpec is one cell of the differential grid.
type diffSpec struct {
	name string
	sp   scenario.Spec
}

// diffSpecs enumerates the grid: families × churn mixes × axes, plus
// extra seeds on the reliable axis. Well over 100 timelines.
func diffSpecs() []diffSpec {
	type fam struct {
		family scenario.Family
		n      int
	}
	families := []fam{
		{scenario.Figure1, 0}, // fixed 6-node worked example
		{scenario.Clique, 8},
		{scenario.Ring, 8},
		{scenario.RingChords, 8},
		{scenario.Random, 8},
		{scenario.PrefAttach, 8},
		{scenario.Waxman, 8},
		{scenario.Torus, 9}, // 3×3 grid
	}
	mixes := []struct {
		name string
		ch   scenario.Churn
	}{
		{"mix=balanced", scenario.Churn{Epochs: 3, Joins: 1, Leaves: 1}},
		{"mix=growing", scenario.Churn{Epochs: 4, Joins: 2, Leaves: 1, RedrawFraction: 0.5}},
		{"mix=shrinking", scenario.Churn{Epochs: 3, Joins: 0, Leaves: 2, RedrawFraction: 0.25}},
		{"mix=long", scenario.Churn{Epochs: 5, Joins: 1, Leaves: 1, RedrawFraction: 0.75}},
	}
	axes := []struct {
		name  string
		loss  scenario.Loss
		shard scenario.Shards
		seeds []int64
	}{
		{"axis=reliable", scenario.Loss{}, scenario.Shards{}, []int64{1, 2}},
		{"axis=loss", scenario.Loss{Rate: 0.15, Burst: 2}, scenario.Shards{}, []int64{1}},
		{"axis=shards", scenario.Loss{}, scenario.Shards{K: 2}, []int64{1}},
	}
	var specs []diffSpec
	for _, f := range families {
		for _, mix := range mixes {
			for _, axis := range axes {
				for _, seed := range axis.seeds {
					sp := scenario.Spec{
						Family: f.family,
						N:      f.n,
						Seed:   seed,
						Churn:  mix.ch,
						Loss:   axis.loss,
						Shards: axis.shard,
					}
					name := fmt.Sprintf("%s/n=%d/%s/%s/seed=%d",
						f.family, f.n, mix.name, axis.name, seed)
					specs = append(specs, diffSpec{name, sp})
				}
			}
		}
	}
	return specs
}

// buildPair materializes the same spec on both paths: tl serves honest
// state incrementally where it may, oracle is pinned to the scratch
// protocol simulation.
func buildPair(t *testing.T, sp scenario.Spec) (tl, oracle *Timeline) {
	t.Helper()
	tl, err := Build(sp)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	oracle, err = Build(sp)
	if err != nil {
		t.Fatalf("Build (oracle): %v", err)
	}
	oracle.DisableDelta()
	return tl, oracle
}

// TestDeltaTimelineMatchesScratch is the core differential property:
// across the whole grid, the delta-evolved honest tables of every
// epoch are byte-identical to the scratch oracle's, and — on epochs
// the incremental path actually serves — the repaired central solution
// deep-equals a from-scratch fpss.ComputeCentral of that epoch's
// graph, witness trees and identity tags included.
func TestDeltaTimelineMatchesScratch(t *testing.T) {
	specs := diffSpecs()
	if len(specs) < 100 {
		t.Fatalf("differential grid shrank to %d timelines; want >= 100", len(specs))
	}
	if testing.Short() {
		specs = specs[:24]
	}
	for _, tc := range specs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tl, oracle := buildPair(t, tc.sp)
			if len(tl.Epochs) != len(oracle.Epochs) {
				t.Fatalf("epoch count mismatch: %d vs %d", len(tl.Epochs), len(oracle.Epochs))
			}
			for i, e := range tl.Epochs {
				routing, pricing, err := e.honestTables()
				if err != nil {
					t.Fatalf("epoch %d: honestTables (delta): %v", i, err)
				}
				wantR, wantP, err := oracle.Epochs[i].honestTables()
				if err != nil {
					t.Fatalf("epoch %d: honestTables (oracle): %v", i, err)
				}
				if !reflect.DeepEqual(routing, wantR) {
					t.Fatalf("epoch %d: routing tables diverge from scratch oracle", i)
				}
				if !reflect.DeepEqual(pricing, wantP) {
					t.Fatalf("epoch %d: pricing tables diverge from scratch oracle", i)
				}
				if !e.useCentral() {
					continue
				}
				c, err := e.centralState()
				if err != nil {
					t.Fatalf("epoch %d: centralState: %v", i, err)
				}
				want, err := fpss.ComputeCentral(e.Compiled.Graph)
				if err != nil {
					t.Fatalf("epoch %d: ComputeCentral: %v", i, err)
				}
				if !reflect.DeepEqual(c.Sol, want) {
					t.Fatalf("epoch %d: evolved central solution differs from scratch", i)
				}
			}
		})
	}
}

// TestDeltaReportMatchesScratch runs the full per-epoch deviation
// search on both paths for a cross-section of the grid and requires
// the entire core.Report — play counts and every violation — to be
// identical. This is the end-to-end guarantee: not just the honest
// tables but every deviation verdict derived from them is unchanged by
// how the epoch state was built.
func TestDeltaReportMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation searches are the slow lane")
	}
	specs := []diffSpec{
		{"figure1/balanced", scenario.Spec{Family: scenario.Figure1, Seed: 1,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1}}},
		{"figure1/redraw", scenario.Spec{Family: scenario.Figure1, Seed: 2,
			Churn: scenario.Churn{Epochs: 3, Joins: 0, Leaves: 0, RedrawFraction: 1}}},
		{"random/balanced", scenario.Spec{Family: scenario.Random, N: 6, Seed: 1,
			Churn: scenario.Churn{Epochs: 3, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}},
		{"random/growing", scenario.Spec{Family: scenario.Random, N: 6, Seed: 2,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 0}}},
		{"ring/shrinking", scenario.Spec{Family: scenario.Ring, N: 7, Seed: 3,
			Churn: scenario.Churn{Epochs: 2, Joins: 0, Leaves: 2}}},
		{"clique/balanced", scenario.Spec{Family: scenario.Clique, N: 6, Seed: 4,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1}}},
		{"prefattach/redraw", scenario.Spec{Family: scenario.PrefAttach, N: 6, Seed: 5,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1, RedrawFraction: 0.5}}},
		{"waxman/balanced", scenario.Spec{Family: scenario.Waxman, N: 6, Seed: 6,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1}}},
		{"random/loss", scenario.Spec{Family: scenario.Random, N: 6, Seed: 7,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1},
			Loss:  scenario.Loss{Rate: 0.15, Burst: 2}}},
		{"random/shards", scenario.Spec{Family: scenario.Random, N: 6, Seed: 8,
			Churn:  scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1},
			Shards: scenario.Shards{K: 2}}},
		{"figure1/shards-crash", scenario.Spec{Family: scenario.Figure1, Seed: 9,
			Churn:  scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1},
			Shards: scenario.Shards{K: 2, Crash: "participant"}}},
		{"ringchords/balanced", scenario.Spec{Family: scenario.RingChords, N: 6, Seed: 10,
			Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1}}},
	}
	for _, variant := range []Variant{Plain, Faithful} {
		variant := variant
		for _, tc := range specs {
			tc := tc
			t.Run(fmt.Sprintf("%s/%s", variant, tc.name), func(t *testing.T) {
				t.Parallel()
				tl, oracle := buildPair(t, tc.sp)
				cfg := core.CheckConfig{PerEpoch: true, Workers: 0}
				got, err := core.CheckFaithfulnessCfg(NewSystem(tl, variant), cfg)
				if err != nil {
					t.Fatalf("check (delta): %v", err)
				}
				want, err := core.CheckFaithfulnessCfg(NewSystem(oracle, variant), cfg)
				if err != nil {
					t.Fatalf("check (oracle): %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("reports diverge:\n delta:  %+v\n oracle: %+v", got, want)
				}
			})
		}
	}
}
