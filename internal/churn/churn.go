// Package churn is the epoch-based dynamics engine: it stretches a
// static scenario into a timeline of epochs between which nodes join,
// leave and re-draw their transit costs, then replays the FPSS
// construction and execution phases per epoch with the bank's ledger
// carrying balances across the boundaries.
//
// The paper proves the extended FPSS specification faithful for a
// static network and names network dynamics as open (§5). This package
// makes dynamics a scenario axis: a scenario.Spec plus a scenario.Churn
// compile into a deterministic Timeline (the schedule is a pure
// function of the spec's seed), each epoch of which is a well-formed
// static scenario — biconnectivity is restored with
// graph.RepairBiconnected after every membership change — and the
// deviation search of core.CheckFaithfulness replays the whole
// (node, deviation) grid per epoch, including deviations that only
// exist at epoch boundaries: advertising a stale catalogue from the
// previous epoch, leaving without settling the final execution phase,
// and whitewashing — rejoining under a fresh identity to repeat the
// hustle.
//
// Determinism contract: Build is a pure function of its Spec. Epoch 0
// is exactly Spec.Compile() — a one-epoch timeline is byte-identical
// to the static scenario — and every boundary draw comes from a
// dedicated schedule stream derived from the seed, in a fixed order:
// leaves, then joins, then attachments, then re-draws, then the
// epoch's workload.
package churn

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// Identity is a stable participant identity. Epoch-local graph.NodeIDs
// are dense per epoch and re-numbered as membership changes; an
// Identity names the same participant across the whole timeline.
// Epoch 0's members are identities 0..n-1; joiners get fresh,
// never-reused identities after that.
type Identity int64

// Epoch is one construction+execution round of the timeline: a
// membership snapshot materialized as a static scenario.
type Epoch struct {
	// Index is the 0-based epoch number.
	Index int
	// Members lists the epoch's identities in ascending order; the
	// position of an identity is its epoch-local graph.NodeID.
	Members []Identity
	// Compiled is the epoch materialized: graph over the epoch-local
	// dense IDs, the epoch's workload, the spec's economic parameters.
	Compiled *scenario.Compiled
	// Joined / Left record the boundary events that produced this
	// epoch from the previous one (both empty for epoch 0). Left
	// identities are members of the previous epoch, not of this one.
	Joined, Left []Identity

	local map[Identity]graph.NodeID

	// prev/delta chain this epoch to its predecessor: delta describes
	// how prev's graph evolved into this one (nil for epoch 0). The
	// chain is what lets the central solution of epoch e be repaired
	// from epoch e−1 instead of rebuilt.
	prev  *Epoch
	delta *graph.Delta
	// scratchOnly forces the protocol-simulation path everywhere —
	// the permanent oracle the delta engine is differentially tested
	// against. See Timeline.DisableDelta.
	scratchOnly bool

	// central is the epoch's immutable fpss.Central — honest converged
	// tables plus the route trees behind them — shared read-only by
	// honestTables, both system variants' snapshots, and the next
	// epoch's Evolve. Built lazily once per epoch.
	centralOnce sync.Once
	central     *fpss.Central
	centralErr  error

	// Honest converged construction tables per member identity, built
	// lazily once (read-only afterwards): the stale-catalogue deviation
	// advertises the previous epoch's tables in this one.
	tablesOnce sync.Once
	tablesErr  error
	routing    map[Identity]fpss.RoutingTable
	pricing    map[Identity]fpss.PricingTable
}

// Local maps an identity to its epoch-local NodeID.
func (e *Epoch) Local(id Identity) (graph.NodeID, bool) {
	n, ok := e.local[id]
	return n, ok
}

// IdentityOf maps an epoch-local NodeID back to its identity.
func (e *Epoch) IdentityOf(n graph.NodeID) Identity { return e.Members[n] }

// N returns the epoch's population.
func (e *Epoch) N() int { return len(e.Members) }

// Timeline is a materialized churn schedule: every epoch compiled and
// ready to play.
type Timeline struct {
	Spec   scenario.Spec
	Epochs []*Epoch

	// identities lists every identity that is a member of at least one
	// epoch, ascending.
	identities []Identity
}

// Identities lists every identity that ever participates, ascending.
// The slice is shared and read-only.
func (tl *Timeline) Identities() []Identity { return tl.identities }

// MemberEpochs returns the ascending epoch indices in which id is a
// member.
func (tl *Timeline) MemberEpochs(id Identity) []int {
	var out []int
	for _, e := range tl.Epochs {
		if _, ok := e.local[id]; ok {
			out = append(out, e.Index)
		}
	}
	return out
}

// DepartureOf returns the index of the epoch at whose *start* id had
// already left — i.e. id's last member epoch is boundary-1 — and
// whether id departs before the timeline ends.
func (tl *Timeline) DepartureOf(id Identity) (boundary int, ok bool) {
	for _, e := range tl.Epochs {
		for _, left := range e.Left {
			if left == id {
				return e.Index, true
			}
		}
	}
	return 0, false
}

// scheduleSeedSalt decorrelates the churn schedule stream from the
// spec's own compile stream (which starts at rand.NewSource(Seed));
// scenario.Mix64 finalizes the mix.
const scheduleSeedSalt = 0x636875726e21 // "churn!"

// Build materializes the timeline for a spec. With Churn.Epochs <= 1
// the timeline is the static scenario verbatim: one epoch, compiled by
// Spec.Compile.
func Build(sp scenario.Spec) (*Timeline, error) {
	epochs := sp.Churn.Epochs
	if epochs < 1 {
		epochs = 1
	}
	base, err := sp.Compile()
	if err != nil {
		return nil, err
	}
	n0 := base.Graph.N()
	e0 := &Epoch{Index: 0, Members: make([]Identity, n0), Compiled: base}
	for i := 0; i < n0; i++ {
		e0.Members[i] = Identity(i)
	}
	e0.buildLocal()
	tl := &Timeline{Spec: sp, Epochs: []*Epoch{e0}}

	if epochs > 1 {
		costFn, err := sp.CostFunc()
		if err != nil {
			return nil, err
		}
		minN := sp.Churn.MinN
		if minN < 4 {
			minN = 4
		}
		rng := rand.New(rand.NewSource(int64(scenario.Mix64(uint64(sp.Seed) ^ scheduleSeedSalt))))
		nextID := Identity(n0)
		for e := 1; e < epochs; e++ {
			prev := tl.Epochs[e-1]
			next, err := evolve(sp, prev, e, &nextID, costFn, minN, rng)
			if err != nil {
				return nil, fmt.Errorf("churn: epoch %d: %w", e, err)
			}
			tl.Epochs = append(tl.Epochs, next)
		}
	}

	seen := make(map[Identity]bool)
	for _, e := range tl.Epochs {
		for _, id := range e.Members {
			if !seen[id] {
				seen[id] = true
				tl.identities = append(tl.identities, id)
			}
		}
	}
	sort.Slice(tl.identities, func(i, j int) bool { return tl.identities[i] < tl.identities[j] })
	return tl, nil
}

func (e *Epoch) buildLocal() {
	e.local = make(map[Identity]graph.NodeID, len(e.Members))
	for i, id := range e.Members {
		e.local[id] = graph.NodeID(i)
	}
}

// evolve derives epoch e from its predecessor: draw leaves (capped at
// the population floor), fresh joiner identities with model-drawn
// costs, carry surviving edges, attach joiners, repair biconnectivity,
// apply cost re-draws, and rebuild the epoch's workload.
func evolve(sp scenario.Spec, prev *Epoch, index int, nextID *Identity, costFn graph.CostFn, minN int, rng *rand.Rand) (*Epoch, error) {
	// Leaves: distinct previous members, floor-capped.
	leaves := sp.Churn.Leaves
	if room := len(prev.Members) - minN; leaves > room {
		leaves = room
	}
	if leaves < 0 {
		leaves = 0
	}
	leaving := make(map[Identity]bool, leaves)
	var left []Identity
	for len(left) < leaves {
		id := prev.Members[rng.Intn(len(prev.Members))]
		if leaving[id] {
			continue
		}
		leaving[id] = true
		left = append(left, id)
	}
	sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })

	// Survivors keep their identities and (for now) their costs.
	members := make([]Identity, 0, len(prev.Members)-leaves+sp.Churn.Joins)
	costs := make(map[Identity]graph.Cost, len(prev.Members))
	for _, id := range prev.Members {
		if leaving[id] {
			continue
		}
		members = append(members, id)
		costs[id] = prev.Compiled.Graph.Cost(prev.local[id])
	}

	// Joins: fresh identities, model-drawn costs.
	var joined []Identity
	for j := 0; j < sp.Churn.Joins; j++ {
		id := *nextID
		*nextID++
		joined = append(joined, id)
		members = append(members, id)
		costs[id] = costFn(rng)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	next := &Epoch{Index: index, Members: members, Joined: joined, Left: left}
	next.buildLocal()

	// Graph: surviving edges carried over, then each joiner attaches to
	// two distinct established members, then biconnectivity repair.
	g := graph.New(len(members))
	for _, id := range members {
		if err := g.SetCost(next.local[id], costs[id]); err != nil {
			return nil, err
		}
	}
	for _, edge := range prev.Compiled.Graph.Edges() {
		u, v := prev.IdentityOf(edge[0]), prev.IdentityOf(edge[1])
		if leaving[u] || leaving[v] {
			continue
		}
		if err := g.AddEdge(next.local[u], next.local[v]); err != nil {
			return nil, err
		}
	}
	joinedSet := make(map[Identity]bool, len(joined))
	for _, id := range joined {
		joinedSet[id] = true
	}
	var established []Identity
	for _, id := range members {
		if !joinedSet[id] {
			established = append(established, id)
		}
	}
	for _, id := range joined {
		attach := 2
		if attach > len(established) {
			attach = len(established)
		}
		picked := make(map[Identity]bool, attach)
		for len(picked) < attach {
			t := established[rng.Intn(len(established))]
			if picked[t] {
				continue
			}
			picked[t] = true
			if err := g.AddEdge(next.local[id], next.local[t]); err != nil {
				return nil, err
			}
		}
		// Later joiners may also attach to earlier ones.
		established = append(established, id)
	}
	if err := graph.RepairBiconnected(g); err != nil {
		return nil, err
	}

	// Cost re-draws on survivors (type dynamics).
	if f := sp.Churn.RedrawFraction; f > 0 {
		for _, id := range members {
			if joinedSet[id] {
				continue
			}
			if rng.Float64() < f {
				if err := g.SetCost(next.local[id], costFn(rng)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Record the boundary as a graph delta so downstream layers repair
	// epoch e's trees from epoch e−1's. The survivor remap is strictly
	// increasing by construction: members sort ascending by identity and
	// joiners always draw identities above every existing one, so
	// survivors keep their relative order (NewDelta enforces this).
	oldToNew := make([]graph.NodeID, len(prev.Members))
	for i, id := range prev.Members {
		if leaving[id] {
			oldToNew[i] = -1
		} else {
			oldToNew[i] = next.local[id]
		}
	}
	delta, err := graph.NewDelta(prev.Compiled.Graph, g, oldToNew)
	if err != nil {
		return nil, fmt.Errorf("boundary delta: %w", err)
	}
	next.prev = prev
	next.delta = delta

	traffic, err := sp.TrafficFor(len(members), rng)
	if err != nil {
		return nil, err
	}
	next.Compiled = sp.Materialize(g, traffic)
	if sp.Loss.Enabled() {
		// Re-salt the drop schedule per epoch: a boundary re-run must
		// not replay epoch 0's exact drops. Epoch 0 itself goes through
		// Spec.Compile and keeps the static schedule.
		next.Compiled.Params.Loss = sp.LossModelForEpoch(next.Index)
	}
	if sp.Shards.Enabled() {
		// Same per-epoch re-salt for the settlement: fresh home-shard
		// routing and crash timings, while K and the crash plan stay
		// the axis's.
		next.Compiled.Params.Settle = sp.SettleOptionsForEpoch(next.Index)
	}
	return next, nil
}

// DisableDelta switches every epoch of the timeline onto the scratch
// oracle path: honest tables and snapshots come from full protocol
// simulations per epoch, exactly as before the delta engine existed.
// This is the permanent differential-testing oracle (and the fallback
// when the incremental path's preconditions don't hold). Call it before
// the timeline is first played.
func (tl *Timeline) DisableDelta() {
	for _, e := range tl.Epochs {
		e.scratchOnly = true
	}
}

// useCentral reports whether the epoch may serve honest state from the
// shared central solution. Under an enabled loss model the protocol
// simulation stays authoritative — convergence bookkeeping, retry
// counters and loss attribution are the sim's semantics, not the
// central solver's — and DisableDelta pins the oracle path explicitly.
func (e *Epoch) useCentral() bool {
	return !e.scratchOnly && !e.Compiled.Params.Loss.Enabled()
}

// centralState returns the epoch's fpss.Central, repairing it from the
// previous epoch's through the boundary delta when the chain exists,
// and computing it from scratch at epoch 0 (or after a broken chain).
// The recursion materializes at most one Central per epoch; each is
// immutable once built.
func (e *Epoch) centralState() (*fpss.Central, error) {
	e.centralOnce.Do(func() {
		if e.prev == nil || e.delta == nil {
			e.central, e.centralErr = fpss.ComputeCentralState(e.Compiled.Graph)
			return
		}
		pc, err := e.prev.centralState()
		if err != nil {
			e.centralErr = err
			return
		}
		e.central, e.centralErr = pc.Evolve(e.Compiled.Graph, e.delta)
	})
	return e.central, e.centralErr
}

// CentralState exposes the epoch's centrally-computed solution chain
// to layers that keep epochs resident instead of replaying them — the
// live server seeds each epoch's hot state from it so churn boundaries
// ride the same Evolve chain the batch checker uses. It reports ok ==
// false when the central path is not authoritative for this epoch
// (enabled loss, or DisableDelta pinning the scratch oracle); callers
// must then fall back to the protocol simulation.
func (e *Epoch) CentralState() (c *fpss.Central, ok bool, err error) {
	if !e.useCentral() {
		return nil, false, nil
	}
	c, err = e.centralState()
	return c, err == nil, err
}

// honestTables returns the epoch's honest converged construction
// tables per member identity, computing them once. They are what a
// stale-catalogue deviator re-advertises in the next epoch. The
// construction phase is identical for the plain and faithful variants
// (checkers mirror without altering the computation), so one cache
// serves both.
//
// On the incremental path the tables come straight from the epoch's
// central solution — pinned byte-identical to the converged protocol
// tables by the fpss and faithful test suites — with no cloning: the
// solution is freshly built, immutable, and every consumer (the
// stale-catalogue remap included) copies before mutating.
func (e *Epoch) honestTables() (map[Identity]fpss.RoutingTable, map[Identity]fpss.PricingTable, error) {
	e.tablesOnce.Do(func() {
		if e.useCentral() {
			c, err := e.centralState()
			if err != nil {
				e.tablesErr = err
				return
			}
			e.routing = make(map[Identity]fpss.RoutingTable, len(e.Members))
			e.pricing = make(map[Identity]fpss.PricingTable, len(e.Members))
			for i, id := range e.Members {
				e.routing[id] = c.Sol.Routing[graph.NodeID(i)]
				e.pricing[id] = c.Sol.Pricing[graph.NodeID(i)]
			}
			return
		}
		res, err := fpss.Run(fpss.Config{Graph: e.Compiled.Graph, Loss: e.Compiled.Params.Loss})
		if err != nil {
			e.tablesErr = err
			return
		}
		e.routing = make(map[Identity]fpss.RoutingTable, len(e.Members))
		e.pricing = make(map[Identity]fpss.PricingTable, len(e.Members))
		for local, node := range res.Nodes {
			id := e.IdentityOf(local)
			// Clone: the run's network is quiescent, but the cache
			// outlives it and is shared across concurrent plays.
			e.routing[id] = node.RoutingView().Clone()
			e.pricing[id] = node.PricingView().Clone()
		}
	})
	return e.routing, e.pricing, e.tablesErr
}

// staleTables remaps id's honest tables from the previous epoch into
// the current epoch's local numbering: entries touching departed
// identities are dropped (the stale catalogue simply does not know the
// new world), surviving entries keep their now-possibly-wrong costs.
func (tl *Timeline) staleTables(id Identity, epoch int) (fpss.RoutingTable, fpss.PricingTable, error) {
	prev, cur := tl.Epochs[epoch-1], tl.Epochs[epoch]
	routing, pricing, err := prev.honestTables()
	if err != nil {
		return nil, nil, err
	}
	remap := func(old graph.NodeID) (graph.NodeID, bool) {
		n, ok := cur.local[prev.IdentityOf(old)]
		return n, ok
	}
	remapPath := func(p graph.Path) (graph.Path, bool) {
		out := make(graph.Path, len(p))
		for i, n := range p {
			m, ok := remap(n)
			if !ok {
				return nil, false
			}
			out[i] = m
		}
		return out, true
	}
	rt := make(fpss.RoutingTable, len(routing[id]))
	for dest, entry := range routing[id] {
		d, ok := remap(dest)
		if !ok {
			continue
		}
		path, ok := remapPath(entry.Path)
		if !ok {
			continue
		}
		rt[d] = fpss.RouteEntry{Dest: d, Cost: entry.Cost, Path: path}
	}
	pt := make(fpss.PricingTable, len(pricing[id]))
	for dest, row := range pricing[id] {
		d, ok := remap(dest)
		if !ok {
			continue
		}
		newRow := make(map[graph.NodeID]fpss.PriceEntry, len(row))
		for transit, entry := range row {
			k, ok := remap(transit)
			if !ok {
				continue
			}
			avoid, ok := remapPath(entry.Avoid)
			if !ok {
				continue
			}
			tags := make([]graph.NodeID, 0, len(entry.Tags))
			for _, tg := range entry.Tags {
				m, ok := remap(tg)
				if !ok {
					continue
				}
				tags = append(tags, m)
			}
			sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
			newRow[k] = fpss.PriceEntry{Transit: k, Price: entry.Price, Avoid: avoid, Tags: tags}
		}
		if len(newRow) > 0 {
			pt[d] = newRow
		}
	}
	return rt, pt, nil
}
