package churn

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// BenchmarkTimelineBuild isolates the schedule/graph-evolution cost —
// everything before any protocol runs.
func BenchmarkTimelineBuild(b *testing.B) {
	sp := scenario.Spec{Family: scenario.Random, N: 8, Seed: 1,
		Churn: scenario.Churn{Epochs: 4, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn is the epochs × n × workers ladder of the per-epoch
// deviation search against the extended specification — the unit of
// work a `faithcheck -suite churn` sweep scales by, published as
// BENCH_churn.json with a committed baseline. Workers > 1 rows are
// where multi-core runners should show the parallel win; the per-play
// cost is roughly one epoch's construction+execution (honest epochs
// come from the timeline cache).
func BenchmarkChurn(b *testing.B) {
	if testing.Short() {
		b.Skip("deviation searches are the slow lane")
	}
	shapes := []struct{ n, epochs int }{
		{6, 2},
		{6, 4},
		{8, 2},
	}
	for _, shape := range shapes {
		for _, workers := range []int{1, 4} {
			shape, workers := shape, workers
			name := fmt.Sprintf("n=%d/epochs=%d/w=%d", shape.n, shape.epochs, workers)
			b.Run(name, func(b *testing.B) {
				sp := scenario.Spec{Family: scenario.Random, N: shape.n, Seed: 1,
					Churn: scenario.Churn{Epochs: shape.epochs, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
				b.ReportAllocs()
				var plays int
				for i := 0; i < b.N; i++ {
					tl, err := Build(sp)
					if err != nil {
						b.Fatal(err)
					}
					rep, err := core.CheckFaithfulnessCfg(NewSystem(tl, Faithful),
						core.CheckConfig{PerEpoch: true, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Faithful() {
						b.Fatalf("extended spec violated: %v", rep.Violations)
					}
					plays = rep.Checked
				}
				b.ReportMetric(float64(plays), "plays")
			})
		}
	}
}

// BenchmarkChurnScale is the big-n end of the ladder, in two tiers.
//
// The boundary/* rows are the published delta-vs-scratch ladder: they
// measure the epoch-boundary rebuild alone — Build, then forcing the
// honest state of every epoch via init — with the incremental engine
// live ("delta") and pinned off ("scratch", DisableDelta's protocol
// simulations). No deviation search runs, so the rows are cheap enough
// for the per-push bench smoke, and their ratio is the headline number
// for the delta engine: the n=32 boundary cost must improve >= 3x in
// both time and allocs/op.
func BenchmarkChurnScale(b *testing.B) {
	for _, n := range []int{16, 32} {
		for _, mode := range []string{"scratch", "delta"} {
			n, mode := n, mode
			b.Run(fmt.Sprintf("boundary/n=%d/%s", n, mode), func(b *testing.B) {
				sp := scenario.Spec{Family: scenario.Random, N: n, Seed: 1,
					Churn: scenario.Churn{Epochs: 3, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tl, err := Build(sp)
					if err != nil {
						b.Fatal(err)
					}
					if mode == "scratch" {
						tl.DisableDelta()
					}
					sys := NewSystem(tl, Faithful)
					if _, err := sys.Ledger(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	benchChurnScaleSweep(b)
}

// benchChurnScaleSweep is the opt-in tier: n={16,32} per-epoch
// deviation searches with profit-bound pruning, run with a NumCPU
// pool — the configuration a real sweep at that size would use. One
// n=16 search alone takes ~30 minutes sequential (658 plays, ~550GB
// allocated), so these rows stay opt-in (BENCH_CHURN_SCALE=1) and
// live in the nightly CI lane, not the per-push bench smoke.
func benchChurnScaleSweep(b *testing.B) {
	if os.Getenv("BENCH_CHURN_SCALE") == "" {
		return // sweep rows are nightly-lane only
	}
	for _, n := range []int{16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sp := scenario.Spec{Family: scenario.Random, N: n, Seed: 1,
				Churn: scenario.Churn{Epochs: 2, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
			b.ReportAllocs()
			var checked, pruned int
			for i := 0; i < b.N; i++ {
				tl, err := Build(sp)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := core.CheckFaithfulnessCfg(NewSystem(tl, Faithful), core.CheckConfig{
					PerEpoch:   true,
					Workers:    -1,
					PruneBound: core.SelfBound,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Faithful() {
					b.Fatalf("extended spec violated: %v", rep.Violations)
				}
				checked, pruned = rep.Checked, rep.Pruned
			}
			b.ReportMetric(float64(checked), "plays")
			b.ReportMetric(float64(pruned), "pruned")
		})
	}
}
