package churn

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// BenchmarkTimelineBuild isolates the schedule/graph-evolution cost —
// everything before any protocol runs.
func BenchmarkTimelineBuild(b *testing.B) {
	sp := scenario.Spec{Family: scenario.Random, N: 8, Seed: 1,
		Churn: scenario.Churn{Epochs: 4, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn is the epochs × n × workers ladder of the per-epoch
// deviation search against the extended specification — the unit of
// work a `faithcheck -suite churn` sweep scales by, published as
// BENCH_churn.json with a committed baseline. Workers > 1 rows are
// where multi-core runners should show the parallel win; the per-play
// cost is roughly one epoch's construction+execution (honest epochs
// come from the timeline cache).
func BenchmarkChurn(b *testing.B) {
	if testing.Short() {
		b.Skip("deviation searches are the slow lane")
	}
	shapes := []struct{ n, epochs int }{
		{6, 2},
		{6, 4},
		{8, 2},
	}
	for _, shape := range shapes {
		for _, workers := range []int{1, 4} {
			shape, workers := shape, workers
			name := fmt.Sprintf("n=%d/epochs=%d/w=%d", shape.n, shape.epochs, workers)
			b.Run(name, func(b *testing.B) {
				sp := scenario.Spec{Family: scenario.Random, N: shape.n, Seed: 1,
					Churn: scenario.Churn{Epochs: shape.epochs, Joins: 1, Leaves: 1, RedrawFraction: 0.25}}
				var plays int
				for i := 0; i < b.N; i++ {
					tl, err := Build(sp)
					if err != nil {
						b.Fatal(err)
					}
					rep, err := core.CheckFaithfulness(NewSystem(tl, Faithful),
						core.PerEpoch(), core.Workers(workers))
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Faithful() {
						b.Fatalf("extended spec violated: %v", rep.Violations)
					}
					plays = rep.Checked
				}
				b.ReportMetric(float64(plays), "plays")
			})
		}
	}
}
