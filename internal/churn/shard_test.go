package churn

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/settle"
)

// shardedDynamicSpec composes churn with the sharded-settlement axis:
// three epochs over a 2-shard bank with a participant crash-restart
// per settlement.
func shardedDynamicSpec() scenario.Spec {
	sp := dynamicSpec()
	sp.Shards = scenario.Shards{K: 2, Crash: settle.PlanParticipant}
	return sp
}

// TestSettleComposesWithChurn: every epoch of a sharded timeline
// carries live settlement options, epoch 0 replays the static
// derivation, and later epochs are re-salted — fresh home-shard
// routing and crash timings per epoch, while K and the crash plan stay
// the axis's.
func TestSettleComposesWithChurn(t *testing.T) {
	sp := shardedDynamicSpec()
	tl := mustBuild(t, sp)
	seen := map[uint64]int{}
	for i, e := range tl.Epochs {
		o := e.Compiled.Params.Settle
		if !o.Enabled() {
			t.Fatalf("epoch %d lost the settlement options", i)
		}
		if o.Shards != sp.Shards.K || o.Plan != sp.Shards.Crash {
			t.Fatalf("epoch %d options %+v deviate from the axis %+v", i, o, sp.Shards)
		}
		if o != sp.SettleOptionsForEpoch(i) {
			t.Fatalf("epoch %d options not the spec's epoch derivation", i)
		}
		if prev, dup := seen[o.Seed]; dup {
			t.Fatalf("epochs %d and %d share a settlement seed", prev, i)
		}
		seen[o.Seed] = i
	}
	if tl.Epochs[0].Compiled.Params.Settle != sp.SettleOptions() {
		t.Fatal("epoch 0 must replay the static settlement")
	}
	// The composed timeline is still a pure function of the Spec.
	again := mustBuild(t, sp)
	for i := range tl.Epochs {
		if tl.Epochs[i].Compiled.Params.Settle != again.Epochs[i].Compiled.Params.Settle {
			t.Fatalf("epoch %d settlement options not deterministic", i)
		}
	}
	// A singleton-bank timeline of the same spec carries none anywhere.
	singleton := mustBuild(t, dynamicSpec())
	for i, e := range singleton.Epochs {
		if e.Compiled.Params.Settle.Enabled() {
			t.Fatalf("singleton epoch %d grew settlement options", i)
		}
	}
}

// TestShardCatalogueUnderChurn: the shard-window deviation family
// rides the settlement axis into every identity's churn catalogue, and
// a singleton-bank timeline keeps its catalogue byte-identical.
func TestShardCatalogueUnderChurn(t *testing.T) {
	names := func(sys *System, id Identity) map[string]bool {
		out := map[string]bool{}
		for _, d := range sys.Deviations(core.NodeID(id)) {
			out[d.Name()] = true
		}
		return out
	}
	sharded := NewSystem(mustBuild(t, shardedDynamicSpec()), Faithful)
	singleton := NewSystem(mustBuild(t, dynamicSpec()), Faithful)
	for _, want := range []string{"exit-scam-2pc-window", "double-credit-two-homes", "stall-prepare-abort"} {
		for _, id := range sharded.Timeline().Identities() {
			if !names(sharded, id)[want] {
				t.Errorf("identity %d: %s missing under the shard axis", id, want)
			}
		}
		for _, id := range singleton.Timeline().Identities() {
			if names(singleton, id)[want] {
				t.Errorf("identity %d: %s present without the shard axis", id, want)
			}
		}
	}
}

// TestLeaveMasqueradingAsLoss: the churn×loss composite deviation — a
// leaver going handler-silent behind the lossy network and departing
// with an empty DATA4 — is attributed to the node by the extended
// specification, while an honest leaver on the same lossy links
// departs unflagged. The deviation only exists when both axes are on.
func TestLeaveMasqueradingAsLoss(t *testing.T) {
	const name = "leave-masquerading-as-loss"
	sys := NewSystem(mustBuild(t, lossyDynamicSpec()), Faithful)

	// Honest lossy leavers are the control: genuine drops belong to the
	// network, so the honest timeline must end with nobody flagged.
	honest, err := sys.Run(-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(honest.Detected) != 0 {
		t.Fatalf("honest lossy timeline flagged %v", honest.Detected)
	}

	found := false
	for _, id := range sys.Timeline().Identities() {
		var dev core.Deviation
		for _, d := range sys.Deviations(core.NodeID(id)) {
			if d.Name() == name {
				dev = d
			}
		}
		if dev == nil {
			continue
		}
		found = true
		epochs := sys.EpochsOf(core.NodeID(id), dev)
		if len(epochs) != 1 {
			t.Fatalf("identity %d: %s active in %v, want exactly the last member epoch", id, name, epochs)
		}
		boundary, leaves := sys.Timeline().DepartureOf(id)
		if !leaves || epochs[0] != boundary-1 {
			t.Fatalf("identity %d: %s active in %d, departure boundary %d (leaves=%v)",
				id, name, epochs[0], boundary, leaves)
		}
		out, err := sys.RunEpoch(core.NodeID(id), dev, epochs[0])
		if err != nil {
			t.Fatal(err)
		}
		flagged := false
		for _, d := range out.Detected {
			if d == core.NodeID(id) {
				flagged = true
			}
		}
		if !flagged {
			t.Errorf("identity %d: %s not attributed to the node (detected=%v)", id, name, out.Detected)
		}
		if got, base := out.Utilities[core.NodeID(id)], honest.Utilities[core.NodeID(id)]; got >= base {
			t.Errorf("identity %d: %s utility %d not strictly below honest %d", id, name, got, base)
		}
	}
	if !found {
		t.Fatal("no identity carries the deviation; the schedule has no leavers?")
	}

	// Both axes gate it: churn alone (no loss) must not offer it.
	reliable := NewSystem(mustBuild(t, dynamicSpec()), Faithful)
	for _, id := range reliable.Timeline().Identities() {
		for _, d := range reliable.Deviations(core.NodeID(id)) {
			if d.Name() == name {
				t.Fatalf("identity %d: %s present without the loss axis", id, name)
			}
		}
	}
}

// TestShardedChurnVerdicts: the composed axes end to end — the
// per-epoch deviation search over a sharded timeline keeps the
// extended spec clean and stays byte-identical across worker counts.
func TestShardedChurnVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("per-epoch deviation search")
	}
	tl := mustBuild(t, shardedDynamicSpec())
	seq, err := core.CheckFaithfulnessCfg(NewSystem(tl, Faithful), core.CheckConfig{Workers: 1, PerEpoch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Faithful() {
		t.Fatalf("faithful spec violated under sharded churn: %v", seq.Violations)
	}
	par, err := core.CheckFaithfulnessCfg(NewSystem(mustBuild(t, shardedDynamicSpec()), Faithful),
		core.CheckConfig{Workers: 4, PerEpoch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sharded churn report differs across worker counts\nseq: %+v\npar: %+v", seq, par)
	}
}
