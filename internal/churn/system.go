package churn

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/rational"
	"repro/internal/spec"
)

// Variant selects which protocol the timeline plays.
type Variant int

const (
	// Plain plays the original FPSS protocol (no checkers, no bank).
	Plain Variant = iota
	// Faithful plays the paper's extended specification.
	Faithful
)

func (v Variant) String() string {
	if v == Plain {
		return "plain"
	}
	return "faithful"
}

// epochAction is what a deviation does in one epoch: which epoch-local
// node deviates, and with which catalogued strategy. aliased marks
// whitewashing epochs, where the deviator plays through a fresh
// identity's slot: the alias's utility delta is credited to the
// deviator and the alias is restored to its honest utility, so the
// gain measures the deviation itself, not the mere fact of playing an
// extra seat.
type epochAction struct {
	local   graph.NodeID
	dev     *rational.Deviation
	aliased bool
}

// deviation is one catalogued multi-epoch deviation for one identity.
type deviation struct {
	name    string
	classes []spec.ActionKind
	// epochs is the ascending activity set (see core.EpochedSystem.EpochsOf).
	epochs []int
	// act materializes the epoch's action; nil when inactive in e.
	act func(e int) (*epochAction, error)
	// execOnly marks deviations whose every epoch action leaves the
	// construction phases honest (payment misreports only) — the class
	// ProfitUpperBound can bound under the extended specification.
	execOnly bool
}

var _ core.Deviation = (*deviation)(nil)

// Name implements core.Deviation.
func (d *deviation) Name() string { return d.name }

// Classes implements core.Deviation. Shared, read-only.
func (d *deviation) Classes() []spec.ActionKind { return d.classes }

func (d *deviation) activeIn(e int) bool {
	for _, a := range d.epochs {
		if a == e {
			return true
		}
	}
	return false
}

// System plays a Timeline as one core.System: the node set is the
// identity set, a run is the whole timeline (one construction +
// execution round per epoch), and utilities are summed per identity
// across epochs with the bank's ledger carrying balances over the
// boundaries. It implements core.EpochedSystem, so
// core.CheckFaithfulness(sys, core.PerEpoch(), core.Workers(k)) replays
// the (identity, deviation) grid per epoch through the same worker
// pool the static search uses. Run and RunEpoch are safe for
// concurrent calls once built (the per-epoch caches are lazily
// initialized under sync.Once and read-only afterwards).
type System struct {
	tl      *Timeline
	variant Variant

	once     sync.Once
	initErr  error
	epochs   []core.System         // per-epoch rational system
	stateful []core.StatefulSystem // the same systems, stateful view
	states   []core.TruthfulState  // per-epoch truthful snapshot
	honest   []core.Outcome        // per-epoch honest outcome, epoch-local keys
	cats     map[Identity][]*deviation
	ledger   *bank.Ledger

	snapOnce sync.Once
	snap     *timelineState
	snapErr  error

	// Build-stat recording (EnableBuildStats before first use): one
	// entry per epoch describing how the boundary was rebuilt and what
	// it cost.
	statsOn bool
	stats   []BuildStat
}

// BuildStat records one epoch's boundary-rebuild cost during init:
// wall time and heap allocations of producing the epoch's truthful
// snapshot, plus which path produced it.
type BuildStat struct {
	Epoch int
	// Rebuild is the wall time of the epoch's snapshot build (central
	// evolve/compute or protocol sims, plus the execution tail).
	Rebuild time.Duration
	// Allocs is the heap allocation count (runtime.MemStats.Mallocs
	// delta) over the same window.
	Allocs uint64
	// Mode names the path: "delta" (central state repaired from the
	// previous epoch), "central" (central state computed from scratch —
	// epoch 0 of the incremental path), or "sim" (full protocol
	// simulations — the oracle path, or an enabled loss model).
	Mode string
}

// EnableBuildStats turns on per-epoch boundary timing/allocation
// recording. Must be called before the system is first used (init runs
// lazily on first query).
func (s *System) EnableBuildStats() { s.statsOn = true }

// BuildStats forces initialization and returns the per-epoch boundary
// rebuild record. Empty unless EnableBuildStats was called first.
func (s *System) BuildStats() ([]BuildStat, error) {
	if err := s.init(); err != nil {
		return nil, err
	}
	return s.stats, nil
}

var _ core.EpochedSystem = (*System)(nil)
var _ core.StatefulEpochedSystem = (*System)(nil)
var _ core.Bounder = (*System)(nil)

// NewSystem wraps a timeline for one protocol variant.
func NewSystem(tl *Timeline, v Variant) *System {
	return &System{tl: tl, variant: v}
}

// Timeline returns the wrapped timeline.
func (s *System) Timeline() *Timeline { return s.tl }

// NumEpochs implements core.EpochedSystem.
func (s *System) NumEpochs() int { return len(s.tl.Epochs) }

func (s *System) init() error {
	s.once.Do(func() {
		s.epochs = make([]core.System, len(s.tl.Epochs))
		s.stateful = make([]core.StatefulSystem, len(s.tl.Epochs))
		s.states = make([]core.TruthfulState, len(s.tl.Epochs))
		s.honest = make([]core.Outcome, len(s.tl.Epochs))
		for i, e := range s.tl.Epochs {
			var m0 runtime.MemStats
			var start time.Time
			if s.statsOn {
				runtime.ReadMemStats(&m0)
				start = time.Now()
			}
			mode := "sim"
			plain, faith := e.Compiled.Systems()
			if e.useCentral() {
				// Incremental path: one immutable central solution per
				// epoch — repaired from the previous epoch's through the
				// boundary delta — seeds both variants' snapshots, so the
				// boundary cost is the repair plus the execution tail, not
				// three protocol simulations.
				c, err := e.centralState()
				if err != nil {
					s.initErr = fmt.Errorf("churn: epoch %d central: %w", i, err)
					return
				}
				plain.SeedHonest(c.Sol)
				faith.SeedHonest(c.Sol)
				if e.prev != nil && e.delta != nil {
					mode = "delta"
				} else {
					mode = "central"
				}
			}
			if s.variant == Plain {
				s.epochs[i] = plain
			} else {
				s.epochs[i] = faith
			}
			// One truthful snapshot per epoch: its baseline doubles as
			// the honest outcome, and every deviant epoch play overlays
			// it through the caller's play context.
			ss := core.AsStateful(s.epochs[i])
			st, err := ss.Snapshot()
			if err != nil {
				s.initErr = fmt.Errorf("churn: epoch %d baseline: %w", i, err)
				return
			}
			s.stateful[i] = ss
			s.states[i] = st
			s.honest[i] = st.Baseline()
			if s.statsOn {
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				s.stats = append(s.stats, BuildStat{
					Epoch:   i,
					Rebuild: time.Since(start),
					Allocs:  m1.Mallocs - m0.Mallocs,
					Mode:    mode,
				})
			}
		}
		if err := s.buildLedger(); err != nil {
			s.initErr = err
			return
		}
		s.buildCatalogues()
	})
	return s.initErr
}

// buildLedger replays the honest timeline through the bank's
// carry-forward book: every member's epoch utility is credited after
// the epoch, departing identities are settled at the boundary, and
// joiners open fresh accounts at zero.
func (s *System) buildLedger() error {
	l := bank.NewLedger()
	for _, e := range s.tl.Epochs {
		for _, id := range e.Left {
			if _, err := l.Settle(bank.Account(id)); err != nil {
				return fmt.Errorf("churn: ledger: %w", err)
			}
		}
		for i, id := range e.Members {
			if err := l.Open(bank.Account(id)); err != nil {
				return fmt.Errorf("churn: ledger: %w", err)
			}
			if err := l.Credit(bank.Account(id), s.honest[e.Index].Utilities[core.NodeID(i)]); err != nil {
				return fmt.Errorf("churn: ledger: %w", err)
			}
		}
	}
	s.ledger = l
	return nil
}

// Ledger exposes the honest timeline's carry-forward book (final and
// settled balances per identity). Read-only.
func (s *System) Ledger() (*bank.Ledger, error) {
	if err := s.init(); err != nil {
		return nil, err
	}
	return s.ledger, nil
}

// Nodes implements core.System: one NodeID per identity that ever
// participates.
func (s *System) Nodes() []core.NodeID {
	ids := s.tl.Identities()
	out := make([]core.NodeID, len(ids))
	for i, id := range ids {
		out[i] = core.NodeID(id)
	}
	return out
}

// Deviations implements core.System: the full static catalogue (each
// deviation active in every epoch the identity is a member of) plus
// the epoch-boundary deviations that only exist under churn.
func (s *System) Deviations(n core.NodeID) []core.Deviation {
	if err := s.init(); err != nil {
		return nil
	}
	cat := s.cats[Identity(n)]
	out := make([]core.Deviation, len(cat))
	for i, d := range cat {
		out[i] = d
	}
	return out
}

// EpochsOf implements core.EpochedSystem.
func (s *System) EpochsOf(n core.NodeID, dev core.Deviation) []int {
	d, ok := dev.(*deviation)
	if !ok {
		return nil
	}
	return d.epochs
}

// Run implements core.System: the deviation is active in every epoch
// of its activity set — the dynamic analogue of a static deviant
// playing its strategy for the whole run.
func (s *System) Run(deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	return s.run(nil, deviator, dev, -1)
}

// RunEpoch implements core.EpochedSystem: the deviation is pinned to
// one epoch, every other epoch plays the suggested specification.
func (s *System) RunEpoch(deviator core.NodeID, dev core.Deviation, epoch int) (core.Outcome, error) {
	if epoch < 0 || epoch >= len(s.tl.Epochs) {
		return core.Outcome{}, fmt.Errorf("churn: epoch %d out of range [0,%d)", epoch, len(s.tl.Epochs))
	}
	return s.run(nil, deviator, dev, epoch)
}

// run aggregates the timeline. pin >= 0 restricts the deviation to one
// epoch. The honest per-epoch outcomes are cached, so a run only pays
// for the epochs the deviation actually touches; with a play context
// those epochs route through the per-epoch truthful snapshots and the
// worker's arena instead of fresh full runs.
func (s *System) run(ctx *core.PlayContext, deviator core.NodeID, dev core.Deviation, pin int) (core.Outcome, error) {
	if err := s.init(); err != nil {
		return core.Outcome{}, err
	}
	var d *deviation
	if deviator >= 0 && dev != nil {
		var ok bool
		if d, ok = dev.(*deviation); !ok {
			return core.Outcome{}, fmt.Errorf("churn: foreign deviation %q", dev.Name())
		}
	}

	out := core.Outcome{
		Utilities: timelineUtilities(ctx, len(s.tl.Identities())),
		Completed: true,
	}
	for _, id := range s.tl.Identities() {
		out.Utilities[core.NodeID(id)] = 0
	}

	for _, e := range s.tl.Epochs {
		var act *epochAction
		if d != nil && (pin < 0 || pin == e.Index) && d.activeIn(e.Index) {
			var err error
			act, err = d.act(e.Index)
			if err != nil {
				return core.Outcome{}, err
			}
		}
		epochOut := s.honest[e.Index]
		if act != nil {
			// The epoch outcome may live in the context's arena: it is
			// consumed below, before the next epoch's play reuses it.
			deviant, err := s.stateful[e.Index].Play(ctx, s.states[e.Index], core.NodeID(act.local), act.dev)
			if err != nil {
				return core.Outcome{}, fmt.Errorf("churn: epoch %d: %w", e.Index, err)
			}
			epochOut = deviant
		}
		if !epochOut.Completed {
			out.Completed = false
		}
		for i, id := range e.Members {
			out.Utilities[core.NodeID(id)] += epochOut.Utilities[core.NodeID(i)]
		}
		if act != nil && act.aliased {
			// Whitewashing epoch: restore the alias to its honest
			// utility and credit the delta to the true deviator.
			honest := s.honest[e.Index].Utilities[core.NodeID(act.local)]
			got := epochOut.Utilities[core.NodeID(act.local)]
			alias := e.IdentityOf(act.local)
			out.Utilities[core.NodeID(alias)] += honest - got
			out.Utilities[core.NodeID(deviator)] += got - honest
		}
		for _, det := range epochOut.Detected {
			if int(det) < len(e.Members) {
				out.Detected = append(out.Detected, core.NodeID(e.IdentityOf(graph.NodeID(det))))
			}
		}
	}
	return out, nil
}

// buildCatalogues assembles the per-identity deviation lists: every
// static catalogue entry wrapped over the identity's member epochs,
// plus the three boundary deviations where the schedule makes them
// meaningful.
func (s *System) buildCatalogues() {
	base := rational.Catalogue(s.variant == Faithful)
	if s.tl.Spec.Shards.Enabled() {
		// The sharded-settlement axis brings its deviation family along,
		// exactly as the static System adapters do: each epoch's play
		// already settles through the epoch's re-salted shard bank.
		base = append(base, rational.ShardCatalogue(s.variant == Faithful)...)
	}
	s.cats = make(map[Identity][]*deviation, len(s.tl.Identities()))
	for _, id := range s.tl.Identities() {
		id := id
		member := s.tl.MemberEpochs(id)
		cat := make([]*deviation, 0, len(base)+3)
		for _, rd := range base {
			rd := rd
			cat = append(cat, &deviation{
				name:    rd.Name(),
				classes: rd.Classes(),
				epochs:  member,
				act: func(e int) (*epochAction, error) {
					local, _ := s.tl.Epochs[e].Local(id)
					return &epochAction{local: local, dev: rd}, nil
				},
				execOnly: rd.ExecOnly(),
			})
		}
		if d := s.staleCatalogue(id, member); d != nil {
			cat = append(cat, d)
		}
		if d := s.leaveWithoutSettling(id); d != nil {
			cat = append(cat, d)
		}
		if d := s.leaveMasqueradingAsLoss(id); d != nil {
			cat = append(cat, d)
		}
		if d := s.rejoinFresh(id); d != nil {
			cat = append(cat, d)
		}
		s.cats[id] = cat
	}
}

// staleCatalogue is the first boundary deviation: in every epoch after
// its first, the deviator skips the construction-phase recomputation
// and re-advertises the catalogue it converged to in the previous
// epoch (entries touching departed nodes dropped, costs now possibly
// wrong). Under plain FPSS the stale prices can attract or shed
// traffic at yesterday's rates; under the extended specification the
// checkers' freshly mirrored computation diverges from the stale
// advertisement and the bank withholds the green light.
func (s *System) staleCatalogue(id Identity, member []int) *deviation {
	var epochs []int
	for _, e := range member {
		if e == 0 {
			continue
		}
		if _, prev := s.tl.Epochs[e-1].Local(id); prev {
			epochs = append(epochs, e)
		}
	}
	if len(epochs) == 0 {
		return nil
	}
	return &deviation{
		name:    "stale-catalogue-adverts",
		classes: []spec.ActionKind{spec.MessagePassing, spec.Computation},
		epochs:  epochs,
		act: func(e int) (*epochAction, error) {
			rt, pt, err := s.tl.staleTables(id, e)
			if err != nil {
				return nil, fmt.Errorf("churn: stale tables for %d@%d: %w", id, e, err)
			}
			local, _ := s.tl.Epochs[e].Local(id)
			rd := rational.NewDeviation("stale-catalogue-adverts",
				[]spec.ActionKind{spec.MessagePassing, spec.Computation},
				rational.Parts{Protocol: func(rational.Ctx) *fpss.Strategy {
					return &fpss.Strategy{
						PostRouting: func(fpss.RoutingTable) fpss.RoutingTable { return rt.Clone() },
						PostPricing: func(fpss.PricingTable) fpss.PricingTable { return pt.Clone() },
					}
				}})
			return &epochAction{local: local, dev: rd}, nil
		},
	}
}

// leaveWithoutSettling is the second boundary deviation: in its final
// member epoch the deviator reports an empty DATA4 and departs,
// betting that the money it owes leaves with it. Plain FPSS trusts the
// report — the exit scam keeps the full payment. The extended
// specification audits the execution phase before the boundary is
// processed (the ledger settles a leaver only after the epoch's
// checkpoint), so the fraud is repaid with the ε-above penalty on top.
func (s *System) leaveWithoutSettling(id Identity) *deviation {
	boundary, leaves := s.tl.DepartureOf(id)
	if !leaves {
		return nil
	}
	last := boundary - 1
	return &deviation{
		name:    "leave-without-settling",
		classes: []spec.ActionKind{spec.Computation},
		epochs:  []int{last},
		act: func(e int) (*epochAction, error) {
			local, _ := s.tl.Epochs[e].Local(id)
			return &epochAction{local: local, dev: underreportAll()}, nil
		},
		execOnly: true,
	}
}

// leaveMasqueradingAsLoss is the churn×loss composite of the exit
// scam: in its final member epoch the deviator goes half-silent —
// every other outgoing advertisement dropped at the handler, a pattern
// tuned to read like a ~50% lossy link — then departs with an empty
// DATA4, betting the audit writes the whole episode off as network
// weather around a leaver. The attribution gate is not fooled:
// handler-level drops never enter the sim's loss counters, so the
// faithful construction pins both the silence and the misreport on the
// node before the boundary settles it. An honest leaver on the same
// lossy links is the control — its genuine drops are the network's,
// and it departs unflagged. Only meaningful when both axes are on.
func (s *System) leaveMasqueradingAsLoss(id Identity) *deviation {
	if !s.tl.Spec.Loss.Enabled() {
		return nil
	}
	boundary, leaves := s.tl.DepartureOf(id)
	if !leaves {
		return nil
	}
	last := boundary - 1
	return &deviation{
		name:    "leave-masquerading-as-loss",
		classes: []spec.ActionKind{spec.MessagePassing, spec.Computation},
		epochs:  []int{last},
		act: func(e int) (*epochAction, error) {
			local, _ := s.tl.Epochs[e].Local(id)
			rd := rational.NewDeviation("leave-masquerading-as-loss",
				[]spec.ActionKind{spec.MessagePassing, spec.Computation},
				rational.Parts{
					Protocol: func(rational.Ctx) *fpss.Strategy {
						drops := 0 // per-play: Protocol builds a fresh closure each play
						return &fpss.Strategy{SendUpdate: func(_ graph.NodeID, u fpss.Update) (fpss.Update, bool) {
							drops++
							return u, drops%2 == 0
						}}
					},
					ReportPayment: func(fpss.PaymentList) fpss.PaymentList { return fpss.PaymentList{} },
				})
			return &epochAction{local: local, dev: rd}, nil
		},
	}
}

// rejoinFresh is the third boundary deviation — whitewashing: the
// deviator runs the exit scam of leaveWithoutSettling, then slips back
// in as one of the boundary's fresh identities and repeats it in every
// epoch it plays under the new name. The fresh account opens at zero,
// so nothing follows it across the boundary except what the in-epoch
// audit already settled — which is exactly why the extended
// specification keeps the whole scheme unprofitable (each round costs
// ε) while plain FPSS pays it once per identity.
func (s *System) rejoinFresh(id Identity) *deviation {
	boundary, leaves := s.tl.DepartureOf(id)
	if !leaves || len(s.tl.Epochs[boundary].Joined) == 0 {
		return nil
	}
	alias := s.tl.Epochs[boundary].Joined[0]
	epochs := []int{boundary - 1}
	epochs = append(epochs, s.tl.MemberEpochs(alias)...)
	return &deviation{
		name:    "rejoin-fresh-identity",
		classes: []spec.ActionKind{spec.InfoRevelation, spec.Computation},
		epochs:  epochs,
		act: func(e int) (*epochAction, error) {
			if e < boundary {
				local, _ := s.tl.Epochs[e].Local(id)
				return &epochAction{local: local, dev: underreportAll()}, nil
			}
			local, _ := s.tl.Epochs[e].Local(alias)
			return &epochAction{local: local, dev: underreportAll(), aliased: true}, nil
		},
		execOnly: true,
	}
}

// underreportAll is the exit-scam payment misreport: an empty DATA4.
func underreportAll() *rational.Deviation {
	return rational.NewDeviation("underreport-exit",
		[]spec.ActionKind{spec.Computation},
		rational.Parts{ReportPayment: func(fpss.PaymentList) fpss.PaymentList { return fpss.PaymentList{} }})
}
