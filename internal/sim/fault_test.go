package sim

import "testing"

// recSink counts deliveries and Recover calls; the drain loop should
// hand it Recover exactly once per restart, before further traffic.
type recSink struct {
	got      []any
	recovers int
	// afterRecover records how many deliveries had arrived when each
	// Recover fired, pinning "recovery runs before further delivery".
	afterRecover []int
}

func (s *recSink) Init(Context)              {}
func (s *recSink) Recv(_ Context, m Message) { s.got = append(s.got, m.Payload) }
func (s *recSink) Recover(Context) {
	s.recovers++
	s.afterRecover = append(s.afterRecover, len(s.got))
}

// sprayRun sends n numbered messages 0→1 under the fault schedule and
// returns the receiver and counters.
func sprayRun(t *testing.T, m FaultModel, n int) (*recSink, Counters) {
	t.Helper()
	net := NewNetwork(WithFaults(m))
	rx := &recSink{}
	if err := net.Attach(0, &spray{to: 1, n: n}); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(1, rx); err != nil {
		t.Fatal(err)
	}
	c, err := net.Run(int64(n) * 4)
	if err != nil {
		t.Fatal(err)
	}
	return rx, c
}

func TestFaultZeroModelIsNoop(t *testing.T) {
	rx, c := sprayRun(t, FaultModel{}, 20)
	if len(rx.got) != 20 || c.Crashes != 0 || c.Restarts != 0 || c.CrashDropped != 0 {
		t.Fatalf("zero model interfered: delivered=%d counters=%+v", len(rx.got), c)
	}
}

func TestFaultCrashWithoutRestartDropsRest(t *testing.T) {
	// Crash after the 3rd delivery, never restart: 3 delivered, the
	// remaining 17 dropped and counted.
	rx, c := sprayRun(t, FaultModel{Schedule: []Crash{
		{Addr: 1, AfterDeliveries: 3, RestartDelay: -1},
	}}, 20)
	if len(rx.got) != 3 {
		t.Fatalf("delivered %d, want 3", len(rx.got))
	}
	if c.Crashes != 1 || c.Restarts != 0 || c.CrashDropped != 17 {
		t.Fatalf("counters = %+v, want Crashes=1 Restarts=0 CrashDropped=17", c)
	}
	if rx.recovers != 0 {
		t.Fatalf("Recover called %d times on a dead endpoint", rx.recovers)
	}
}

func TestFaultRestartCallsRecoverBeforeDelivery(t *testing.T) {
	// All 20 messages are enqueued at Init with delay 1, so they all
	// arrive at t=1 in seq order. Crash after #3 with a 0-tick restart:
	// the restart marker lands after the still-queued traffic of the
	// same tick, so the rest of the burst is dropped, then the endpoint
	// comes back up.
	rx, c := sprayRun(t, FaultModel{Schedule: []Crash{
		{Addr: 1, AfterDeliveries: 3, RestartDelay: 0},
	}}, 20)
	if len(rx.got) != 3 {
		t.Fatalf("delivered %d, want 3 (burst arrives in one tick)", len(rx.got))
	}
	if rx.recovers != 1 {
		t.Fatalf("Recover called %d times, want 1", rx.recovers)
	}
	if len(rx.afterRecover) != 1 || rx.afterRecover[0] != 3 {
		t.Fatalf("Recover fired at delivery count %v, want [3]", rx.afterRecover)
	}
	if c.Crashes != 1 || c.Restarts != 1 || c.CrashDropped != 17 {
		t.Fatalf("counters = %+v, want Crashes=1 Restarts=1 CrashDropped=17", c)
	}
}

// trickle sends one message per received tick, so deliveries to the
// peer are spread over time and a restarted endpoint sees new traffic.
type trickle struct {
	to   Addr
	left int
}

func (s *trickle) Init(ctx Context) {
	if s.left > 0 {
		s.left--
		ctx.Send(s.to, s.left)
	}
	ctx.Send(ctx.Self(), tick{})
}
func (s *trickle) Recv(ctx Context, m Message) {
	if _, ok := m.Payload.(tick); !ok {
		return
	}
	if s.left > 0 {
		s.left--
		ctx.Send(s.to, s.left)
		ctx.Send(ctx.Self(), tick{})
	}
}

type tick struct{}

func TestFaultCrashDuringRecovery(t *testing.T) {
	// Two schedule entries on the same address: the second counts
	// deliveries from the restart onwards — crash-during-recovery.
	// With a trickle sender (one message per tick) the downtime windows
	// are narrow: crash after 2, restart after 3 ticks, crash again
	// after 2 post-restart deliveries, restart again, then drain.
	net := NewNetwork(WithFaults(FaultModel{Schedule: []Crash{
		{Addr: 1, AfterDeliveries: 2, RestartDelay: 3},
		{Addr: 1, AfterDeliveries: 2, RestartDelay: 3},
	}}))
	rx := &recSink{}
	if err := net.Attach(0, &trickle{to: 1, left: 12}); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(1, rx); err != nil {
		t.Fatal(err)
	}
	c, err := net.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if c.Crashes != 2 || c.Restarts != 2 {
		t.Fatalf("counters = %+v, want Crashes=2 Restarts=2", c)
	}
	if rx.recovers != 2 {
		t.Fatalf("Recover called %d times, want 2", rx.recovers)
	}
	if c.CrashDropped == 0 {
		t.Fatalf("no deliveries dropped across two downtime windows: %+v", c)
	}
	// Deliveries + drops account for every sent message.
	if got := int64(len(rx.got)) + c.CrashDropped; got != 12 {
		t.Fatalf("delivered(%d) + crash-dropped(%d) = %d, want 12", len(rx.got), c.CrashDropped, got)
	}
}

func TestSelfSendsExemptFromLoss(t *testing.T) {
	// A handler's self-sends are private timers: even a certain-loss
	// model must not eat them, or every timer-driven protocol would
	// deadlock under loss. The trickle sender paces itself with
	// self-send ticks; under Rate=1 every 0→1 message is lost but the
	// tick chain keeps running to completion.
	net := NewNetwork(WithLoss(LossModel{Rate: 1, Seed: 7, Attempts: 1}))
	rx := &recSink{}
	if err := net.Attach(0, &trickle{to: 1, left: 5}); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(1, rx); err != nil {
		t.Fatal(err)
	}
	c, err := net.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 0 || c.Lost != 5 {
		t.Fatalf("want all 5 cross-link messages lost, got delivered=%d counters=%+v", len(rx.got), c)
	}
	// 5 payloads + 5 ticks sent; ticks never dropped.
	if c.Sent != 10 {
		t.Fatalf("Sent = %d, want 10 (5 payloads + 5 self-ticks)", c.Sent)
	}
}

// TestFaultPooledReuse is the pooling-hygiene regression for the crash
// axis (mirroring the loss axis): a crashy scenario followed by a clean
// one on the same pooled Network must not replay the crash schedule or
// leak down-state or counters.
func TestFaultPooledReuse(t *testing.T) {
	net := AcquireNetwork(WithFaults(FaultModel{Schedule: []Crash{
		{Addr: 1, AfterDeliveries: 2, RestartDelay: -1},
	}}))
	rx := &recSink{}
	if err := net.Attach(0, &spray{to: 1, n: 10}); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(1, rx); err != nil {
		t.Fatal(err)
	}
	c, err := net.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Crashes != 1 || c.CrashDropped != 8 {
		t.Fatalf("crashy run counters = %+v, want Crashes=1 CrashDropped=8", c)
	}
	net.Release()

	// Clean scenario on the pooled network: same addresses, no model.
	net2 := AcquireNetwork()
	rx2 := &recSink{}
	if err := net2.Attach(0, &spray{to: 1, n: 10}); err != nil {
		t.Fatal(err)
	}
	if err := net2.Attach(1, rx2); err != nil {
		t.Fatal(err)
	}
	c2, err := net2.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rx2.got) != 10 || c2.Crashes != 0 || c2.Restarts != 0 || c2.CrashDropped != 0 {
		t.Fatalf("pooled reuse leaked crash state: delivered=%d counters=%+v", len(rx2.got), c2)
	}
	if net2.Down(1) {
		t.Fatal("pooled reuse leaked down-state for addr 1")
	}
	net2.Release()
}

func TestFaultCountersAdd(t *testing.T) {
	a := Counters{Crashes: 1, Restarts: 1, CrashDropped: 3}
	a.Add(Counters{Crashes: 2, Restarts: 1, CrashDropped: 4})
	if a.Crashes != 3 || a.Restarts != 2 || a.CrashDropped != 7 {
		t.Fatalf("Add dropped crash counters: %+v", a)
	}
}
