// Package sim is a deterministic discrete-event network simulator.
//
// The paper's model (following FPSS and Griffin–Wilfong) is a static,
// reliable network of nodes that exchange messages asynchronously and
// eventually reach quiescence; the bank's checkpoints fire "at a
// network quiescence point" (§4.3 [BANK1]). The simulator reproduces
// exactly that: messages are delivered in deterministic order (by
// delivery time, then send sequence), a run proceeds until no messages
// remain in flight, and counters expose the message/step complexity
// that experiments E4/E5/E9 report.
//
// Deviating (rational) behavior lives in the node handlers, not in the
// network: the network itself is obedient, as assumed by the paper.
//
// The event loop is allocation-lean: handlers and per-node counters
// are dense slices indexed by address (with a map overflow for sparse
// addresses like the bank's), the event queue is a hand-rolled binary
// heap over a plain slice (no container/heap boxing), and each handler
// gets one reusable Context for the network's lifetime. A Network can
// also be Reset and reused across runs — deviation searches play
// hundreds of protocol runs back to back, and rebuilding the network
// from pooled storage keeps that loop off the allocator (see
// AcquireNetwork / Release).
package sim

import (
	"errors"
	"fmt"
	"sync"
)

// Addr identifies an endpoint in the simulated network.
type Addr int

// maxDenseAddr bounds the dense (slice-indexed) address range.
// Addresses in [0, maxDenseAddr) get O(1) indexed handlers and
// counters; anything else (negative, or sparse high addresses like the
// fpss bank at 1<<20) falls back to a small map.
const maxDenseAddr = 1 << 12

// Message is a payload in flight between two endpoints.
type Message struct {
	From    Addr
	To      Addr
	Payload any
}

// Context is the API a handler uses during Init/Recv. It is an
// interface so the same handlers run unchanged on the deterministic
// event simulator and on the goroutine-based livenet runtime. The
// Context passed to a handler is only valid for the duration of the
// call; handlers must not retain it.
type Context interface {
	// Self returns the handler's own address.
	Self() Addr
	// Now returns the current (runtime-specific) logical time.
	Now() int64
	// Send enqueues a message to the given address.
	Send(to Addr, payload any)
}

// Handler is a simulated endpoint. Implementations must be
// deterministic: same inputs in the same order, same outputs.
type Handler interface {
	// Init runs once before delivery starts; the handler may send its
	// initial messages through ctx.
	Init(ctx Context)
	// Recv handles one delivered message; the handler may send
	// follow-up messages through ctx.
	Recv(ctx Context, msg Message)
}

// Sizer optionally reports a payload's abstract size (bytes) for
// traffic accounting. Payloads that do not implement Sizer count as 1.
type Sizer interface{ Size() int }

// Counters aggregates traffic statistics for a run. Values returned by
// Run/Resume/Counters are snapshots: the maps are freshly built and
// never alias the network's internal state.
type Counters struct {
	Sent         int64 // messages submitted via Send (including lost ones)
	Delivered    int64 // messages handed to Recv
	Dropped      int64 // drops: Tamper-hook rejections and failed loss-model attempts
	Retried      int64 // extra delivery attempts consumed by the loss envelope
	Lost         int64 // messages permanently lost (every attempt dropped)
	Crashes      int64 // endpoint crashes fired by the fault model
	Restarts     int64 // crashed endpoints brought back up
	CrashDropped int64 // deliveries dropped because the destination was down
	Bytes        int64 // total abstract payload size sent
	Steps        int64 // delivery steps executed
	PerNodeIn    map[Addr]int64
	PerNodeOut   map[Addr]int64
}

// Add accumulates another snapshot into c — benchtab's suite profile
// sums one snapshot per epoch of a churn timeline into the
// whole-timeline message-overhead figure. Per-node maps are allocated
// on first need; note that epoch-local addresses may denote different
// identities across epochs, so dynamic callers aggregating per-node
// traffic should remap before adding.
func (c *Counters) Add(o Counters) {
	c.Sent += o.Sent
	c.Delivered += o.Delivered
	c.Dropped += o.Dropped
	c.Retried += o.Retried
	c.Lost += o.Lost
	c.Crashes += o.Crashes
	c.Restarts += o.Restarts
	c.CrashDropped += o.CrashDropped
	c.Bytes += o.Bytes
	c.Steps += o.Steps
	if len(o.PerNodeIn) > 0 {
		if c.PerNodeIn == nil {
			c.PerNodeIn = make(map[Addr]int64, len(o.PerNodeIn))
		}
		for a, v := range o.PerNodeIn {
			c.PerNodeIn[a] += v
		}
	}
	if len(o.PerNodeOut) > 0 {
		if c.PerNodeOut == nil {
			c.PerNodeOut = make(map[Addr]int64, len(o.PerNodeOut))
		}
		for a, v := range o.PerNodeOut {
			c.PerNodeOut[a] += v
		}
	}
}

// Network is a deterministic event-driven message network.
type Network struct {
	// Dense handler table for addresses in [0, maxDenseAddr): handlers
	// and their reusable contexts, indexed by address. sparse holds
	// everything else.
	dense     []Handler
	denseCtx  []netContext
	sparse    map[Addr]Handler
	sparseCtx map[Addr]*netContext

	queue  eventHeap
	seq    int64
	now    int64
	delay  func(from, to Addr) int64
	tamper func(m Message) (Message, bool)
	loss   *lossState
	faults *faultState

	sent, delivered, dropped, retried, lost, bytes, steps int64
	crashes, restarts, crashDropped                       int64
	// Per-node counters: dense slices grown on demand, map overflow
	// for out-of-range addresses.
	denseIn, denseOut   []int64
	sparseIn, sparseOut map[Addr]int64

	running bool
}

// Option configures a Network.
type Option func(*Network)

// WithDelay sets a deterministic per-link delay function (default: 1).
func WithDelay(d func(from, to Addr) int64) Option {
	return func(n *Network) { n.delay = d }
}

// WithTamper installs a message hook used by fault-injection tests;
// returning ok=false drops the message. Rational deviations should be
// modeled in handlers instead — the paper's network is obedient.
func WithTamper(t func(m Message) (Message, bool)) Option {
	return func(n *Network) { n.tamper = t }
}

// NewNetwork returns an empty network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{}
	for _, o := range opts {
		o(n)
	}
	return n
}

// netPool recycles Networks (and their handler tables, counter arrays
// and event-queue backing) across runs; see AcquireNetwork.
var netPool = sync.Pool{New: func() any { return &Network{} }}

// AcquireNetwork returns an empty network from the package pool,
// configured with opts. It is equivalent to NewNetwork but reuses
// storage from previously Released networks — the fast path for
// deviation searches that rebuild a network per (node, deviation) run.
func AcquireNetwork(opts ...Option) *Network {
	n := netPool.Get().(*Network)
	for _, o := range opts {
		o(n)
	}
	return n
}

// Release resets n and returns it to the package pool. The caller must
// not use n (or any Context it handed out) afterwards. Counters
// snapshots returned earlier remain valid — they never alias network
// state.
func (n *Network) Release() {
	n.Reset()
	netPool.Put(n)
}

// Reset returns the network to its post-NewNetwork state — no
// handlers, no queued events, zeroed counters and cleared hooks —
// while keeping allocated storage for reuse.
func (n *Network) Reset() {
	clear(n.dense)
	clear(n.denseCtx)
	clear(n.sparse)
	clear(n.sparseCtx)
	// Clear before truncating: a non-quiescent run (budget exhausted)
	// leaves undelivered events whose payloads must not stay reachable
	// through the pooled backing array.
	clear(n.queue)
	n.queue = n.queue[:0]
	n.seq, n.now = 0, 0
	// Fault hooks, loss schedules and crash schedules are per-scenario
	// state: a pooled network re-acquired for a clean run must never
	// replay a previous scenario's drops, tampering or crashes.
	n.delay, n.tamper, n.loss, n.faults = nil, nil, nil, nil
	n.sent, n.delivered, n.dropped, n.retried, n.lost, n.bytes, n.steps = 0, 0, 0, 0, 0, 0, 0
	n.crashes, n.restarts, n.crashDropped = 0, 0, 0
	clear(n.denseIn)
	clear(n.denseOut)
	clear(n.sparseIn)
	clear(n.sparseOut)
	n.running = false
}

// ErrDuplicateAddr is returned when an address is attached twice.
var ErrDuplicateAddr = errors.New("sim: duplicate address")

// Attach registers a handler at addr.
func (n *Network) Attach(addr Addr, h Handler) error {
	if addr >= 0 && addr < maxDenseAddr {
		if int(addr) < len(n.dense) && n.dense[addr] != nil {
			return fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
		}
		for int(addr) >= len(n.dense) {
			n.dense = append(n.dense, nil)
			n.denseCtx = append(n.denseCtx, netContext{})
		}
		n.dense[addr] = h
		n.denseCtx[addr] = netContext{net: n, self: addr}
		return nil
	}
	if _, ok := n.sparse[addr]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
	}
	if n.sparse == nil {
		n.sparse = make(map[Addr]Handler)
		n.sparseCtx = make(map[Addr]*netContext)
	}
	n.sparse[addr] = h
	n.sparseCtx[addr] = &netContext{net: n, self: addr}
	return nil
}

// handler returns the handler and reusable context at addr, or nil.
func (n *Network) handler(addr Addr) (Handler, *netContext) {
	if addr >= 0 && int(addr) < len(n.dense) {
		if h := n.dense[addr]; h != nil {
			return h, &n.denseCtx[addr]
		}
		return nil, nil
	}
	if h, ok := n.sparse[addr]; ok {
		return h, n.sparseCtx[addr]
	}
	return nil, nil
}

// netContext is the event-simulator Context. Sends to unknown
// addresses are counted but silently discarded at delivery, matching a
// static network with a fixed membership. One context per handler is
// created at Attach and reused for every Init/Recv call.
type netContext struct {
	net  *Network
	self Addr
}

var _ Context = (*netContext)(nil)

func (c *netContext) Self() Addr { return c.self }
func (c *netContext) Now() int64 { return c.net.now }
func (c *netContext) Send(to Addr, payload any) {
	c.net.send(c.self, to, payload)
}

func (n *Network) send(from, to Addr, payload any) {
	n.enqueue(from, to, payload, false)
}

// enqueue is the shared body of send (node traffic, subject to every
// fault hook) and Inject (out-of-band control traffic, exempt from the
// loss model — see Inject).
func (n *Network) enqueue(from, to Addr, payload any, reliable bool) {
	m := Message{From: from, To: to, Payload: payload}
	if n.tamper != nil {
		var ok bool
		if m, ok = n.tamper(m); !ok {
			n.dropped++
			return
		}
	}
	n.sent++
	n.bumpOut(from)
	size := int64(1)
	if s, ok := m.Payload.(Sizer); ok {
		size = int64(s.Size())
	}
	n.bytes += size
	at := n.now + 1
	if n.delay != nil {
		at = n.now + n.delay(from, to)
	}
	// Self-sends are a handler's private timers (the settle engine's
	// retransmission quanta), not link traffic — exempt from loss like
	// Inject. No current handler self-sends real protocol payloads, so
	// this does not change any pinned loss counter.
	if n.loss != nil && !reliable && from != to {
		link := n.loss.link(from, to)
		attempt, max := 1, n.loss.model.attempts()
		for ; attempt <= max; attempt++ {
			if !link.drop(n.loss.model) {
				break
			}
			n.dropped++
			if attempt < max {
				// The retransmission timeout separates attempts: the
				// Gilbert–Elliott channel evolves through it, so a
				// burst that swallowed this attempt has usually
				// cleared by the next one (decorrelated retries are
				// what keeps the ~Rate^Attempts permanent-loss
				// analysis honest for bursty models too).
				link.idle(n.loss.model, n.loss.model.retryDelay())
			}
		}
		if attempt > max {
			n.lost++ // permanent loss: the envelope gave up
			return
		}
		n.retried += int64(attempt - 1)
		at += int64(attempt-1) * n.loss.model.retryDelay()
		// Per-link FIFO: a retried message must not be overtaken by —
		// or overtake — the link's other traffic (see LossModel).
		if at < link.lastAt {
			at = link.lastAt
		}
		link.lastAt = at
	}
	n.seq++
	n.queue.push(event{at: at, seq: n.seq, msg: m})
}

func (n *Network) bumpOut(a Addr) {
	if a >= 0 && a < maxDenseAddr {
		for int(a) >= len(n.denseOut) {
			n.denseOut = append(n.denseOut, 0)
		}
		n.denseOut[a]++
		return
	}
	if n.sparseOut == nil {
		n.sparseOut = make(map[Addr]int64)
	}
	n.sparseOut[a]++
}

func (n *Network) bumpIn(a Addr) {
	if a >= 0 && a < maxDenseAddr {
		for int(a) >= len(n.denseIn) {
			n.denseIn = append(n.denseIn, 0)
		}
		n.denseIn[a]++
		return
	}
	if n.sparseIn == nil {
		n.sparseIn = make(map[Addr]int64)
	}
	n.sparseIn[a]++
}

// ErrBudgetExhausted is returned by Run when maxSteps deliveries
// happen without reaching quiescence (a non-terminating protocol).
var ErrBudgetExhausted = errors.New("sim: step budget exhausted before quiescence")

// Run initializes every handler (in address order) and delivers
// messages until quiescence or until maxSteps deliveries have
// occurred. It returns the counters for the run.
func (n *Network) Run(maxSteps int64) (Counters, error) {
	if n.running {
		return n.snapshot(), errors.New("sim: Run re-entered")
	}
	n.running = true
	defer func() { n.running = false }()

	// Init in ascending address order: sparse negatives, the dense
	// range, then sparse high addresses.
	sparse := sortedAddrs(n.sparse)
	for _, a := range sparse {
		if a < 0 {
			n.sparse[a].Init(n.sparseCtx[a])
		}
	}
	for a := range n.dense {
		if h := n.dense[a]; h != nil {
			h.Init(&n.denseCtx[a])
		}
	}
	for _, a := range sparse {
		if a >= 0 {
			n.sparse[a].Init(n.sparseCtx[a])
		}
	}
	return n.drain(maxSteps)
}

// Resume continues delivering after external injection (see Inject)
// without re-running Init. Each call has its own step budget: a Resume
// after an exhausted Run (or Resume) delivers up to maxSteps further
// messages — the budget bounds one drain, not the network's lifetime.
func (n *Network) Resume(maxSteps int64) (Counters, error) {
	return n.drain(maxSteps)
}

func (n *Network) drain(maxSteps int64) (Counters, error) {
	var steps int64
	for len(n.queue) > 0 {
		if steps >= maxSteps {
			return n.snapshot(), fmt.Errorf("%w (%d steps)", ErrBudgetExhausted, steps)
		}
		ev := n.queue.pop()
		n.now = ev.at
		steps++
		n.steps++
		if _, ok := ev.msg.Payload.(restartMarker); ok {
			n.restore(ev.msg.To)
			continue // not a delivery: the endpoint coming back up
		}
		if n.Down(ev.msg.To) {
			n.crashDropped++
			continue // destination is crashed
		}
		h, ctx := n.handler(ev.msg.To)
		if h == nil {
			continue // discarded: unknown destination
		}
		n.delivered++
		n.bumpIn(ev.msg.To)
		h.Recv(ctx, ev.msg)
		if n.faults != nil {
			if c, fired := n.faults.observeDelivery(ev.msg.To); fired {
				n.crashes++
				if c.RestartDelay >= 0 {
					n.seq++
					n.queue.push(event{
						at:  n.now + c.RestartDelay,
						seq: n.seq,
						msg: Message{From: ev.msg.To, To: ev.msg.To, Payload: restartMarker{}},
					})
				}
			}
		}
	}
	return n.snapshot(), nil
}

// Inject enqueues an external message (e.g. a bank request) from a
// synthetic source. Use Resume afterwards.
//
// Injected messages are out-of-band control traffic — a trusted
// coordinator's phase transitions and checkpoint requests, not
// node-to-node links — so they are exempt from the loss model (tamper
// and delay hooks still apply). Lossy phase-boundary control would
// let a retried StartPhase2 arrive after a neighbor's first phase-2
// message, turning an experimenter's control plane into spurious
// protocol reordering.
func (n *Network) Inject(from, to Addr, payload any) {
	n.enqueue(from, to, payload, true)
}

// Quiescent reports whether no messages are in flight.
func (n *Network) Quiescent() bool { return len(n.queue) == 0 }

// Counters returns a copy of the current counters.
func (n *Network) Counters() Counters { return n.snapshot() }

// Handler returns the handler attached at addr, if any.
func (n *Network) Handler(addr Addr) (Handler, bool) {
	h, _ := n.handler(addr)
	return h, h != nil
}

// Now returns the current simulated time.
func (n *Network) Now() int64 { return n.now }

// snapshot materializes the internal dense/sparse counters into an
// isolated Counters value.
func (n *Network) snapshot() Counters {
	out := Counters{
		Sent:         n.sent,
		Delivered:    n.delivered,
		Dropped:      n.dropped,
		Retried:      n.retried,
		Lost:         n.lost,
		Crashes:      n.crashes,
		Restarts:     n.restarts,
		CrashDropped: n.crashDropped,
		Bytes:        n.bytes,
		Steps:        n.steps,
		PerNodeIn:    make(map[Addr]int64),
		PerNodeOut:   make(map[Addr]int64),
	}
	for a, v := range n.denseIn {
		if v != 0 {
			out.PerNodeIn[Addr(a)] = v
		}
	}
	for a, v := range n.denseOut {
		if v != 0 {
			out.PerNodeOut[Addr(a)] = v
		}
	}
	for a, v := range n.sparseIn {
		out.PerNodeIn[a] = v
	}
	for a, v := range n.sparseOut {
		out.PerNodeOut[a] = v
	}
	return out
}

// sortedAddrs returns m's keys ascending (insertion sort: the sparse
// table holds a handful of addresses, typically just the bank).
func sortedAddrs(m map[Addr]Handler) []Addr {
	if len(m) == 0 {
		return nil
	}
	out := make([]Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type event struct {
	at  int64
	seq int64
	msg Message
}

// eventHeap is a binary min-heap over (at, seq) on a plain slice. The
// hand-rolled push/pop avoid container/heap's interface boxing — one
// allocation per enqueued and dequeued event in the old event loop.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = event{} // drop payload reference for the GC
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	*h = q
	return top
}
