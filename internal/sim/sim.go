// Package sim is a deterministic discrete-event network simulator.
//
// The paper's model (following FPSS and Griffin–Wilfong) is a static,
// reliable network of nodes that exchange messages asynchronously and
// eventually reach quiescence; the bank's checkpoints fire "at a
// network quiescence point" (§4.3 [BANK1]). The simulator reproduces
// exactly that: messages are delivered in deterministic order (by
// delivery time, then send sequence), a run proceeds until no messages
// remain in flight, and counters expose the message/step complexity
// that experiments E4/E5/E9 report.
//
// Deviating (rational) behavior lives in the node handlers, not in the
// network: the network itself is obedient, as assumed by the paper.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Addr identifies an endpoint in the simulated network.
type Addr int

// Message is a payload in flight between two endpoints.
type Message struct {
	From    Addr
	To      Addr
	Payload any
}

// Context is the API a handler uses during Init/Recv. It is an
// interface so the same handlers run unchanged on the deterministic
// event simulator and on the goroutine-based livenet runtime.
type Context interface {
	// Self returns the handler's own address.
	Self() Addr
	// Now returns the current (runtime-specific) logical time.
	Now() int64
	// Send enqueues a message to the given address.
	Send(to Addr, payload any)
}

// Handler is a simulated endpoint. Implementations must be
// deterministic: same inputs in the same order, same outputs.
type Handler interface {
	// Init runs once before delivery starts; the handler may send its
	// initial messages through ctx.
	Init(ctx Context)
	// Recv handles one delivered message; the handler may send
	// follow-up messages through ctx.
	Recv(ctx Context, msg Message)
}

// Sizer optionally reports a payload's abstract size (bytes) for
// traffic accounting. Payloads that do not implement Sizer count as 1.
type Sizer interface{ Size() int }

// Counters aggregates traffic statistics for a run.
type Counters struct {
	Sent       int64 // messages submitted via Send
	Delivered  int64 // messages handed to Recv
	Dropped    int64 // messages dropped by a Tamper hook
	Bytes      int64 // total abstract payload size sent
	Steps      int64 // delivery steps executed
	PerNodeIn  map[Addr]int64
	PerNodeOut map[Addr]int64
}

// Network is a deterministic event-driven message network.
type Network struct {
	handlers map[Addr]Handler
	queue    eventHeap
	seq      int64
	now      int64
	delay    func(from, to Addr) int64
	tamper   func(m Message) (Message, bool)
	counters Counters
	running  bool
}

// Option configures a Network.
type Option func(*Network)

// WithDelay sets a deterministic per-link delay function (default: 1).
func WithDelay(d func(from, to Addr) int64) Option {
	return func(n *Network) { n.delay = d }
}

// WithTamper installs a message hook used by fault-injection tests;
// returning ok=false drops the message. Rational deviations should be
// modeled in handlers instead — the paper's network is obedient.
func WithTamper(t func(m Message) (Message, bool)) Option {
	return func(n *Network) { n.tamper = t }
}

// NewNetwork returns an empty network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		handlers: make(map[Addr]Handler),
		delay:    func(_, _ Addr) int64 { return 1 },
	}
	n.counters.PerNodeIn = make(map[Addr]int64)
	n.counters.PerNodeOut = make(map[Addr]int64)
	for _, o := range opts {
		o(n)
	}
	return n
}

// ErrDuplicateAddr is returned when an address is attached twice.
var ErrDuplicateAddr = errors.New("sim: duplicate address")

// Attach registers a handler at addr.
func (n *Network) Attach(addr Addr, h Handler) error {
	if _, ok := n.handlers[addr]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
	}
	n.handlers[addr] = h
	return nil
}

// netContext is the event-simulator Context. Sends to unknown
// addresses are counted but silently discarded at delivery, matching a
// static network with a fixed membership.
type netContext struct {
	net  *Network
	self Addr
}

var _ Context = (*netContext)(nil)

func (c *netContext) Self() Addr { return c.self }
func (c *netContext) Now() int64 { return c.net.now }
func (c *netContext) Send(to Addr, payload any) {
	c.net.send(c.self, to, payload)
}

func (n *Network) send(from, to Addr, payload any) {
	m := Message{From: from, To: to, Payload: payload}
	if n.tamper != nil {
		var ok bool
		if m, ok = n.tamper(m); !ok {
			n.counters.Dropped++
			return
		}
	}
	n.counters.Sent++
	n.counters.PerNodeOut[from]++
	size := int64(1)
	if s, ok := m.Payload.(Sizer); ok {
		size = int64(s.Size())
	}
	n.counters.Bytes += size
	n.seq++
	heap.Push(&n.queue, event{at: n.now + n.delay(from, to), seq: n.seq, msg: m})
}

// ErrBudgetExhausted is returned by Run when maxSteps deliveries
// happen without reaching quiescence (a non-terminating protocol).
var ErrBudgetExhausted = errors.New("sim: step budget exhausted before quiescence")

// Run initializes every handler (in address order) and delivers
// messages until quiescence or until maxSteps deliveries have
// occurred. It returns the counters for the run.
func (n *Network) Run(maxSteps int64) (Counters, error) {
	if n.running {
		return n.counters, errors.New("sim: Run re-entered")
	}
	n.running = true
	defer func() { n.running = false }()

	for _, addr := range n.addrs() {
		h := n.handlers[addr]
		h.Init(&netContext{net: n, self: addr})
	}
	return n.drain(maxSteps)
}

// Resume continues delivering after external injection (see Inject)
// without re-running Init. It shares the step budget semantics of Run.
func (n *Network) Resume(maxSteps int64) (Counters, error) {
	return n.drain(maxSteps)
}

func (n *Network) drain(maxSteps int64) (Counters, error) {
	var steps int64
	for n.queue.Len() > 0 {
		if steps >= maxSteps {
			return n.snapshot(), fmt.Errorf("%w (%d steps)", ErrBudgetExhausted, steps)
		}
		ev := heap.Pop(&n.queue).(event)
		n.now = ev.at
		steps++
		n.counters.Steps++
		h, ok := n.handlers[ev.msg.To]
		if !ok {
			continue // discarded: unknown destination
		}
		n.counters.Delivered++
		n.counters.PerNodeIn[ev.msg.To]++
		h.Recv(&netContext{net: n, self: ev.msg.To}, ev.msg)
	}
	return n.snapshot(), nil
}

// Inject enqueues an external message (e.g. a bank request) from a
// synthetic source. Use Resume afterwards.
func (n *Network) Inject(from, to Addr, payload any) {
	n.send(from, to, payload)
}

// Quiescent reports whether no messages are in flight.
func (n *Network) Quiescent() bool { return n.queue.Len() == 0 }

// Counters returns a copy of the current counters.
func (n *Network) Counters() Counters { return n.snapshot() }

// Handler returns the handler attached at addr, if any.
func (n *Network) Handler(addr Addr) (Handler, bool) {
	h, ok := n.handlers[addr]
	return h, ok
}

// Now returns the current simulated time.
func (n *Network) Now() int64 { return n.now }

func (n *Network) snapshot() Counters {
	out := n.counters
	out.PerNodeIn = make(map[Addr]int64, len(n.counters.PerNodeIn))
	out.PerNodeOut = make(map[Addr]int64, len(n.counters.PerNodeOut))
	for k, v := range n.counters.PerNodeIn {
		out.PerNodeIn[k] = v
	}
	for k, v := range n.counters.PerNodeOut {
		out.PerNodeOut[k] = v
	}
	return out
}

func (n *Network) addrs() []Addr {
	out := make([]Addr, 0, len(n.handlers))
	for a := range n.handlers {
		out = append(out, a)
	}
	// Insertion sort keeps determinism without importing sort for a
	// tiny, hot-free path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type event struct {
	at  int64
	seq int64
	msg Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
