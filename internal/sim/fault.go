package sim

// This file is the crash-fault failure axis at the simulator level: a
// seeded, positional crash/restart injector for infrastructure
// endpoints. Where loss.go models links that drop messages, this file
// models endpoints that go dark — a shard or coordinator process
// crashing mid-protocol and (usually) coming back. The paper's network
// is reliable and its bank is a singleton obedient oracle; once
// checkpointing becomes a distributed two-phase commit
// (internal/settle), the bank's own components acquire a failure model,
// and the layers above need it to be a declarative, deterministic
// property of a run — exactly like LossModel — so that checker-side
// attribution ("a shard crashed" vs "a node deviated") can be tested
// with zero false positives.
//
// Crashes are positional, mirroring the loss model's per-link streams:
// a Crash entry fires after its address has *delivered* a fixed number
// of messages, so the same model crashes at the same protocol point in
// every run of the same scenario — "crash after the first vote" is a
// stable, replayable event even though it is expressed as a message
// count. While an address is down, deliveries to it are dropped and
// counted (Counters.CrashDropped); a scheduled restart brings it back
// and, if the handler implements Recoverer, gives it a Recover call to
// rebuild volatile state from its own durable log.

// Crash schedules one crash of one address. Entries for the same
// address arm in schedule order: the second entry counts deliveries
// from the restart onwards, which is how a crash-during-recovery case
// is expressed.
type Crash struct {
	// Addr is the endpoint to crash.
	Addr Addr
	// AfterDeliveries arms the crash after this many further messages
	// have been delivered to Addr (1 = crash right after the next
	// delivery). Values < 1 behave as 1: a crash must observe at least
	// one delivery, so schedules stay positional.
	AfterDeliveries int64
	// RestartDelay is the downtime in ticks before the endpoint
	// restarts; values < 0 mean it never comes back. A restart is a
	// scheduled event: the run does not quiesce while one is pending.
	RestartDelay int64
}

// FaultModel configures seeded endpoint crashes. The zero value means
// no faults — byte-identical behavior to a network without the model
// installed.
type FaultModel struct {
	// Schedule lists the crashes in arming order.
	Schedule []Crash
}

// Enabled reports whether the model actually crashes anything.
func (m FaultModel) Enabled() bool { return len(m.Schedule) > 0 }

// Recoverer is implemented by handlers that rebuild volatile state
// after a crash-restart. Recover runs at restart time, before any
// further delivery to the handler; implementations typically replay a
// write-ahead log and re-contact their coordinator about in-doubt
// work. Handlers without Recover restart with whatever in-memory state
// they had — the model's way of expressing an amnesiac process.
type Recoverer interface {
	Recover(ctx Context)
}

// WithFaults installs a crash schedule. A zero (disabled) model is a
// no-op, so threading an unset configuration through is always safe.
func WithFaults(m FaultModel) Option {
	return func(n *Network) { n.SetFaults(m) }
}

// SetFaults installs (or, with a disabled model, removes) the crash
// schedule on an existing network — the caller-owned-network path,
// mirroring SetLoss. Reset clears it, so pooled networks cannot replay
// a previous scenario's crashes.
func (n *Network) SetFaults(m FaultModel) {
	if !m.Enabled() {
		n.faults = nil
		return
	}
	fs := &faultState{pending: make(map[Addr][]Crash), counts: make(map[Addr]int64)}
	for _, c := range m.Schedule {
		if c.AfterDeliveries < 1 {
			c.AfterDeliveries = 1
		}
		fs.pending[c.Addr] = append(fs.pending[c.Addr], c)
	}
	n.faults = fs
}

// Down reports whether addr is currently crashed.
func (n *Network) Down(addr Addr) bool {
	return n.faults != nil && n.faults.down != nil && n.faults.down[addr]
}

// faultState is a network's installed crash schedule plus its runtime
// state: per-address pending entries (consumed in order), delivery
// counts since the last arm point, and the set of currently-down
// addresses.
type faultState struct {
	pending map[Addr][]Crash
	counts  map[Addr]int64
	down    map[Addr]bool
}

// restartMarker is the internal payload that brings a crashed address
// back up. It rides the ordinary event heap (so restarts interleave
// deterministically with traffic) but is intercepted by the drain loop
// before normal delivery.
type restartMarker struct{}

// restore brings a crashed address back up and, if its handler
// implements Recoverer, runs the recovery hook before any further
// delivery. Called by the drain loop on a restartMarker.
func (n *Network) restore(addr Addr) {
	if n.faults == nil || n.faults.down == nil || !n.faults.down[addr] {
		return // stale marker (e.g. the schedule crashed the addr again meanwhile)
	}
	delete(n.faults.down, addr)
	n.restarts++
	if h, ctx := n.handler(addr); h != nil {
		if r, ok := h.(Recoverer); ok {
			r.Recover(ctx)
		}
	}
}

// observeDelivery records one delivery to addr and reports whether it
// armed a crash; if so the entry is consumed and returned.
func (fs *faultState) observeDelivery(addr Addr) (Crash, bool) {
	q := fs.pending[addr]
	if len(q) == 0 {
		return Crash{}, false
	}
	fs.counts[addr]++
	if fs.counts[addr] < q[0].AfterDeliveries {
		return Crash{}, false
	}
	c := q[0]
	fs.pending[addr] = q[1:]
	fs.counts[addr] = 0 // the next entry counts from here (or from restart)
	if fs.down == nil {
		fs.down = make(map[Addr]bool)
	}
	fs.down[addr] = true
	return c, true
}
