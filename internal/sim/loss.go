package sim

import "sync"

// This file is the lossy-links failure axis at the simulator level:
// a seeded, per-link drop model with a bounded sender-side retry
// envelope. The paper's network is reliable; §5 observes that other
// failure models (general omission, failstop) can make the faithful
// construction "falsely detect and punish manipulation". The drop
// model makes omission a declarative, deterministic property of a run
// so the layers above (fpss, faithful, scenario) can study exactly
// that interplay instead of reproducing it as one-off tamper hooks.

// LossModel configures seeded per-link message loss. The zero value
// means a reliable network — byte-identical behavior to a network
// without the model installed.
//
// Loss is resolved at send time: the sender draws attempts from the
// link's deterministic schedule stream until one gets through or the
// attempt budget is exhausted. A message that succeeds on attempt k is
// delivered at now + delay + (k-1)·RetryDelay — the cost of the failed
// attempts plus their retransmission timeouts — with each failed
// attempt counted in Counters.Dropped and the extras in
// Counters.Retried. A message whose every attempt drops is permanently
// lost (Counters.Lost), an event of probability ≈Rate^Attempts per
// message (the Gilbert–Elliott channel idles through each
// retransmission timeout, so retries are decorrelated even in bursty
// models); the envelope makes Lost == 0 the overwhelmingly common case
// below moderate rates, which is what lets protocol layers treat
// Lost > 0 as a network fault to attribute loudly instead of a node
// fault to punish.
//
// Delivery times on one (from, to) link are clamped non-decreasing, so
// retries never reorder a link: a retransmitted table update cannot
// overtake — or be overtaken by — a newer one. Checker mirrors stay
// convergent under loss precisely because of this FIFO guarantee (see
// internal/faithful).
type LossModel struct {
	// Rate is the per-attempt drop probability in [0, 1).
	Rate float64
	// Burst is the mean loss-burst length in messages (Gilbert–Elliott
	// two-state channel). Values <= 1 mean independent per-attempt
	// drops. The stationary drop rate stays Rate either way.
	Burst float64
	// Seed keys the drop-schedule stream. Per-link streams are derived
	// from it with Mix64, so no two links share a schedule and a
	// link's schedule is independent of traffic on other links.
	Seed uint64
	// Attempts bounds delivery attempts per message (default 10).
	Attempts int
	// RetryDelay is the extra delivery delay per failed attempt — a
	// retransmission timeout (default 4 ticks).
	RetryDelay int64
}

// Enabled reports whether the model actually drops anything.
func (m LossModel) Enabled() bool { return m.Rate > 0 }

func (m LossModel) attempts() int {
	if m.Attempts > 0 {
		return m.Attempts
	}
	return 10
}

func (m LossModel) retryDelay() int64 {
	if m.RetryDelay > 0 {
		return m.RetryDelay
	}
	return 4
}

// Mix64 is the classic splitmix64 finalizer (Steele et al.), enough to
// decorrelate neighboring identities. It is the one mixing function
// every seed-derivation path in the repository shares — suite seed
// keying and the churn schedule stream (via scenario.Mix64, which
// delegates here) and the per-link drop schedules — so the paths can
// never silently diverge. It lives in sim because sim is the leaf
// package every seed consumer can import.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WithLoss installs a seeded per-link drop model. A zero (disabled)
// model is a no-op, so threading an unset configuration through is
// always safe.
func WithLoss(m LossModel) Option {
	return func(n *Network) { n.SetLoss(m) }
}

// SetLoss installs (or, with a disabled model, removes) the drop model
// on an existing network — the caller-owned-network path, where the
// pool options ran at acquisition time and the loss axis arrives with
// the run configuration. Reset clears it, so pooled networks cannot
// leak a previous scenario's loss schedule.
func (n *Network) SetLoss(m LossModel) {
	if !m.Enabled() {
		n.loss = nil
		return
	}
	n.loss = &lossState{model: m}
}

// linkKey identifies one directed link's schedule stream.
type linkKey struct{ from, to Addr }

// lossState is a network's installed drop model plus the per-link
// stream positions it has materialized so far.
type lossState struct {
	model LossModel
	links map[linkKey]*linkLoss
}

// link returns (materializing on first use) the schedule state of one
// directed link. The stream seed mixes the link's endpoints into the
// model seed, so schedules are positional: the k-th message on a link
// sees the same fate in every run of the same model, regardless of
// what other links carry.
func (s *lossState) link(from, to Addr) *linkLoss {
	k := linkKey{from: from, to: to}
	if l, ok := s.links[k]; ok {
		return l
	}
	if s.links == nil {
		s.links = make(map[linkKey]*linkLoss)
	}
	l := &linkLoss{state: Mix64(s.model.Seed ^ Mix64(uint64(from)<<21^uint64(to)))}
	s.links[k] = l
	return l
}

// linkLoss is one directed link's loss state: a splitmix64 stream
// position, the Gilbert–Elliott channel state, and the FIFO clamp for
// delivery times.
type linkLoss struct {
	state  uint64
	bad    bool
	lastAt int64
}

// next advances the stream and returns a uniform draw in [0, 1).
func (l *linkLoss) next() float64 {
	l.state += 0x9e3779b97f4a7c15
	x := l.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// idle advances the Gilbert–Elliott channel through d idle ticks — a
// retransmission timeout during which no attempt is made but the
// channel keeps evolving. I.i.d. models have no state to evolve.
func (l *linkLoss) idle(m LossModel, d int64) {
	if m.Burst <= 1 {
		return
	}
	for i := int64(0); i < d; i++ {
		l.transition(m)
	}
}

// transition performs one Gilbert–Elliott state step (see drop for the
// probability derivation).
func (l *linkLoss) transition(m LossModel) {
	if l.bad {
		if l.next() < 1/m.Burst {
			l.bad = false
		}
		return
	}
	pGB := m.Rate / (m.Burst * (1 - m.Rate))
	if pGB > 1 {
		pGB = 1
	}
	if l.next() < pGB {
		l.bad = true
	}
}

// LossScheduler is a standalone, concurrency-safe view of a
// LossModel's per-link schedule streams for runtimes other than the
// event simulator — livenet's goroutine mailboxes resolve each send
// through one of these instead of the Network's embedded lossState.
// Outcome consumes exactly the schedule positions the simulator's
// enqueue loop would (attempt draws plus the retransmission-timeout
// idles between failed attempts), so a live run and a simulated run
// that put the k-th message on a link in the same order see identical
// per-link fates and identical Dropped/Retried/Lost counters.
type LossScheduler struct {
	mu    sync.Mutex
	state lossState
}

// NewLossScheduler builds a scheduler for the model. A disabled model
// yields nil, and a nil scheduler's Outcome reports every message
// delivered — threading an unset configuration through is safe.
func NewLossScheduler(m LossModel) *LossScheduler {
	if !m.Enabled() {
		return nil
	}
	return &LossScheduler{state: lossState{model: m}}
}

// Outcome draws one message's worth of the (from, to) link schedule:
// the number of failed attempts (each one a Counters.Dropped), the
// extra attempts a successful delivery consumed (Counters.Retried),
// and whether the envelope gave up (Counters.Lost — the message must
// not be delivered).
func (s *LossScheduler) Outcome(from, to Addr) (dropped, retried int64, lost bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	link := s.state.link(from, to)
	m := s.state.model
	attempt, max := 1, m.attempts()
	for ; attempt <= max; attempt++ {
		if !link.drop(m) {
			break
		}
		dropped++
		if attempt < max {
			link.idle(m, m.retryDelay())
		}
	}
	if attempt > max {
		return dropped, 0, true
	}
	return dropped, int64(attempt - 1), false
}

// drop consumes one attempt from the link's schedule and reports
// whether that attempt is dropped.
func (l *linkLoss) drop(m LossModel) bool {
	if m.Burst <= 1 {
		return l.next() < m.Rate
	}
	// Gilbert–Elliott: attempts drop in the bad state. Transition
	// probabilities are chosen so the mean bad-state sojourn is Burst
	// attempts (bad→good with probability 1/Burst) and the stationary
	// bad-state share — the long-run drop rate — is exactly Rate:
	// π_bad = p_gb/(p_gb+p_bg) = Rate for p_gb = Rate/(Burst·(1−Rate)).
	dropped := l.bad
	l.transition(m)
	return dropped
}
