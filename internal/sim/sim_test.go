package sim

import (
	"errors"
	"testing"
)

// echo replies to every ping with a pong until a hop budget runs out.
type pingMsg struct {
	hops int
}

type echoNode struct {
	peer    Addr
	starter bool
	got     []int
}

func (e *echoNode) Init(ctx Context) {
	if e.starter {
		ctx.Send(e.peer, pingMsg{hops: 4})
	}
}

func (e *echoNode) Recv(ctx Context, m Message) {
	p, ok := m.Payload.(pingMsg)
	if !ok {
		return
	}
	e.got = append(e.got, p.hops)
	if p.hops > 0 {
		ctx.Send(m.From, pingMsg{hops: p.hops - 1})
	}
}

func TestPingPongRunsToQuiescence(t *testing.T) {
	n := NewNetwork()
	a := &echoNode{peer: 1, starter: true}
	b := &echoNode{peer: 0}
	if err := n.Attach(0, a); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(1, b); err != nil {
		t.Fatal(err)
	}
	c, err := n.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Quiescent() {
		t.Error("network should be quiescent")
	}
	if c.Sent != 5 || c.Delivered != 5 {
		t.Errorf("sent/delivered = %d/%d, want 5/5", c.Sent, c.Delivered)
	}
	// b sees hops 4,2,0; a sees 3,1.
	if len(b.got) != 3 || b.got[0] != 4 || b.got[2] != 0 {
		t.Errorf("b.got = %v", b.got)
	}
	if len(a.got) != 2 || a.got[0] != 3 {
		t.Errorf("a.got = %v", a.got)
	}
}

func TestDuplicateAttach(t *testing.T) {
	n := NewNetwork()
	if err := n.Attach(0, &echoNode{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach(0, &echoNode{}); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("duplicate attach = %v, want ErrDuplicateAddr", err)
	}
}

type flooder struct{ peer Addr }

func (f *flooder) Init(ctx Context) { ctx.Send(f.peer, pingMsg{}) }
func (f *flooder) Recv(ctx Context, m Message) {
	ctx.Send(m.From, pingMsg{}) // never terminates
}

func TestBudgetExhausted(t *testing.T) {
	n := NewNetwork()
	_ = n.Attach(0, &flooder{peer: 1})
	_ = n.Attach(1, &flooder{peer: 0})
	_, err := n.Run(10)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("Run = %v, want ErrBudgetExhausted", err)
	}
}

func TestUnknownDestinationDiscarded(t *testing.T) {
	n := NewNetwork()
	_ = n.Attach(0, &echoNode{peer: 99, starter: true})
	c, err := n.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sent != 1 || c.Delivered != 0 {
		t.Errorf("sent/delivered = %d/%d, want 1/0", c.Sent, c.Delivered)
	}
}

type sizedPayload struct{ n int }

func (s sizedPayload) Size() int { return s.n }

type oneShot struct {
	to      Addr
	payload any
}

func (o *oneShot) Init(ctx Context)      { ctx.Send(o.to, o.payload) }
func (o *oneShot) Recv(Context, Message) {}

func TestByteAccounting(t *testing.T) {
	n := NewNetwork()
	_ = n.Attach(0, &oneShot{to: 1, payload: sizedPayload{n: 37}})
	_ = n.Attach(1, &oneShot{to: 0, payload: "unsized"})
	c, err := n.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bytes != 38 { // 37 + default 1
		t.Errorf("bytes = %d, want 38", c.Bytes)
	}
}

func TestDeterministicDeliveryOrder(t *testing.T) {
	run := func() []int {
		n := NewNetwork()
		rec := &recorder{}
		_ = n.Attach(9, rec)
		_ = n.Attach(0, &burst{to: 9, count: 5, base: 0})
		_ = n.Attach(1, &burst{to: 9, count: 5, base: 100})
		if _, err := n.Run(100); err != nil {
			t.Fatal(err)
		}
		return rec.seen
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic count")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("delivery order differs at %d: %v vs %v", i, first, again)
			}
		}
	}
}

type burst struct {
	to    Addr
	count int
	base  int
}

func (b *burst) Init(ctx Context) {
	for i := 0; i < b.count; i++ {
		ctx.Send(b.to, b.base+i)
	}
}
func (b *burst) Recv(Context, Message) {}

type recorder struct{ seen []int }

func (r *recorder) Init(Context) {}
func (r *recorder) Recv(_ Context, m Message) {
	if v, ok := m.Payload.(int); ok {
		r.seen = append(r.seen, v)
	}
}

func TestTamperDrop(t *testing.T) {
	n := NewNetwork(WithTamper(func(m Message) (Message, bool) {
		if v, ok := m.Payload.(int); ok && v%2 == 0 {
			return m, false
		}
		return m, true
	}))
	rec := &recorder{}
	_ = n.Attach(9, rec)
	_ = n.Attach(0, &burst{to: 9, count: 6})
	c, err := n.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", c.Dropped)
	}
	if len(rec.seen) != 3 {
		t.Errorf("delivered = %v, want odd values only", rec.seen)
	}
}

func TestInjectAndResume(t *testing.T) {
	n := NewNetwork()
	rec := &recorder{}
	_ = n.Attach(5, rec)
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	n.Inject(100, 5, 42)
	c, err := n.Resume(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.seen) != 1 || rec.seen[0] != 42 {
		t.Errorf("seen = %v, want [42]", rec.seen)
	}
	if c.Delivered != 1 {
		t.Errorf("delivered = %d, want 1", c.Delivered)
	}
}

func TestWithDelayOrdersAcrossLinks(t *testing.T) {
	n := NewNetwork(WithDelay(func(from, _ Addr) int64 {
		if from == 0 {
			return 10 // slow link
		}
		return 1
	}))
	rec := &recorder{}
	_ = n.Attach(9, rec)
	_ = n.Attach(0, &oneShot{to: 9, payload: 111})
	_ = n.Attach(1, &oneShot{to: 9, payload: 222})
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(rec.seen) != 2 || rec.seen[0] != 222 || rec.seen[1] != 111 {
		t.Errorf("seen = %v, want [222 111] (fast link first)", rec.seen)
	}
}

func TestPerNodeCounters(t *testing.T) {
	n := NewNetwork()
	_ = n.Attach(0, &burst{to: 1, count: 3})
	_ = n.Attach(1, &recorder{})
	c, err := n.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.PerNodeOut[0] != 3 || c.PerNodeIn[1] != 3 {
		t.Errorf("per-node counters = out %v in %v", c.PerNodeOut, c.PerNodeIn)
	}
}

func TestCountersSnapshotIsolated(t *testing.T) {
	n := NewNetwork()
	_ = n.Attach(0, &burst{to: 1, count: 1})
	_ = n.Attach(1, &recorder{})
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	c := n.Counters()
	c.PerNodeOut[0] = 999
	if n.Counters().PerNodeOut[0] == 999 {
		t.Error("Counters() returned aliased maps")
	}
}

func TestRunReentryRejected(t *testing.T) {
	n := NewNetwork()
	r := &reentrant{net: n}
	_ = n.Attach(0, r)
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if !r.sawErr {
		t.Error("nested Run should have errored")
	}
}

type reentrant struct {
	net    *Network
	sawErr bool
	inner  Counters
}

func (r *reentrant) Init(ctx Context) {
	if c, err := r.net.Run(1); err != nil {
		r.sawErr = true
		r.inner = c
	}
}
func (r *reentrant) Recv(Context, Message) {}

func TestRunReentryCountersIsolated(t *testing.T) {
	// The counters returned on the re-entry error path must be a
	// snapshot, not an alias of the network's internal maps.
	n := NewNetwork()
	r := &reentrant{net: n}
	_ = n.Attach(0, r)
	_ = n.Attach(1, &burst{to: 0, count: 2})
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	if !r.sawErr {
		t.Fatal("nested Run should have errored")
	}
	r.inner.PerNodeIn[0] = 999
	r.inner.PerNodeOut[1] = 999
	after := n.Counters()
	if after.PerNodeIn[0] == 999 || after.PerNodeOut[1] == 999 {
		t.Error("re-entry error path returned aliased counter maps")
	}
}

func TestResumeBudgetIsPerCall(t *testing.T) {
	// Each Run/Resume call gets its own step budget: an exhausted
	// drain can be continued by another Resume, and the cumulative
	// Steps counter keeps counting across calls.
	n := NewNetwork()
	_ = n.Attach(0, &flooder{peer: 1})
	_ = n.Attach(1, &flooder{peer: 0})
	c, err := n.Run(10)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Run = %v, want ErrBudgetExhausted", err)
	}
	if c.Steps != 10 {
		t.Errorf("steps after Run = %d, want 10", c.Steps)
	}
	c, err = n.Resume(7)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Resume = %v, want ErrBudgetExhausted (fresh budget, still flooding)", err)
	}
	if c.Steps != 17 {
		t.Errorf("steps after Resume = %d, want 17 (cumulative)", c.Steps)
	}
}

func TestInjectThenResumeRespectsBudget(t *testing.T) {
	// Injected messages count against the next Resume's budget exactly
	// like protocol messages, and a follow-up Resume finishes the job.
	n := NewNetwork()
	rec := &recorder{}
	_ = n.Attach(5, rec)
	if _, err := n.Run(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n.Inject(100, 5, i)
	}
	if _, err := n.Resume(2); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Resume = %v, want ErrBudgetExhausted", err)
	}
	if len(rec.seen) != 2 {
		t.Fatalf("seen after capped Resume = %v, want 2 messages", rec.seen)
	}
	c, err := n.Resume(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.seen) != 4 || !n.Quiescent() {
		t.Errorf("seen = %v quiescent = %v, want all 4 delivered", rec.seen, n.Quiescent())
	}
	if c.Delivered != 4 || c.PerNodeOut[100] != 4 {
		t.Errorf("delivered = %d, out[100] = %d, want 4/4", c.Delivered, c.PerNodeOut[100])
	}
}

func TestSparseAddresses(t *testing.T) {
	// Addresses outside the dense range (the bank lives at 1<<20) and
	// negative addresses take the map path: same delivery, counter and
	// duplicate-detection semantics.
	const bank Addr = 1 << 20
	n := NewNetwork()
	rec := &recorder{}
	_ = n.Attach(bank, rec)
	_ = n.Attach(0, &burst{to: bank, count: 3})
	if err := n.Attach(bank, &recorder{}); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("duplicate sparse attach = %v, want ErrDuplicateAddr", err)
	}
	c, err := n.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.seen) != 3 {
		t.Errorf("sparse handler saw %v, want 3 messages", rec.seen)
	}
	if c.PerNodeIn[bank] != 3 || c.PerNodeOut[0] != 3 {
		t.Errorf("counters in[bank]=%d out[0]=%d, want 3/3", c.PerNodeIn[bank], c.PerNodeOut[0])
	}
	if h, ok := n.Handler(bank); !ok || h != Handler(rec) {
		t.Error("Handler(bank) lookup failed")
	}
	if h, ok := n.Handler(-7); ok || h != nil {
		t.Error("Handler(-7) should be absent")
	}
}

func TestResetReuse(t *testing.T) {
	// A Reset network behaves exactly like a fresh one: handlers,
	// hooks, counters, queue and time are all cleared.
	n := NewNetwork(WithTamper(func(m Message) (Message, bool) { return m, false }))
	_ = n.Attach(0, &burst{to: 1, count: 5})
	_ = n.Attach(1, &recorder{})
	if _, err := n.Run(100); err != nil {
		t.Fatal(err)
	}
	n.Reset()
	if _, ok := n.Handler(0); ok {
		t.Error("Reset should detach handlers")
	}
	rec := &recorder{}
	_ = n.Attach(0, &burst{to: 1, count: 2})
	_ = n.Attach(1, rec)
	c, err := n.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sent != 2 || c.Dropped != 0 || c.PerNodeOut[0] != 2 {
		t.Errorf("post-Reset counters = %+v, want a fresh run without the tamper hook", c)
	}
	if len(rec.seen) != 2 {
		t.Errorf("post-Reset delivery = %v, want 2 messages", rec.seen)
	}
	// Both Init-time sends deliver at t=1 (default delay): logical
	// time restarted from zero.
	if n.Now() != 1 {
		t.Errorf("post-Reset time = %d, want 1", n.Now())
	}
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	for i := 0; i < 3; i++ {
		n := AcquireNetwork()
		rec := &recorder{}
		_ = n.Attach(0, &burst{to: 1, count: 3})
		_ = n.Attach(1, rec)
		c, err := n.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		if c.Sent != 3 || len(rec.seen) != 3 {
			t.Fatalf("round %d: sent=%d seen=%v, pooled network not clean", i, c.Sent, rec.seen)
		}
		n.Release()
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Sent: 3, Delivered: 2, Dropped: 1, Bytes: 40, Steps: 5,
		PerNodeIn: map[Addr]int64{1: 2}, PerNodeOut: map[Addr]int64{0: 3}}
	b := Counters{Sent: 10, Delivered: 9, Bytes: 100, Steps: 7,
		PerNodeIn: map[Addr]int64{1: 1, 2: 4}, PerNodeOut: map[Addr]int64{0: 1}}
	a.Add(b)
	if a.Sent != 13 || a.Delivered != 11 || a.Dropped != 1 || a.Bytes != 140 || a.Steps != 12 {
		t.Errorf("scalar sums wrong: %+v", a)
	}
	if a.PerNodeIn[1] != 3 || a.PerNodeIn[2] != 4 || a.PerNodeOut[0] != 4 {
		t.Errorf("per-node sums wrong: in=%v out=%v", a.PerNodeIn, a.PerNodeOut)
	}
	// Adding into a zero value allocates the maps on demand.
	var z Counters
	z.Add(b)
	if z.Sent != 10 || z.PerNodeIn[2] != 4 {
		t.Errorf("zero-value Add wrong: %+v", z)
	}
	// Adding an empty snapshot must not allocate maps.
	var z2 Counters
	z2.Add(Counters{Sent: 1})
	if z2.PerNodeIn != nil || z2.PerNodeOut != nil {
		t.Error("empty per-node maps should stay nil")
	}
}
