package sim

import "testing"

// chainNode forwards a token down a line of nodes.
type chainNode struct {
	next Addr
	last bool
}

func (c *chainNode) Init(ctx Context) {
	if ctx.Self() == 0 {
		ctx.Send(c.next, "token")
	}
}

func (c *chainNode) Recv(ctx Context, m Message) {
	if !c.last {
		ctx.Send(c.next, m.Payload)
	}
}

func BenchmarkTokenChain64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		const size = 64
		for j := 0; j < size; j++ {
			_ = n.Attach(Addr(j), &chainNode{next: Addr(j + 1), last: j == size-1})
		}
		if _, err := n.Run(1 << 12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenChain64Pooled is the deviation-search shape: the same
// workload as BenchmarkTokenChain64 but rebuilding each run's network
// from the package pool, the way fpss.Run and faithful.Run do.
func BenchmarkTokenChain64Pooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := AcquireNetwork()
		const size = 64
		for j := 0; j < size; j++ {
			_ = n.Attach(Addr(j), &chainNode{next: Addr(j + 1), last: j == size-1})
		}
		if _, err := n.Run(1 << 12); err != nil {
			b.Fatal(err)
		}
		n.Release()
	}
}

type broadcaster struct {
	peers int
}

func (br *broadcaster) Init(ctx Context) {
	for j := 0; j < br.peers; j++ {
		if Addr(j) != ctx.Self() {
			ctx.Send(Addr(j), int(ctx.Self()))
		}
	}
}

func (br *broadcaster) Recv(Context, Message) {}

func BenchmarkAllToAllBroadcast32(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		const size = 32
		for j := 0; j < size; j++ {
			_ = n.Attach(Addr(j), &broadcaster{peers: size})
		}
		if _, err := n.Run(1 << 12); err != nil {
			b.Fatal(err)
		}
	}
}

// ringNode forwards a token around a ring forever; the benchmark
// bounds each drain with the step budget.
type ringNode struct{ next Addr }

func (r *ringNode) Init(Context) {}
func (r *ringNode) Recv(ctx Context, m Message) {
	ctx.Send(r.next, m.Payload)
}

// BenchmarkEventLoopSteadyState measures the pure delivery loop: one
// network built outside the timed region, each iteration draining
// exactly 4096 deliveries. This is the allocs/op figure for the sim
// event loop itself (heap push/pop, context reuse, dense counters),
// with network construction and payload boxing excluded.
func BenchmarkEventLoopSteadyState(b *testing.B) {
	n := NewNetwork()
	const size = 64
	for j := 0; j < size; j++ {
		_ = n.Attach(Addr(j), &ringNode{next: Addr((j + 1) % size)})
	}
	n.Inject(99, 0, "token")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Resume(1 << 12); err == nil {
			b.Fatal("ring should never quiesce")
		}
	}
	b.ReportMetric(1<<12, "deliveries/op")
}
