package sim

import "testing"

// chainNode forwards a token down a line of nodes.
type chainNode struct {
	next Addr
	last bool
}

func (c *chainNode) Init(ctx Context) {
	if ctx.Self() == 0 {
		ctx.Send(c.next, "token")
	}
}

func (c *chainNode) Recv(ctx Context, m Message) {
	if !c.last {
		ctx.Send(c.next, m.Payload)
	}
}

func BenchmarkTokenChain64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		const size = 64
		for j := 0; j < size; j++ {
			_ = n.Attach(Addr(j), &chainNode{next: Addr(j + 1), last: j == size-1})
		}
		if _, err := n.Run(1 << 12); err != nil {
			b.Fatal(err)
		}
	}
}

type broadcaster struct {
	peers int
}

func (br *broadcaster) Init(ctx Context) {
	for j := 0; j < br.peers; j++ {
		if Addr(j) != ctx.Self() {
			ctx.Send(Addr(j), int(ctx.Self()))
		}
	}
}

func (br *broadcaster) Recv(Context, Message) {}

func BenchmarkAllToAllBroadcast32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := NewNetwork()
		const size = 32
		for j := 0; j < size; j++ {
			_ = n.Attach(Addr(j), &broadcaster{peers: size})
		}
		if _, err := n.Run(1 << 12); err != nil {
			b.Fatal(err)
		}
	}
}
