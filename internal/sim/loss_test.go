package sim

import (
	"reflect"
	"testing"
)

// sink records every delivered payload in order.
type sink struct{ got []any }

func (s *sink) Init(Context)              {}
func (s *sink) Recv(_ Context, m Message) { s.got = append(s.got, m.Payload) }

// ints returns the payloads as ints, in delivery order.
func (s *sink) ints() (out []int) {
	for _, p := range s.got {
		out = append(out, p.(int))
	}
	return out
}

// spray sends n numbered messages to one destination from Init.
type spray struct {
	to Addr
	n  int
}

func (s *spray) Init(ctx Context) {
	for i := 0; i < s.n; i++ {
		ctx.Send(s.to, i)
	}
}
func (*spray) Recv(Context, Message) {}

// runSpray runs a 1→1 spray of n messages under the model and returns
// the receiver's delivery order and the counters.
func runSpray(t *testing.T, m LossModel, n int) ([]int, Counters) {
	t.Helper()
	net := NewNetwork(WithLoss(m))
	rx := &sink{}
	if err := net.Attach(0, &spray{to: 1, n: n}); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(1, rx); err != nil {
		t.Fatal(err)
	}
	c, err := net.Run(int64(n) + 10)
	if err != nil {
		t.Fatal(err)
	}
	return rx.ints(), c
}

func TestLossZeroModelIsReliable(t *testing.T) {
	got, c := runSpray(t, LossModel{}, 50)
	if len(got) != 50 || c.Dropped != 0 || c.Retried != 0 || c.Lost != 0 {
		t.Fatalf("zero model dropped something: delivered=%d counters=%+v", len(got), c)
	}
}

func TestLossScheduleIsSeedDeterministic(t *testing.T) {
	m := LossModel{Rate: 0.3, Seed: 42, Attempts: 2, RetryDelay: 3}
	got1, c1 := runSpray(t, m, 200)
	got2, c2 := runSpray(t, m, 200)
	if len(got1) != len(got2) {
		t.Fatalf("same seed, different deliveries: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("same seed, different order at %d: %d vs %d", i, got1[i], got2[i])
		}
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed, different counters: %+v vs %+v", c1, c2)
	}
	// A different seed must give a different schedule (with 200 draws
	// at rate 0.3 a collision is astronomically unlikely).
	m.Seed = 43
	got3, _ := runSpray(t, m, 200)
	same := len(got3) == len(got1)
	if same {
		for i := range got1 {
			if got1[i] != got3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestLossPreservesPerLinkFIFO(t *testing.T) {
	// Heavy loss with a long retry delay maximizes reorder pressure;
	// the per-link clamp must still deliver in send order.
	got, c := runSpray(t, LossModel{Rate: 0.4, Seed: 7, Attempts: 12, RetryDelay: 50}, 300)
	if c.Retried == 0 {
		t.Fatal("test needs retries to exercise the clamp")
	}
	if c.Lost > 0 {
		t.Fatalf("12 attempts at rate 0.4 should never exhaust (p≈1.7e-5/msg): lost=%d", c.Lost)
	}
	if len(got) != 300 {
		t.Fatalf("delivered %d/300", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("link reordered: position %d got %d", i, v)
		}
	}
}

func TestLossEmpiricalRate(t *testing.T) {
	const n = 20000
	for _, m := range []LossModel{
		{Rate: 0.2, Seed: 11, Attempts: 1},
		{Rate: 0.2, Burst: 4, Seed: 11, Attempts: 1},
	} {
		_, c := runSpray(t, m, n)
		rate := float64(c.Dropped) / float64(n)
		if rate < 0.16 || rate > 0.24 {
			t.Errorf("model %+v: empirical drop rate %.3f, want ≈0.2", m, rate)
		}
		if c.Lost+c.Delivered != n {
			t.Errorf("model %+v: lost=%d delivered=%d, want sum %d", m, c.Lost, c.Delivered, n)
		}
	}
}

func TestLossBurstsAreBursty(t *testing.T) {
	// Count maximal runs of consecutive drops; with mean burst 5 the
	// average run must be visibly longer than under i.i.d. drops.
	meanRun := func(m LossModel) float64 {
		l := &linkLoss{state: Mix64(m.Seed)}
		runs, inRun, total := 0, false, 0
		for i := 0; i < 50000; i++ {
			if l.drop(m) {
				total++
				if !inRun {
					runs++
					inRun = true
				}
			} else {
				inRun = false
			}
		}
		if runs == 0 {
			return 0
		}
		return float64(total) / float64(runs)
	}
	iid := meanRun(LossModel{Rate: 0.15, Seed: 5})
	bursty := meanRun(LossModel{Rate: 0.15, Burst: 5, Seed: 5})
	if bursty < 2*iid {
		t.Errorf("mean drop-run length: burst=%.2f iid=%.2f; want bursty >> iid", bursty, iid)
	}
}

// TestPooledNetworkClearsFaultState is the pooling regression test:
// acquire a network, install every fault hook (tamper, delay, loss),
// release it, re-acquire, and verify the clean run sees none of it.
func TestPooledNetworkClearsFaultState(t *testing.T) {
	faulty := AcquireNetwork(
		WithTamper(func(Message) (Message, bool) { return Message{}, false }),
		WithDelay(func(Addr, Addr) int64 { return 99 }),
		WithLoss(LossModel{Rate: 0.9, Seed: 1, Attempts: 1}),
	)
	rx := &sink{}
	if err := faulty.Attach(0, &spray{to: 1, n: 20}); err != nil {
		t.Fatal(err)
	}
	if err := faulty.Attach(1, rx); err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(rx.got) != 0 {
		t.Fatalf("tamper hook should have dropped everything, delivered %d", len(rx.got))
	}
	faulty.Release()

	// The pool has exactly one network; re-acquire it bare and the
	// fault config must be gone.
	clean := AcquireNetwork()
	defer clean.Release()
	rx2 := &sink{}
	if err := clean.Attach(0, &spray{to: 1, n: 20}); err != nil {
		t.Fatal(err)
	}
	if err := clean.Attach(1, rx2); err != nil {
		t.Fatal(err)
	}
	c, err := clean.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rx2.got) != 20 || c.Dropped != 0 || c.Lost != 0 || c.Retried != 0 {
		t.Fatalf("re-acquired network leaked fault state: delivered=%d counters=%+v", len(rx2.got), c)
	}
	if clean.Now() > 21 {
		t.Fatalf("re-acquired network leaked the delay hook: now=%d", clean.Now())
	}
}

// TestSetLossZeroRemoves pins the SetLoss contract used by protocol
// runs threading an unset scenario axis through.
func TestSetLossZeroRemoves(t *testing.T) {
	n := NewNetwork(WithLoss(LossModel{Rate: 0.5, Seed: 1}))
	if n.loss == nil {
		t.Fatal("WithLoss did not install")
	}
	n.SetLoss(LossModel{})
	if n.loss != nil {
		t.Fatal("SetLoss(zero) did not remove the model")
	}
}
