package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/spec"
)

// concurrentFake wraps fakeSystem with a mutex-free concurrency-safe
// Run (fakeSystem.Run only reads its maps) and records the number of
// Run calls, so tests can observe how much work early stop saved.
type concurrentFake struct {
	*fakeSystem
	mu   sync.Mutex
	runs int
}

func (c *concurrentFake) Run(deviator NodeID, dev Deviation) (Outcome, error) {
	c.mu.Lock()
	c.runs++
	c.mu.Unlock()
	return c.fakeSystem.Run(deviator, dev)
}

// randomFake builds a fakeSystem with a seeded random payoff table:
// ~1/3 of deviations strictly profitable, some ties, some losses.
func randomFake(seed int64) *fakeSystem {
	rng := rand.New(rand.NewSource(seed))
	f := newFake()
	kinds := []spec.ActionKind{spec.InfoRevelation, spec.MessagePassing, spec.Computation}
	for _, node := range []NodeID{0, 1} {
		for d := 0; d < 2+rng.Intn(8); d++ {
			name := fmt.Sprintf("dev-%d", d)
			delta := rng.Int63n(9) - 3 // [-3, 5]
			f.addDeviation(node, name, delta, kinds[rng.Intn(len(kinds))])
		}
	}
	return f
}

// TestDifferentialParallelVsSequential: the parallel engine must be
// byte-identical to the sequential oracle for every worker count.
func TestDifferentialParallelVsSequential(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		f := randomFake(seed)
		want, err := CheckFaithfulness(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := CheckFaithfulness(&concurrentFake{fakeSystem: f}, Workers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d workers %d: parallel report %+v != sequential %+v", seed, workers, got, want)
			}
		}
	}
}

// TestEarlyStopSequentialSemantics pins the oracle behavior: stop at
// the first profitable deviation in catalogue order, Checked = its
// 1-based position.
func TestEarlyStopSequentialSemantics(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "a-loss", -1, spec.Computation)
	f.addDeviation(0, "b-win", 4, spec.MessagePassing)
	f.addDeviation(0, "c-win", 9, spec.Computation)
	f.addDeviation(1, "d-win", 2, spec.InfoRevelation)
	rep, err := CheckFaithfulness(f, EarlyStop())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 {
		t.Errorf("Checked = %d, want 2 (stopped at b-win)", rep.Checked)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Deviation != "b-win" {
		t.Errorf("violations = %v, want just b-win", rep.Violations)
	}
	if rep.CC() {
		t.Error("CC should fail via b-win")
	}
}

// TestEarlyStopParallelDeterminism: the early-stopped report must be
// identical for every worker count, even though a parallel search may
// execute more plays than the sequential one.
func TestEarlyStopParallelDeterminism(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		f := randomFake(seed)
		want, err := CheckFaithfulness(f, EarlyStop())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 7} {
			got, err := CheckFaithfulness(&concurrentFake{fakeSystem: f}, EarlyStop(), Workers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d workers %d: early-stop report %+v != sequential %+v", seed, workers, got, want)
			}
		}
	}
}

// TestEarlyStopOnFaithfulSystem: nothing to stop on — the report must
// equal the full search's.
func TestEarlyStopOnFaithfulSystem(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "a", -1, spec.Computation)
	f.addDeviation(1, "b", 0, spec.InfoRevelation)
	for _, opts := range [][]CheckOption{
		{EarlyStop()},
		{EarlyStop(), Workers(4)},
	} {
		rep, err := CheckFaithfulness(&concurrentFake{fakeSystem: f}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Faithful() || rep.Checked != 2 {
			t.Errorf("opts %d: report %+v, want faithful with Checked=2", len(opts), rep)
		}
	}
}

// TestParallelRunErrorDeterministic: with several plays failing, the
// engine must report the earliest failing play's error regardless of
// worker count.
func TestParallelRunErrorDeterministic(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "a", 1, spec.Computation)
	f.addDeviation(1, "b", 1, spec.Computation)
	f.runErr = errors.New("boom")
	want, wantErr := CheckFaithfulness(f)
	if wantErr == nil {
		t.Fatal("sequential run should error")
	}
	for _, workers := range []int{2, 4} {
		got, err := CheckFaithfulness(&concurrentFake{fakeSystem: f}, Workers(workers))
		if err == nil || err.Error() != wantErr.Error() {
			t.Errorf("workers %d: err = %v, want %v", workers, err, wantErr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers %d: report %+v, want %+v", workers, got, want)
		}
	}
}

// TestWorkersZeroMeansNumCPU: Workers(0) must run (and stay
// deterministic) with the NumCPU pool.
func TestWorkersZeroMeansNumCPU(t *testing.T) {
	f := randomFake(42)
	want, err := CheckFaithfulness(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CheckFaithfulness(&concurrentFake{fakeSystem: f}, Workers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Workers(0) report %+v != sequential %+v", got, want)
	}
}

// TestEarlyStopSavesWork: sequential early stop must not run plays
// past the stopping index.
func TestEarlyStopSavesWork(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "win", 3, spec.Computation)
	for i := 0; i < 10; i++ {
		f.addDeviation(1, fmt.Sprintf("later-%d", i), 1, spec.Computation)
	}
	c := &concurrentFake{fakeSystem: f}
	rep, err := CheckFaithfulness(c, EarlyStop())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 {
		t.Errorf("Checked = %d, want 1", rep.Checked)
	}
	if c.runs != 2 { // baseline + the one stopping play
		t.Errorf("runs = %d, want 2 (baseline + stopping play)", c.runs)
	}
}
