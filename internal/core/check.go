package core

import (
	"fmt"
	"sync"

	"repro/internal/spec"
)

// play is one (node, deviation) pair in catalogue order — or one
// (node, deviation, epoch) triple under PerEpoch, with epoch as the
// innermost axis.
type play struct {
	node NodeID
	base int64
	dev  Deviation
	// epoch is the 0-based pinned epoch; -1 means the whole run.
	epoch int
}

// playResult is the outcome of one play, recorded by job index so the
// engine's output is independent of worker scheduling.
type playResult struct {
	violation *Violation
	err       error
}

// engine carries one search's resolved shape: the system under test,
// its stateful view, the truthful snapshot every play overlays, and
// the epoch capabilities when the grid is per-epoch.
type engine struct {
	sys     System
	ss      StatefulSystem
	st      TruthfulState
	epoched EpochedSystem         // non-nil iff cfg.PerEpoch
	sepoch  StatefulEpochedSystem // non-nil when the system plays epochs against snapshots
}

// check is the deviation-search engine behind CheckFaithfulness and
// CheckFaithfulnessCfg.
//
// Determinism invariant: the Report (and any error) depends only on
// the System and the config's semantic fields (EarlyStop, PerEpoch,
// PruneBound) — never on the worker count, context pooling, or
// scheduling. Every job writes its result into its own
// catalogue-order slot; violations are collected in slot order and
// errors are reported for the earliest failing slot — exactly what
// the sequential loop would have produced. Pruning is decided at
// enumeration time from the static bound, so every worker count
// prunes the same plays. A parallel early-stopped search may
// *execute* more plays than the sequential one, but it reports the
// same ones.
func check(sys System, cfg CheckConfig) (Report, error) {
	e := engine{sys: sys, ss: AsStateful(sys)}
	st, err := e.ss.Snapshot()
	if err != nil {
		return Report{}, fmt.Errorf("%w: %v", ErrNoBaseline, err)
	}
	e.st = st
	baseline := st.Baseline()

	// Enumerate the catalogue up front (sequentially — Deviations need
	// not be concurrency-safe). The baseline must price every node
	// before any deviant play runs; prune decisions are taken here,
	// once, so they cannot depend on scheduling.
	if cfg.PerEpoch {
		var ok bool
		if e.epoched, ok = sys.(EpochedSystem); !ok {
			return Report{}, ErrNotEpoched
		}
		e.sepoch, _ = sys.(StatefulEpochedSystem)
	}
	var plays, pruned []play
	add := func(p play) {
		if cfg.PruneBound != nil {
			if bound, ok := cfg.PruneBound(sys, p.node, p.dev, p.epoch); ok && bound <= p.base {
				// A violation needs a strict gain; a bound at or
				// below the baseline proves there is none.
				pruned = append(pruned, p)
				return
			}
		}
		plays = append(plays, p)
	}
	for _, node := range sys.Nodes() {
		base, ok := baseline.Utilities[node]
		if !ok {
			return Report{}, fmt.Errorf("core: baseline missing utility for node %d", node)
		}
		for _, dev := range sys.Deviations(node) {
			if e.epoched == nil {
				add(play{node: node, base: base, dev: dev, epoch: -1})
				continue
			}
			epochs := e.epoched.EpochsOf(node, dev)
			if epochs == nil {
				for ep := 0; ep < e.epoched.NumEpochs(); ep++ {
					add(play{node: node, base: base, dev: dev, epoch: ep})
				}
				continue
			}
			for _, ep := range epochs {
				add(play{node: node, base: base, dev: dev, epoch: ep})
			}
		}
	}

	workers := cfg.workerCount()
	if workers > len(plays) {
		workers = len(plays)
	}

	// ends reports whether a play's result terminates the search: any
	// error does (the fold returns the earliest error, discarding the
	// report), and a violation does under early stop.
	ends := func(r playResult) bool {
		return r.err != nil || (cfg.EarlyStop && r.violation != nil)
	}

	results := make([]playResult, len(plays))
	if workers <= 1 {
		ctx := NewPlayContext(0)
		for i := range plays {
			if cfg.FreshContexts {
				ctx = NewPlayContext(0)
			}
			results[i] = e.runPlay(ctx, plays[i])
			if ends(results[i]) {
				break
			}
		}
	} else {
		// stop is the lowest catalogue index known to end the search.
		// Workers skip jobs beyond it; lowering it is a best-effort
		// cancellation, so the value never influences the Report —
		// only how much wasted work the pool avoids. Every play below
		// the final minimum still runs, which is all the fold reads.
		stop := len(plays)
		var mu sync.Mutex
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				ctx := NewPlayContext(worker)
				for i := range jobs {
					mu.Lock()
					skip := i > stop
					mu.Unlock()
					if skip {
						continue
					}
					if cfg.FreshContexts {
						ctx = NewPlayContext(worker)
					}
					r := e.runPlay(ctx, plays[i])
					results[i] = r
					if ends(r) {
						mu.Lock()
						if i < stop {
							stop = i
						}
						mu.Unlock()
					}
				}
			}(w)
		}
		for i := range plays {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	// Fold results in catalogue order.
	rep := Report{Pruned: len(pruned)}
	folded := false
	for i := range results {
		if err := results[i].err; err != nil {
			return Report{}, err
		}
		if !cfg.EarlyStop {
			if v := results[i].violation; v != nil {
				rep.Violations = append(rep.Violations, *v)
			}
			continue
		}
		if v := results[i].violation; v != nil {
			rep.Checked = i + 1
			rep.Violations = []Violation{*v}
			sortViolations(rep.Violations)
			folded = true
			break
		}
	}
	if !folded {
		rep.Checked = len(plays)
		sortViolations(rep.Violations)
	}
	if cfg.VerifyPruned {
		if err := e.verifyPruned(pruned, cfg.verifyStride()); err != nil {
			return Report{}, err
		}
	}
	return rep, nil
}

// verifyPruned replays every stride-th pruned play sequentially and
// fails if any of them turns out profitable — the debug net under an
// unsound PruneBound.
func (e *engine) verifyPruned(pruned []play, stride int) error {
	ctx := NewPlayContext(0)
	for i := 0; i < len(pruned); i += stride {
		p := pruned[i]
		out, err := e.playOutcome(ctx, p)
		if err != nil {
			return fmt.Errorf("core: verify pruned node %d deviation %q: %w", p.node, p.dev.Name(), err)
		}
		if got, ok := out.Utilities[p.node]; ok && got > p.base {
			return fmt.Errorf("core: unsound prune bound: node %d deviation %q epoch %d pruned but gains %d (baseline %d, deviant %d)",
				p.node, p.dev.Name(), p.epoch+1, got-p.base, p.base, got)
		}
	}
	return nil
}

// playOutcome executes one play against the truthful snapshot,
// preferring the stateful fast paths.
func (e *engine) playOutcome(ctx *PlayContext, p play) (Outcome, error) {
	if p.epoch >= 0 {
		if e.sepoch != nil {
			return e.sepoch.PlayEpoch(ctx, e.st, p.node, p.dev, p.epoch)
		}
		return e.epoched.RunEpoch(p.node, p.dev, p.epoch)
	}
	return e.ss.Play(ctx, e.st, p.node, p.dev)
}

// runPlay executes one deviant play and classifies the outcome. The
// outcome may live in the context's arena, so the deviator's utility
// is extracted before the context is reused. The deviation's Classes
// slice is copied only when a violation is recorded — Classes may
// return a shared slice (see BasicDeviation.Classes).
func (e *engine) runPlay(ctx *PlayContext, p play) playResult {
	out, err := e.playOutcome(ctx, p)
	if err != nil {
		return playResult{err: fmt.Errorf("core: run node %d deviation %q: %w", p.node, p.dev.Name(), err)}
	}
	got, ok := out.Utilities[p.node]
	if !ok {
		return playResult{err: fmt.Errorf("core: deviant run missing utility for node %d", p.node)}
	}
	if got <= p.base {
		return playResult{}
	}
	return playResult{violation: &Violation{
		Node:      p.node,
		Deviation: p.dev.Name(),
		Classes:   append([]spec.ActionKind(nil), p.dev.Classes()...),
		Baseline:  p.base,
		Deviant:   got,
		Epoch:     p.epoch + 1,
	}}
}
