package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/spec"
)

// CheckOption configures CheckFaithfulness.
type CheckOption func(*checkConfig)

type checkConfig struct {
	workers   int
	earlyStop bool
	perEpoch  bool
}

// Workers sets the worker-pool size for the deviation search. k <= 0
// means runtime.NumCPU(). The default (option absent) is 1: a purely
// sequential search, safe for any System. With k > 1 the System's Run
// method must be safe for concurrent calls — the rational package's
// systems are.
func Workers(k int) CheckOption {
	return func(c *checkConfig) {
		if k <= 0 {
			k = runtime.NumCPU()
		}
		c.workers = k
	}
}

// PerEpoch expands the search grid from (node, deviation) to
// (node, deviation, epoch): every play pins its deviation to a single
// epoch of an EpochedSystem, so violations carry the epoch that admits
// them and a multi-epoch scenario is certified faithful *on every
// epoch*, not merely in aggregate. The System must implement
// EpochedSystem (ErrNotEpoched otherwise). Composes with Workers and
// EarlyStop; the determinism invariant is unchanged because the grid
// enumeration never depends on scheduling.
func PerEpoch() CheckOption {
	return func(c *checkConfig) { c.perEpoch = true }
}

// EarlyStop makes the search return at the first profitable deviation
// in catalogue order — (node, deviation) pairs enumerated as the
// sequential loop would visit them. The Report then carries exactly
// that one violation, and Checked counts the plays a sequential search
// would have executed (the violation's 1-based position). Useful when
// the caller only needs a faithful/not-faithful verdict.
func EarlyStop() CheckOption {
	return func(c *checkConfig) { c.earlyStop = true }
}

func applyOptions(opts []CheckOption) checkConfig {
	cfg := checkConfig{workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// play is one (node, deviation) pair in catalogue order — or one
// (node, deviation, epoch) triple under PerEpoch, with epoch as the
// innermost axis.
type play struct {
	node NodeID
	base int64
	dev  Deviation
	// epoch is the 0-based pinned epoch; -1 means the whole run.
	epoch int
}

// playResult is the outcome of one play, recorded by job index so the
// engine's output is independent of worker scheduling.
type playResult struct {
	violation *Violation
	err       error
}

// check is the deviation-search engine behind CheckFaithfulness.
//
// Determinism invariant: the Report (and any error) depends only on
// the System, never on the worker count or scheduling. Every job
// writes its result into its own catalogue-order slot; violations are
// collected in slot order and errors are reported for the earliest
// failing slot — exactly what the sequential loop would have produced.
// A parallel early-stopped search may *execute* more plays than the
// sequential one, but it reports the same ones.
func check(sys System, cfg checkConfig) (Report, error) {
	baseline, err := sys.Run(-1, nil)
	if err != nil {
		return Report{}, fmt.Errorf("%w: %v", ErrNoBaseline, err)
	}

	// Enumerate the catalogue up front (sequentially — Deviations need
	// not be concurrency-safe). The baseline must price every node
	// before any deviant play runs.
	var epoched EpochedSystem
	if cfg.perEpoch {
		var ok bool
		if epoched, ok = sys.(EpochedSystem); !ok {
			return Report{}, ErrNotEpoched
		}
	}
	var plays []play
	for _, node := range sys.Nodes() {
		base, ok := baseline.Utilities[node]
		if !ok {
			return Report{}, fmt.Errorf("core: baseline missing utility for node %d", node)
		}
		for _, dev := range sys.Deviations(node) {
			if epoched == nil {
				plays = append(plays, play{node: node, base: base, dev: dev, epoch: -1})
				continue
			}
			epochs := epoched.EpochsOf(node, dev)
			if epochs == nil {
				for e := 0; e < epoched.NumEpochs(); e++ {
					plays = append(plays, play{node: node, base: base, dev: dev, epoch: e})
				}
				continue
			}
			for _, e := range epochs {
				plays = append(plays, play{node: node, base: base, dev: dev, epoch: e})
			}
		}
	}

	workers := cfg.workers
	if workers > len(plays) {
		workers = len(plays)
	}

	// ends reports whether a play's result terminates the search: any
	// error does (the fold returns the earliest error, discarding the
	// report), and a violation does under early stop.
	ends := func(r playResult) bool {
		return r.err != nil || (cfg.earlyStop && r.violation != nil)
	}

	results := make([]playResult, len(plays))
	if workers <= 1 {
		for i := range plays {
			results[i] = runPlay(sys, epoched, plays[i])
			if ends(results[i]) {
				break
			}
		}
	} else {
		// stop is the lowest catalogue index known to end the search.
		// Workers skip jobs beyond it; lowering it is a best-effort
		// cancellation, so the value never influences the Report —
		// only how much wasted work the pool avoids. Every play below
		// the final minimum still runs, which is all the fold reads.
		stop := len(plays)
		var mu sync.Mutex
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					mu.Lock()
					skip := i > stop
					mu.Unlock()
					if skip {
						continue
					}
					r := runPlay(sys, epoched, plays[i])
					results[i] = r
					if ends(r) {
						mu.Lock()
						if i < stop {
							stop = i
						}
						mu.Unlock()
					}
				}
			}()
		}
		for i := range plays {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	// Fold results in catalogue order.
	rep := Report{}
	for i := range results {
		if err := results[i].err; err != nil {
			return Report{}, err
		}
		if !cfg.earlyStop {
			if v := results[i].violation; v != nil {
				rep.Violations = append(rep.Violations, *v)
			}
			continue
		}
		if v := results[i].violation; v != nil {
			rep.Checked = i + 1
			rep.Violations = []Violation{*v}
			sortViolations(rep.Violations)
			return rep, nil
		}
	}
	rep.Checked = len(plays)
	sortViolations(rep.Violations)
	return rep, nil
}

// runPlay executes one deviant play and classifies the outcome. The
// deviation's Classes slice is copied only when a violation is
// recorded — Classes may return a shared slice (see
// BasicDeviation.Classes).
func runPlay(sys System, epoched EpochedSystem, p play) playResult {
	var out Outcome
	var err error
	if p.epoch >= 0 {
		out, err = epoched.RunEpoch(p.node, p.dev, p.epoch)
	} else {
		out, err = sys.Run(p.node, p.dev)
	}
	if err != nil {
		return playResult{err: fmt.Errorf("core: run node %d deviation %q: %w", p.node, p.dev.Name(), err)}
	}
	got, ok := out.Utilities[p.node]
	if !ok {
		return playResult{err: fmt.Errorf("core: deviant run missing utility for node %d", p.node)}
	}
	if got <= p.base {
		return playResult{}
	}
	return playResult{violation: &Violation{
		Node:      p.node,
		Deviation: p.dev.Name(),
		Classes:   append([]spec.ActionKind(nil), p.dev.Classes()...),
		Baseline:  p.base,
		Deviant:   got,
		Epoch:     p.epoch + 1,
	}}
}
