package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/spec"
)

// fakeEpoched is a 2-node, multi-epoch game: gains are per (node,
// deviation, epoch); a whole-run play sums the gains over the
// deviation's activity set.
type fakeEpoched struct {
	epochs   int
	baseline map[NodeID]int64
	devs     map[NodeID][]Deviation
	// gain[node][dev][epoch] = delta vs baseline when active in epoch.
	gain map[NodeID]map[string][]int64
	// active[node][dev] = activity set (nil = every epoch).
	active map[NodeID]map[string][]int

	mu   sync.Mutex
	runs int
}

func newFakeEpoched(epochs int) *fakeEpoched {
	return &fakeEpoched{
		epochs:   epochs,
		baseline: map[NodeID]int64{0: 100, 1: 50},
		devs:     map[NodeID][]Deviation{},
		gain:     map[NodeID]map[string][]int64{0: {}, 1: {}},
		active:   map[NodeID]map[string][]int{0: {}, 1: {}},
	}
}

func (f *fakeEpoched) addDeviation(n NodeID, name string, perEpoch []int64, active []int, classes ...spec.ActionKind) {
	f.devs[n] = append(f.devs[n], BasicDeviation{DevName: name, DevClasses: classes})
	f.gain[n][name] = perEpoch
	f.active[n][name] = active
}

func (f *fakeEpoched) Nodes() []NodeID                 { return []NodeID{0, 1} }
func (f *fakeEpoched) NumEpochs() int                  { return f.epochs }
func (f *fakeEpoched) Deviations(n NodeID) []Deviation { return f.devs[n] }

func (f *fakeEpoched) EpochsOf(n NodeID, dev Deviation) []int {
	return f.active[n][dev.Name()]
}

func (f *fakeEpoched) outcome(deviator NodeID, dev Deviation, pin int) Outcome {
	f.mu.Lock()
	f.runs++
	f.mu.Unlock()
	u := make(map[NodeID]int64, len(f.baseline))
	for k, v := range f.baseline {
		u[k] = v
	}
	if deviator >= 0 && dev != nil {
		activity := f.active[deviator][dev.Name()]
		if activity == nil {
			activity = make([]int, f.epochs)
			for e := range activity {
				activity[e] = e
			}
		}
		for _, e := range activity {
			if pin >= 0 && e != pin {
				continue
			}
			u[deviator] += f.gain[deviator][dev.Name()][e]
		}
	}
	return Outcome{Utilities: u, Completed: true}
}

func (f *fakeEpoched) Run(deviator NodeID, dev Deviation) (Outcome, error) {
	return f.outcome(deviator, dev, -1), nil
}

func (f *fakeEpoched) RunEpoch(deviator NodeID, dev Deviation, epoch int) (Outcome, error) {
	if epoch < 0 || epoch >= f.epochs {
		return Outcome{}, errors.New("epoch out of range")
	}
	return f.outcome(deviator, dev, epoch), nil
}

// TestPerEpochRequiresEpochedSystem: a plain System cannot be checked
// per epoch.
func TestPerEpochRequiresEpochedSystem(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "x", 1, spec.Computation)
	if _, err := CheckFaithfulness(f, PerEpoch()); !errors.Is(err, ErrNotEpoched) {
		t.Fatalf("err = %v, want ErrNotEpoched", err)
	}
}

// TestPerEpochGridAndAttribution: the grid expands along the epoch
// axis, violations carry their 1-based epoch, and epochs outside the
// activity set are not played.
func TestPerEpochGridAndAttribution(t *testing.T) {
	f := newFakeEpoched(3)
	// Profitable only in epoch 1 (0-based) of three.
	f.addDeviation(0, "boundary", []int64{0, 7, 0}, []int{1}, spec.Computation)
	// Active everywhere, profitable in epochs 0 and 2.
	f.addDeviation(1, "everywhere", []int64{3, -2, 5}, nil, spec.MessagePassing)
	rep, err := CheckFaithfulness(f, PerEpoch())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1+3 {
		t.Errorf("Checked = %d, want 4 (1 pinned + 3 epochs)", rep.Checked)
	}
	want := []Violation{
		{Node: 0, Deviation: "boundary", Classes: []spec.ActionKind{spec.Computation}, Baseline: 100, Deviant: 107, Epoch: 2},
		{Node: 1, Deviation: "everywhere", Classes: []spec.ActionKind{spec.MessagePassing}, Baseline: 50, Deviant: 53, Epoch: 1},
		{Node: 1, Deviation: "everywhere", Classes: []spec.ActionKind{spec.MessagePassing}, Baseline: 50, Deviant: 55, Epoch: 3},
	}
	if !reflect.DeepEqual(rep.Violations, want) {
		t.Errorf("violations = %+v, want %+v", rep.Violations, want)
	}
	if rep.Faithful() {
		t.Error("violations present but report claims faithful")
	}
}

// TestPerEpochViolationString: epoch-attributed violations render the
// epoch; static ones keep the pre-churn format.
func TestPerEpochViolationString(t *testing.T) {
	v := Violation{Node: 3, Deviation: "d", Baseline: 1, Deviant: 2}
	if got := v.String(); got != `node 3 gains 1 via "d" (classes [])` {
		t.Errorf("static violation renders %q", got)
	}
	v.Epoch = 2
	if got := v.String(); got != `node 3 gains 1 via "d" in epoch 2 (classes [])` {
		t.Errorf("epoched violation renders %q", got)
	}
}

// randomFakeEpoched builds a seeded multi-epoch payoff table with a
// mix of activity sets.
func randomFakeEpoched(seed int64) *fakeEpoched {
	rng := rand.New(rand.NewSource(seed))
	epochs := 2 + rng.Intn(3)
	f := newFakeEpoched(epochs)
	kinds := []spec.ActionKind{spec.InfoRevelation, spec.MessagePassing, spec.Computation}
	for _, node := range []NodeID{0, 1} {
		for d := 0; d < 2+rng.Intn(6); d++ {
			gains := make([]int64, epochs)
			for e := range gains {
				gains[e] = rng.Int63n(9) - 3
			}
			var active []int
			if rng.Intn(2) == 0 {
				for e := 0; e < epochs; e++ {
					if rng.Intn(2) == 0 {
						active = append(active, e)
					}
				}
				if active == nil {
					active = []int{rng.Intn(epochs)}
				}
			}
			f.addDeviation(node, fmt.Sprintf("dev-%d", d), gains, active, kinds[rng.Intn(len(kinds))])
		}
	}
	return f
}

// TestPerEpochDifferentialParallelVsSequential: the epoch-expanded
// grid keeps the engine's determinism invariant — byte-identical
// reports for every worker count, with and without early stop.
func TestPerEpochDifferentialParallelVsSequential(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		f := randomFakeEpoched(seed)
		for _, extra := range [][]CheckOption{nil, {EarlyStop()}} {
			opts := append([]CheckOption{PerEpoch()}, extra...)
			want, err := CheckFaithfulness(f, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5} {
				got, err := CheckFaithfulness(f, append(opts, Workers(workers))...)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d workers %d earlyStop=%v: %+v != sequential %+v",
						seed, workers, len(extra) > 0, got, want)
				}
			}
		}
	}
}

// TestPerEpochEarlyStopSavesWork: a pinned grid stops at the first
// profitable (node, deviation, epoch) triple in order.
func TestPerEpochEarlyStopSavesWork(t *testing.T) {
	f := newFakeEpoched(4)
	f.addDeviation(0, "win-late", []int64{0, 0, 6, 0}, nil, spec.Computation)
	f.addDeviation(1, "win-early", []int64{2, 0, 0, 0}, nil, spec.Computation)
	rep, err := CheckFaithfulness(f, PerEpoch(), EarlyStop())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 3 {
		t.Errorf("Checked = %d, want 3 (node 0 epochs 1..3 in order)", rep.Checked)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Epoch != 3 || rep.Violations[0].Deviation != "win-late" {
		t.Errorf("violations = %+v, want win-late@epoch3", rep.Violations)
	}
}
