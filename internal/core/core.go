// Package core implements the paper's primary contribution: the
// faithfulness framework for distributed mechanism specifications
// (Shneidman & Parkes, PODC 2004, §3.3–§3.8).
//
// A distributed mechanism specification dM = (g, Σ, s^m) is *faithful*
// (Definition 8) when the suggested strategy s^m is an ex post Nash
// equilibrium: no node, whatever the others' types, can strictly gain
// by any unilateral deviation. The framework exposes:
//
//   - the deviation model (a catalogue of alternative strategies per
//     node, classified as information-revelation, message-passing or
//     computation deviations per §3.4);
//   - CheckFaithfulness, the verifier that exhaustively plays every
//     catalogued unilateral deviation against the suggested strategy
//     and reports any strict utility gain (violations of IC, CC or AC
//     — Definitions 9–11); and
//   - Report, which maps violations back onto the paper's property
//     vocabulary (IC/CC/AC, and faithfulness via Proposition 1: all
//     three in the same equilibrium).
//
// Strong-CC / strong-AC (Definitions 12–13) are checked by including
// *joint* deviations — combinations of message-passing, computation
// and revelation actions — in the catalogue; Proposition 2 is
// exercised end-to-end in the fpss/faithful packages.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/spec"
)

// NodeID identifies a participant in a distributed mechanism.
type NodeID int

// Deviation is one alternative strategy available to a rational node:
// a named departure from the suggested specification, tagged with the
// action classes it touches (a joint deviation touches several).
type Deviation interface {
	// Name uniquely identifies the deviation within a System.
	Name() string
	// Classes reports which external action classes the deviation
	// manipulates (information revelation, message passing,
	// computation) — drives the IC/CC/AC attribution in Report.
	Classes() []spec.ActionKind
}

// Outcome is the result of running a distributed mechanism to
// completion (or to the bank refusing to green-light it).
type Outcome struct {
	// Utilities is the realized quasilinear utility per node,
	// including payments, penalties and transit costs.
	Utilities map[NodeID]int64
	// Completed is false when the mechanism did not reach the
	// execution phase (e.g. the bank kept restarting a construction
	// phase because a deviation was detected). Per the paper's §4.3
	// assumption, nodes place a strong negative value on
	// non-progress; Utilities must already reflect that.
	Completed bool
	// Detected lists nodes the bank (or checkpointing entity) flagged.
	Detected []NodeID
}

// System is one concrete instance of a distributed mechanism: a fixed
// topology and true-type profile, plus the machinery to execute the
// suggested specification with at most one deviating node.
type System interface {
	// Nodes lists the strategic participants.
	Nodes() []NodeID
	// Deviations enumerates the catalogued deviations for a node.
	Deviations(n NodeID) []Deviation
	// Run executes the mechanism. deviator < 0 (or dev == nil) runs
	// the suggested specification s^m for everyone.
	Run(deviator NodeID, dev Deviation) (Outcome, error)
}

// Violation records a strictly profitable unilateral deviation — a
// counterexample to faithfulness.
type Violation struct {
	Node      NodeID
	Deviation string
	Classes   []spec.ActionKind
	Baseline  int64
	Deviant   int64
	// Epoch is the 1-based epoch the deviation was pinned to when the
	// check ran with PerEpoch over an EpochedSystem; 0 means the play
	// spanned the whole run (static scenarios and un-pinned searches).
	Epoch int
}

// Gain returns the strict improvement the deviator obtained.
func (v Violation) Gain() int64 { return v.Deviant - v.Baseline }

func (v Violation) String() string {
	if v.Epoch > 0 {
		return fmt.Sprintf("node %d gains %d via %q in epoch %d (classes %v)", v.Node, v.Gain(), v.Deviation, v.Epoch, v.Classes)
	}
	return fmt.Sprintf("node %d gains %d via %q (classes %v)", v.Node, v.Gain(), v.Deviation, v.Classes)
}

// Report summarizes a faithfulness check in the paper's vocabulary.
type Report struct {
	// Checked is the number of plays actually executed. Without
	// pruning this is the full grid size ((node, deviation) pairs, or
	// triples under PerEpoch); with a PruneBound it excludes the
	// plays the bound skipped, so Checked + Pruned is the grid.
	Checked int
	// Pruned is the number of plays a PruneBound proved unprofitable
	// and the engine skipped. Always 0 without a bound. Kept separate
	// from Checked so suite output can't silently under-report
	// coverage.
	Pruned int
	// Violations lists every strictly profitable deviation.
	Violations []Violation
}

// Total is the full grid size the search enumerated: executed plus
// pruned plays.
func (r Report) Total() int { return r.Checked + r.Pruned }

// touches reports whether any violation involves the given class.
func (r Report) touches(k spec.ActionKind) bool {
	for _, v := range r.Violations {
		for _, c := range v.Classes {
			if c == k {
				return true
			}
		}
	}
	return false
}

// IC reports incentive compatibility (Definition 9): no profitable
// deviation involving information-revelation actions.
func (r Report) IC() bool { return !r.touches(spec.InfoRevelation) }

// CC reports communication compatibility (Definition 10): no
// profitable deviation involving message-passing actions.
func (r Report) CC() bool { return !r.touches(spec.MessagePassing) }

// AC reports algorithm compatibility (Definition 11): no profitable
// deviation involving computation actions.
func (r Report) AC() bool { return !r.touches(spec.Computation) }

// Faithful reports Definition 8 via Proposition 1: the suggested
// strategy survives every catalogued deviation (IC ∧ CC ∧ AC in the
// same equilibrium — here literally the same runs).
func (r Report) Faithful() bool { return len(r.Violations) == 0 }

// EpochedSystem is a System whose runs span several epochs — a
// dynamic network where nodes join and leave between construction
// phases (internal/churn). On top of the whole-run Run inherited from
// System (deviation active in every epoch the deviator participates
// in), it can pin a deviation to a single epoch, which is what lets
// CheckFaithfulness(…, PerEpoch()) replay the (node, deviation) grid
// per epoch and attribute each violation to the epoch that admits it.
type EpochedSystem interface {
	System
	// NumEpochs reports how many epochs a run spans (≥ 1).
	NumEpochs() int
	// RunEpoch executes the mechanism with the deviation active only
	// in the given epoch (0-based); every other epoch follows the
	// suggested specification. Utilities aggregate over all epochs,
	// exactly like Run.
	RunEpoch(deviator NodeID, dev Deviation, epoch int) (Outcome, error)
	// EpochsOf lists the epochs (0-based, ascending) in which the
	// deviation can differ from the suggested strategy for this
	// deviator — e.g. only the epochs the node is a member of, or the
	// single boundary a leave-type deviation exploits. nil means every
	// epoch. PerEpoch enumerates plays only for these epochs; a pinned
	// play outside the set would equal the baseline by construction.
	EpochsOf(deviator NodeID, dev Deviation) []int
}

// ErrNoBaseline is returned when the suggested specification itself
// fails to run.
var ErrNoBaseline = errors.New("core: baseline run failed")

// ErrNotEpoched is returned when PerEpoch is requested for a System
// that does not implement EpochedSystem.
var ErrNotEpoched = errors.New("core: PerEpoch requires an EpochedSystem")

// CheckFaithfulness plays every catalogued unilateral deviation of
// every node against the suggested specification and records each
// strict utility gain. Under the benevolence assumption (Remark 1) a
// weak equilibrium suffices: ties are not violations.
//
// The check certifies ex post Nash *for this type profile*; callers
// quantify over profiles by invoking it across many sampled Systems
// (the deviation search of experiment E6).
//
// With no options the search is sequential — the reference oracle.
// Options are the deprecated spelling of CheckConfig fields; new code
// should call CheckFaithfulnessCfg. The Report is byte-identical for
// every worker count: see check.go for how the engine keeps
// scheduling out of the output.
func CheckFaithfulness(sys System, opts ...CheckOption) (Report, error) {
	return check(sys, applyOptions(opts))
}

// CheckFaithfulnessCfg is CheckFaithfulness with the full engine
// configuration: worker pool, early stop, per-epoch grids, profit-
// bound pruning (PruneBound / VerifyPruned), and play-context
// pooling. The zero CheckConfig is the sequential reference oracle.
//
// When sys implements StatefulSystem, the truthful state is
// snapshotted once and every play overlays it through a worker-owned
// PlayContext; legacy systems are adapted transparently (AsStateful)
// and behave exactly as before.
func CheckFaithfulnessCfg(sys System, cfg CheckConfig) (Report, error) {
	return check(sys, cfg)
}

// sortViolations orders violations canonically: by node, then by
// deviation name, then by epoch (PerEpoch can admit the same deviation
// in several epochs).
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Node != vs[j].Node {
			return vs[i].Node < vs[j].Node
		}
		if vs[i].Deviation != vs[j].Deviation {
			return vs[i].Deviation < vs[j].Deviation
		}
		return vs[i].Epoch < vs[j].Epoch
	})
}

// BasicDeviation is a ready-made Deviation implementation.
type BasicDeviation struct {
	DevName    string
	DevClasses []spec.ActionKind
}

var _ Deviation = BasicDeviation{}

// Name implements Deviation.
func (d BasicDeviation) Name() string { return d.DevName }

// Classes implements Deviation. The returned slice is shared — the
// check loop calls Classes on every play, and a defensive copy per
// call is pure garbage; CheckFaithfulness copies it only when it
// records a Violation. Callers must treat the result as read-only.
func (d BasicDeviation) Classes() []spec.ActionKind { return d.DevClasses }
