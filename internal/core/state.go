package core

// PlayContext is the arena a worker threads through consecutive plays
// so steady-state plays can reuse graph scratch, pooled networks,
// bank ledgers, and result maps instead of re-materializing them. The
// engine owns one context per worker (or one per play under
// CheckConfig.FreshContexts) and never shares a context between
// goroutines; a System's Play may therefore mutate it freely.
//
// Ownership contract: anything a Play returns out of the context —
// in particular the Outcome — is valid only until the next Play on
// the same context. The engine honors this by extracting what it
// needs (the deviator's utility) before reusing the context.
type PlayContext struct {
	worker  int
	scratch map[any]any
}

// NewPlayContext returns an empty context tagged with a worker index.
// Exposed for oracles and tests that drive StatefulSystem.Play
// directly; the engine builds its own.
func NewPlayContext(worker int) *PlayContext {
	return &PlayContext{worker: worker}
}

// Worker returns the owning worker's index (0-based).
func (c *PlayContext) Worker() int {
	if c == nil {
		return 0
	}
	return c.worker
}

// Value returns the context's entry for key, calling mk to build it
// on first use. Keys follow the context.Context convention: packages
// key with unexported types of their own, so the rational and churn
// arenas coexist in one context without colliding. A nil context
// builds a fresh value every call — Play implementations degrade to
// unpooled allocation rather than failing.
func (c *PlayContext) Value(key any, mk func() any) any {
	if c == nil {
		if mk == nil {
			return nil
		}
		return mk()
	}
	if v, ok := c.scratch[key]; ok {
		return v
	}
	if mk == nil {
		return nil
	}
	if c.scratch == nil {
		c.scratch = make(map[any]any)
	}
	v := mk()
	c.scratch[key] = v
	return v
}

// TruthfulState is an immutable snapshot of the honest run: whatever
// per-scenario state a System computes once (converged routing and
// pricing tables, advertisements, ledgers) so that deviant plays can
// overlay it copy-on-write instead of rebuilding it. Implementations
// must be safe for concurrent reads — every worker plays against the
// same snapshot.
type TruthfulState interface {
	// Baseline returns the honest outcome the snapshot embeds. The
	// returned Outcome is shared and read-only.
	Baseline() Outcome
}

// StatefulSystem splits the monolithic System.Run lifecycle into an
// explicit snapshot/play pair: Snapshot computes the truthful state
// once, Play runs one deviant overlay against it. CheckFaithfulness
// uses this interface when available (building the snapshot once and
// fanning plays over worker-owned contexts) and falls back to
// System.Run otherwise — see AsStateful.
type StatefulSystem interface {
	System
	// Snapshot runs the suggested specification for everyone and
	// captures the truthful state. Equivalent to Run(-1, nil) plus
	// whatever the system wants to retain from that run.
	Snapshot() (TruthfulState, error)
	// Play executes one deviant play against the snapshot. The
	// returned Outcome may live in the context's arena: it is valid
	// only until the next Play on the same context (see PlayContext).
	Play(ctx *PlayContext, st TruthfulState, deviator NodeID, dev Deviation) (Outcome, error)
}

// StatefulEpochedSystem is the epoch-pinned analogue for
// EpochedSystem implementations.
type StatefulEpochedSystem interface {
	EpochedSystem
	StatefulSystem
	// PlayEpoch is Play with the deviation pinned to a single epoch,
	// mirroring EpochedSystem.RunEpoch.
	PlayEpoch(ctx *PlayContext, st TruthfulState, deviator NodeID, dev Deviation, epoch int) (Outcome, error)
}

// AsStateful adapts any legacy System to StatefulSystem so existing
// differential oracles keep working unchanged: Snapshot is Run(-1,
// nil) and Play ignores the snapshot and context, re-running from
// scratch. Systems that already implement StatefulSystem are returned
// as-is.
func AsStateful(sys System) StatefulSystem {
	if ss, ok := sys.(StatefulSystem); ok {
		return ss
	}
	return legacyStateful{sys}
}

type legacyStateful struct {
	System
}

type legacySnapshot struct {
	base Outcome
}

func (s legacySnapshot) Baseline() Outcome { return s.base }

func (a legacyStateful) Snapshot() (TruthfulState, error) {
	out, err := a.System.Run(-1, nil)
	if err != nil {
		return nil, err
	}
	return legacySnapshot{base: out}, nil
}

func (a legacyStateful) Play(_ *PlayContext, _ TruthfulState, deviator NodeID, dev Deviation) (Outcome, error) {
	return a.System.Run(deviator, dev)
}
