package core

import "runtime"

// CheckConfig configures CheckFaithfulnessCfg. The zero value is the
// reference oracle: a purely sequential, unpruned search over the
// whole (node, deviation) grid — safe for any System.
type CheckConfig struct {
	// Workers is the worker-pool size for the deviation search.
	// 0 means 1 (the sequential oracle); negative means
	// runtime.NumCPU(). With more than one worker the System's
	// Run/Play methods must be safe for concurrent calls — the
	// rational package's systems are.
	Workers int

	// EarlyStop returns at the first profitable deviation in
	// catalogue order — (node, deviation) pairs enumerated as the
	// sequential loop would visit them. The Report then carries
	// exactly that one violation, and Checked counts the plays a
	// sequential search would have executed (the violation's 1-based
	// position among un-pruned plays).
	EarlyStop bool

	// PerEpoch expands the search grid from (node, deviation) to
	// (node, deviation, epoch): every play pins its deviation to a
	// single epoch of an EpochedSystem, so violations carry the epoch
	// that admits them and a multi-epoch scenario is certified
	// faithful *on every epoch*, not merely in aggregate. The System
	// must implement EpochedSystem (ErrNotEpoched otherwise).
	PerEpoch bool

	// PruneBound, when set, lets the engine skip plays that a static
	// profit bound proves unprofitable: a play is pruned when the
	// bound b (with ok=true) satisfies b <= baseline utility, since a
	// violation requires a strict gain. Pruned plays are counted in
	// Report.Pruned so coverage stays auditable. Use SelfBound for
	// systems that implement Bounder. Soundness is the bound
	// provider's responsibility — see VerifyPruned.
	PruneBound PruneBound

	// VerifyPruned replays a sample of pruned plays sequentially
	// after the search and fails the check if any of them beats its
	// baseline — a debug mode that catches unsound PruneBound
	// implementations instead of silently under-reporting.
	VerifyPruned bool

	// VerifySample is the sampling stride for VerifyPruned: every
	// VerifySample-th pruned play (in catalogue order) is replayed.
	// Values below 1 mean 1 — replay every pruned play.
	VerifySample int

	// FreshContexts gives every play a fresh PlayContext instead of
	// reusing one per worker — a debugging aid that rules out arena
	// state leaking between plays, at the cost of re-warming every
	// pool on every play.
	FreshContexts bool
}

// PruneBound returns an upper bound on the deviator's utility for the
// play (node, dev) — pinned to epoch when epoch >= 0, whole-run when
// epoch == -1. ok=false means no bound is available and the play must
// run. A sound bound never undercuts a utility the play could
// actually realize.
type PruneBound func(sys System, deviator NodeID, dev Deviation, epoch int) (int64, bool)

// Bounder is implemented by Systems that can statically bound a
// play's profit from the truthful snapshot — e.g. "an
// execution-phase-only misreport can pocket at most what the deviator
// honestly owes". Wire it into a check with SelfBound.
type Bounder interface {
	// ProfitUpperBound follows the PruneBound contract for this
	// system's own deviations.
	ProfitUpperBound(deviator NodeID, dev Deviation, epoch int) (int64, bool)
}

// SelfBound is a PruneBound that delegates to the System's own
// ProfitUpperBound when it implements Bounder, and declines to bound
// otherwise.
func SelfBound(sys System, deviator NodeID, dev Deviation, epoch int) (int64, bool) {
	if b, ok := sys.(Bounder); ok {
		return b.ProfitUpperBound(deviator, dev, epoch)
	}
	return 0, false
}

// normalized resolves the config's zero values into the effective
// worker count.
func (c CheckConfig) workerCount() int {
	switch {
	case c.Workers == 0:
		return 1
	case c.Workers < 0:
		return runtime.NumCPU()
	}
	return c.Workers
}

// verifyStride resolves the VerifyPruned sampling stride.
func (c CheckConfig) verifyStride() int {
	if c.VerifySample < 1 {
		return 1
	}
	return c.VerifySample
}

// CheckOption mutates a CheckConfig.
//
// Deprecated: build a CheckConfig and call CheckFaithfulnessCfg. The
// option constructors below survive so historical call sites migrate
// incrementally.
type CheckOption func(*CheckConfig)

// Workers sets the worker-pool size for the deviation search. k <= 0
// means runtime.NumCPU().
//
// Deprecated: set CheckConfig.Workers (note the different zero/negative
// convention documented there).
func Workers(k int) CheckOption {
	return func(c *CheckConfig) {
		if k <= 0 {
			k = runtime.NumCPU()
		}
		c.Workers = k
	}
}

// PerEpoch expands the search grid to (node, deviation, epoch).
//
// Deprecated: set CheckConfig.PerEpoch.
func PerEpoch() CheckOption {
	return func(c *CheckConfig) { c.PerEpoch = true }
}

// EarlyStop makes the search return at the first profitable deviation
// in catalogue order.
//
// Deprecated: set CheckConfig.EarlyStop.
func EarlyStop() CheckOption {
	return func(c *CheckConfig) { c.EarlyStop = true }
}

func applyOptions(opts []CheckOption) CheckConfig {
	var cfg CheckConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
