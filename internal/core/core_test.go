package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/spec"
)

// fakeSystem is a tiny 2-node game with a configurable payoff table:
// each node may play "honest" (suggested) or one catalogued deviation.
type fakeSystem struct {
	// gain[node][deviation name] = utility delta vs baseline.
	gain     map[NodeID]map[string]int64
	devs     map[NodeID][]Deviation
	baseline map[NodeID]int64
	runErr   error
	baseErr  error
}

func (f *fakeSystem) Nodes() []NodeID {
	return []NodeID{0, 1}
}

func (f *fakeSystem) Deviations(n NodeID) []Deviation { return f.devs[n] }

func (f *fakeSystem) Run(deviator NodeID, dev Deviation) (Outcome, error) {
	if deviator < 0 {
		if f.baseErr != nil {
			return Outcome{}, f.baseErr
		}
		u := make(map[NodeID]int64, len(f.baseline))
		for k, v := range f.baseline {
			u[k] = v
		}
		return Outcome{Utilities: u, Completed: true}, nil
	}
	if f.runErr != nil {
		return Outcome{}, f.runErr
	}
	u := make(map[NodeID]int64, len(f.baseline))
	for k, v := range f.baseline {
		u[k] = v
	}
	u[deviator] += f.gain[deviator][dev.Name()]
	return Outcome{Utilities: u, Completed: true}, nil
}

func newFake() *fakeSystem {
	return &fakeSystem{
		gain:     map[NodeID]map[string]int64{0: {}, 1: {}},
		devs:     map[NodeID][]Deviation{},
		baseline: map[NodeID]int64{0: 10, 1: 10},
	}
}

func (f *fakeSystem) addDeviation(n NodeID, name string, delta int64, classes ...spec.ActionKind) {
	f.devs[n] = append(f.devs[n], BasicDeviation{DevName: name, DevClasses: classes})
	f.gain[n][name] = delta
}

func TestFaithfulWhenNoGain(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "drop-msg", -5, spec.MessagePassing)
	f.addDeviation(1, "lie-cost", 0, spec.InfoRevelation) // tie: benevolence, not a violation
	rep, err := CheckFaithfulness(f)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Faithful() {
		t.Errorf("expected faithful, got violations %v", rep.Violations)
	}
	if rep.Checked != 2 {
		t.Errorf("checked = %d, want 2", rep.Checked)
	}
	if !rep.IC() || !rep.CC() || !rep.AC() {
		t.Error("all properties should hold")
	}
}

func TestViolationAttribution(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "spoof-price", 7, spec.MessagePassing, spec.Computation)
	f.addDeviation(1, "lie-cost", 3, spec.InfoRevelation)
	f.addDeviation(1, "harmless", -1, spec.Computation)
	rep, err := CheckFaithfulness(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faithful() {
		t.Fatal("expected violations")
	}
	if len(rep.Violations) != 2 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	if rep.IC() {
		t.Error("IC should fail (lie-cost)")
	}
	if rep.CC() {
		t.Error("CC should fail (spoof-price)")
	}
	if rep.AC() {
		t.Error("AC should fail (spoof-price is joint with computation)")
	}
	v := rep.Violations[0]
	if v.Node != 0 || v.Gain() != 7 {
		t.Errorf("violation[0] = %+v", v)
	}
	if v.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestACOnlyViolation(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "miscompute", 4, spec.Computation)
	rep, err := CheckFaithfulness(f)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IC() || !rep.CC() {
		t.Error("IC/CC should hold")
	}
	if rep.AC() {
		t.Error("AC should fail")
	}
}

func TestBaselineError(t *testing.T) {
	f := newFake()
	f.baseErr = errors.New("boom")
	if _, err := CheckFaithfulness(f); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("err = %v, want ErrNoBaseline", err)
	}
}

func TestRunError(t *testing.T) {
	f := newFake()
	f.addDeviation(0, "x", 1, spec.Computation)
	f.runErr = errors.New("deviant run failed")
	if _, err := CheckFaithfulness(f); err == nil {
		t.Error("expected error")
	}
}

func TestMissingUtility(t *testing.T) {
	f := newFake()
	delete(f.baseline, 1)
	if _, err := CheckFaithfulness(f); err == nil {
		t.Error("missing baseline utility should error")
	}
}

func TestViolationsSorted(t *testing.T) {
	f := newFake()
	f.addDeviation(1, "zz", 1, spec.Computation)
	f.addDeviation(1, "aa", 1, spec.Computation)
	f.addDeviation(0, "mm", 1, spec.Computation)
	rep, err := CheckFaithfulness(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 3 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	want := []struct {
		n NodeID
		d string
	}{{0, "mm"}, {1, "aa"}, {1, "zz"}}
	for i, w := range want {
		if rep.Violations[i].Node != w.n || rep.Violations[i].Deviation != w.d {
			t.Errorf("violations[%d] = %+v, want %+v", i, rep.Violations[i], w)
		}
	}
}

func TestViolationClassesIsolatedFromDeviation(t *testing.T) {
	// Classes() intentionally returns a shared read-only slice (no
	// defensive copy in the hot loop); the copy happens exactly once,
	// when a Violation is recorded. Mutating the deviation's backing
	// slice afterwards must not reach the recorded violation.
	backing := []spec.ActionKind{spec.Computation}
	d := BasicDeviation{DevName: "x", DevClasses: backing}
	if d.Name() != "x" {
		t.Error("Name wrong")
	}
	f := newFake()
	f.devs[0] = append(f.devs[0], d)
	f.gain[0]["x"] = 5
	rep, err := CheckFaithfulness(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	backing[0] = spec.InfoRevelation
	if rep.Violations[0].Classes[0] != spec.Computation {
		t.Error("recorded violation aliases the deviation's class slice")
	}
}

func ExampleCheckFaithfulness() {
	f := newFake()
	f.addDeviation(0, "drop-forward", 9, spec.MessagePassing)
	rep, _ := CheckFaithfulness(f)
	fmt.Println(rep.Faithful(), rep.CC())
	// Output: false false
}
