package bank

import (
	"strings"
	"testing"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/sign"
)

func testTopology() map[graph.NodeID][]graph.NodeID {
	// Triangle: everyone checks everyone else.
	return map[graph.NodeID][]graph.NodeID{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1},
	}
}

func setup(t *testing.T) (*Bank, map[graph.NodeID]*sign.Signer) {
	t.Helper()
	auth := sign.NewAuthority()
	signers := make(map[graph.NodeID]*sign.Signer)
	topo := testTopology()
	for id := range topo {
		s, err := auth.Register(SignerID(id))
		if err != nil {
			t.Fatal(err)
		}
		signers[id] = s
	}
	return New(auth, topo), signers
}

func submit(t *testing.T, b *Bank, s *sign.Signer, rep StateReport) {
	t.Helper()
	env, err := EncodeReport(s, rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(env); err != nil {
		t.Fatal(err)
	}
}

// consistentReports builds an all-honest report set: every node has
// the same DATA1 hash and every checker's mirror matches the
// principal's own hashes.
func consistentReports() map[graph.NodeID]StateReport {
	costs := fpss.CostTable{0: 1, 1: 2, 2: 3}
	ch := costs.HashCosts()
	own := map[graph.NodeID]MirrorReport{
		0: {RoutingHash: fpss.Hash{1}, PricingHash: fpss.Hash{10}},
		1: {RoutingHash: fpss.Hash{2}, PricingHash: fpss.Hash{20}},
		2: {RoutingHash: fpss.Hash{3}, PricingHash: fpss.Hash{30}},
	}
	out := make(map[graph.NodeID]StateReport)
	topo := testTopology()
	for id := range topo {
		mirrors := make(map[graph.NodeID]MirrorReport)
		for _, p := range topo[id] {
			mirrors[p] = own[p]
		}
		out[id] = StateReport{
			Node:        id,
			CostsHash:   ch,
			RoutingHash: own[id].RoutingHash,
			PricingHash: own[id].PricingHash,
			Mirrors:     mirrors,
		}
	}
	return out
}

func TestHonestReportsGreenLight(t *testing.T) {
	b, signers := setup(t)
	for id, rep := range consistentReports() {
		submit(t, b, signers[id], rep)
	}
	if !b.Complete() {
		t.Fatal("all reports submitted but Complete is false")
	}
	if dets := b.VerifyConstruction(); len(dets) != 0 {
		t.Errorf("honest run detected: %v", dets)
	}
}

func TestMissingReportBlocks(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	submit(t, b, signers[0], reps[0])
	if b.Complete() {
		t.Error("incomplete submissions reported complete")
	}
	dets := b.VerifyConstruction()
	if len(dets) != 1 || dets[0].Principal != -1 {
		t.Errorf("dets = %v, want one unattributed detection", dets)
	}
}

func TestDivergentDATA1Detected(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	r := reps[2]
	r.CostsHash = fpss.Hash{99}
	reps[2] = r
	for id, rep := range reps {
		submit(t, b, signers[id], rep)
	}
	dets := b.VerifyConstruction()
	found := false
	for _, d := range dets {
		if d.Principal == -1 && strings.Contains(d.Reason, "DATA1") {
			found = true
		}
	}
	if !found {
		t.Errorf("divergent DATA1 not detected: %v", dets)
	}
}

func TestRoutingMismatchAttributedToPrincipal(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	r := reps[1]
	r.RoutingHash = fpss.Hash{0xAA} // node 1 lies about (or corrupted) its DATA2
	reps[1] = r
	for id, rep := range reps {
		submit(t, b, signers[id], rep)
	}
	dets := b.VerifyConstruction()
	if len(dets) == 0 {
		t.Fatal("mismatch not detected")
	}
	for _, d := range dets {
		if d.Principal != 1 {
			t.Errorf("detection attributed to %d, want 1: %v", d.Principal, d)
		}
		if !strings.Contains(d.Reason, "[BANK1]") {
			t.Errorf("reason should cite BANK1: %v", d)
		}
	}
}

func TestPricingMismatchBANK2(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	r := reps[0]
	m := r.Mirrors[2]
	m.PricingHash = fpss.Hash{0xBB} // checker 0's mirror of principal 2 diverges
	r.Mirrors[2] = m
	reps[0] = r
	for id, rep := range reps {
		submit(t, b, signers[id], rep)
	}
	dets := b.VerifyConstruction()
	if len(dets) != 1 || dets[0].Principal != 2 || !strings.Contains(dets[0].Reason, "[BANK2]") {
		t.Errorf("dets = %v, want one BANK2 detection for principal 2", dets)
	}
}

func TestFlagsSurface(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	r := reps[0]
	r.Flags = []Flag{{Reporter: 0, Principal: 1, Reason: "spoofed forward"}}
	reps[0] = r
	for id, rep := range reps {
		submit(t, b, signers[id], rep)
	}
	dets := b.VerifyConstruction()
	if len(dets) != 1 || dets[0].Principal != 1 || !strings.Contains(dets[0].Reason, "spoofed forward") {
		t.Errorf("dets = %v", dets)
	}
}

func TestSubmitRejectsTamperedEnvelope(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	env, err := EncodeReport(signers[0], reps[0])
	if err != nil {
		t.Fatal(err)
	}
	env.Payload[0] ^= 1
	if err := b.Submit(env); err == nil {
		t.Error("tampered envelope accepted")
	}
}

func TestSubmitRejectsWrongSigner(t *testing.T) {
	b, signers := setup(t)
	reps := consistentReports()
	// Node 1 signs a report claiming to be node 0.
	env, err := EncodeReport(signers[1], reps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(env); err == nil {
		t.Error("misattributed report accepted")
	}
}

func TestResetClearsReports(t *testing.T) {
	b, signers := setup(t)
	for id, rep := range consistentReports() {
		submit(t, b, signers[id], rep)
	}
	b.Reset()
	if b.Complete() {
		t.Error("Reset did not clear reports")
	}
	// The cleared bank accepts a fresh round (the pooled-replay path).
	for id, rep := range consistentReports() {
		submit(t, b, signers[id], rep)
	}
	if !b.Complete() {
		t.Error("cleared bank rejected a fresh round of reports")
	}
}

func TestReusePooledBank(t *testing.T) {
	b, signers := setup(t)
	for id, rep := range consistentReports() {
		submit(t, b, signers[id], rep)
	}
	// Reuse must behave like New on both a used bank and a zero value
	// (what a sync.Pool hands out first).
	fresh, signers2 := setup(t)
	for _, reused := range []*Bank{b, new(Bank)} {
		reused.Reuse(fresh.authority, fresh.neighbors)
		if reused.Complete() {
			t.Fatal("reused bank carries stale reports")
		}
		for id, rep := range consistentReports() {
			submit(t, reused, signers2[id], rep)
		}
		if !reused.Complete() {
			t.Fatal("reused bank incomplete after full submission")
		}
		if det := reused.VerifyConstruction(); len(det) != 0 {
			t.Fatalf("reused bank detections: %v", det)
		}
	}
}

func TestAuditPaymentsHonest(t *testing.T) {
	b, _ := setup(t)
	obl := map[graph.NodeID]fpss.PaymentList{
		0: {1: 10, 2: 5},
		1: {},
		2: {1: 3},
	}
	findings := b.AuditPayments(obl, obl, 1)
	if len(findings) != 0 {
		t.Errorf("honest audit found %v", findings)
	}
}

func TestAuditPaymentsUnderreport(t *testing.T) {
	b, _ := setup(t)
	obl := map[graph.NodeID]fpss.PaymentList{0: {1: 10, 2: 5}, 1: {}, 2: {}}
	rep := map[graph.NodeID]fpss.PaymentList{0: {1: 4}, 1: {}, 2: {}}
	findings := b.AuditPayments(obl, rep, 2)
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Node != 0 || f.Shortfall != 11 {
		t.Errorf("finding = %+v, want node 0 shortfall 11", f)
	}
	// Penalty is ε above the deviation magnitude: |10-4| + |5-0| + 2 = 13.
	if f.Penalty != 13 {
		t.Errorf("penalty = %d, want 13", f.Penalty)
	}
}

func TestAuditPaymentsOverreportAlsoPenalized(t *testing.T) {
	b, _ := setup(t)
	obl := map[graph.NodeID]fpss.PaymentList{0: {}, 1: {}, 2: {}}
	rep := map[graph.NodeID]fpss.PaymentList{0: {1: 7}, 1: {}, 2: {}}
	findings := b.AuditPayments(obl, rep, 1)
	if len(findings) != 1 || findings[0].Penalty != 8 {
		t.Errorf("findings = %v, want penalty 8", findings)
	}
	if findings[0].Shortfall != -7 {
		t.Errorf("shortfall = %d, want -7", findings[0].Shortfall)
	}
}
