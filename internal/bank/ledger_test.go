package bank

import (
	"reflect"
	"testing"
)

func TestLedgerLifecycle(t *testing.T) {
	l := NewLedger()
	if err := l.Open(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Open(1); err != nil {
		t.Fatalf("re-opening an open account should be a no-op: %v", err)
	}
	if err := l.Open(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Credit(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := l.Credit(1, -15); err != nil {
		t.Fatal(err)
	}
	if err := l.Credit(2, 7); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(1); got != 25 {
		t.Errorf("balance(1) = %d, want 25", got)
	}
	final, err := l.Settle(1)
	if err != nil {
		t.Fatal(err)
	}
	if final != 25 {
		t.Errorf("settled balance = %d, want 25", final)
	}
	if !l.Settled(1) || l.Settled(2) {
		t.Error("settled flags wrong")
	}
	// A settled account is closed for good: no credits, no reopening,
	// no second settlement — identity laundering cannot resurrect it.
	if err := l.Credit(1, 1); err == nil {
		t.Error("credit to settled account should error")
	}
	if err := l.Open(1); err == nil {
		t.Error("reopening a settled account should error")
	}
	if _, err := l.Settle(1); err == nil {
		t.Error("double settle should error")
	}
	// Final balance still readable.
	if got := l.Balance(1); got != 25 {
		t.Errorf("post-settlement balance = %d, want 25", got)
	}
	if got := l.Accounts(); !reflect.DeepEqual(got, []Account{1, 2}) {
		t.Errorf("accounts = %v", got)
	}
	if got := l.Balances(); !reflect.DeepEqual(got, map[Account]int64{1: 25, 2: 7}) {
		t.Errorf("balances = %v", got)
	}
}

func TestLedgerUnopenedAccounts(t *testing.T) {
	l := NewLedger()
	if err := l.Credit(9, 1); err == nil {
		t.Error("credit to unopened account should error")
	}
	if _, err := l.Settle(9); err == nil {
		t.Error("settle of unopened account should error")
	}
	if got := l.Balance(9); got != 0 {
		t.Errorf("balance of unknown account = %d, want 0", got)
	}
}
