// Package bank implements the trusted, obedient accounting entity of
// the paper's extended FPSS specification (§4.2): it never performs
// the distributed mechanism computation itself, but compares
// state-information reported by principals and checkers at phase
// checkpoints, withholds the "green light" (forcing a restart) on any
// construction-phase deviation, and levies a monetary penalty
// "epsilon-above the attempted deviation" on execution-phase fraud.
//
// All node↔bank communication is signed with acknowledgments (package
// sign), giving communication compatibility on this one channel.
package bank

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/sign"
)

// Flag is a direct observation of a deviation by a checker node (e.g.
// a spoofed forward or an advertisement that contradicts the mirror).
type Flag struct {
	Reporter  graph.NodeID `json:"reporter"`
	Principal graph.NodeID `json:"principal"`
	Reason    string       `json:"reason"`
}

// MirrorReport carries a checker's view of one principal's tables.
type MirrorReport struct {
	RoutingHash fpss.Hash `json:"routingHash"`
	PricingHash fpss.Hash `json:"pricingHash"`
}

// StateReport is what each node sends (signed) at a checkpoint: hashes
// of its own DATA1/DATA2/DATA3*, its mirrors of every principal it
// checks, and any flags it raised. "A hash of the entire table is
// sufficient" (§4.3 [BANK1]).
type StateReport struct {
	Node        graph.NodeID                  `json:"node"`
	CostsHash   fpss.Hash                     `json:"costsHash"`
	RoutingHash fpss.Hash                     `json:"routingHash"`
	PricingHash fpss.Hash                     `json:"pricingHash"`
	Mirrors     map[graph.NodeID]MirrorReport `json:"mirrors"`
	Flags       []Flag                        `json:"flags"`
}

// Detection is the bank's verdict that some principal's cluster is
// inconsistent. Principal == -1 denotes an unattributed network-wide
// inconsistency (e.g. divergent DATA1).
type Detection struct {
	Principal graph.NodeID
	Reason    string
}

func (d Detection) String() string {
	return fmt.Sprintf("principal %d: %s", d.Principal, d.Reason)
}

// Bank is the checkpointing entity. It is configured with the
// (semi-private, registration-time) 1-hop topology so it knows which
// nodes check which principal.
type Bank struct {
	authority *sign.Authority
	neighbors map[graph.NodeID][]graph.NodeID
	reports   map[graph.NodeID]StateReport
}

// New creates a bank for the given neighborhood structure, verifying
// node reports against the supplied signing authority. The neighbors
// map is retained as a shared read-only view — deviation searches
// build one per scenario and hand it to every run's bank — so the
// caller must not mutate it for the bank's lifetime.
func New(authority *sign.Authority, neighbors map[graph.NodeID][]graph.NodeID) *Bank {
	return &Bank{
		authority: authority,
		neighbors: neighbors,
		reports:   make(map[graph.NodeID]StateReport),
	}
}

// Nodes returns the sorted registered node set.
func (b *Bank) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(b.neighbors))
	for id := range b.neighbors {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Submit verifies a signed report envelope and stores the report.
// Tampered or replayed envelopes are rejected — the signing layer is
// what makes node↔bank communication compatible.
func (b *Bank) Submit(env sign.Envelope) error {
	if _, err := b.authority.Verify(env); err != nil {
		return fmt.Errorf("bank: reject report: %w", err)
	}
	var rep StateReport
	if err := json.Unmarshal(env.Payload, &rep); err != nil {
		return fmt.Errorf("bank: malformed report: %w", err)
	}
	if fmt.Sprintf("node-%d", rep.Node) != env.Signer {
		return fmt.Errorf("bank: report for node %d signed by %q", rep.Node, env.Signer)
	}
	b.reports[rep.Node] = rep
	return nil
}

// SignerID returns the canonical signing identity for a node.
func SignerID(id graph.NodeID) string { return fmt.Sprintf("node-%d", id) }

// EncodeReport marshals and signs a report.
func EncodeReport(s *sign.Signer, rep StateReport) (sign.Envelope, error) {
	payload, err := json.Marshal(rep)
	if err != nil {
		return sign.Envelope{}, fmt.Errorf("bank: marshal report: %w", err)
	}
	return s.Sign(payload), nil
}

// Complete reports whether every registered node has submitted.
func (b *Bank) Complete() bool {
	for id := range b.neighbors {
		if _, ok := b.reports[id]; !ok {
			return false
		}
	}
	return true
}

// Reset clears collected reports (after a restart) in place. It used
// to reallocate the reports map, which made every pooled replay pay a
// fresh allocation; clearing keeps the map's buckets warm for the next
// round (see Reuse and the bank pool in internal/faithful).
func (b *Bank) Reset() { clear(b.reports) }

// Reuse re-targets a pooled Bank at a new run: fresh authority and
// neighborhood, reports cleared in place. Equivalent to New but
// recycles the report map storage — the deviation search constructs a
// bank per (node, deviation) run, so this is a hot path.
func (b *Bank) Reuse(authority *sign.Authority, neighbors map[graph.NodeID][]graph.NodeID) {
	b.authority = authority
	b.neighbors = neighbors
	if b.reports == nil {
		b.reports = make(map[graph.NodeID]StateReport)
	} else {
		clear(b.reports)
	}
}

// VerifyConstruction runs the construction-phase checkpoints:
// common DATA1 across all nodes, then [BANK1] (routing) and [BANK2]
// (pricing) principal-versus-checker comparisons, plus any checker
// flags. An empty result green-lights the execution phase; otherwise
// the phase must restart.
func (b *Bank) VerifyConstruction() []Detection {
	var out []Detection
	if !b.Complete() {
		out = append(out, Detection{Principal: -1, Reason: "missing state reports"})
		return out
	}
	// DATA1 must be common across all nodes.
	var first *fpss.Hash
	for _, id := range b.Nodes() {
		h := b.reports[id].CostsHash
		if first == nil {
			first = &h
			continue
		}
		if h != *first {
			out = append(out, Detection{Principal: -1, Reason: "divergent DATA1 transit-cost tables"})
			break
		}
	}
	// [BANK1]/[BANK2]: each principal against each of its checkers.
	for _, p := range b.Nodes() {
		pr := b.reports[p]
		for _, checker := range b.neighbors[p] {
			cr, ok := b.reports[checker]
			if !ok {
				continue
			}
			m, ok := cr.Mirrors[p]
			if !ok {
				out = append(out, Detection{Principal: p, Reason: fmt.Sprintf("checker %d has no mirror", checker)})
				continue
			}
			if m.RoutingHash != pr.RoutingHash {
				out = append(out, Detection{Principal: p, Reason: fmt.Sprintf("[BANK1] routing mismatch vs checker %d", checker)})
			}
			if m.PricingHash != pr.PricingHash {
				out = append(out, Detection{Principal: p, Reason: fmt.Sprintf("[BANK2] pricing mismatch vs checker %d", checker)})
			}
		}
	}
	// Direct checker observations.
	for _, id := range b.Nodes() {
		for _, f := range b.reports[id].Flags {
			out = append(out, Detection{Principal: f.Principal, Reason: fmt.Sprintf("flagged by %d: %s", f.Reporter, f.Reason)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Principal != out[j].Principal {
			return out[i].Principal < out[j].Principal
		}
		return out[i].Reason < out[j].Reason
	})
	return out
}

// PaymentFinding records an execution-phase audit result for one node.
type PaymentFinding struct {
	Node graph.NodeID
	// Shortfall = owed − reported (positive when underreporting).
	Shortfall int64
	// Penalty is the ε-above charge levied on any misreport.
	Penalty int64
}

// AuditPayments compares reported DATA4 lists against the obligations
// implied by the certified pricing tables and the observed traffic.
// Any discrepancy (in either direction) draws a penalty epsilon above
// the attempted deviation (§4.2: "a well-defined monetary unit that is
// epsilon-above the attempted deviation").
func (b *Bank) AuditPayments(obligations, reported map[graph.NodeID]fpss.PaymentList, epsilon int64) []PaymentFinding {
	var out []PaymentFinding
	for _, id := range b.Nodes() {
		owed := obligations[id]
		rep := reported[id]
		diff := diffMagnitude(owed, rep)
		if diff == 0 {
			continue
		}
		out = append(out, PaymentFinding{
			Node:      id,
			Shortfall: owed.Total() - rep.Total(),
			Penalty:   diff + epsilon,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// diffMagnitude sums |owed[k] − reported[k]| over all transit nodes.
func diffMagnitude(owed, rep fpss.PaymentList) int64 {
	var total int64
	seen := make(map[graph.NodeID]bool, len(owed)+len(rep))
	for k, v := range owed {
		d := v - rep[k]
		if d < 0 {
			d = -d
		}
		total += d
		seen[k] = true
	}
	for k, v := range rep {
		if !seen[k] {
			if v < 0 {
				total += -v
			} else {
				total += v
			}
		}
	}
	return total
}
