package bank

import (
	"fmt"
	"sort"
)

// Account identifies a ledger account: a stable participant identity
// that outlives any single epoch's dense node numbering (the churn
// engine's churn.Identity values flow in here).
type Account int64

// Ledger is the bank's cross-epoch carry-forward book. A static run
// settles everything inside one execution phase, but once nodes join
// and leave between construction phases the bank must carry each
// identity's realized balance across epoch boundaries and close it out
// when the identity departs — otherwise "leave before settling" would
// be a free exit. The churn engine credits every member's epoch
// utility after each epoch and settles departing identities at the
// boundary; a freshly joined identity always opens at zero (a rejoin
// under a new identity can launder reputation, not debt — the audit
// penalties were already levied in-epoch, which is exactly why the
// whitewashing deviation stays unprofitable under the extended
// specification).
type Ledger struct {
	balances map[Account]int64
	closed   map[Account]bool
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		balances: make(map[Account]int64),
		closed:   make(map[Account]bool),
	}
}

// Open starts an account at balance zero. Opening an existing open
// account is a no-op; reopening a settled account is an error — a
// departed identity must not resume its books (fresh identities get
// fresh accounts).
func (l *Ledger) Open(id Account) error {
	if l.closed[id] {
		return fmt.Errorf("bank: ledger account %d already settled", id)
	}
	if _, ok := l.balances[id]; !ok {
		l.balances[id] = 0
	}
	return nil
}

// Credit adds delta (possibly negative) to an open account.
func (l *Ledger) Credit(id Account, delta int64) error {
	if l.closed[id] {
		return fmt.Errorf("bank: credit to settled account %d", id)
	}
	if _, ok := l.balances[id]; !ok {
		return fmt.Errorf("bank: credit to unopened account %d", id)
	}
	l.balances[id] += delta
	return nil
}

// Balance returns an account's current (or final, once settled)
// balance.
func (l *Ledger) Balance(id Account) int64 { return l.balances[id] }

// Settle closes an account at an epoch boundary, returning its final
// balance. Settling twice is an error.
func (l *Ledger) Settle(id Account) (int64, error) {
	if l.closed[id] {
		return 0, fmt.Errorf("bank: account %d settled twice", id)
	}
	if _, ok := l.balances[id]; !ok {
		return 0, fmt.Errorf("bank: settle of unopened account %d", id)
	}
	l.closed[id] = true
	return l.balances[id], nil
}

// Settled reports whether the account has been closed out.
func (l *Ledger) Settled(id Account) bool { return l.closed[id] }

// Accounts lists every account ever opened, sorted.
func (l *Ledger) Accounts() []Account {
	out := make([]Account, 0, len(l.balances))
	for id := range l.balances {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Balances returns a copy of the full book, settled and open alike.
func (l *Ledger) Balances() map[Account]int64 {
	out := make(map[Account]int64, len(l.balances))
	for id, b := range l.balances {
		out[id] = b
	}
	return out
}
