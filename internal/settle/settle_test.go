package settle

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// testBatch is a small settlement workload with cross-shard flow under
// every K used in the tests: 6 accounts, mixed-sign local credits, and
// transfers touching most pairs. Expected() balances sum to the same
// total as Local — transfers only move value.
func testBatch() *Batch {
	return &Batch{
		Accounts: []Account{0, 1, 2, 3, 4, 5},
		Local: map[Account]int64{
			0: 40, 1: -10, 2: 25, 3: 0, 4: 60, 5: -5,
		},
		Transfers: []Transfer{
			{ID: 0, From: 0, To: 1, Amount: 15},
			{ID: 1, From: 4, To: 2, Amount: 20},
			{ID: 2, From: 2, To: 5, Amount: 5},
			{ID: 3, From: 4, To: 0, Amount: 10},
			{ID: 4, From: 0, To: 3, Amount: 5},
		},
	}
}

func honestOpts(k int, plan string) Options {
	return Options{Shards: k, Seed: 0x5e771e, Plan: plan}
}

// TestHonestSweepZeroFP is the acceptance sweep: K ∈ {2,4} ×
// {no-crash, coordinator, participant, crash-during-recovery} × loss
// ∈ {0, 0.25 (MaxTolerableLoss)}. Under every combination, every
// transfer commits, nothing is left in doubt after recovery, the
// final balances equal the all-commit expectation exactly, and no
// account is flagged.
func TestHonestSweepZeroFP(t *testing.T) {
	for _, k := range []int{2, 4} {
		for _, plan := range Plans {
			for _, rate := range []float64{0, 0.25} {
				name := fmt.Sprintf("k=%d/plan=%s/loss=%v", k, plan, rate)
				t.Run(name, func(t *testing.T) {
					opts := honestOpts(k, plan)
					if rate > 0 {
						opts.Loss = sim.LossModel{Rate: rate, Burst: 3, Seed: 77}
					}
					b := testBatch()
					res, err := RunFaithful(opts, b, nil)
					if err != nil {
						t.Fatal(err)
					}
					if res.Committed != len(b.Transfers) || res.Aborted != 0 {
						t.Fatalf("committed=%d aborted=%d, want all %d committed",
							res.Committed, res.Aborted, len(b.Transfers))
					}
					if res.InDoubt != 0 {
						t.Fatalf("%d transfers left in doubt after recovery", res.InDoubt)
					}
					if len(res.Flags) != 0 {
						t.Fatalf("honest principals flagged: %v", res.Flags)
					}
					for a, d := range res.Deltas {
						if d != 0 {
							t.Fatalf("account %d delta %d, want 0 (balances=%v)", a, d, res.Balances)
						}
					}
					if plan != PlanNone {
						if res.Counters.Crashes == 0 {
							t.Fatalf("plan %q injected no crash", plan)
						}
						if res.Counters.Restarts != res.Counters.Crashes {
							t.Fatalf("crashes=%d restarts=%d, want equal (every crash recovers)",
								res.Counters.Crashes, res.Counters.Restarts)
						}
					}
					if plan == PlanRecovery && res.Counters.Crashes != 2 {
						t.Fatalf("recovery plan crashed %d times, want 2", res.Counters.Crashes)
					}
				})
			}
		}
	}
}

// TestDeterministicResults pins replayability: the same options and
// batch produce byte-identical results, counters included.
func TestDeterministicResults(t *testing.T) {
	opts := honestOpts(4, PlanRecovery)
	opts.Loss = sim.LossModel{Rate: 0.2, Burst: 2, Seed: 9}
	a, err := RunFaithful(opts, testBatch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaithful(opts, testBatch(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic settlement:\n%+v\nvs\n%+v", a, b)
	}
}

// TestShardCrashNeverBlamesPrincipals pins the infrastructure
// attribution contract with a shard that never comes back: the
// affected transfers abort (presumed abort after the retry budget) or
// stay in doubt, InfraAborts accounts for them, and no principal is
// flagged — the settlement-layer zero-FP contract.
func TestShardCrashNeverBlamesPrincipals(t *testing.T) {
	opts := honestOpts(2, PlanNone)
	opts.Timeout = 8 // keep the timeout ladder short
	opts.FaultOverride = &sim.FaultModel{Schedule: []sim.Crash{
		{Addr: shardAddr(0), AfterDeliveries: 1, RestartDelay: -1},
	}}
	b := testBatch()
	res, err := RunFaithful(opts, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flags) != 0 {
		t.Fatalf("shard crash blamed principals: %v", res.Flags)
	}
	if res.Counters.Crashes != 1 || res.Counters.Restarts != 0 {
		t.Fatalf("counters = %+v, want one unrecovered crash", res.Counters)
	}
	if res.InfraAborts == 0 && res.InDoubt == 0 {
		t.Fatalf("dead shard produced neither infra aborts nor doubt: %+v", res)
	}
	if res.InfraAborts != res.Aborted {
		t.Fatalf("aborted=%d infraAborts=%d: every abort here is infrastructure",
			res.Aborted, res.InfraAborts)
	}
}

// TestDecisionLogView pins the WAL summary the recovery path and the
// post-run in-doubt audit both rely on.
func TestDecisionLogView(t *testing.T) {
	l := NewDecisionLog()
	l.Append(Entry{Kind: EntryLocal, Account: 7, Amount: 3})
	l.Append(Entry{Kind: EntryPrepared, Tx: 0})
	l.Append(Entry{Kind: EntryPrepared, Tx: 1})
	l.Append(Entry{Kind: EntryDecided, Tx: 0, Commit: true})
	l.Append(Entry{Kind: EntryApplied, Tx: 0, Commit: true})
	v := l.View()
	if !v.Prepared[0] || !v.Prepared[1] || v.Prepared[2] {
		t.Fatalf("prepared view wrong: %+v", v)
	}
	if !v.Decided[0] || v.Decided[1] {
		t.Fatalf("decided view wrong: %+v", v)
	}
	if !v.Applied[0] || v.Applied[1] {
		t.Fatalf("applied view wrong: %+v", v)
	}
	if !v.Commit[0] {
		t.Fatalf("commit value lost: %+v", v)
	}
	// Tx 1 is the in-doubt shape: prepared, no decision applied.
	if v.Prepared[1] && v.Applied[1] {
		t.Fatal("tx 1 should be in doubt")
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
}

// --- Deviation surface ---

func deviant(s Strategy) map[Account]*Strategy {
	return map[Account]*Strategy{4: &s}
}

// Account 4 has Local=60 and two outgoing transfers (20+10=30): the
// natural deviator for all three strategies.
const deviator Account = 4

func TestVanishProfitsInPlain(t *testing.T) {
	opts := honestOpts(2, PlanNone)
	b := testBatch()
	res := RunPlain(opts, b, deviant(Strategy{VanishAfterPrepare: true}))
	if res.Deltas[deviator] != 30 {
		t.Fatalf("plain exit scam delta %d, want +30 (bounced outgoing)", res.Deltas[deviator])
	}
	if len(res.Flags) != 0 {
		t.Fatalf("plain settlement has no checkers, got flags %v", res.Flags)
	}
	// The creditors ate the loss.
	if res.Deltas[2] != -20 || res.Deltas[0] != -10 {
		t.Fatalf("creditor deltas = %v, want 2:-20 0:-10", res.Deltas)
	}
}

func TestVanishCaughtInFaithful(t *testing.T) {
	opts := honestOpts(2, PlanNone)
	b := testBatch()
	res, err := RunFaithful(opts, b, deviant(Strategy{VanishAfterPrepare: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deltas[deviator] != 0 {
		t.Fatalf("faithful exit scam delta %d, want 0 (exit deferred until resolution)", res.Deltas[deviator])
	}
	if !res.Flagged(deviator) {
		t.Fatalf("exit scam not flagged: %v", res.Flags)
	}
	if res.Committed != len(b.Transfers) {
		t.Fatalf("committed=%d, want all %d (settlement completed despite the exit)",
			res.Committed, len(b.Transfers))
	}
	for a, d := range res.Deltas {
		if d != 0 {
			t.Fatalf("account %d delta %d, want 0", a, d)
		}
	}
}

func TestDoubleClaimProfitsInPlain(t *testing.T) {
	opts := honestOpts(2, PlanNone)
	b := testBatch()
	res := RunPlain(opts, b, deviant(Strategy{DoubleClaim: true}))
	if res.Deltas[deviator] != b.Local[deviator] {
		t.Fatalf("plain double claim delta %d, want +%d", res.Deltas[deviator], b.Local[deviator])
	}
}

func TestDoubleClaimCaughtInFaithful(t *testing.T) {
	for _, k := range []int{2, 4} {
		opts := honestOpts(k, PlanNone)
		b := testBatch()
		res, err := RunFaithful(opts, b, deviant(Strategy{DoubleClaim: true}))
		if err != nil {
			t.Fatal(err)
		}
		if res.Deltas[deviator] != 0 {
			t.Fatalf("k=%d: faithful double claim delta %d, want 0", k, res.Deltas[deviator])
		}
		if !res.Flagged(deviator) {
			t.Fatalf("k=%d: double claim not flagged: %v", k, res.Flags)
		}
		for _, f := range res.Flags {
			if f.Account != deviator {
				t.Fatalf("k=%d: non-deviator flagged: %v", k, res.Flags)
			}
		}
	}
}

func TestStallForcedThroughAndFlagged(t *testing.T) {
	opts := honestOpts(2, PlanNone)
	opts.Timeout = 4 // shrink the stall ladder
	b := testBatch()
	res, err := RunFaithful(opts, b, deviant(Strategy{StallPrepare: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != len(b.Transfers) {
		t.Fatalf("committed=%d, want all %d (stall must not force an abort)",
			res.Committed, len(b.Transfers))
	}
	if res.Deltas[deviator] != 0 {
		t.Fatalf("stall delta %d, want 0 (force-settled)", res.Deltas[deviator])
	}
	want := Flag{Account: deviator, Reason: ReasonStallCoSign}
	if len(res.Flags) != 1 || res.Flags[0] != want {
		t.Fatalf("flags = %v, want exactly %v", res.Flags, want)
	}
	// Plain baseline: stalling a phase that does not exist gains
	// nothing — the deviation only matters as a faithful-variant
	// griefing attempt.
	plain := RunPlain(opts, b, deviant(Strategy{StallPrepare: true}))
	if plain.Deltas[deviator] != 0 {
		t.Fatalf("plain stall delta %d, want 0", plain.Deltas[deviator])
	}
}

// TestStallFlagRetractedUnderLoss pins the attribution rule for the
// one inferred flag: when the run saw permanent message loss, a
// co-sign silence is not attributable to the principal, so the stall
// flag is retracted (while the settlement still completes — forced
// through without blame). Direct-evidence flags are unaffected.
func TestStallFlagRetractedUnderLoss(t *testing.T) {
	opts := honestOpts(2, PlanNone)
	opts.Timeout = 4
	// A certain-loss single-attempt link model guarantees Lost > 0 on
	// the co-sign path while self-send timers keep ticking.
	opts.Loss = sim.LossModel{Rate: 1, Seed: 3, Attempts: 1}
	b := testBatch()
	res, err := RunFaithful(opts, b, deviant(Strategy{StallPrepare: true}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Lost == 0 {
		t.Fatal("test setup: expected permanent loss")
	}
	for _, f := range res.Flags {
		if f.Reason == ReasonStallCoSign {
			t.Fatalf("stall flag survived a lossy run: %v", res.Flags)
		}
	}
	// Under total loss nothing can 2PC: every abort is infrastructure.
	if res.Aborted != res.InfraAborts {
		t.Fatalf("aborted=%d infraAborts=%d under total loss", res.Aborted, res.InfraAborts)
	}
}

// TestFaultModelPlans sanity-checks the plan expansion: seeded,
// positional, restart delays inside the retry horizon.
func TestFaultModelPlans(t *testing.T) {
	opts := honestOpts(4, PlanNone)
	if m := opts.FaultModel(); m.Enabled() {
		t.Fatalf("PlanNone expanded to %+v", m)
	}
	horizon := opts.timeout()
	var budget int64
	for i := 1; i <= opts.attempts(); i++ {
		budget += int64(i)
	}
	horizon *= budget
	for _, plan := range []string{PlanCoordinator, PlanParticipant, PlanRecovery} {
		opts.Plan = plan
		m := opts.FaultModel()
		if !m.Enabled() {
			t.Fatalf("plan %q expanded to nothing", plan)
		}
		for _, c := range m.Schedule {
			if c.RestartDelay < 0 || c.RestartDelay >= horizon {
				t.Fatalf("plan %q restart delay %d outside retry horizon %d", plan, c.RestartDelay, horizon)
			}
		}
		m2 := opts.FaultModel()
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("plan %q not deterministic", plan)
		}
	}
	if !ValidPlan(PlanRecovery) || ValidPlan("bogus") {
		t.Fatal("ValidPlan misclassifies")
	}
}

// TestHomeRoutingCoversShards checks the routing hash spreads accounts
// and is seed-sensitive.
func TestHomeRoutingCoversShards(t *testing.T) {
	opts := Options{Shards: 4, Seed: 1}
	seen := make(map[ShardID]bool)
	for a := Account(0); a < 64; a++ {
		seen[opts.Home(a)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("64 accounts hit only %d/4 shards", len(seen))
	}
	opts2 := opts
	opts2.Seed = 2
	moved := 0
	for a := Account(0); a < 64; a++ {
		if opts.Home(a) != opts2.Home(a) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("re-seeding moved no account homes")
	}
}
