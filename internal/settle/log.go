package settle

// DecisionLog is a shard's (or the coordinator's) write-ahead log: the
// durable record that survives a crash. The sim's fault model does not
// wipe a handler's Go memory — durability is a discipline, not a
// mechanism — so the protocol code enforces it: every state transition
// appends here *before* taking effect, volatile caches are rebuilt
// only by Replay, and a Recover hook must behave as if the log were
// the only state it kept. The recovery tests pin exactly that: a shard
// restarted mid-protocol resolves every in-doubt transaction from its
// log plus the coordinator's decision record alone.
type DecisionLog struct {
	entries []Entry
}

// EntryKind enumerates WAL records.
type EntryKind uint8

const (
	// EntryLocal records an account's staged local credit (applied at
	// registration, before the 2PC).
	EntryLocal EntryKind = iota
	// EntryPrepared records a participant's yes-vote on a transfer:
	// from here until a decision lands the transfer is in doubt.
	EntryPrepared
	// EntryDecided records the coordinator's commit/abort decision.
	EntryDecided
	// EntryApplied records that a participant applied the decision to
	// its ledger (the transfer is resolved on this shard).
	EntryApplied
)

// Entry is one WAL record. Tx is a Batch transfer index for the 2PC
// kinds; Account/Amount are set for EntryLocal.
type Entry struct {
	Kind    EntryKind
	Tx      int
	Commit  bool // EntryDecided / EntryApplied: the decision applied
	Account Account
	Amount  int64
}

// NewDecisionLog returns an empty log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// Append writes one record.
func (l *DecisionLog) Append(e Entry) { l.entries = append(l.entries, e) }

// Len returns the record count.
func (l *DecisionLog) Len() int { return len(l.entries) }

// Replay calls fn over every record in append order — the recovery
// path's only input.
func (l *DecisionLog) Replay(fn func(Entry)) {
	for _, e := range l.entries {
		fn(e)
	}
}

// LogView summarizes a replayed log: which transfers are prepared,
// decided, applied. It is what both the recovery path and the post-run
// in-doubt audit compute.
type LogView struct {
	Prepared map[int]bool
	Decided  map[int]bool
	Applied  map[int]bool
	Commit   map[int]bool // decision value for Decided/Applied entries
}

// View replays the log into a summary.
func (l *DecisionLog) View() LogView {
	v := LogView{
		Prepared: make(map[int]bool),
		Decided:  make(map[int]bool),
		Applied:  make(map[int]bool),
		Commit:   make(map[int]bool),
	}
	l.Replay(func(e Entry) {
		switch e.Kind {
		case EntryPrepared:
			v.Prepared[e.Tx] = true
		case EntryDecided:
			v.Decided[e.Tx] = true
			v.Commit[e.Tx] = e.Commit
		case EntryApplied:
			v.Applied[e.Tx] = true
			v.Commit[e.Tx] = e.Commit
		}
	})
	return v
}
