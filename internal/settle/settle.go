// Package settle shards the paper's trusted bank and makes its
// checkpoint settlement a crash-tolerant distributed protocol.
//
// The extended FPSS specification (§4.2) assumes one obedient bank: a
// singleton that credits every node's realized utility and audits its
// reports. That singleton is also the scaling ceiling — and, more
// interestingly for the faithfulness story, it is the one component
// with no failure model. This package splits the book into K shards
// (each wrapping a bank.Ledger), routes every account to a home shard
// by identity hash, and settles the cross-shard flows of an execution
// phase with a two-phase commit over the deterministic simulator:
// co-sign → prepare/vote → decide (write-ahead logged) → commit/ack,
// with per-phase timeouts, bounded linear-backoff retries (the
// LossModel retry-envelope idiom, one level up), presumed abort, and a
// deterministic recovery path — a crashed shard or coordinator loses
// its volatile state, replays its DecisionLog, and re-resolves
// in-doubt transactions.
//
// Two engines produce the same Result shape:
//
//   - RunFaithful is the extended-specification settlement: the full
//     2PC over sim, composable with sim.LossModel (lossy links) and
//     sim.FaultModel (shard/coordinator crashes), with checker-side
//     attribution. Infrastructure failures are never blamed on a
//     principal: a settlement that aborts because a shard crashed
//     counts in InfraAborts and flags nobody (the same zero-FP
//     contract as faithful.MaxTolerableLoss), and stall inferences are
//     dropped whenever loss could explain the silence.
//   - RunPlain is settlement under the manipulable baseline mechanism:
//     one-phase bookkeeping with no co-signing, no verification and no
//     flags — the variant in which the shard-window attacks actually
//     pay.
//
// The deviation surface this buys (see rational.ShardCatalogue): an
// exit scam inside the 2PC window (spend after prepare, leave before
// commit), double-credit claims to two home shards, and stalling the
// prepare phase to force aborts. Each is profitable against RunPlain
// and caught — direct flag, ε-penalized, attack neutralized — by
// RunFaithful.
package settle

import (
	"fmt"
	"sort"

	"repro/internal/bank"
	"repro/internal/sim"
)

// Account aliases the ledger's account identity.
type Account = bank.Account

// ShardID numbers a shard in [0, Shards).
type ShardID int

// Crash plans selectable per scenario (scenario.Spec.Shards.Crash,
// faithcheck -crash). Each expands to a seed-positional
// sim.FaultModel schedule whose restart delays sit well inside the
// coordinator's retry horizon, so every transaction still commits —
// the sweeps assert zero residual deltas under every plan.
const (
	PlanNone        = ""
	PlanCoordinator = "coordinator" // crash-restart the coordinator mid-protocol
	PlanParticipant = "participant" // crash-restart one shard mid-protocol
	PlanRecovery    = "recovery"    // crash the same shard again during its recovery
)

// Plans lists the selectable crash plans, PlanNone first.
var Plans = []string{PlanNone, PlanCoordinator, PlanParticipant, PlanRecovery}

// ValidPlan reports whether name is a known crash plan.
func ValidPlan(name string) bool {
	for _, p := range Plans {
		if name == p {
			return true
		}
	}
	return false
}

// Options configures a sharded settlement.
type Options struct {
	// Shards is the shard count K; 0 disables the axis entirely.
	Shards int
	// Seed drives home-shard routing and the crash plan's positions.
	Seed uint64
	// Plan names the crash-fault plan (PlanNone, PlanCoordinator,
	// PlanParticipant, PlanRecovery).
	Plan string
	// Timeout is the coordinator's retransmission quantum in ticks
	// (default 64). Phase timers are self-sends spaced this far apart.
	Timeout int64
	// Attempts bounds per-phase retransmissions (default 8), with
	// linear backoff between them.
	Attempts int
	// MaxSteps bounds the settlement run (default 1<<20 deliveries).
	MaxSteps int64
	// Epsilon is the penalty unit levied on a flagged account by the
	// faithful engine's consumers (default 1).
	Epsilon int64
	// Loss optionally composes lossy links under the 2PC.
	Loss sim.LossModel
	// FaultOverride, when non-nil, replaces the Plan-derived schedule —
	// the hook unit tests use to express schedules no plan generates
	// (e.g. a shard that never restarts).
	FaultOverride *sim.FaultModel
}

// Enabled reports whether the shard axis is active.
func (o Options) Enabled() bool { return o.Shards > 0 }

func (o Options) timeout() int64 {
	if o.Timeout <= 0 {
		return 64
	}
	return o.Timeout
}

func (o Options) attempts() int {
	if o.Attempts <= 0 {
		return 8
	}
	return o.Attempts
}

func (o Options) maxSteps() int64 {
	if o.MaxSteps <= 0 {
		return 1 << 20
	}
	return o.MaxSteps
}

func (o Options) epsilon() int64 {
	if o.Epsilon <= 0 {
		return 1
	}
	return o.Epsilon
}

// Penalty is the ε fine a consumer of the faithful engine levies per
// settlement flag (Epsilon with its default applied). Exported so the
// rational layer and the settlement engines agree on one number.
func (o Options) Penalty() int64 { return o.epsilon() }

// faultSeedSalt decorrelates the crash plan's positions from the
// routing seed (which also feeds scenario topology draws).
const faultSeedSalt = 0x73686172642121 // "shard!!"

// FaultModel expands the named crash plan into a positional schedule
// with no workload knowledge (the shard victim is drawn over all
// shards). RunFaithful uses FaultModelFor, which narrows the draw to
// shards that actually participate in the batch — a crash plan that
// picks an idle shard would never fire, because crashes are armed by
// delivery counts.
func (o Options) FaultModel() sim.FaultModel { return o.FaultModelFor(nil) }

// FaultModelFor expands the named crash plan against a batch.
// Positions are small (the crash lands inside the 2PC window of even
// a one-transfer batch) and restart delays are seed-drawn inside the
// coordinator's retry horizon (sum of Attempts backoffs × Timeout):
// under every plan, every transaction still commits.
func (o Options) FaultModelFor(b *Batch) sim.FaultModel {
	if o.FaultOverride != nil {
		return *o.FaultOverride
	}
	if o.Plan == PlanNone || !o.Enabled() {
		return sim.FaultModel{}
	}
	r := sim.Mix64(o.Seed ^ faultSeedSalt)
	// Restart within [T, 3T): far less than the ~Attempts²/2 × T retry
	// horizon, so recovery always completes.
	delay := o.timeout() + int64(sim.Mix64(r)%uint64(2*o.timeout()))
	switch o.Plan {
	case PlanCoordinator:
		// The coordinator sees co-signs, votes, acks and its own ticks:
		// a small positional count lands mid-protocol for any workload.
		return sim.FaultModel{Schedule: []sim.Crash{
			{Addr: coordAddr, AfterDeliveries: int64(2 + r%5), RestartDelay: delay},
		}}
	case PlanParticipant:
		victim := o.victimShard(b, sim.Mix64(r^1))
		return sim.FaultModel{Schedule: []sim.Crash{
			{Addr: shardAddr(victim), AfterDeliveries: int64(1 + r%2), RestartDelay: delay},
		}}
	case PlanRecovery:
		victim := o.victimShard(b, sim.Mix64(r^2))
		return sim.FaultModel{Schedule: []sim.Crash{
			{Addr: shardAddr(victim), AfterDeliveries: 1, RestartDelay: delay},
			// The second entry arms on the first delivery after the
			// restart: the shard crashes again mid-recovery.
			{Addr: shardAddr(victim), AfterDeliveries: 1, RestartDelay: delay},
		}}
	default:
		panic(fmt.Sprintf("settle: unknown crash plan %q", o.Plan))
	}
}

// victimShard draws the crash victim: uniformly over shards touched by
// the batch's transfers (every participant sees at least a prepare and
// a decision, so small positional counts always fire), or over all
// shards when no batch is given.
func (o Options) victimShard(b *Batch, r uint64) ShardID {
	if b == nil || len(b.Transfers) == 0 {
		return ShardID(r % uint64(o.Shards))
	}
	seen := make(map[ShardID]bool)
	var touched []ShardID
	add := func(s ShardID) {
		if !seen[s] {
			seen[s] = true
			touched = append(touched, s)
		}
	}
	for _, t := range b.Transfers {
		add(o.Home(t.From))
		add(o.Home(t.To))
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	return touched[r%uint64(len(touched))]
}

// Home routes an account to its home shard by identity hash — the
// sharding function is public and seed-deterministic, so every shard
// (and every checker) can verify a claimed home.
func (o Options) Home(a Account) ShardID {
	return ShardID(sim.Mix64(uint64(a)^o.Seed) % uint64(o.Shards))
}

// Transfer is one cross-account flow inside a settlement batch:
// Amount moves from From's home shard to To's home shard.
type Transfer struct {
	ID     int
	From   Account
	To     Account
	Amount int64
}

// Batch is one execution phase's settlement workload: each account's
// local credit (routed to its home shard before the 2PC) plus the
// transfer list. Built from an fpss execution so that, when every
// transfer commits, each account's final balance equals its realized
// utility: Local = util + out − in.
type Batch struct {
	Accounts  []Account
	Local     map[Account]int64
	Transfers []Transfer
}

// Expected returns the all-commit final balances — the settlement's
// correctness target.
func (b *Batch) Expected() map[Account]int64 {
	out := make(map[Account]int64, len(b.Accounts))
	for _, a := range b.Accounts {
		out[a] = b.Local[a]
	}
	for _, t := range b.Transfers {
		out[t.From] -= t.Amount
		out[t.To] += t.Amount
	}
	return out
}

// Strategy is a deviant account's behavior inside the settlement
// window. The zero value is honest.
type Strategy struct {
	// VanishAfterPrepare is the 2PC-window exit scam: co-sign the
	// debit, then request account closure before commit, hoping the
	// debit bounces while already-received credits stay.
	VanishAfterPrepare bool
	// DoubleClaim presents the account's local credit to two shards —
	// its true home and a second claimed home.
	DoubleClaim bool
	// StallPrepare withholds every co-sign, trying to time the
	// coordinator out into a profitable abort.
	StallPrepare bool
}

// Deviant reports whether any deviation is armed.
func (s *Strategy) Deviant() bool {
	return s != nil && (s.VanishAfterPrepare || s.DoubleClaim || s.StallPrepare)
}

// Flag is a settlement-layer observation against a principal account.
// Flags are direct evidence (an explicit wrong message, or an
// unambiguous timeout with loss ruled out); infrastructure failures
// never produce one.
type Flag struct {
	Account Account
	Reason  string
}

// Result is the outcome of one settlement run, identical in shape for
// both engines.
type Result struct {
	// Committed/Aborted/InDoubt partition the batch's transfers.
	// InDoubt counts transfers left prepared-but-unresolved on some
	// shard at the end of the run — zero whenever every crashed
	// component restarted.
	Committed int
	Aborted   int
	InDoubt   int
	// InfraAborts counts aborts attributed to infrastructure (shard
	// crash or exhausted retries with faults present); they flag
	// nobody.
	InfraAborts int
	// Balances is the final per-account book merged across shards;
	// Deltas is Balances − Batch.Expected() (all zero when every
	// transfer committed).
	Balances map[Account]int64
	Deltas   map[Account]int64
	// Flags are the settlement checkers' observations, sorted.
	Flags []Flag
	// Counters is the settlement network's traffic (faithful engine
	// only; zero for RunPlain, which simulates nothing).
	Counters sim.Counters
}

// Flagged reports whether a was flagged.
func (r *Result) Flagged(a Account) bool {
	for _, f := range r.Flags {
		if f.Account == a {
			return true
		}
	}
	return false
}

func (r *Result) sortFlags() {
	sort.Slice(r.Flags, func(i, j int) bool {
		if r.Flags[i].Account != r.Flags[j].Account {
			return r.Flags[i].Account < r.Flags[j].Account
		}
		return r.Flags[i].Reason < r.Flags[j].Reason
	})
}

// ShardedBank is the K-way split of the trusted bank's book: one
// bank.Ledger per shard, accounts routed by Options.Home. It is the
// durable substrate both settlement engines write into.
type ShardedBank struct {
	opts   Options
	shards []*Shard
}

// Shard is one partition: a ledger for its home accounts plus the
// write-ahead decision log its 2PC participant recovers from.
type Shard struct {
	ID     ShardID
	Ledger *bank.Ledger
	WAL    *DecisionLog
}

// NewShardedBank builds K empty shards.
func NewShardedBank(opts Options) *ShardedBank {
	sb := &ShardedBank{opts: opts, shards: make([]*Shard, opts.Shards)}
	for i := range sb.shards {
		sb.shards[i] = &Shard{ID: ShardID(i), Ledger: bank.NewLedger(), WAL: NewDecisionLog()}
	}
	return sb
}

// Home routes an account to its home shard.
func (sb *ShardedBank) Home(a Account) ShardID { return sb.opts.Home(a) }

// Shard returns shard i.
func (sb *ShardedBank) Shard(i ShardID) *Shard { return sb.shards[i] }

// Open opens an account on its home shard.
func (sb *ShardedBank) Open(a Account) error {
	return sb.shards[sb.Home(a)].Ledger.Open(a)
}

// Credit credits an account on its home shard.
func (sb *ShardedBank) Credit(a Account, delta int64) error {
	return sb.shards[sb.Home(a)].Ledger.Credit(a, delta)
}

// Balance reads an account's home-shard balance.
func (sb *ShardedBank) Balance(a Account) int64 {
	return sb.shards[sb.Home(a)].Ledger.Balance(a)
}

// Balances merges every shard's book.
func (sb *ShardedBank) Balances() map[Account]int64 {
	out := make(map[Account]int64)
	for _, s := range sb.shards {
		for a, b := range s.Ledger.Balances() {
			out[a] = b
		}
	}
	return out
}

// stage opens every account and applies its local credit on its home
// shard, WAL-first. This is the bank routing each node's credit to its
// home shard — registration-time bookkeeping, not protocol traffic.
func (sb *ShardedBank) stage(b *Batch) error {
	for _, a := range b.Accounts {
		sh := sb.shards[sb.Home(a)]
		if err := sh.Ledger.Open(a); err != nil {
			return err
		}
		sh.WAL.Append(Entry{Kind: EntryLocal, Account: a, Amount: b.Local[a]})
		if err := sh.Ledger.Credit(a, b.Local[a]); err != nil {
			return err
		}
	}
	return nil
}
