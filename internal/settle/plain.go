package settle

// RunPlain settles the batch under the baseline (manipulable)
// mechanism: one-phase bookkeeping with no co-signing, no home-shard
// verification, no write-ahead window and no checkers. Every local
// credit is applied where it is claimed and every transfer clears
// unless a party has already closed its account — which is exactly
// the surface the shard deviations exploit:
//
//   - VanishAfterPrepare: the account closes before its debits clear,
//     so every outgoing transfer bounces while incoming value (already
//     applied) stays — the exit scam pays its outgoing total.
//   - DoubleClaim: the second shard has no way to check the claimed
//     home, so a positive local credit is applied twice.
//   - StallPrepare: a no-op — there is no prepare phase to stall.
//
// No simulation runs (the baseline bank is a synchronous singleton
// call), so Counters stays zero and there is never anything in doubt.
func RunPlain(opts Options, batch *Batch, strategies map[Account]*Strategy) *Result {
	res := &Result{
		Balances: make(map[Account]int64, len(batch.Accounts)),
		Deltas:   make(map[Account]int64, len(batch.Accounts)),
	}
	strat := func(a Account) *Strategy {
		if s, ok := strategies[a]; ok && s != nil {
			return s
		}
		return &Strategy{}
	}
	for _, a := range batch.Accounts {
		res.Balances[a] = batch.Local[a]
		if strat(a).DoubleClaim && batch.Local[a] > 0 {
			// The wrong-home shard applies the duplicate claim too.
			res.Balances[a] += batch.Local[a]
		}
	}
	for _, t := range batch.Transfers {
		if strat(t.From).VanishAfterPrepare {
			// The debtor's account is already closed: the debit
			// bounces and the creditor eats the loss.
			res.Aborted++
			continue
		}
		res.Balances[t.From] -= t.Amount
		res.Balances[t.To] += t.Amount
		res.Committed++
	}
	expected := batch.Expected()
	for _, a := range batch.Accounts {
		res.Deltas[a] = res.Balances[a] - expected[a]
	}
	return res
}
