package settle

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Settlement network addresses. The coordinator and shards live in the
// sparse range (like the fpss bank at 1<<20); account agents sit at
// their dense identity addresses.
const coordAddr sim.Addr = 1 << 19

func shardAddr(id ShardID) sim.Addr { return coordAddr + 1 + sim.Addr(id) }
func agentAddr(a Account) sim.Addr  { return sim.Addr(a) }

// Flag reasons. Stall is the one *inferred* flag (a timeout, not a
// message), so it is the one the engine retracts when loss could
// explain the silence — the settlement-layer MaxTolerableLoss
// contract.
const (
	ReasonStallCoSign = "withheld co-sign through full retry budget"
	ReasonExitWindow  = "requested account exit inside the 2PC window"
	ReasonWrongHome   = "local-credit claim at wrong home shard"
	ReasonDoubleClaim = "duplicate local-credit claim"
)

// Protocol payloads.
type (
	coSignReq struct{ Tx int }
	coSignMsg struct {
		Tx      int
		Account Account
	}
	exitReq  struct{ Account Account }
	claimReq struct {
		Account Account
		Amount  int64
	}
	prepareMsg struct {
		Tx       int
		From, To Account
		Amount   int64
	}
	voteMsg struct {
		Tx    int
		Shard ShardID
		OK    bool
	}
	decisionMsg struct {
		Tx     int
		Commit bool
	}
	ackMsg struct {
		Tx    int
		Shard ShardID
	}
	resolveMsg struct {
		Tx    int
		Shard ShardID
	}
	tickMsg struct{ Seq int64 }
)

// txPhase is a transaction's coordinator-side state.
type txPhase uint8

const (
	phCoSign  txPhase = iota // waiting for the debtor's co-sign
	phPrepare                // waiting for participant votes
	phDecided                // decision logged, waiting for acks
	phDone                   // fully acked (or given up on a dead shard)
)

// txState is the coordinator's volatile per-transfer bookkeeping; it
// is rebuilt from the decision WAL on recovery.
type txState struct {
	phase       txPhase
	wait        int64 // ticks until the next retransmission
	attempt     int
	cosignEpoch int64 // coordinator restart count when co-sign began
	forced      bool  // settled without a co-sign (stall / exit)
	commit      bool  // decision value once phase == phDecided
	voted       map[ShardID]bool
	acked       map[ShardID]bool
	gaveUp      bool // decision unackable (participant never restarted)
}

// coordinator drives every transfer of the batch through the 2PC. Its
// durable state is the decision WAL plus the flag/exit record (the
// bank's accusations are written ahead too); everything else is
// volatile and reconstructed in Recover.
type coordinator struct {
	opts  Options
	batch *Batch
	sb    *ShardedBank
	wal   *DecisionLog

	// Durable.
	flags       []Flag
	exits       map[Account]bool
	infraAborts int

	// Volatile.
	tx       []txState
	restarts int64
	tickSeq  int64
	ticking  bool
}

// parts returns a transfer's participant shards (1 or 2), ascending.
func (c *coordinator) parts(t Transfer) []ShardID {
	a, b := c.sb.Home(t.From), c.sb.Home(t.To)
	if a == b {
		return []ShardID{a}
	}
	if a > b {
		a, b = b, a
	}
	return []ShardID{a, b}
}

func (c *coordinator) Init(ctx sim.Context) {
	c.tx = make([]txState, len(c.batch.Transfers))
	if c.exits == nil {
		c.exits = make(map[Account]bool)
	}
	for i := range c.tx {
		c.startCoSign(ctx, i)
	}
	c.armTick(ctx)
}

// Recover rebuilds the volatile transaction states from the decision
// WAL: decided transfers go back to ack-chasing, undecided ones
// restart from co-sign (prepare is idempotent on the shards, and the
// decision log is what makes the restart safe). Attempt counters reset
// — a fresh retry budget after every restart is what lets recovery
// outlast any bounded downtime.
func (c *coordinator) Recover(ctx sim.Context) {
	c.restarts++
	view := c.wal.View()
	c.tx = make([]txState, len(c.batch.Transfers))
	for i := range c.tx {
		if view.Decided[i] {
			c.reissueDecision(ctx, i, view.Commit[i])
		} else {
			c.startCoSign(ctx, i)
		}
	}
	c.tickSeq++ // orphan any tick chain from before the crash
	c.ticking = false
	c.armTick(ctx)
}

func (c *coordinator) armTick(ctx sim.Context) {
	if c.ticking {
		return
	}
	c.ticking = true
	ctx.Send(coordAddr, tickMsg{Seq: c.tickSeq})
}

func (c *coordinator) startCoSign(ctx sim.Context, i int) {
	t := &c.tx[i]
	t.phase = phCoSign
	t.attempt = 1
	t.wait = 1
	t.cosignEpoch = c.restarts
	from := c.batch.Transfers[i].From
	if c.exits[from] {
		// The debtor already asked to leave mid-window: skip straight
		// to prepare — the exit was flagged and deferred, not obeyed.
		c.forceSettle(ctx, i, false)
		return
	}
	ctx.Send(agentAddr(from), coSignReq{Tx: i})
}

// forceSettle advances a co-sign-less transfer into prepare. stall
// marks the provisional stall flag (retracted by the engine if loss
// could explain the silence; never raised across a coordinator
// restart, whose own downtime explains it instead).
func (c *coordinator) forceSettle(ctx sim.Context, i int, stall bool) {
	t := &c.tx[i]
	from := c.batch.Transfers[i].From
	if stall && t.cosignEpoch == c.restarts && !c.exits[from] {
		c.flag(from, ReasonStallCoSign)
	}
	t.forced = true
	c.startPrepare(ctx, i)
}

func (c *coordinator) startPrepare(ctx sim.Context, i int) {
	t := &c.tx[i]
	t.phase = phPrepare
	t.attempt = 1
	t.wait = 1
	t.voted = make(map[ShardID]bool)
	c.sendPrepare(ctx, i)
}

func (c *coordinator) sendPrepare(ctx sim.Context, i int) {
	tr := c.batch.Transfers[i]
	for _, s := range c.parts(tr) {
		if !c.tx[i].voted[s] {
			ctx.Send(shardAddr(s), prepareMsg{Tx: i, From: tr.From, To: tr.To, Amount: tr.Amount})
		}
	}
}

// decide logs the outcome (write-ahead) and starts pushing it to the
// participants. infra marks an abort caused by infrastructure — it
// counts in InfraAborts and flags nobody.
func (c *coordinator) decide(ctx sim.Context, i int, commit, infra bool) {
	c.wal.Append(Entry{Kind: EntryDecided, Tx: i, Commit: commit})
	if infra {
		c.infraAborts++
	}
	c.reissueDecision(ctx, i, commit)
}

func (c *coordinator) reissueDecision(ctx sim.Context, i int, commit bool) {
	t := &c.tx[i]
	t.phase = phDecided
	t.attempt = 1
	t.wait = 1
	t.commit = commit
	t.acked = make(map[ShardID]bool)
	c.sendDecision(ctx, i, commit)
}

func (c *coordinator) sendDecision(ctx sim.Context, i int, commit bool) {
	for _, s := range c.parts(c.batch.Transfers[i]) {
		if !c.tx[i].acked[s] {
			ctx.Send(shardAddr(s), decisionMsg{Tx: i, Commit: commit})
		}
	}
}

func (c *coordinator) flag(a Account, reason string) {
	for _, f := range c.flags {
		if f.Account == a && f.Reason == reason {
			return
		}
	}
	c.flags = append(c.flags, Flag{Account: a, Reason: reason})
}

func (c *coordinator) allSettled() bool {
	for i := range c.tx {
		if c.tx[i].phase != phDone && !c.tx[i].gaveUp {
			return false
		}
	}
	return true
}

func (c *coordinator) Recv(ctx sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case coSignMsg:
		t := &c.tx[m.Tx]
		if t.phase != phCoSign {
			return // late duplicate
		}
		c.startPrepare(ctx, m.Tx)

	case exitReq:
		if !c.exits[m.Account] {
			c.exits[m.Account] = true
			// Deferred, not obeyed: the account's transfers settle
			// first, and the attempt itself is direct evidence —
			// honest members only leave at epoch boundaries.
			c.flag(m.Account, ReasonExitWindow)
		}
		// Any transfer still waiting on this debtor's co-sign settles
		// without it.
		for i := range c.tx {
			if c.tx[i].phase == phCoSign && c.batch.Transfers[i].From == m.Account {
				c.forceSettle(ctx, i, false)
			}
		}

	case voteMsg:
		t := &c.tx[m.Tx]
		if t.phase != phPrepare {
			return
		}
		if !m.OK {
			c.decide(ctx, m.Tx, false, false)
			return
		}
		t.voted[m.Shard] = true
		if len(t.voted) == len(c.parts(c.batch.Transfers[m.Tx])) {
			c.decide(ctx, m.Tx, true, false)
		}

	case ackMsg:
		t := &c.tx[m.Tx]
		if t.phase != phDecided {
			return
		}
		t.acked[m.Shard] = true
		if len(t.acked) == len(c.parts(c.batch.Transfers[m.Tx])) {
			t.phase = phDone
		}

	case resolveMsg:
		// A recovered shard asking about an in-doubt transfer: answer
		// from the decision record if there is one; otherwise the
		// normal retry loop is already re-driving the transfer.
		if view := c.wal.View(); view.Decided[m.Tx] {
			ctx.Send(shardAddr(m.Shard), decisionMsg{Tx: m.Tx, Commit: view.Commit[m.Tx]})
		}

	case tickMsg:
		if m.Seq != c.tickSeq {
			return // orphaned pre-crash chain
		}
		c.ticking = false
		for i := range c.tx {
			c.onTick(ctx, i)
		}
		if !c.allSettled() {
			c.armTick(ctx)
		}
	}
}

// onTick advances one transfer's retransmission clock: linear backoff
// (wait grows with the attempt number), bounded by Attempts per phase,
// with a phase-specific fallback when the budget runs out.
func (c *coordinator) onTick(ctx sim.Context, i int) {
	t := &c.tx[i]
	if t.phase == phDone || t.gaveUp {
		return
	}
	t.wait--
	if t.wait > 0 {
		return
	}
	t.attempt++
	if t.attempt > c.opts.attempts() {
		switch t.phase {
		case phCoSign:
			// The debtor never answered a full, uninterrupted retry
			// budget: settle without it (and flag, unless loss or our
			// own restart explains the silence).
			c.forceSettle(ctx, i, true)
		case phPrepare:
			// A participant is unreachable: presumed abort, attributed
			// to infrastructure — shards are obedient, only crashes or
			// loss leave votes missing.
			c.decide(ctx, i, false, true)
		case phDecided:
			// The decision is durable but some participant cannot ack
			// (it never restarted). Give up chasing; the post-run audit
			// reports the transfer in doubt on that shard.
			t.gaveUp = true
		}
		return
	}
	t.wait = int64(t.attempt) // linear backoff in tick quanta
	switch t.phase {
	case phCoSign:
		ctx.Send(agentAddr(c.batch.Transfers[i].From), coSignReq{Tx: i})
	case phPrepare:
		c.sendPrepare(ctx, i)
	case phDecided:
		c.sendDecision(ctx, i, t.commit)
	}
}

// shardNode is a shard's 2PC participant. Durable state: the shard's
// ledger, its WAL, and its flag record. Volatile: the prepared/applied
// caches, rebuilt from the WAL in Recover.
type shardNode struct {
	shard *Shard
	sb    *ShardedBank
	batch *Batch

	// Durable.
	flags []Flag

	// Volatile.
	prepared map[int]bool
	applied  map[int]bool
}

func (s *shardNode) Init(sim.Context) {
	s.prepared = make(map[int]bool)
	s.applied = make(map[int]bool)
}

// Recover replays the WAL into fresh volatile caches and asks the
// coordinator to re-resolve every in-doubt transfer (prepared, no
// decision applied). This is the deterministic recovery path the
// tentpole promises: log replay plus the coordinator's decision
// record, nothing else.
func (s *shardNode) Recover(ctx sim.Context) {
	s.prepared = make(map[int]bool)
	s.applied = make(map[int]bool)
	view := s.shard.WAL.View()
	for tx := range view.Prepared {
		s.prepared[tx] = true
	}
	for tx := range view.Applied {
		s.applied[tx] = true
	}
	inDoubt := make([]int, 0, len(s.prepared))
	for tx := range s.prepared {
		if !s.applied[tx] {
			inDoubt = append(inDoubt, tx)
		}
	}
	sort.Ints(inDoubt)
	for _, tx := range inDoubt {
		ctx.Send(coordAddr, resolveMsg{Tx: tx, Shard: s.shard.ID})
	}
}

func (s *shardNode) Recv(ctx sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case prepareMsg:
		if s.applied[m.Tx] {
			// Already resolved (a re-driving coordinator that lost its
			// volatile state): the ack is what it actually needs.
			ctx.Send(coordAddr, ackMsg{Tx: m.Tx, Shard: s.shard.ID})
			return
		}
		if !s.prepared[m.Tx] {
			s.shard.WAL.Append(Entry{Kind: EntryPrepared, Tx: m.Tx})
			s.prepared[m.Tx] = true
		}
		ctx.Send(coordAddr, voteMsg{Tx: m.Tx, Shard: s.shard.ID, OK: true})

	case decisionMsg:
		if !s.applied[m.Tx] {
			s.shard.WAL.Append(Entry{Kind: EntryApplied, Tx: m.Tx, Commit: m.Commit})
			s.applied[m.Tx] = true
			if m.Commit {
				tr := s.batch.Transfers[m.Tx]
				if s.sb.Home(tr.From) == s.shard.ID {
					s.mustCredit(tr.From, -tr.Amount)
				}
				if s.sb.Home(tr.To) == s.shard.ID {
					s.mustCredit(tr.To, tr.Amount)
				}
			}
		}
		ctx.Send(coordAddr, ackMsg{Tx: m.Tx, Shard: s.shard.ID})

	case claimReq:
		// Local credits are pushed by the bank at staging; any pull
		// request is a deviation, and the public routing function makes
		// the verdict checkable by anyone.
		if s.sb.Home(m.Account) != s.shard.ID {
			s.flag(m.Account, ReasonWrongHome)
		} else {
			s.flag(m.Account, ReasonDoubleClaim)
		}
	}
}

func (s *shardNode) mustCredit(a Account, delta int64) {
	if err := s.shard.Ledger.Credit(a, delta); err != nil {
		// Accounts are opened at staging; a credit failure here is a
		// bug in the engine, not a protocol outcome.
		panic(fmt.Sprintf("settle: shard %d: %v", s.shard.ID, err))
	}
}

func (s *shardNode) flag(a Account, reason string) {
	for _, f := range s.flags {
		if f.Account == a && f.Reason == reason {
			return
		}
	}
	s.flags = append(s.flags, Flag{Account: a, Reason: reason})
}

// agentNode is one account's principal inside the settlement window.
// Honest behavior is a single rule: co-sign every debit you are asked
// about. The strategies are the shard-axis deviation surface.
type agentNode struct {
	acct   Account
	local  int64
	opts   Options
	strat  Strategy
	exited bool
}

func (a *agentNode) Init(ctx sim.Context) {
	if a.strat.DoubleClaim {
		// Claim the local credit at the true home *and* at a second
		// shard — across a churn boundary the second one is "my old
		// home"; here it is simply the next shard over.
		home := a.opts.Home(a.acct)
		other := ShardID((int(home) + 1) % a.opts.Shards)
		ctx.Send(shardAddr(home), claimReq{Account: a.acct, Amount: a.local})
		ctx.Send(shardAddr(other), claimReq{Account: a.acct, Amount: a.local})
	}
}

func (a *agentNode) Recv(ctx sim.Context, msg sim.Message) {
	m, ok := msg.Payload.(coSignReq)
	if !ok {
		return
	}
	switch {
	case a.strat.StallPrepare:
		return // silence: try to time the coordinator out
	case a.strat.VanishAfterPrepare:
		if !a.exited {
			ctx.Send(coordAddr, coSignMsg{Tx: m.Tx, Account: a.acct})
			a.exited = true
		}
		// Keep asking to leave until the coordinator hears it — the
		// scam needs the exit on record before the commit lands.
		ctx.Send(coordAddr, exitReq{Account: a.acct})
	default:
		ctx.Send(coordAddr, coSignMsg{Tx: m.Tx, Account: a.acct})
	}
}

// RunFaithful settles the batch through the crash-tolerant 2PC over a
// fresh pooled simulator network, composing the options' loss model
// and crash plan. strategies maps deviant accounts to their behavior
// (nil entries and missing accounts are honest).
func RunFaithful(opts Options, batch *Batch, strategies map[Account]*Strategy) (*Result, error) {
	if !opts.Enabled() {
		return nil, fmt.Errorf("settle: shard axis disabled (Shards=%d)", opts.Shards)
	}
	sb := NewShardedBank(opts)
	if err := sb.stage(batch); err != nil {
		return nil, err
	}
	net := sim.AcquireNetwork(
		// Self-sends are the retransmission clock: one Timeout quantum
		// per tick. Everything else is unit delay.
		sim.WithDelay(func(from, to sim.Addr) int64 {
			if from == to {
				return opts.timeout()
			}
			return 1
		}),
		sim.WithLoss(opts.Loss),
		sim.WithFaults(opts.FaultModelFor(batch)),
	)
	defer net.Release()

	coord := &coordinator{opts: opts, batch: batch, sb: sb, wal: NewDecisionLog()}
	if err := net.Attach(coordAddr, coord); err != nil {
		return nil, err
	}
	shardNodes := make([]*shardNode, opts.Shards)
	for i := range shardNodes {
		shardNodes[i] = &shardNode{shard: sb.Shard(ShardID(i)), sb: sb, batch: batch}
		if err := net.Attach(shardAddr(ShardID(i)), shardNodes[i]); err != nil {
			return nil, err
		}
	}
	for _, a := range batch.Accounts {
		var strat Strategy
		if s := strategies[a]; s != nil {
			strat = *s
		}
		ag := &agentNode{acct: a, local: batch.Local[a], opts: opts, strat: strat}
		if err := net.Attach(agentAddr(a), ag); err != nil {
			return nil, err
		}
	}

	counters, err := net.Run(opts.maxSteps())
	if err != nil {
		return nil, fmt.Errorf("settle: 2PC did not quiesce: %w", err)
	}

	res := &Result{
		InfraAborts: coord.infraAborts,
		Balances:    sb.Balances(),
		Counters:    counters,
	}
	view := coord.wal.View()
	unresolved := make(map[int]bool)
	for i := range batch.Transfers {
		if !view.Decided[i] {
			unresolved[i] = true
			continue
		}
		if view.Commit[i] {
			res.Committed++
		} else {
			res.Aborted++
		}
	}
	// Shard-side doubt: a transfer prepared on some shard without an
	// applied decision there, or decided but never applied by a
	// participant (it never restarted), is still in doubt.
	shardViews := make([]LogView, len(shardNodes))
	for i, sn := range shardNodes {
		shardViews[i] = sn.shard.WAL.View()
	}
	for _, sv := range shardViews {
		for tx := range sv.Prepared {
			if !sv.Applied[tx] {
				unresolved[tx] = true
			}
		}
	}
	for i := range batch.Transfers {
		if !view.Decided[i] {
			continue
		}
		for _, sid := range coord.parts(batch.Transfers[i]) {
			if !shardViews[sid].Applied[i] {
				unresolved[i] = true
			}
		}
	}
	res.InDoubt = len(unresolved)

	expected := batch.Expected()
	res.Deltas = make(map[Account]int64, len(batch.Accounts))
	for _, a := range batch.Accounts {
		res.Deltas[a] = res.Balances[a] - expected[a]
	}

	res.Flags = append(res.Flags, coord.flags...)
	for _, sn := range shardNodes {
		res.Flags = append(res.Flags, sn.flags...)
	}
	if counters.Lost > 0 {
		// Network attribution, the settlement-layer analogue of
		// faithful.MaxTolerableLoss: a permanently lost message could
		// explain any co-sign silence, so inferred stall flags are
		// retracted wholesale. Direct-evidence flags stand.
		kept := res.Flags[:0]
		for _, f := range res.Flags {
			if f.Reason != ReasonStallCoSign {
				kept = append(kept, f)
			}
		}
		res.Flags = kept
	}
	res.sortFlags()
	return res, nil
}
