package settle

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// benchBatch builds a seed-deterministic settlement workload: n
// accounts with mixed local credits and 2n cross-account transfers.
func benchBatch(n int) *Batch {
	b := &Batch{Local: make(map[Account]int64, n)}
	for i := 0; i < n; i++ {
		a := Account(i)
		b.Accounts = append(b.Accounts, a)
		b.Local[a] = int64(sim.Mix64(uint64(i)^0xb17e)%200) - 80
	}
	for i := 0; i < 2*n; i++ {
		r := sim.Mix64(uint64(i) ^ 0x7f10)
		from := Account(r % uint64(n))
		to := Account(sim.Mix64(r) % uint64(n))
		if from == to {
			to = Account((uint64(to) + 1) % uint64(n))
		}
		b.Transfers = append(b.Transfers, Transfer{
			ID: i, From: from, To: to, Amount: int64(1 + r%50),
		})
	}
	return b
}

// BenchmarkSettle is the sharded-settlement perf ladder: the 2PC
// engine across shard counts, crash plans and a lossy rung. Published
// as BENCH_settle.json and compared against the committed baseline in
// CI.
func BenchmarkSettle(b *testing.B) {
	type rung struct {
		name string
		opts Options
		n    int
	}
	var rungs []rung
	for _, k := range []int{2, 4, 8} {
		for _, plan := range []string{PlanNone, PlanParticipant, PlanCoordinator, PlanRecovery} {
			pn := plan
			if pn == PlanNone {
				pn = "none"
			}
			rungs = append(rungs, rung{
				name: fmt.Sprintf("k=%d/plan=%s/n=32", k, pn),
				opts: Options{Shards: k, Seed: 0xbe7c4, Plan: plan},
				n:    32,
			})
		}
	}
	rungs = append(rungs, rung{
		name: "k=4/plan=none/n=32/loss=0.1",
		opts: Options{
			Shards: 4, Seed: 0xbe7c4,
			Loss: sim.LossModel{Rate: 0.1, Burst: 3, Seed: 11},
		},
		n: 32,
	})
	for _, r := range rungs {
		batch := benchBatch(r.n)
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunFaithful(r.opts, batch, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.InDoubt != 0 || len(res.Flags) != 0 {
					b.Fatalf("honest bench run: inDoubt=%d flags=%v", res.InDoubt, res.Flags)
				}
			}
		})
	}
}

// BenchmarkSettlePlain is the baseline bookkeeping cost — the
// singleton-bank settlement the shards replace.
func BenchmarkSettlePlain(b *testing.B) {
	batch := benchBatch(32)
	opts := Options{Shards: 4, Seed: 0xbe7c4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunPlain(opts, batch, nil)
	}
}
