package mech

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// secondPriceAuction models a single-item auction as a VCG instance:
// outcome o = index of winner, value = own type if winner else 0.
func secondPriceAuction(n int) *VCG {
	return &VCG{
		NumOutcomes: n,
		Value: func(i, o int, t Type) int64 {
			if i == o {
				return t
			}
			return 0
		},
	}
}

func TestVCGSecondPriceWinner(t *testing.T) {
	v := secondPriceAuction(3)
	o, err := v.Outcome(Profile{3, 7, 5})
	if err != nil {
		t.Fatal(err)
	}
	if o != 1 {
		t.Errorf("winner = %d, want 1 (highest bid)", o)
	}
	tr, err := v.Transfers(Profile{3, 7, 5}, o)
	if err != nil {
		t.Fatal(err)
	}
	// Winner pays the second price (5): transfer = 0 - 5 = -5.
	if tr[1] != -5 {
		t.Errorf("winner transfer = %d, want -5", tr[1])
	}
	if tr[0] != 0 || tr[2] != 0 {
		t.Errorf("loser transfers = %v, want 0", tr)
	}
}

func TestVCGTieBreakLowestIndex(t *testing.T) {
	v := secondPriceAuction(3)
	o, err := v.Outcome(Profile{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if o != 0 {
		t.Errorf("tie winner = %d, want 0", o)
	}
}

func TestVCGIsStrategyproof(t *testing.T) {
	v := secondPriceAuction(3)
	viol, err := CheckStrategyproof[int](v, v.TruthfulValue(), 3, []Type{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Errorf("VCG has strategyproofness violations: %v", viol[0])
	}
}

// firstPrice is the classic manipulable counterexample: winner pays
// own bid.
type firstPrice struct{ n int }

func (f *firstPrice) Outcome(reports Profile) (int, error) {
	best := 0
	for i, r := range reports {
		if r > reports[best] {
			best = i
		}
	}
	return best, nil
}

func (f *firstPrice) Transfers(reports Profile, o int) ([]int64, error) {
	out := make([]int64, len(reports))
	out[o] = -reports[o]
	return out, nil
}

func TestFirstPriceIsNotStrategyproof(t *testing.T) {
	f := &firstPrice{n: 2}
	u := func(i, o int, trueType Type) int64 {
		if i == o {
			return trueType
		}
		return 0
	}
	viol, err := CheckStrategyproof[int](f, u, 2, []Type{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Fatal("first-price auction should have violations")
	}
	// A sample violation: bidding below true value while still winning.
	found := false
	for _, v := range viol {
		if v.Misreport < v.TrueType && v.Gain > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("expected an underbidding violation, got %v", viol)
	}
}

func TestProfileHelpers(t *testing.T) {
	p := Profile{1, 2, 3}
	q := p.With(1, 9)
	if p[1] != 2 {
		t.Error("With mutated original")
	}
	if q[1] != 9 || q[0] != 1 || q[2] != 3 {
		t.Errorf("With = %v", q)
	}
	c := p.Clone()
	c[0] = 7
	if p[0] != 1 {
		t.Error("Clone aliased")
	}
}

func TestTotalUtilityErrors(t *testing.T) {
	v := secondPriceAuction(2)
	if _, err := TotalUtility[int](v, v.TruthfulValue(), Profile{1}, Profile{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestCheckStrategyproofValidation(t *testing.T) {
	v := secondPriceAuction(1)
	if _, err := CheckStrategyproof[int](v, v.TruthfulValue(), 0, []Type{1}); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := CheckStrategyproof[int](v, v.TruthfulValue(), 1, nil); err == nil {
		t.Error("empty type space should error")
	}
}

func TestVCGNoOutcomes(t *testing.T) {
	v := &VCG{NumOutcomes: 0, Value: func(int, int, Type) int64 { return 0 }}
	if _, err := v.Outcome(Profile{1}); err == nil {
		t.Error("VCG with no outcomes should error")
	}
}

// Property: in a random-valuation VCG, unilateral misreports never
// strictly increase utility (spot-check of dominant-strategy IC beyond
// the exhaustive auction test).
func TestPropertyVCGTruthfulDominant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, outcomes := 3, 4
		// Random separable valuations: value(i,o,t) = t * weight[i][o].
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, outcomes)
			for o := range w[i] {
				w[i][o] = int64(rng.Intn(5))
			}
		}
		v := &VCG{
			NumOutcomes: outcomes,
			Value:       func(i, o int, t Type) int64 { return t * w[i][o] },
		}
		truth := make(Profile, n)
		for i := range truth {
			truth[i] = int64(rng.Intn(6))
		}
		base, err := TotalUtility[int](v, v.TruthfulValue(), truth, truth)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for lie := Type(0); lie < 6; lie++ {
				if lie == truth[i] {
					continue
				}
				got, err := TotalUtility[int](v, v.TruthfulValue(), truth.With(i, lie), truth)
				if err != nil {
					return false
				}
				if got[i] > base[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: VCG transfers are never positive under Clarke pivot
// (nodes pay their externality; no node is subsidized).
func TestPropertyClarkePaymentsNonPositive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := secondPriceAuction(4)
		reports := make(Profile, 4)
		for i := range reports {
			reports[i] = int64(rng.Intn(20))
		}
		o, err := v.Outcome(reports)
		if err != nil {
			return false
		}
		tr, err := v.Transfers(reports, o)
		if err != nil {
			return false
		}
		for _, x := range tr {
			if x > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
