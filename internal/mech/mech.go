// Package mech implements the traditional (centralized) mechanism
// design substrate of the paper's §3.2: direct-revelation mechanisms
// M = (f, Θ), utilities, dominant-strategy incentive compatibility
// (strategyproofness, Definition 5), and a generic Vickrey–Clarke–
// Groves mechanism with Clarke pivot payments.
//
// Proposition 2 reduces distributed faithfulness to (i) centralized
// strategyproofness plus (ii) strong-CC and (iii) strong-AC; this
// package supplies the machinery for (i): both concrete strategyproof
// mechanisms (VCG) and an exhaustive checker used in tests to certify
// strategyproofness over finite type spaces.
package mech

import (
	"errors"
	"fmt"
	"math"
)

// Type is a node's private type: everything relevant to outcomes and
// preferences (§3.2). Types are modeled as int64 scalars — enough for
// transit costs and computation powers — kept generic via slices for
// multi-dimensional extensions.
type Type = int64

// Profile is a type vector, one entry per node.
type Profile []Type

// Clone returns a copy of the profile.
func (p Profile) Clone() Profile {
	out := make(Profile, len(p))
	copy(out, p)
	return out
}

// With returns a copy of the profile where node i reports t.
func (p Profile) With(i int, t Type) Profile {
	out := p.Clone()
	out[i] = t
	return out
}

// Mechanism is a centralized direct-revelation mechanism M = (f, Θ):
// given reported types it selects an outcome and per-node transfers
// (payments received; negative = paid).
type Mechanism[O any] interface {
	// Outcome implements f(θ̂).
	Outcome(reports Profile) (O, error)
	// Transfers returns the payment made *to* each node under the
	// chosen outcome (the money part of the mechanism).
	Transfers(reports Profile, outcome O) ([]int64, error)
}

// Utility evaluates node i's intrinsic (non-monetary) value for an
// outcome given its true type. Quasilinear total utility is
// Utility + transfer.
type Utility[O any] func(i int, outcome O, trueType Type) int64

// TotalUtility runs the mechanism on reports and returns each node's
// quasilinear utility evaluated at trueTypes.
func TotalUtility[O any](m Mechanism[O], u Utility[O], reports, trueTypes Profile) ([]int64, error) {
	if len(reports) != len(trueTypes) {
		return nil, errors.New("mech: reports/types length mismatch")
	}
	o, err := m.Outcome(reports)
	if err != nil {
		return nil, fmt.Errorf("outcome: %w", err)
	}
	tr, err := m.Transfers(reports, o)
	if err != nil {
		return nil, fmt.Errorf("transfers: %w", err)
	}
	if len(tr) != len(reports) {
		return nil, errors.New("mech: transfer vector length mismatch")
	}
	out := make([]int64, len(reports))
	for i := range out {
		out[i] = u(i, o, trueTypes[i]) + tr[i]
	}
	return out, nil
}

// Violation records a profitable misreport found by CheckStrategyproof.
type Violation struct {
	Node      int
	TrueType  Type
	Misreport Type
	Profile   Profile // other nodes' types at the violation
	Gain      int64
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d with type %d gains %d by reporting %d (profile %v)",
		v.Node, v.TrueType, v.Gain, v.Misreport, v.Profile)
}

// CheckStrategyproof exhaustively verifies Definition 5 over the given
// finite type space: for every profile θ drawn from typeSpace^n, every
// node i, and every misreport θ̂i, truthful reporting must be a
// (weakly) dominant strategy. It returns all violations found (nil
// means the mechanism is strategyproof on this space).
//
// Cost is |typeSpace|^n · n · |typeSpace| mechanism runs — use small
// spaces; this is a certification tool for tests, not production.
func CheckStrategyproof[O any](m Mechanism[O], u Utility[O], n int, typeSpace []Type) ([]Violation, error) {
	if n <= 0 || len(typeSpace) == 0 {
		return nil, errors.New("mech: empty instance")
	}
	var violations []Violation
	profile := make(Profile, n)
	var rec func(pos int) error
	rec = func(pos int) error {
		if pos == n {
			truthful, err := TotalUtility(m, u, profile, profile)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				for _, lie := range typeSpace {
					if lie == profile[i] {
						continue
					}
					misreported := profile.With(i, lie)
					lied, err := TotalUtility(m, u, misreported, profile)
					if err != nil {
						return err
					}
					if lied[i] > truthful[i] {
						violations = append(violations, Violation{
							Node:      i,
							TrueType:  profile[i],
							Misreport: lie,
							Profile:   profile.Clone(),
							Gain:      lied[i] - truthful[i],
						})
					}
				}
			}
			return nil
		}
		for _, t := range typeSpace {
			profile[pos] = t
			if err := rec(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return violations, nil
}

// --- Generic VCG over finite outcome sets ---

// Valuation gives node i's value for outcome index o when its type is t.
type Valuation func(i int, o int, t Type) int64

// VCG is a Vickrey–Clarke–Groves mechanism over an explicit finite
// outcome set: it selects the welfare-maximizing outcome under
// reported types and charges Clarke-pivot payments, making truthful
// reporting a dominant strategy.
type VCG struct {
	// NumOutcomes is the size of the outcome set; outcomes are indices
	// 0..NumOutcomes-1.
	NumOutcomes int
	// Value is the common-knowledge valuation structure.
	Value Valuation
}

var _ Mechanism[int] = (*VCG)(nil)

// Outcome selects argmax_o Σ_i Value(i, o, θ̂i), lowest index on ties.
func (v *VCG) Outcome(reports Profile) (int, error) {
	if v.NumOutcomes <= 0 {
		return 0, errors.New("mech: VCG with no outcomes")
	}
	best, bestWelfare := 0, int64(math.MinInt64)
	for o := 0; o < v.NumOutcomes; o++ {
		w := v.welfare(o, reports, -1)
		if w > bestWelfare {
			best, bestWelfare = o, w
		}
	}
	return best, nil
}

// Transfers charges each node the externality it imposes:
// t_i = Σ_{j≠i} v_j(o*) − max_o Σ_{j≠i} v_j(o)  (≤ 0).
func (v *VCG) Transfers(reports Profile, outcome int) ([]int64, error) {
	out := make([]int64, len(reports))
	for i := range reports {
		othersAtChosen := v.welfare(outcome, reports, i)
		bestWithoutI := int64(math.MinInt64)
		for o := 0; o < v.NumOutcomes; o++ {
			if w := v.welfare(o, reports, i); w > bestWithoutI {
				bestWithoutI = w
			}
		}
		out[i] = othersAtChosen - bestWithoutI
	}
	return out, nil
}

func (v *VCG) welfare(o int, reports Profile, skip int) int64 {
	var total int64
	for j, t := range reports {
		if j == skip {
			continue
		}
		total += v.Value(j, o, t)
	}
	return total
}

// TruthfulValue is the canonical VCG utility: intrinsic value equals
// the valuation at the true type.
func (v *VCG) TruthfulValue() Utility[int] {
	return func(i int, o int, trueType Type) int64 {
		return v.Value(i, o, trueType)
	}
}
