package faithful

import (
	"math/rand"
	"testing"

	"repro/internal/fpss"
	"repro/internal/graph"
)

func TestCheckerLimitHonestStillGreenLights(t *testing.T) {
	g := graph.Figure1()
	for _, limit := range []int{1, 2, 3} {
		cfg := baseConfig(g)
		cfg.CheckerLimit = limit
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Errorf("limit %d: honest run not green-lit: %v", limit, res.Detections)
		}
		// Tables still converge to the centralized answer.
		sol, err := fpss.ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		for id, node := range res.Nodes {
			if !node.Routing().Equal(sol.Routing[id]) {
				t.Errorf("limit %d: node %d routing diverged", limit, id)
			}
		}
	}
}

func TestCheckerLimitReducesOverhead(t *testing.T) {
	g := graph.Figure1()
	full := baseConfig(g)
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	limited := baseConfig(g)
	limited.CheckerLimit = 1
	limRes, err := Run(limited)
	if err != nil {
		t.Fatal(err)
	}
	if limRes.Construction.Sent >= fullRes.Construction.Sent {
		t.Errorf("limited checkers should cost fewer messages: full %d, limited %d",
			fullRes.Construction.Sent, limRes.Construction.Sent)
	}
}

func TestCheckerLimitOpensEscape(t *testing.T) {
	// With a single checker per principal, a principal can tamper
	// advertisements sent only to unchecked neighbors and pass the
	// checkpoint — the escape E11 quantifies. We assert the weaker,
	// always-true property: the full assignment detects this deviation
	// while the truncated one may not (and if it completes, tables are
	// corrupted somewhere).
	g := graph.Figure1()
	d, _ := g.ByName("D")
	tamper := &Strategy{
		Protocol: fpss.Strategy{
			SendUpdate: func(to graph.NodeID, u fpss.Update) (fpss.Update, bool) {
				// Tamper toward the highest-ID neighbor only (likely
				// outside a truncated prefix checker set).
				if to == 4 { // X
					for dest, e := range u.Routing {
						e.Cost += 3
						u.Routing[dest] = e
					}
				}
				return u, true
			},
		},
	}
	full := baseConfig(g)
	full.Strategies = map[graph.NodeID]*Strategy{d: tamper}
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.Completed {
		t.Error("full assignment must catch selective advert tampering")
	}
	limited := baseConfig(g)
	limited.CheckerLimit = 1
	limited.Strategies = map[graph.NodeID]*Strategy{d: tamper}
	limRes, err := Run(limited)
	if err != nil {
		t.Fatal(err)
	}
	if limRes.Completed {
		// Escape: verify the corruption actually reached X's tables.
		sol, err := fpss.ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := g.ByName("X")
		if limRes.Nodes[x].Routing().Equal(sol.Routing[x]) {
			t.Log("tampering happened to be absorbed; escape not demonstrated on this topology")
		}
	}
}

func TestFailstopBlocksProgress(t *testing.T) {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	cfg := baseConfig(g)
	cfg.Strategies = map[graph.NodeID]*Strategy{c: {SilentFromPhase2: true}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("failstop node should block the green light")
	}
	for id, u := range res.Utilities {
		if u != -cfg.NonProgressPenalty {
			t.Errorf("node %d utility = %d, want non-progress penalty", id, u)
		}
	}
}

func TestFailstopStillParticipatesInPhase1(t *testing.T) {
	// The crash hits at the phase-2 boundary; phase-1 flooding still
	// completes, so DATA1 is common — the detection is purely the
	// missing phase-2 state, not a cost divergence.
	g := graph.Figure1()
	z, _ := g.ByName("Z")
	cfg := baseConfig(g)
	cfg.Strategies = map[graph.NodeID]*Strategy{z: {SilentFromPhase2: true}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("should not complete")
	}
	found := false
	for _, det := range res.Detections {
		if det.Principal == -1 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an unattributed missing-report detection: %v", res.Detections)
	}
}

func BenchmarkFaithfulConstructionFigure1(b *testing.B) {
	g := graph.Figure1()
	cfg := baseConfig(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("not green-lit")
		}
	}
}

func BenchmarkFaithfulConstructionRing16(b *testing.B) {
	g, err := graph.RingWithChords(16, 8, 10, benchRNG())
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Graph: g, Traffic: fpss.Traffic{}, DeliveryValue: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }
