package faithful

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bank"
	"repro/internal/fpss"
	"repro/internal/graph"
)

// bankStateReportAlias keeps the ReportState hook signature readable
// in table-style test literals.
type bankStateReportAlias = bank.StateReport

func baseConfig(g *graph.Graph) Config {
	return Config{
		Graph:              g,
		Traffic:            fpss.AllToAllTraffic(g.N(), 1),
		DeliveryValue:      10_000,
		UndeliveredPenalty: 10_000,
		NonProgressPenalty: 1_000_000,
		Epsilon:            1,
	}
}

func TestHonestRunGreenLights(t *testing.T) {
	g := graph.Figure1()
	res, err := Run(baseConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("honest run not green-lit: %v", res.Detections)
	}
	if len(res.Detections) != 0 {
		t.Errorf("honest run detections: %v", res.Detections)
	}
	if len(res.PaymentFindings) != 0 {
		t.Errorf("honest run payment findings: %v", res.PaymentFindings)
	}
	if res.Exec == nil || res.Exec.Undelivered != 0 {
		t.Errorf("honest run should deliver everything: %+v", res.Exec)
	}
}

func TestHonestTablesMatchCentral(t *testing.T) {
	g := graph.Figure1()
	res, err := Run(baseConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := fpss.ComputeCentral(g)
	if err != nil {
		t.Fatal(err)
	}
	for id, node := range res.Nodes {
		if !node.Routing().Equal(sol.Routing[id]) {
			t.Errorf("node %d routing differs from central", id)
		}
		if !node.Pricing().Equal(sol.Pricing[id]) {
			t.Errorf("node %d pricing differs from central", id)
		}
	}
}

func TestHonestMirrorsMatchPrincipals(t *testing.T) {
	g := graph.Figure1()
	res, err := Run(baseConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	for id, node := range res.Nodes {
		for _, p := range g.Neighbors(id) {
			mr, mp, ok := node.MirrorOf(p)
			if !ok {
				t.Fatalf("node %d has no mirror of neighbor %d", id, p)
			}
			principal := res.Nodes[p]
			if !mr.Equal(principal.Routing()) {
				t.Errorf("node %d mirror routing of %d diverges", id, p)
			}
			if !mp.Equal(principal.Pricing()) {
				t.Errorf("node %d mirror pricing of %d diverges", id, p)
			}
		}
	}
}

func TestHonestRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(5)
		g, err := graph.RandomBiconnected(n, rng.Intn(n), 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(baseConfig(g))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("trial %d: honest run not green-lit: %v", trial, res.Detections)
		}
	}
}

func deviatorRun(t *testing.T, g *graph.Graph, id graph.NodeID, s *Strategy) *Result {
	t.Helper()
	cfg := baseConfig(g)
	cfg.Strategies = map[graph.NodeID]*Strategy{id: s}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMiscomputedRoutingDetected(t *testing.T) {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	// Manipulation 2: C claims an absurdly cheap route everywhere,
	// attracting transit traffic.
	res := deviatorRun(t, g, c, &Strategy{
		Protocol: fpss.Strategy{
			PostRouting: func(rt fpss.RoutingTable) fpss.RoutingTable {
				for d, e := range rt {
					e.Cost = 0
					rt[d] = e
				}
				return rt
			},
		},
	})
	if res.Completed {
		t.Fatal("miscomputed routing was green-lit")
	}
	if len(res.Detections) == 0 {
		t.Fatal("no detections")
	}
}

func TestMiscomputedPricingDetected(t *testing.T) {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	// Manipulation 4: inflate every price involving C as transit.
	res := deviatorRun(t, g, c, &Strategy{
		Protocol: fpss.Strategy{
			PostPricing: func(pt fpss.PricingTable) fpss.PricingTable {
				for d, row := range pt {
					for k, e := range row {
						e.Price += 50
						row[k] = e
					}
					_ = d
				}
				return pt
			},
		},
	})
	if res.Completed {
		t.Fatal("miscomputed pricing was green-lit")
	}
}

func TestTamperedAdvertisementDetected(t *testing.T) {
	g := graph.Figure1()
	d, _ := g.ByName("D")
	// Manipulation 2 (change): advertise different tables than computed.
	res := deviatorRun(t, g, d, &Strategy{
		Protocol: fpss.Strategy{
			SendUpdate: func(to graph.NodeID, u fpss.Update) (fpss.Update, bool) {
				for dest, e := range u.Routing {
					e.Cost += 7
					u.Routing[dest] = e
				}
				return u, true
			},
		},
	})
	if res.Completed {
		t.Fatal("tampered advertisement was green-lit")
	}
}

func TestDroppedForwardDetected(t *testing.T) {
	g := graph.Figure1()
	d, _ := g.ByName("D")
	// Manipulation 1/3 (drop): never forward copies to checkers.
	res := deviatorRun(t, g, d, &Strategy{
		ForwardToChecker: func(graph.NodeID, ForwardCopy) (ForwardCopy, bool) {
			return ForwardCopy{}, false
		},
	})
	if res.Completed {
		t.Fatal("dropped forwards were green-lit")
	}
}

func TestChangedForwardDetected(t *testing.T) {
	g := graph.Figure1()
	d, _ := g.ByName("D")
	res := deviatorRun(t, g, d, &Strategy{
		ForwardToChecker: func(_ graph.NodeID, fc ForwardCopy) (ForwardCopy, bool) {
			for dest, e := range fc.U.Routing {
				e.Cost++
				fc.U.Routing[dest] = e
			}
			return fc, true
		},
	})
	if res.Completed {
		t.Fatal("changed forwards were green-lit")
	}
}

func TestSpoofedForwardDetected(t *testing.T) {
	g := graph.Figure1()
	d, _ := g.ByName("D")
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")
	// Manipulation 1/3 (spoof): fabricate an input "from X" claiming a
	// free route to Z.
	res := deviatorRun(t, g, d, &Strategy{
		SpoofCopies: func(self graph.NodeID) []ForwardCopy {
			return []ForwardCopy{{
				Principal: self,
				From:      x,
				U: fpss.Update{
					From: x,
					Routing: fpss.RoutingTable{
						z: {Dest: z, Cost: 0, Path: graph.Path{x, z}},
					},
					Pricing: fpss.PricingTable{},
				},
			}}
		},
	})
	if res.Completed {
		t.Fatal("spoofed forward was green-lit")
	}
	found := false
	for _, det := range res.Detections {
		if strings.Contains(det.Reason, "misattributes") || strings.Contains(det.Reason, "mirror") {
			found = true
		}
	}
	if !found {
		t.Errorf("spoof not surfaced: %v", res.Detections)
	}
}

func TestLyingToBankDetected(t *testing.T) {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	// Miscompute pricing AND report the faithful hash to the bank:
	// caught because the principal's advertisements diverge from every
	// checker's mirror.
	res := deviatorRun(t, g, c, &Strategy{
		Protocol: fpss.Strategy{
			PostPricing: func(pt fpss.PricingTable) fpss.PricingTable {
				for _, row := range pt {
					for k, e := range row {
						e.Price += 9
						row[k] = e
					}
				}
				return pt
			},
		},
		ReportState: func(truth bankStateReportAlias) bankStateReportAlias {
			// Claim pristine hashes by zeroing one's own pricing hash to
			// a forged constant cannot match checkers either; instead
			// the deviator tries copying a mirror it keeps of a
			// neighbor — any fixed lie still mismatches at least one
			// comparison.
			truth.PricingHash = fpss.Hash{}
			return truth
		},
	})
	if res.Completed {
		t.Fatal("hash lie was green-lit")
	}
}

func TestPaymentFraudPenalized(t *testing.T) {
	g := graph.Figure1()
	x, _ := g.ByName("X")
	honest, err := Run(baseConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	res := deviatorRun(t, g, x, &Strategy{
		ReportPayment: func(fpss.PaymentList) fpss.PaymentList {
			return fpss.PaymentList{} // claim nothing owed
		},
	})
	if !res.Completed {
		t.Fatal("payment fraud should not block construction")
	}
	if len(res.PaymentFindings) != 1 || res.PaymentFindings[0].Node != x {
		t.Fatalf("findings = %v", res.PaymentFindings)
	}
	if res.Utilities[x] >= honest.Utilities[x] {
		t.Errorf("payment fraud must be strictly unprofitable: honest %d, fraud %d",
			honest.Utilities[x], res.Utilities[x])
	}
	// Transit nodes are made whole.
	for _, k := range []string{"C", "D"} {
		id, _ := g.ByName(k)
		if res.Utilities[id] != honest.Utilities[id] {
			t.Errorf("transit %s utility changed: honest %d, fraud run %d", k, honest.Utilities[id], res.Utilities[id])
		}
	}
}

func TestRelayTamperDetectedWhenEffective(t *testing.T) {
	g := graph.Figure1()
	z, _ := g.ByName("Z")
	c, _ := g.ByName("C")
	// Z inflates C's cost announcement when relaying: nodes that hear
	// the tampered copy first end up with divergent DATA1.
	res := deviatorRun(t, g, z, &Strategy{
		Protocol: fpss.Strategy{
			RelayCost: func(_ graph.NodeID, a fpss.CostAnnounce) (fpss.CostAnnounce, bool) {
				if a.Origin == c {
					a.Cost += 100
				}
				return a, true
			},
		},
	})
	// Either the tampered copies arrived late everywhere (harmless) or
	// DATA1 diverged and the bank refused to proceed. Both outcomes
	// deny the deviator any gain; assert no corrupted green-light.
	if res.Completed {
		sol, err := fpss.ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}
		for id, node := range res.Nodes {
			if !node.Routing().Equal(sol.Routing[id]) {
				t.Errorf("green-lit run has corrupted routing at node %d", id)
			}
		}
	}
}

func TestNonProgressUtilities(t *testing.T) {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	res := deviatorRun(t, g, c, &Strategy{
		Protocol: fpss.Strategy{
			PostRouting: func(rt fpss.RoutingTable) fpss.RoutingTable {
				for d, e := range rt {
					e.Cost = 0
					rt[d] = e
				}
				return rt
			},
		},
	})
	if res.Completed {
		t.Fatal("should not complete")
	}
	for id, u := range res.Utilities {
		if u != -1_000_000 {
			t.Errorf("node %d utility = %d, want -1000000", id, u)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil graph should error")
	}
}
