// Package faithful implements the paper's extended FPSS specification
// (§4.2–§4.3): every neighbor of a principal acts as its checker,
// principals forward copies of every received update to their
// checkers, checkers mirror the principal's computation without
// emitting outputs, and a trusted bank compares state hashes at phase
// checkpoints — restarting a construction phase on any deviation and
// levying ε-above penalties on execution-phase fraud.
//
// Together with the strategyproofness of the underlying VCG mechanism
// this makes the whole specification faithful (Theorem 1): the
// deviation catalogue of package rational finds profitable deviations
// against plain FPSS but none against this protocol.
package faithful

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/sign"
	"repro/internal/sim"
)

// ForwardCopy is a principal's copy of a received update, forwarded to
// its checkers so they can mirror its computation (Figure 2).
type ForwardCopy struct {
	Principal graph.NodeID
	From      graph.NodeID
	U         fpss.Update
}

// Size implements sim.Sizer.
func (f ForwardCopy) Size() int { return 1 + f.U.Size() }

// StateRequest asks a node for its signed state report (bank →
// nodes at a checkpoint).
type StateRequest struct{}

// Size implements sim.Sizer.
func (StateRequest) Size() int { return 1 }

// StateReply carries the signed report back to the bank.
type StateReply struct {
	Env sign.Envelope
}

// Size implements sim.Sizer.
func (r StateReply) Size() int { return 1 + len(r.Env.Payload)/16 }

// Strategy is the faithful protocol's deviation surface. The zero
// value (or nil) is the suggested specification.
type Strategy struct {
	// Protocol carries the construction-phase deviations shared with
	// plain FPSS (cost misreports, table miscomputation, tampered or
	// dropped advertisements).
	Protocol fpss.Strategy
	// ForwardToChecker intercepts an outgoing ForwardCopy; ok=false
	// drops it (manipulations 1 and 3: drop/change forwarded updates).
	ForwardToChecker func(to graph.NodeID, fc ForwardCopy) (ForwardCopy, bool)
	// SpoofCopies fabricates forward copies injected at phase-2 start
	// (the "spoof" arm of manipulations 1 and 3). The principal also
	// applies them to its own state for maximal consistency.
	SpoofCopies func(self graph.NodeID) []ForwardCopy
	// ReportState rewrites the node's state report before signing
	// (lying to the bank about one's own or mirrored tables).
	ReportState func(truth bank.StateReport) bank.StateReport
	// ReportPayment misreports DATA4 in the execution phase.
	ReportPayment func(truth fpss.PaymentList) fpss.PaymentList
	// SilentFromPhase2 models a failstop (crash) fault rather than a
	// rational deviation: the node stops participating once phase 2
	// begins, never advertises, forwards or reports. Used by the §5
	// failure-model experiment (E12) — the paper notes that such
	// failures "may cause the system to falsely detect and punish
	// manipulation".
	SilentFromPhase2 bool
}

func (s *Strategy) silentFromPhase2() bool { return s != nil && s.SilentFromPhase2 }

func (s *Strategy) protocol() *fpss.Strategy {
	if s == nil {
		return nil
	}
	return &s.Protocol
}

func (s *Strategy) forwardToChecker(to graph.NodeID, fc ForwardCopy) (ForwardCopy, bool) {
	if s == nil || s.ForwardToChecker == nil {
		return fc, true
	}
	return s.ForwardToChecker(to, fc)
}

func (s *Strategy) spoofCopies(self graph.NodeID) []ForwardCopy {
	if s == nil || s.SpoofCopies == nil {
		return nil
	}
	return s.SpoofCopies(self)
}

func (s *Strategy) reportState(truth bank.StateReport) bank.StateReport {
	if s == nil || s.ReportState == nil {
		return truth
	}
	return s.ReportState(truth)
}

// mirror is a checker's clone of one principal's computation state.
type mirror struct {
	principal graph.NodeID
	neighbors []graph.NodeID
	views     map[graph.NodeID]fpss.NeighborView
	routing   fpss.RoutingTable
	pricing   fpss.PricingTable
}

// recompute re-derives the mirrored tables, recycling the replaced
// ones through the owning checker's scratch: mirror tables are never
// advertised or shared (MirrorOf clones), so the previous generation
// is exclusively ours. Mirrors re-run on every forwarded copy, which
// made them the dominant allocation site of a faithful deviation
// search before recycling.
func (m *mirror) recompute(s *fpss.ComputeScratch, costs fpss.CostTable) {
	oldR, oldP := m.routing, m.pricing
	m.routing = fpss.ComputeRoutingScratch(s, m.principal, m.neighbors, costs, m.views)
	m.pricing = fpss.ComputePricingScratch(s, m.principal, m.neighbors, costs, m.routing, m.views)
	s.RecycleRouting(oldR)
	s.RecyclePricing(oldP)
}

// Node is a faithful-protocol participant: a principal in the core
// algorithm and a checker for every one of its neighbors.
type Node struct {
	id        graph.NodeID
	trueCost  graph.Cost
	neighbors []graph.NodeID
	// neighborsOf gives the (semi-private) neighbor lists of this
	// node's neighbors — checkers must know who else checks their
	// principal ([CHECK2] validates forward origins against it).
	neighborsOf map[graph.NodeID][]graph.NodeID
	// checkersOf restricts the checker assignment (ablation E11): by
	// default every neighbor of a principal checks it, which is what
	// §4.2 calls "very important"; smaller subsets open escapes.
	checkersOf map[graph.NodeID][]graph.NodeID
	strategy   *Strategy
	signer     *sign.Signer

	costs   fpss.CostTable
	views   map[graph.NodeID]fpss.NeighborView
	routing fpss.RoutingTable
	pricing fpss.PricingTable
	// scratch backs this node's own recomputes and those of all its
	// mirrors (single-threaded per node; see fpss.ComputeScratch).
	scratch fpss.ComputeScratch

	mirrors  map[graph.NodeID]*mirror
	lastSent map[graph.NodeID]fpss.Update
	flags    []bank.Flag

	phase2  bool
	spoofed bool
	adverts int
}

// advertBudget mirrors fpss.Node's oscillation damping: honest
// convergence uses O(n²) advertisements; deviant strategies that
// induce oscillation are cut off so the bank checkpoint always fires.
func (n *Node) advertBudget() int {
	known := len(n.costs)
	if known < len(n.neighbors)+1 {
		known = len(n.neighbors) + 1
	}
	return 8*known*known + 32
}

var _ sim.Handler = (*Node)(nil)

// NewNode constructs a faithful-protocol node. checkersOf may be nil,
// meaning the full assignment (every neighbor checks). Both maps (and
// their slices) are retained as shared read-only views — a deviation
// search builds them once per scenario and hands the same maps to
// every node of every run, so the node must never mutate them and the
// caller must not change them while any node is live.
func NewNode(id graph.NodeID, trueCost graph.Cost, neighborsOf, checkersOf map[graph.NodeID][]graph.NodeID, strategy *Strategy, signer *sign.Signer) *Node {
	cOf := checkersOf
	if cOf == nil {
		cOf = neighborsOf
	}
	return &Node{
		id:          id,
		trueCost:    trueCost,
		neighbors:   neighborsOf[id],
		neighborsOf: neighborsOf,
		checkersOf:  cOf,
		strategy:    strategy,
		signer:      signer,
		costs:       make(fpss.CostTable),
		views:       make(map[graph.NodeID]fpss.NeighborView),
		mirrors:     make(map[graph.NodeID]*mirror),
		lastSent:    make(map[graph.NodeID]fpss.Update),
	}
}

// ID returns the node identifier.
func (n *Node) ID() graph.NodeID { return n.id }

// Routing returns the node's DATA2.
func (n *Node) Routing() fpss.RoutingTable { return n.routing.Clone() }

// Pricing returns the node's DATA3*.
func (n *Node) Pricing() fpss.PricingTable { return n.pricing.Clone() }

// RoutingView returns the node's DATA2 without cloning — read-only,
// valid once the network is quiescent (see fpss.Node.RoutingView).
func (n *Node) RoutingView() fpss.RoutingTable { return n.routing }

// PricingView returns the node's DATA3* without cloning (read-only).
func (n *Node) PricingView() fpss.PricingTable { return n.pricing }

// Costs returns the node's DATA1.
func (n *Node) Costs() fpss.CostTable { return n.costs.Clone() }

// DeclaredCost returns the (possibly untruthful) declared cost.
func (n *Node) DeclaredCost() graph.Cost {
	s := n.strategy.protocol()
	if s != nil && s.DeclareCost != nil {
		return s.DeclareCost(n.trueCost)
	}
	return n.trueCost
}

// MirrorOf exposes a checker's mirror tables for a principal (tests).
func (n *Node) MirrorOf(p graph.NodeID) (fpss.RoutingTable, fpss.PricingTable, bool) {
	m, ok := n.mirrors[p]
	if !ok {
		return nil, nil, false
	}
	return m.routing.Clone(), m.pricing.Clone(), true
}

// Init floods the declared cost (first construction phase).
func (n *Node) Init(ctx sim.Context) {
	declared := n.DeclaredCost()
	n.costs[n.id] = declared
	a := fpss.CostAnnounce{Origin: n.id, Cost: declared}
	for _, v := range n.neighbors {
		ctx.Send(sim.Addr(v), a)
	}
}

// Recv dispatches protocol messages.
func (n *Node) Recv(ctx sim.Context, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case fpss.CostAnnounce:
		n.onCostAnnounce(ctx, m)
	case fpss.StartPhase2:
		if n.strategy.silentFromPhase2() {
			return // failstop: crashes at the phase boundary
		}
		n.onStartPhase2(ctx)
	case fpss.Update:
		if n.strategy.silentFromPhase2() {
			return
		}
		n.onUpdate(ctx, m)
	case ForwardCopy:
		if n.strategy.silentFromPhase2() {
			return
		}
		n.onForwardCopy(m)
	case StateRequest:
		if n.strategy.silentFromPhase2() {
			return // never reports: the bank sees a missing report
		}
		n.onStateRequest(ctx)
	}
}

func (n *Node) onCostAnnounce(ctx sim.Context, a fpss.CostAnnounce) {
	if _, known := n.costs[a.Origin]; known {
		return
	}
	n.costs[a.Origin] = a.Cost
	s := n.strategy.protocol()
	for _, v := range n.neighbors {
		relayed, ok := a, true
		if s != nil && s.RelayCost != nil {
			relayed, ok = s.RelayCost(v, a)
		}
		if !ok {
			continue
		}
		ctx.Send(sim.Addr(v), relayed)
	}
}

func (n *Node) onStartPhase2(ctx sim.Context) {
	if n.phase2 {
		return
	}
	n.phase2 = true
	// Become a checker for every neighbor that this node is assigned
	// to check (all of them under the paper's assignment).
	for _, p := range n.neighbors {
		if !contains(n.checkersOf[p], n.id) {
			continue
		}
		m := &mirror{
			principal: p,
			neighbors: n.neighborsOf[p],
			views:     make(map[graph.NodeID]fpss.NeighborView),
		}
		m.recompute(&n.scratch, n.costs)
		n.mirrors[p] = m
	}
	n.recompute(ctx, true)
	// Spoof injection (deviation): fabricate forward copies and apply
	// them to own state so the lie is maximally self-consistent.
	if !n.spoofed {
		n.spoofed = true
		for _, fc := range n.strategy.spoofCopies(n.id) {
			n.views[fc.From] = fpss.NeighborView{Routing: fc.U.Routing, Pricing: fc.U.Pricing}
			for _, c := range n.checkersOf[n.id] {
				ctx.Send(sim.Addr(c), fc)
			}
		}
		if n.strategy != nil && n.strategy.SpoofCopies != nil {
			n.recompute(ctx, true)
		}
	}
}

// onUpdate handles a neighbor principal's advertisement: storing the
// view, forwarding copies to this node's own checkers, and
// recomputing. The [CHECK1]-style comparison of the advertisement
// against the mirror happens at the quiescence checkpoint (see
// onStateRequest), where no update is still in flight — comparing
// mid-convergence would false-flag honest transients.
func (n *Node) onUpdate(ctx sim.Context, u fpss.Update) {
	if s := n.strategy.protocol(); s != nil && s.RecvUpdate != nil {
		// Ack withholding: the receiver discards the update and pretends
		// the network lost it — neither stored, forwarded nor recomputed.
		var ok bool
		if u, ok = s.RecvUpdate(u); !ok {
			return
		}
	}
	if !n.phase2 {
		n.phase2 = true
	}
	n.views[u.From] = fpss.NeighborView{Routing: u.Routing, Pricing: u.Pricing}
	// PRINC: forward a copy to all checkers except the original sender
	// (Figure 2: C1 is on the incoming path and needs no copy).
	fc := ForwardCopy{Principal: n.id, From: u.From, U: u}
	for _, c := range n.checkersOf[n.id] {
		if c == u.From {
			continue
		}
		out, ok := n.strategy.forwardToChecker(c, fc)
		if !ok {
			continue
		}
		ctx.Send(sim.Addr(c), out)
	}
	n.recompute(ctx, false)
}

// onForwardCopy handles a checker-side forwarded input ([CHECK1]/
// [CHECK2]): validate provenance, then mirror the principal's
// computation.
func (n *Node) onForwardCopy(fc ForwardCopy) {
	m, ok := n.mirrors[fc.Principal]
	if !ok {
		n.flag(fc.Principal, "forward copy from non-neighbor principal")
		return
	}
	if fc.From == n.id {
		// The principal claims this node sent it: verify against what
		// was actually sent (the spoof catch — "this spoof will create
		// an inconsistency in the identity tag information").
		last, sent := n.lastSent[fc.Principal]
		if !sent || !last.Routing.Equal(fc.U.Routing) || !last.Pricing.Equal(fc.U.Pricing) {
			n.flag(fc.Principal, "forward copy misattributes this checker")
			return
		}
		return // own sends are already applied to the mirror
	}
	if !contains(m.neighbors, fc.From) {
		// [CHECK2]: "Ignore messages with identity tags that are not
		// checker nodes of the principal."
		n.flag(fc.Principal, fmt.Sprintf("forward copy from %d, not a checker of %d", fc.From, fc.Principal))
		return
	}
	m.views[fc.From] = fpss.NeighborView{Routing: fc.U.Routing, Pricing: fc.U.Pricing}
	m.recompute(&n.scratch, n.costs)
}

// recompute re-runs the suggested computation with strategy hooks and
// advertises on change, updating the checkers' ground-truth record of
// what was sent to each neighbor.
func (n *Node) recompute(ctx sim.Context, force bool) {
	s := n.strategy.protocol()
	newRouting := fpss.ComputeRoutingScratch(&n.scratch, n.id, n.neighbors, n.costs, n.views)
	if s != nil && s.PostRouting != nil {
		newRouting = s.PostRouting(newRouting)
	}
	newPricing := fpss.ComputePricingScratch(&n.scratch, n.id, n.neighbors, n.costs, newRouting, n.views)
	if s != nil && s.PostPricing != nil {
		newPricing = s.PostPricing(newPricing)
	}
	changed := !newRouting.Equal(n.routing) || !newPricing.Equal(n.pricing)
	if changed {
		// Replaced tables may be aliased (advertisements, lastSent,
		// neighbor views/mirrors) — left to the GC.
		n.routing = newRouting
		n.pricing = newPricing
	} else if s == nil || (s.PostRouting == nil && s.PostPricing == nil) {
		// Convergence tail: the fresh tables equal the stored ones and
		// were never visible outside this call — recycle (hook-free
		// nodes only; a Post hook could have retained them).
		n.scratch.RecycleRouting(newRouting)
		n.scratch.RecyclePricing(newPricing)
	}
	if !changed && !force {
		return
	}
	if n.adverts >= n.advertBudget() {
		return // oscillation damping; see advertBudget
	}
	n.adverts++
	base := fpss.Update{From: n.id, Routing: n.routing, Pricing: n.pricing}
	honest := s == nil || s.SendUpdate == nil
	for _, v := range n.neighbors {
		u := base
		if !honest {
			// Deviant path: the hook may mutate its copy per neighbor.
			var ok bool
			u, ok = s.SendUpdate(v, base.Clone())
			if !ok {
				continue
			}
		}
		// Record ground truth of this channel and apply it to the
		// mirror this node keeps of neighbor v (checkers apply their
		// own sends directly; the principal cannot drop them). On the
		// honest path the tables are immutable once advertised, so the
		// record can share them.
		if honest {
			n.lastSent[v] = u
		} else {
			n.lastSent[v] = u.Clone()
		}
		if m, ok := n.mirrors[v]; ok {
			m.views[n.id] = fpss.NeighborView{Routing: u.Routing, Pricing: u.Pricing}
			m.recompute(&n.scratch, n.costs)
		}
		ctx.Send(sim.Addr(v), u)
	}
}

func (n *Node) onStateRequest(ctx sim.Context) {
	// [CHECK1]/[CHECK2] at the checkpoint: what each principal last
	// advertised to this checker must equal the faithfully mirrored
	// computation. At quiescence every message has been delivered, so
	// any divergence is a deviation, not a transient.
	for p, m := range n.mirrors {
		v, ok := n.views[p]
		if !ok {
			n.flag(p, "principal never advertised")
			continue
		}
		if !v.Routing.Equal(m.routing) || !v.Pricing.Equal(m.pricing) {
			n.flag(p, "advertisement diverges from checker mirror")
		}
	}
	truth := bank.StateReport{
		Node:        n.id,
		CostsHash:   n.costs.HashCosts(),
		RoutingHash: n.routing.HashRouting(),
		PricingHash: n.pricing.HashPricing(),
		Mirrors:     make(map[graph.NodeID]bank.MirrorReport, len(n.mirrors)),
		Flags:       append([]bank.Flag(nil), n.flags...),
	}
	for p, m := range n.mirrors {
		truth.Mirrors[p] = bank.MirrorReport{
			RoutingHash: m.routing.HashRouting(),
			PricingHash: m.pricing.HashPricing(),
		}
	}
	rep := n.strategy.reportState(truth)
	env, err := bank.EncodeReport(n.signer, rep)
	if err != nil {
		return // cannot sign: stay silent; the bank treats it as missing
	}
	ctx.Send(fpss.BankAddr, StateReply{Env: env})
}

func (n *Node) flag(principal graph.NodeID, reason string) {
	n.flags = append(n.flags, bank.Flag{Reporter: n.id, Principal: principal, Reason: reason})
}

func contains(ids []graph.NodeID, id graph.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
