package faithful

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bank"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/sign"
	"repro/internal/sim"
)

// bankPool recycles Banks across runs. A deviation search constructs a
// bank per (node, deviation) play — and the churn engine one per epoch
// per play — so the report map's buckets are worth keeping warm
// (bank.Reuse clears them in place instead of reallocating).
var bankPool = sync.Pool{New: func() any { return new(bank.Bank) }}

// MaxTolerableLoss is the documented per-attempt drop-rate threshold
// below which the retry envelope keeps honest runs effectively
// reliable: with the default 10-attempt budget a message is
// permanently lost with probability Rate^10 ≤ 0.25^10 ≈ 9.5e-7, so a
// clean run's Lost counter is zero for every practical schedule. At or
// below this rate a failed checkpoint with Lost > 0 is attributed to
// the network (loud non-progress, nobody blamed); deliberate dropping
// never increments Lost — handler-level drops are invisible to the
// counter — so deviations stay attributable to nodes.
const MaxTolerableLoss = 0.25

// Config parameterizes a faithful-protocol run.
type Config struct {
	// Graph is the true topology and true transit costs.
	Graph *graph.Graph
	// Strategies assigns deviations; nil entries follow the suggested
	// specification.
	Strategies map[graph.NodeID]*Strategy
	// Failstop lists nodes that crash at the phase-1/phase-2 boundary
	// (§5's failstop discussion, ablation E12): they go silent from
	// phase 2 on, which the checkpoint then attributes as deviation —
	// the paper's point that the construction cannot tell failure from
	// manipulation. Declarative sugar for a SilentFromPhase2 strategy,
	// merged over any per-node Strategy entry.
	Failstop []graph.NodeID
	// Loss installs a seeded per-link drop model with a bounded retry
	// envelope (sim.LossModel); the zero value is a reliable network.
	// At rates ≤ MaxTolerableLoss honest runs complete cleanly; beyond
	// it a wedged checkpoint with permanent losses is reported as
	// network-attributed non-progress rather than blaming nodes.
	Loss sim.LossModel
	// Traffic is the execution-phase demand matrix.
	Traffic fpss.Traffic
	// DeliveryValue / UndeliveredPenalty parameterize source utility.
	DeliveryValue      int64
	UndeliveredPenalty int64
	// NonProgressPenalty is every node's (large) loss when the bank
	// refuses to green-light the execution phase — the paper assumes
	// "a strong negative value when a construction phase does not
	// progress" (§4.3). Default 1_000_000.
	NonProgressPenalty int64
	// Epsilon is the bank's ε-above penalty margin (default 1).
	Epsilon int64
	// MaxSteps bounds each phase (default 1<<20).
	MaxSteps int64
	// CheckerLimit caps how many of each principal's neighbors act as
	// its checkers (0 = all, the paper's assignment). Used only by the
	// E11 ablation: smaller assignments open detection escapes.
	CheckerLimit int
	// Neighbors / Checkers optionally supply the per-node adjacency
	// and checker assignment. A deviation search plays hundreds of
	// runs on one scenario; the truthful topology views are identical
	// for every deviator, so callers precompute them once (see
	// Topology) and thread the same read-only maps into each run. When
	// nil, Run derives them from Graph and CheckerLimit. Both are
	// retained read-only by the protocol nodes.
	Neighbors map[graph.NodeID][]graph.NodeID
	Checkers  map[graph.NodeID][]graph.NodeID
	// Flows optionally fixes the execution-phase flow order
	// (precomputed Traffic.Flows()); nil derives it from Traffic.
	Flows [][2]graph.NodeID
	// Net optionally supplies a caller-owned simulator network (e.g. a
	// worker's play-context arena), reset — not released — after the
	// run. nil acquires from the global pool.
	Net *sim.Network
	// Bank optionally supplies a caller-owned bank, re-targeted with
	// Reuse and NOT returned to the package pool — callers that want
	// to keep the audit view alive past the run (truthful snapshots)
	// or avoid pool contention pass one. nil uses the pool.
	Bank *bank.Bank
}

// Topology builds the per-node adjacency and checker-assignment views
// for a graph: every neighbor of a node checks it, truncated to
// checkerLimit when positive (ablation E11). The maps share the
// graph's CSR rows and are meant to be computed once per scenario and
// passed read-only through Config.Neighbors/Config.Checkers.
func Topology(g *graph.Graph, checkerLimit int) (neighbors, checkers map[graph.NodeID][]graph.NodeID) {
	n := g.N()
	neighbors = make(map[graph.NodeID][]graph.NodeID, n)
	checkers = make(map[graph.NodeID][]graph.NodeID, n)
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		neighbors[id] = g.AdjView(id)
		cs := neighbors[id]
		if checkerLimit > 0 && checkerLimit < len(cs) {
			cs = cs[:checkerLimit]
		}
		checkers[id] = cs
	}
	return neighbors, checkers
}

// Result is the outcome of a faithful-protocol run.
type Result struct {
	// Utilities is each node's realized quasilinear utility.
	Utilities map[graph.NodeID]int64
	// Completed reports whether the bank green-lit execution.
	Completed bool
	// Detections lists construction-phase verdicts (empty when clean).
	Detections []bank.Detection
	// PaymentFindings lists execution-phase audit results.
	PaymentFindings []bank.PaymentFinding
	// Construction holds cumulative sim counters at the end of the
	// construction phases (message overhead, for E4/E5).
	Construction sim.Counters
	// Exec is the execution-phase accounting (nil when not reached).
	Exec *fpss.ExecResult
	// Nodes exposes the protocol nodes (tests and experiments).
	Nodes map[graph.NodeID]*Node
}

// bankHandler adapts the bank to the simulator: it collects signed
// state replies. Invalid envelopes are dropped, which surfaces as a
// missing report at the checkpoint.
type bankHandler struct {
	bank *bank.Bank
}

func (h *bankHandler) Init(sim.Context) {}

func (h *bankHandler) Recv(_ sim.Context, m sim.Message) {
	if r, ok := m.Payload.(StateReply); ok {
		_ = h.bank.Submit(r.Env) // rejected ⇒ treated as missing
	}
}

// Run executes the extended FPSS specification end to end: phase 1
// (cost flood), phase 2 (routing/pricing with checker mirroring), the
// bank checkpoint ([BANK1]/[BANK2] plus DATA1 and checker flags), and
// — when green-lit — the execution phase with payment audit.
//
// A detected construction-phase deviation means the bank withholds the
// green light; with a deterministic deviator a restart loops forever,
// so the run ends in non-progress and every node takes
// NonProgressPenalty. That is exactly why construction deviations are
// unprofitable in equilibrium.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("faithful: nil graph")
	}
	if cfg.NonProgressPenalty == 0 {
		cfg.NonProgressPenalty = 1_000_000
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	n := cfg.Graph.N()

	neighborsOf, checkersOf := cfg.Neighbors, cfg.Checkers
	if neighborsOf == nil {
		neighborsOf, checkersOf = Topology(cfg.Graph, cfg.CheckerLimit)
	} else if checkersOf == nil {
		// Derive the assignment from the supplied adjacency, honoring
		// CheckerLimit exactly as Topology does.
		checkersOf = make(map[graph.NodeID][]graph.NodeID, len(neighborsOf))
		for id, ns := range neighborsOf {
			if cfg.CheckerLimit > 0 && cfg.CheckerLimit < len(ns) {
				ns = ns[:cfg.CheckerLimit]
			}
			checkersOf[id] = ns
		}
	}

	authority := sign.NewAuthority()
	theBank := cfg.Bank
	if theBank == nil {
		theBank = bankPool.Get().(*bank.Bank)
		defer bankPool.Put(theBank)
	}
	theBank.Reuse(authority, checkersOf)
	net := cfg.Net
	if net == nil {
		net = sim.AcquireNetwork()
		defer net.Release()
	} else {
		defer net.Reset()
	}
	if cfg.Loss.Enabled() {
		net.SetLoss(cfg.Loss)
	}
	if err := net.Attach(fpss.BankAddr, &bankHandler{bank: theBank}); err != nil {
		return nil, err
	}
	// Merge the declarative failstop list over the strategy map: a
	// failstopped node runs phase 1 faithfully and then goes silent,
	// exactly as an explicit SilentFromPhase2 strategy would.
	strategies := cfg.Strategies
	if len(cfg.Failstop) > 0 {
		strategies = make(map[graph.NodeID]*Strategy, len(cfg.Strategies)+len(cfg.Failstop))
		for id, s := range cfg.Strategies {
			strategies[id] = s
		}
		for _, id := range cfg.Failstop {
			cp := Strategy{SilentFromPhase2: true}
			if s := strategies[id]; s != nil {
				cp = *s
				cp.SilentFromPhase2 = true
			}
			strategies[id] = &cp
		}
	}
	nodes := make(map[graph.NodeID]*Node, n)
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		signer, err := authority.Register(bank.SignerID(id))
		if err != nil {
			return nil, fmt.Errorf("register signer %d: %w", id, err)
		}
		node := NewNode(id, cfg.Graph.Cost(id), neighborsOf, checkersOf, strategies[id], signer)
		nodes[id] = node
		if err := net.Attach(sim.Addr(id), node); err != nil {
			return nil, fmt.Errorf("attach %d: %w", id, err)
		}
	}

	res := &Result{Nodes: nodes, Utilities: make(map[graph.NodeID]int64, n)}

	nonProgress := func(reason string) *Result {
		res.Completed = false
		if reason != "" {
			res.Detections = append(res.Detections, bank.Detection{Principal: -1, Reason: reason})
		}
		for i := 0; i < n; i++ {
			res.Utilities[graph.NodeID(i)] = -cfg.NonProgressPenalty
		}
		res.Construction = net.Counters()
		return res
	}

	// Phase 1: cost flood.
	if _, err := net.Run(maxSteps); err != nil {
		if errors.Is(err, sim.ErrBudgetExhausted) {
			return nonProgress("phase 1 did not quiesce"), nil
		}
		return nil, fmt.Errorf("phase 1: %w", err)
	}
	// Phase 2: routing and pricing with checker mirroring.
	for i := 0; i < n; i++ {
		net.Inject(fpss.BankAddr, sim.Addr(i), fpss.StartPhase2{})
	}
	if _, err := net.Resume(maxSteps); err != nil {
		if errors.Is(err, sim.ErrBudgetExhausted) {
			return nonProgress("phase 2 did not quiesce"), nil
		}
		return nil, fmt.Errorf("phase 2: %w", err)
	}
	// Checkpoint: collect signed state reports.
	for i := 0; i < n; i++ {
		net.Inject(fpss.BankAddr, sim.Addr(i), StateRequest{})
	}
	if _, err := net.Resume(maxSteps); err != nil {
		if errors.Is(err, sim.ErrBudgetExhausted) {
			return nonProgress("checkpoint did not quiesce"), nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	res.Construction = net.Counters()
	res.Detections = theBank.VerifyConstruction()
	if len(res.Detections) > 0 {
		if lost := res.Construction.Lost; lost > 0 {
			// Attribution under loss (§5): a checkpoint failure in a run
			// where the network permanently lost messages cannot be
			// pinned on nodes — a missing report or a stale mirror is
			// exactly what an omission fault looks like. Deliberate
			// dropping never increments Lost (handler-level drops are
			// not network events), so this path only absorbs genuine
			// network faults: fail loudly, blame nobody.
			res.Detections = res.Detections[:0]
			return nonProgress(fmt.Sprintf(
				"construction checkpoint failed with %d messages permanently lost: attributing to the network, not to nodes", lost)), nil
		}
		return nonProgress(""), nil
	}

	// Execution phase: green-lit. Tables are certified faithful.
	st := ExecState{
		Routing:   make(map[graph.NodeID]fpss.RoutingTable, n),
		Pricing:   make(map[graph.NodeID]fpss.PricingTable, n),
		Declared:  make(fpss.CostTable, n),
		TrueCosts: make(fpss.CostTable, n),
		Bank:      theBank,
	}
	reportHooks := make(map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList)
	for id, node := range nodes {
		// Converged-table views: the network is quiescent and Execute
		// never mutates its inputs, so cloning here is pure garbage.
		st.Routing[id] = node.RoutingView()
		st.Pricing[id] = node.PricingView()
		st.Declared[id] = node.DeclaredCost()
		st.TrueCosts[id] = cfg.Graph.Cost(id)
		if s := strategies[id]; s != nil && s.ReportPayment != nil {
			reportHooks[id] = s.ReportPayment
		}
	}
	if err := execAndAudit(st, cfg, reportHooks, res); err != nil {
		return nil, err
	}
	return res, nil
}

// ExecState is the certified post-construction state of a run that
// passed the bank checkpoint: the converged table views, declared and
// true costs, and the auditing bank. A truthful snapshot captures one
// so that execution-phase-only deviations (payment misreports) can be
// played as copy-on-write overlays — see ExecPlay. All fields are
// read-only once captured; Bank's audit path only reads its node
// list, so one state serves concurrent plays.
type ExecState struct {
	Routing   map[graph.NodeID]fpss.RoutingTable
	Pricing   map[graph.NodeID]fpss.PricingTable
	Declared  fpss.CostTable
	TrueCosts fpss.CostTable
	Bank      *bank.Bank
}

// ExecPlay replays only the execution phase and payment audit over a
// certified honest state, with hooks misreporting DATA4. For a
// deviation that leaves the construction phases untouched this is
// byte-identical to what Run would produce (the honest construction
// is deterministic and certified clean) — except Nodes and
// Construction counters, which an execution-only overlay has no use
// for. cfg supplies the economic parameters exactly as in Run.
func ExecPlay(st ExecState, cfg Config, hooks map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList) (*Result, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1
	}
	res := &Result{Utilities: make(map[graph.NodeID]int64, len(st.TrueCosts))}
	if err := execAndAudit(st, cfg, hooks, res); err != nil {
		return nil, err
	}
	return res, nil
}

// execAndAudit is the shared tail of Run and ExecPlay: execution-phase
// accounting over certified tables, then the bank's DATA4 audit with
// settlement and ε-above penalties.
func execAndAudit(st ExecState, cfg Config, reportHooks map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList, res *Result) error {
	exec, err := fpss.Execute(st.Routing, st.Pricing, fpss.ExecConfig{
		TrueCosts:          st.TrueCosts,
		DeclaredCosts:      st.Declared,
		Traffic:            cfg.Traffic,
		Flows:              cfg.Flows,
		DeliveryValue:      cfg.DeliveryValue,
		UndeliveredPenalty: cfg.UndeliveredPenalty,
		Scheme:             fpss.SchemeVCG,
		ReportPayment:      reportHooks,
	})
	if err != nil {
		return fmt.Errorf("execution: %w", err)
	}
	res.Exec = exec
	res.Completed = true
	for id, u := range exec.Utilities {
		res.Utilities[id] = u
	}

	// Audit: the bank verifies DATA4 against certified pricing tables
	// and the observed traffic; any misreport is settled to the true
	// obligation and penalized ε above the attempted deviation.
	res.PaymentFindings = st.Bank.AuditPayments(exec.Obligations, exec.Reported, cfg.Epsilon)
	for _, f := range res.PaymentFindings {
		obligation := exec.Obligations[f.Node]
		reported := exec.Reported[f.Node]
		res.Utilities[f.Node] -= obligation.Total() - reported.Total() // settle
		res.Utilities[f.Node] -= f.Penalty
		for k, owed := range obligation {
			res.Utilities[k] += owed - reported[k] // make transit nodes whole
		}
		for k, got := range reported {
			if _, ok := obligation[k]; !ok {
				res.Utilities[k] -= got // claw back misdirected credits
			}
		}
	}
	return nil
}
