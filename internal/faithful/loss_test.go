package faithful

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/sim"
)

// TestHonestLossSweepZeroFalsePositives is the zero-FP acceptance
// gate: across a seeded sweep of topologies and sub-threshold loss
// rates (up to MaxTolerableLoss, bursty and i.i.d.), an all-honest run
// must always green-light with no detections and no permanent losses —
// the retry envelope absorbs every drop before the checkpoint looks.
func TestHonestLossSweepZeroFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	rates := []float64{0.05, 0.15, MaxTolerableLoss}
	bursts := []float64{0, 4}
	sawDrops := false
	trial := 0
	for round := 0; round < 6; round++ {
		var g *graph.Graph
		var err error
		if round == 0 {
			g = graph.Figure1()
		} else {
			g, err = graph.RandomBiconnected(4+rng.Intn(4), rng.Intn(4), 8, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, rate := range rates {
			for _, burst := range bursts {
				trial++
				cfg := baseConfig(g)
				cfg.Loss = sim.LossModel{Rate: rate, Burst: burst, Seed: uint64(trial)}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Construction.Lost != 0 {
					t.Errorf("trial %d (rate=%g burst=%g): %d messages permanently lost below threshold",
						trial, rate, burst, res.Construction.Lost)
				}
				if !res.Completed || len(res.Detections) != 0 {
					t.Errorf("trial %d (rate=%g burst=%g): honest lossy run flagged: completed=%v detections=%v",
						trial, rate, burst, res.Completed, res.Detections)
				}
				if res.Construction.Dropped > 0 {
					sawDrops = true
				}
			}
		}
	}
	if !sawDrops {
		t.Fatal("sweep never exercised the drop model")
	}
}

// TestLossBeyondThresholdAttributedToNetwork: when the drop model is
// cranked past what the retry envelope can absorb (every message gets
// one attempt at 90% loss), the run must fail loudly — non-progress
// with an explicit network attribution — and must NOT blame any node.
func TestLossBeyondThresholdAttributedToNetwork(t *testing.T) {
	g := graph.Figure1()
	cfg := baseConfig(g)
	cfg.Loss = sim.LossModel{Rate: 0.9, Seed: 3, Attempts: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("90% loss with one attempt should not green-light")
	}
	if res.Construction.Lost == 0 {
		t.Fatal("expected permanent losses")
	}
	for _, d := range res.Detections {
		if d.Principal != -1 {
			t.Errorf("node %v blamed for network loss: %s", d.Principal, d.Reason)
		}
	}
	// The reason must say what happened — the "fail loudly" half.
	found := false
	for _, d := range res.Detections {
		if strings.Contains(d.Reason, "attributing to the network") {
			found = true
		}
	}
	if found == false && len(res.Detections) > 0 {
		// A wedged phase (budget exhaustion) is the other loud path.
		found = strings.Contains(res.Detections[0].Reason, "did not quiesce")
	}
	if !found {
		t.Errorf("no network attribution in detections: %v", res.Detections)
	}
}

// TestDeliberateDroppingStillCaughtUnderLoss: a deviator that
// selectively drops its advertisements cannot hide behind an enabled
// (sub-threshold) loss model — handler-level drops never increment the
// network's Lost counter, so the checkpoint detection stands and names
// the deviator.
func TestDeliberateDroppingStillCaughtUnderLoss(t *testing.T) {
	g := graph.Figure1()
	deviator := graph.NodeID(2) // C: well-connected interior node
	cfg := baseConfig(g)
	cfg.Loss = sim.LossModel{Rate: 0.15, Burst: 3, Seed: 7}
	cfg.Strategies = map[graph.NodeID]*Strategy{deviator: {
		Protocol: fpss.Strategy{SendUpdate: func(graph.NodeID, fpss.Update) (fpss.Update, bool) {
			return fpss.Update{}, false
		}},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("advert-dropping deviator green-lit under loss")
	}
	if res.Construction.Lost != 0 {
		t.Fatalf("sub-threshold loss should have no permanent losses, got %d", res.Construction.Lost)
	}
	named := false
	for _, d := range res.Detections {
		if d.Principal == deviator {
			named = true
		}
	}
	if !named {
		t.Errorf("deviator %v not named in detections: %v", deviator, res.Detections)
	}
}

// TestAckWithholdingCaughtUnderLoss: the receiver-side twin — a node
// that discards a neighbor's updates and lets the sender's retries
// take the blame. The victim is one of the deviator's checkers and
// applies its own sends to its mirror, so the deviator's stale
// advertisement diverges at the checkpoint.
func TestAckWithholdingCaughtUnderLoss(t *testing.T) {
	g := graph.Figure1()
	deviator := graph.NodeID(2)
	victim := g.Neighbors(deviator)[0]
	cfg := baseConfig(g)
	cfg.Loss = sim.LossModel{Rate: 0.15, Burst: 3, Seed: 9}
	cfg.Strategies = map[graph.NodeID]*Strategy{deviator: {
		Protocol: fpss.Strategy{RecvUpdate: func(u fpss.Update) (fpss.Update, bool) {
			if u.From == victim {
				return fpss.Update{}, false
			}
			return u, true
		}},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("ack-withholding deviator green-lit under loss")
	}
	if res.Construction.Lost != 0 {
		t.Fatalf("sub-threshold loss should have no permanent losses, got %d", res.Construction.Lost)
	}
	named := false
	for _, d := range res.Detections {
		if d.Principal == deviator {
			named = true
		}
	}
	if !named {
		t.Errorf("deviator %v not named in detections: %v", deviator, res.Detections)
	}
}
