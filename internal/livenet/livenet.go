// Package livenet runs the same sim.Handler protocol nodes over real
// goroutines and mailboxes instead of the deterministic event
// simulator. Message interleavings are then scheduler-dependent — the
// asynchronous network model the paper (via Griffin–Wilfong) actually
// assumes.
//
// Its purpose in the reproduction is evidence of order-independence:
// the distributed FPSS computation must converge to the same unique
// fixpoint (the centralized solution) under *any* delivery order, not
// just the simulator's canonical one. The livenet tests run the
// protocol under live concurrency and compare tables against
// ComputeCentral, and internal/live keeps a resident livenet network
// behind its serving boundary.
//
// Quiescence is detected with a Dijkstra–Scholten-style in-flight
// counter: every enqueued message holds a credit that is released only
// after the receiving handler finishes processing it (including any
// sends that processing performed), so the counter can reach zero only
// at true quiescence. A pending crash-restart holds a credit too — a
// run does not quiesce while an endpoint is scheduled to come back.
//
// The failure axes mirror the simulator's: SetLoss installs the same
// seeded per-link drop schedules (resolved at send time through a
// sim.LossScheduler, so a live run and a simulated run with the same
// per-link send order report identical Dropped/Retried/Lost), and
// SetFaults installs the same positional crash schedule (an address
// crashes after delivering the same number of messages; deliveries
// while down count CrashDropped). The one semantic gap is restart
// timing: the simulator restarts after RestartDelay logical ticks,
// while livenet has no logical clock and maps a tick onto RestartTick
// of wall time — crash/restart *counts* stay comparable, interleaving
// around a restart does not.
package livenet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// Counters is the simulator's traffic accounting, shared wholesale:
// the live network maintains the full sim.Counters surface (loss,
// crash and per-node fields included) so the loss/fault axes report
// identically live and simulated.
type Counters = sim.Counters

// RestartTick is the wall-clock length of one logical RestartDelay
// tick for crash-restart schedules (see the package comment).
const RestartTick = time.Millisecond

// Net executes handlers concurrently, one goroutine per address.
type Net struct {
	mu       sync.Mutex
	cond     *sync.Cond
	handlers map[sim.Addr]sim.Handler
	boxes    map[sim.Addr]*mailbox
	pending  int64 // in-flight credits (messages + unstarted inits + pending restarts)
	counters Counters
	loss     *sim.LossScheduler
	faults   *faultSchedule
	started  bool
	closed   bool
	wg       sync.WaitGroup
}

// faultSchedule is the livenet analogue of the simulator's faultState:
// per-address pending crash entries consumed in order, delivery counts
// since the last arm point, and the down set. Guarded by Net.mu.
type faultSchedule struct {
	pending map[sim.Addr][]sim.Crash
	counts  map[sim.Addr]int64
	down    map[sim.Addr]bool
}

// restartMarker is the mailbox payload that brings a crashed address
// back up. It is pushed directly into the victim's own mailbox (no
// Sent accounting, like the simulator's in-heap marker) and
// intercepted by the worker loop before normal delivery.
type restartMarker struct{}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sim.Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg sim.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

func (m *mailbox) pop() (sim.Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		// Closed wins even with queued messages: Shutdown must stop a
		// worker whose queue never drains (e.g. a self-spinning node).
		return sim.Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// New builds a live network over the given handlers.
func New(handlers map[sim.Addr]sim.Handler) *Net {
	n := &Net{
		handlers: make(map[sim.Addr]sim.Handler, len(handlers)),
		boxes:    make(map[sim.Addr]*mailbox, len(handlers)),
	}
	n.cond = sync.NewCond(&n.mu)
	for a, h := range handlers {
		n.handlers[a] = h
		n.boxes[a] = newMailbox()
	}
	return n
}

// SetLoss installs a seeded per-link drop model, resolved at send time
// exactly as the simulator resolves it (same schedule streams, same
// retry envelope, same counters). A disabled model removes it. Must be
// called before Start.
func (n *Net) SetLoss(m sim.LossModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss = sim.NewLossScheduler(m)
}

// SetFaults installs a positional crash schedule: an address crashes
// after delivering Crash.AfterDeliveries further messages, drops
// deliveries while down (Counters.CrashDropped), and restarts after
// RestartDelay×RestartTick of wall time (never, when negative),
// running the handler's Recover hook on its own worker goroutine. A
// disabled model removes the schedule. Must be called before Start.
func (n *Net) SetFaults(m sim.FaultModel) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !m.Enabled() {
		n.faults = nil
		return
	}
	fs := &faultSchedule{
		pending: make(map[sim.Addr][]sim.Crash),
		counts:  make(map[sim.Addr]int64),
		down:    make(map[sim.Addr]bool),
	}
	for _, c := range m.Schedule {
		if c.AfterDeliveries < 1 {
			c.AfterDeliveries = 1
		}
		fs.pending[c.Addr] = append(fs.pending[c.Addr], c)
	}
	n.faults = fs
}

// liveContext implements sim.Context for a worker goroutine.
type liveContext struct {
	net  *Net
	self sim.Addr
}

var _ sim.Context = (*liveContext)(nil)

func (c *liveContext) Self() sim.Addr { return c.self }

// Now returns wall-clock nanoseconds — live runs have no logical time.
func (c *liveContext) Now() int64 { return time.Now().UnixNano() }

func (c *liveContext) Send(to sim.Addr, payload any) {
	c.net.send(c.self, to, payload, false)
}

// send is the shared body of handler sends (subject to the loss model)
// and Inject (out-of-band control traffic, exempt — mirroring the
// simulator's enqueue/Inject split).
func (n *Net) send(from, to sim.Addr, payload any, reliable bool) {
	box, ok := n.boxes[to]
	size := int64(1)
	if s, isSized := payload.(sim.Sizer); isSized {
		size = int64(s.Size())
	}
	n.mu.Lock()
	n.counters.Sent++
	n.counters.Bytes += size
	if n.counters.PerNodeOut == nil {
		n.counters.PerNodeOut = make(map[sim.Addr]int64)
	}
	n.counters.PerNodeOut[from]++
	// Self-sends are a handler's private timers, exempt from loss like
	// Inject — the same carve-outs the simulator's enqueue makes.
	if n.loss != nil && !reliable && from != to {
		dropped, retried, lost := n.loss.Outcome(from, to)
		n.counters.Dropped += dropped
		if lost {
			n.counters.Lost++
			n.mu.Unlock()
			return // permanent loss: the envelope gave up
		}
		n.counters.Retried += retried
	}
	if ok {
		n.pending++
	}
	n.mu.Unlock()
	if !ok {
		return // unknown destination: discarded, like the simulator
	}
	box.push(sim.Message{From: from, To: to, Payload: payload})
}

// release returns one in-flight credit; at zero it wakes waiters.
func (n *Net) release() {
	n.mu.Lock()
	n.pending--
	if n.pending == 0 {
		n.cond.Broadcast()
	}
	n.mu.Unlock()
}

// deliverState classifies one popped message under the fault model and
// updates the shared counters; everything but the handler calls
// themselves happens under n.mu.
type deliverState int

const (
	deliver  deliverState = iota // hand to Recv (then observe the fault schedule)
	dropDown                     // destination down: counted, not delivered
	restart                      // restart marker: bring the address back up
)

// classify records the pop in the counters and decides what the worker
// does with it.
func (n *Net) classify(addr sim.Addr, msg sim.Message) deliverState {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.counters.Steps++
	if _, isMarker := msg.Payload.(restartMarker); isMarker {
		if n.faults != nil && n.faults.down[addr] {
			delete(n.faults.down, addr)
			n.counters.Restarts++
			return restart
		}
		return dropDown // stale marker; the credit is still released
	}
	if n.faults != nil && n.faults.down[addr] {
		n.counters.CrashDropped++
		return dropDown
	}
	n.counters.Delivered++
	if n.counters.PerNodeIn == nil {
		n.counters.PerNodeIn = make(map[sim.Addr]int64)
	}
	n.counters.PerNodeIn[addr]++
	return deliver
}

// observeDelivery advances addr's crash schedule after a completed
// Recv; when a crash fires it marks the address down, counts it, and
// schedules the restart (holding a quiescence credit until the marker
// is processed).
func (n *Net) observeDelivery(addr sim.Addr) {
	n.mu.Lock()
	fs := n.faults
	if fs == nil || len(fs.pending[addr]) == 0 {
		n.mu.Unlock()
		return
	}
	fs.counts[addr]++
	q := fs.pending[addr]
	if fs.counts[addr] < q[0].AfterDeliveries {
		n.mu.Unlock()
		return
	}
	c := q[0]
	fs.pending[addr] = q[1:]
	fs.counts[addr] = 0 // the next entry counts from here (or from restart)
	fs.down[addr] = true
	n.counters.Crashes++
	var box *mailbox
	if c.RestartDelay >= 0 {
		n.pending++ // restart credit: no quiescence while one is pending
		box = n.boxes[addr]
	}
	n.mu.Unlock()
	if box != nil {
		delay := time.Duration(c.RestartDelay) * RestartTick
		time.AfterFunc(delay, func() {
			box.push(sim.Message{From: addr, To: addr, Payload: restartMarker{}})
		})
	}
}

// Start launches one worker per handler. Each worker runs Init first
// (holding a start credit so quiescence cannot be declared before all
// inits finish), then consumes its mailbox.
func (n *Net) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("livenet: already started")
	}
	n.started = true
	addrs := make([]sim.Addr, 0, len(n.handlers))
	for a := range n.handlers {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	n.pending += int64(len(addrs)) // one start credit per worker
	n.mu.Unlock()

	for _, a := range addrs {
		addr := a
		h := n.handlers[addr]
		box := n.boxes[addr]
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx := &liveContext{net: n, self: addr}
			h.Init(ctx)
			n.release() // start credit
			for {
				msg, ok := box.pop()
				if !ok {
					return
				}
				switch n.classify(addr, msg) {
				case deliver:
					h.Recv(ctx, msg)
					n.observeDelivery(addr)
				case restart:
					if r, isRec := h.(sim.Recoverer); isRec {
						r.Recover(ctx)
					}
				case dropDown:
					// dropped while down (or a stale marker): nothing runs
				}
				n.release() // message credit, after processing completes
			}
		}()
	}
	return nil
}

// Inject enqueues an external message (e.g. a phase-change signal).
// Like the simulator's Inject it is out-of-band control traffic,
// exempt from the loss model.
func (n *Net) Inject(from, to sim.Addr, payload any) {
	n.send(from, to, payload, true)
}

// ErrTimeout is returned when quiescence is not reached in time.
var ErrTimeout = errors.New("livenet: quiescence timeout")

// WaitQuiescence blocks until no message is in flight or the timeout
// elapses. Handlers are guaranteed idle when it returns nil.
func (n *Net) WaitQuiescence(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()

	n.mu.Lock()
	defer n.mu.Unlock()
	for n.pending != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w (pending %d)", ErrTimeout, n.pending)
		}
		n.cond.Wait()
	}
	return nil
}

// Shutdown stops all workers and waits for them to exit. Handler state
// may be read safely afterwards (the WaitGroup provides the
// happens-before edge).
func (n *Net) Shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	n.mu.Unlock()
	for _, b := range n.boxes {
		b.close()
	}
	n.wg.Wait()
}

// Down reports whether addr is currently crashed.
func (n *Net) Down(addr sim.Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults != nil && n.faults.down[addr]
}

// Counters returns an isolated snapshot of traffic statistics.
func (n *Net) Counters() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.counters
	out.PerNodeIn = make(map[sim.Addr]int64, len(n.counters.PerNodeIn))
	for a, v := range n.counters.PerNodeIn {
		out.PerNodeIn[a] = v
	}
	out.PerNodeOut = make(map[sim.Addr]int64, len(n.counters.PerNodeOut))
	for a, v := range n.counters.PerNodeOut {
		out.PerNodeOut[a] = v
	}
	return out
}
