// Package livenet runs the same sim.Handler protocol nodes over real
// goroutines and mailboxes instead of the deterministic event
// simulator. Message interleavings are then scheduler-dependent — the
// asynchronous network model the paper (via Griffin–Wilfong) actually
// assumes.
//
// Its purpose in the reproduction is evidence of order-independence:
// the distributed FPSS computation must converge to the same unique
// fixpoint (the centralized solution) under *any* delivery order, not
// just the simulator's canonical one. The livenet tests run the
// protocol under live concurrency and compare tables against
// ComputeCentral.
//
// Quiescence is detected with a Dijkstra–Scholten-style in-flight
// counter: every enqueued message holds a credit that is released only
// after the receiving handler finishes processing it (including any
// sends that processing performed), so the counter can reach zero only
// at true quiescence.
package livenet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// Counters mirrors the simulator's traffic accounting (subset).
type Counters struct {
	Sent      int64
	Delivered int64
}

// Net executes handlers concurrently, one goroutine per address.
type Net struct {
	mu       sync.Mutex
	cond     *sync.Cond
	handlers map[sim.Addr]sim.Handler
	boxes    map[sim.Addr]*mailbox
	pending  int64 // in-flight credits (messages + unstarted inits)
	counters Counters
	started  bool
	closed   bool
	wg       sync.WaitGroup
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sim.Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg sim.Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

func (m *mailbox) pop() (sim.Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed {
		// Closed wins even with queued messages: Shutdown must stop a
		// worker whose queue never drains (e.g. a self-spinning node).
		return sim.Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// New builds a live network over the given handlers.
func New(handlers map[sim.Addr]sim.Handler) *Net {
	n := &Net{
		handlers: make(map[sim.Addr]sim.Handler, len(handlers)),
		boxes:    make(map[sim.Addr]*mailbox, len(handlers)),
	}
	n.cond = sync.NewCond(&n.mu)
	for a, h := range handlers {
		n.handlers[a] = h
		n.boxes[a] = newMailbox()
	}
	return n
}

// liveContext implements sim.Context for a worker goroutine.
type liveContext struct {
	net  *Net
	self sim.Addr
}

var _ sim.Context = (*liveContext)(nil)

func (c *liveContext) Self() sim.Addr { return c.self }

// Now returns wall-clock nanoseconds — live runs have no logical time.
func (c *liveContext) Now() int64 { return time.Now().UnixNano() }

func (c *liveContext) Send(to sim.Addr, payload any) {
	c.net.send(c.self, to, payload)
}

func (n *Net) send(from, to sim.Addr, payload any) {
	box, ok := n.boxes[to]
	n.mu.Lock()
	n.counters.Sent++
	if ok {
		n.pending++
	}
	n.mu.Unlock()
	if !ok {
		return // unknown destination: discarded, like the simulator
	}
	box.push(sim.Message{From: from, To: to, Payload: payload})
}

// release returns one in-flight credit; at zero it wakes waiters.
func (n *Net) release() {
	n.mu.Lock()
	n.pending--
	if n.pending == 0 {
		n.cond.Broadcast()
	}
	n.mu.Unlock()
}

// Start launches one worker per handler. Each worker runs Init first
// (holding a start credit so quiescence cannot be declared before all
// inits finish), then consumes its mailbox.
func (n *Net) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("livenet: already started")
	}
	n.started = true
	addrs := make([]sim.Addr, 0, len(n.handlers))
	for a := range n.handlers {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	n.pending += int64(len(addrs)) // one start credit per worker
	n.mu.Unlock()

	for _, a := range addrs {
		addr := a
		h := n.handlers[addr]
		box := n.boxes[addr]
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ctx := &liveContext{net: n, self: addr}
			h.Init(ctx)
			n.release() // start credit
			for {
				msg, ok := box.pop()
				if !ok {
					return
				}
				n.mu.Lock()
				n.counters.Delivered++
				n.mu.Unlock()
				h.Recv(ctx, msg)
				n.release() // message credit, after processing completes
			}
		}()
	}
	return nil
}

// Inject enqueues an external message (e.g. a phase-change signal).
func (n *Net) Inject(from, to sim.Addr, payload any) {
	n.send(from, to, payload)
}

// ErrTimeout is returned when quiescence is not reached in time.
var ErrTimeout = errors.New("livenet: quiescence timeout")

// WaitQuiescence blocks until no message is in flight or the timeout
// elapses. Handlers are guaranteed idle when it returns nil.
func (n *Net) WaitQuiescence(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()

	n.mu.Lock()
	defer n.mu.Unlock()
	for n.pending != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w (pending %d)", ErrTimeout, n.pending)
		}
		n.cond.Wait()
	}
	return nil
}

// Shutdown stops all workers and waits for them to exit. Handler state
// may be read safely afterwards (the WaitGroup provides the
// happens-before edge).
func (n *Net) Shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	n.mu.Unlock()
	for _, b := range n.boxes {
		b.close()
	}
	n.wg.Wait()
}

// Counters returns a snapshot of traffic statistics.
func (n *Net) Counters() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters
}
