package livenet

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/sim"
)

// counterNode counts received ints and echoes decremented values.
type counterNode struct {
	mu   sync.Mutex
	got  int
	peer sim.Addr
	kick bool
}

func (c *counterNode) Init(ctx sim.Context) {
	if c.kick {
		ctx.Send(c.peer, 3)
	}
}

func (c *counterNode) Recv(ctx sim.Context, m sim.Message) {
	v, ok := m.Payload.(int)
	if !ok {
		return
	}
	c.mu.Lock()
	c.got++
	c.mu.Unlock()
	if v > 0 {
		ctx.Send(m.From, v-1)
	}
}

func TestPingPongQuiesces(t *testing.T) {
	a := &counterNode{peer: 1, kick: true}
	b := &counterNode{peer: 0}
	n := New(map[sim.Addr]sim.Handler{0: a, 1: b})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.WaitQuiescence(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	n.Shutdown()
	if a.got+b.got != 4 {
		t.Errorf("total deliveries = %d, want 4", a.got+b.got)
	}
	c := n.Counters()
	if c.Sent != 4 || c.Delivered != 4 {
		t.Errorf("counters = %+v", c)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	n := New(map[sim.Addr]sim.Handler{0: &counterNode{}})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err == nil {
		t.Error("second Start should error")
	}
	if err := n.WaitQuiescence(time.Second); err != nil {
		t.Fatal(err)
	}
	n.Shutdown()
}

func TestUnknownDestinationDiscarded(t *testing.T) {
	a := &counterNode{peer: 99, kick: true}
	n := New(map[sim.Addr]sim.Handler{0: a})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.WaitQuiescence(time.Second); err != nil {
		t.Fatal(err)
	}
	n.Shutdown()
	if c := n.Counters(); c.Sent != 1 || c.Delivered != 0 {
		t.Errorf("counters = %+v", c)
	}
}

// spinner never stops sending to itself; quiescence must time out.
type spinner struct{}

func (s *spinner) Init(ctx sim.Context)                { ctx.Send(ctx.Self(), 1) }
func (s *spinner) Recv(ctx sim.Context, m sim.Message) { ctx.Send(ctx.Self(), 1) }

func TestWaitQuiescenceTimeout(t *testing.T) {
	n := New(map[sim.Addr]sim.Handler{0: &spinner{}})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	err := n.WaitQuiescence(50 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	n.Shutdown()
}

// TestFPSSOrderIndependence is the headline livenet test: the same
// fpss.Node handlers that run on the deterministic simulator run under
// real goroutine concurrency, and the converged tables must still
// equal the centralized solution — the fixpoint is delivery-order
// independent, as the composite route order guarantees.
func TestFPSSOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		var g *graph.Graph
		var err error
		if trial == 0 {
			g = graph.Figure1()
		} else {
			g, err = graph.RandomBiconnected(4+rng.Intn(5), rng.Intn(6), 9, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		sol, err := fpss.ComputeCentral(g)
		if err != nil {
			t.Fatal(err)
		}

		handlers := make(map[sim.Addr]sim.Handler, g.N())
		nodes := make(map[graph.NodeID]*fpss.Node, g.N())
		for i := 0; i < g.N(); i++ {
			id := graph.NodeID(i)
			node := fpss.NewNode(id, g.Cost(id), g.Neighbors(id), nil)
			nodes[id] = node
			handlers[sim.Addr(id)] = node
		}
		n := New(handlers)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		// Phase 1 quiescence, then the phase-2 green light, as the
		// bank would do it.
		if err := n.WaitQuiescence(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			n.Inject(fpss.BankAddr, sim.Addr(i), fpss.StartPhase2{})
		}
		if err := n.WaitQuiescence(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		n.Shutdown()

		for id, node := range nodes {
			if !node.Routing().Equal(sol.Routing[id]) {
				t.Fatalf("trial %d: node %d routing diverged under live concurrency", trial, id)
			}
			if !node.Pricing().Equal(sol.Pricing[id]) {
				t.Fatalf("trial %d: node %d pricing diverged under live concurrency", trial, id)
			}
		}
	}
}

func TestFPSSLiveWithDeviatorStillConverges(t *testing.T) {
	// Live concurrency with a lying node: the protocol still reaches
	// quiescence (advert budgets bound oscillation) and the lie's
	// effect matches the deterministic run's effect (Example 1: the
	// X→Z LCP flips to X-A-Z).
	g := graph.Figure1()
	c, _ := g.ByName("C")
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")
	a, _ := g.ByName("A")

	handlers := make(map[sim.Addr]sim.Handler, g.N())
	nodes := make(map[graph.NodeID]*fpss.Node, g.N())
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		var strat *fpss.Strategy
		if id == c {
			strat = &fpss.Strategy{DeclareCost: func(graph.Cost) graph.Cost { return 5 }}
		}
		node := fpss.NewNode(id, g.Cost(id), g.Neighbors(id), strat)
		nodes[id] = node
		handlers[sim.Addr(id)] = node
	}
	n := New(handlers)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.WaitQuiescence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		n.Inject(fpss.BankAddr, sim.Addr(i), fpss.StartPhase2{})
	}
	if err := n.WaitQuiescence(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	n.Shutdown()

	route := nodes[x].Routing()[z]
	if !route.Path.Equal(graph.Path{x, a, z}) {
		t.Errorf("X→Z under live lie = %v, want X-A-Z", route.Path)
	}
}

func BenchmarkLiveFPSSFigure1(b *testing.B) {
	g := graph.Figure1()
	for i := 0; i < b.N; i++ {
		handlers := make(map[sim.Addr]sim.Handler, g.N())
		for j := 0; j < g.N(); j++ {
			id := graph.NodeID(j)
			handlers[sim.Addr(id)] = fpss.NewNode(id, g.Cost(id), g.Neighbors(id), nil)
		}
		n := New(handlers)
		if err := n.Start(); err != nil {
			b.Fatal(err)
		}
		if err := n.WaitQuiescence(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < g.N(); j++ {
			n.Inject(fpss.BankAddr, sim.Addr(j), fpss.StartPhase2{})
		}
		if err := n.WaitQuiescence(30 * time.Second); err != nil {
			b.Fatal(err)
		}
		n.Shutdown()
	}
}
