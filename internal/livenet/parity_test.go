package livenet

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// chainHandler sends `sends` sequential pings to peer: the first from
// Init, each further one only after an ack (any delivery) comes back.
// The per-link send order is therefore deterministic — exactly one
// message in flight per direction at a time — which is what makes the
// live network's per-link loss schedule consume the same stream
// positions as the simulator's.
type chainHandler struct {
	peer  sim.Addr
	sends int
	sent  int
	echo  bool // reply to every delivery instead of initiating
}

func (h *chainHandler) Init(ctx sim.Context) {
	if !h.echo && h.sent < h.sends {
		h.sent++
		ctx.Send(h.peer, "ping")
	}
}

func (h *chainHandler) Recv(ctx sim.Context, msg sim.Message) {
	if h.echo {
		ctx.Send(msg.From, "pong")
		return
	}
	if h.sent < h.sends {
		h.sent++
		ctx.Send(h.peer, "ping")
	}
}

// runSim plays the scenario on the deterministic event simulator.
func runSim(t *testing.T, build func() map[sim.Addr]sim.Handler, loss sim.LossModel, faults sim.FaultModel) sim.Counters {
	t.Helper()
	net := sim.NewNetwork()
	if loss.Enabled() {
		net.SetLoss(loss)
	}
	if faults.Enabled() {
		net.SetFaults(faults)
	}
	for a, h := range build() {
		if err := net.Attach(a, h); err != nil {
			t.Fatal(err)
		}
	}
	c, err := net.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runLive plays the same scenario on the live goroutine network.
func runLive(t *testing.T, build func() map[sim.Addr]sim.Handler, loss sim.LossModel, faults sim.FaultModel) sim.Counters {
	t.Helper()
	net := New(build())
	if loss.Enabled() {
		net.SetLoss(loss)
	}
	if faults.Enabled() {
		net.SetFaults(faults)
	}
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	if err := net.WaitQuiescence(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	net.Shutdown()
	return net.Counters()
}

// comparable zeroes the fields whose values legitimately depend on the
// runtime (none today — kept as the single place to relax parity if a
// future axis needs it) and drops nil-vs-empty map differences.
func flatten(c sim.Counters) sim.Counters {
	if len(c.PerNodeIn) == 0 {
		c.PerNodeIn = nil
	}
	if len(c.PerNodeOut) == 0 {
		c.PerNodeOut = nil
	}
	return c
}

func assertCountersEqual(t *testing.T, want, got sim.Counters) {
	t.Helper()
	want, got = flatten(want), flatten(got)
	if want.Sent != got.Sent || want.Delivered != got.Delivered ||
		want.Dropped != got.Dropped || want.Retried != got.Retried ||
		want.Lost != got.Lost || want.Crashes != got.Crashes ||
		want.Restarts != got.Restarts || want.CrashDropped != got.CrashDropped ||
		want.Bytes != got.Bytes || want.Steps != got.Steps {
		t.Fatalf("counter mismatch:\n sim  %+v\n live %+v", want, got)
	}
	for a, v := range want.PerNodeIn {
		if got.PerNodeIn[a] != v {
			t.Fatalf("PerNodeIn[%d]: sim %d live %d", a, v, got.PerNodeIn[a])
		}
	}
	for a, v := range want.PerNodeOut {
		if got.PerNodeOut[a] != v {
			t.Fatalf("PerNodeOut[%d]: sim %d live %d", a, v, got.PerNodeOut[a])
		}
	}
}

// TestLossCountersParity pins the satellite contract: the same lossy
// scenario reports byte-identical Sent/Delivered/Dropped/Retried/Lost
// (and Bytes/Steps/per-node) counters whether it runs on the event
// simulator or on live goroutines. The ping-pong chain keeps exactly
// one message in flight per link, so both runtimes consume each link's
// seeded drop schedule in the same order.
func TestLossCountersParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		loss sim.LossModel
	}{
		{"iid-heavy", sim.LossModel{Rate: 0.4, Seed: 7, Attempts: 3, RetryDelay: 2}},
		{"bursty", sim.LossModel{Rate: 0.3, Burst: 4, Seed: 99, Attempts: 4, RetryDelay: 3}},
		{"near-certain-loss", sim.LossModel{Rate: 0.9, Seed: 3, Attempts: 2, RetryDelay: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() map[sim.Addr]sim.Handler {
				return map[sim.Addr]sim.Handler{
					0: &chainHandler{peer: 1, sends: 50},
					1: &chainHandler{echo: true},
					2: &chainHandler{peer: 3, sends: 30},
					3: &chainHandler{echo: true},
				}
			}
			simC := runSim(t, build, tc.loss, sim.FaultModel{})
			liveC := runLive(t, build, tc.loss, sim.FaultModel{})
			if simC.Dropped == 0 {
				t.Fatalf("loss model dropped nothing — parity test is vacuous")
			}
			assertCountersEqual(t, simC, liveC)
		})
	}
}

// TestCrashCountersParity pins the fault-axis half: a permanent crash
// (no restart, so no timing-dependent interleaving) after a fixed
// delivery count reports identical Crashes/CrashDropped live and
// simulated. Node 0 pushes 10 sequential pings at node 1; node 1
// crashes after delivering 4, so ping 5 is crash-dropped and the
// chain stalls (no ack ever returns) — deterministically in both
// runtimes.
func TestCrashCountersParity(t *testing.T) {
	build := func() map[sim.Addr]sim.Handler {
		return map[sim.Addr]sim.Handler{
			0: &chainHandler{peer: 1, sends: 10},
			1: &chainHandler{echo: true},
		}
	}
	faults := sim.FaultModel{Schedule: []sim.Crash{{Addr: 1, AfterDeliveries: 4, RestartDelay: -1}}}
	simC := runSim(t, build, sim.LossModel{}, faults)
	liveC := runLive(t, build, sim.LossModel{}, faults)
	if simC.Crashes != 1 || simC.CrashDropped == 0 {
		t.Fatalf("sim crash scenario mis-shaped: %+v", simC)
	}
	assertCountersEqual(t, simC, liveC)
}

// recoverHandler counts Recover calls — the restart path's smoke test.
type recoverHandler struct {
	chainHandler
	recovered int
}

func (h *recoverHandler) Recover(sim.Context) { h.recovered++ }

// TestCrashRestartLive exercises the wall-clock restart path, which
// has no byte-exact simulator analogue (livenet has no logical time):
// the crash fires, the restart brings the endpoint back, Recover runs,
// and the network still quiesces — with the crash/restart counters
// reflecting the schedule.
func TestCrashRestartLive(t *testing.T) {
	echo := &recoverHandler{chainHandler: chainHandler{echo: true}}
	handlers := map[sim.Addr]sim.Handler{
		0: &chainHandler{peer: 1, sends: 6},
		1: echo,
	}
	net := New(handlers)
	net.SetFaults(sim.FaultModel{Schedule: []sim.Crash{{Addr: 1, AfterDeliveries: 2, RestartDelay: 5}}})
	if err := net.Start(); err != nil {
		t.Fatal(err)
	}
	if err := net.WaitQuiescence(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	net.Shutdown()
	c := net.Counters()
	if c.Crashes != 1 || c.Restarts != 1 {
		t.Fatalf("want 1 crash + 1 restart, got %+v", c)
	}
	if echo.recovered != 1 {
		t.Fatalf("Recover ran %d times, want 1", echo.recovered)
	}
	// The chain stalls while node 1 is down (pings crash-dropped, no
	// acks), and no delivery can postdate Shutdown; whatever got
	// through must balance: sent = delivered + crash-dropped + queued,
	// and nothing was lost on a reliable network.
	if c.Lost != 0 || c.Dropped != 0 {
		t.Fatalf("reliable network lost/dropped traffic: %+v", c)
	}
}
