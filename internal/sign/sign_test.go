package sign

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	a := NewAuthority()
	s, err := a.Register("node-1")
	if err != nil {
		t.Fatal(err)
	}
	env := s.Sign([]byte("hello bank"))
	ack, err := a.Verify(env)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if ack.Signer != "node-1" || ack.Seq != env.Seq {
		t.Errorf("ack = %+v, want signer node-1 seq %d", ack, env.Seq)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	env := s.Sign([]byte("pay 10"))
	env.Payload = []byte("pay 99")
	if _, err := a.Verify(env); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload = %v, want ErrBadSignature", err)
	}
}

func TestTamperedSeqRejected(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	env := s.Sign([]byte("x"))
	env.Seq++
	if _, err := a.Verify(env); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered seq = %v, want ErrBadSignature", err)
	}
}

func TestSignerIdentityBinding(t *testing.T) {
	a := NewAuthority()
	s1, _ := a.Register("alice")
	if _, err := a.Register("bob"); err != nil {
		t.Fatal(err)
	}
	env := s1.Sign([]byte("msg"))
	env.Signer = "bob" // bob's key does not validate alice's MAC
	if _, err := a.Verify(env); !errors.Is(err, ErrBadSignature) {
		t.Errorf("reattributed envelope = %v, want ErrBadSignature", err)
	}
}

func TestUnknownSigner(t *testing.T) {
	a := NewAuthority()
	b := NewAuthority()
	s, _ := b.Register("stranger")
	if _, err := a.Verify(s.Sign([]byte("x"))); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("unknown signer = %v, want ErrUnknownSigner", err)
	}
}

func TestReplayRejected(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	env := s.Sign([]byte("once"))
	if _, err := a.Verify(env); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(env); !errors.Is(err, ErrReplay) {
		t.Errorf("replay = %v, want ErrReplay", err)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	env := s.Sign([]byte("x"))
	if err := a.Peek(env); err != nil {
		t.Fatal(err)
	}
	if err := a.Peek(env); err != nil {
		t.Fatal("second Peek should still pass")
	}
	if _, err := a.Verify(env); err != nil {
		t.Fatal("Verify after Peek should pass once")
	}
}

func TestOutOfOrderOldSeqRejected(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	e1 := s.Sign([]byte("1"))
	e2 := s.Sign([]byte("2"))
	if _, err := a.Verify(e2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(e1); !errors.Is(err, ErrReplay) {
		t.Errorf("old seq after newer = %v, want ErrReplay", err)
	}
}

func TestSignCopiesPayload(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	buf := []byte("original")
	env := s.Sign(buf)
	buf[0] = 'X'
	if _, err := a.Verify(env); err != nil {
		t.Errorf("mutating caller buffer broke envelope: %v", err)
	}
}

func TestKeyRotationInvalidatesOldEnvelopes(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	env := s.Sign([]byte("pre-rotation"))
	if _, err := a.Register("n"); err != nil { // rotate
		t.Fatal(err)
	}
	if _, err := a.Verify(env); !errors.Is(err, ErrBadSignature) {
		t.Errorf("post-rotation verify = %v, want ErrBadSignature", err)
	}
}

// Property: any single-bit flip anywhere in the payload is detected.
func TestPropertyBitFlipDetected(t *testing.T) {
	a := NewAuthority()
	s, _ := a.Register("n")
	prop := func(payload []byte, pos uint) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		env := s.Sign(payload)
		i := int(pos % uint(len(env.Payload)))
		env.Payload[i] ^= 1
		return errors.Is(a.Peek(env), ErrBadSignature)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
