// Package sign provides the small cryptographic substrate the paper's
// extended FPSS specification needs: authenticated, acknowledged
// envelopes between nodes and the bank ("All communication between the
// bank and a node is signed with acknowledgments to ensure
// communication compatibility of these messages", §4.2).
//
// The paper deliberately minimizes cryptography; a shared-key
// HMAC-SHA256 MAC is sufficient for unforgeability inside a closed
// simulation and keeps the dependency surface at the standard library.
package sign

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

var (
	// ErrBadSignature is returned when an envelope fails verification.
	ErrBadSignature = errors.New("sign: bad signature")
	// ErrUnknownSigner is returned when no key is registered for a signer.
	ErrUnknownSigner = errors.New("sign: unknown signer")
	// ErrReplay is returned when an envelope's sequence number was
	// already accepted from that signer.
	ErrReplay = errors.New("sign: replayed sequence number")
)

// Envelope is an authenticated message: the payload plus the signer's
// identity, a per-signer sequence number (replay protection / acks) and
// an HMAC-SHA256 tag over all of it.
type Envelope struct {
	Signer  string
	Seq     uint64
	Payload []byte
	MAC     [sha256.Size]byte
}

// Ack acknowledges receipt of (Signer, Seq); it is itself signed by
// the receiver in practice, but in-process we only track delivery.
type Ack struct {
	Signer string
	Seq    uint64
}

// Authority issues keys and verifies envelopes. One Authority plays
// the role of the trusted key infrastructure between nodes and the
// bank. It is safe for concurrent use.
type Authority struct {
	mu    sync.Mutex
	keys  map[string][]byte
	seqs  map[string]uint64 // highest accepted sequence per signer
	nonce func(b []byte) error
}

// NewAuthority returns an empty Authority.
func NewAuthority() *Authority {
	return &Authority{
		keys: make(map[string][]byte),
		seqs: make(map[string]uint64),
		nonce: func(b []byte) error {
			_, err := rand.Read(b)
			return err
		},
	}
}

// Register creates (or rotates) a signing key for id and returns a
// Signer bound to it.
func (a *Authority) Register(id string) (*Signer, error) {
	key := make([]byte, 32)
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.nonce(key); err != nil {
		return nil, fmt.Errorf("sign: generate key: %w", err)
	}
	a.keys[id] = key
	a.seqs[id] = 0
	return &Signer{id: id, key: key}, nil
}

// Verify checks the envelope's MAC and replay freshness. On success it
// records the sequence number and returns an Ack.
func (a *Authority) Verify(env Envelope) (Ack, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key, ok := a.keys[env.Signer]
	if !ok {
		return Ack{}, fmt.Errorf("%w: %q", ErrUnknownSigner, env.Signer)
	}
	want := mac(key, env.Signer, env.Seq, env.Payload)
	if !hmac.Equal(want[:], env.MAC[:]) {
		return Ack{}, ErrBadSignature
	}
	if env.Seq <= a.seqs[env.Signer] {
		return Ack{}, fmt.Errorf("%w: %d (last %d)", ErrReplay, env.Seq, a.seqs[env.Signer])
	}
	a.seqs[env.Signer] = env.Seq
	return Ack{Signer: env.Signer, Seq: env.Seq}, nil
}

// Peek verifies the MAC only, without consuming the sequence number.
// Useful for idempotent re-checks in tests.
func (a *Authority) Peek(env Envelope) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	key, ok := a.keys[env.Signer]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSigner, env.Signer)
	}
	want := mac(key, env.Signer, env.Seq, env.Payload)
	if !hmac.Equal(want[:], env.MAC[:]) {
		return ErrBadSignature
	}
	return nil
}

// Signer signs payloads on behalf of one identity. It is safe for
// concurrent use.
type Signer struct {
	mu  sync.Mutex
	id  string
	key []byte
	seq uint64
}

// ID returns the signer's identity string.
func (s *Signer) ID() string { return s.id }

// Sign wraps payload in a fresh authenticated envelope.
func (s *Signer) Sign(payload []byte) Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	p := make([]byte, len(payload))
	copy(p, payload)
	return Envelope{
		Signer:  s.id,
		Seq:     s.seq,
		Payload: p,
		MAC:     mac(s.key, s.id, s.seq, p),
	}
}

func mac(key []byte, signer string, seq uint64, payload []byte) [sha256.Size]byte {
	h := hmac.New(sha256.New, key)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	h.Write([]byte(signer))
	h.Write([]byte{0})
	h.Write(seqb[:])
	h.Write(payload)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}
