package sign

import "testing"

func BenchmarkSign(b *testing.B) {
	a := NewAuthority()
	s, err := a.Register("bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(payload)
	}
}

func BenchmarkSignVerify(b *testing.B) {
	a := NewAuthority()
	s, err := a.Register("bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := s.Sign(payload)
		if _, err := a.Verify(env); err != nil {
			b.Fatal(err)
		}
	}
}
