package spec

import "fmt"

// BuildExtendedFPSS formalizes the paper's extended FPSS specification
// as a state machine, as §4.1 suggests ("This specification could be
// formalized with a state machine"). The machine is a per-node view of
// one pass through the protocol; actions carry their §3.4
// classification, which is what the decomposition analysis (E7) and
// the sub-strategy split (r, p, c) consume.
func BuildExtendedFPSS() (*Machine, *Specification, error) {
	m := NewMachine()

	states := []struct {
		name    State
		initial bool
	}{
		{"idle", true},
		{"cost-declared", false},
		{"data1-complete", false},
		{"update-received", false},
		{"copies-forwarded", false},
		{"tables-recomputed", false},
		{"mirrors-current", false},
		{"state-reported", false},
		{"green-lit", false},
		{"payments-reported", false},
		{"settled", false},
	}
	for _, s := range states {
		m.AddState(s.name, s.initial)
	}

	actions := []Action{
		// First construction phase.
		{Name: "declare-transit-cost", Kind: InfoRevelation}, // DATA1 seed
		{Name: "relay-cost-announcements", Kind: MessagePassing},
		// Second construction phase ([PRINC1]/[PRINC2]).
		{Name: "receive-neighbor-update", Kind: Internal},
		{Name: "forward-copies-to-checkers", Kind: MessagePassing},
		{Name: "recompute-and-advertise-tables", Kind: Computation},
		// Checker role ([CHECK1]/[CHECK2]).
		{Name: "mirror-principal-computation", Kind: Computation},
		// Checkpoint ([BANK1]/[BANK2]).
		{Name: "report-state-hashes", Kind: Computation},
		{Name: "await-green-light", Kind: Internal},
		// Execution phase.
		{Name: "report-payments", Kind: Computation},
		{Name: "settle", Kind: Internal},
	}
	for _, a := range actions {
		if err := m.AddAction(a); err != nil {
			return nil, nil, fmt.Errorf("spec: build FPSS model: %w", err)
		}
	}

	transitions := []Transition{
		{From: "idle", Action: "declare-transit-cost", To: "cost-declared"},
		{From: "cost-declared", Action: "relay-cost-announcements", To: "data1-complete"},
		{From: "data1-complete", Action: "receive-neighbor-update", To: "update-received"},
		{From: "update-received", Action: "forward-copies-to-checkers", To: "copies-forwarded"},
		{From: "copies-forwarded", Action: "recompute-and-advertise-tables", To: "tables-recomputed"},
		{From: "tables-recomputed", Action: "mirror-principal-computation", To: "mirrors-current"},
		{From: "mirrors-current", Action: "report-state-hashes", To: "state-reported"},
		{From: "state-reported", Action: "await-green-light", To: "green-lit"},
		{From: "green-lit", Action: "report-payments", To: "payments-reported"},
		{From: "payments-reported", Action: "settle", To: "settled"},
	}
	for _, tr := range transitions {
		if err := m.AddTransition(tr); err != nil {
			return nil, nil, fmt.Errorf("spec: build FPSS model: %w", err)
		}
	}

	sp := NewSpecification(m)
	suggested := map[State]string{
		"idle":              "declare-transit-cost",
		"cost-declared":     "relay-cost-announcements",
		"data1-complete":    "receive-neighbor-update",
		"update-received":   "forward-copies-to-checkers",
		"copies-forwarded":  "recompute-and-advertise-tables",
		"tables-recomputed": "mirror-principal-computation",
		"mirrors-current":   "report-state-hashes",
		"state-reported":    "await-green-light",
		"green-lit":         "report-payments",
		"payments-reported": "settle",
	}
	for s, a := range suggested {
		if err := sp.Suggest(s, a); err != nil {
			return nil, nil, fmt.Errorf("spec: build FPSS model: %w", err)
		}
	}
	if err := sp.Validate(); err != nil {
		return nil, nil, fmt.Errorf("spec: FPSS model invalid: %w", err)
	}
	return m, sp, nil
}

// ExtendedFPSSPhases returns the checkpointed phase structure of the
// extended specification with per-phase deviation surfaces: each
// externally visible action admits drop / change / spoof alternatives
// (§4.3's manipulation triple).
func ExtendedFPSSPhases(nodes int) []Phase {
	if nodes < 1 {
		nodes = 1
	}
	return []Phase{
		// Phase 1: one declaration plus up to n−1 relays per node.
		{Name: "construction-1", DeviationPoints: nodes, Alternatives: 3},
		// Phase 2: forwards, recomputations and advertisements.
		{Name: "construction-2", DeviationPoints: 3 * nodes, Alternatives: 3},
		// Execution: payment reporting and packet forwarding.
		{Name: "execution", DeviationPoints: 2 * nodes, Alternatives: 3},
	}
}
