// Package spec implements the paper's specification language (§3.1,
// §3.3–§3.4): state machines with internal and external actions,
// suggested specifications mapping states to actions, the three-way
// classification of external actions (information revelation, message
// passing, computation), and phase decomposition with checkpoints
// (§3.9).
//
// The phase-decomposition calculator quantifies the paper's claim that
// splitting a mechanism into certified phases "can allow an
// exponential reduction in the number of joint manipulation actions
// that must be checked in a faithfulness proof" — experiment E7.
package spec

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// ActionKind classifies an action per §3.1 and §3.4.
type ActionKind int

const (
	// Internal actions generate no message (§3.1).
	Internal ActionKind = iota + 1
	// InfoRevelation actions only reveal consistent (perhaps partial,
	// perhaps untruthful) information about the node's type (Def. 2).
	InfoRevelation
	// MessagePassing actions only forward a received message (Def. 3).
	MessagePassing
	// Computation actions can affect the outcome rule beyond
	// forwarding or revelation (Def. 4).
	Computation
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case Internal:
		return "internal"
	case InfoRevelation:
		return "information-revelation"
	case MessagePassing:
		return "message-passing"
	case Computation:
		return "computation"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// External reports whether actions of this kind emit messages.
func (k ActionKind) External() bool { return k != Internal }

// State is a state label in a node's state machine.
type State string

// Action is a named, classified action.
type Action struct {
	Name string
	Kind ActionKind
}

// Transition is an element of the transition relation T ⊆ L × A × L.
type Transition struct {
	From   State
	Action string
	To     State
}

// Machine is the paper's SM = (L, A = {IA, EA}, T).
type Machine struct {
	states      map[State]bool
	initial     map[State]bool
	actions     map[string]Action
	transitions []Transition
}

// NewMachine returns an empty state machine.
func NewMachine() *Machine {
	return &Machine{
		states:  make(map[State]bool),
		initial: make(map[State]bool),
		actions: make(map[string]Action),
	}
}

// Errors returned by Machine and Specification validation.
var (
	ErrUnknownState     = errors.New("spec: unknown state")
	ErrUnknownAction    = errors.New("spec: unknown action")
	ErrDuplicateAction  = errors.New("spec: duplicate action")
	ErrNoInitialState   = errors.New("spec: no initial state")
	ErrIncompleteSpec   = errors.New("spec: state without suggested action")
	ErrNondeterministic = errors.New("spec: nondeterministic transition for state/action")
)

// AddState declares a state; initial marks it as a start state.
func (m *Machine) AddState(s State, isInitial bool) {
	m.states[s] = true
	if isInitial {
		m.initial[s] = true
	}
}

// AddAction declares an action.
func (m *Machine) AddAction(a Action) error {
	if _, ok := m.actions[a.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateAction, a.Name)
	}
	m.actions[a.Name] = a
	return nil
}

// AddTransition declares (from, action, to) ∈ T.
func (m *Machine) AddTransition(tr Transition) error {
	if !m.states[tr.From] {
		return fmt.Errorf("%w: %q", ErrUnknownState, tr.From)
	}
	if !m.states[tr.To] {
		return fmt.Errorf("%w: %q", ErrUnknownState, tr.To)
	}
	if _, ok := m.actions[tr.Action]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAction, tr.Action)
	}
	for _, t := range m.transitions {
		if t.From == tr.From && t.Action == tr.Action && t.To != tr.To {
			return fmt.Errorf("%w: %q/%q", ErrNondeterministic, tr.From, tr.Action)
		}
	}
	m.transitions = append(m.transitions, tr)
	return nil
}

// States returns the sorted state set.
func (m *Machine) States() []State {
	out := make([]State, 0, len(m.states))
	for s := range m.states {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Actions returns the sorted action set.
func (m *Machine) Actions() []Action {
	out := make([]Action, 0, len(m.actions))
	for _, a := range m.actions {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Action returns the named action.
func (m *Machine) Action(name string) (Action, bool) {
	a, ok := m.actions[name]
	return a, ok
}

// Next returns the successor of state s under action a, if defined.
func (m *Machine) Next(s State, action string) (State, bool) {
	for _, t := range m.transitions {
		if t.From == s && t.Action == action {
			return t.To, true
		}
	}
	return "", false
}

// Validate checks structural well-formedness.
func (m *Machine) Validate() error {
	if len(m.initial) == 0 {
		return ErrNoInitialState
	}
	return nil
}

// Specification is the paper's s : L → A — the suggested action for
// every state (§3.1). It is defined relative to a Machine.
type Specification struct {
	machine *Machine
	choice  map[State]string
}

// NewSpecification returns an empty specification over m.
func NewSpecification(m *Machine) *Specification {
	return &Specification{machine: m, choice: make(map[State]string)}
}

// Suggest sets the suggested action for state s.
func (sp *Specification) Suggest(s State, action string) error {
	if !sp.machine.states[s] {
		return fmt.Errorf("%w: %q", ErrUnknownState, s)
	}
	if _, ok := sp.machine.actions[action]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAction, action)
	}
	sp.choice[s] = action
	return nil
}

// ActionFor returns the suggested action in state s.
func (sp *Specification) ActionFor(s State) (Action, bool) {
	name, ok := sp.choice[s]
	if !ok {
		return Action{}, false
	}
	a, ok := sp.machine.actions[name]
	return a, ok
}

// Validate checks that every non-terminal state has a suggested action
// and that the machine itself is valid. Terminal states (no outgoing
// transitions) may omit an action.
func (sp *Specification) Validate() error {
	if err := sp.machine.Validate(); err != nil {
		return err
	}
	outgoing := make(map[State]bool)
	for _, t := range sp.machine.transitions {
		outgoing[t.From] = true
	}
	for s := range sp.machine.states {
		if !outgoing[s] {
			continue
		}
		name, ok := sp.choice[s]
		if !ok {
			return fmt.Errorf("%w: %q", ErrIncompleteSpec, s)
		}
		if _, defined := sp.machine.Next(s, name); !defined {
			return fmt.Errorf("%w: suggested action %q undefined in state %q", ErrUnknownAction, name, s)
		}
	}
	return nil
}

// Trace runs the specification from the given initial state until a
// state with no suggested transition, returning the action sequence.
// maxSteps bounds non-terminating specs.
func (sp *Specification) Trace(start State, maxSteps int) ([]Action, error) {
	if !sp.machine.initial[start] {
		return nil, fmt.Errorf("%w: %q is not initial", ErrUnknownState, start)
	}
	var out []Action
	s := start
	for step := 0; step < maxSteps; step++ {
		name, ok := sp.choice[s]
		if !ok {
			return out, nil
		}
		next, ok := sp.machine.Next(s, name)
		if !ok {
			return out, nil
		}
		out = append(out, sp.machine.actions[name])
		s = next
	}
	return out, fmt.Errorf("spec: trace exceeded %d steps", maxSteps)
}

// SubStrategies splits the suggested specification into the paper's
// (r, p, c) decomposition: the states at which each sub-strategy is
// responsible for the external action (§3.3).
func (sp *Specification) SubStrategies() (revelation, passing, computation []State) {
	for s, name := range sp.choice {
		switch sp.machine.actions[name].Kind {
		case InfoRevelation:
			revelation = append(revelation, s)
		case MessagePassing:
			passing = append(passing, s)
		case Computation:
			computation = append(computation, s)
		}
	}
	sortStates(revelation)
	sortStates(passing)
	sortStates(computation)
	return revelation, passing, computation
}

func sortStates(ss []State) {
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
}

// Phase is a named set of deviation points (external actions a node
// could manipulate) certified together at a checkpoint (§3.9).
type Phase struct {
	Name string
	// DeviationPoints is the number of externally visible actions in
	// this phase at which a node can deviate.
	DeviationPoints int
	// Alternatives is the number of alternative behaviors per point
	// (e.g. drop / change / spoof = 3, plus faithful).
	Alternatives int
}

// JointDeviations returns the number of joint manipulation
// combinations a faithfulness proof must rule out for one phase:
// (Alternatives+1)^DeviationPoints − 1 (every point chooses faithful
// or one of the alternatives; all-faithful excluded).
func (p Phase) JointDeviations() *big.Int {
	base := big.NewInt(int64(p.Alternatives + 1))
	e := new(big.Int).Exp(base, big.NewInt(int64(p.DeviationPoints)), nil)
	return e.Sub(e, big.NewInt(1))
}

// DecompositionSavings quantifies §3.9's "exponential reduction":
// without checkpoints every combination across all phases must be
// checked jointly (product space); with certified phases each phase is
// checked in isolation (sum). Returns (monolithic, phased) counts.
func DecompositionSavings(phases []Phase) (monolithic, phased *big.Int) {
	monolithic = big.NewInt(1)
	phased = big.NewInt(0)
	for _, p := range phases {
		perPhase := new(big.Int).Add(p.JointDeviations(), big.NewInt(1)) // + all-faithful
		monolithic.Mul(monolithic, perPhase)
		phased.Add(phased, p.JointDeviations())
	}
	monolithic.Sub(monolithic, big.NewInt(1))
	return monolithic, phased
}
