package spec

import (
	"errors"
	"math/big"
	"testing"
)

// buildToyMachine models a tiny mechanism participant: reveal a value,
// forward a neighbor's message, compute a result, stop.
func buildToyMachine(t *testing.T) *Machine {
	t.Helper()
	m := NewMachine()
	m.AddState("start", true)
	m.AddState("revealed", false)
	m.AddState("forwarded", false)
	m.AddState("done", false)
	actions := []Action{
		{Name: "reveal-cost", Kind: InfoRevelation},
		{Name: "forward-update", Kind: MessagePassing},
		{Name: "compute-lcp", Kind: Computation},
		{Name: "note", Kind: Internal},
	}
	for _, a := range actions {
		if err := m.AddAction(a); err != nil {
			t.Fatal(err)
		}
	}
	trs := []Transition{
		{From: "start", Action: "reveal-cost", To: "revealed"},
		{From: "revealed", Action: "forward-update", To: "forwarded"},
		{From: "forwarded", Action: "compute-lcp", To: "done"},
	}
	for _, tr := range trs {
		if err := m.AddTransition(tr); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func buildToySpec(t *testing.T) *Specification {
	t.Helper()
	m := buildToyMachine(t)
	sp := NewSpecification(m)
	for s, a := range map[State]string{
		"start":     "reveal-cost",
		"revealed":  "forward-update",
		"forwarded": "compute-lcp",
	} {
		if err := sp.Suggest(s, a); err != nil {
			t.Fatal(err)
		}
	}
	return sp
}

func TestActionKindString(t *testing.T) {
	tests := []struct {
		k    ActionKind
		want string
	}{
		{Internal, "internal"},
		{InfoRevelation, "information-revelation"},
		{MessagePassing, "message-passing"},
		{Computation, "computation"},
		{ActionKind(99), "ActionKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.k), got, tt.want)
		}
	}
	if Internal.External() {
		t.Error("Internal should not be external")
	}
	if !Computation.External() || !MessagePassing.External() || !InfoRevelation.External() {
		t.Error("non-internal kinds should be external")
	}
}

func TestMachineConstruction(t *testing.T) {
	m := buildToyMachine(t)
	if got := len(m.States()); got != 4 {
		t.Errorf("states = %d, want 4", got)
	}
	if got := len(m.Actions()); got != 4 {
		t.Errorf("actions = %d, want 4", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if _, ok := m.Action("reveal-cost"); !ok {
		t.Error("Action lookup failed")
	}
	next, ok := m.Next("start", "reveal-cost")
	if !ok || next != "revealed" {
		t.Errorf("Next = %q,%v", next, ok)
	}
	if _, ok := m.Next("start", "compute-lcp"); ok {
		t.Error("undefined transition should not resolve")
	}
}

func TestMachineValidationErrors(t *testing.T) {
	m := NewMachine()
	if err := m.Validate(); !errors.Is(err, ErrNoInitialState) {
		t.Errorf("Validate = %v, want ErrNoInitialState", err)
	}
	m.AddState("a", true)
	if err := m.AddAction(Action{Name: "x", Kind: Internal}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddAction(Action{Name: "x", Kind: Computation}); !errors.Is(err, ErrDuplicateAction) {
		t.Errorf("duplicate action = %v, want ErrDuplicateAction", err)
	}
	if err := m.AddTransition(Transition{From: "nope", Action: "x", To: "a"}); !errors.Is(err, ErrUnknownState) {
		t.Errorf("unknown from = %v", err)
	}
	if err := m.AddTransition(Transition{From: "a", Action: "nope", To: "a"}); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("unknown action = %v", err)
	}
	m.AddState("b", false)
	if err := m.AddTransition(Transition{From: "a", Action: "x", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransition(Transition{From: "a", Action: "x", To: "a"}); !errors.Is(err, ErrNondeterministic) {
		t.Errorf("nondeterministic = %v, want ErrNondeterministic", err)
	}
	// Re-adding the identical transition is fine.
	if err := m.AddTransition(Transition{From: "a", Action: "x", To: "b"}); err != nil {
		t.Errorf("idempotent transition = %v", err)
	}
}

func TestSpecificationValidate(t *testing.T) {
	sp := buildToySpec(t)
	if err := sp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Removing one suggestion breaks completeness.
	m := buildToyMachine(t)
	incomplete := NewSpecification(m)
	if err := incomplete.Suggest("start", "reveal-cost"); err != nil {
		t.Fatal(err)
	}
	if err := incomplete.Validate(); !errors.Is(err, ErrIncompleteSpec) {
		t.Errorf("incomplete = %v, want ErrIncompleteSpec", err)
	}
}

func TestSuggestValidation(t *testing.T) {
	sp := buildToySpec(t)
	if err := sp.Suggest("nope", "reveal-cost"); !errors.Is(err, ErrUnknownState) {
		t.Errorf("unknown state = %v", err)
	}
	if err := sp.Suggest("start", "nope"); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("unknown action = %v", err)
	}
}

func TestSpecSuggestedMismatchCaught(t *testing.T) {
	m := buildToyMachine(t)
	sp := NewSpecification(m)
	// Suggest an action with no transition from that state.
	for s, a := range map[State]string{
		"start":     "compute-lcp", // no transition start--compute-lcp
		"revealed":  "forward-update",
		"forwarded": "compute-lcp",
	} {
		if err := sp.Suggest(s, a); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Validate(); !errors.Is(err, ErrUnknownAction) {
		t.Errorf("mismatched suggestion = %v, want ErrUnknownAction", err)
	}
}

func TestTrace(t *testing.T) {
	sp := buildToySpec(t)
	trace, err := sp.Trace("start", 10)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []ActionKind{InfoRevelation, MessagePassing, Computation}
	if len(trace) != len(wantKinds) {
		t.Fatalf("trace = %v", trace)
	}
	for i, a := range trace {
		if a.Kind != wantKinds[i] {
			t.Errorf("trace[%d].Kind = %v, want %v", i, a.Kind, wantKinds[i])
		}
	}
	if _, err := sp.Trace("revealed", 10); err == nil {
		t.Error("non-initial start should error")
	}
}

func TestTraceStepBudget(t *testing.T) {
	m := NewMachine()
	m.AddState("loop", true)
	if err := m.AddAction(Action{Name: "spin", Kind: Internal}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransition(Transition{From: "loop", Action: "spin", To: "loop"}); err != nil {
		t.Fatal(err)
	}
	sp := NewSpecification(m)
	if err := sp.Suggest("loop", "spin"); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Trace("loop", 5); err == nil {
		t.Error("infinite spec should exhaust step budget")
	}
}

func TestSubStrategies(t *testing.T) {
	sp := buildToySpec(t)
	r, p, c := sp.SubStrategies()
	if len(r) != 1 || r[0] != "start" {
		t.Errorf("revelation states = %v", r)
	}
	if len(p) != 1 || p[0] != "revealed" {
		t.Errorf("passing states = %v", p)
	}
	if len(c) != 1 || c[0] != "forwarded" {
		t.Errorf("computation states = %v", c)
	}
}

func TestPhaseJointDeviations(t *testing.T) {
	p := Phase{Name: "x", DeviationPoints: 3, Alternatives: 3}
	// (3+1)^3 - 1 = 63
	if got := p.JointDeviations(); got.Cmp(big.NewInt(63)) != 0 {
		t.Errorf("JointDeviations = %v, want 63", got)
	}
	zero := Phase{Name: "empty"}
	if got := zero.JointDeviations(); got.Sign() != 0 {
		t.Errorf("empty phase deviations = %v, want 0", got)
	}
}

func TestDecompositionSavingsExponentialGap(t *testing.T) {
	phases := []Phase{
		{Name: "construction-1", DeviationPoints: 4, Alternatives: 3},
		{Name: "construction-2", DeviationPoints: 4, Alternatives: 3},
		{Name: "execution", DeviationPoints: 4, Alternatives: 3},
	}
	mono, phased := DecompositionSavings(phases)
	// monolithic = 256^3 - 1; phased = 3 * 255.
	wantMono := new(big.Int).Sub(new(big.Int).Exp(big.NewInt(256), big.NewInt(3), nil), big.NewInt(1))
	if mono.Cmp(wantMono) != 0 {
		t.Errorf("monolithic = %v, want %v", mono, wantMono)
	}
	if phased.Cmp(big.NewInt(765)) != 0 {
		t.Errorf("phased = %v, want 765", phased)
	}
	if mono.Cmp(phased) <= 0 {
		t.Error("decomposition must strictly reduce the joint space")
	}
}
