package spec

import (
	"math/big"
	"testing"
)

func TestBuildExtendedFPSSValid(t *testing.T) {
	m, sp, err := BuildExtendedFPSS()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("machine invalid: %v", err)
	}
	if err := sp.Validate(); err != nil {
		t.Errorf("spec invalid: %v", err)
	}
}

func TestExtendedFPSSTraceCoversAllClasses(t *testing.T) {
	_, sp, err := BuildExtendedFPSS()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := sp.Trace("idle", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 10 {
		t.Fatalf("trace length = %d, want 10", len(trace))
	}
	seen := map[ActionKind]bool{}
	for _, a := range trace {
		seen[a.Kind] = true
	}
	for _, k := range []ActionKind{InfoRevelation, MessagePassing, Computation, Internal} {
		if !seen[k] {
			t.Errorf("trace misses action kind %v", k)
		}
	}
}

func TestExtendedFPSSSubStrategies(t *testing.T) {
	_, sp, err := BuildExtendedFPSS()
	if err != nil {
		t.Fatal(err)
	}
	r, p, c := sp.SubStrategies()
	if len(r) != 1 {
		t.Errorf("revelation states = %v, want exactly the cost declaration", r)
	}
	if len(p) != 2 {
		t.Errorf("passing states = %v, want relay + forward", p)
	}
	if len(c) != 4 {
		t.Errorf("computation states = %v, want recompute/mirror/report/payments", c)
	}
}

func TestExtendedFPSSPhases(t *testing.T) {
	phases := ExtendedFPSSPhases(6)
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	mono, phased := DecompositionSavings(phases)
	if mono.Cmp(phased) <= 0 {
		t.Error("decomposition should strictly reduce the space")
	}
	// The reduction is astronomically large even at n=6: the
	// monolithic space exceeds 4^36.
	wantFloor := new(big.Int).Exp(big.NewInt(4), big.NewInt(30), nil)
	if mono.Cmp(wantFloor) < 0 {
		t.Errorf("monolithic space %v unexpectedly small", mono)
	}
	// Degenerate input is clamped.
	if got := ExtendedFPSSPhases(0); got[0].DeviationPoints != 1 {
		t.Errorf("clamping failed: %+v", got[0])
	}
}
