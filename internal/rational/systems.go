package rational

import (
	"fmt"
	"sync"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/settle"
	"repro/internal/sim"
)

// faithfulStateReport aliases the bank's report type for hook literals.
type faithfulStateReport = bank.StateReport

// Params are the shared economic parameters of a scenario.
type Params struct {
	Traffic            fpss.Traffic
	DeliveryValue      int64
	UndeliveredPenalty int64
	// Scheme selects the plain-FPSS pricing rule (VCG by default).
	Scheme fpss.PricingScheme
	// NonProgressPenalty / Epsilon apply to the faithful protocol.
	NonProgressPenalty int64
	Epsilon            int64
	// CheckerLimit caps checkers per principal in the faithful
	// protocol (0 = all neighbors; ablation E11).
	CheckerLimit int
	// Loss installs a seeded per-link drop model on every protocol run
	// (zero value = reliable network). An enabled model also unlocks
	// the loss-exploiting deviation family in the catalogue.
	Loss sim.LossModel
	// Settle shards the trusted bank and clears each execution phase
	// through the crash-tolerant 2PC settlement (zero value = the
	// classic singleton bank, axis off). An enabled axis also unlocks
	// the shard-window deviation family in the catalogue.
	Settle settle.Options
}

// DefaultParams returns sane experiment parameters for a graph.
func DefaultParams(g *graph.Graph) Params {
	return Params{
		Traffic:            fpss.AllToAllTraffic(g.N(), 1),
		DeliveryValue:      10_000,
		UndeliveredPenalty: 10_000,
		Scheme:             fpss.SchemeVCG,
		NonProgressPenalty: 1_000_000,
		Epsilon:            1,
	}
}

// scenario is the truthful per-scenario state shared read-only by
// every (node, deviation) run on one System: the deviation catalogue,
// the node list, the sorted flow order, the true-cost table, and (for
// the faithful protocol) the topology/checker views. It is computed
// once, lazily, and must never be mutated afterwards — that is what
// makes a System's Run safe for the concurrent plays that
// core.CheckFaithfulness(..., core.Workers(k)) fans out.
type scenario struct {
	once      sync.Once
	cat       []core.Deviation
	nodes     []core.NodeID
	flows     [][2]graph.NodeID
	trueCosts fpss.CostTable
	neighbors map[graph.NodeID][]graph.NodeID // faithful only
	checkers  map[graph.NodeID][]graph.NodeID // faithful only
}

func (s *scenario) init(g *graph.Graph, p Params, forFaithful bool) {
	s.once.Do(func() {
		n := g.N()
		cat := Catalogue(forFaithful)
		if p.Loss.Enabled() {
			// Loss-exploiting deviations only make sense when there is
			// real loss to hide behind; a reliable scenario keeps its
			// pre-loss catalogue byte-identical.
			cat = append(cat, LossCatalogue(forFaithful)...)
		}
		if p.Settle.Enabled() {
			// Shard-window deviations need a sharded settlement to
			// attack; a singleton-bank scenario likewise keeps its
			// catalogue byte-identical.
			cat = append(cat, ShardCatalogue(forFaithful)...)
		}
		s.cat = make([]core.Deviation, 0, len(cat))
		for _, d := range cat {
			s.cat = append(s.cat, d)
		}
		s.nodes = make([]core.NodeID, n)
		s.trueCosts = make(fpss.CostTable, n)
		for i := 0; i < n; i++ {
			s.nodes[i] = core.NodeID(i)
			s.trueCosts[graph.NodeID(i)] = g.Cost(graph.NodeID(i))
		}
		s.flows = p.Traffic.Flows()
		if forFaithful {
			s.neighbors, s.checkers = faithful.Topology(g, p.CheckerLimit)
		}
	})
}

// Systems builds the plain and faithful System pair for one scenario:
// the same graph and economic parameters played against the original
// FPSS protocol and against the paper's extended specification. This
// is the constructor the scenario layer compiles into — prefer it to
// struct literals so both sides are guaranteed to share one setup.
func Systems(g *graph.Graph, p Params) (*PlainSystem, *FaithfulSystem) {
	return &PlainSystem{Graph: g, Params: p}, &FaithfulSystem{Graph: g, Params: p}
}

// PlainSystem plays deviations against the *original* FPSS protocol:
// obedient network assumed by FPSS, no checkers, accounting that
// trusts reported payments. It implements core.System; Run is safe
// for concurrent calls (scenario state is read-only once built), so
// it composes with core.Workers.
type PlainSystem struct {
	Graph  *graph.Graph
	Params Params

	scen scenario

	// seed, when set, supplies the honest converged construction tables
	// centrally so Snapshot can skip the protocol simulation. See
	// SeedHonest.
	seed *fpss.Solution

	// Truthful snapshot (stateful.go), built once on first Snapshot.
	snapOnce sync.Once
	snap     *plainState
	snapErr  error
}

// SeedHonest supplies the honest converged construction tables —
// fpss.ComputeCentral output for this system's graph — letting the
// truthful Snapshot skip the protocol simulation. The central solution
// is byte-identical to the converged protocol tables (pinned by the
// fpss differential tests), so seeded and simulated snapshots are
// indistinguishable. Must be called before the first Snapshot; ignored
// under an enabled loss model, where the simulation's convergence
// bookkeeping stays authoritative. The solution must be immutable.
func (s *PlainSystem) SeedHonest(sol *fpss.Solution) { s.seed = sol }

var _ core.System = (*PlainSystem)(nil)

// Nodes implements core.System.
func (s *PlainSystem) Nodes() []core.NodeID {
	s.scen.init(s.Graph, s.Params, false)
	return s.scen.nodes
}

// Deviations implements core.System. The returned slice is shared and
// read-only.
func (s *PlainSystem) Deviations(core.NodeID) []core.Deviation {
	s.scen.init(s.Graph, s.Params, false)
	return s.scen.cat
}

// Run implements core.System.
func (s *PlainSystem) Run(deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	s.scen.init(s.Graph, s.Params, false)
	var d *Deviation
	if dev != nil && deviator >= 0 {
		var ok bool
		if d, ok = dev.(*Deviation); !ok {
			return core.Outcome{}, fmt.Errorf("rational: foreign deviation %q", dev.Name())
		}
	}
	return s.play(deviator, d, nil)
}

// play is the shared body of Run and the arena-backed Play: a nil
// arena allocates fresh (legacy Run semantics), a worker arena reuses
// its network and per-play maps.
func (s *PlainSystem) play(deviator core.NodeID, d *Deviation, ar *playArena) (core.Outcome, error) {
	var strategies map[graph.NodeID]*fpss.Strategy
	var reportHooks map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList
	if d != nil && deviator >= 0 {
		node := graph.NodeID(deviator)
		ctx := Ctx{Graph: s.Graph, Node: node}
		if d.protocol != nil {
			strategies = ar.plainStrategies()
			strategies[node] = d.protocol(ctx)
		}
		if d.reportPayment != nil {
			reportHooks = ar.reportHooks()
			reportHooks[node] = d.reportPayment
		}
	}
	res, err := fpss.Run(fpss.Config{Graph: s.Graph, Strategies: strategies, Loss: s.Params.Loss, Net: ar.network()})
	if err != nil {
		return core.Outcome{}, fmt.Errorf("plain run: %w", err)
	}
	routing := ar.routingViews(len(res.Nodes))
	pricing := ar.pricingViews(len(res.Nodes))
	declared := ar.declaredCosts(len(res.Nodes))
	for id, node := range res.Nodes {
		// Quiescent-network views: Execute treats tables as read-only.
		routing[id] = node.RoutingView()
		pricing[id] = node.PricingView()
		declared[id] = node.DeclaredCost()
	}
	exec, err := fpss.Execute(routing, pricing, fpss.ExecConfig{
		TrueCosts:          s.scen.trueCosts,
		DeclaredCosts:      declared,
		Traffic:            s.Params.Traffic,
		Flows:              s.scen.flows,
		DeliveryValue:      s.Params.DeliveryValue,
		UndeliveredPenalty: s.Params.UndeliveredPenalty,
		Scheme:             s.Params.Scheme,
		ReportPayment:      reportHooks,
	})
	if err != nil {
		return core.Outcome{}, fmt.Errorf("plain execute: %w", err)
	}
	out := core.Outcome{Utilities: ar.outcome(len(exec.Utilities)), Completed: true}
	for id, u := range exec.Utilities {
		out.Utilities[core.NodeID(id)] = u
	}
	if d != nil && deviator >= 0 && d.settle != nil && s.Params.Settle.Enabled() {
		s.applySettlement(&out, settleBatch(exec), deviator, d)
	}
	return out, nil
}

// FaithfulSystem plays deviations against the paper's extended FPSS
// specification. It implements core.System; like PlainSystem, Run is
// safe for concurrent calls.
type FaithfulSystem struct {
	Graph  *graph.Graph
	Params Params

	scen scenario

	// seed, when set, supplies the honest converged construction tables
	// centrally so Snapshot can skip the protocol simulation. See
	// SeedHonest.
	seed *fpss.Solution

	// Truthful snapshot (stateful.go), built once on first Snapshot.
	snapOnce sync.Once
	snap     *faithfulState
	snapErr  error
}

// SeedHonest supplies the honest converged construction tables so the
// truthful Snapshot can synthesize the certified post-checkpoint state
// directly: an honest run always passes the bank checkpoint, and its
// outcome is exactly the execution phase plus a clean audit over these
// tables. Must be called before the first Snapshot; ignored under an
// enabled loss model (loss attribution and retry accounting belong to
// the simulation). The solution must be immutable.
func (s *FaithfulSystem) SeedHonest(sol *fpss.Solution) { s.seed = sol }

var _ core.System = (*FaithfulSystem)(nil)

// Nodes implements core.System.
func (s *FaithfulSystem) Nodes() []core.NodeID {
	s.scen.init(s.Graph, s.Params, true)
	return s.scen.nodes
}

// Deviations implements core.System. The returned slice is shared and
// read-only.
func (s *FaithfulSystem) Deviations(core.NodeID) []core.Deviation {
	s.scen.init(s.Graph, s.Params, true)
	return s.scen.cat
}

// Run implements core.System.
func (s *FaithfulSystem) Run(deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	s.scen.init(s.Graph, s.Params, true)
	var d *Deviation
	if dev != nil && deviator >= 0 {
		var ok bool
		if d, ok = dev.(*Deviation); !ok {
			return core.Outcome{}, fmt.Errorf("rational: foreign deviation %q", dev.Name())
		}
	}
	return s.play(deviator, d, nil)
}

// play is the shared body of Run and the arena-backed Play (see
// PlainSystem.play).
func (s *FaithfulSystem) play(deviator core.NodeID, d *Deviation, ar *playArena) (core.Outcome, error) {
	var strategies map[graph.NodeID]*faithful.Strategy
	if d != nil && deviator >= 0 {
		node := graph.NodeID(deviator)
		ctx := Ctx{Graph: s.Graph, Node: node}
		st := &faithful.Strategy{}
		if d.checker != nil {
			if built := d.checker(ctx); built != nil {
				st = built
			}
		}
		if d.protocol != nil {
			if p := d.protocol(ctx); p != nil {
				st.Protocol = *p
			}
		}
		if d.reportPayment != nil {
			st.ReportPayment = d.reportPayment
		}
		strategies = ar.faithfulStrategies()
		strategies[node] = st
	}
	res, err := faithful.Run(s.runConfig(strategies, ar.network(), ar.auditBank()))
	if err != nil {
		return core.Outcome{}, fmt.Errorf("faithful run: %w", err)
	}
	out := outcomeOf(res, ar.outcome(len(res.Utilities)))
	// Settlement clears only what the execution phase produced: a run
	// the bank refused to green-light settles nothing.
	if d != nil && deviator >= 0 && d.settle != nil && s.Params.Settle.Enabled() && res.Exec != nil {
		if err := s.applySettlement(&out, settleBatch(res.Exec), deviator, d); err != nil {
			return core.Outcome{}, err
		}
	}
	return out, nil
}
