package rational

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
)

// faithfulStateReport aliases the bank's report type for hook literals.
type faithfulStateReport = bank.StateReport

// Params are the shared economic parameters of a scenario.
type Params struct {
	Traffic            fpss.Traffic
	DeliveryValue      int64
	UndeliveredPenalty int64
	// Scheme selects the plain-FPSS pricing rule (VCG by default).
	Scheme fpss.PricingScheme
	// NonProgressPenalty / Epsilon apply to the faithful protocol.
	NonProgressPenalty int64
	Epsilon            int64
	// CheckerLimit caps checkers per principal in the faithful
	// protocol (0 = all neighbors; ablation E11).
	CheckerLimit int
}

// DefaultParams returns sane experiment parameters for a graph.
func DefaultParams(g *graph.Graph) Params {
	return Params{
		Traffic:            fpss.AllToAllTraffic(g.N(), 1),
		DeliveryValue:      10_000,
		UndeliveredPenalty: 10_000,
		Scheme:             fpss.SchemeVCG,
		NonProgressPenalty: 1_000_000,
		Epsilon:            1,
	}
}

// PlainSystem plays deviations against the *original* FPSS protocol:
// obedient network assumed by FPSS, no checkers, accounting that
// trusts reported payments. It implements core.System.
type PlainSystem struct {
	Graph  *graph.Graph
	Params Params
}

var _ core.System = (*PlainSystem)(nil)

// Nodes implements core.System.
func (s *PlainSystem) Nodes() []core.NodeID {
	out := make([]core.NodeID, s.Graph.N())
	for i := range out {
		out[i] = core.NodeID(i)
	}
	return out
}

// Deviations implements core.System.
func (s *PlainSystem) Deviations(core.NodeID) []core.Deviation {
	cat := Catalogue(false)
	out := make([]core.Deviation, 0, len(cat))
	for _, d := range cat {
		out = append(out, d)
	}
	return out
}

// Run implements core.System.
func (s *PlainSystem) Run(deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	var strategies map[graph.NodeID]*fpss.Strategy
	var reportHooks map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList
	if dev != nil && deviator >= 0 {
		d, ok := dev.(*Deviation)
		if !ok {
			return core.Outcome{}, fmt.Errorf("rational: foreign deviation %q", dev.Name())
		}
		node := graph.NodeID(deviator)
		ctx := Ctx{Graph: s.Graph, Node: node}
		if d.protocol != nil {
			strategies = map[graph.NodeID]*fpss.Strategy{node: d.protocol(ctx)}
		}
		if d.reportPayment != nil {
			reportHooks = map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList{node: d.reportPayment}
		}
	}
	res, err := fpss.Run(fpss.Config{Graph: s.Graph, Strategies: strategies})
	if err != nil {
		return core.Outcome{}, fmt.Errorf("plain run: %w", err)
	}
	routing := make(map[graph.NodeID]fpss.RoutingTable, len(res.Nodes))
	pricing := make(map[graph.NodeID]fpss.PricingTable, len(res.Nodes))
	declared := make(fpss.CostTable, len(res.Nodes))
	trueCosts := make(fpss.CostTable, len(res.Nodes))
	for id, node := range res.Nodes {
		routing[id] = node.Routing()
		pricing[id] = node.Pricing()
		declared[id] = node.DeclaredCost()
		trueCosts[id] = s.Graph.Cost(id)
	}
	exec, err := fpss.Execute(routing, pricing, fpss.ExecConfig{
		TrueCosts:          trueCosts,
		DeclaredCosts:      declared,
		Traffic:            s.Params.Traffic,
		DeliveryValue:      s.Params.DeliveryValue,
		UndeliveredPenalty: s.Params.UndeliveredPenalty,
		Scheme:             s.Params.Scheme,
		ReportPayment:      reportHooks,
	})
	if err != nil {
		return core.Outcome{}, fmt.Errorf("plain execute: %w", err)
	}
	out := core.Outcome{Utilities: make(map[core.NodeID]int64, len(exec.Utilities)), Completed: true}
	for id, u := range exec.Utilities {
		out.Utilities[core.NodeID(id)] = u
	}
	return out, nil
}

// FaithfulSystem plays deviations against the paper's extended FPSS
// specification. It implements core.System.
type FaithfulSystem struct {
	Graph  *graph.Graph
	Params Params
}

var _ core.System = (*FaithfulSystem)(nil)

// Nodes implements core.System.
func (s *FaithfulSystem) Nodes() []core.NodeID {
	out := make([]core.NodeID, s.Graph.N())
	for i := range out {
		out[i] = core.NodeID(i)
	}
	return out
}

// Deviations implements core.System.
func (s *FaithfulSystem) Deviations(core.NodeID) []core.Deviation {
	cat := Catalogue(true)
	out := make([]core.Deviation, 0, len(cat))
	for _, d := range cat {
		out = append(out, d)
	}
	return out
}

// Run implements core.System.
func (s *FaithfulSystem) Run(deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	var strategies map[graph.NodeID]*faithful.Strategy
	if dev != nil && deviator >= 0 {
		d, ok := dev.(*Deviation)
		if !ok {
			return core.Outcome{}, fmt.Errorf("rational: foreign deviation %q", dev.Name())
		}
		node := graph.NodeID(deviator)
		ctx := Ctx{Graph: s.Graph, Node: node}
		st := &faithful.Strategy{}
		if d.checker != nil {
			if built := d.checker(ctx); built != nil {
				st = built
			}
		}
		if d.protocol != nil {
			if p := d.protocol(ctx); p != nil {
				st.Protocol = *p
			}
		}
		if d.reportPayment != nil {
			st.ReportPayment = d.reportPayment
		}
		strategies = map[graph.NodeID]*faithful.Strategy{node: st}
	}
	res, err := faithful.Run(faithful.Config{
		Graph:              s.Graph,
		Strategies:         strategies,
		Traffic:            s.Params.Traffic,
		DeliveryValue:      s.Params.DeliveryValue,
		UndeliveredPenalty: s.Params.UndeliveredPenalty,
		NonProgressPenalty: s.Params.NonProgressPenalty,
		Epsilon:            s.Params.Epsilon,
		CheckerLimit:       s.Params.CheckerLimit,
	})
	if err != nil {
		return core.Outcome{}, fmt.Errorf("faithful run: %w", err)
	}
	out := core.Outcome{
		Utilities: make(map[core.NodeID]int64, len(res.Utilities)),
		Completed: res.Completed,
	}
	for id, u := range res.Utilities {
		out.Utilities[core.NodeID(id)] = u
	}
	for _, det := range res.Detections {
		if det.Principal >= 0 {
			out.Detected = append(out.Detected, core.NodeID(det.Principal))
		}
	}
	for _, f := range res.PaymentFindings {
		out.Detected = append(out.Detected, core.NodeID(f.Node))
	}
	return out, nil
}
