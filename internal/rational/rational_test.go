package rational

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/spec"
)

func TestCatalogueShape(t *testing.T) {
	plain := Catalogue(false)
	full := Catalogue(true)
	if len(full) <= len(plain) {
		t.Errorf("faithful catalogue (%d) should extend plain (%d)", len(full), len(plain))
	}
	seen := make(map[string]bool)
	for _, d := range full {
		if d.Name() == "" {
			t.Error("unnamed deviation")
		}
		if seen[d.Name()] {
			t.Errorf("duplicate deviation %q", d.Name())
		}
		seen[d.Name()] = true
		if len(d.Classes()) == 0 {
			t.Errorf("deviation %q has no classes", d.Name())
		}
	}
	// The catalogue must cover all three action classes (IC, CC, AC).
	covered := make(map[spec.ActionKind]bool)
	for _, d := range full {
		for _, c := range d.Classes() {
			covered[c] = true
		}
	}
	for _, k := range []spec.ActionKind{spec.InfoRevelation, spec.MessagePassing, spec.Computation} {
		if !covered[k] {
			t.Errorf("catalogue misses class %v", k)
		}
	}
}

func TestPlainFPSSAdmitsProfitableDeviations(t *testing.T) {
	g := graph.Figure1()
	sys := &PlainSystem{Graph: g, Params: DefaultParams(g)}
	rep, err := core.CheckFaithfulness(sys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faithful() {
		t.Fatal("plain FPSS should NOT be faithful under the deviation catalogue")
	}
	// At minimum, execution-phase payment fraud profits when trusted.
	foundFraud := false
	for _, v := range rep.Violations {
		if v.Deviation == "underreport-payments-all" {
			foundFraud = true
			if v.Gain() <= 0 {
				t.Errorf("fraud gain = %d, want > 0", v.Gain())
			}
		}
	}
	if !foundFraud {
		t.Errorf("payment fraud not among violations: %v", rep.Violations)
	}
	// AC must fail: computation deviations profit somewhere.
	if rep.AC() {
		t.Error("plain FPSS should violate AC")
	}
}

func TestPlainFPSSNaivePricingViolatesIC(t *testing.T) {
	g := graph.Figure1()
	p := DefaultParams(g)
	p.Scheme = fpss.SchemeDeclaredCost
	sys := &PlainSystem{Graph: g, Params: p}
	rep, err := core.CheckFaithfulness(sys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IC() {
		t.Error("naive declared-cost pricing should violate IC (Example 1)")
	}
}

func TestPlainFPSSVCGKeepsCostMisreportsUnprofitable(t *testing.T) {
	// Under VCG with obedient computation/messaging, pure cost
	// misreports must not profit (strategyproofness) even though other
	// deviations do.
	g := graph.Figure1()
	sys := &PlainSystem{Graph: g, Params: DefaultParams(g)}
	rep, err := core.CheckFaithfulness(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		if v.Deviation == "misreport-cost-inflate" || v.Deviation == "misreport-cost-zero" {
			t.Errorf("pure cost misreport profited under VCG: %v", v)
		}
	}
}

func TestFaithfulSystemIsFaithfulFigure1(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation searches run in the full (blocking) lane; -short only trims PR latency")
	}
	g := graph.Figure1()
	sys := &FaithfulSystem{Graph: g, Params: DefaultParams(g)}
	rep, err := core.CheckFaithfulness(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Faithful() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %v", v)
		}
		t.Fatal("extended FPSS must be faithful (Theorem 1)")
	}
	if !rep.IC() || !rep.CC() || !rep.AC() {
		t.Error("IC/CC/AC should all hold")
	}
	if rep.Checked == 0 {
		t.Error("no deviations checked")
	}
}

func TestFaithfulSystemIsFaithfulRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("deviation searches run in the full (blocking) lane; -short only trims PR latency")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		n := 4 + rng.Intn(3)
		g, err := graph.RandomBiconnected(n, rng.Intn(n), 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		sys := &FaithfulSystem{Graph: g, Params: DefaultParams(g)}
		rep, err := core.CheckFaithfulness(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Faithful() {
			t.Fatalf("trial %d: violations %v", trial, rep.Violations)
		}
	}
}

func TestDetectionSignalsSurface(t *testing.T) {
	g := graph.Figure1()
	sys := &FaithfulSystem{Graph: g, Params: DefaultParams(g)}
	c, _ := g.ByName("C")
	var attract *Deviation
	for _, d := range Catalogue(true) {
		if d.Name() == "miscompute-routing-attract" {
			attract = d
		}
	}
	if attract == nil {
		t.Fatal("catalogue missing miscompute-routing-attract")
	}
	out, err := sys.Run(core.NodeID(c), attract)
	if err != nil {
		t.Fatal(err)
	}
	if out.Completed {
		t.Error("deviant construction should not complete")
	}
	found := false
	for _, d := range out.Detected {
		if d == core.NodeID(c) {
			found = true
		}
	}
	if !found {
		t.Errorf("deviator not in Detected: %v", out.Detected)
	}
}

func TestAttractDeviationProfitsInPlain(t *testing.T) {
	// The headline gap: attracting traffic with fake cheap routes
	// profits against plain FPSS but not against the faithful spec.
	g := graph.Figure1()
	plain := &PlainSystem{Graph: g, Params: DefaultParams(g)}
	c, _ := g.ByName("C")
	var attract *Deviation
	for _, d := range Catalogue(false) {
		if d.Name() == "miscompute-routing-attract" {
			attract = d
		}
	}
	base, err := plain.Run(-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := plain.Run(core.NodeID(c), attract)
	if err != nil {
		t.Fatal(err)
	}
	// Note: on Figure 1, C is already on most LCPs; attraction may or
	// may not strictly help C there, but the run must at least execute
	// and keep everyone accounted.
	if len(dev.Utilities) != len(base.Utilities) {
		t.Error("utility maps differ in size")
	}
}

func TestForeignDeviationRejected(t *testing.T) {
	g := graph.Figure1()
	plain := &PlainSystem{Graph: g, Params: DefaultParams(g)}
	if _, err := plain.Run(0, core.BasicDeviation{DevName: "alien"}); err == nil {
		t.Error("foreign deviation type should error")
	}
	fs := &FaithfulSystem{Graph: g, Params: DefaultParams(g)}
	if _, err := fs.Run(0, core.BasicDeviation{DevName: "alien"}); err == nil {
		t.Error("foreign deviation type should error (faithful)")
	}
}
