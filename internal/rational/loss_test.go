package rational

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// lossParams returns scenario parameters with the loss axis enabled at
// a sub-threshold, bursty rate.
func lossParams(g *graph.Graph, seed uint64) Params {
	p := DefaultParams(g)
	p.Loss = sim.LossModel{Rate: 0.1, Burst: 3, Seed: seed}
	return p
}

// TestLossCatalogueGating: the loss-exploiting family joins the
// catalogue only when the loss axis is enabled — a reliable scenario's
// catalogue (and therefore its reports and goldens) stays
// byte-identical to pre-loss builds.
func TestLossCatalogueGating(t *testing.T) {
	g := graph.Figure1()
	plain := &PlainSystem{Graph: g, Params: DefaultParams(g)}
	lossy := &PlainSystem{Graph: g, Params: lossParams(g, 1)}
	base, withLoss := plain.Deviations(0), lossy.Deviations(0)
	if len(withLoss) != len(base)+len(LossCatalogue(false)) {
		t.Fatalf("lossy catalogue has %d entries, reliable %d, family %d",
			len(withLoss), len(base), len(LossCatalogue(false)))
	}
	for i, d := range base {
		if withLoss[i].Name() != d.Name() {
			t.Fatalf("loss family must append, not reorder: %q vs %q at %d", withLoss[i].Name(), d.Name(), i)
		}
	}
	names := map[string]bool{}
	for _, d := range withLoss {
		if names[d.Name()] {
			t.Fatalf("duplicate deviation name %q", d.Name())
		}
		names[d.Name()] = true
	}
	for _, want := range []string{"fake-loss-drop-adverts", "withhold-acks"} {
		if !names[want] {
			t.Errorf("loss catalogue missing %q", want)
		}
	}
	faithLossy := &FaithfulSystem{Graph: g, Params: lossParams(g, 1)}
	fnames := map[string]bool{}
	for _, d := range faithLossy.Deviations(0) {
		fnames[d.Name()] = true
	}
	if !fnames["misreport-loss-blame"] {
		t.Error("faithful loss catalogue missing misreport-loss-blame")
	}
}

// TestLossDeviationsUnprofitableInFaithful is the headline robustness
// claim: with real loss on every link, the loss-exploiting deviations
// (selective dropping disguised as loss, ack withholding, loss-blame
// misreporting) are still caught and punished — the extended
// specification stays faithful on the enlarged catalogue.
func TestLossDeviationsUnprofitableInFaithful(t *testing.T) {
	g := graph.Figure1()
	sys := &FaithfulSystem{Graph: g, Params: lossParams(g, 5)}
	rep, err := core.CheckFaithfulness(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Faithful() {
		t.Fatalf("faithful variant admits loss-exploiting profit: %+v", rep.Violations)
	}

	// And they are not merely unprofitable but *flagged*: playing the
	// selective dropper must end in non-progress (detection), not a
	// quietly completed run.
	base, err := sys.Run(-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fake-loss-drop-adverts", "withhold-acks", "misreport-loss-blame"} {
		var dev core.Deviation
		for _, d := range sys.Deviations(0) {
			if d.Name() == name {
				dev = d
			}
		}
		if dev == nil {
			t.Fatalf("deviation %q not in catalogue", name)
		}
		out, err := sys.Run(core.NodeID(2), dev)
		if err != nil {
			t.Fatal(err)
		}
		if out.Completed {
			t.Errorf("%s: deviant run green-lit under loss", name)
		}
		if got, honest := out.Utilities[2], base.Utilities[2]; got >= honest {
			t.Errorf("%s: deviator utility %d >= honest %d", name, got, honest)
		}
	}
}

// TestLossPlainExposesFakeLoss documents the contrast: plain FPSS has
// no checkers, so hiding a selective drop behind the lossy network is
// free — the deviation search must still run it (and may find profit),
// which is exactly the gap the faithful variant closes.
func TestLossPlainExposesFakeLoss(t *testing.T) {
	g := graph.Figure1()
	sys := &PlainSystem{Graph: g, Params: lossParams(g, 5)}
	if _, err := core.CheckFaithfulness(sys); err != nil {
		t.Fatal(err)
	}
}

// TestLossReportsWorkerCountInvariant pins the determinism invariant
// under loss: the drop schedules are positional per link and re-seeded
// per play, so the Report must be byte-identical for any worker count.
func TestLossReportsWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		g, err := graph.RandomBiconnected(4+rng.Intn(3), rng.Intn(3), 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		params := lossParams(g, uint64(trial+1))
		for _, mk := range []func() core.System{
			func() core.System { return &PlainSystem{Graph: g, Params: params} },
			func() core.System { return &FaithfulSystem{Graph: g, Params: params} },
		} {
			seq, err := core.CheckFaithfulnessCfg(mk(), core.CheckConfig{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := core.CheckFaithfulnessCfg(mk(), core.CheckConfig{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("trial %d: lossy report differs across worker counts\nseq: %+v\npar: %+v", trial, seq, par)
			}
		}
	}
}

// TestLossStatefulPrunedMatchesRunOracle is the lossy differential:
// the stateful engine (pooled contexts, exec-only overlays, profit
// bounds with full pruned-replay verification) must reproduce the
// legacy Run-based sequential oracle exactly, with loss enabled.
func TestLossStatefulPrunedMatchesRunOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 3; trial++ {
		g, err := graph.RandomBiconnected(4+rng.Intn(3), rng.Intn(3), 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		params := lossParams(g, uint64(trial+11))
		oracle, err := core.CheckFaithfulnessCfg(runOnly{&FaithfulSystem{Graph: g, Params: params}}, core.CheckConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sys := &FaithfulSystem{Graph: g, Params: params}
		pruned, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{
			Workers:      2,
			PruneBound:   core.SelfBound,
			VerifyPruned: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle.Violations, pruned.Violations) {
			t.Fatalf("trial %d: lossy pruned violations diverge\noracle: %+v\ngot: %+v", trial, oracle.Violations, pruned.Violations)
		}
		if pruned.Total() != oracle.Checked {
			t.Fatalf("trial %d: pruned grid %d+%d != oracle grid %d", trial, pruned.Checked, pruned.Pruned, oracle.Checked)
		}
	}
}

// TestLossDeviationsClaimNoBound: the loss family touches protocol and
// checker layers, so no static profit bound is sound for it — both
// systems must decline to bound every entry (an unsound bound would
// silently prune real violations).
func TestLossDeviationsClaimNoBound(t *testing.T) {
	g := graph.Figure1()
	plain := &PlainSystem{Graph: g, Params: lossParams(g, 1)}
	faith := &FaithfulSystem{Graph: g, Params: lossParams(g, 1)}
	for _, forFaithful := range []bool{false, true} {
		for _, d := range LossCatalogue(forFaithful) {
			if d.ExecOnly() {
				t.Errorf("%s: loss deviation claims to be exec-only", d.Name())
			}
			if !forFaithful {
				if _, ok := plain.ProfitUpperBound(0, d, -1); ok {
					t.Errorf("%s: plain system claims a profit bound", d.Name())
				}
			}
			if _, ok := faith.ProfitUpperBound(0, d, -1); ok {
				t.Errorf("%s: faithful system claims a profit bound", d.Name())
			}
		}
	}
}
