package rational

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/settle"
)

var shardDeviationNames = []string{
	"exit-scam-2pc-window",
	"double-credit-two-homes",
	"stall-prepare-abort",
}

func catalogueNames(sys core.System) map[string]bool {
	names := make(map[string]bool)
	for _, d := range sys.Deviations(0) {
		names[d.Name()] = true
	}
	return names
}

func findDeviation(t *testing.T, sys core.System, name string) core.Deviation {
	t.Helper()
	for _, d := range sys.Deviations(0) {
		if d.Name() == name {
			return d
		}
	}
	t.Fatalf("deviation %q not in catalogue", name)
	return nil
}

// TestShardCatalogueGating: the shard-window family appears exactly
// when the settlement axis is enabled — a singleton-bank scenario
// keeps its catalogue byte-identical.
func TestShardCatalogueGating(t *testing.T) {
	g := graph.Figure1()
	off := DefaultParams(g)
	on := off
	on.Settle = settle.Options{Shards: 2, Seed: 0x51ed}

	plainOff, faithOff := Systems(g, off)
	plainOn, faithOn := Systems(g, on)
	for _, name := range shardDeviationNames {
		if catalogueNames(plainOff)[name] || catalogueNames(faithOff)[name] {
			t.Errorf("%s present without the shard axis", name)
		}
		if !catalogueNames(plainOn)[name] || !catalogueNames(faithOn)[name] {
			t.Errorf("%s missing with the shard axis enabled", name)
		}
	}
	if n, m := len(catalogueNames(plainOn)), len(catalogueNames(plainOff)); n != m+len(shardDeviationNames) {
		t.Errorf("plain catalogue grew by %d, want %d", n-m, len(shardDeviationNames))
	}
}

// TestSettleBatchMatchesUtilities pins the batch translation: the
// all-commit balances of the snapshot's settlement workload equal the
// honest realized utilities, and the crash-tolerant 2PC actually
// reaches them — zero deltas, zero flags — under every crash plan.
func TestSettleBatchMatchesUtilities(t *testing.T) {
	g := graph.Figure1()
	p := DefaultParams(g)
	p.Settle = settle.Options{Shards: 4, Seed: 0xfeed, Timeout: 8}
	sys := &PlainSystem{Graph: g, Params: p}
	st, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := st.(*plainState)
	if snap.batch == nil {
		t.Fatal("shard axis enabled but snapshot cached no batch")
	}
	if len(snap.batch.Transfers) == 0 {
		t.Fatal("honest execution produced no cross-account transfers")
	}
	expected := snap.batch.Expected()
	for id, util := range snap.base.Utilities {
		if got := expected[settle.Account(id)]; got != util {
			t.Errorf("node %d: all-commit balance %d != utility %d", id, got, util)
		}
	}
	for _, plan := range settle.Plans {
		opts := p.Settle
		opts.Plan = plan
		res, err := settle.RunFaithful(opts, snap.batch, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.InDoubt != 0 || res.Aborted != 0 || len(res.Flags) != 0 {
			t.Fatalf("plan %q: honest settlement inDoubt=%d aborted=%d flags=%v",
				plan, res.InDoubt, res.Aborted, res.Flags)
		}
		for a, delta := range res.Deltas {
			if delta != 0 {
				t.Errorf("plan %q: honest account %d drifted by %d", plan, a, delta)
			}
		}
	}
}

// TestShardDeviationOutcomes is the tentpole's economics, checked
// directly on the System adapters: every shard-window deviation that
// moves money in the baseline settlement is strictly profitable
// against PlainSystem, and every one of the three is flagged,
// ε-fined, and therefore strictly unprofitable against FaithfulSystem.
func TestShardDeviationOutcomes(t *testing.T) {
	g := graph.Figure1()
	p := DefaultParams(g)
	p.Settle = settle.Options{Shards: 2, Seed: 0x51ed, Timeout: 8}
	plain, faith := Systems(g, p)

	pst, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := pst.(*plainState)
	deviator := core.NodeID(-1)
	var owed int64
	for id, o := range snap.owed {
		if o > owed || (o == owed && core.NodeID(id) < deviator) {
			owed = o
			deviator = core.NodeID(id)
		}
	}
	if deviator < 0 || owed <= 0 {
		t.Fatal("no node owes transit payments; the exit scam has nothing to steal")
	}
	base := snap.base.Utilities[deviator]
	local := snap.batch.Local[settle.Account(deviator)]

	// Baseline mechanism: the exit scam pockets exactly what the
	// deviator owed, the double claim pockets its local credit.
	out, err := plain.Run(deviator, findDeviation(t, plain, "exit-scam-2pc-window"))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Utilities[deviator]; got != base+owed {
		t.Errorf("plain exit scam: utility %d, want base %d + owed %d", got, base, owed)
	}
	out, err = plain.Run(deviator, findDeviation(t, plain, "double-credit-two-homes"))
	if err != nil {
		t.Fatal(err)
	}
	wantDouble := base
	if local > 0 {
		wantDouble += local
	}
	if got := out.Utilities[deviator]; got != wantDouble {
		t.Errorf("plain double claim: utility %d, want %d (local %d)", got, wantDouble, local)
	}
	if local <= 0 {
		t.Logf("note: deviator %d has non-positive local credit %d; double claim not profitable here", deviator, local)
	}
	out, err = plain.Run(deviator, findDeviation(t, plain, "stall-prepare-abort"))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Utilities[deviator]; got != base {
		t.Errorf("plain stall: utility %d, want base %d (no prepare phase to stall)", got, base)
	}

	// Extended mechanism: each deviation is attributed to the account
	// and fined; balances still settle to the honest book.
	fst, err := faith.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fbase := fst.Baseline().Utilities[deviator]
	for _, name := range shardDeviationNames {
		fout, err := faith.Run(deviator, findDeviation(t, faith, name))
		if err != nil {
			t.Fatal(err)
		}
		if got := fout.Utilities[deviator]; got >= fbase {
			t.Errorf("faithful %s: utility %d not strictly below baseline %d", name, got, fbase)
		}
		detected := false
		for _, n := range fout.Detected {
			if n == deviator {
				detected = true
			}
		}
		if !detected {
			t.Errorf("faithful %s: deviator %d not detected (detected=%v)", name, deviator, fout.Detected)
		}
	}
}

// TestStatefulSettleMatchesRunOracle is the shard axis' differential
// gate (and the -race certification of the settlement stage): across
// shard counts, crash plans and worker counts, the snapshot fast path
// — cached batch, settle-only overlay, and the faithful settle prune
// bound under VerifyPruned — must reproduce the Run-per-play oracle
// byte for byte.
func TestStatefulSettleMatchesRunOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential deviation search over the shard axis is the full lane")
	}
	g := graph.Figure1()

	check := func(t *testing.T, mk func() core.System, workers int) {
		oracle, err := core.CheckFaithfulnessCfg(runOnly{mk()}, core.CheckConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sys := mk()
		got, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle, got) {
			t.Fatalf("stateful report diverges\noracle: %+v\ngot:    %+v", oracle, got)
		}
		pruned, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{
			Workers:      workers,
			PruneBound:   core.SelfBound,
			VerifyPruned: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle.Violations, pruned.Violations) {
			t.Fatalf("pruned violations diverge\noracle: %+v\ngot:    %+v", oracle.Violations, pruned.Violations)
		}
		if pruned.Total() != oracle.Checked {
			t.Fatalf("pruned grid %d+%d != oracle grid %d", pruned.Checked, pruned.Pruned, oracle.Checked)
		}
	}

	// Plain side: the baseline settlement ignores crash plans (it
	// simulates nothing), so sweep shard counts and worker counts.
	for i, k := range []int{2, 4} {
		k, workers := k, 1+3*(i%2)
		t.Run(fmt.Sprintf("plain/k=%d/w=%d", k, workers), func(t *testing.T) {
			p := DefaultParams(g)
			p.Settle = settle.Options{Shards: k, Seed: 0xd1ff ^ uint64(k), Timeout: 8}
			check(t, func() core.System { return &PlainSystem{Graph: g, Params: p} }, workers)
		})
	}

	// Faithful side: shard counts × crash plans, alternating workers.
	// Every plan runs at k=2; k=4 keeps the restart-bearing plans (the
	// no-fault rows add nothing the k=2 sweep hasn't certified).
	plansFor := map[int][]string{
		2: settle.Plans,
		4: {settle.PlanParticipant, settle.PlanRecovery},
	}
	i := 0
	for _, k := range []int{2, 4} {
		for _, plan := range plansFor[k] {
			k, plan, workers := k, plan, 1+3*(i%2)
			i++
			pn := plan
			if pn == settle.PlanNone {
				pn = "none"
			}
			t.Run(fmt.Sprintf("faithful/k=%d/plan=%s/w=%d", k, pn, workers), func(t *testing.T) {
				p := DefaultParams(g)
				p.Settle = settle.Options{Shards: k, Seed: 0xd1ff ^ uint64(k), Plan: plan, Timeout: 8}
				check(t, func() core.System { return &FaithfulSystem{Graph: g, Params: p} }, workers)
			})
		}
	}
}
