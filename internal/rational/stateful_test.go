package rational

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/graph"
)

// runOnly hides a System's stateful and bounder faces, so the engine
// falls back to the legacy Run-per-play path — the kept oracle the
// snapshot/overlay/arena machinery must match byte for byte.
type runOnly struct{ sys core.System }

func (r runOnly) Nodes() []core.NodeID                      { return r.sys.Nodes() }
func (r runOnly) Deviations(n core.NodeID) []core.Deviation { return r.sys.Deviations(n) }
func (r runOnly) Run(d core.NodeID, dev core.Deviation) (core.Outcome, error) {
	return r.sys.Run(d, dev)
}

// TestStatefulCheckMatchesRunOracle is the overhaul's acceptance gate:
// over 100+ seeded scenarios the snapshot/COW/arena engine — pooled
// contexts, exec-only overlays, and profit-bound pruning with every
// pruned play replayed and re-verified — must reproduce the legacy
// Run-based sequential oracle exactly. Run under -race, the shared
// snapshots and per-worker arenas are also certified race-free.
func TestStatefulCheckMatchesRunOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential deviation search over 100 graphs is the full lane")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 104; trial++ {
		var g *graph.Graph
		var err error
		if trial == 0 {
			g = graph.Figure1()
		} else {
			g, err = graph.RandomBiconnected(4+rng.Intn(3), rng.Intn(4), 8, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		params := DefaultParams(g)
		if trial%3 == 1 {
			params.Scheme = fpss.SchemeDeclaredCost
		}
		oracle, err := core.CheckFaithfulnessCfg(runOnly{&PlainSystem{Graph: g, Params: params}}, core.CheckConfig{})
		if err != nil {
			t.Fatal(err)
		}

		// Pooled + COW, no pruning: the whole Report must match.
		workers := 1 + 3*(trial%2)
		sys := &PlainSystem{Graph: g, Params: params}
		got, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle, got) {
			t.Fatalf("trial %d workers %d: stateful report diverges\noracle: %+v\ngot:    %+v", trial, workers, oracle, got)
		}

		// With pruning: identical violations, full-grid accounting, and
		// every pruned play replayed against the bound (stride 1).
		pruned, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{
			Workers:      workers,
			PruneBound:   core.SelfBound,
			VerifyPruned: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle.Violations, pruned.Violations) {
			t.Fatalf("trial %d: pruned violations diverge\noracle: %+v\ngot:    %+v", trial, oracle.Violations, pruned.Violations)
		}
		if pruned.Total() != oracle.Checked {
			t.Fatalf("trial %d: pruned grid %d+%d != oracle grid %d", trial, pruned.Checked, pruned.Pruned, oracle.Checked)
		}
	}
}

// TestFaithfulStatefulMatchesRunOracle is the faithful-side
// differential: the certified snapshot's exec-only overlay (including
// the payment re-audit) and the base-utility prune bound must agree
// with the Run oracle. The faithful catalogue is where pruning
// actually fires, so the accounting is asserted to be non-trivial.
func TestFaithfulStatefulMatchesRunOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("faithful differential deviation search is the full lane")
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		var g *graph.Graph
		var err error
		if trial == 0 {
			g = graph.Figure1()
		} else {
			g, err = graph.RandomBiconnected(4+rng.Intn(2), rng.Intn(3), 8, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		params := DefaultParams(g)
		oracle, err := core.CheckFaithfulnessCfg(runOnly{&FaithfulSystem{Graph: g, Params: params}}, core.CheckConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sys := &FaithfulSystem{Graph: g, Params: params}
		got, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle, got) {
			t.Fatalf("trial %d: faithful stateful report diverges\noracle: %+v\ngot:    %+v", trial, oracle, got)
		}
		pruned, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{
			Workers:      4,
			PruneBound:   core.SelfBound,
			VerifyPruned: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle.Violations, pruned.Violations) {
			t.Fatalf("trial %d: pruned faithful violations diverge", trial)
		}
		if pruned.Total() != oracle.Checked {
			t.Fatalf("trial %d: pruned grid %d+%d != oracle grid %d", trial, pruned.Checked, pruned.Pruned, oracle.Checked)
		}
		if pruned.Pruned == 0 {
			t.Fatalf("trial %d: expected the faithful exec-only bound to prune some plays", trial)
		}
	}
}

// TestUnsoundPruneBoundCaught: a deliberately wrong upper bound — one
// that claims every play is unprofitable — must be caught by the
// VerifyPruned replay on plain FPSS, where underreports genuinely
// profit. Without verification the same bound silently skips the
// violations, which is exactly why the debug replay exists.
func TestUnsoundPruneBoundCaught(t *testing.T) {
	g := graph.Figure1()
	sys := &PlainSystem{Graph: g, Params: DefaultParams(g)}
	lying := func(s core.System, deviator core.NodeID, dev core.Deviation, epoch int) (int64, bool) {
		st, err := sys.Snapshot()
		if err != nil {
			return 0, false
		}
		return st.Baseline().Utilities[deviator], true // "nothing ever profits"
	}
	_, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{
		PruneBound:   lying,
		VerifyPruned: true,
	})
	if err == nil {
		t.Fatal("unsound bound on a manipulable system must fail verification")
	}
	if !strings.Contains(err.Error(), "unsound prune bound") {
		t.Fatalf("unexpected verification error: %v", err)
	}

	// The system's own bound survives the same full-replay audit.
	if _, err := core.CheckFaithfulnessCfg(sys, core.CheckConfig{
		PruneBound:   core.SelfBound,
		VerifyPruned: true,
	}); err != nil {
		t.Fatalf("self bound failed verification: %v", err)
	}
}

// TestPrunedAccounting: Checked + Pruned must always equal the full
// grid, and the plain system must never prune its own profitable
// underreports (their bound exceeds the baseline exactly when the
// deviator owes anyone money).
func TestPrunedAccounting(t *testing.T) {
	g := graph.Figure1()
	params := DefaultParams(g)
	full, err := core.CheckFaithfulnessCfg(&PlainSystem{Graph: g, Params: params}, core.CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Pruned != 0 || full.Total() != full.Checked {
		t.Fatalf("unpruned report miscounts: %+v", full)
	}
	pruned, err := core.CheckFaithfulnessCfg(&PlainSystem{Graph: g, Params: params}, core.CheckConfig{
		PruneBound: core.SelfBound,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Total() != full.Checked {
		t.Fatalf("pruned grid %d+%d != full grid %d", pruned.Checked, pruned.Pruned, full.Checked)
	}
	if !reflect.DeepEqual(full.Violations, pruned.Violations) {
		t.Fatalf("pruning changed the verdict: %+v vs %+v", full.Violations, pruned.Violations)
	}
}
