package rational

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/graph"
)

// TestParallelCheckMatchesSequentialOracle is the engine's acceptance
// gate: over 100+ seeded scenarios, the parallel deviation search must
// produce a Report byte-identical to the sequential oracle on the full
// rational catalogue. PlainSystem scenarios carry the violation-rich
// side (plain FPSS is manipulable, so reports have non-trivial
// violation lists to compare); the faithful side is covered by
// TestParallelFaithfulCheckMatchesSequentialOracle.
func TestParallelCheckMatchesSequentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential deviation search over 100 graphs is the full lane")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 104; trial++ {
		var g *graph.Graph
		var err error
		if trial == 0 {
			g = graph.Figure1()
		} else {
			g, err = graph.RandomBiconnected(4+rng.Intn(3), rng.Intn(4), 8, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		params := DefaultParams(g)
		if trial%3 == 1 {
			// Exercise the manipulable naive-pricing scheme too: its
			// reports carry many more violations to compare.
			params.Scheme = fpss.SchemeDeclaredCost
		}
		seq, err := core.CheckFaithfulness(&PlainSystem{Graph: g, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		// Alternate pool sizes across trials (every graph still gets a
		// full sequential-vs-parallel comparison).
		workers := 2 + 6*(trial%2)
		par, err := core.CheckFaithfulness(&PlainSystem{Graph: g, Params: params}, core.Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d workers %d: parallel report diverges\nseq: %+v\npar: %+v", trial, workers, seq, par)
		}
	}
}

// TestParallelFaithfulCheckMatchesSequentialOracle runs the expensive
// faithful-protocol differential on a smaller graph sample, including
// the full (checker-extended) catalogue. Running under -race with >1
// worker is what certifies the scenario-sharing (read-only topology
// views, pooled networks) as data-race-free.
func TestParallelFaithfulCheckMatchesSequentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("faithful differential deviation search is the full lane")
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 4; trial++ {
		var g *graph.Graph
		var err error
		if trial == 0 {
			g = graph.Figure1()
		} else {
			g, err = graph.RandomBiconnected(4+rng.Intn(2), rng.Intn(3), 8, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		params := DefaultParams(g)
		seq, err := core.CheckFaithfulness(&FaithfulSystem{Graph: g, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.CheckFaithfulness(&FaithfulSystem{Graph: g, Params: params}, core.Workers(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d: faithful parallel report diverges\nseq: %+v\npar: %+v", trial, seq, par)
		}
		if !seq.Faithful() {
			t.Fatalf("trial %d: extended FPSS should stay faithful; violations %v", trial, seq.Violations)
		}
	}
}

// TestEarlyStopVerdictOnPlain: early stop must agree with the full
// search's faithful/not-faithful verdict and report the first
// profitable deviation in catalogue order.
func TestEarlyStopVerdictOnPlain(t *testing.T) {
	g := graph.Figure1()
	params := DefaultParams(g)
	full, err := core.CheckFaithfulness(&PlainSystem{Graph: g, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if full.Faithful() {
		t.Fatal("plain FPSS should not be faithful")
	}
	seq, err := core.CheckFaithfulness(&PlainSystem{Graph: g, Params: params}, core.EarlyStop())
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.CheckFaithfulness(&PlainSystem{Graph: g, Params: params}, core.EarlyStop(), core.Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("early-stop reports diverge\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.Faithful() || len(seq.Violations) != 1 {
		t.Fatalf("early-stop report = %+v, want exactly one violation", seq)
	}
	if seq.Checked > full.Checked {
		t.Errorf("early stop checked %d > full %d", seq.Checked, full.Checked)
	}
	// The reported violation is the first one a sequential full search
	// records (catalogue order: node-major, then deviation order).
	first := full.Violations[0]
	for _, v := range full.Violations {
		if v.Node < first.Node {
			first = v
		}
	}
	if seq.Violations[0].Node != first.Node {
		t.Errorf("early-stop violation node = %d, want first node %d", seq.Violations[0].Node, first.Node)
	}
}

// TestSystemsShareScenarioState: repeated calls must return the same
// shared read-only slices (no per-call rebuilding), and concurrent
// Run must not mutate them.
func TestSystemsShareScenarioState(t *testing.T) {
	g := graph.Figure1()
	sys := &FaithfulSystem{Graph: g, Params: DefaultParams(g)}
	d1, d2 := sys.Deviations(0), sys.Deviations(1)
	if len(d1) == 0 || &d1[0] != &d2[0] {
		t.Error("Deviations should return the shared per-scenario catalogue")
	}
	n1, n2 := sys.Nodes(), sys.Nodes()
	if len(n1) == 0 || &n1[0] != &n2[0] {
		t.Error("Nodes should return the shared per-scenario list")
	}
}
