// Package rational implements the paper's rational-manipulation
// failure model (§3.6): a catalogue of named deviations from the
// suggested FPSS specification — cost misreports, dropped / changed /
// spoofed routing and pricing updates, table miscomputation, and
// execution-phase payment fraud (§4.3 manipulations 1–4 plus joint
// combinations) — together with core.System adapters that play each
// deviation against the plain FPSS protocol and against the faithful
// extension. core.CheckFaithfulness over these systems is the
// deviation search of experiment E6: plain FPSS admits profitable
// deviations; the extended specification admits none.
package rational

import (
	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/settle"
	"repro/internal/spec"
)

// Ctx identifies the deviating node within a concrete scenario.
type Ctx struct {
	Graph *graph.Graph
	Node  graph.NodeID
}

// Deviation is one catalogued alternative strategy, with realizations
// for both protocol variants. Fields are nil when a part does not
// apply.
type Deviation struct {
	name    string
	classes []spec.ActionKind
	// protocol builds the construction-phase deviation (shared by
	// plain FPSS and the faithful protocol's Protocol field).
	protocol func(Ctx) *fpss.Strategy
	// reportPayment is the execution-phase deviation.
	reportPayment func(truth fpss.PaymentList) fpss.PaymentList
	// checker builds deviations in the faithful protocol's checker
	// layer (forward drops/tampering, spoofed copies, report lies);
	// nil for deviations that exist in plain FPSS too.
	checker func(Ctx) *faithful.Strategy
	// settle builds the settlement-window deviation played inside the
	// sharded bank's 2PC (meaningful only when Params.Settle enables
	// the shard axis).
	settle func(Ctx) *settle.Strategy
	// faithfulOnly marks deviations meaningless in plain FPSS.
	faithfulOnly bool
	// boundedExec marks catalogue-built execution-only deviations
	// whose report hook never emits negative amounts, which is what
	// makes the static plain-protocol profit bound (baseline + honest
	// obligations) sound. Custom NewDeviation entries never set it —
	// an arbitrary hook voids the bound.
	boundedExec bool
}

// ExecOnly reports whether the deviation touches only the execution
// phase (a DATA4 misreport), leaving both construction phases and the
// checker layer untouched. Such deviations replay against a truthful
// snapshot without re-running the protocol.
func (d *Deviation) ExecOnly() bool {
	return d.protocol == nil && d.checker == nil && d.settle == nil && d.reportPayment != nil
}

// SettleOnly reports whether the deviation lives entirely inside the
// settlement window: the protocol, checker layer and DATA4 report all
// stay honest, so the play replays as honest-baseline-plus-settlement
// without re-running the protocol.
func (d *Deviation) SettleOnly() bool {
	return d.protocol == nil && d.checker == nil && d.reportPayment == nil && d.settle != nil
}

// Parts are the realizations of a custom deviation, mirroring the
// unexported fields of Deviation: construction-phase strategy,
// execution-phase payment misreport, and the faithful protocol's
// checker-layer hooks. Any subset may be set.
type Parts struct {
	// Protocol builds the construction-phase deviation.
	Protocol func(Ctx) *fpss.Strategy
	// ReportPayment misreports DATA4 in the execution phase.
	ReportPayment func(truth fpss.PaymentList) fpss.PaymentList
	// Checker builds checker-layer deviations (faithful protocol only).
	Checker func(Ctx) *faithful.Strategy
	// Settle builds the settlement-window deviation (shard axis only).
	Settle func(Ctx) *settle.Strategy
}

// NewDeviation assembles a custom catalogued deviation from its parts.
// The churn engine composes its epoch-boundary deviations (stale
// catalogues, leave-without-settling, identity whitewashing) out of
// these instead of re-implementing the System adapters.
func NewDeviation(name string, classes []spec.ActionKind, p Parts) *Deviation {
	return &Deviation{
		name:          name,
		classes:       classes,
		protocol:      p.Protocol,
		reportPayment: p.ReportPayment,
		checker:       p.Checker,
		settle:        p.Settle,
	}
}

// Name implements core.Deviation.
func (d *Deviation) Name() string { return d.name }

// Classes implements core.Deviation. The returned slice is shared and
// read-only: the deviation-search hot loop calls Classes on every
// play, and core.CheckFaithfulness copies it only when recording a
// Violation.
func (d *Deviation) Classes() []spec.ActionKind { return d.classes }

// Catalogue returns the full deviation list. Deviations whose checker
// layer only exists in the faithful protocol are included only when
// forFaithful is true.
func Catalogue(forFaithful bool) []*Deviation {
	all := []*Deviation{
		{
			name:    "misreport-cost-inflate",
			classes: []spec.ActionKind{spec.InfoRevelation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{DeclareCost: func(t graph.Cost) graph.Cost { return t + 4 }}
			},
		},
		{
			name:    "misreport-cost-zero",
			classes: []spec.ActionKind{spec.InfoRevelation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{DeclareCost: func(graph.Cost) graph.Cost { return 0 }}
			},
		},
		{
			name:    "drop-cost-relays",
			classes: []spec.ActionKind{spec.MessagePassing},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{RelayCost: func(graph.NodeID, fpss.CostAnnounce) (fpss.CostAnnounce, bool) {
					return fpss.CostAnnounce{}, false
				}}
			},
		},
		{
			name:    "inflate-relayed-costs",
			classes: []spec.ActionKind{spec.MessagePassing},
			protocol: func(ctx Ctx) *fpss.Strategy {
				self := ctx.Node
				return &fpss.Strategy{RelayCost: func(_ graph.NodeID, a fpss.CostAnnounce) (fpss.CostAnnounce, bool) {
					if a.Origin != self {
						a.Cost += 25
					}
					return a, true
				}}
			},
		},
		{
			// Manipulation 2: advertise artificially cheap routes to
			// attract transit traffic at inflated VCG premiums.
			name:    "miscompute-routing-attract",
			classes: []spec.ActionKind{spec.Computation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{PostRouting: func(rt fpss.RoutingTable) fpss.RoutingTable {
					for d, e := range rt {
						e.Cost = 0
						rt[d] = e
					}
					return rt
				}}
			},
		},
		{
			// Manipulation 2 (repel): advertise inflated routes to shed
			// unprofitable transit load.
			name:    "miscompute-routing-repel",
			classes: []spec.ActionKind{spec.Computation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{PostRouting: func(rt fpss.RoutingTable) fpss.RoutingTable {
					for d, e := range rt {
						e.Cost += 40
						rt[d] = e
					}
					return rt
				}}
			},
		},
		{
			// Manipulation 4: corrupt advertised pricing data.
			name:    "miscompute-pricing-inflate",
			classes: []spec.ActionKind{spec.Computation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{PostPricing: func(pt fpss.PricingTable) fpss.PricingTable {
					for _, row := range pt {
						for k, e := range row {
							e.Price += 30
							row[k] = e
						}
					}
					return pt
				}}
			},
		},
		{
			// Manipulation 3 (change): tamper outgoing advertisements
			// without touching internal state.
			name:    "tamper-adverts",
			classes: []spec.ActionKind{spec.MessagePassing, spec.Computation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{SendUpdate: func(_ graph.NodeID, u fpss.Update) (fpss.Update, bool) {
					for d, e := range u.Routing {
						e.Cost = 0
						u.Routing[d] = e
					}
					return u, true
				}}
			},
		},
		{
			// Manipulation 1 (drop): stop advertising entirely.
			name:    "drop-adverts",
			classes: []spec.ActionKind{spec.MessagePassing},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{SendUpdate: func(graph.NodeID, fpss.Update) (fpss.Update, bool) {
					return fpss.Update{}, false
				}}
			},
		},
		{
			// Spoof in the plain protocol: impersonate another node in
			// advertisements to poison a neighbor's view of it.
			name:    "impersonate-neighbor",
			classes: []spec.ActionKind{spec.MessagePassing, spec.Computation},
			protocol: func(ctx Ctx) *fpss.Strategy {
				neighbors := ctx.Graph.Neighbors(ctx.Node)
				if len(neighbors) == 0 {
					return nil
				}
				victim := neighbors[0]
				return &fpss.Strategy{SendUpdate: func(_ graph.NodeID, u fpss.Update) (fpss.Update, bool) {
					u.From = victim
					for d, e := range u.Routing {
						e.Cost += 60
						u.Routing[d] = e
					}
					return u, true
				}}
			},
		},
		{
			// Tag-only corruption: prices stay right but the identity
			// tags lie — exactly the inconsistency [BANK2] compares.
			name:    "tamper-pricing-tags",
			classes: []spec.ActionKind{spec.Computation},
			protocol: func(ctx Ctx) *fpss.Strategy {
				self := ctx.Node
				return &fpss.Strategy{PostPricing: func(pt fpss.PricingTable) fpss.PricingTable {
					for _, row := range pt {
						for k, e := range row {
							e.Tags = []graph.NodeID{self}
							row[k] = e
						}
					}
					return pt
				}}
			},
		},
		{
			// Manipulation 1 (selective): advertise honestly to some
			// neighbors but silently starve one of updates.
			name:    "selective-drop-adverts",
			classes: []spec.ActionKind{spec.MessagePassing},
			protocol: func(ctx Ctx) *fpss.Strategy {
				neighbors := ctx.Graph.Neighbors(ctx.Node)
				if len(neighbors) == 0 {
					return nil
				}
				victim := neighbors[len(neighbors)-1]
				return &fpss.Strategy{SendUpdate: func(to graph.NodeID, u fpss.Update) (fpss.Update, bool) {
					if to == victim {
						return fpss.Update{}, false
					}
					return u, true
				}}
			},
		},
		{
			// Manipulation 3 (change): deflate advertised avoid-k
			// prices, corrupting downstream B-value recovery.
			name:    "deflate-advertised-prices",
			classes: []spec.ActionKind{spec.MessagePassing, spec.Computation},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{SendUpdate: func(_ graph.NodeID, u fpss.Update) (fpss.Update, bool) {
					for _, row := range u.Pricing {
						for k, e := range row {
							e.Price /= 2
							row[k] = e
						}
					}
					return u, true
				}}
			},
		},
		{
			name:          "underreport-payments-all",
			classes:       []spec.ActionKind{spec.Computation},
			boundedExec:   true,
			reportPayment: func(fpss.PaymentList) fpss.PaymentList { return fpss.PaymentList{} },
		},
		{
			name:        "underreport-payments-half",
			classes:     []spec.ActionKind{spec.Computation},
			boundedExec: true,
			reportPayment: func(t fpss.PaymentList) fpss.PaymentList {
				out := make(fpss.PaymentList, len(t))
				for k, v := range t {
					out[k] = v / 2
				}
				return out
			},
		},
		{
			// Joint deviation (strong-AC/strong-CC territory): lie about
			// the cost AND miscompute routing AND underreport payments.
			name:    "joint-lie-miscompute-underreport",
			classes: []spec.ActionKind{spec.InfoRevelation, spec.Computation, spec.MessagePassing},
			protocol: func(Ctx) *fpss.Strategy {
				return &fpss.Strategy{
					DeclareCost: func(t graph.Cost) graph.Cost { return t + 3 },
					PostRouting: func(rt fpss.RoutingTable) fpss.RoutingTable {
						for d, e := range rt {
							e.Cost = 0
							rt[d] = e
						}
						return rt
					},
				}
			},
			reportPayment: func(fpss.PaymentList) fpss.PaymentList { return fpss.PaymentList{} },
		},
	}

	if !forFaithful {
		return all
	}
	all = append(all,
		&Deviation{
			name:         "drop-checker-forwards",
			classes:      []spec.ActionKind{spec.MessagePassing},
			faithfulOnly: true,
			checker: func(Ctx) *faithful.Strategy {
				return &faithful.Strategy{ForwardToChecker: func(graph.NodeID, faithful.ForwardCopy) (faithful.ForwardCopy, bool) {
					return faithful.ForwardCopy{}, false
				}}
			},
		},
		&Deviation{
			name:         "tamper-checker-forwards",
			classes:      []spec.ActionKind{spec.MessagePassing},
			faithfulOnly: true,
			checker: func(Ctx) *faithful.Strategy {
				return &faithful.Strategy{ForwardToChecker: func(_ graph.NodeID, fc faithful.ForwardCopy) (faithful.ForwardCopy, bool) {
					for d, e := range fc.U.Routing {
						e.Cost++
						fc.U.Routing[d] = e
					}
					return fc, true
				}}
			},
		},
		&Deviation{
			name:         "spoof-checker-copies",
			classes:      []spec.ActionKind{spec.MessagePassing, spec.Computation},
			faithfulOnly: true,
			checker: func(ctx Ctx) *faithful.Strategy {
				neighbors := ctx.Graph.Neighbors(ctx.Node)
				if len(neighbors) == 0 {
					return nil
				}
				source := neighbors[0]
				return &faithful.Strategy{SpoofCopies: func(self graph.NodeID) []faithful.ForwardCopy {
					rt := make(fpss.RoutingTable)
					for i := 0; i < ctx.Graph.N(); i++ {
						d := graph.NodeID(i)
						if d == source || d == self {
							continue
						}
						rt[d] = fpss.RouteEntry{Dest: d, Cost: 0, Path: graph.Path{source, d}}
					}
					return []faithful.ForwardCopy{{
						Principal: self,
						From:      source,
						U:         fpss.Update{From: source, Routing: rt, Pricing: fpss.PricingTable{}},
					}}
				}}
			},
		},
		&Deviation{
			name:         "lie-state-report",
			classes:      []spec.ActionKind{spec.Computation},
			faithfulOnly: true,
			checker: func(Ctx) *faithful.Strategy {
				return &faithful.Strategy{
					Protocol: fpss.Strategy{PostPricing: func(pt fpss.PricingTable) fpss.PricingTable {
						for _, row := range pt {
							for k, e := range row {
								e.Price += 11
								row[k] = e
							}
						}
						return pt
					}},
					ReportState: func(truth faithfulStateReport) faithfulStateReport {
						truth.Flags = nil
						truth.PricingHash = fpss.Hash{}
						return truth
					},
				}
			},
		},
	)
	return all
}

// LossCatalogue returns the loss-exploiting deviation family — §5's
// "hide behind the network" strategies, meaningful only when the
// scenario's Params.Loss axis is enabled (the System adapters append
// it then; a reliable scenario keeps the classic catalogue
// byte-identical). Each entry abuses the ambiguity between "node
// deviated" and "message lost": the faithful construction must still
// attribute them to the node, because handler-level drops never look
// like network losses to the attribution gate (sim counters only count
// drops the network itself performed).
func LossCatalogue(forFaithful bool) []*Deviation {
	all := []*Deviation{
		{
			// Selective dropping disguised as random loss: starve one
			// neighbor of every other advertisement, a pattern chosen to
			// be statistically indistinguishable from a ~50% lossy link.
			name:    "fake-loss-drop-adverts",
			classes: []spec.ActionKind{spec.MessagePassing},
			protocol: func(ctx Ctx) *fpss.Strategy {
				neighbors := ctx.Graph.Neighbors(ctx.Node)
				if len(neighbors) == 0 {
					return nil
				}
				victim := neighbors[len(neighbors)-1]
				drops := 0 // per-play: protocol() builds a fresh closure each play
				return &fpss.Strategy{SendUpdate: func(to graph.NodeID, u fpss.Update) (fpss.Update, bool) {
					if to != victim {
						return u, true
					}
					drops++
					return u, drops%2 == 0
				}}
			},
		},
		{
			// Ack withholding: the receiver discards a neighbor's
			// updates and lets the sender's retry envelope take the
			// blame — "the network must have lost it".
			name:    "withhold-acks",
			classes: []spec.ActionKind{spec.MessagePassing},
			protocol: func(ctx Ctx) *fpss.Strategy {
				neighbors := ctx.Graph.Neighbors(ctx.Node)
				if len(neighbors) == 0 {
					return nil
				}
				victim := neighbors[0]
				return &fpss.Strategy{RecvUpdate: func(u fpss.Update) (fpss.Update, bool) {
					if u.From == victim {
						return fpss.Update{}, false
					}
					return u, true
				}}
			},
		},
	}
	if !forFaithful {
		return all
	}
	return append(all,
		&Deviation{
			// Loss-rate misreporting: drop every checker forward and
			// scrub the resulting flags from the state report, blaming
			// the lossy network for the missing copies.
			name:         "misreport-loss-blame",
			classes:      []spec.ActionKind{spec.MessagePassing, spec.Computation},
			faithfulOnly: true,
			checker: func(Ctx) *faithful.Strategy {
				return &faithful.Strategy{
					ForwardToChecker: func(graph.NodeID, faithful.ForwardCopy) (faithful.ForwardCopy, bool) {
						return faithful.ForwardCopy{}, false
					},
					ReportState: func(truth faithfulStateReport) faithfulStateReport {
						truth.Flags = nil
						return truth
					},
				}
			},
		},
	)
}

// ProtocolStrategy builds the deviation's construction-phase strategy
// for ctx. It reports false when the deviation has no protocol part —
// checker-, execution-, and settlement-only deviations have no
// realization as a live node's strategy, so a serving layer cannot
// inject them into a resident network.
func (d *Deviation) ProtocolStrategy(ctx Ctx) (*fpss.Strategy, bool) {
	if d.protocol == nil {
		return nil, false
	}
	return d.protocol(ctx), true
}

// FindDeviation looks up a catalogued deviation by name across the
// classic, loss, and shard families. The live server resolves Inject
// requests through this, so "which deviations exist" has exactly one
// answer shared by the batch checker and the serving path.
func FindDeviation(name string, forFaithful bool) (*Deviation, bool) {
	for _, list := range [][]*Deviation{
		Catalogue(forFaithful),
		LossCatalogue(forFaithful),
		ShardCatalogue(forFaithful),
	} {
		for _, d := range list {
			if d.name == name {
				return d, true
			}
		}
	}
	return nil, false
}
