package rational

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/settle"
	"repro/internal/spec"
)

// This file wires the sharded settlement (internal/settle) into the
// deviation search: the shard-window deviation family, the translation
// of an execution phase into a settlement batch, and the settlement
// stage each System appends to a deviant play. Honest plays never run
// settlement — an honest settlement is delta-zero by construction
// (Batch.Expected equals the realized utilities, and the honest sweeps
// in internal/settle pin that every transfer commits under every crash
// plan), so skipping it keeps the baseline identical to the pre-shard
// scenario.

// ShardCatalogue returns the shard-window deviation family — attacks
// on the bank's own settlement rather than on routing or pricing,
// meaningful only when Params.Settle enables the shard axis (the
// System adapters append it then; a singleton-bank scenario keeps the
// classic catalogue byte-identical). Every entry exists in both
// protocol variants: the baseline one-phase settlement is where they
// pay, the crash-tolerant 2PC is where they are flagged and fined.
func ShardCatalogue(forFaithful bool) []*Deviation {
	_ = forFaithful // no entry is faithful-only: the attack surface is the bank itself
	return []*Deviation{
		{
			// The 2PC-window exit scam: co-sign the debit, then request
			// account closure before commit, hoping the debit bounces
			// while already-received credits stay.
			name:    "exit-scam-2pc-window",
			classes: []spec.ActionKind{spec.MessagePassing},
			settle: func(Ctx) *settle.Strategy {
				return &settle.Strategy{VanishAfterPrepare: true}
			},
		},
		{
			// Present the local credit to two shards — the true home and
			// a second claimed home — hoping the duplicate is applied.
			name:    "double-credit-two-homes",
			classes: []spec.ActionKind{spec.InfoRevelation, spec.Computation},
			settle: func(Ctx) *settle.Strategy {
				return &settle.Strategy{DoubleClaim: true}
			},
		},
		{
			// Withhold every co-sign, trying to time the coordinator out
			// into a profitable abort of the deviator's debits.
			name:    "stall-prepare-abort",
			classes: []spec.ActionKind{spec.MessagePassing},
			settle: func(Ctx) *settle.Strategy {
				return &settle.Strategy{StallPrepare: true}
			},
		},
	}
}

// settleBatch converts an execution phase's accounting into the
// settlement workload the sharded bank clears: each honest DATA4
// obligation entry becomes a cross-shard transfer, and each account's
// local credit is its realized utility net of those flows
// (Local = util + out − in). When every transfer commits the final
// balances equal the utilities, so a deviant settlement's Deltas are
// exactly the money the deviation moved. Iteration is sorted — the
// batch must be byte-identical between the Run oracle and the
// snapshot fast path.
func settleBatch(exec *fpss.ExecResult) *settle.Batch {
	nodes := make([]graph.NodeID, 0, len(exec.Utilities))
	for n := range exec.Utilities {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	b := &settle.Batch{
		Accounts: make([]settle.Account, 0, len(nodes)),
		Local:    make(map[settle.Account]int64, len(nodes)),
	}
	in := make(map[graph.NodeID]int64, len(nodes))
	out := make(map[graph.NodeID]int64, len(nodes))
	id := 0
	for _, from := range nodes {
		ob := exec.Obligations[from]
		tos := make([]graph.NodeID, 0, len(ob))
		for to := range ob {
			tos = append(tos, to)
		}
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
		for _, to := range tos {
			amt := ob[to]
			if amt == 0 || to == from {
				continue
			}
			out[from] += amt
			in[to] += amt
			b.Transfers = append(b.Transfers, settle.Transfer{
				ID: id, From: settle.Account(from), To: settle.Account(to), Amount: amt,
			})
			id++
		}
	}
	for _, n := range nodes {
		b.Accounts = append(b.Accounts, settle.Account(n))
		b.Local[settle.Account(n)] = exec.Utilities[n] + out[n] - in[n]
	}
	return b
}

// applySettlement folds the baseline settlement of the execution's
// batch into a deviant play's outcome: the deviator plays its
// settlement strategy against the manipulable one-phase mechanism and
// pockets whatever its balance shifts by (the others eat the loss).
// Honest strategies are a no-op — the baseline settlement of an
// all-honest batch is delta-zero.
func (s *PlainSystem) applySettlement(out *core.Outcome, batch *settle.Batch, deviator core.NodeID, d *Deviation) {
	strat := d.settle(Ctx{Graph: s.Graph, Node: graph.NodeID(deviator)})
	if !strat.Deviant() {
		return
	}
	res := settle.RunPlain(s.Params.Settle, batch, map[settle.Account]*settle.Strategy{
		settle.Account(deviator): strat,
	})
	for a, delta := range res.Deltas {
		out.Utilities[core.NodeID(a)] += delta
	}
}

// applySettlement folds the crash-tolerant 2PC settlement into a
// deviant play's outcome: balance deltas (zero whenever every transfer
// commits, which the plan-derived fault schedules guarantee), plus an
// ε fine and a detection mark per settlement flag — the sharded bank's
// checkers attribute the deviation to the account directly.
func (s *FaithfulSystem) applySettlement(out *core.Outcome, batch *settle.Batch, deviator core.NodeID, d *Deviation) error {
	strat := d.settle(Ctx{Graph: s.Graph, Node: graph.NodeID(deviator)})
	if !strat.Deviant() {
		return nil
	}
	res, err := settle.RunFaithful(s.Params.Settle, batch, map[settle.Account]*settle.Strategy{
		settle.Account(deviator): strat,
	})
	if err != nil {
		return fmt.Errorf("faithful settle: %w", err)
	}
	for a, delta := range res.Deltas {
		out.Utilities[core.NodeID(a)] += delta
	}
	for _, f := range res.Flags {
		out.Utilities[core.NodeID(f.Account)] -= s.Params.Settle.Penalty()
		out.Detected = append(out.Detected, core.NodeID(f.Account))
	}
	return nil
}
