package rational

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/settle"
	"repro/internal/sign"
	"repro/internal/sim"
)

// This file implements core.StatefulSystem for both protocol systems:
// the truthful run is snapshotted once per scenario (converged table
// views, honest outcome, obligations, audit bank) and every deviant
// play overlays it — execution-phase-only deviations skip the
// protocol simulation entirely, and full plays draw their network,
// bank, and result maps from the worker's play-context arena.

// arenaKey keys the rational play arena in a core.PlayContext
// (unexported type per the context.Context convention, so the churn
// package's arena coexists without colliding).
type arenaKey struct{}

// playArena is the per-worker reusable state behind Play: a
// caller-owned simulator network and bank (consolidating what used to
// cycle through the sim/faithful package pools under contention), and
// the per-play maps that deviation searches otherwise reallocate tens
// of thousands of times. All methods tolerate a nil receiver by
// falling back to fresh allocation — that is the legacy Run behavior.
type playArena struct {
	net      *sim.Network
	bank     *bank.Bank
	util     map[core.NodeID]int64
	routing  map[graph.NodeID]fpss.RoutingTable
	pricing  map[graph.NodeID]fpss.PricingTable
	declared fpss.CostTable
	pstrat   map[graph.NodeID]*fpss.Strategy
	fstrat   map[graph.NodeID]*faithful.Strategy
	hooks    map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList
}

// arenaOf returns the context's rational arena, building it on first
// use. A nil context yields a nil arena — every helper then allocates
// fresh, so plays still work, just unpooled.
func arenaOf(ctx *core.PlayContext) *playArena {
	if ctx == nil {
		return nil
	}
	return ctx.Value(arenaKey{}, func() any { return &playArena{} }).(*playArena)
}

func (a *playArena) network() *sim.Network {
	if a == nil {
		return nil // protocol runs fall back to the package pool
	}
	if a.net == nil {
		a.net = sim.NewNetwork()
	}
	return a.net
}

func (a *playArena) auditBank() *bank.Bank {
	if a == nil {
		return nil // faithful.Run falls back to its pool
	}
	if a.bank == nil {
		a.bank = new(bank.Bank)
	}
	return a.bank
}

func (a *playArena) outcome(hint int) map[core.NodeID]int64 {
	if a == nil {
		return make(map[core.NodeID]int64, hint)
	}
	if a.util == nil {
		a.util = make(map[core.NodeID]int64, hint)
	} else {
		clear(a.util)
	}
	return a.util
}

func (a *playArena) routingViews(hint int) map[graph.NodeID]fpss.RoutingTable {
	if a == nil {
		return make(map[graph.NodeID]fpss.RoutingTable, hint)
	}
	if a.routing == nil {
		a.routing = make(map[graph.NodeID]fpss.RoutingTable, hint)
	} else {
		clear(a.routing)
	}
	return a.routing
}

func (a *playArena) pricingViews(hint int) map[graph.NodeID]fpss.PricingTable {
	if a == nil {
		return make(map[graph.NodeID]fpss.PricingTable, hint)
	}
	if a.pricing == nil {
		a.pricing = make(map[graph.NodeID]fpss.PricingTable, hint)
	} else {
		clear(a.pricing)
	}
	return a.pricing
}

func (a *playArena) declaredCosts(hint int) fpss.CostTable {
	if a == nil {
		return make(fpss.CostTable, hint)
	}
	if a.declared == nil {
		a.declared = make(fpss.CostTable, hint)
	} else {
		clear(a.declared)
	}
	return a.declared
}

func (a *playArena) plainStrategies() map[graph.NodeID]*fpss.Strategy {
	if a == nil {
		return make(map[graph.NodeID]*fpss.Strategy, 1)
	}
	if a.pstrat == nil {
		a.pstrat = make(map[graph.NodeID]*fpss.Strategy, 1)
	} else {
		clear(a.pstrat)
	}
	return a.pstrat
}

func (a *playArena) faithfulStrategies() map[graph.NodeID]*faithful.Strategy {
	if a == nil {
		return make(map[graph.NodeID]*faithful.Strategy, 1)
	}
	if a.fstrat == nil {
		a.fstrat = make(map[graph.NodeID]*faithful.Strategy, 1)
	} else {
		clear(a.fstrat)
	}
	return a.fstrat
}

func (a *playArena) reportHooks() map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList {
	if a == nil {
		return make(map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList, 1)
	}
	if a.hooks == nil {
		a.hooks = make(map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList, 1)
	} else {
		clear(a.hooks)
	}
	return a.hooks
}

// plainState is PlainSystem's truthful snapshot: the honest converged
// table views, declared costs, honest outcome, and each source's
// honest obligation total (the static profit ceiling of a payment
// underreport). Immutable once built; shared by every worker.
type plainState struct {
	base     core.Outcome
	routing  map[graph.NodeID]fpss.RoutingTable
	pricing  map[graph.NodeID]fpss.PricingTable
	declared fpss.CostTable
	owed     map[graph.NodeID]int64
	// batch is the honest settlement workload (nil unless the shard
	// axis is enabled) — shared by every settle-only play.
	batch *settle.Batch
}

// Baseline implements core.TruthfulState.
func (st *plainState) Baseline() core.Outcome { return st.base }

var _ core.StatefulSystem = (*PlainSystem)(nil)
var _ core.Bounder = (*PlainSystem)(nil)

// Snapshot implements core.StatefulSystem: one honest protocol run,
// retained. Idempotent — the snapshot is computed once per system and
// shared (it is read-only), so Bounder and repeated checks reuse it.
func (s *PlainSystem) Snapshot() (core.TruthfulState, error) {
	s.scen.init(s.Graph, s.Params, false)
	s.snapOnce.Do(func() {
		var st *plainState
		if sol := s.seed; sol != nil && !s.Params.Loss.Enabled() {
			// Seeded: the central solution is the converged honest
			// construction (honest nodes declare true costs), so the
			// snapshot shares its immutable tables outright and only the
			// execution tail below runs.
			st = &plainState{
				routing:  sol.Routing,
				pricing:  sol.Pricing,
				declared: sol.Costs,
				owed:     make(map[graph.NodeID]int64, len(sol.Costs)),
			}
		} else {
			res, err := fpss.Run(fpss.Config{Graph: s.Graph, Loss: s.Params.Loss})
			if err != nil {
				s.snapErr = fmt.Errorf("plain run: %w", err)
				return
			}
			n := len(res.Nodes)
			st = &plainState{
				routing:  make(map[graph.NodeID]fpss.RoutingTable, n),
				pricing:  make(map[graph.NodeID]fpss.PricingTable, n),
				declared: make(fpss.CostTable, n),
				owed:     make(map[graph.NodeID]int64, n),
			}
			for id, node := range res.Nodes {
				// Quiescent-network views, retained past the nodes'
				// lifetime: converged tables are immutable.
				st.routing[id] = node.RoutingView()
				st.pricing[id] = node.PricingView()
				st.declared[id] = node.DeclaredCost()
			}
		}
		exec, err := s.executeOn(st, nil)
		if err != nil {
			s.snapErr = err
			return
		}
		st.base = core.Outcome{Utilities: make(map[core.NodeID]int64, len(exec.Utilities)), Completed: true}
		for id, u := range exec.Utilities {
			st.base.Utilities[core.NodeID(id)] = u
		}
		for id, ob := range exec.Obligations {
			st.owed[id] = ob.Total()
		}
		if s.Params.Settle.Enabled() {
			st.batch = settleBatch(exec)
		}
		s.snap = st
	})
	if s.snapErr != nil {
		return nil, s.snapErr
	}
	return s.snap, nil
}

// executeOn runs execution-phase accounting over the snapshot's
// tables — the shared tail of Snapshot and the exec-only fast path.
func (s *PlainSystem) executeOn(st *plainState, hooks map[graph.NodeID]func(fpss.PaymentList) fpss.PaymentList) (*fpss.ExecResult, error) {
	exec, err := fpss.Execute(st.routing, st.pricing, fpss.ExecConfig{
		TrueCosts:          s.scen.trueCosts,
		DeclaredCosts:      st.declared,
		Traffic:            s.Params.Traffic,
		Flows:              s.scen.flows,
		DeliveryValue:      s.Params.DeliveryValue,
		UndeliveredPenalty: s.Params.UndeliveredPenalty,
		Scheme:             s.Params.Scheme,
		ReportPayment:      hooks,
	})
	if err != nil {
		return nil, fmt.Errorf("plain execute: %w", err)
	}
	return exec, nil
}

// Play implements core.StatefulSystem. Execution-only deviations
// (payment misreports) overlay the snapshot without re-running the
// protocol — the honest construction is deterministic, so the result
// is byte-identical to a full Run. Everything else replays the
// protocol through the arena's network. The returned Outcome lives in
// the context's arena (valid until the next Play on the same context).
func (s *PlainSystem) Play(ctx *core.PlayContext, st core.TruthfulState, deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	snap, ok := st.(*plainState)
	if !ok {
		return s.Run(deviator, dev) // foreign snapshot: stay correct
	}
	if deviator < 0 || dev == nil {
		return snap.base, nil
	}
	d, ok := dev.(*Deviation)
	if !ok {
		return core.Outcome{}, fmt.Errorf("rational: foreign deviation %q", dev.Name())
	}
	ar := arenaOf(ctx)
	if d.ExecOnly() {
		hooks := ar.reportHooks()
		hooks[graph.NodeID(deviator)] = d.reportPayment
		exec, err := s.executeOn(snap, hooks)
		if err != nil {
			return core.Outcome{}, err
		}
		out := core.Outcome{Utilities: ar.outcome(len(exec.Utilities)), Completed: true}
		for id, u := range exec.Utilities {
			out.Utilities[core.NodeID(id)] = u
		}
		return out, nil
	}
	if d.SettleOnly() && snap.batch != nil {
		// The construction and execution phases stay honest: overlay
		// the deviant settlement on the snapshot's batch directly.
		out := core.Outcome{Utilities: ar.outcome(len(snap.base.Utilities)), Completed: true}
		for id, u := range snap.base.Utilities {
			out.Utilities[id] = u
		}
		s.applySettlement(&out, snap.batch, deviator, d)
		return out, nil
	}
	return s.play(deviator, d, ar)
}

// ProfitUpperBound implements core.Bounder: a catalogue-built payment
// underreport can pocket at most what the deviator honestly owes its
// transit nodes — everything else in its utility is untouched by an
// execution-phase-only deviation. Other deviations get no bound.
func (s *PlainSystem) ProfitUpperBound(deviator core.NodeID, dev core.Deviation, _ int) (int64, bool) {
	d, ok := dev.(*Deviation)
	if !ok || !d.boundedExec {
		return 0, false
	}
	st, err := s.Snapshot()
	if err != nil {
		return 0, false
	}
	snap := st.(*plainState)
	base, ok := snap.base.Utilities[deviator]
	if !ok {
		return 0, false
	}
	return base + snap.owed[graph.NodeID(deviator)], true
}

// faithfulState is FaithfulSystem's truthful snapshot: the honest
// outcome plus the certified post-construction state (tables and
// audit bank) when the honest run was green-lit.
type faithfulState struct {
	base core.Outcome
	exec faithful.ExecState
	ok   bool // exec is valid (honest run completed undetected)
	// batch is the honest settlement workload (nil unless the shard
	// axis is enabled and the honest run was certified).
	batch *settle.Batch
}

// Baseline implements core.TruthfulState.
func (st *faithfulState) Baseline() core.Outcome { return st.base }

var _ core.StatefulSystem = (*FaithfulSystem)(nil)
var _ core.Bounder = (*FaithfulSystem)(nil)

// Snapshot implements core.StatefulSystem (see PlainSystem.Snapshot).
// The snapshot owns a dedicated bank so its audit view outlives the
// run without touching the package pool.
func (s *FaithfulSystem) Snapshot() (core.TruthfulState, error) {
	s.scen.init(s.Graph, s.Params, true)
	s.snapOnce.Do(func() {
		if sol := s.seed; sol != nil && !s.Params.Loss.Enabled() {
			// Seeded: an honest construction always converges to the
			// central solution and always passes the bank checkpoint, so
			// the certified post-checkpoint state can be synthesized
			// without simulating phases 1/2. The audit bank only needs
			// its node list (the checker-assignment keys, exactly what
			// Run registers via Reuse); the execution phase and payment
			// audit then replay through the same execAndAudit tail Run
			// uses, making the outcome byte-identical.
			auditor := new(bank.Bank)
			auditor.Reuse(sign.NewAuthority(), s.scen.checkers)
			st := &faithfulState{
				exec: faithful.ExecState{
					Routing:   sol.Routing,
					Pricing:   sol.Pricing,
					Declared:  sol.Costs,
					TrueCosts: s.scen.trueCosts,
					Bank:      auditor,
				},
			}
			res, err := faithful.ExecPlay(st.exec, s.runConfig(nil, nil, nil), nil)
			if err != nil {
				s.snapErr = fmt.Errorf("faithful seeded snapshot: %w", err)
				return
			}
			st.base = outcomeOf(res, nil)
			st.ok = true
			if s.Params.Settle.Enabled() && res.Exec != nil {
				st.batch = settleBatch(res.Exec)
			}
			s.snap = st
			return
		}
		auditor := new(bank.Bank)
		res, err := faithful.Run(s.runConfig(nil, nil, auditor))
		if err != nil {
			s.snapErr = fmt.Errorf("faithful run: %w", err)
			return
		}
		st := &faithfulState{base: outcomeOf(res, nil)}
		if res.Completed && len(res.Detections) == 0 {
			n := len(res.Nodes)
			st.exec = faithful.ExecState{
				Routing:   make(map[graph.NodeID]fpss.RoutingTable, n),
				Pricing:   make(map[graph.NodeID]fpss.PricingTable, n),
				Declared:  make(fpss.CostTable, n),
				TrueCosts: s.scen.trueCosts,
				Bank:      auditor,
			}
			for id, node := range res.Nodes {
				st.exec.Routing[id] = node.RoutingView()
				st.exec.Pricing[id] = node.PricingView()
				st.exec.Declared[id] = node.DeclaredCost()
			}
			st.ok = true
			if s.Params.Settle.Enabled() && res.Exec != nil {
				st.batch = settleBatch(res.Exec)
			}
		}
		s.snap = st
	})
	if s.snapErr != nil {
		return nil, s.snapErr
	}
	return s.snap, nil
}

// runConfig assembles the faithful.Config shared by Run, Snapshot and
// the arena-backed plays.
func (s *FaithfulSystem) runConfig(strategies map[graph.NodeID]*faithful.Strategy, net *sim.Network, b *bank.Bank) faithful.Config {
	return faithful.Config{
		Graph:              s.Graph,
		Strategies:         strategies,
		Traffic:            s.Params.Traffic,
		Flows:              s.scen.flows,
		Neighbors:          s.scen.neighbors,
		Checkers:           s.scen.checkers,
		DeliveryValue:      s.Params.DeliveryValue,
		UndeliveredPenalty: s.Params.UndeliveredPenalty,
		NonProgressPenalty: s.Params.NonProgressPenalty,
		Epsilon:            s.Params.Epsilon,
		CheckerLimit:       s.Params.CheckerLimit,
		Loss:               s.Params.Loss,
		Net:                net,
		Bank:               b,
	}
}

// outcomeOf maps a faithful result onto a core.Outcome, writing
// utilities into util when supplied (arena reuse) and allocating
// otherwise.
func outcomeOf(res *faithful.Result, util map[core.NodeID]int64) core.Outcome {
	if util == nil {
		util = make(map[core.NodeID]int64, len(res.Utilities))
	}
	out := core.Outcome{Utilities: util, Completed: res.Completed}
	for id, u := range res.Utilities {
		out.Utilities[core.NodeID(id)] = u
	}
	for _, det := range res.Detections {
		if det.Principal >= 0 {
			out.Detected = append(out.Detected, core.NodeID(det.Principal))
		}
	}
	for _, f := range res.PaymentFindings {
		out.Detected = append(out.Detected, core.NodeID(f.Node))
	}
	return out
}

// Play implements core.StatefulSystem (see PlainSystem.Play). The
// execution-only overlay replays accounting and the payment audit on
// the certified snapshot through faithful.ExecPlay.
func (s *FaithfulSystem) Play(ctx *core.PlayContext, st core.TruthfulState, deviator core.NodeID, dev core.Deviation) (core.Outcome, error) {
	snap, ok := st.(*faithfulState)
	if !ok {
		return s.Run(deviator, dev)
	}
	if deviator < 0 || dev == nil {
		return snap.base, nil
	}
	d, ok := dev.(*Deviation)
	if !ok {
		return core.Outcome{}, fmt.Errorf("rational: foreign deviation %q", dev.Name())
	}
	ar := arenaOf(ctx)
	if d.ExecOnly() && snap.ok {
		hooks := ar.reportHooks()
		hooks[graph.NodeID(deviator)] = d.reportPayment
		res, err := faithful.ExecPlay(snap.exec, s.runConfig(nil, nil, nil), hooks)
		if err != nil {
			return core.Outcome{}, fmt.Errorf("faithful run: %w", err)
		}
		return outcomeOf(res, ar.outcome(len(res.Utilities))), nil
	}
	if d.SettleOnly() && snap.ok && snap.batch != nil {
		// Everything up to the settlement window is honest and
		// certified: overlay the deviant 2PC settlement on the
		// snapshot's batch directly.
		out := core.Outcome{Utilities: ar.outcome(len(snap.base.Utilities)), Completed: snap.base.Completed}
		for id, u := range snap.base.Utilities {
			out.Utilities[id] = u
		}
		if err := s.applySettlement(&out, snap.batch, deviator, d); err != nil {
			return core.Outcome{}, err
		}
		return out, nil
	}
	return s.play(deviator, d, ar)
}

// ProfitUpperBound implements core.Bounder: under the extended
// specification the bank settles any DATA4 misreport back to the true
// obligation and fines ε above the attempted deviation, so an
// execution-phase-only deviation can never beat the honest baseline —
// whatever its hook reports. The same ceiling holds for settle-only
// deviations on a reliable network with a plan-derived fault schedule:
// the crash-tolerant 2PC still commits every transfer (the settle
// sweeps pin this), so the deviator's balance delta is zero and a flag
// only subtracts ε. Under lossy links or a custom fault override,
// infrastructure aborts can genuinely shift balances, so no bound is
// claimed there; construction and checker deviations get none either.
func (s *FaithfulSystem) ProfitUpperBound(deviator core.NodeID, dev core.Deviation, _ int) (int64, bool) {
	d, ok := dev.(*Deviation)
	if !ok {
		return 0, false
	}
	settleOnly := d.SettleOnly() && !s.Params.Loss.Enabled() && s.Params.Settle.FaultOverride == nil
	if !d.ExecOnly() && !settleOnly {
		return 0, false
	}
	st, err := s.Snapshot()
	if err != nil {
		return 0, false
	}
	snap := st.(*faithfulState)
	if !snap.ok {
		return 0, false
	}
	base, ok := snap.base.Utilities[deviator]
	if !ok {
		return 0, false
	}
	return base, true
}
