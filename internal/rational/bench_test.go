package rational

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkCheckFaithfulness is the deviation-search trajectory
// benchmark: the E6 workload (full rational catalogue on the Figure 1
// scenario, every node) against both protocol variants, swept over
// worker-pool sizes. w=1 is the sequential oracle; the w=8 rows are
// the engine's headline wall-clock figure on 8-core hardware. Each
// iteration builds a fresh System, so the per-scenario sharing
// (catalogue, topology views, flow order) is measured, not hidden.
//
// CI parses the -benchmem output into BENCH_faithful.json and compares
// it against the committed BENCH_faithful.baseline.json.
func BenchmarkCheckFaithfulness(b *testing.B) {
	g := graph.Figure1()
	systems := []struct {
		name string
		mk   func() core.System
	}{
		{"plain", func() core.System { return &PlainSystem{Graph: g, Params: DefaultParams(g)} }},
		{"faithful", func() core.System { return &FaithfulSystem{Graph: g, Params: DefaultParams(g)} }},
	}
	for _, sc := range systems {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w=%d", sc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				checked := 0
				for i := 0; i < b.N; i++ {
					rep, err := core.CheckFaithfulnessCfg(sc.mk(), core.CheckConfig{Workers: w})
					if err != nil {
						b.Fatal(err)
					}
					checked = rep.Checked
				}
				b.ReportMetric(float64(checked), "plays")
			})
		}
	}
}

// BenchmarkFaithfulRunHonest times one honest extended-protocol run on
// Figure 1 — the baseline run every deviation search starts with, and
// the unit the engine replays hundreds of times.
func BenchmarkFaithfulRunHonest(b *testing.B) {
	g := graph.Figure1()
	sys := &FaithfulSystem{Graph: g, Params: DefaultParams(g)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(-1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
