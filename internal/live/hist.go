package live

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers int64 nanosecond values with 32 linear buckets
// per octave above 32ns (HDR-histogram style log-linear layout):
// values < 32 get exact buckets, larger values land in bucket
// (e<<5)+(v>>e) for e = bits.Len64(v)−6, bounding relative error by
// 1/32 ≈ 3%. Bucket 1887 (e=57, sub=63) is the top of the int64 range.
const histBuckets = 1888

// Histogram is a fixed-size, lock-free latency histogram: concurrent
// Record calls are single atomic increments, quantile reads walk the
// bucket array. The zero value is NOT ready; use NewHistogram.
type Histogram struct {
	counts []atomic.Int64
	total  atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, histBuckets)}
}

func bucketOf(v int64) int {
	if v < 32 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 6
	return (e << 5) + int(v>>uint(e))
}

// bucketValue returns the lower bound of bucket b — the value Quantile
// reports for samples landing there.
func bucketValue(b int) int64 {
	if b < 32 {
		return int64(b)
	}
	e := b/32 - 1
	sub := int64(b - e*32)
	return sub << uint(e)
}

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d.Nanoseconds())].Add(1)
	h.total.Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile returns the latency at quantile q in [0, 1] (0 on an empty
// histogram), accurate to the bucket's ~3% width.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for b := range h.counts {
		seen += h.counts[b].Load()
		if seen >= target {
			return time.Duration(bucketValue(b))
		}
	}
	return time.Duration(bucketValue(histBuckets - 1))
}

// Summary renders the standard percentile line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v p999=%v",
		h.Count(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999))
}
