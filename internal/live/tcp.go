package live

import (
	"encoding/json"
	"errors"
	"net"
	"sync"
)

// Serve accepts connections on ln and serves newline-delimited JSON
// request/response pairs against d until the listener closes. Each
// connection gets its own goroutine; requests on one connection are
// served in order.
func Serve(ln net.Listener, d Dispatcher) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, d)
	}
}

func serveConn(conn net.Conn, d Dispatcher) {
	defer conn.Close()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if err := enc.Encode(d.Dispatch(req)); err != nil {
			return
		}
	}
}

// Client is a Dispatcher over one TCP connection. Dispatch is safe for
// concurrent use; requests serialize on the connection (one in flight
// at a time — the protocol has no request IDs, by design: the server
// answers in order).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a Serve listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}, nil
}

// Dispatch implements Dispatcher over the wire. Transport errors come
// back as failed Responses so load-generator accounting sees them like
// any other error.
func (c *Client) Dispatch(req Request) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return fail("live: client send: %v", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return fail("live: client recv: %v", err)
	}
	return resp
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
