package live

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

func TestHistogramBuckets(t *testing.T) {
	// Exact below 32, monotone log-linear above, ~3% relative error.
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40} {
		b := bucketOf(v)
		lo := bucketValue(b)
		if lo > v {
			t.Fatalf("bucketValue(%d)=%d exceeds sample %d", b, lo, v)
		}
		if v >= 32 && float64(v-lo) > float64(v)/32+1 {
			t.Fatalf("sample %d lands in bucket starting %d — error beyond the log-linear bound", v, lo)
		}
		if v < 32 && lo != v {
			t.Fatalf("sample %d below linear range not exact: bucket start %d", v, lo)
		}
	}
	prev := int64(-1)
	for b := 0; b < histBuckets; b++ {
		if v := bucketValue(b); v < prev {
			t.Fatalf("bucket %d value %d < previous %d — non-monotone", b, v, prev)
		} else {
			prev = v
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		// Log-linear buckets are ~3% wide; allow 5%.
		if diff := got - tc.want; diff < -tc.want/20 || diff > tc.want/20 {
			t.Fatalf("p%v = %v, want ~%v", tc.q*100, got, tc.want)
		}
	}
	if NewHistogram().Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}
}

// TestLoadgenAgainstServer drives a resident server open-loop and
// checks the accounting: every request completes, none error, the
// histogram holds exactly the post-warm-up samples, and the per-class
// split covers the total.
func TestLoadgenAgainstServer(t *testing.T) {
	srv, err := NewServer(scenario.Spec{Family: scenario.Random, N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := LoadgenConfig{Rate: 5000, Requests: 1000, Warmup: 50 * time.Millisecond, Workers: 4, Seed: 17}
	res, err := RunLoadgen(srv, srv.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 1000 || res.Completed != 1000 {
		t.Fatalf("issued %d completed %d, want 1000/1000", res.Issued, res.Completed)
	}
	if res.Errors != 0 {
		t.Fatalf("%d requests failed", res.Errors)
	}
	if res.Route.Issued+res.Pay.Issued != res.Issued {
		t.Fatalf("class split %d+%d != %d", res.Route.Issued, res.Pay.Issued, res.Issued)
	}
	if res.Route.Issued == 0 || res.Pay.Issued == 0 {
		t.Fatalf("degenerate class split: %+v / %+v", res.Route, res.Pay)
	}
	// Warm-up covers the first 50ms of a 200ms schedule: the histogram
	// must hold fewer samples than the total but most of it.
	warmupReqs := int64(cfg.Rate * cfg.Warmup.Seconds())
	if got := res.Hist.Count(); got != res.Completed-warmupReqs {
		t.Fatalf("histogram holds %d samples, want %d (1000 − %d warm-up)", got, res.Completed-warmupReqs, warmupReqs)
	}
	if res.Achieved <= 0 {
		t.Fatalf("achieved rate %f", res.Achieved)
	}
}

// TestLoadgenDeterministicSchedule pins the open-loop schedule: the
// same seed issues the identical request sequence regardless of
// timing, so a live run is replayable.
func TestLoadgenDeterministicSchedule(t *testing.T) {
	type recorded struct {
		op       Op
		src, dst int
	}
	var runs [2][]recorded
	for r := 0; r < 2; r++ {
		var reqs []recorded
		var mu sync.Mutex
		rec := dispatchFunc(func(req Request) Response {
			mu.Lock()
			reqs = append(reqs, recorded{op: req.Op, src: req.Src, dst: req.Dst})
			mu.Unlock()
			return Response{OK: true}
		})
		// Workers=1 keeps the recording order identical to the
		// schedule order.
		if _, err := RunLoadgen(rec, 8, LoadgenConfig{Rate: 100000, Requests: 200, Workers: 1, Seed: 99}); err != nil {
			t.Fatal(err)
		}
		runs[r] = reqs
	}
	if len(runs[0]) != len(runs[1]) {
		t.Fatalf("lengths differ: %d vs %d", len(runs[0]), len(runs[1]))
	}
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Fatalf("request %d differs across identically seeded runs: %+v vs %+v", i, runs[0][i], runs[1][i])
		}
	}
}

type dispatchFunc func(Request) Response

func (f dispatchFunc) Dispatch(r Request) Response { return f(r) }

// TestTCPRoundTrip serves a scenario over the localhost front end and
// drives it through the Dispatcher-implementing client — including a
// short open-loop run over the wire.
func TestTCPRoundTrip(t *testing.T) {
	srv, err := NewServer(scenario.Spec{Family: scenario.Figure1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, srv)

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	direct := srv.Dispatch(Request{Op: OpRoute, Src: 0, Dst: 5})
	wired := cli.Dispatch(Request{Op: OpRoute, Src: 0, Dst: 5})
	if !wired.OK || wired.Cost != direct.Cost || len(wired.Path) != len(direct.Path) {
		t.Fatalf("wire response %+v != direct %+v", wired, direct)
	}
	if resp := cli.Dispatch(Request{Op: OpStats}); !resp.OK || resp.Stats == nil || resp.Stats.N != 6 {
		t.Fatalf("stats over wire: %+v", resp)
	}

	res, err := RunLoadgen(cli, srv.N(), LoadgenConfig{Rate: 2000, Requests: 200, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Completed != 200 {
		t.Fatalf("wire loadgen: %+v", res)
	}
}
