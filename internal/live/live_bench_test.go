package live

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/scenario"
)

// BenchmarkLive is the serving-path throughput/latency ladder: an
// open-loop run at each (n, rate) rung against a resident server, with
// the latency percentiles and achieved throughput published as custom
// metrics (p50-ns / p99-ns / req/s) for the BENCH_live.json trajectory
// and the benchjson metric-compare step. ns/op is the whole run's wall
// time and is dominated by the schedule length — the percentiles are
// the numbers that matter.
func BenchmarkLive(b *testing.B) {
	for _, n := range []int{8, 16} {
		srv, err := NewServer(scenario.Spec{Family: scenario.Random, N: n, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		for _, rate := range []float64{2000, 10000} {
			b.Run(fmt.Sprintf("n=%d/rate=%d", n, int(rate)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunLoadgen(srv, n, LoadgenConfig{
						Rate:     rate,
						Requests: int(rate / 4), // a 250ms schedule per iteration
						Warmup:   25 * time.Millisecond,
						Workers:  4,
						Seed:     uint64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Errors > 0 {
						b.Fatalf("%d requests failed", res.Errors)
					}
					b.ReportMetric(float64(res.Hist.Quantile(0.50)), "p50-ns")
					b.ReportMetric(float64(res.Hist.Quantile(0.99)), "p99-ns")
					b.ReportMetric(res.Achieved, "req/s")
				}
			})
		}
		srv.Close()
	}
}
