package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// MonitorConfig parameterizes the online faithfulness monitor.
type MonitorConfig struct {
	// Faithful selects which protocol variant the samples play
	// against: false = plain FPSS (the manipulable baseline — its
	// violations are what the monitor exists to surface), true = the
	// paper's extended specification.
	Faithful bool
	// Workers sizes the sampling pool (default 2).
	Workers int
	// Seed keys the sampling permutation over the (node, deviation)
	// grid.
	Seed uint64
	// Prune skips plays the static profit bound proves unprofitable
	// (core.SelfBound), mirroring the batch checker's PruneBound.
	Prune bool
}

func (c MonitorConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 2
}

// MonitorStats is a rolling counter snapshot.
type MonitorStats struct {
	// Plays counts completed sample plays; Pruned the ones the profit
	// bound skipped; Errors the plays that failed outright.
	Plays  int64 `json:"plays"`
	Pruned int64 `json:"pruned"`
	Errors int64 `json:"errors"`
	// Violations counts plays where the deviator strictly profited;
	// Detections plays where the bank flagged the deviator.
	Violations int64 `json:"violations"`
	Detections int64 `json:"detections"`
	// Laps counts completed passes over the full (node, deviation)
	// grid since the last Bind.
	Laps int64 `json:"laps"`
	// Flagged is the distinct (node, deviation) pairs seen strictly
	// profitable since the last Bind.
	Flagged int `json:"flagged"`
}

// Flag is one distinct profitable (node, deviation) pair.
type Flag struct {
	Node      core.NodeID
	Deviation string
}

type samplePair struct {
	node core.NodeID
	dev  core.Deviation
}

// sampleState is one bound epoch: the system under test, its truthful
// snapshot, and the seeded sampling order over the grid.
type sampleState struct {
	sys    core.StatefulSystem
	st     core.TruthfulState
	grid   []samplePair
	order  []int
	cursor atomic.Int64
}

// Monitor samples (node, deviation) plays against copy-on-write
// snapshots of the bound epoch's honest state on a background worker
// pool — the online counterpart of the exhaustive batch checker. Each
// lap of the seeded permutation covers the full grid exactly once, so
// "has the monitor seen everything at least once" is Laps >= 1, and a
// full lap's flag set is comparable pair-for-pair with the batch
// report (Audit runs that comparison).
type Monitor struct {
	cfg MonitorConfig

	mu  sync.RWMutex
	cur *sampleState

	plays, pruned, violations, detections, errCount, laps atomic.Int64

	fmu     sync.Mutex
	flagged map[Flag]struct{}

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// NewMonitor builds an idle monitor; Bind it to an epoch and Start the
// workers.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{cfg: cfg, flagged: make(map[Flag]struct{}), stop: make(chan struct{})}
}

// Bind points the monitor at an epoch's scenario: it builds the
// variant's system, seeds the honest state from the central solution
// when one is authoritative (the same solution the live server's
// tables equal — pinned by the differential test), takes the truthful
// snapshot, and resets the rolling counters. Safe to call while
// workers run; in-flight plays finish against the old state.
func (m *Monitor) Bind(comp *scenario.Compiled, central *fpss.Central) error {
	plain, faithfulSys := comp.Systems()
	var sys core.System
	if m.cfg.Faithful {
		if central != nil {
			faithfulSys.SeedHonest(central.Sol)
		}
		sys = faithfulSys
	} else {
		if central != nil {
			plain.SeedHonest(central.Sol)
		}
		sys = plain
	}
	ss, ok := sys.(core.StatefulSystem)
	if !ok {
		ss = core.AsStateful(sys)
	}
	st, err := ss.Snapshot()
	if err != nil {
		return fmt.Errorf("live: monitor snapshot: %w", err)
	}
	var grid []samplePair
	for _, n := range ss.Nodes() {
		for _, d := range ss.Deviations(n) {
			grid = append(grid, samplePair{node: n, dev: d})
		}
	}
	if len(grid) == 0 {
		return errors.New("live: monitor grid is empty")
	}
	state := &sampleState{sys: ss, st: st, grid: grid, order: permute(len(grid), m.cfg.Seed)}

	m.mu.Lock()
	m.cur = state
	m.mu.Unlock()

	m.plays.Store(0)
	m.pruned.Store(0)
	m.violations.Store(0)
	m.detections.Store(0)
	m.errCount.Store(0)
	m.laps.Store(0)
	m.fmu.Lock()
	m.flagged = make(map[Flag]struct{})
	m.fmu.Unlock()
	return nil
}

// permute returns a seeded Fisher–Yates permutation of [0, n).
func permute(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	rng := seed
	for i := n - 1; i > 0; i-- {
		rng++
		j := int(sim.Mix64(rng) % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Start launches the worker pool (idempotent).
func (m *Monitor) Start() {
	m.startOnce.Do(func() {
		for w := 0; w < m.cfg.workers(); w++ {
			m.wg.Add(1)
			go m.worker(w)
		}
	})
}

// Stop terminates the workers and waits for them.
func (m *Monitor) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}

func (m *Monitor) worker(w int) {
	defer m.wg.Done()
	ctx := core.NewPlayContext(w)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		m.mu.RLock()
		state := m.cur
		m.mu.RUnlock()
		if state == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		m.sampleOne(ctx, state)
	}
}

// sampleOne claims the next grid slot of the permutation and plays it.
func (m *Monitor) sampleOne(ctx *core.PlayContext, state *sampleState) {
	i := state.cursor.Add(1) - 1
	idx := state.order[int(i)%len(state.grid)]
	if (int(i)+1)%len(state.grid) == 0 {
		defer m.laps.Add(1)
	}
	p := state.grid[idx]
	base := state.st.Baseline().Utilities[p.node]

	if m.cfg.Prune {
		if ub, ok := core.SelfBound(state.sys, p.node, p.dev, 0); ok && ub <= base {
			m.pruned.Add(1)
			return
		}
	}

	out, err := state.sys.Play(ctx, state.st, p.node, p.dev)
	if err != nil {
		m.errCount.Add(1)
		return
	}
	m.plays.Add(1)
	// Strict improvement, exactly the batch checker's violation
	// condition (core/check.go).
	if out.Utilities[p.node] > base {
		m.violations.Add(1)
		m.fmu.Lock()
		m.flagged[Flag{Node: p.node, Deviation: p.dev.Name()}] = struct{}{}
		m.fmu.Unlock()
	}
	for _, d := range out.Detected {
		if d == p.node {
			m.detections.Add(1)
			break
		}
	}
}

// Stats snapshots the rolling counters.
func (m *Monitor) Stats() MonitorStats {
	m.fmu.Lock()
	flagged := len(m.flagged)
	m.fmu.Unlock()
	return MonitorStats{
		Plays:      m.plays.Load(),
		Pruned:     m.pruned.Load(),
		Errors:     m.errCount.Load(),
		Violations: m.violations.Load(),
		Detections: m.detections.Load(),
		Laps:       m.laps.Load(),
		Flagged:    flagged,
	}
}

// Flagged returns the distinct profitable pairs seen since the last
// Bind, sorted (node, then deviation).
func (m *Monitor) Flagged() []Flag {
	m.fmu.Lock()
	out := make([]Flag, 0, len(m.flagged))
	for f := range m.flagged {
		out = append(out, f)
	}
	m.fmu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Deviation < out[j].Deviation
	})
	return out
}

// WaitLaps blocks until the monitor has completed at least k full
// passes over the grid since the last Bind (or the timeout expires).
func (m *Monitor) WaitLaps(k int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.laps.Load() < k {
		if time.Now().After(deadline) {
			return fmt.Errorf("live: monitor reached %d/%d laps before timeout", m.laps.Load(), k)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Audit runs the batch checker over the currently bound system — the
// monitor's differential oracle — and returns its report alongside the
// monitor's current flag set. A monitor that has completed >= 1 lap
// must have flagged exactly the report's violation pairs.
func (m *Monitor) Audit(cfg core.CheckConfig) (core.Report, []Flag, error) {
	m.mu.RLock()
	state := m.cur
	m.mu.RUnlock()
	if state == nil {
		return core.Report{}, nil, errors.New("live: monitor not bound")
	}
	rep, err := core.CheckFaithfulnessCfg(state.sys, cfg)
	if err != nil {
		return core.Report{}, nil, err
	}
	return rep, m.Flagged(), nil
}
