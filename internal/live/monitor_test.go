package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/rational"
	"repro/internal/scenario"
)

// manipulableSpec is a spec the plain protocol is manipulable on: the
// declared-cost pricing scheme makes cost inflation strictly
// profitable for transit nodes (Example 1 / E2), so the batch checker
// reports violations the monitor must reproduce.
func manipulableSpec() scenario.Spec {
	return scenario.Spec{Family: scenario.Figure1, Scheme: fpss.SchemeDeclaredCost}
}

func flagSet(flags []Flag) map[Flag]struct{} {
	set := make(map[Flag]struct{}, len(flags))
	for _, f := range flags {
		set[f] = struct{}{}
	}
	return set
}

func violationSet(rep core.Report) map[Flag]struct{} {
	set := make(map[Flag]struct{}, len(rep.Violations))
	for _, v := range rep.Violations {
		set[Flag{Node: v.Node, Deviation: v.Deviation}] = struct{}{}
	}
	return set
}

// TestMonitorMatchesBatchChecker is the pinned differential: one full
// sampling lap over the grid flags exactly the (node, deviation) pairs
// the batch checker reports as violations on the same scenario.
func TestMonitorMatchesBatchChecker(t *testing.T) {
	srv, err := NewServer(manipulableSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := NewMonitor(MonitorConfig{Faithful: false, Workers: 4, Seed: 42})
	if err := srv.AttachMonitor(m); err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.WaitLaps(1, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	// Stop drains in-flight plays, so after it every slot the lap
	// claimed has completed and the flag set is final for lap 1.
	m.Stop()

	rep, flags, err := m.Audit(core.CheckConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("batch checker found no violations — the pinned spec is no longer manipulable")
	}
	want, got := violationSet(rep), flagSet(flags)
	for f := range want {
		if _, ok := got[f]; !ok {
			t.Errorf("batch violation %+v not flagged by monitor", f)
		}
	}
	for f := range got {
		if _, ok := want[f]; !ok {
			t.Errorf("monitor flagged %+v but batch checker did not", f)
		}
	}
	st := m.Stats()
	if st.Plays == 0 || st.Violations == 0 {
		t.Fatalf("monitor counters empty after a full lap: %+v", st)
	}
}

// TestMonitorFlagsInjectedDeviant is the acceptance pin: inject a
// deviant the batch checker proves profitable, and the monitor's
// sampling flags that exact (node, deviation) pair.
func TestMonitorFlagsInjectedDeviant(t *testing.T) {
	sp := manipulableSpec()
	srv, err := NewServer(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Pick the injected pair from the batch report itself, restricted
	// to deviations that have a live (protocol-part) realization — the
	// test stays pinned even if the catalogue reorders.
	comp, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := comp.Systems()
	rep, err := core.CheckFaithfulnessCfg(plain, core.CheckConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	target := Flag{Node: -1}
	for _, v := range rep.Violations {
		if d, ok := rational.FindDeviation(v.Deviation, true); ok {
			if _, live := d.ProtocolStrategy(rational.Ctx{Graph: comp.Graph, Node: 0}); live {
				target = Flag{Node: v.Node, Deviation: v.Deviation}
				break
			}
		}
	}
	if target.Node < 0 {
		t.Fatal("no batch violation has a protocol part to inject live")
	}

	if resp := srv.Dispatch(Request{Op: OpInject, Node: int(target.Node), Deviation: target.Deviation}); !resp.OK {
		t.Fatal(resp.Err)
	}

	m := NewMonitor(MonitorConfig{Faithful: false, Workers: 4, Seed: 7})
	if err := srv.AttachMonitor(m); err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.WaitLaps(1, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	m.Stop()

	if _, ok := flagSet(m.Flagged())[target]; !ok {
		t.Fatalf("monitor did not flag the injected deviant %+v; flagged: %v", target, m.Flagged())
	}
	// And the server really is serving the deviant's tables.
	if stats := srv.Dispatch(Request{Op: OpStats}).Stats; stats.Deviant != target.Deviation {
		t.Fatalf("server lost the injected deviant: %+v", stats)
	}
}

// TestMonitorFaithfulStaysClean pins the other direction on the same
// scenario: against the extended specification no sampled play
// strictly profits, so a full lap flags nothing.
func TestMonitorFaithfulStaysClean(t *testing.T) {
	srv, err := NewServer(scenario.Spec{Family: scenario.Figure1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := NewMonitor(MonitorConfig{Faithful: true, Workers: 4, Seed: 9, Prune: true})
	if err := srv.AttachMonitor(m); err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.WaitLaps(1, 120*time.Second); err != nil {
		t.Fatal(err)
	}
	m.Stop()

	if flags := m.Flagged(); len(flags) != 0 {
		t.Fatalf("faithful monitor flagged %v", flags)
	}
	if st := m.Stats(); st.Errors != 0 {
		t.Fatalf("monitor plays errored: %+v", st)
	}
}
