package live

import (
	"testing"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// TestServerRouteAndPay serves the paper's Figure-1 scenario and
// checks Route/Pay answers against the central solution.
func TestServerRouteAndPay(t *testing.T) {
	srv, err := NewServer(scenario.Spec{Family: scenario.Figure1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	comp, err := scenario.Spec{Family: scenario.Figure1}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := fpss.ComputeCentral(comp.Graph)
	if err != nil {
		t.Fatal(err)
	}

	n := comp.Graph.N()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			resp := srv.Dispatch(Request{Op: OpRoute, Src: src, Dst: dst})
			if !resp.OK {
				t.Fatalf("route %d->%d: %s", src, dst, resp.Err)
			}
			want := sol.Routing[graph.NodeID(src)][graph.NodeID(dst)]
			if int64(want.Cost) != resp.Cost || len(want.Path) != len(resp.Path) {
				t.Fatalf("route %d->%d: got cost %d path %v, central %+v", src, dst, resp.Cost, resp.Path, want)
			}
			for i, h := range want.Path {
				if int(h) != resp.Path[i] {
					t.Fatalf("route %d->%d hop %d: got %v, central %v", src, dst, i, resp.Path, want.Path)
				}
			}

			pay := srv.Dispatch(Request{Op: OpPay, Src: src, Dst: dst})
			if !pay.OK {
				t.Fatalf("pay %d->%d: %s", src, dst, pay.Err)
			}
			var wantTotal int64
			for _, pe := range sol.Pricing[graph.NodeID(src)][graph.NodeID(dst)] {
				wantTotal += int64(pe.Price)
			}
			if pay.Total != wantTotal {
				t.Fatalf("pay %d->%d: got total %d, central %d", src, dst, pay.Total, wantTotal)
			}
		}
	}

	stats := srv.Dispatch(Request{Op: OpStats})
	if !stats.OK || stats.Stats == nil {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Stats.Divergence != 0 {
		t.Fatalf("honest reliable epoch diverges from central: %+v", stats.Stats)
	}
	if stats.Stats.Net.Sent == 0 {
		t.Fatalf("resident network reports no construction traffic: %+v", stats.Stats.Net)
	}
}

// TestServerDifferentialSmokeSuite is the tentpole differential: for
// every smoke-suite spec, the quiesced live tables are byte-identical
// to the central solution AND to the event-simulator protocol run.
func TestServerDifferentialSmokeSuite(t *testing.T) {
	suite, ok := scenario.LookupSuite("smoke")
	if !ok {
		t.Fatal("smoke suite not registered")
	}
	for _, sp := range suite.Specs(1) {
		sp := sp
		t.Run(sp.Describe(), func(t *testing.T) {
			t.Parallel()
			srv, err := NewServer(sp)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			liveRouting, livePricing := srv.Tables()

			comp, err := sp.Compile()
			if err != nil {
				t.Fatal(err)
			}
			sol, err := fpss.ComputeCentral(comp.Graph)
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := fpss.Run(fpss.Config{Graph: comp.Graph})
			if err != nil {
				t.Fatal(err)
			}

			for i := 0; i < comp.Graph.N(); i++ {
				id := graph.NodeID(i)
				if !liveRouting[id].Equal(sol.Routing[id]) {
					t.Fatalf("node %d: live routing != central", i)
				}
				if !livePricing[id].Equal(sol.Pricing[id]) {
					t.Fatalf("node %d: live pricing != central", i)
				}
				if !liveRouting[id].Equal(simRes.Nodes[id].Routing()) {
					t.Fatalf("node %d: live routing != simulator", i)
				}
				if !livePricing[id].Equal(simRes.Nodes[id].Pricing()) {
					t.Fatalf("node %d: live pricing != simulator", i)
				}
			}
		})
	}
}

// TestServerChurnAdvance walks a churn timeline live: every epoch
// re-converges in place (no restart) and matches the evolved central
// solution exactly.
func TestServerChurnAdvance(t *testing.T) {
	sp := scenario.Spec{
		Family:   scenario.Random,
		N:        8,
		Workload: scenario.WorkloadAllPairs,
		Seed:     3,
		Churn:    scenario.Churn{Epochs: 3, Joins: 2, Leaves: 1},
	}
	srv, err := NewServer(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Epochs() != 3 {
		t.Fatalf("want 3 epochs, got %d", srv.Epochs())
	}
	for e := 0; ; e++ {
		stats := srv.Dispatch(Request{Op: OpStats})
		if !stats.OK {
			t.Fatal(stats.Err)
		}
		if stats.Stats.Epoch != e {
			t.Fatalf("want epoch %d, got %d", e, stats.Stats.Epoch)
		}
		if stats.Stats.Divergence != 0 {
			t.Fatalf("epoch %d: %d nodes diverge from the evolved central solution", e, stats.Stats.Divergence)
		}
		if e == srv.Epochs()-1 {
			break
		}
		adv := srv.Dispatch(Request{Op: OpInject, Advance: true})
		if !adv.OK {
			t.Fatalf("advance from epoch %d: %s", e, adv.Err)
		}
	}
	// Advancing past the end must fail cleanly.
	if resp := srv.Dispatch(Request{Op: OpInject, Advance: true}); resp.OK {
		t.Fatal("advance past final epoch succeeded")
	}
}

// TestServerInjectDeviant installs a construction-phase deviation on a
// resident node: the epoch re-converges with the manipulated tables
// (divergence > 0 under the declared-cost scheme) and Reset restores
// the honest state.
func TestServerInjectDeviant(t *testing.T) {
	sp := scenario.Spec{Family: scenario.Figure1, Scheme: fpss.SchemeDeclaredCost}
	srv, err := NewServer(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp := srv.Dispatch(Request{Op: OpInject, Node: 2, Deviation: "misreport-cost-inflate"})
	if !resp.OK {
		t.Fatal(resp.Err)
	}
	stats := srv.Dispatch(Request{Op: OpStats}).Stats
	if stats.Deviant != "misreport-cost-inflate" || stats.DeviantNode != 2 {
		t.Fatalf("deviant not recorded: %+v", stats)
	}
	if stats.Divergence == 0 {
		t.Fatal("cost inflation left the converged tables identical to the honest central solution")
	}

	// A checker-only deviation has no live realization.
	if resp := srv.Dispatch(Request{Op: OpInject, Node: 2, Deviation: "misreport-loss-blame"}); resp.OK {
		t.Fatal("injected a deviation with no protocol part")
	}

	if resp := srv.Dispatch(Request{Op: OpInject, Reset: true}); !resp.OK {
		t.Fatal(resp.Err)
	}
	stats = srv.Dispatch(Request{Op: OpStats}).Stats
	if stats.Deviant != "" || stats.Divergence != 0 {
		t.Fatalf("reset did not restore the honest epoch: %+v", stats)
	}
}
