package live

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/churn"
	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/livenet"
	"repro/internal/rational"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ConvergeTimeout bounds each quiescence wait while (re)building an
// epoch's resident network. Generous: a converged smoke-suite epoch
// quiesces in milliseconds; the bound only matters when a bug (or a
// pathological deviation) stalls the Dijkstra–Scholten counter.
const ConvergeTimeout = 60 * time.Second

// Server keeps one scenario resident: a live goroutine network of
// fpss.Node actors, converged through both construction phases and
// then held quiescent while Route/Pay requests read its hot tables.
// Epoch advances and deviant injections rebuild the network in place
// (old actors shut down, new ones converge) without restarting the
// process — the central-solution chain stays hot across boundaries.
//
// Dispatch is safe for concurrent use: reads (Route/Pay/Stats) take a
// shared lock against the rare rebuild writes.
type Server struct {
	spec    scenario.Spec
	monitor *Monitor

	mu    sync.RWMutex
	tl    *churn.Timeline // nil for static scenarios
	epoch int
	st    *epochState
}

// epochState is one epoch resident: the compiled scenario, the
// converged live network and its node handlers, plus read-only caches
// derived from the quiesced tables.
type epochState struct {
	comp    *scenario.Compiled
	central *fpss.Central // nil when the central path is not authoritative
	net     *livenet.Net
	nodes   []*fpss.Node
	// declared is the converged DATA1 (identical at every node after
	// phase 1 — cached from node 0), used by SchemeDeclaredCost
	// obligations.
	declared fpss.CostTable
	// divergence counts nodes whose live tables differ from the
	// central solution; -1 when central is nil.
	divergence int
	// deviant names the injected deviation ("" = honest).
	deviant     string
	deviantNode graph.NodeID
}

// NewServer compiles the spec's timeline (one epoch for static specs)
// and converges epoch 0 on a live network. Close releases the
// resident goroutines.
func NewServer(sp scenario.Spec) (*Server, error) {
	s := &Server{spec: sp}
	if sp.Churn.Dynamic() {
		tl, err := churn.Build(sp)
		if err != nil {
			return nil, err
		}
		s.tl = tl
	}
	st, err := s.buildEpoch(0, -1, "")
	if err != nil {
		return nil, err
	}
	s.st = st
	s.bindMonitor()
	return s, nil
}

// AttachMonitor binds an online monitor to the server's current (and
// every future) epoch state. Call before serving traffic; the monitor
// is rebound on every epoch advance and deviant injection.
func (s *Server) AttachMonitor(m *Monitor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.monitor = m
	return s.bindMonitorLocked()
}

func (s *Server) bindMonitor() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.bindMonitorLocked()
}

func (s *Server) bindMonitorLocked() error {
	if s.monitor == nil || s.st == nil {
		return nil
	}
	return s.monitor.Bind(s.st.comp, s.st.central)
}

// Close shuts the resident network down. The server must not be
// dispatched to afterwards.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st != nil {
		s.st.net.Shutdown()
	}
}

// N returns the current epoch's node count.
func (s *Server) N() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.comp.Graph.N()
}

// Tables snapshots the resident nodes' converged DATA2/DATA3* — the
// exact tables Route and Pay serve from. The differential suite pins
// them byte-identical to the central solution and to an event-
// simulator run of the same spec.
func (s *Server) Tables() (map[graph.NodeID]fpss.RoutingTable, map[graph.NodeID]fpss.PricingTable) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	routing := make(map[graph.NodeID]fpss.RoutingTable, len(s.st.nodes))
	pricing := make(map[graph.NodeID]fpss.PricingTable, len(s.st.nodes))
	for i, nd := range s.st.nodes {
		routing[graph.NodeID(i)] = nd.Routing()
		pricing[graph.NodeID(i)] = nd.Pricing()
	}
	return routing, pricing
}

// Epochs returns the timeline length (1 for static scenarios).
func (s *Server) Epochs() int {
	if s.tl == nil {
		return 1
	}
	return len(s.tl.Epochs)
}

// compiledFor returns epoch e's compiled scenario and, when the
// central path is authoritative, its central solution.
func (s *Server) compiledFor(e int) (*scenario.Compiled, *fpss.Central, error) {
	if s.tl != nil {
		ep := s.tl.Epochs[e]
		central, ok, err := ep.CentralState()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			central = nil
		}
		return ep.Compiled, central, nil
	}
	comp, err := s.spec.Compile()
	if err != nil {
		return nil, nil, err
	}
	if comp.Params.Loss.Enabled() {
		return comp, nil, nil
	}
	central, err := fpss.ComputeCentralState(comp.Graph)
	if err != nil {
		return nil, nil, err
	}
	return comp, central, nil
}

// buildEpoch converges epoch e on a fresh live network, with node
// `deviantNode` running the named catalogued deviation (deviant == ""
// builds the honest epoch). It does not install the result.
func (s *Server) buildEpoch(e int, deviantNode graph.NodeID, deviant string) (*epochState, error) {
	comp, central, err := s.compiledFor(e)
	if err != nil {
		return nil, err
	}
	var strat *fpss.Strategy
	if deviant != "" {
		d, ok := rational.FindDeviation(deviant, true)
		if !ok {
			return nil, fmt.Errorf("live: unknown deviation %q", deviant)
		}
		strat, ok = d.ProtocolStrategy(rational.Ctx{Graph: comp.Graph, Node: deviantNode})
		if !ok {
			return nil, fmt.Errorf("live: deviation %q has no protocol part to run live", deviant)
		}
	}

	g := comp.Graph
	n := g.N()
	nodes := make([]*fpss.Node, n)
	handlers := make(map[sim.Addr]sim.Handler, n)
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		var si *fpss.Strategy
		if deviant != "" && id == deviantNode {
			si = strat
		}
		nodes[i] = fpss.NewNode(id, g.Cost(id), g.AdjView(id), si)
		handlers[sim.Addr(i)] = nodes[i]
	}
	net := livenet.New(handlers)
	net.SetLoss(comp.Params.Loss)
	if err := net.Start(); err != nil {
		return nil, err
	}
	if err := net.WaitQuiescence(ConvergeTimeout); err != nil {
		net.Shutdown()
		return nil, fmt.Errorf("live: phase 1: %w", err)
	}
	for i := 0; i < n; i++ {
		net.Inject(fpss.BankAddr, sim.Addr(i), fpss.StartPhase2{})
	}
	if err := net.WaitQuiescence(ConvergeTimeout); err != nil {
		net.Shutdown()
		return nil, fmt.Errorf("live: phase 2: %w", err)
	}

	st := &epochState{
		comp:        comp,
		central:     central,
		net:         net,
		nodes:       nodes,
		declared:    nodes[0].Costs(),
		divergence:  -1,
		deviant:     deviant,
		deviantNode: deviantNode,
	}
	if central != nil {
		st.divergence = 0
		for i := 0; i < n; i++ {
			id := graph.NodeID(i)
			if !nodes[i].RoutingView().Equal(central.Sol.Routing[id]) ||
				!nodes[i].PricingView().Equal(central.Sol.Pricing[id]) {
				st.divergence++
			}
		}
	}
	return st, nil
}

// swap installs a freshly built epoch state, shutting the old network
// down and rebinding the monitor.
func (s *Server) swap(e int, st *epochState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st != nil {
		s.st.net.Shutdown()
	}
	s.epoch, s.st = e, st
	return s.bindMonitorLocked()
}

// Dispatch implements Dispatcher.
func (s *Server) Dispatch(req Request) Response {
	switch req.Op {
	case OpRoute:
		return s.route(req)
	case OpPay:
		return s.pay(req)
	case OpStats:
		return s.stats()
	case OpInject:
		return s.inject(req)
	default:
		return fail("live: unknown op %q", req.Op)
	}
}

func (s *Server) route(req Request) Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.st
	if err := st.checkFlow(req.Src, req.Dst); err != nil {
		return fail("%v", err)
	}
	e, ok := st.nodes[req.Src].RoutingView()[graph.NodeID(req.Dst)]
	if !ok {
		return fail("live: node %d has no route to %d", req.Src, req.Dst)
	}
	path := make([]int, len(e.Path))
	for i, h := range e.Path {
		path[i] = int(h)
	}
	return Response{OK: true, Path: path, Cost: int64(e.Cost), Epoch: s.epoch}
}

func (s *Server) pay(req Request) Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.st
	if err := st.checkFlow(req.Src, req.Dst); err != nil {
		return fail("%v", err)
	}
	packets := req.Packets
	if packets <= 0 {
		packets = 1
	}
	dst := graph.NodeID(req.Dst)
	node := st.nodes[req.Src]
	e, ok := node.RoutingView()[dst]
	if !ok {
		return fail("live: node %d has no route to %d", req.Src, req.Dst)
	}
	// Mirrors fpss obligation accounting: VCG pays the DATA3* prices,
	// the declared-cost scheme pays each transit its converged DATA1
	// declaration.
	list := make(fpss.PaymentList)
	switch st.comp.Params.Scheme {
	case fpss.SchemeDeclaredCost:
		for _, k := range e.Path.TransitNodes() {
			list[k] += int64(st.declared[k]) * packets
		}
	default: // VCG
		for k, pe := range node.PricingView()[dst] {
			list[k] += int64(pe.Price) * packets
		}
	}
	payments := make([]Payment, 0, len(list))
	var total int64
	for _, k := range sortedKeys(list) {
		payments = append(payments, Payment{To: int(k), Amount: list[k]})
		total += list[k]
	}
	return Response{OK: true, Payments: payments, Total: total, Epoch: s.epoch}
}

func (s *Server) stats() Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.st
	stats := &Stats{
		Epoch:      s.epoch,
		Epochs:     s.Epochs(),
		N:          st.comp.Graph.N(),
		Deviant:    st.deviant,
		Divergence: st.divergence,
		Net:        st.net.Counters(),
	}
	if st.deviant != "" {
		stats.DeviantNode = int(st.deviantNode)
	}
	if s.monitor != nil {
		ms := s.monitor.Stats()
		stats.Monitor = &ms
	}
	return Response{OK: true, Epoch: s.epoch, Stats: stats}
}

func (s *Server) inject(req Request) Response {
	s.mu.RLock()
	epoch := s.epoch
	n := s.st.comp.Graph.N()
	s.mu.RUnlock()

	switch {
	case req.Advance:
		if epoch+1 >= s.Epochs() {
			return fail("live: already at final epoch %d", epoch)
		}
		st, err := s.buildEpoch(epoch+1, -1, "")
		if err != nil {
			return fail("%v", err)
		}
		if err := s.swap(epoch+1, st); err != nil {
			return fail("%v", err)
		}
		return Response{OK: true, Epoch: epoch + 1}
	case req.Reset:
		st, err := s.buildEpoch(epoch, -1, "")
		if err != nil {
			return fail("%v", err)
		}
		if err := s.swap(epoch, st); err != nil {
			return fail("%v", err)
		}
		return Response{OK: true, Epoch: epoch}
	case req.Deviation != "":
		if req.Node < 0 || req.Node >= n {
			return fail("live: deviant node %d out of range [0,%d)", req.Node, n)
		}
		st, err := s.buildEpoch(epoch, graph.NodeID(req.Node), req.Deviation)
		if err != nil {
			return fail("%v", err)
		}
		if err := s.swap(epoch, st); err != nil {
			return fail("%v", err)
		}
		return Response{OK: true, Epoch: epoch}
	default:
		return fail("live: inject requires a deviation, advance, or reset")
	}
}

func (st *epochState) checkFlow(src, dst int) error {
	n := st.comp.Graph.N()
	if src < 0 || src >= n {
		return fmt.Errorf("live: src %d out of range [0,%d)", src, n)
	}
	if dst < 0 || dst >= n {
		return fmt.Errorf("live: dst %d out of range [0,%d)", dst, n)
	}
	if src == dst {
		return fmt.Errorf("live: src == dst (%d)", src)
	}
	return nil
}

func sortedKeys(list fpss.PaymentList) []graph.NodeID {
	keys := make([]graph.NodeID, 0, len(list))
	for k := range list {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
