// Package live is the serving half of the reproduction: instead of
// replaying a scenario batch-style (compile → run → report), it keeps
// a scenario *resident* — the FPSS construction converged once on live
// goroutine actors (internal/livenet) and then serving route and
// payment queries from the hot tables — behind a small RPC boundary.
//
// Three pieces compose:
//
//   - Server compiles a scenario.Spec into a resident network of
//     fpss.Node actors, re-converging per churn epoch without a
//     process restart. The honest per-epoch state rides the same
//     central-solution chain the batch checker uses (fpss.Central /
//     Evolve via churn.Epoch.CentralState), so serving and checking
//     share one notion of "the honest tables".
//   - Loadgen drives the server open-loop: a seed-deterministic
//     request schedule at a target rate, with latency measured from
//     each request's *scheduled* arrival (queueing delay included —
//     the open-loop discipline that makes coordinated omission
//     visible), recorded into an HDR-style log-linear histogram.
//   - Monitor samples (node, deviation) plays against copy-on-write
//     snapshots of the served state on a background worker pool,
//     maintaining rolling violation/detection counters; the batch
//     checker (core.CheckFaithfulnessCfg) is its differential oracle.
//
// Determinism caveat: unlike the event simulator, the live network
// interleaves goroutines under the runtime scheduler. Converged tables
// and (given a fixed per-link send order) loss/fault counters are
// delivery-order independent and therefore still deterministic;
// wall-clock latencies are not.
package live

import (
	"fmt"

	"repro/internal/sim"
)

// Op names one RPC operation.
type Op string

const (
	// OpRoute asks for the serving node's converged route to Dst.
	OpRoute Op = "route"
	// OpPay asks for the source's payment obligation for a flow —
	// who gets paid how much for Packets packets to Dst.
	OpPay Op = "pay"
	// OpStats snapshots server, network and monitor counters.
	OpStats Op = "stats"
	// OpInject mutates the resident network: install a catalogued
	// deviation on a node, advance one churn epoch, or reset to the
	// honest configuration.
	OpInject Op = "inject"
)

// Request is one RPC request. Exactly one Op is interpreted; unused
// fields are ignored.
type Request struct {
	Op Op `json:"op"`
	// Src/Dst select the flow for OpRoute and OpPay.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Packets scales OpPay obligations (default 1).
	Packets int64 `json:"packets,omitempty"`
	// Node/Deviation select the deviant for OpInject.
	Node      int    `json:"node,omitempty"`
	Deviation string `json:"deviation,omitempty"`
	// Advance moves the server one churn epoch forward (OpInject).
	Advance bool `json:"advance,omitempty"`
	// Reset rebuilds the current epoch honest (OpInject).
	Reset bool `json:"reset,omitempty"`
}

// Payment is one entry of a payment obligation.
type Payment struct {
	To     int   `json:"to"`
	Amount int64 `json:"amount"`
}

// Stats is the OpStats payload.
type Stats struct {
	// Epoch is the current 0-based epoch; Epochs the timeline length
	// (1 for static scenarios).
	Epoch  int `json:"epoch"`
	Epochs int `json:"epochs"`
	// N is the current epoch's node count.
	N int `json:"n"`
	// Deviant names the injected deviation ("" = honest) and the node
	// running it.
	Deviant     string `json:"deviant,omitempty"`
	DeviantNode int    `json:"deviantNode,omitempty"`
	// Divergence counts nodes whose converged live tables differ from
	// the central solution (always 0 on an honest reliable epoch —
	// pinned by test; central unavailable under loss ⇒ -1).
	Divergence int `json:"divergence"`
	// Net is the resident network's counter snapshot.
	Net sim.Counters `json:"net"`
	// Monitor is present when an online monitor is attached.
	Monitor *MonitorStats `json:"monitor,omitempty"`
}

// Response is one RPC response. Err is set (and OK false) on failure;
// the payload fields are op-specific.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// OpRoute: hop-by-hop path (including endpoints) and its transit
	// cost as believed by the serving node.
	Path []int `json:"path,omitempty"`
	Cost int64 `json:"cost,omitempty"`
	// OpPay: per-transit obligations and their total.
	Payments []Payment `json:"payments,omitempty"`
	Total    int64     `json:"total,omitempty"`
	// Epoch echoes the epoch that served the request.
	Epoch int `json:"epoch"`
	// OpStats payload.
	Stats *Stats `json:"stats,omitempty"`
}

// Dispatcher is the in-process RPC boundary: the Server implements it
// directly, the TCP client implements it over a connection, and the
// load generator drives either one identically.
type Dispatcher interface {
	Dispatch(Request) Response
}

func fail(format string, args ...any) Response {
	return Response{Err: fmt.Sprintf(format, args...)}
}
