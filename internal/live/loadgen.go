package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// LoadgenConfig parameterizes one open-loop run.
type LoadgenConfig struct {
	// Rate is the offered load in requests/second (required).
	Rate float64
	// Requests is the total number of requests to issue (required).
	// Duration-style runs derive it as Rate × seconds.
	Requests int
	// Warmup discards the first Warmup of scheduled time from the
	// histogram (counters still include it).
	Warmup time.Duration
	// Workers sizes the completion pool (default 8). Open-loop: the
	// schedule never waits for a worker; a saturated pool shows up as
	// queueing latency, not as reduced offered load.
	Workers int
	// Seed keys the request schedule (class, src, dst draws). The same
	// seed against the same server replays the same request sequence.
	Seed uint64
	// PayFraction is the share of requests that are OpPay (the rest
	// are OpRoute). Default 0.5.
	PayFraction float64
}

func (c LoadgenConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 8
}

func (c LoadgenConfig) payFraction() float64 {
	if c.PayFraction > 0 {
		return c.PayFraction
	}
	return 0.5
}

// ClassStats counts one request class.
type ClassStats struct {
	Issued int64 `json:"issued"`
	OK     int64 `json:"ok"`
	Errors int64 `json:"errors"`
}

// LoadgenResult is the outcome of one open-loop run.
type LoadgenResult struct {
	// Issued/Completed/Errors are totals across classes (warm-up
	// included).
	Issued, Completed, Errors int64
	// Route/Pay are the per-class counters.
	Route, Pay ClassStats
	// Hist holds post-warm-up latencies, measured from each request's
	// *scheduled* arrival (queueing included).
	Hist *Histogram
	// Elapsed is scheduler start to last completion; Achieved the
	// completed-request throughput over it.
	Elapsed  time.Duration
	Achieved float64
}

// String renders the one-line report liveserve prints.
func (r *LoadgenResult) String() string {
	return fmt.Sprintf("issued=%d ok=%d errs=%d rate=%.0f req/s lat{%s}",
		r.Issued, r.Completed-r.Errors, r.Errors, r.Achieved, r.Hist.Summary())
}

type genRequest struct {
	req     Request
	arrival time.Time
	warm    bool
}

// RunLoadgen drives the dispatcher with an open-loop, seed-
// deterministic schedule: request i is *scheduled* at start + i/Rate
// regardless of how fast earlier requests complete, and its latency is
// measured from that scheduled instant — the open-loop discipline that
// keeps coordinated omission out of the histogram. n is the node-ID
// space requests draw flows from.
func RunLoadgen(d Dispatcher, n int, cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Rate <= 0 {
		return nil, errors.New("live: loadgen requires Rate > 0")
	}
	if cfg.Requests <= 0 {
		return nil, errors.New("live: loadgen requires Requests > 0")
	}
	if n < 2 {
		return nil, errors.New("live: loadgen requires >= 2 nodes")
	}

	res := &LoadgenResult{Hist: NewHistogram()}
	var completed, errs atomic.Int64
	var routeOK, routeErr, payOK, payErr atomic.Int64

	// The queue is sized for the whole run: the scheduler must never
	// block on a slow worker, or the open loop silently closes.
	queue := make(chan genRequest, cfg.Requests)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gr := range queue {
				resp := d.Dispatch(gr.req)
				lat := time.Since(gr.arrival)
				completed.Add(1)
				ok := resp.OK
				if gr.req.Op == OpPay {
					if ok {
						payOK.Add(1)
					} else {
						payErr.Add(1)
					}
				} else {
					if ok {
						routeOK.Add(1)
					} else {
						routeErr.Add(1)
					}
				}
				if !ok {
					errs.Add(1)
				}
				if gr.warm {
					res.Hist.Record(lat)
				}
			}
		}()
	}

	// Single scheduler goroutine: all randomness is drawn sequentially
	// from one splitmix stream, so the request sequence is a pure
	// function of (Seed, Requests, n) — wall-clock jitter moves
	// arrival instants, never request identities.
	rng := cfg.Seed
	draw := func() uint64 {
		rng++
		return sim.Mix64(rng)
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		src := int(draw() % uint64(n))
		dst := int(draw() % uint64(n-1))
		if dst >= src {
			dst++
		}
		req := Request{Op: OpRoute, Src: src, Dst: dst}
		if float64(draw()%(1<<53))/(1<<53) < cfg.payFraction() {
			req.Op = OpPay
			req.Packets = 1
		}
		if req.Op == OpPay {
			res.Pay.Issued++
		} else {
			res.Route.Issued++
		}
		res.Issued++
		queue <- genRequest{req: req, arrival: sched, warm: time.Duration(i)*interval >= cfg.Warmup}
	}
	close(queue)
	wg.Wait()

	res.Completed = completed.Load()
	res.Errors = errs.Load()
	res.Route.OK, res.Route.Errors = routeOK.Load(), routeErr.Load()
	res.Pay.OK, res.Pay.Errors = payOK.Load(), payErr.Load()
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.Achieved = float64(res.Completed) / res.Elapsed.Seconds()
	}
	return res, nil
}
