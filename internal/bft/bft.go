// Package bft is a simplified PBFT-style replicated-state-machine
// baseline. The paper argues (§3) that Byzantine fault tolerance is
// "either suboptimal, or impossible" as a defense against rational
// manipulation: it needs 3f+1 replicas with quadratic message
// complexity per operation, versus the catch-and-punish checker scheme
// whose overhead is a degree factor. Experiment E5 quantifies that gap
// by replaying the same computation through this baseline.
//
// Scope (documented simplification): normal-case operation only — a
// fixed primary, pre-prepare/prepare/commit with 2f+1 quorums, silent
// (crash-faulty) replicas tolerated up to f, no view change. That is
// the cheapest possible PBFT, which only makes the paper's overhead
// comparison conservative.
package bft

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Digest is a SHA-256 state or request digest.
type Digest [sha256.Size]byte

func digestOf(data []byte) Digest { return sha256.Sum256(data) }

// StateMachine is the replicated deterministic service.
type StateMachine interface {
	// Apply executes one operation.
	Apply(op []byte)
	// Digest summarizes the current state.
	Digest() Digest
}

// HashChain is the default state machine: a rolling hash of applied
// operations (enough to witness agreement on order and content).
type HashChain struct {
	state Digest
	count int
}

// Apply implements StateMachine.
func (h *HashChain) Apply(op []byte) {
	buf := make([]byte, 0, len(h.state)+len(op))
	buf = append(buf, h.state[:]...)
	buf = append(buf, op...)
	h.state = digestOf(buf)
	h.count++
}

// Digest implements StateMachine.
func (h *HashChain) Digest() Digest { return h.state }

// Count returns the number of applied operations.
func (h *HashChain) Count() int { return h.count }

// Message types (normal-case PBFT).

// Request is a client operation submission (client → primary).
type Request struct {
	Data []byte
}

// Size implements sim.Sizer.
func (r Request) Size() int { return 1 + len(r.Data)/8 }

// PrePrepare is the primary's ordering proposal.
type PrePrepare struct {
	View   int
	Seq    int
	Digest Digest
	Data   []byte
}

// Size implements sim.Sizer.
func (p PrePrepare) Size() int { return 3 + len(p.Data)/8 }

// Prepare is a backup's agreement on (view, seq, digest).
type Prepare struct {
	View    int
	Seq     int
	Digest  Digest
	Replica int
}

// Size implements sim.Sizer.
func (Prepare) Size() int { return 4 }

// Commit finalizes an ordered operation.
type Commit struct {
	View    int
	Seq     int
	Digest  Digest
	Replica int
}

// Size implements sim.Sizer.
func (Commit) Size() int { return 4 }

// Reply is a replica's execution acknowledgment to the client.
type Reply struct {
	Seq     int
	Replica int
	State   Digest
}

// Size implements sim.Sizer.
func (Reply) Size() int { return 3 }

// slot tracks one sequence number's agreement progress.
type slot struct {
	prePrepared bool
	data        []byte
	digest      Digest
	prepares    map[int]bool
	commits     map[int]bool
	committed   bool
	executed    bool
}

// Replica is one PBFT node.
type Replica struct {
	id       int
	n        int
	f        int
	view     int
	seq      int // primary's next sequence number
	silent   bool
	sm       StateMachine
	slots    map[int]*slot
	executed int // highest contiguously executed seq
	client   sim.Addr
}

var _ sim.Handler = (*Replica)(nil)

// NewReplica constructs replica id of n = 3f+1 total; silent replicas
// model crash faults. client is where replies go.
func NewReplica(id, n, f int, silent bool, sm StateMachine, client sim.Addr) *Replica {
	return &Replica{
		id:     id,
		n:      n,
		f:      f,
		silent: silent,
		sm:     sm,
		slots:  make(map[int]*slot),
		client: client,
	}
}

// Executed returns the number of executed operations.
func (r *Replica) Executed() int { return r.executed }

// StateDigest returns the replica's current state digest.
func (r *Replica) StateDigest() Digest { return r.sm.Digest() }

func (r *Replica) primary() int { return r.view % r.n }

// Init implements sim.Handler.
func (*Replica) Init(sim.Context) {}

// Recv implements sim.Handler.
func (r *Replica) Recv(ctx sim.Context, msg sim.Message) {
	if r.silent {
		return
	}
	switch m := msg.Payload.(type) {
	case Request:
		r.onRequest(ctx, m)
	case PrePrepare:
		r.onPrePrepare(ctx, m)
	case Prepare:
		r.onPrepare(ctx, m)
	case Commit:
		r.onCommit(ctx, m)
	}
}

func (r *Replica) onRequest(ctx sim.Context, req Request) {
	if r.id != r.primary() {
		return // simplification: clients address the primary directly
	}
	r.seq++
	pp := PrePrepare{View: r.view, Seq: r.seq, Digest: digestOf(req.Data), Data: req.Data}
	s := r.slotFor(r.seq)
	s.prePrepared = true
	s.data = req.Data
	s.digest = pp.Digest
	for i := 0; i < r.n; i++ {
		if i != r.id {
			ctx.Send(sim.Addr(i), pp)
		}
	}
	// The primary's own prepare is implicit in the pre-prepare.
	r.broadcastPrepare(ctx, pp.View, pp.Seq, pp.Digest)
}

func (r *Replica) onPrePrepare(ctx sim.Context, pp PrePrepare) {
	if pp.View != r.view || digestOf(pp.Data) != pp.Digest {
		return
	}
	s := r.slotFor(pp.Seq)
	if s.prePrepared {
		return
	}
	s.prePrepared = true
	s.data = pp.Data
	s.digest = pp.Digest
	s.prepares[r.primary()] = true // pre-prepare counts as the primary's prepare
	r.broadcastPrepare(ctx, pp.View, pp.Seq, pp.Digest)
	r.maybeCommit(ctx, pp.Seq)
}

func (r *Replica) broadcastPrepare(ctx sim.Context, view, seq int, d Digest) {
	p := Prepare{View: view, Seq: seq, Digest: d, Replica: r.id}
	s := r.slotFor(seq)
	s.prepares[r.id] = true
	for i := 0; i < r.n; i++ {
		if i != r.id {
			ctx.Send(sim.Addr(i), p)
		}
	}
	r.maybeCommit(ctx, seq)
}

func (r *Replica) onPrepare(ctx sim.Context, p Prepare) {
	if p.View != r.view {
		return
	}
	s := r.slotFor(p.Seq)
	s.prepares[p.Replica] = true
	r.maybeCommit(ctx, p.Seq)
}

// maybeCommit broadcasts COMMIT once prepared: pre-prepare + 2f
// prepares matching the digest.
func (r *Replica) maybeCommit(ctx sim.Context, seq int) {
	s := r.slotFor(seq)
	if !s.prePrepared || s.commits[r.id] || len(s.prepares) < 2*r.f+1 {
		return
	}
	c := Commit{View: r.view, Seq: seq, Digest: s.digest, Replica: r.id}
	s.commits[r.id] = true
	for i := 0; i < r.n; i++ {
		if i != r.id {
			ctx.Send(sim.Addr(i), c)
		}
	}
	r.maybeExecute(ctx)
}

func (r *Replica) onCommit(ctx sim.Context, c Commit) {
	if c.View != r.view {
		return
	}
	s := r.slotFor(c.Seq)
	s.commits[c.Replica] = true
	r.maybeExecute(ctx)
}

// maybeExecute applies committed operations in contiguous order.
func (r *Replica) maybeExecute(ctx sim.Context) {
	for {
		s, ok := r.slots[r.executed+1]
		if !ok || s.executed || !s.prePrepared || len(s.commits) < 2*r.f+1 {
			return
		}
		s.executed = true
		s.committed = true
		r.sm.Apply(s.data)
		r.executed++
		ctx.Send(r.client, Reply{Seq: r.executed, Replica: r.id, State: r.sm.Digest()})
	}
}

func (r *Replica) slotFor(seq int) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{prepares: make(map[int]bool), commits: make(map[int]bool)}
		r.slots[seq] = s
	}
	return s
}

// client drives a fixed operation sequence, submitting the next
// request after f+1 matching replies for the current one.
type client struct {
	ops     [][]byte
	next    int
	f       int
	primary sim.Addr
	replies map[int]map[int]Digest // seq → replica → state
	done    int
}

var _ sim.Handler = (*client)(nil)

func (c *client) Init(ctx sim.Context) { c.submit(ctx) }

func (c *client) submit(ctx sim.Context) {
	if c.next >= len(c.ops) {
		return
	}
	ctx.Send(c.primary, Request{Data: c.ops[c.next]})
	c.next++
}

func (c *client) Recv(ctx sim.Context, msg sim.Message) {
	rep, ok := msg.Payload.(Reply)
	if !ok {
		return
	}
	if c.replies[rep.Seq] == nil {
		c.replies[rep.Seq] = make(map[int]Digest)
	}
	c.replies[rep.Seq][rep.Replica] = rep.State
	// f+1 matching states complete the operation.
	counts := make(map[Digest]int)
	for _, d := range c.replies[rep.Seq] {
		counts[d]++
	}
	for _, n := range counts {
		if n == c.f+1 && rep.Seq == c.done+1 {
			c.done++
			c.submit(ctx)
		}
	}
}

// Result summarizes a replicated run.
type Result struct {
	// Counters is the message/byte accounting for the whole run.
	Counters sim.Counters
	// Executed is the per-replica executed-op count.
	Executed []int
	// StateDigests is the per-replica final state.
	StateDigests []Digest
	// Completed reports whether the client saw every op through.
	Completed bool
}

// ClientAddr is the simulator address of the driving client.
const ClientAddr sim.Addr = 1 << 21

// Run replicates the given operation sequence across n = 3f+1 replicas
// (silentSet marks crash-faulty ones) and returns message statistics
// and final states.
func Run(f int, silentSet map[int]bool, ops [][]byte, maxSteps int64) (*Result, error) {
	if f < 0 {
		return nil, errors.New("bft: negative f")
	}
	n := 3*f + 1
	if len(silentSet) > f {
		return nil, fmt.Errorf("bft: %d silent replicas exceed f=%d", len(silentSet), f)
	}
	if silentSet[0] {
		return nil, errors.New("bft: primary (replica 0) must be live in the normal-case baseline")
	}
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	net := sim.NewNetwork()
	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		replicas[i] = NewReplica(i, n, f, silentSet[i], &HashChain{}, ClientAddr)
		if err := net.Attach(sim.Addr(i), replicas[i]); err != nil {
			return nil, err
		}
	}
	cl := &client{ops: ops, f: f, primary: 0, replies: make(map[int]map[int]Digest)}
	if err := net.Attach(ClientAddr, cl); err != nil {
		return nil, err
	}
	counters, err := net.Run(maxSteps)
	if err != nil {
		return nil, err
	}
	res := &Result{Counters: counters, Completed: cl.done == len(ops)}
	for _, r := range replicas {
		res.Executed = append(res.Executed, r.Executed())
		res.StateDigests = append(res.StateDigests, r.StateDigest())
	}
	return res, nil
}

// MessagesPerOpLowerBound returns the textbook normal-case message
// count per operation for n = 3f+1 replicas: n−1 pre-prepares +
// n(n−1) prepares + n(n−1) commits (replies to the client excluded).
// The simulation should be within a small factor of this.
func MessagesPerOpLowerBound(f int) int64 {
	n := int64(3*f + 1)
	return (n - 1) + 2*n*(n-1)
}
