package bft

import (
	"fmt"
	"testing"
)

func benchOps(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("bench-op-%d", i))
	}
	return out
}

func BenchmarkReplicatedOpsF1(b *testing.B) {
	ops := benchOps(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(1, nil, ops, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkReplicatedOpsF3(b *testing.B) {
	ops := benchOps(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(3, nil, ops, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}
