package bft

import (
	"fmt"
	"testing"
)

func ops(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("op-%d", i))
	}
	return out
}

func TestAllHonestReplicasAgree(t *testing.T) {
	res, err := Run(1, nil, ops(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("client did not complete")
	}
	for i, exec := range res.Executed {
		if exec != 5 {
			t.Errorf("replica %d executed %d, want 5", i, exec)
		}
	}
	for i := 1; i < len(res.StateDigests); i++ {
		if res.StateDigests[i] != res.StateDigests[0] {
			t.Errorf("replica %d state diverged", i)
		}
	}
}

func TestToleratesFSilentReplicas(t *testing.T) {
	res, err := Run(1, map[int]bool{3: true}, ops(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("client did not complete with f silent replicas")
	}
	live := 0
	for i, exec := range res.Executed {
		if i == 3 {
			if exec != 0 {
				t.Error("silent replica executed ops")
			}
			continue
		}
		if exec == 4 {
			live++
		}
	}
	if live != 3 {
		t.Errorf("live executed replicas = %d, want 3", live)
	}
}

func TestRejectsTooManyFaults(t *testing.T) {
	if _, err := Run(1, map[int]bool{1: true, 2: true}, ops(1), 0); err == nil {
		t.Error("more than f silent replicas should be rejected")
	}
	if _, err := Run(1, map[int]bool{0: true}, ops(1), 0); err == nil {
		t.Error("silent primary should be rejected in normal-case baseline")
	}
	if _, err := Run(-1, nil, ops(1), 0); err == nil {
		t.Error("negative f should be rejected")
	}
}

func TestMessageComplexityQuadratic(t *testing.T) {
	const nOps = 6
	for _, f := range []int{1, 2, 3} {
		res, err := Run(f, nil, ops(nOps), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("f=%d did not complete", f)
		}
		lower := MessagesPerOpLowerBound(f) * nOps
		if res.Counters.Sent < lower {
			t.Errorf("f=%d: sent %d below textbook lower bound %d", f, res.Counters.Sent, lower)
		}
		// Within a small factor (replies + client requests only extra).
		if res.Counters.Sent > lower*2 {
			t.Errorf("f=%d: sent %d far above expected %d", f, res.Counters.Sent, lower)
		}
	}
}

func TestMessageGrowthWithF(t *testing.T) {
	var prev int64
	for _, f := range []int{1, 2, 3} {
		res, err := Run(f, nil, ops(3), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Sent <= prev {
			t.Errorf("messages should grow with f: f=%d sent %d, prev %d", f, res.Counters.Sent, prev)
		}
		prev = res.Counters.Sent
	}
}

func TestHashChainDeterminism(t *testing.T) {
	a, b := &HashChain{}, &HashChain{}
	for _, op := range ops(4) {
		a.Apply(op)
		b.Apply(op)
	}
	if a.Digest() != b.Digest() {
		t.Error("same ops, different digests")
	}
	if a.Count() != 4 {
		t.Errorf("count = %d", a.Count())
	}
	c := &HashChain{}
	c.Apply([]byte("op-0"))
	if c.Digest() == a.Digest() {
		t.Error("different op sequences should differ")
	}
}

func TestOrderAgreementUnderReordering(t *testing.T) {
	// With several in-flight ops the protocol must still execute in
	// sequence order everywhere. Submitting serially via the client
	// already covers commit pipelining; assert equality across f=2.
	res, err := Run(2, map[int]bool{5: true, 6: true}, ops(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	var live []Digest
	for i, exec := range res.Executed {
		if exec == 7 {
			live = append(live, res.StateDigests[i])
		}
		_ = i
	}
	if len(live) < 5 {
		t.Fatalf("too few live replicas completed: %d", len(live))
	}
	for _, d := range live[1:] {
		if d != live[0] {
			t.Error("live replicas disagree")
		}
	}
}
