package main

import "testing"

func TestRunFigure1Plain(t *testing.T) {
	if err := run([]string{"-topology", "figure1"}); err != nil {
		t.Fatalf("plain figure1: %v", err)
	}
}

func TestRunRingFaithful(t *testing.T) {
	if err := run([]string{"-topology", "ring", "-n", "6", "-chords", "2", "-faithful"}); err != nil {
		t.Fatalf("faithful ring: %v", err)
	}
}

func TestRunRandom(t *testing.T) {
	if err := run([]string{"-topology", "random", "-n", "5", "-chords", "2", "-seed", "4"}); err != nil {
		t.Fatalf("random: %v", err)
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if err := run([]string{"-topology", "torus"}); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestRunTooSmallRing(t *testing.T) {
	if err := run([]string{"-topology", "ring", "-n", "2"}); err == nil {
		t.Error("ring n=2 should error")
	}
}
