// Command fpsssim runs the interdomain-routing protocol — plain FPSS
// or the faithful extension — on a chosen topology and reports
// convergence statistics, tables and utilities.
//
// Usage:
//
//	fpsssim -topology figure1
//	fpsssim -topology ring -n 12 -chords 4 -seed 7 -faithful
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/faithful"
	"repro/internal/fpss"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fpsssim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fpsssim", flag.ContinueOnError)
	topology := fs.String("topology", "figure1", "figure1 | ring | random")
	n := fs.Int("n", 8, "nodes (ring/random)")
	chords := fs.Int("chords", 3, "extra edges (ring/random)")
	maxCost := fs.Int64("maxcost", 10, "max random transit cost")
	seed := fs.Int64("seed", 1, "rng seed")
	useFaithful := fs.Bool("faithful", false, "run the faithful extension (checkers + bank)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	rng := rand.New(rand.NewSource(*seed))
	switch *topology {
	case "figure1":
		g = graph.Figure1()
	case "ring":
		g, err = graph.RingWithChords(*n, *chords, graph.Cost(*maxCost), rng)
	case "random":
		g, err = graph.RandomBiconnected(*n, *chords, graph.Cost(*maxCost), rng)
	default:
		return fmt.Errorf("unknown topology %q", *topology)
	}
	if err != nil {
		return err
	}
	diameter, err := g.Diameter()
	if err != nil {
		return fmt.Errorf("diameter: %w", err)
	}
	fmt.Printf("topology: %s, n=%d, edges=%d, diameter=%d\n", *topology, g.N(), g.M(), diameter)

	if *useFaithful {
		return runFaithful(g)
	}
	return runPlain(g)
}

func runPlain(g *graph.Graph) error {
	res, err := fpss.Run(fpss.Config{Graph: g})
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: %d msgs; phase 2 (cumulative): %d msgs, %d bytes\n",
		res.Phase1.Sent, res.Phase2.Sent, res.Phase2.Bytes)
	printTables(g, func(id graph.NodeID) (fpss.RoutingTable, fpss.PricingTable) {
		return res.Nodes[id].Routing(), res.Nodes[id].Pricing()
	})
	return nil
}

func runFaithful(g *graph.Graph) error {
	res, err := faithful.Run(faithful.Config{
		Graph:              g,
		Traffic:            fpss.AllToAllTraffic(g.N(), 1),
		DeliveryValue:      10_000,
		UndeliveredPenalty: 10_000,
	})
	if err != nil {
		return err
	}
	fmt.Printf("construction: %d msgs, %d bytes; green-lit: %v\n",
		res.Construction.Sent, res.Construction.Bytes, res.Completed)
	for _, d := range res.Detections {
		fmt.Println("detection:", d)
	}
	if !res.Completed {
		return nil
	}
	printTables(g, func(id graph.NodeID) (fpss.RoutingTable, fpss.PricingTable) {
		return res.Nodes[id].Routing(), res.Nodes[id].Pricing()
	})
	ids := make([]graph.NodeID, 0, len(res.Utilities))
	for id := range res.Utilities {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("utilities:")
	for _, id := range ids {
		fmt.Printf("  %s: %d\n", g.Name(id), res.Utilities[id])
	}
	return nil
}

func printTables(g *graph.Graph, tables func(graph.NodeID) (fpss.RoutingTable, fpss.PricingTable)) {
	for i := 0; i < g.N(); i++ {
		id := graph.NodeID(i)
		rt, pt := tables(id)
		fmt.Printf("node %s:\n", g.Name(id))
		dests := make([]graph.NodeID, 0, len(rt))
		for d := range rt {
			dests = append(dests, d)
		}
		sort.Slice(dests, func(a, b int) bool { return dests[a] < dests[b] })
		for _, d := range dests {
			e := rt[d]
			fmt.Printf("  →%s cost=%d path=", g.Name(d), e.Cost)
			for j, hop := range e.Path {
				if j > 0 {
					fmt.Print("-")
				}
				fmt.Print(g.Name(hop))
			}
			if row, ok := pt[d]; ok {
				fmt.Print(" prices{")
				ks := make([]graph.NodeID, 0, len(row))
				for k := range row {
					ks = append(ks, k)
				}
				sort.Slice(ks, func(a, b int) bool { return ks[a] < ks[b] })
				for j, k := range ks {
					if j > 0 {
						fmt.Print(" ")
					}
					fmt.Printf("%s:%d", g.Name(k), row[k].Price)
				}
				fmt.Print("}")
			}
			fmt.Println()
		}
	}
}
