package main

import "testing"

func TestRunRandomScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-n", "4", "-seed", "2"}); err != nil {
		t.Fatalf("faithcheck: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
