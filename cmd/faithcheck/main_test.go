package main

import (
	"testing"

	"repro/internal/scenario"
)

func TestRunRandomScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-n", "4", "-seed", "2"}); err != nil {
		t.Fatalf("faithcheck: %v", err)
	}
}

func TestRunScenarioFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-topology", "twotier", "-n", "6", "-workload", "hotspot", "-costs", "uniform", "-seed", "3"}); err != nil {
		t.Fatalf("faithcheck: %v", err)
	}
}

func TestRunChurnScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-epoch deviation search")
	}
	if err := run([]string{"-n", "5", "-seed", "2", "-epochs", "2", "-joins", "1", "-leaves", "1"}); err != nil {
		t.Fatalf("faithcheck -epochs: %v", err)
	}
}

func TestRunLossScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-n", "4", "-seed", "2", "-loss", "0.1", "-burst", "3"}); err != nil {
		t.Fatalf("faithcheck -loss: %v", err)
	}
}

func TestRunLossChurnScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-epoch deviation search")
	}
	if err := run([]string{"-n", "5", "-seed", "2", "-epochs", "2", "-loss", "0.1"}); err != nil {
		t.Fatalf("faithcheck -epochs -loss: %v", err)
	}
}

func TestRunShardScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-n", "4", "-seed", "2", "-shards", "2", "-crash", "participant"}); err != nil {
		t.Fatalf("faithcheck -shards: %v", err)
	}
}

func TestRunShardChurnScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-epoch deviation search")
	}
	if err := run([]string{"-n", "5", "-seed", "2", "-epochs", "2", "-shards", "2"}); err != nil {
		t.Fatalf("faithcheck -epochs -shards: %v", err)
	}
}

func TestRunSuiteList(t *testing.T) {
	if err := run([]string{"-suite", "list"}); err != nil {
		t.Fatalf("faithcheck -suite list: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunBadScenario(t *testing.T) {
	cases := [][]string{
		{"-topology", "mobius"},
		{"-topology", "torus", "-n", "7"},
		{"-workload", "flood", "-n", "5"},
		{"-costs", "normal", "-n", "5"},
		{"-suite", "no-such-suite"},
		// Churn flags are single-scenario only; a suite sweep must not
		// silently ignore them.
		{"-suite", "smoke", "-epochs", "3"},
		{"-suite", "churn", "-leaves", "2"},
		// And without -epochs > 1 the other churn flags do nothing —
		// reject rather than run a static check the user thinks is
		// dynamic.
		{"-n", "5", "-joins", "2"},
		// Invalid churn values must error, not silently clamp.
		{"-n", "5", "-epochs", "0"},
		{"-n", "5", "-epochs", "3", "-leaves", "-1"},
		{"-n", "5", "-epochs", "3", "-redraw", "1.5"},
		// Loss flags are single-scenario only; a suite sweep must not
		// silently ignore them either.
		{"-suite", "smoke", "-loss", "0.1"},
		{"-suite", "loss", "-burst", "3"},
		// -burst without -loss does nothing — reject rather than run a
		// reliable check the user thinks is lossy.
		{"-n", "5", "-burst", "3"},
		// Invalid loss values must error, not silently clamp.
		{"-n", "5", "-loss", "1.0"},
		{"-n", "5", "-loss", "-0.1"},
		{"-n", "5", "-loss", "0.1", "-burst", "0.5"},
		// Shard flags are single-scenario only; a suite sweep must not
		// silently ignore them either.
		{"-suite", "smoke", "-shards", "2"},
		{"-suite", "settle", "-crash", "participant"},
		// -crash without -shards does nothing — reject rather than run a
		// singleton-bank check the user thinks is sharded.
		{"-n", "5", "-crash", "participant"},
		// Invalid shard values must error, not silently clamp, and
		// unknown crash plans must be rejected at compile time.
		{"-n", "5", "-shards", "0"},
		{"-n", "5", "-shards", "-2"},
		{"-n", "5", "-shards", "2", "-crash", "meteor"},
		// -stats times epoch boundaries; without a churn timeline there
		// is nothing to time, and for suites the per-scenario knob is
		// -timings.
		{"-stats"},
		{"-n", "5", "-stats"},
		{"-suite", "smoke", "-stats"},
		// -timings is the suite-mode knob.
		{"-timings"},
		{"-n", "5", "-epochs", "2", "-timings"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}

func TestRunChurnStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full per-epoch deviation search")
	}
	if err := run([]string{"-n", "5", "-seed", "2", "-epochs", "2", "-stats"}); err != nil {
		t.Fatalf("faithcheck -stats: %v", err)
	}
}

// TestRunProfileTier drives the honest-profiling rungs directly with a
// small ad-hoc suite (the registered internet tier's n∈{48,100} rungs
// belong to the nightly lane, not the unit tests).
func TestRunProfileTier(t *testing.T) {
	s := scenario.Suite{
		Name:         "profile-test",
		Families:     []scenario.Family{scenario.PrefAttach, scenario.Waxman},
		Sizes:        []int{6},
		Workloads:    []scenario.Workload{scenario.WorkloadAllPairs},
		CostModels:   []scenario.CostModel{scenario.CostUniform},
		ProfileSizes: []int{12, 16},
	}
	if err := runProfileTier(s, 1, true); err != nil {
		t.Fatalf("runProfileTier: %v", err)
	}
	// No profiling tier: a silent no-op.
	s.ProfileSizes = nil
	if err := runProfileTier(s, 1, false); err != nil {
		t.Fatalf("runProfileTier (empty): %v", err)
	}
}
