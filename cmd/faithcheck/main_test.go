package main

import "testing"

func TestRunRandomScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-n", "4", "-seed", "2"}); err != nil {
		t.Fatalf("faithcheck: %v", err)
	}
}

func TestRunScenarioFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full deviation search")
	}
	if err := run([]string{"-topology", "twotier", "-n", "6", "-workload", "hotspot", "-costs", "uniform", "-seed", "3"}); err != nil {
		t.Fatalf("faithcheck: %v", err)
	}
}

func TestRunSuiteList(t *testing.T) {
	if err := run([]string{"-suite", "list"}); err != nil {
		t.Fatalf("faithcheck -suite list: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunBadScenario(t *testing.T) {
	cases := [][]string{
		{"-topology", "mobius"},
		{"-topology", "torus", "-n", "7"},
		{"-workload", "flood", "-n", "5"},
		{"-costs", "normal", "-n", "5"},
		{"-suite", "no-such-suite"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should error", args)
		}
	}
}
