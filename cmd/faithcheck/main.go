// Command faithcheck runs the ex post Nash deviation search against
// both protocol variants on a chosen scenario and prints the verdict
// in the paper's IC/CC/AC vocabulary.
//
// Usage:
//
//	faithcheck                     # Figure 1
//	faithcheck -n 6 -seed 3        # random biconnected scenario
//	faithcheck -workers 8          # parallel deviation search
//	faithcheck -first-violation    # stop at the first profitable deviation
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rational"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faithcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faithcheck", flag.ContinueOnError)
	n := fs.Int("n", 0, "random scenario size (0 = Figure 1)")
	seed := fs.Int64("seed", 1, "rng seed for random scenarios")
	workers := fs.Int("workers", 0, "deviation-search pool size (0 = NumCPU, 1 = sequential oracle)")
	first := fs.Bool("first-violation", false, "stop at the first profitable deviation in catalogue order")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var opts []core.CheckOption
	if *workers != 1 {
		opts = append(opts, core.Workers(*workers))
	}
	if *first {
		opts = append(opts, core.EarlyStop())
	}
	var g *graph.Graph
	var err error
	if *n == 0 {
		g = graph.Figure1()
		fmt.Println("scenario: Figure 1")
	} else {
		g, err = graph.RandomBiconnected(*n, *n/2, 10, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		fmt.Printf("scenario: random biconnected n=%d seed=%d\n", *n, *seed)
	}
	params := rational.DefaultParams(g)

	plain, err := core.CheckFaithfulness(&rational.PlainSystem{Graph: g, Params: params}, opts...)
	if err != nil {
		return err
	}
	report("plain FPSS", plain)

	faithfulRep, err := core.CheckFaithfulness(&rational.FaithfulSystem{Graph: g, Params: params}, opts...)
	if err != nil {
		return err
	}
	report("extended (faithful) FPSS", faithfulRep)
	return nil
}

func report(name string, r core.Report) {
	fmt.Printf("\n%s: checked %d deviation plays\n", name, r.Checked)
	fmt.Printf("  IC=%v CC=%v AC=%v faithful=%v\n", r.IC(), r.CC(), r.AC(), r.Faithful())
	for _, v := range r.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}
