// Command faithcheck runs the ex post Nash deviation search against
// both protocol variants and prints the verdict in the paper's
// IC/CC/AC vocabulary. Scenarios are declared through the scenario
// layer: a single Spec built from flags, or a whole named Suite.
//
// Usage:
//
//	faithcheck                                  # Figure 1
//	faithcheck -n 6 -seed 3                     # random biconnected scenario
//	faithcheck -topology prefattach -n 16       # an Internet-like family
//	faithcheck -topology waxman -n 12 -workload hotspot -costs heavy-tailed
//	faithcheck -suite smoke -seed 1             # sweep a named scenario suite
//	faithcheck -suite list                      # list available suites
//	faithcheck -workers 8                       # parallel deviation search
//	faithcheck -first-violation                 # stop at the first profitable deviation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faithcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faithcheck", flag.ContinueOnError)
	topology := fs.String("topology", "", "topology family (figure1, clique, ring, ring-chords, random, prefattach, waxman, torus, twotier); empty = figure1, or random when -n is set")
	n := fs.Int("n", 0, "scenario size (0 = Figure 1)")
	workload := fs.String("workload", "", "flow workload (all-pairs, hotspot, sparse, gossip); empty = all-pairs")
	costs := fs.String("costs", "", "cost model (uniform, heavy-tailed, bimodal); empty = family default")
	suite := fs.String("suite", "", "sweep a named scenario suite instead of a single scenario ('list' prints the available suites)")
	seed := fs.Int64("seed", 1, "rng seed (single scenario) or suite base seed")
	workers := fs.Int("workers", 0, "deviation-search pool size (0 = NumCPU, 1 = sequential oracle)")
	first := fs.Bool("first-violation", false, "stop at the first profitable deviation in catalogue order")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var opts []core.CheckOption
	if *workers != 1 {
		opts = append(opts, core.Workers(*workers))
	}
	if *first {
		opts = append(opts, core.EarlyStop())
	}

	if *suite != "" {
		return runSuite(*suite, *seed, opts)
	}

	spec, err := specFromFlags(*topology, *n, *workload, *costs, *seed)
	if err != nil {
		return err
	}
	c, err := spec.Compile()
	if err != nil {
		return err
	}
	fmt.Println("scenario:", spec.Describe())
	return checkScenario(c, opts)
}

// specFromFlags maps the single-scenario flags onto a scenario.Spec,
// preserving the legacy defaults: no flags = Figure 1, a bare -n =
// random biconnected with n/2 chords.
func specFromFlags(topology string, n int, workload, costs string, seed int64) (scenario.Spec, error) {
	spec := scenario.Spec{N: n, Seed: seed}
	switch {
	case topology != "":
		fam, err := scenario.ParseFamily(topology)
		if err != nil {
			return spec, err
		}
		spec.Family = fam
	case n == 0:
		spec.Family = scenario.Figure1
	default:
		spec.Family = scenario.Random
	}
	if workload != "" {
		w, err := scenario.ParseWorkload(workload)
		if err != nil {
			return spec, err
		}
		spec.Workload = w
	}
	if costs != "" {
		cm, err := scenario.ParseCostModel(costs)
		if err != nil {
			return spec, err
		}
		spec.CostModel = cm
	}
	return spec, nil
}

// checkScenario runs the deviation search against both protocol
// variants of one compiled scenario.
func checkScenario(c *scenario.Compiled, opts []core.CheckOption) error {
	plainSys, faithSys := c.Systems()
	plain, err := core.CheckFaithfulness(plainSys, opts...)
	if err != nil {
		return err
	}
	report("plain FPSS", plain)

	faithfulRep, err := core.CheckFaithfulness(faithSys, opts...)
	if err != nil {
		return err
	}
	report("extended (faithful) FPSS", faithfulRep)
	return nil
}

// runSuite streams every scenario of a named suite through the
// worker-pool checker, one summary line per scenario, then a verdict
// over the whole sweep. Output is deterministic per (suite, seed).
func runSuite(name string, seed int64, opts []core.CheckOption) error {
	if name == "list" {
		for _, s := range scenario.Suites() {
			fmt.Printf("%-12s %3d scenarios  %s\n", s.Name, len(s.Specs(seed)), s.Description)
		}
		return nil
	}
	s, ok := scenario.LookupSuite(name)
	if !ok {
		return fmt.Errorf("unknown suite %q (available: %v)", name, scenario.SuiteNames())
	}
	specs := s.Specs(seed)
	fmt.Printf("suite %s seed=%d: %d scenarios\n", s.Name, seed, len(specs))
	plainManipulable, faithfulClean := 0, 0
	for i, spec := range specs {
		c, err := spec.Compile()
		if err != nil {
			return err
		}
		plainSys, faithSys := c.Systems()
		plainRep, err := core.CheckFaithfulness(plainSys, opts...)
		if err != nil {
			return fmt.Errorf("%s: plain: %w", spec.Describe(), err)
		}
		faithRep, err := core.CheckFaithfulness(faithSys, opts...)
		if err != nil {
			return fmt.Errorf("%s: faithful: %w", spec.Describe(), err)
		}
		if len(plainRep.Violations) > 0 {
			plainManipulable++
		}
		if faithRep.Faithful() {
			faithfulClean++
		}
		fmt.Printf("[%d/%d] %s: plain violations=%d, faithful=%v (checked %d plays)\n",
			i+1, len(specs), spec.Describe(), len(plainRep.Violations), faithRep.Faithful(), faithRep.Checked)
		for _, v := range faithRep.Violations {
			fmt.Printf("        faithful violation: %s\n", v)
		}
	}
	fmt.Printf("suite %s: plain FPSS manipulable in %d/%d scenarios; extended spec faithful in %d/%d\n",
		s.Name, plainManipulable, len(specs), faithfulClean, len(specs))
	// A faithfulness violation is the sweep's failure mode: exit
	// non-zero so a CI lane running `faithcheck -suite` actually gates
	// on Theorem 1 holding across the suite. (Plain-FPSS
	// manipulability varies by scenario and is reported, not gated.)
	if faithfulClean < len(specs) {
		return fmt.Errorf("extended specification violated in %d/%d scenarios", len(specs)-faithfulClean, len(specs))
	}
	return nil
}

func report(name string, r core.Report) {
	fmt.Printf("\n%s: checked %d deviation plays\n", name, r.Checked)
	fmt.Printf("  IC=%v CC=%v AC=%v faithful=%v\n", r.IC(), r.CC(), r.AC(), r.Faithful())
	for _, v := range r.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}
