// Command faithcheck runs the ex post Nash deviation search against
// both protocol variants and prints the verdict in the paper's
// IC/CC/AC vocabulary. Scenarios are declared through the scenario
// layer: a single Spec built from flags, or a whole named Suite.
//
// Usage:
//
//	faithcheck                                  # Figure 1
//	faithcheck -n 6 -seed 3                     # random biconnected scenario
//	faithcheck -topology prefattach -n 16       # an Internet-like family
//	faithcheck -topology waxman -n 12 -workload hotspot -costs heavy-tailed
//	faithcheck -suite smoke -seed 1             # sweep a named scenario suite
//	faithcheck -suite list                      # list available suites
//	faithcheck -workers 8                       # parallel deviation search
//	faithcheck -first-violation                 # stop at the first profitable deviation
//	faithcheck -n 8 -epochs 3                   # churn: replay the grid per epoch
//	faithcheck -suite churn -seed 1             # the epoch-dynamics suite
//	faithcheck -n 6 -loss 0.1 -burst 3          # lossy links: bursty seeded drops
//	faithcheck -suite loss -seed 1              # the lossy-links suite
//	faithcheck -n 6 -shards 2 -crash participant # sharded settlement with crash-restarts
//	faithcheck -suite settle -seed 1            # the sharded-settlement suite
//	faithcheck -n 8 -epochs 4 -stats            # per-epoch boundary rebuild vs sweep cost
//	faithcheck -suite internet -timings         # per-scenario elapsed + profile rungs
//
// With -epochs > 1 (or a suite whose specs carry a churn axis) the
// scenario becomes a timeline: nodes join and leave between
// construction phases, and the deviation grid — including the
// epoch-boundary deviations (stale catalogues, leave-without-settling,
// identity whitewashing) — is replayed per epoch through the same
// worker pool.
//
// -stats breaks a churn run's cost into the per-epoch boundary rebuild
// (and which path built it: delta repair, scratch central, or protocol
// sims) versus the deviation sweep — the incremental engine's win is
// visible here without running benchmarks. Suites with ProfileSizes
// (internet: n∈{48,100}) additionally run honest-profiling rungs after
// the deviation sweep: truthful construction and execution only, timed,
// raising the size ceiling beyond what the full grid can afford.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/fpss"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faithcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faithcheck", flag.ContinueOnError)
	topology := fs.String("topology", "", "topology family (figure1, clique, ring, ring-chords, random, prefattach, waxman, torus, twotier); empty = figure1, or random when -n is set")
	n := fs.Int("n", 0, "scenario size (0 = Figure 1)")
	workload := fs.String("workload", "", "flow workload (all-pairs, hotspot, sparse, gossip); empty = all-pairs")
	costs := fs.String("costs", "", "cost model (uniform, heavy-tailed, bimodal); empty = family default")
	suite := fs.String("suite", "", "sweep a named scenario suite instead of a single scenario ('list' prints the available suites)")
	seed := fs.Int64("seed", 1, "rng seed (single scenario) or suite base seed")
	workers := fs.Int("workers", 0, "deviation-search pool size (0 = NumCPU, 1 = sequential oracle)")
	first := fs.Bool("first-violation", false, "stop at the first profitable deviation in catalogue order")
	prune := fs.Bool("prune", false, "skip plays the system's static profit bound proves unprofitable (reported separately from checked)")
	verifyPruned := fs.Bool("verify-pruned", false, "debug: replay a sample of pruned plays and fail if the bound was unsound (implies -prune)")
	epochs := fs.Int("epochs", 1, "churn: number of epochs (1 = static)")
	joins := fs.Int("joins", 1, "churn: node arrivals per epoch boundary")
	leaves := fs.Int("leaves", 1, "churn: node departures per epoch boundary")
	redraw := fs.Float64("redraw", 0.25, "churn: per-boundary cost re-draw probability for surviving nodes")
	lossRate := fs.Float64("loss", 0, "lossy links: per-attempt drop rate in [0, 1) (0 = reliable network)")
	burst := fs.Float64("burst", 0, "lossy links: mean loss-burst length in messages (requires -loss; <= 1 = independent drops)")
	shards := fs.Int("shards", 0, "sharded settlement: shard count (0 = singleton bank)")
	crash := fs.String("crash", "", "sharded settlement: crash-fault plan (coordinator, participant, recovery); requires -shards")
	stats := fs.Bool("stats", false, "churn: print the per-epoch boundary-rebuild vs deviation-sweep timing/allocation breakdown (requires -epochs > 1)")
	timings := fs.Bool("timings", false, "suite: append per-scenario elapsed wall time to every summary line (requires -suite)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Failure-axis flags must never be silently ignored — a reliable,
	// static or singleton-bank result masquerading as a failure-axis
	// result is worse than an error. Track which were explicitly set.
	churnFlags := map[string]bool{}
	lossFlags := map[string]bool{}
	shardFlags := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "epochs", "joins", "leaves", "redraw":
			churnFlags[f.Name] = true
		case "loss", "burst":
			lossFlags[f.Name] = true
		case "shards", "crash":
			shardFlags[f.Name] = true
		}
	})
	cfg := core.CheckConfig{Workers: *workers, EarlyStop: *first}
	if *workers == 0 {
		cfg.Workers = -1 // flag default: NumCPU
	}
	if *prune || *verifyPruned {
		cfg.PruneBound = core.SelfBound
		cfg.VerifyPruned = *verifyPruned
	}

	if *suite != "" {
		// A suite's churn and loss axes come from its definition.
		if len(churnFlags) > 0 {
			return fmt.Errorf("churn flags (-epochs/-joins/-leaves/-redraw) apply to single scenarios; suites define their own churn axis (try -suite churn)")
		}
		if len(lossFlags) > 0 {
			return fmt.Errorf("loss flags (-loss/-burst) apply to single scenarios; suites define their own loss axis (try -suite loss)")
		}
		if len(shardFlags) > 0 {
			return fmt.Errorf("shard flags (-shards/-crash) apply to single scenarios; suites define their own settlement axis (try -suite settle)")
		}
		if *stats {
			return fmt.Errorf("-stats applies to a single churn scenario (-epochs > 1); for suites use -timings")
		}
		return runSuite(*suite, *seed, cfg, *timings)
	}
	if *timings {
		return fmt.Errorf("-timings applies to suite sweeps (-suite); for a single churn scenario use -stats")
	}
	if *stats && *epochs <= 1 {
		// A static scenario has no epoch boundaries: there is nothing
		// for the breakdown to time.
		return fmt.Errorf("-stats has nothing to time without a churn timeline; add -epochs > 1")
	}
	if churnFlags["epochs"] && *epochs < 1 {
		return fmt.Errorf("-epochs must be >= 1, got %d", *epochs)
	}
	if *epochs <= 1 && (churnFlags["joins"] || churnFlags["leaves"] || churnFlags["redraw"]) {
		return fmt.Errorf("-joins/-leaves/-redraw take effect only with -epochs > 1")
	}
	if *epochs > 1 {
		if *joins < 0 || *leaves < 0 {
			return fmt.Errorf("-joins/-leaves must be >= 0, got %d/%d", *joins, *leaves)
		}
		if *redraw < 0 || *redraw > 1 {
			return fmt.Errorf("-redraw is a probability, got %g", *redraw)
		}
	}
	if lossFlags["burst"] && !lossFlags["loss"] {
		return fmt.Errorf("-burst takes effect only with -loss")
	}
	if lossFlags["loss"] && (*lossRate < 0 || *lossRate >= 1) {
		return fmt.Errorf("-loss is a drop rate in [0, 1), got %g", *lossRate)
	}
	if lossFlags["burst"] && *burst < 1 {
		return fmt.Errorf("-burst is a mean burst length >= 1, got %g", *burst)
	}
	if shardFlags["crash"] && !shardFlags["shards"] {
		return fmt.Errorf("-crash takes effect only with -shards")
	}
	if shardFlags["shards"] && *shards < 1 {
		return fmt.Errorf("-shards is a shard count >= 1, got %d", *shards)
	}

	spec, err := specFromFlags(*topology, *n, *workload, *costs, *seed)
	if err != nil {
		return err
	}
	if lossFlags["loss"] {
		spec.Loss = scenario.Loss{Rate: *lossRate, Burst: *burst}
	}
	if shardFlags["shards"] {
		// Unknown -crash names are rejected by the spec's own validation
		// at compile time, with the known plans in the message.
		spec.Shards = scenario.Shards{K: *shards, Crash: *crash}
	}
	if *epochs > 1 {
		spec.Churn = scenario.Churn{Epochs: *epochs, Joins: *joins, Leaves: *leaves, RedrawFraction: *redraw}
		fmt.Println("scenario:", spec.Describe())
		return checkChurnScenario(spec, cfg, *stats)
	}
	c, err := spec.Compile()
	if err != nil {
		return err
	}
	fmt.Println("scenario:", spec.Describe())
	return checkScenario(c, cfg)
}

// specFromFlags maps the single-scenario flags onto a scenario.Spec,
// preserving the legacy defaults: no flags = Figure 1, a bare -n =
// random biconnected with n/2 chords.
func specFromFlags(topology string, n int, workload, costs string, seed int64) (scenario.Spec, error) {
	spec := scenario.Spec{N: n, Seed: seed}
	switch {
	case topology != "":
		fam, err := scenario.ParseFamily(topology)
		if err != nil {
			return spec, err
		}
		spec.Family = fam
	case n == 0:
		spec.Family = scenario.Figure1
	default:
		spec.Family = scenario.Random
	}
	if workload != "" {
		w, err := scenario.ParseWorkload(workload)
		if err != nil {
			return spec, err
		}
		spec.Workload = w
	}
	if costs != "" {
		cm, err := scenario.ParseCostModel(costs)
		if err != nil {
			return spec, err
		}
		spec.CostModel = cm
	}
	return spec, nil
}

// checkScenario runs the deviation search against both protocol
// variants of one compiled scenario.
func checkScenario(c *scenario.Compiled, cfg core.CheckConfig) error {
	plainSys, faithSys := c.Systems()
	plain, err := core.CheckFaithfulnessCfg(plainSys, cfg)
	if err != nil {
		return err
	}
	report("plain FPSS", plain)

	faithfulRep, err := core.CheckFaithfulnessCfg(faithSys, cfg)
	if err != nil {
		return err
	}
	report("extended (faithful) FPSS", faithfulRep)
	return nil
}

// variantStats is one protocol variant's -stats record: the per-epoch
// boundary rebuild breakdown plus the deviation sweep's cost window.
type variantStats struct {
	build       []churn.BuildStat
	sweep       time.Duration
	sweepAllocs uint64
}

// churnReports builds the timeline for a dynamic spec and runs the
// per-epoch deviation search against both protocol variants — the one
// sequence the single-scenario and suite paths share. The faithful
// System is returned alive so callers can read its honest ledger. A
// non-nil stats slice (length 2: plain, faithful) turns on the
// boundary-vs-sweep cost breakdown.
func churnReports(sp scenario.Spec, cfg core.CheckConfig, stats []variantStats) (*churn.Timeline, core.Report, core.Report, *churn.System, error) {
	tl, err := churn.Build(sp)
	if err != nil {
		return nil, core.Report{}, core.Report{}, nil, err
	}
	cfg.PerEpoch = true
	check := func(i int, v churn.Variant) (core.Report, *churn.System, error) {
		sys := churn.NewSystem(tl, v)
		if stats != nil {
			// BuildStats forces init, so the boundary rebuilds are done —
			// and separately accounted — before the sweep window opens.
			sys.EnableBuildStats()
			bs, err := sys.BuildStats()
			if err != nil {
				return core.Report{}, nil, err
			}
			stats[i].build = bs
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			rep, err := core.CheckFaithfulnessCfg(sys, cfg)
			stats[i].sweep = time.Since(start)
			runtime.ReadMemStats(&m1)
			stats[i].sweepAllocs = m1.Mallocs - m0.Mallocs
			return rep, sys, err
		}
		rep, err := core.CheckFaithfulnessCfg(sys, cfg)
		return rep, sys, err
	}
	plainRep, _, err := check(0, churn.Plain)
	if err != nil {
		return nil, core.Report{}, core.Report{}, nil, fmt.Errorf("%s: plain: %w", sp.Describe(), err)
	}
	faithRep, faithSys, err := check(1, churn.Faithful)
	if err != nil {
		return nil, core.Report{}, core.Report{}, nil, fmt.Errorf("%s: faithful: %w", sp.Describe(), err)
	}
	return tl, plainRep, faithRep, faithSys, nil
}

// checkChurnScenario is the verbose single-scenario churn path: the
// membership timeline, both reports, and the honest ledger.
func checkChurnScenario(sp scenario.Spec, cfg core.CheckConfig, withStats bool) error {
	var stats []variantStats
	if withStats {
		stats = make([]variantStats, 2)
	}
	tl, plainRep, faithRep, faithSys, err := churnReports(sp, cfg, stats)
	if err != nil {
		return err
	}
	for _, e := range tl.Epochs {
		if e.Index == 0 {
			fmt.Printf("epoch 1: n=%d\n", e.N())
			continue
		}
		fmt.Printf("epoch %d: n=%d joined=%v left=%v\n", e.Index+1, e.N(), e.Joined, e.Left)
	}
	report("plain FPSS", plainRep)
	report("extended (faithful) FPSS", faithRep)
	if withStats {
		for i, name := range []string{"plain FPSS", "extended (faithful) FPSS"} {
			fmt.Printf("\n%s cost breakdown:\n", name)
			var total time.Duration
			var totalAllocs uint64
			for _, bs := range stats[i].build {
				fmt.Printf("  epoch %d boundary: mode=%-7s rebuild=%-12v allocs=%d\n",
					bs.Epoch+1, bs.Mode, bs.Rebuild, bs.Allocs)
				total += bs.Rebuild
				totalAllocs += bs.Allocs
			}
			fmt.Printf("  boundary total:   %v (%d allocs)\n", total, totalAllocs)
			fmt.Printf("  deviation sweep:  %v (%d allocs)\n", stats[i].sweep, stats[i].sweepAllocs)
		}
	}

	ledger, err := faithSys.Ledger()
	if err != nil {
		return err
	}
	fmt.Println("\nhonest carry-forward ledger (extended spec):")
	for _, acct := range ledger.Accounts() {
		status := "open"
		if ledger.Settled(acct) {
			status = "settled"
		}
		fmt.Printf("  identity %d: balance=%d (%s)\n", acct, ledger.Balance(acct), status)
	}
	return nil
}

// runSuite streams every scenario of a named suite through the
// worker-pool checker, one summary line per scenario, then a verdict
// over the whole sweep. Output is deterministic per (suite, seed);
// timings appends per-scenario wall time (which is not). Scenarios at
// n >= 16 get the profit-bound pruned checker automatically unless the
// caller configured a bound already — at that size the unpruned grid
// is what holds suites below internet scale. After the sweep, suites
// with a profiling tier run their honest rungs (see runProfileTier).
func runSuite(name string, seed int64, cfg core.CheckConfig, timings bool) error {
	if name == "list" {
		for _, s := range scenario.Suites() {
			fmt.Printf("%-12s %3d scenarios  %s\n", s.Name, len(s.Specs(seed)), s.Description)
		}
		return nil
	}
	s, ok := scenario.LookupSuite(name)
	if !ok {
		return fmt.Errorf("unknown suite %q (available: %v)", name, scenario.SuiteNames())
	}
	specs := s.Specs(seed)
	fmt.Printf("suite %s seed=%d: %d scenarios\n", s.Name, seed, len(specs))
	plainManipulable, faithfulClean := 0, 0
	for i, spec := range specs {
		start := time.Now()
		specCfg := cfg
		if spec.N >= 16 && specCfg.PruneBound == nil {
			// Large scenarios get the pruned checker by default: the
			// bound is sound (see -verify-pruned) and the pruned count is
			// reported on the summary line, so coverage stays auditable.
			specCfg.PruneBound = core.SelfBound
		}
		var plainRep, faithRep core.Report
		if spec.Churn.Dynamic() {
			// Dynamic scenario: per-epoch grid through the churn engine.
			var err error
			if _, plainRep, faithRep, _, err = churnReports(spec, specCfg, nil); err != nil {
				return err
			}
		} else {
			c, err := spec.Compile()
			if err != nil {
				return err
			}
			plainSys, faithSys := c.Systems()
			if plainRep, err = core.CheckFaithfulnessCfg(plainSys, specCfg); err != nil {
				return fmt.Errorf("%s: plain: %w", spec.Describe(), err)
			}
			if faithRep, err = core.CheckFaithfulnessCfg(faithSys, specCfg); err != nil {
				return fmt.Errorf("%s: faithful: %w", spec.Describe(), err)
			}
		}
		if len(plainRep.Violations) > 0 {
			plainManipulable++
		}
		if faithRep.Faithful() {
			faithfulClean++
		}
		// Scenarios whose workload starves every catalogued deviation
		// of profit are tagged explicitly: "plain non-manipulable" is a
		// finding about the scenario, not a checker failure (see the
		// pinned twotier hotspot study in the root tests).
		tag := ""
		if len(plainRep.Violations) == 0 {
			tag = " [plain non-manipulable]"
		}
		elapsed := ""
		if timings {
			elapsed = fmt.Sprintf(" [%v]", time.Since(start).Round(time.Millisecond))
		}
		fmt.Printf("[%d/%d] %s: plain violations=%d%s, faithful=%v (checked %d/%d plays, pruned %d)%s\n",
			i+1, len(specs), spec.Describe(), len(plainRep.Violations), tag, faithRep.Faithful(),
			faithRep.Checked, faithRep.Total(), faithRep.Pruned, elapsed)
		for _, v := range faithRep.Violations {
			fmt.Printf("        faithful violation: %s\n", v)
		}
	}
	fmt.Printf("suite %s: plain FPSS manipulable in %d/%d scenarios; extended spec faithful in %d/%d\n",
		s.Name, plainManipulable, len(specs), faithfulClean, len(specs))
	// A faithfulness violation is the sweep's failure mode: exit
	// non-zero so a CI lane running `faithcheck -suite` actually gates
	// on Theorem 1 holding across the suite. (Plain-FPSS
	// manipulability varies by scenario and is reported, not gated.)
	if faithfulClean < len(specs) {
		return fmt.Errorf("extended specification violated in %d/%d scenarios", len(specs)-faithfulClean, len(specs))
	}
	return runProfileTier(s, seed, timings)
}

// runProfileTier runs a suite's honest-profiling rungs: sizes above
// the deviation-search ceiling at which only the truthful profile is
// built — central construction, both variants seeded from the one
// solution, and both honest snapshots executed (the faithful one
// audited) — so construction scales are exercised and timed where the
// full grid is not yet affordable.
func runProfileTier(s scenario.Suite, seed int64, timings bool) error {
	profiles := s.ProfileSpecs(seed)
	if len(profiles) == 0 {
		return nil
	}
	fmt.Printf("\nprofile tier (honest construction + execution, no deviation grid): %d rungs\n", len(profiles))
	for i, sp := range profiles {
		start := time.Now()
		c, err := sp.Compile()
		if err != nil {
			return fmt.Errorf("profile %s: %w", sp.Describe(), err)
		}
		centralStart := time.Now()
		sol, err := fpss.ComputeCentral(c.Graph)
		if err != nil {
			return fmt.Errorf("profile %s: central: %w", sp.Describe(), err)
		}
		central := time.Since(centralStart)
		plainSys, faithSys := c.Systems()
		plainSys.SeedHonest(sol)
		faithSys.SeedHonest(sol)
		if _, err := plainSys.Snapshot(); err != nil {
			return fmt.Errorf("profile %s: plain snapshot: %w", sp.Describe(), err)
		}
		if _, err := faithSys.Snapshot(); err != nil {
			return fmt.Errorf("profile %s: faithful snapshot: %w", sp.Describe(), err)
		}
		elapsed := ""
		if timings {
			elapsed = fmt.Sprintf(" [total %v, central %v]",
				time.Since(start).Round(time.Millisecond), central.Round(time.Millisecond))
		}
		fmt.Printf("[profile %d/%d] %s: honest profile ok%s\n", i+1, len(profiles), sp.Describe(), elapsed)
	}
	return nil
}

func report(name string, r core.Report) {
	fmt.Printf("\n%s: checked %d of %d deviation plays (%d pruned)\n", name, r.Checked, r.Total(), r.Pruned)
	fmt.Printf("  IC=%v CC=%v AC=%v faithful=%v\n", r.IC(), r.CC(), r.AC(), r.Faithful())
	for _, v := range r.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}
