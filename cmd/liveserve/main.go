// Command liveserve runs a scenario as a long-lived service: a
// resident live network of protocol actors behind the internal/live
// RPC boundary, optionally exposed on localhost TCP, driven by the
// open-loop load generator, and watched by the online faithfulness
// monitor.
//
//	liveserve -family random -n 16 -rate 5000 -duration 5s -monitor
//	liveserve -family figure1 -scheme declared -inject 2:misreport-cost-inflate -monitor
//	liveserve -listen 127.0.0.1:7177 -duration 60s
//	liveserve -demo
//
// -demo replays the old examples/livewire walkthrough on the serving
// stack: the Figure-1 network converged on live goroutines three
// times, with node C lying about its transit cost, reaching the same
// fixpoint every run.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/fpss"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("liveserve", flag.ContinueOnError)
	var (
		family   = fs.String("family", "figure1", "topology family (see internal/scenario)")
		n        = fs.Int("n", 0, "node count (family default when 0)")
		workload = fs.String("workload", "", "workload (all-pairs, hotspot, sparse, gossip)")
		costs    = fs.String("costs", "", "cost model (uniform, heavy-tailed, bimodal)")
		scheme   = fs.String("scheme", "", "pricing scheme: vcg (default) or declared")
		seed     = fs.Int64("seed", 1, "scenario seed")
		epochs   = fs.Int("churn", 0, "churn epochs (static when < 2); advances live after each load slice")
		lossRate = fs.Float64("loss", 0, "per-link drop rate (lossy-links axis)")
		rate     = fs.Float64("rate", 2000, "open-loop offered load, requests/second")
		duration = fs.Duration("duration", 2*time.Second, "load-generation duration")
		warmup   = fs.Duration("warmup", 200*time.Millisecond, "latency samples before this are discarded")
		workers  = fs.Int("workers", 4, "load-generator completion workers")
		monitor  = fs.Bool("monitor", false, "run the online faithfulness monitor during the load")
		inject   = fs.String("inject", "", "deviant to install before serving, as <node>:<deviation>")
		listen   = fs.String("listen", "", "also serve the RPC boundary on this TCP address")
		demo     = fs.Bool("demo", false, "run the livewire demo (Figure 1, node C lying) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *demo {
		return runDemo(out)
	}

	sp := scenario.Spec{
		Family:    scenario.Family(*family),
		N:         *n,
		Workload:  scenario.Workload(*workload),
		CostModel: scenario.CostModel(*costs),
		Seed:      *seed,
	}
	switch *scheme {
	case "", "vcg":
	case "declared":
		sp.Scheme = fpss.SchemeDeclaredCost
	default:
		return fmt.Errorf("liveserve: unknown scheme %q", *scheme)
	}
	if *epochs > 1 {
		sp.Churn = scenario.Churn{Epochs: *epochs, Joins: 2, Leaves: 1}
	}
	if *lossRate > 0 {
		sp.Loss = scenario.Loss{Rate: *lossRate}
	}

	srv, err := live.NewServer(sp)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "serving %s: n=%d epochs=%d\n", sp.Describe(), srv.N(), srv.Epochs())

	if *inject != "" {
		var node int
		var dev string
		if _, err := fmt.Sscanf(*inject, "%d:%s", &node, &dev); err != nil {
			return fmt.Errorf("liveserve: -inject wants <node>:<deviation>, got %q", *inject)
		}
		if resp := srv.Dispatch(live.Request{Op: live.OpInject, Node: node, Deviation: dev}); !resp.OK {
			return fmt.Errorf("liveserve: %s", resp.Err)
		}
		fmt.Fprintf(out, "injected deviant: node %d running %q\n", node, dev)
	}

	var mon *live.Monitor
	if *monitor {
		mon = live.NewMonitor(live.MonitorConfig{Workers: 2, Seed: uint64(*seed), Prune: true})
		if err := srv.AttachMonitor(mon); err != nil {
			return err
		}
		mon.Start()
		defer mon.Stop()
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		defer ln.Close()
		go live.Serve(ln, srv)
		fmt.Fprintf(out, "rpc listening on %s\n", ln.Addr())
	}

	// One load slice per epoch: the open-loop schedule runs against
	// the resident epoch, then the server advances the churn boundary
	// live and the next slice hits the evolved network.
	slices := srv.Epochs()
	perSlice := *duration / time.Duration(slices)
	for e := 0; ; e++ {
		cfg := live.LoadgenConfig{
			Rate:     *rate,
			Requests: int(*rate * perSlice.Seconds()),
			Warmup:   *warmup,
			Workers:  *workers,
			Seed:     uint64(*seed) + uint64(e),
		}
		res, err := live.RunLoadgen(srv, srv.N(), cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "epoch %d: %s\n", e, res)
		if e == slices-1 {
			break
		}
		if resp := srv.Dispatch(live.Request{Op: live.OpInject, Advance: true}); !resp.OK {
			return fmt.Errorf("liveserve: advance: %s", resp.Err)
		}
	}

	stats := srv.Dispatch(live.Request{Op: live.OpStats})
	if !stats.OK {
		return fmt.Errorf("liveserve: stats: %s", stats.Err)
	}
	st := stats.Stats
	fmt.Fprintf(out, "network: sent=%d delivered=%d dropped=%d lost=%d divergence=%d\n",
		st.Net.Sent, st.Net.Delivered, st.Net.Dropped, st.Net.Lost, st.Divergence)
	if mon != nil {
		ms := mon.Stats()
		fmt.Fprintf(out, "monitor: plays=%d pruned=%d violations=%d detections=%d laps=%d flagged=%d\n",
			ms.Plays, ms.Pruned, ms.Violations, ms.Detections, ms.Laps, ms.Flagged)
		for _, f := range mon.Flagged() {
			fmt.Fprintf(out, "  flagged: node %d via %q\n", f.Node, f.Deviation)
		}
	}
	return nil
}

// runDemo is the old examples/livewire walkthrough on the serving
// stack: Figure 1 with node C declaring ĉ=5 instead of its true cost,
// converged on live goroutines three times. Every run reaches the
// same fixpoint — the composite route order makes the asynchronous
// computation delivery-order independent.
func runDemo(out io.Writer) error {
	g := graph.Figure1()
	c, _ := g.ByName("C")
	x, _ := g.ByName("X")
	z, _ := g.ByName("Z")

	for run := 1; run <= 3; run++ {
		srv, err := live.NewServer(scenario.Spec{Family: scenario.Figure1})
		if err != nil {
			return err
		}
		// misreport-cost-inflate declares t+4; C's true cost is 1, so
		// this is exactly the original livewire lie ĉ=5.
		if resp := srv.Dispatch(live.Request{Op: live.OpInject, Node: int(c), Deviation: "misreport-cost-inflate"}); !resp.OK {
			srv.Close()
			return fmt.Errorf("demo: %s", resp.Err)
		}
		route := srv.Dispatch(live.Request{Op: live.OpRoute, Src: int(x), Dst: int(z)})
		stats := srv.Dispatch(live.Request{Op: live.OpStats})
		srv.Close()
		if !route.OK || !stats.OK {
			return fmt.Errorf("demo: route %q stats %q", route.Err, stats.Err)
		}
		fmt.Fprintf(out, "run %d (goroutines, C lies ĉ=5): %d messages, X→Z = ", run, stats.Stats.Net.Sent)
		for i, hop := range route.Path {
			if i > 0 {
				fmt.Fprint(out, "-")
			}
			fmt.Fprint(out, g.Name(graph.NodeID(hop)))
		}
		fmt.Fprintf(out, " (cost %d)\n", route.Cost)
	}
	fmt.Fprintln(out, "\nsame fixpoint every run — the composite route order makes the")
	fmt.Fprintln(out, "asynchronous computation delivery-order independent.")
	return nil
}
