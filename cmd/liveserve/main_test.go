package main

import (
	"strings"
	"testing"
)

// TestDemo pins the ported livewire walkthrough: three live
// convergences of Figure 1 with C lying ĉ=5 all reach the same
// fixpoint, and the lie prices C off the X→Z route (X-A-Z, cost 5,
// instead of the truthful X-D-C-Z at cost 2).
func TestDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "X→Z = X-A-Z (cost 5)"); n != 3 {
		t.Fatalf("want 3 identical X-A-Z fixpoints, got %d in:\n%s", n, got)
	}
}

// TestLoadRunWithMonitor is the acceptance path: a short open-loop run
// against a served scenario with the online monitor enabled, under
// churn, printing the latency histogram and monitor counters.
func TestLoadRunWithMonitor(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-family", "figure1", "-scheme", "declared",
		"-rate", "2000", "-duration", "500ms", "-warmup", "50ms",
		"-churn", "2", "-monitor",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"epoch 0:", "epoch 1:", "p50=", "p99=", "monitor: plays="} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "errors=") && !strings.Contains(got, "errors=0") {
		t.Fatalf("load run reported errors:\n%s", got)
	}
}

// TestInjectFlagAndListen covers the remaining surface: -inject
// installs a catalogued deviant before serving and -listen binds the
// TCP front end.
func TestInjectFlagAndListen(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-family", "figure1", "-scheme", "declared",
		"-inject", "2:misreport-cost-inflate",
		"-listen", "127.0.0.1:0",
		"-rate", "1000", "-duration", "200ms", "-warmup", "0s",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`injected deviant: node 2 running "misreport-cost-inflate"`, "rpc listening on 127.0.0.1:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scheme", "nonsense"}, &out); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-inject", "garbage"}, &out); err == nil {
		t.Fatal("malformed -inject accepted")
	}
}
