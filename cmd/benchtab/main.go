// Command benchtab prints the regenerated experiment tables (E1–E13)
// from the experiments registry.
//
// Usage:
//
//	benchtab                 # all experiments, one worker per CPU
//	benchtab -e e2,e6        # a subset by ID
//	benchtab -run 'E1[0-3]'  # a subset by regexp over IDs
//	benchtab -parallel 4     # cap the worker pool
//	benchtab -json           # machine-readable tables (BENCH artifacts)
//
// Output is deterministic: tables appear in canonical experiment order
// and are byte-identical for any -parallel value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	only := fs.String("e", "", "comma-separated experiment IDs (e.g. e1,e6); empty = all")
	pattern := fs.String("run", "", "regexp over experiment IDs (case-insensitive, whole-ID); empty = all")
	parallel := fs.Int("parallel", 0, "worker-pool size; 0 = one per CPU")
	asJSON := fs.Bool("json", false, "emit tables as JSON instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exps, err := selectExperiments(*only, *pattern)
	if err != nil {
		return err
	}
	tables, err := experiments.Runner{Workers: *parallel}.Run(exps)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tables)
	}
	for _, t := range tables {
		fmt.Fprintln(w, experiments.Render(t))
	}
	return nil
}

// selectExperiments resolves the -e ID list and the -run regexp
// against the registry, erroring on IDs or patterns that match
// nothing — before any experiment has spent cycles.
func selectExperiments(only, pattern string) ([]experiments.Experiment, error) {
	exps, err := experiments.Match(pattern)
	if err != nil {
		return nil, err
	}
	if only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(strings.ToLower(only), ",") {
			if id = strings.TrimSpace(id); id != "" {
				if _, ok := experiments.Lookup(id); !ok {
					return nil, fmt.Errorf("unknown experiment %q", id)
				}
				want[id] = true
			}
		}
		filtered := exps[:0]
		for _, e := range exps {
			if want[strings.ToLower(e.ID)] {
				filtered = append(filtered, e)
			}
		}
		exps = filtered
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("no experiment matched -e %q -run %q", only, pattern)
	}
	return exps, nil
}
