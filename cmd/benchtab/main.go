// Command benchtab prints the regenerated experiment tables (E1–E10).
//
// Usage:
//
//	benchtab            # all experiments
//	benchtab -e e2,e6   # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	only := fs.String("e", "", "comma-separated experiment IDs (e.g. e1,e6); empty = all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*only), ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	tables, err := experiments.All()
	if err != nil {
		return err
	}
	printed := 0
	for _, t := range tables {
		if len(want) > 0 && !want[strings.ToLower(t.ID)] {
			continue
		}
		fmt.Println(experiments.Render(t))
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("no experiment matched %q", *only)
	}
	return nil
}
